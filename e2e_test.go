package repro

// Process-level end-to-end test: a real qmd process (fsync on) is driven
// over TCP, killed with SIGKILL mid-life, and restarted on the same state
// directory. Unlike the in-process crash simulations, nothing survives the
// kill except what reached the disk — this exercises the genuine
// durability path the paper's guarantees rest on.

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"

	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/rpc"
)

// buildQmd compiles the daemon once per test run.
func buildQmd(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "qmd")
	cmd := exec.Command("go", "build", "-o", bin, "./cmd/qmd")
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("build qmd: %v\n%s", err, out)
	}
	return bin
}

// freeAddr reserves a localhost port.
func freeAddr(t *testing.T) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()
	return addr
}

// startQmd launches the daemon and waits for it to serve.
func startQmd(t *testing.T, bin, dir, addr string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(bin, "-dir", dir, "-listen", addr, "-queues", "work")
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Wait for the RPC endpoint.
	cl := qservice.NewClient(rpc.NewClient(addr, nil))
	defer cl.Close()
	deadline := time.Now().Add(15 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), time.Second)
		_, err := cl.Depth(ctx, "work")
		cancel()
		if err == nil {
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("qmd never came up: %v", err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestQmdProcessKillRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns processes")
	}
	bin := buildQmd(t)
	dir := t.TempDir()
	addr := freeAddr(t)
	cmd := startQmd(t, bin, dir, addr)
	killed := false
	t.Cleanup(func() {
		if !killed && cmd.Process != nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})

	cl := qservice.NewClient(rpc.NewClient(addr, nil))
	defer cl.Close()
	ctx := context.Background()

	// A registered client enqueues tagged requests (real fsync per commit).
	if _, err := cl.Register(ctx, "work", "e2e-client", true); err != nil {
		t.Fatal(err)
	}
	var lastEID queue.EID
	for i := 0; i < 10; i++ {
		eid, err := cl.Enqueue(ctx, "work", queue.Element{Body: []byte(fmt.Sprintf("job-%d", i))},
			"e2e-client", []byte(fmt.Sprintf("rid-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		lastEID = eid
	}
	// Consume three.
	for i := 0; i < 3; i++ {
		if _, err := cl.Dequeue(ctx, "work", "", nil, 0, nil); err != nil {
			t.Fatal(err)
		}
	}

	// SIGKILL: no shutdown hooks, no checkpoint, nothing but the log.
	if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// Restart on the same directory (new port to avoid TIME_WAIT issues).
	addr2 := freeAddr(t)
	cmd2 := startQmd(t, bin, dir, addr2)
	t.Cleanup(func() {
		cmd2.Process.Signal(syscall.SIGTERM)
		done := make(chan struct{})
		go func() { cmd2.Wait(); close(done) }()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			cmd2.Process.Kill()
		}
	})
	cl2 := qservice.NewClient(rpc.NewClient(addr2, nil))
	defer cl2.Close()

	d, err := cl2.Depth(ctx, "work")
	if err != nil {
		t.Fatal(err)
	}
	if d != 7 {
		t.Fatalf("depth after SIGKILL recovery = %d, want 7", d)
	}
	// FIFO position survived: the next element is job-3.
	e, err := cl2.Dequeue(ctx, "work", "", nil, 0, nil)
	if err != nil || string(e.Body) != "job-3" {
		t.Fatalf("head after recovery = %q %v", e.Body, err)
	}
	// The persistent registration (tags, last eid) survived the kill.
	ri, err := cl2.Register(ctx, "work", "e2e-client", true)
	if err != nil {
		t.Fatal(err)
	}
	if !ri.HasLast || ri.LastOp != queue.OpEnqueue || ri.LastEID != lastEID || string(ri.LastTag) != "rid-9" {
		t.Fatalf("registration after SIGKILL: %+v (want last enqueue rid-9/eid %d)", ri, lastEID)
	}
}
