// Ticket agent: an interactive (pseudo-conversational) seat-selection
// request (Section 8) followed by exactly-once ticket printing on a
// non-idempotent, testable output device (Section 3) — the client crashes
// after printing and proves, via the checkpoint, that it must not print
// again.
//
//	go run ./examples/ticketagent
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/device"
	"repro/rrq"
)

// agent is the conversation: offer seats → take a choice → confirm → book.
func agent(rc *rrq.ReqCtx, state, input []byte, round int) (newState, output []byte, done bool, err error) {
	switch round {
	case 0:
		return []byte("section=" + string(input)), []byte("available seats: 7A 7B 7C"), false, nil
	case 1:
		seat := string(input)
		return append(state, []byte(";seat="+seat)...), []byte("holding " + seat + " — confirm? (yes/no)"), false, nil
	case 2:
		if string(input) != "yes" {
			return nil, []byte("abandoned"), true, nil
		}
		base, _, _ := strings.Cut(rc.Request.RID, "#")
		if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "bookings", base, state); err != nil {
			return nil, nil, false, err
		}
		return nil, []byte("BOARDING PASS " + string(state)), true, nil
	}
	return nil, nil, false, fmt.Errorf("unexpected round %d", round)
}

func main() {
	dir, err := os.MkdirTemp("", "rrq-ticket-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	node, err := rrq.StartNode(rrq.NodeConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	if err := node.CreateQueue(rrq.QueueConfig{Name: "agent"}); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go rrq.ServeConversational(ctx, rrq.ConvServerConfig{Repo: node.Repo(), Queue: "agent", Handler: agent})

	printer := device.NewTicketPrinter()
	guard := &device.ExactlyOnceGuard{Device: printer}

	// --- the conversation (fig. 7) ---
	clerk := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{ClientID: "kiosk-1", RequestQueue: "agent"})
	if _, err := clerk.Connect(ctx); err != nil {
		log.Fatal(err)
	}
	sess := clerk.Interactive("rid-000001")
	if err := sess.Start(ctx, []byte("economy")); err != nil {
		log.Fatal(err)
	}
	out, _, err := sess.Receive(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent: %s\n", out.Body)
	fmt.Println("kiosk: 7B")
	if err := sess.SendInput(ctx, []byte("7B")); err != nil {
		log.Fatal(err)
	}
	out, _, err = sess.Receive(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("agent: %s\n", out.Body)
	fmt.Println("kiosk: yes")
	if err := sess.SendInput(ctx, []byte("yes")); err != nil {
		log.Fatal(err)
	}

	// --- exactly-once printing with the testable device ---
	// Read the printer's state into the Receive checkpoint before
	// receiving the final reply.
	final, done, err := sess.Receive(ctx, guard.Ckpt())
	if err != nil || !done {
		log.Fatalf("final receive: done=%v err=%v", done, err)
	}
	serial := printer.Print(string(final.Body))
	fmt.Printf("printed ticket #%d: %s\n", serial, final.Body)

	// The kiosk crashes right here. Its new incarnation reconnects and
	// must decide whether to print again.
	fmt.Println("\n*** kiosk crashes and restarts ***")
	clerk2 := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{ClientID: "kiosk-1", RequestQueue: "agent"})
	info, err := clerk2.Connect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recovered: last sent %s, last reply for %s, outstanding=%v\n", info.SRID, info.RRID, info.Outstanding)
	if !info.Outstanding {
		if guard.AlreadyProcessed(info.Ckpt) {
			fmt.Println("device state moved past the checkpoint: ticket was already printed — NOT printing again")
		} else {
			rep, err := clerk2.Rereceive(ctx)
			if err != nil {
				log.Fatal(err)
			}
			printer.Print(string(rep.Body))
			fmt.Println("ticket had not been printed; printed now")
		}
	}
	if printer.Count() != 1 {
		log.Fatalf("printed %d tickets, want exactly 1", printer.Count())
	}
	fmt.Printf("\nexactly one physical ticket exists: %v\n", printer.Printed())
}
