// Funds transfer: the paper's Section 6 motivating workload as a
// three-transaction saga — debit, credit, clearinghouse log — with stage
// crashes injected mid-pipeline and a cancellation compensated after the
// debit committed.
//
//	go run ./examples/fundstransfer
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"time"

	"repro/internal/chaos"
	"repro/rrq"
)

func adjust(rc *rrq.ReqCtx, acct string, delta int) error {
	v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "acct", acct, true)
	if err != nil {
		return err
	}
	n := 0
	if v != nil {
		n, _ = strconv.Atoi(string(v))
	}
	if n+delta < 0 {
		return rrq.Failf("insufficient funds in %s", acct)
	}
	return rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", acct, []byte(strconv.Itoa(n+delta)))
}

func parse(body []byte) (src, dst string, amt int) {
	fmt.Sscanf(string(body), "%s %s %d", &src, &dst, &amt)
	return
}

func steps() []rrq.SagaStep {
	return []rrq.SagaStep{
		{
			Name: "debit",
			Action: func(rc *rrq.ReqCtx) ([]byte, []byte, error) {
				src, _, amt := parse(rc.Request.Body)
				if err := adjust(rc, src, -amt); err != nil {
					return nil, nil, err
				}
				return rc.Request.Body, nil, nil
			},
			Compensate: func(rc *rrq.ReqCtx) ([]byte, []byte, error) {
				src, _, amt := parse(rc.Request.Body)
				return nil, nil, adjust(rc, src, +amt)
			},
		},
		{
			Name: "credit",
			Action: func(rc *rrq.ReqCtx) ([]byte, []byte, error) {
				_, dst, amt := parse(rc.Request.Body)
				if err := adjust(rc, dst, +amt); err != nil {
					return nil, nil, err
				}
				return rc.Request.Body, nil, nil
			},
			Compensate: func(rc *rrq.ReqCtx) ([]byte, []byte, error) {
				_, dst, amt := parse(rc.Request.Body)
				return nil, nil, adjust(rc, dst, -amt)
			},
		},
		{
			Name: "clearinghouse",
			Action: func(rc *rrq.ReqCtx) ([]byte, []byte, error) {
				if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "clearing", rc.Request.RID, rc.Request.Body); err != nil {
					return nil, nil, err
				}
				return []byte("transfer complete"), nil, nil
			},
			Compensate: func(rc *rrq.ReqCtx) ([]byte, []byte, error) {
				return nil, nil, rc.Repo.KVDelete(rc.Ctx, rc.Txn, "clearing", rc.Request.RID)
			},
		},
	}
}

func balance(node *rrq.Node, acct string) int {
	v, _, _ := node.Repo().KVGet(context.Background(), nil, "acct", acct, false)
	n, _ := strconv.Atoi(string(v))
	return n
}

func main() {
	dir, err := os.MkdirTemp("", "rrq-xfer-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	node, err := rrq.StartNode(rrq.NodeConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	for acct, amt := range map[string]int{"alice": 1000, "bob": 500} {
		if err := node.Repo().KVSet(ctx, nil, "acct", acct, []byte(strconv.Itoa(amt))); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("opening balances: alice=%d bob=%d\n", balance(node, "alice"), balance(node, "bob"))

	// Crash the credit stage on its first two attempts: the pipeline's
	// queues absorb the failures and the transfer still happens exactly
	// once.
	crash := chaos.NewPoints(7)
	crash.FailOnNth("pipeline.credit.afterDequeue", 1)
	saga, err := rrq.NewSaga(rrq.SagaConfig{Repo: node.Repo(), Name: "xfer", Steps: steps()})
	if err != nil {
		log.Fatal(err)
	}
	go saga.Serve(ctx)

	clerk := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{ClientID: "teller-1", RequestQueue: saga.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n-- transfer 1: alice → bob 100 (with an injected stage crash) --")
	rep, err := clerk.Transceive(ctx, "rid-000001", []byte("alice bob 100"), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply: %q (status %s)\n", rep.Body, rep.Status)
	fmt.Printf("balances: alice=%d bob=%d\n", balance(node, "alice"), balance(node, "bob"))

	fmt.Println("\n-- transfer 2: alice → bob 200, canceled after the debit committed --")
	// Park the request between debit and credit by stopping the credit
	// stage's input queue, so the cancellation window is deterministic.
	if err := node.Repo().StopQueue("xfer.s1"); err != nil {
		log.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-000002", []byte("alice bob 200"), nil); err != nil {
		log.Fatal(err)
	}
	for balance(node, "alice") != 700 { // wait for the debit
		time.Sleep(2 * time.Millisecond)
	}
	fmt.Printf("debit committed: alice=%d — now cancel\n", balance(node, "alice"))
	outcome, err := saga.Cancel(ctx, "rid-000002")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cancel outcome: %s\n", outcome)
	rep, err = clerk.Receive(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply: status %s (%q)\n", rep.Status, rep.Body)
	fmt.Printf("balances after compensation: alice=%d bob=%d\n", balance(node, "alice"), balance(node, "bob"))

	if balance(node, "alice") != 900 || balance(node, "bob") != 600 {
		log.Fatal("conservation violated")
	}
	fmt.Println("\nmoney conserved: exactly one transfer happened, one was compensated")
}
