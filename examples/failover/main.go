// Failover: the paper's availability story (§10–11) end to end. A primary
// node serves requests while a shipper maintains a warm standby from its
// write-ahead log; the primary is killed mid-workload; the standby is
// promoted (ordinary crash recovery on the shipped files); and the same
// client — with no stable storage of its own — reconnects against the
// standby, resynchronizes from its persistent registration, and finishes
// its work with no request lost or duplicated.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/replica"
	"repro/rrq"
)

func startServing(ctx context.Context, node *rrq.Node) {
	srv, err := rrq.NewServer(rrq.ServerConfig{
		Repo: node.Repo(), Queue: "orders",
		Handler: func(rc *rrq.ReqCtx) ([]byte, error) {
			// Record the order in the shared database; the execution count
			// is the exactly-once witness.
			v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "orders", rc.Request.RID, true)
			if err != nil {
				return nil, err
			}
			n := 0
			if v != nil {
				n, _ = strconv.Atoi(string(v))
			}
			if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "orders", rc.Request.RID, []byte(strconv.Itoa(n+1))); err != nil {
				return nil, err
			}
			return []byte("order accepted: " + string(rc.Request.Body)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ctx)
}

func main() {
	base, err := os.MkdirTemp("", "rrq-failover-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	primaryDir := filepath.Join(base, "primary")
	standbyDir := filepath.Join(base, "standby")

	primary, err := rrq.StartNode(rrq.NodeConfig{Dir: primaryDir})
	if err != nil {
		log.Fatal(err)
	}
	if err := primary.CreateQueue(rrq.QueueConfig{Name: "orders"}); err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	startServing(ctx, primary)

	// The shipper: every 5ms, copy the primary's new log bytes to the
	// standby directory.
	shipper, err := replica.NewShipper(primaryDir, standbyDir)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := shipper.SyncOnce(); err != nil {
		log.Fatal(err)
	}
	shipCtx, stopShipping := context.WithCancel(ctx)
	go shipper.Run(shipCtx, 5*time.Millisecond)

	// The client works through half its orders against the primary.
	clerk := rrq.NewClerk(primary.LocalConn(), rrq.ClerkConfig{ClientID: "desk-1", RequestQueue: "orders"})
	if _, err := clerk.Connect(ctx); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		rid := fmt.Sprintf("ord-%03d", i)
		rep, err := clerk.Transceive(ctx, rid, []byte(fmt.Sprintf("42 widgets (%s)", rid)), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("primary: %s\n", rep.Body)
		time.Sleep(3 * time.Millisecond) // let shipping keep pace
	}
	// One more request is SENT but its reply not yet received when
	// disaster strikes.
	if err := clerk.Send(ctx, "ord-005", []byte("19 sprockets (ord-005)"), nil); err != nil {
		log.Fatal(err)
	}
	time.Sleep(25 * time.Millisecond) // final changes reach the standby

	fmt.Println("\n*** PRIMARY DIES (replication link included) ***")
	stopShipping()
	primary.Crash()

	// Promotion: ordinary crash recovery on the shipped directory.
	if err := replica.VerifyStandby(standbyDir); err != nil {
		log.Fatal(err)
	}
	standby, err := rrq.StartNode(rrq.NodeConfig{Dir: standbyDir})
	if err != nil {
		log.Fatal(err)
	}
	defer standby.Close()
	startServing(ctx, standby)
	fmt.Println("standby promoted; services restarted")

	// The client reconnects against the standby. Its registration shipped
	// with the log: resynchronization works exactly as after any failure.
	clerk2 := rrq.NewClerk(standby.LocalConn(), rrq.ClerkConfig{ClientID: "desk-1", RequestQueue: "orders"})
	info, err := clerk2.Connect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resync on standby: outstanding=%v srid=%s\n", info.Outstanding, info.SRID)
	if info.Outstanding {
		rep, err := clerk2.Receive(ctx, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("standby: %s (the in-flight request survived the failover)\n", rep.Body)
	}
	for i := 6; i < 10; i++ {
		rid := fmt.Sprintf("ord-%03d", i)
		rep, err := clerk2.Transceive(ctx, rid, []byte(fmt.Sprintf("7 gaskets (%s)", rid)), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("standby: %s\n", rep.Body)
	}

	// Exactly-once across the failover.
	dups := 0
	for i := 0; i < 10; i++ {
		v, ok, _ := standby.Repo().KVGet(ctx, nil, "orders", fmt.Sprintf("ord-%03d", i), false)
		if ok && string(v) != "1" {
			dups++
		}
	}
	if dups > 0 {
		log.Fatalf("%d orders executed more than once", dups)
	}
	fmt.Println("\nevery order executed exactly once, across the failover")
}
