// Failover: the paper's availability story (§10–11) end to end, with the
// full automatic machinery (DESIGN.md §12). A primary node serves orders
// over RPC while replicating synchronously to a warm standby — no commit
// is acknowledged before the standby has its WAL bytes. The primary is
// killed mid-workload; the standby's lease expires, it promotes itself
// (bumping the persisted fencing epoch) and opens the replicated
// directory as a live node; and the same client — a ResilientClerk with
// no stable storage of its own — rides through the switch: its recovery
// loop re-resolves the primary, reconnects, resynchronizes from its
// persistent registration, and finishes the work with no order lost or
// duplicated.
//
//	go run ./examples/failover
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strconv"
	"sync/atomic"
	"time"

	"repro/rrq"
)

func startServing(ctx context.Context, node *rrq.Node) {
	srv, err := rrq.NewServer(rrq.ServerConfig{
		Repo: node.Repo(), Queue: "orders",
		Handler: func(rc *rrq.ReqCtx) ([]byte, error) {
			// Record the order in the shared database; the execution count
			// is the exactly-once witness.
			v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "orders", rc.Request.RID, true)
			if err != nil {
				return nil, err
			}
			n := 0
			if v != nil {
				n, _ = strconv.Atoi(string(v))
			}
			if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "orders", rc.Request.RID, []byte(strconv.Itoa(n+1))); err != nil {
				return nil, err
			}
			return []byte("order accepted: " + string(rc.Request.Body)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ctx)
}

func main() {
	base, err := os.MkdirTemp("", "rrq-failover-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	primaryDir := filepath.Join(base, "primary")
	standbyDir := filepath.Join(base, "standby")

	// Fixed loopback ports so each side can name the other up front.
	const pAddr, sAddr = "127.0.0.1:17170", "127.0.0.1:17171"
	const leaseTTL = 400 * time.Millisecond

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	// activeAddr is the example's stand-in for service discovery: the
	// ResilientClerk's Reconnect factory reads it on every recovery.
	var activeAddr atomic.Value
	activeAddr.Store(pAddr)

	// The warm standby: receives the replication stream on sAddr and
	// lease-watches the primary. On lease expiry it promotes: the bumped
	// epoch is already durable (fencing any late ships), its RPC server
	// has closed, and OnPromote opens the very same directory — with
	// every synchronously acked order in it — as the live node.
	promotedNode := make(chan *rrq.Node, 1)
	standby, err := rrq.StartStandby(rrq.StandbyConfig{
		Dir:         standbyDir,
		ListenAddr:  sAddr,
		PrimaryAddr: pAddr,
		LeaseTTL:    leaseTTL,
		OnPromote: func(epoch uint64) {
			fmt.Printf("\n*** standby promoted (epoch %d); opening replicated directory ***\n", epoch)
			var node *rrq.Node
			var err error
			for i := 0; ; i++ { // the port was released moments ago
				node, err = rrq.StartNode(rrq.NodeConfig{Dir: standbyDir, ListenAddr: sAddr})
				if err == nil || i >= 20 {
					break
				}
				time.Sleep(20 * time.Millisecond)
			}
			if err != nil {
				log.Fatal(err)
			}
			startServing(ctx, node)
			activeAddr.Store(sAddr)
			promotedNode <- node
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer standby.Close()

	// The primary: sync replication — a commit's ack waits for the
	// standby's ack of the shipped batch.
	primary, err := rrq.StartNode(rrq.NodeConfig{
		Dir:        primaryDir,
		ListenAddr: pAddr,
		Replication: &rrq.ReplicationConfig{
			Mode:        rrq.ReplSync,
			StandbyAddr: sAddr,
			LeaseTTL:    leaseTTL,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := primary.CreateQueue(rrq.QueueConfig{Name: "orders"}); err != nil {
		log.Fatal(err)
	}
	startServing(ctx, primary)

	// The client: a self-healing clerk whose Reconnect factory re-resolves
	// the active address — the whole failover story from its side.
	clerk := rrq.NewResilientClerk(rrq.Dial(pAddr), rrq.ResilientConfig{
		Clerk: rrq.ClerkConfig{ClientID: "desk-1", RequestQueue: "orders"},
		Reconnect: func(ctx context.Context) (rrq.QMConn, error) {
			return rrq.Dial(activeAddr.Load().(string)), nil
		},
	})

	for i := 0; i < 5; i++ {
		rid := fmt.Sprintf("ord-%03d", i)
		rep, err := clerk.Transceive(ctx, rid, []byte(fmt.Sprintf("42 widgets (%s)", rid)), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("primary: %s\n", rep.Body)
	}

	fmt.Println("\n*** PRIMARY DIES ***")
	primary.Crash()

	// The same clerk keeps ordering. Its next call fails over: the dial
	// errors are retryable, recovery re-resolves to the standby once the
	// lease expires, and resynchronization from the shipped registration
	// state keeps everything exactly-once.
	for i := 5; i < 10; i++ {
		rid := fmt.Sprintf("ord-%03d", i)
		rep, err := clerk.Transceive(ctx, rid, []byte(fmt.Sprintf("7 gaskets (%s)", rid)), nil, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("standby: %s\n", rep.Body)
	}

	node := <-promotedNode
	defer node.Close()

	// Exactly-once across the failover: every synchronously replicated
	// order executed once, on one side or the other — never twice.
	bad := 0
	for i := 0; i < 10; i++ {
		rid := fmt.Sprintf("ord-%03d", i)
		v, ok, _ := node.Repo().KVGet(ctx, nil, "orders", rid, false)
		if !ok || string(v) != "1" {
			bad++
		}
	}
	if bad > 0 {
		log.Fatalf("%d orders lost or duplicated", bad)
	}
	fmt.Printf("\nfailovers masked by the clerk: %d\n", clerk.Failovers()+clerk.Recoveries())
	fmt.Println("every order executed exactly once, across an automatic failover")
}
