// Batch bank: the paper's Section 1 operational properties in one run —
// batch input (requests captured reliably, processed later), load sharing
// (several server instances draining one queue), priorities (wire
// transfers before standing orders), buffering of bursts, an alert
// threshold, and an error queue catching a poison request.
//
//	go run ./examples/batchbank
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/rrq"
)

func main() {
	dir, err := os.MkdirTemp("", "rrq-batch-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	node, err := rrq.StartNode(rrq.NodeConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	if err := node.CreateQueue(rrq.QueueConfig{
		Name:           "payments",
		ErrorQueue:     "payments.err",
		RetryLimit:     3,
		AlertThreshold: 40,
	}); err != nil {
		log.Fatal(err)
	}
	if err := node.CreateQueue(rrq.QueueConfig{Name: "payments.err"}); err != nil {
		log.Fatal(err)
	}
	node.Repo().SetAlertFunc(func(q string, depth int) {
		fmt.Printf("[alert] queue %s reached depth %d — burst absorbed, backlog building\n", q, depth)
	})

	// Batch input: 60 payments arrive in a burst while NO servers run.
	// They are captured reliably and sit in the queue.
	fmt.Println("-- burst: 60 payments captured with no server running --")
	clerkConn := node.LocalConn()
	for i := 0; i < 60; i++ {
		prio := int32(0)
		kind := "standing-order"
		if i%5 == 0 {
			prio, kind = 5, "wire-transfer"
		}
		body := fmt.Sprintf("%s payment-%02d amount=%d", kind, i, 10+i)
		if i == 33 {
			body = "POISON corrupt-record"
		}
		e := rrq.NewRequestElement(fmt.Sprintf("rid-%02d", i), "batch-feed", "", []byte(body), map[string]string{"kind": kind})
		e.Priority = prio
		if _, err := node.Repo().Enqueue(nil, "payments", e, "", nil); err != nil {
			log.Fatal(err)
		}
	}
	d, _ := node.Repo().Depth("payments")
	fmt.Printf("queue depth after burst: %d\n\n", d)

	// Load sharing: three teller servers drain the single queue.
	fmt.Println("-- three server instances start and share the backlog --")
	var mu sync.Mutex
	perServer := map[string]int{}
	order := []string{}
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("teller-%d", i)
		srv, err := rrq.NewServer(rrq.ServerConfig{
			Repo: node.Repo(), Queue: "payments", Name: name,
			Handler: func(rc *rrq.ReqCtx) ([]byte, error) {
				if string(rc.Request.Body[:6]) == "POISON" {
					return nil, fmt.Errorf("cannot parse payment record")
				}
				// Record the ledger entry transactionally.
				if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "ledger", strconv.FormatUint(uint64(rc.Request.EID), 10), rc.Request.Body); err != nil {
					return nil, err
				}
				mu.Lock()
				perServer[name]++
				order = append(order, string(rc.Request.Body))
				mu.Unlock()
				time.Sleep(time.Millisecond) // simulated work
				return []byte("posted"), nil
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		go srv.Serve(ctx)
	}

	// Wait for the backlog to drain (59 good payments; 1 poison diverts).
	deadline := time.Now().Add(30 * time.Second)
	for {
		d, _ := node.Repo().Depth("payments")
		ed, _ := node.Repo().Depth("payments.err")
		if d == 0 && ed == 1 {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("backlog never drained: depth=%d err=%d", d, ed)
		}
		time.Sleep(10 * time.Millisecond)
	}

	mu.Lock()
	fmt.Println("work distribution across instances:")
	total := 0
	for name, n := range perServer {
		fmt.Printf("  %s processed %d payments\n", name, n)
		total += n
	}
	// High-priority wire transfers were taken from the backlog first.
	wiresInFirst15 := 0
	for _, b := range order[:15] {
		if len(b) >= 4 && b[:4] == "wire" {
			wiresInFirst15++
		}
	}
	mu.Unlock()
	fmt.Printf("total processed: %d (poison diverted to payments.err)\n", total)
	fmt.Printf("wire transfers among the first 15 processed: %d of 12 queued\n", wiresInFirst15)

	errEl, err := node.Repo().Dequeue(ctx, nil, "payments.err", "", rrq.DequeueOpts{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("error queue holds: %q after %d aborted attempts (%s)\n", errEl.Body, errEl.AbortCount, errEl.AbortCode)

	_ = clerkConn
	fmt.Println("\nbatch drained; every good payment posted exactly once")
}
