// Tracedemo: submit one request through a traced node and dump its
// assembled span tree — submit, enqueue (with its WAL LSN), queue
// residency, processing transaction, commit, reply — from the admin
// endpoint.
//
//	go run ./examples/tracedemo
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"time"

	"repro/rrq"
)

func main() {
	dir, err := os.MkdirTemp("", "rrq-tracedemo-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	node, err := rrq.StartNode(rrq.NodeConfig{
		Dir:       dir,
		AdminAddr: "127.0.0.1:0",
		Trace:     true,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	if err := node.CreateQueue(rrq.QueueConfig{Name: "requests"}); err != nil {
		log.Fatal(err)
	}

	srv, err := rrq.NewServer(rrq.ServerConfig{
		Repo:  node.Repo(),
		Queue: "requests",
		Handler: func(rc *rrq.ReqCtx) ([]byte, error) {
			time.Sleep(2 * time.Millisecond) // visible handler time
			return []byte("done: " + string(rc.Request.Body)), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	// The clerk stamps each Send with a fresh trace id; every layer the
	// request touches adds spans under it.
	clerk := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{
		ClientID:     "tracedemo-client",
		RequestQueue: "requests",
		Tracer:       node.Tracer(),
	})
	if _, err := clerk.Connect(ctx); err != nil {
		log.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-000001", []byte("trace me"), nil); err != nil {
		log.Fatal(err)
	}
	rep, err := clerk.Receive(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply: %q\n", rep.Body)

	id := clerk.LastTrace()
	url := fmt.Sprintf("http://%s/trace/%s", node.AdminAddr(), id)
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	j, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, j, "", "  "); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("span tree (GET %s):\n%s\n", url, pretty.String())
}
