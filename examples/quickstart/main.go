// Quickstart: one node, one server, one client — the paper's fig. 4 system
// in ~60 lines.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/rrq"
)

func main() {
	dir, err := os.MkdirTemp("", "rrq-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// A node is a back-end: recoverable queues + shared database + log.
	node, err := rrq.StartNode(rrq.NodeConfig{Dir: dir})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	if err := node.CreateQueue(rrq.QueueConfig{Name: "requests"}); err != nil {
		log.Fatal(err)
	}

	// The server: dequeue a request, process it, enqueue the reply — all
	// one transaction (fig. 5). Here it upper-cases the body and records
	// the request in the shared database.
	srv, err := rrq.NewServer(rrq.ServerConfig{
		Repo:  node.Repo(),
		Queue: "requests",
		Handler: func(rc *rrq.ReqCtx) ([]byte, error) {
			if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "audit", rc.Request.RID, rc.Request.Body); err != nil {
				return nil, err
			}
			out := []byte(fmt.Sprintf("HELLO, %s!", rc.Request.Body))
			return out, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	// The client: Connect, Send, Receive (the Client Model, fig. 1). The
	// clerk runs no transactions — the queue is the gateway between the
	// non-transactional front end and the transactional back end.
	clerk := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{
		ClientID:     "quickstart-client",
		RequestQueue: "requests",
	})
	info, err := clerk.Connect(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("connected (previous session: outstanding=%v)\n", info.Outstanding)

	if err := clerk.Send(ctx, "rid-000001", []byte("world"), nil); err != nil {
		log.Fatal(err)
	}
	fmt.Println("request sent — it is now stably stored; a crash cannot lose it")

	rep, err := clerk.Receive(ctx, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reply %s: %q (status %s)\n", rep.RID, rep.Body, rep.Status)

	// The reply can be re-read (Rereceive) until the next request — the
	// basis of at-least-once reply processing.
	again, err := clerk.Rereceive(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("rereceive: %q\n", again.Body)

	if err := clerk.Disconnect(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("done")
}
