// Package repro is a from-scratch Go reproduction of Bernstein, Hsu &
// Mann, "Implementing Recoverable Requests Using Queues" (SIGMOD 1990).
//
// The public API lives in repro/rrq; the substrates (write-ahead log, lock
// manager, transaction manager, two-phase commit, queue manager, RPC,
// failure injection) live under internal/. bench_test.go in this directory
// holds the testing.B benchmark per experiment; cmd/reprobench regenerates
// the full experiment tables of EXPERIMENTS.md.
package repro
