package repro

// The self-healing soak: a client drives hundreds of requests through a
// fault-injecting network — random dial refusals, connections severed on
// the write path (request delivered, reply lost) and on the read path
// (reply lost in transit), plus hard partitions that cut every live
// connection at once — and the test body contains ZERO recovery logic.
// The ResilientClerk masks everything: each Transceive call either
// returns the request's reply or the test fails. At the end every
// request must have executed exactly once and every reply must have been
// delivered — the paper's guarantee (Sections 2–3), surviving a network
// the paper's authors would recognize as actively hostile.

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/rpc"
)

// chaosWorld is one QM node behind a fault-injecting network: a NoFsync
// repository served over RPC, with request servers polling it directly
// (the paper's fig. 4 — only the client↔QM path crosses the network).
type chaosWorld struct {
	repo *queue.Repository
	net  *chaos.Network
	reg  *obs.Registry
	addr string
}

func newChaosWorld(t *testing.T, seed int64, servers int) *chaosWorld {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for s := 0; s < servers; s++ {
		srv, err := core.NewServer(core.ServerConfig{
			Repo: repo, Queue: "req", Name: fmt.Sprintf("chaos-srv-%d", s),
			Handler: func(rc *core.ReqCtx) ([]byte, error) {
				v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, true)
				if err != nil {
					return nil, err
				}
				n := 0
				if v != nil {
					n, _ = strconv.Atoi(string(v))
				}
				if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, []byte(strconv.Itoa(n+1))); err != nil {
					return nil, err
				}
				return append([]byte("echo:"), rc.Request.Body...), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ctx)
	}
	reg := obs.NewRegistry()
	rsrv := rpc.NewServerWith(reg)
	// A permissive cap: never sheds the sequential clients below, but keeps
	// the admission-control accounting on the soak's hot path.
	rsrv.SetLimits(rpc.Limits{MaxInflight: 8})
	qservice.New(repo, rsrv)
	addr, err := rsrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rsrv.Close() })
	return &chaosWorld{repo: repo, net: chaos.NewNetwork(seed), reg: reg, addr: addr}
}

// clerk returns a fresh ResilientClerk dialing through the chaos network.
func (w *chaosWorld) clerk(t *testing.T, clientID string, seed int64) *core.ResilientClerk {
	t.Helper()
	rcl := rpc.NewClient(w.addr, rpc.Dialer(w.net.Dialer(nil)))
	t.Cleanup(func() { rcl.Close() })
	return core.NewResilientClerk(qservice.NewClient(rcl), core.ResilientConfig{
		Clerk:   core.ClerkConfig{ClientID: clientID, RequestQueue: "req", ReceiveWait: 300 * time.Millisecond},
		Backoff: core.BackoffPolicy{Initial: time.Millisecond, Max: 50 * time.Millisecond},
		Metrics: w.reg,
		Seed:    seed,
	})
}

func (w *chaosWorld) execCount(t *testing.T, rid string) int {
	t.Helper()
	v, _, err := w.repo.KVGet(context.Background(), nil, "execs", rid, false)
	if err != nil {
		t.Fatal(err)
	}
	n, _ := strconv.Atoi(string(v))
	return n
}

func TestChaosSoakSelfHealing(t *testing.T) {
	n := 500
	if testing.Short() {
		n = 60
	}
	w := newChaosWorld(t, 7, 3)
	w.net.SetDialFailProb(0.10)
	w.net.SetCutProb(0.05)
	w.net.SetReadCutProb(0.03)

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	rc := w.clerk(t, "soak", 7)

	// Two hard partitions mid-run, each healed 150ms later: every live
	// connection severed, every dial refused until the heal.
	partitionAt := map[int]bool{n / 3: true, 2 * n / 3: true}

	for i := 0; i < n; i++ {
		if partitionAt[i] {
			w.net.Partition(true)
			time.AfterFunc(150*time.Millisecond, func() { w.net.Partition(false) })
		}
		rid := fmt.Sprintf("rid-%06d", i)
		rep, err := rc.Transceive(ctx, rid, []byte(rid), nil, nil)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if rep.RID != rid || string(rep.Body) != "echo:"+rid {
			t.Fatalf("request %d: reply %q/%q", i, rep.RID, rep.Body)
		}
	}

	// Zero lost (every Transceive returned above), zero duplicates:
	for i := 0; i < n; i++ {
		rid := fmt.Sprintf("rid-%06d", i)
		if got := w.execCount(t, rid); got != 1 {
			t.Errorf("%s executed %d times, want exactly 1", rid, got)
		}
	}
	// The soak is only meaningful if the network actually hurt us.
	if rc.Recoveries() == 0 {
		t.Error("zero recoveries: chaos injected no faults; soak is vacuous")
	}
	if rc.Retries() == 0 {
		t.Error("zero retries: chaos injected no faults; soak is vacuous")
	}
	// The connection gauge proves dead conns are pruned: after hundreds of
	// cut/redial cycles at most the one live connection remains tracked.
	if got := w.net.Conns(); got > 2 {
		t.Errorf("live tracked connections = %d, want <= 2 (conn leak)", got)
	}
	t.Logf("soak: %d requests, %d recoveries, %d retries, %d live conns",
		n, rc.Recoveries(), rc.Retries(), w.net.Conns())
}

// TestChaosDeviceDispenseExactlyOnce runs the Section 3 physical-device
// protocol under the same hostile network, with the client additionally
// crash-cycled at the worst spot — after the reply dequeue commits, before
// the cash leaves the machine. Every withdrawal must dispense exactly once:
// the ExactlyOnceGuard's checkpoint (stored with the reply dequeue,
// recovered via Connect) decides whether a recovered reply was already
// acted on.
func TestChaosDeviceDispenseExactlyOnce(t *testing.T) {
	const withdrawals = 20
	const amount = 20
	w := newChaosWorld(t, 11, 2)
	w.net.SetCutProb(0.08)
	w.net.SetReadCutProb(0.04)

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	disp := device.NewCashDispenser()
	guard := &device.ExactlyOnceGuard{Device: disp}
	life := 0
	newLife := func() *core.ResilientClerk {
		life++
		return w.clerk(t, "atm", int64(life))
	}
	dispense := func(rep core.Reply) {
		amt, err := strconv.Atoi(strings.TrimPrefix(string(rep.Body), "echo:"))
		if err != nil {
			t.Fatalf("bad reply body %q: %v", rep.Body, err)
		}
		disp.Dispense(amt)
	}

	rc := newLife()
	for i := 0; i < withdrawals; i++ {
		rid := fmt.Sprintf("wd-%04d", i)
		rep, err := rc.Transceive(ctx, rid, []byte(strconv.Itoa(amount)), nil, guard.Ckpt())
		if err != nil {
			t.Fatalf("withdrawal %d: %v", i, err)
		}
		if i%5 == 4 {
			// Client crash between the reply dequeue committing and the
			// physical dispense. The next life resynchronizes, sees the
			// checkpoint equals the device state (nothing dispensed), and
			// must reprocess the recovered reply — exactly once.
			rc = newLife()
			info, err := rc.Connect(ctx)
			if err != nil {
				t.Fatalf("withdrawal %d reconnect: %v", i, err)
			}
			if info.RRID != rid {
				t.Fatalf("withdrawal %d: resync RRID %q, want %q", i, info.RRID, rid)
			}
			if guard.AlreadyProcessed(info.Ckpt) {
				t.Fatalf("withdrawal %d: guard claims processed before any dispense", i)
			}
			rep, err = rc.Transceive(ctx, rid, []byte(strconv.Itoa(amount)), nil, guard.Ckpt())
			if err != nil {
				t.Fatalf("withdrawal %d redo: %v", i, err)
			}
			dispense(rep)

			// Crash again, now after the dispense: the device state moved
			// past the stored checkpoint, so the guard must forbid a second
			// physical effect for the same reply.
			rc = newLife()
			info, err = rc.Connect(ctx)
			if err != nil {
				t.Fatalf("withdrawal %d re-reconnect: %v", i, err)
			}
			if info.RRID == rid && !guard.AlreadyProcessed(info.Ckpt) {
				t.Fatalf("withdrawal %d: guard would double-dispense", i)
			}
		} else {
			dispense(rep)
		}
	}

	if got := disp.Total(); got != withdrawals*amount {
		t.Errorf("dispensed total %d, want %d", got, withdrawals*amount)
	}
	if got := disp.Events(); got != withdrawals {
		t.Errorf("dispense events %d, want %d (exactly one per withdrawal)", got, withdrawals)
	}
	for i := 0; i < withdrawals; i++ {
		rid := fmt.Sprintf("wd-%04d", i)
		if got := w.execCount(t, rid); got != 1 {
			t.Errorf("%s executed %d times, want exactly 1", rid, got)
		}
	}
}
