package repro

// Failover under fire: the tentpole robustness proof for DESIGN.md §12.
// A sync-replicating primary serves 8-way concurrent clerk load while a
// warm standby lease-watches it; mid-load the primary's WAL device is
// poisoned (internal/chaos/walfault) in the middle of group commit and
// the node is crashed. The standby's lease expires, it self-promotes
// with a bumped, persisted fencing epoch, and opens the replicated
// directory as the live node. The same clerks — their Reconnect factory
// re-resolving the active address — finish the workload against it.
//
// The verdict is the exactly-once witness: every request executed
// exactly once, across the failover. Acked requests are present on the
// new primary (a lost acked exec would read 0), unacked in-flight
// requests were retried to completion (a non-atomic partial would read
// 2), and nothing executed twice.

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/chaos/walfault"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/rrq"
)

// serveOrders starts request servers over the node with the KV
// exec-count exactly-once witness handler.
func serveOrders(ctx context.Context, t *testing.T, node *rrq.Node, servers int) {
	t.Helper()
	for s := 0; s < servers; s++ {
		srv, err := rrq.NewServer(rrq.ServerConfig{
			Repo: node.Repo(), Queue: "req", Name: fmt.Sprintf("fo-srv-%d", s),
			Handler: func(rc *rrq.ReqCtx) ([]byte, error) {
				v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, true)
				if err != nil {
					return nil, err
				}
				n := 0
				if v != nil {
					n, _ = strconv.Atoi(string(v))
				}
				if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, []byte(strconv.Itoa(n+1))); err != nil {
					return nil, err
				}
				return append([]byte("echo:"), rc.Request.Body...), nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		go srv.Serve(ctx)
	}
}

func TestFailoverUnderFire(t *testing.T) {
	const clients = 8
	perClient := 30
	if testing.Short() {
		perClient = 10
	}
	total := clients * perClient
	const leaseTTL = 300 * time.Millisecond

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	fs := walfault.New(31)

	// activeAddr is the test's service discovery: clerks re-resolve it on
	// every recovery.
	var activeAddr atomic.Value

	// The standby: ships land on its own port; the lease transport dials
	// the primary lazily (the primary starts second, with the standby's
	// address in hand).
	ready := make(chan struct{})
	var leaseRPC rrq.ReplTransport
	leaseTr := replica.TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		select {
		case <-ready:
			return leaseRPC.Exchange(ctx, req)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	var promotedAt atomic.Value
	promotedNode := make(chan *rrq.Node, 1)
	standby, err := rrq.StartStandby(rrq.StandbyConfig{
		Dir:            standbyDir,
		ListenAddr:     "127.0.0.1:0",
		LeaseTTL:       leaseTTL,
		NoFsync:        true,
		LeaseTransport: leaseTr,
		OnPromote: func(epoch uint64) {
			promotedAt.Store(time.Now())
			node, err := rrq.StartNode(rrq.NodeConfig{
				Dir: standbyDir, ListenAddr: "127.0.0.1:0", NoFsync: true, GroupCommit: true,
			})
			if err != nil {
				t.Errorf("promotion start: %v", err)
				return
			}
			serveOrders(ctx, t, node, 2)
			activeAddr.Store(node.Addr())
			promotedNode <- node
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()

	// The primary: group commit plus sync replication — no ack without
	// the standby holding the bytes — over the fault-injecting WAL device.
	primary, err := rrq.StartNode(rrq.NodeConfig{
		Dir:         primaryDir,
		ListenAddr:  "127.0.0.1:0",
		NoFsync:     true,
		GroupCommit: true,
		WALFS:       fs,
		Replication: &rrq.ReplicationConfig{
			Mode:        rrq.ReplSync,
			StandbyAddr: standby.Addr(),
			LeaseTTL:    leaseTTL,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := primary.CreateQueue(rrq.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	serveOrders(ctx, t, primary, 2)
	activeAddr.Store(primary.Addr())
	leaseRPC = replica.NewRPCTransport(rpc.NewClient(primary.Addr(), nil), replica.MethodLease)
	close(ready)

	// The assassin: once the WAL poisons (the armed fault fired inside a
	// group-commit flush), kill the primary outright. Its RPC server dies
	// with it, the standby's lease runs out, and failover begins.
	var crashedAt atomic.Value
	monitorDone := make(chan struct{})
	go func() {
		defer close(monitorDone)
		for ctx.Err() == nil {
			if primary.Repo().WALErr() != nil {
				crashedAt.Store(time.Now())
				primary.Crash()
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// 8-way fire. Each clerk owns its rid space; a test-level retry wraps
	// Transceive because commits against the poisoned-but-not-yet-crashed
	// WAL surface as terminal server errors — re-entering with the same
	// rid IS the paper's fig. 2 recovery, and exactly-once holds across it.
	var completed atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rc := rrq.NewResilientClerk(rrq.Dial(activeAddr.Load().(string)), rrq.ResilientConfig{
				Clerk:   rrq.ClerkConfig{ClientID: fmt.Sprintf("fo-c%d", c), RequestQueue: "req", ReceiveWait: 300 * time.Millisecond},
				Backoff: rrq.BackoffPolicy{Initial: time.Millisecond, Max: 50 * time.Millisecond},
				Seed:    int64(c + 1),
				Reconnect: func(ctx context.Context) (rrq.QMConn, error) {
					return rrq.Dial(activeAddr.Load().(string)), nil
				},
			})
			for i := 0; i < perClient; i++ {
				rid := fmt.Sprintf("fo-c%d-%04d", c, i)
				for {
					rep, err := rc.Transceive(ctx, rid, []byte(rid), nil, nil)
					if err == nil {
						if rep.RID != rid || string(rep.Body) != "echo:"+rid {
							t.Errorf("%s: bad reply %q/%q", rid, rep.RID, rep.Body)
						}
						break
					}
					if ctx.Err() != nil {
						t.Errorf("%s: %v", rid, err)
						return
					}
					time.Sleep(20 * time.Millisecond)
				}
				// A third of the way through the workload, arm the WAL fault:
				// a few more segment writes and a mid-group-commit flush fails
				// with concurrent committers parked on it.
				if completed.Add(1) == int64(total/3) {
					fs.FailAfterWrites(3)
				}
			}
		}(c)
	}
	wg.Wait()
	<-monitorDone

	if !fs.Failed() {
		t.Fatal("the WAL fault never fired; the soak proved nothing")
	}
	if !standby.Promoted() {
		t.Fatal("standby never promoted")
	}
	var node *rrq.Node
	select {
	case node = <-promotedNode:
	case <-time.After(10 * time.Second):
		t.Fatal("promoted node never came up")
	}
	defer node.Close()

	// Failover latency: from the primary's crash to the standby's
	// promotion decision must be about one lease TTL (CI slack allowed).
	if c, p := crashedAt.Load(), promotedAt.Load(); c != nil && p != nil {
		lat := p.(time.Time).Sub(c.(time.Time))
		if lat > 4*leaseTTL {
			t.Errorf("failover took %v, want about one lease TTL (%v)", lat, leaseTTL)
		}
		t.Logf("failover latency: %v (lease TTL %v)", lat, leaseTTL)
	}

	// The exactly-once verdict, request by request, on the new primary.
	lost, duped := 0, 0
	for c := 0; c < clients; c++ {
		for i := 0; i < perClient; i++ {
			rid := fmt.Sprintf("fo-c%d-%04d", c, i)
			v, ok, err := node.Repo().KVGet(ctx, nil, "execs", rid, false)
			if err != nil {
				t.Fatal(err)
			}
			switch {
			case !ok:
				lost++
				t.Errorf("%s: acked but absent on the new primary", rid)
			case string(v) != "1":
				duped++
				t.Errorf("%s: executed %s times, want exactly 1", rid, v)
			}
		}
	}
	t.Logf("failover soak: %d requests, %d lost, %d duplicated, epoch %d",
		total, lost, duped, standby.Epoch())
}

// TestSplitBrainFencing cuts ONLY the lease path, the nastiest failover:
// the standby promotes (the primary looks dead to it) while the old
// primary is alive, healthy, and still able to reach the standby's ship
// endpoint. Epoch fencing must step in: the promoted receiver rejects
// the stale-epoch ship, the sender goes sticky-fenced, and the
// ex-primary's next commit FAILS — it can never ack a request the new
// primary won't have. Two primaries, zero split-brain acks.
func TestSplitBrainFencing(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	const leaseTTL = 200 * time.Millisecond

	// Ship path: in-process, never cut. Lease path: cuttable.
	var leaseCut atomic.Bool
	ready := make(chan struct{})
	var leaseRPC rrq.ReplTransport
	leaseTr := replica.TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		if leaseCut.Load() {
			return nil, errors.New("lease path partitioned")
		}
		select {
		case <-ready:
			return leaseRPC.Exchange(ctx, req)
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	})
	standby, err := rrq.StartStandby(rrq.StandbyConfig{
		Dir:            standbyDir,
		LeaseTTL:       leaseTTL,
		NoFsync:        true,
		LeaseTransport: leaseTr,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer standby.Close()

	shipTr := replica.TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return standby.Receiver().Apply(req), nil
	})
	primary, err := rrq.StartNode(rrq.NodeConfig{
		Dir:        primaryDir,
		ListenAddr: "127.0.0.1:0",
		NoFsync:    true,
		Replication: &rrq.ReplicationConfig{
			Mode:      rrq.ReplSync,
			Transport: shipTr,
			LeaseTTL:  leaseTTL,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer primary.Close()
	if err := primary.CreateQueue(rrq.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	leaseRPC = replica.NewRPCTransport(rpc.NewClient(primary.Addr(), nil), replica.MethodLease)
	close(ready)

	// Healthy phase: synchronously acked commits.
	const ackedBefore = 10
	for i := 0; i < ackedBefore; i++ {
		if _, err := primary.Repo().Enqueue(nil, "q", rrq.Element{Body: []byte(fmt.Sprintf("acked-%d", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	st := primary.Replication()
	if st.AckedLSN != st.DurableLSN {
		t.Fatalf("healthy phase: acked %d != durable %d", st.AckedLSN, st.DurableLSN)
	}

	// Partition the lease path only. The standby sees a dead primary and
	// promotes; the primary sees nothing wrong yet.
	leaseCut.Store(true)
	epoch, ok := standby.WaitPromoted(ctx)
	if !ok {
		t.Fatal("standby did not promote after the lease cut")
	}
	if epoch == 0 {
		t.Fatal("promotion without an epoch bump")
	}

	// The ex-primary tries to commit: the ship hits the promoted receiver,
	// is answered FrameFenced, and the commit must fail fenced — the
	// split-brain ack never happens.
	_, err = primary.Repo().Enqueue(nil, "q", rrq.Element{Body: []byte("split-brain")}, "", nil)
	if !errors.Is(err, rrq.ErrFenced) {
		t.Fatalf("ex-primary commit: %v, want ErrFenced", err)
	}
	// The fencing is sticky: WAL poisoned, health failing, status fenced.
	if werr := primary.Repo().WALErr(); !errors.Is(werr, rrq.ErrFenced) {
		t.Fatalf("WALErr = %v, want fenced", werr)
	}
	if st := primary.Replication(); !st.Fenced {
		t.Fatalf("replication status not fenced: %+v", st)
	}
	if h := primary.Health(); h.Status != rrq.HealthFail {
		t.Fatalf("fenced primary health %q, want fail", h.Status)
	}

	// A raw stale-epoch exchange is rejected in-band too (the regression
	// guard for the receiver's fencing rule itself).
	stale := replica.AppendFrame(nil, &replica.Frame{Kind: replica.FrameHeartbeat, Epoch: epoch - 1, Seq: 99})
	f, _, err := replica.DecodeFrame(standby.Receiver().Apply(stale))
	if err != nil {
		t.Fatal(err)
	}
	if f.Kind != replica.FrameFenced || f.Epoch != epoch {
		t.Fatalf("stale-epoch ship answered kind %d epoch %d, want fenced at %d", f.Kind, f.Epoch, epoch)
	}

	// And nothing acked was lost: the promoted directory recovers with
	// every synchronously acked element.
	node, err := rrq.StartNode(rrq.NodeConfig{Dir: standbyDir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	d, err := node.Repo().Depth("q")
	if err != nil {
		t.Fatal(err)
	}
	if d != ackedBefore {
		t.Fatalf("new primary depth %d, want %d acked elements", d, ackedBefore)
	}
}
