// Command reprobench regenerates the experiment tables of EXPERIMENTS.md:
// one table per experiment id (E1–E12), each validating a stated claim of
// Bernstein, Hsu & Mann (SIGMOD 1990). See DESIGN.md §3 for the index.
//
//	reprobench                  # run everything, quick parameters
//	reprobench -exp e3,e4       # selected experiments
//	reprobench -full            # larger workloads, steadier numbers
//	reprobench -fsync           # real fsync on every commit
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/bench"
)

func main() {
	var (
		exp   = flag.String("exp", "", "comma-separated experiment ids (default: all)")
		full  = flag.Bool("full", false, "use the larger workload sizes")
		fsync = flag.Bool("fsync", false, "enable real fsync on commits")
		seed  = flag.Int64("seed", 42, "random seed")
		list  = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range bench.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := bench.Config{Quick: !*full, Seed: *seed, Fsync: *fsync}

	ids := bench.IDs()
	if *exp != "" {
		ids = strings.Split(*exp, ",")
	}
	failed := false
	for _, id := range ids {
		t, err := bench.Run(strings.TrimSpace(id), cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "reprobench: %s: %v\n", id, err)
			failed = true
			continue
		}
		t.Fprint(os.Stdout)
	}
	if failed {
		os.Exit(1)
	}
}
