// Command qmd runs a queue-manager node: a recoverable queue repository
// served over RPC (the back-end of the paper's fig. 4). Clients connect
// with rrq.Dial or the qmctl tool.
//
//	qmd -dir /var/lib/qmd -listen 127.0.0.1:7070 -queues requests,requests.err
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/rrq"
)

func main() {
	var (
		dir      = flag.String("dir", "", "durable state directory (required)")
		listen   = flag.String("listen", "127.0.0.1:7070", "RPC listen address")
		admin    = flag.String("admin", "", "admin HTTP listen address (GET /metrics serves the metrics registry as JSON)")
		name     = flag.String("name", "", "node name (default: basename of -dir)")
		queues   = flag.String("queues", "", "comma-separated queues to create at startup")
		snapshot = flag.Int("snapshot-every", 10000, "checkpoint after this many logged operations")
		noFsync  = flag.Bool("no-fsync", false, "disable fsync (testing only)")
		groupCmt = flag.Bool("group-commit", false, "batch concurrent commits' fsyncs")
		gcDelay  = flag.Duration("group-commit-max-delay", 0, "group-commit batching window; the writer waits up to this long for more committers before forcing (0 = flush when free)")
		gcBytes  = flag.Int("group-commit-max-batch-bytes", 0, "force a group-commit flush once this many bytes are staged (0 = 1MiB)")
		gcWait   = flag.Int("group-commit-max-waiters", 0, "cut the group-commit delay window short once this many committers are waiting (0 = no cutoff)")
		traceOn  = flag.Bool("trace", false, "record request span trees (GET /trace/{id} on the admin endpoint)")
		traceCap = flag.Int("trace-spans", 4096, "trace ring capacity in spans")
		slow     = flag.Duration("trace-slow", 0, "emit span trees of requests slower than this to stderr (0 disables)")
		maxInfl  = flag.Int("max-inflight", 0, "cap on concurrently executing RPC requests node-wide; excess shed as retryable busy (0 = unlimited)")
		maxConn  = flag.Int("max-inflight-per-conn", 0, "cap on concurrently executing requests per client connection (0 = unlimited)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "qmd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	node, err := rrq.StartNode(rrq.NodeConfig{
		Dir:           *dir,
		Name:          *name,
		ListenAddr:    *listen,
		AdminAddr:     *admin,
		NoFsync:       *noFsync,
		SnapshotEvery: *snapshot,
		GroupCommit:   *groupCmt,
		Trace:         *traceOn || *slow > 0,

		GroupCommitMaxDelay:      *gcDelay,
		GroupCommitMaxBatchBytes: *gcBytes,
		GroupCommitMaxWaiters:    *gcWait,
		TraceSpans:    *traceCap,
		SlowTrace:     *slow,

		MaxInflight:        *maxInfl,
		MaxInflightPerConn: *maxConn,
	})
	if err != nil {
		log.Fatalf("qmd: %v", err)
	}
	for _, q := range strings.Split(*queues, ",") {
		q = strings.TrimSpace(q)
		if q == "" {
			continue
		}
		if err := node.CreateQueue(rrq.QueueConfig{Name: q}); err != nil && !errors.Is(err, rrq.ErrQueueExists) {
			log.Fatalf("qmd: create queue %s: %v", q, err)
		}
	}
	log.Printf("qmd: node %q serving on %s (state in %s)", node.Repo().Name(), node.Addr(), *dir)
	if a := node.AdminAddr(); a != "" {
		log.Printf("qmd: admin endpoint on http://%s/metrics", a)
	}
	if node.Tracer() != nil {
		log.Printf("qmd: tracing enabled (%d-span ring)", *traceCap)
	}
	for _, q := range node.Repo().Queues() {
		d, _ := node.Repo().Depth(q)
		log.Printf("qmd: queue %-24s depth %d", q, d)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Print("qmd: shutting down (checkpointing)")
	if err := node.Close(); err != nil {
		log.Fatalf("qmd: close: %v", err)
	}
}
