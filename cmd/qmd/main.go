// Command qmd runs a queue-manager node: a recoverable queue repository
// served over RPC (the back-end of the paper's fig. 4). Clients connect
// with rrq.Dial or the qmctl tool.
//
//	qmd -dir /var/lib/qmd -listen 127.0.0.1:7070 -queues requests,requests.err
//
// The whole process lifetime — startup, queue creation, recovery,
// shutdown — reports through the structured event logger, so
// -log-format=json yields machine-parseable output from the first line
// to the last.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/rrq"
)

func main() {
	var (
		dir      = flag.String("dir", "", "durable state directory (required)")
		listen   = flag.String("listen", "127.0.0.1:7070", "RPC listen address")
		admin    = flag.String("admin", "", "admin HTTP listen address (/metrics, /metrics/history, /healthz, /readyz, /logs, /debug/flight, /trace/{id})")
		name     = flag.String("name", "", "node name (default: basename of -dir)")
		queues   = flag.String("queues", "", "comma-separated queues to create at startup")
		snapshot = flag.Int("snapshot-every", 10000, "checkpoint after this many logged operations")
		noFsync  = flag.Bool("no-fsync", false, "disable fsync (testing only)")
		groupCmt = flag.Bool("group-commit", false, "batch concurrent commits' fsyncs")
		gcDelay  = flag.Duration("group-commit-max-delay", 0, "group-commit batching window; the writer waits up to this long for more committers before forcing (0 = flush when free)")
		gcBytes  = flag.Int("group-commit-max-batch-bytes", 0, "force a group-commit flush once this many bytes are staged (0 = 1MiB)")
		gcWait   = flag.Int("group-commit-max-waiters", 0, "cut the group-commit delay window short once this many committers are waiting (0 = no cutoff)")
		traceOn  = flag.Bool("trace", false, "record request span trees (GET /trace/{id} on the admin endpoint)")
		traceCap = flag.Int("trace-spans", 4096, "trace ring capacity in spans")
		slow     = flag.Duration("trace-slow", 0, "emit span trees of requests slower than this to stderr (0 disables)")
		maxInfl  = flag.Int("max-inflight", 0, "cap on concurrently executing RPC requests node-wide; excess shed as retryable busy (0 = unlimited)")
		maxConn  = flag.Int("max-inflight-per-conn", 0, "cap on concurrently executing requests per client connection (0 = unlimited)")

		logLevel  = flag.String("log-level", "info", "structured log level: debug|info|warn|error|off")
		logFormat = flag.String("log-format", "text", "structured log rendering: text|json")
		logEvents = flag.Int("log-events", 1024, "in-memory ring of recent events (qmctl logs, GET /logs, flight dumps)")
		history   = flag.Duration("metrics-history", time.Second, "metrics-history sampling interval (GET /metrics/history, rate-based health probes; 0 disables)")
		histKeep  = flag.Int("metrics-history-samples", 120, "metrics-history ring capacity in samples")
		flightOn  = flag.Bool("flight", false, "arm the flight recorder: dump recent events, metric history, and slow traces to -flight-path on SIGQUIT")
		flightTo  = flag.String("flight-path", "", "flight dump destination (default: DIR/flight-<pid>.json)")
		flightEv  = flag.Int("flight-events", 256, "events retained in a flight dump")

		replTo      = flag.String("replicate-to", "", "standby RPC address to ship the WAL to (makes this node a replicating primary)")
		replMode    = flag.String("repl-mode", "sync", "replication commit rule: sync|semisync|async")
		replLagRecs = flag.Uint64("repl-max-lag-records", 0, "semisync: max unacked records before commits block (0 = 256)")
		replLagByts = flag.Int64("repl-max-lag-bytes", 0, "semisync: max unacked bytes before commits block (0 = 1MiB)")
		replRetries = flag.Int("repl-ship-retries", 0, "sync-mode ship attempts per commit before the failure action (0 = 3)")
		replDegrade = flag.Bool("repl-degrade-to-async", false, "drop to async shipping when sync-mode retries exhaust, instead of poisoning the WAL")
		replEvery   = flag.Duration("repl-ship-interval", 0, "background ship interval (0 = 50ms)")
		replTTL     = flag.Duration("repl-lease-ttl", time.Second, "failover lease TTL advertised to the standby")

		standby     = flag.Bool("standby", false, "run as a warm standby: receive the replication stream on -listen, lease-watch -primary, self-promote to a live node on lease expiry")
		primaryAddr = flag.String("primary", "", "standby mode: the primary's RPC address to lease-ping")
		pingEvery   = flag.Duration("ping-every", 0, "standby mode: lease ping interval (0 = TTL/4)")
	)
	flag.Parse()
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "qmd: -dir is required")
		flag.Usage()
		os.Exit(2)
	}

	level, err := rrq.ParseLogLevel(*logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmd: %v\n", err)
		os.Exit(2)
	}
	reg := rrq.NewMetrics()
	var logger *rrq.Logger
	switch *logFormat {
	case "json":
		logger = rrq.NewLogger(level, reg, rrq.NewJSONLogSink(os.Stderr))
	case "text":
		logger = rrq.NewLogger(level, reg, rrq.NewTextLogSink(os.Stderr))
	default:
		fmt.Fprintf(os.Stderr, "qmd: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	qlog := logger.Named("qmd")
	fatalf := func(msg string, fields ...rrq.LogField) {
		qlog.Error(msg, fields...)
		os.Exit(1)
	}

	var replCfg *rrq.ReplicationConfig
	if *replTo != "" {
		mode, err := rrq.ParseReplicationMode(*replMode)
		if err != nil {
			fatalf("bad -repl-mode", rrq.LogErr(err))
		}
		replCfg = &rrq.ReplicationConfig{
			Mode:           mode,
			StandbyAddr:    *replTo,
			MaxLagRecords:  *replLagRecs,
			MaxLagBytes:    *replLagByts,
			ShipRetries:    *replRetries,
			DegradeToAsync: *replDegrade,
			ShipInterval:   *replEvery,
			LeaseTTL:       *replTTL,
		}
	}

	startLive := func() (*rrq.Node, error) {
		return rrq.StartNode(rrq.NodeConfig{
			Dir:           *dir,
			Name:          *name,
			ListenAddr:    *listen,
			AdminAddr:     *admin,
			Metrics:       reg,
			NoFsync:       *noFsync,
			SnapshotEvery: *snapshot,
			GroupCommit:   *groupCmt,
			Trace:         *traceOn || *slow > 0,

			GroupCommitMaxDelay:      *gcDelay,
			GroupCommitMaxBatchBytes: *gcBytes,
			GroupCommitMaxWaiters:    *gcWait,
			TraceSpans:               *traceCap,
			SlowTrace:                *slow,

			MaxInflight:        *maxInfl,
			MaxInflightPerConn: *maxConn,

			Log:                   logger,
			LogEvents:             *logEvents,
			MetricsHistory:        *history,
			MetricsHistorySamples: *histKeep,
			Flight:                *flightOn,
			FlightPath:            *flightTo,
			FlightEvents:          *flightEv,
			Replication:           replCfg,
		})
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)

	var node *rrq.Node
	if *standby {
		// Warm-standby mode: receive the replication stream on -listen,
		// lease-watch the primary, and on lease expiry promote this very
		// process into a live node over the replicated directory.
		if *primaryAddr == "" {
			fmt.Fprintln(os.Stderr, "qmd: -standby requires -primary")
			os.Exit(2)
		}
		promoted := make(chan uint64, 1)
		sb, err := rrq.StartStandby(rrq.StandbyConfig{
			Dir:         *dir,
			ListenAddr:  *listen,
			PrimaryAddr: *primaryAddr,
			LeaseTTL:    *replTTL,
			PingEvery:   *pingEvery,
			NoFsync:     *noFsync,
			Metrics:     reg,
			Log:         logger,
			OnPromote:   func(e uint64) { promoted <- e },
		})
		if err != nil {
			fatalf("standby start failed", rrq.LogErr(err))
		}
		qlog.Info("standby serving",
			rrq.LogStr("addr", sb.Addr()),
			rrq.LogStr("primary", *primaryAddr),
			rrq.LogDur("lease_ttl", *replTTL),
			rrq.LogUint64("epoch", sb.Epoch()))
		select {
		case s := <-sig:
			qlog.Info("standby shutting down", rrq.LogStr("signal", s.String()))
			sb.Close()
			return
		case epoch := <-promoted:
			qlog.Info("lease expired; promoting to primary", rrq.LogUint64("epoch", epoch))
			// The standby's RPC server just released -listen; rebinding can
			// race the kernel briefly.
			for attempt := 0; ; attempt++ {
				node, err = startLive()
				if err == nil {
					break
				}
				if attempt >= 20 {
					fatalf("promotion start failed", rrq.LogErr(err))
				}
				time.Sleep(50 * time.Millisecond)
			}
		}
	} else {
		var err error
		node, err = startLive()
		if err != nil {
			fatalf("start failed", rrq.LogErr(err))
		}
	}
	if rec := node.Flight(); rec != nil {
		defer rec.DumpOnPanic()
	}
	for _, q := range strings.Split(*queues, ",") {
		q = strings.TrimSpace(q)
		if q == "" {
			continue
		}
		if err := node.CreateQueue(rrq.QueueConfig{Name: q}); err != nil && !errors.Is(err, rrq.ErrQueueExists) {
			fatalf("create queue failed", rrq.LogStr("queue", q), rrq.LogErr(err))
		}
	}
	qlog.Info("serving",
		rrq.LogStr("node", node.Repo().Name()),
		rrq.LogStr("addr", node.Addr()),
		rrq.LogStr("dir", *dir))
	if a := node.AdminAddr(); a != "" {
		qlog.Info("admin endpoint up", rrq.LogStr("url", "http://"+a+"/metrics"))
	}
	if node.Tracer() != nil {
		qlog.Info("tracing enabled", rrq.LogInt("span_ring", *traceCap))
	}
	if st := node.Replication(); st != nil {
		qlog.Info("replicating",
			rrq.LogStr("mode", st.Mode),
			rrq.LogStr("standby", *replTo),
			rrq.LogUint64("epoch", st.Epoch))
	}
	for _, q := range node.Repo().Queues() {
		d, _ := node.Repo().Depth(q)
		qlog.Info("queue ready", rrq.LogStr("queue", q), rrq.LogInt("depth", d))
	}

	s := <-sig
	qlog.Info("shutting down (checkpointing)", rrq.LogStr("signal", s.String()))
	if err := node.Close(); err != nil {
		fatalf("close failed", rrq.LogErr(err))
	}
}
