// Command qmctl administers a running qmd node over RPC.
//
//	qmctl -addr 127.0.0.1:7070 create -queue work -error-queue work.err -retry 3
//	qmctl -addr 127.0.0.1:7070 enqueue -queue work -body 'hello' -priority 5
//	qmctl -addr 127.0.0.1:7070 dequeue -queue work -wait 5s
//	qmctl -addr 127.0.0.1:7070 depth -queue work
//	qmctl -addr 127.0.0.1:7070 stats                 # full metrics registry
//	qmctl -addr 127.0.0.1:7070 stats -queue work     # one queue's counters
//	qmctl -addr 127.0.0.1:7070 hedge                 # hedged-request ledger + latency digest
//	qmctl -addr 127.0.0.1:7070 read -eid 42
//	qmctl -addr 127.0.0.1:7070 kill -eid 42
//	qmctl -addr 127.0.0.1:7070 trace 4f3c…            # one request's span tree
//	qmctl -addr 127.0.0.1:7070 traces -slowest 5      # slowest retained traces
//	qmctl -addr 127.0.0.1:7070 health                 # component health (exit 1 on fail)
//	qmctl -addr 127.0.0.1:7070 logs -max 50           # recent structured events
//	qmctl -addr 127.0.0.1:7070 flight                 # live flight-recorder snapshot
//	qmctl -addr 127.0.0.1:7070 top -interval 2s       # live per-queue rate view
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/rpc"
)

func usage() {
	fmt.Fprintln(os.Stderr, "usage: qmctl -addr HOST:PORT {create|enqueue|dequeue|depth|queues|stats|hedge|read|kill|trace|traces|health|repl|logs|flight|top} [flags]")
	os.Exit(2)
}

func main() {
	addr := flag.String("addr", "127.0.0.1:7070", "qmd RPC address")
	flag.Parse()
	args := flag.Args()
	if len(args) < 1 {
		usage()
	}
	cl := qservice.NewClient(rpc.NewClient(*addr, nil))
	defer cl.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	cmd, rest := args[0], args[1:]
	var err error
	switch cmd {
	case "create":
		fs := flag.NewFlagSet("create", flag.ExitOnError)
		name := fs.String("queue", "", "queue name")
		errq := fs.String("error-queue", "", "error queue name")
		retry := fs.Int("retry", 0, "retry limit before error-queue diversion")
		volatileQ := fs.Bool("volatile", false, "volatile (unlogged) queue")
		strict := fs.Bool("strict-fifo", false, "strict FIFO dequeue order")
		fs.Parse(rest)
		err = cl.CreateQueue(ctx, queue.QueueConfig{
			Name: *name, ErrorQueue: *errq, RetryLimit: int32(*retry),
			Volatile: *volatileQ, StrictFIFO: *strict,
		})
		if err == nil {
			fmt.Printf("created %s\n", *name)
		}
	case "enqueue":
		fs := flag.NewFlagSet("enqueue", flag.ExitOnError)
		name := fs.String("queue", "", "queue name")
		body := fs.String("body", "", "element body")
		prio := fs.Int("priority", 0, "priority (higher first)")
		replyTo := fs.String("reply-to", "", "reply queue")
		fs.Parse(rest)
		var eid queue.EID
		eid, err = cl.Enqueue(ctx, *name, queue.Element{
			Body: []byte(*body), Priority: int32(*prio), ReplyTo: *replyTo,
		}, "", nil)
		if err == nil {
			fmt.Printf("eid %d\n", eid)
		}
	case "dequeue":
		fs := flag.NewFlagSet("dequeue", flag.ExitOnError)
		name := fs.String("queue", "", "queue name")
		wait := fs.Duration("wait", 0, "block up to this long")
		fs.Parse(rest)
		var e queue.Element
		e, err = cl.Dequeue(ctx, *name, "", nil, *wait, nil)
		if err == nil {
			printElement(e)
		}
	case "depth":
		fs := flag.NewFlagSet("depth", flag.ExitOnError)
		name := fs.String("queue", "", "queue name")
		fs.Parse(rest)
		var d int
		d, err = cl.Depth(ctx, *name)
		if err == nil {
			fmt.Println(d)
		}
	case "queues":
		var names []string
		names, err = cl.Queues(ctx)
		for _, n := range names {
			fmt.Println(n)
		}
	case "stats":
		fs := flag.NewFlagSet("stats", flag.ExitOnError)
		name := fs.String("queue", "", "queue name (empty: full metrics registry)")
		fs.Parse(rest)
		if *name == "" {
			var snap obs.Snapshot
			snap, err = cl.Metrics(ctx)
			if err == nil {
				printSnapshot(snap)
			}
			break
		}
		var st queue.QueueStats
		st, err = cl.Stats(ctx, *name)
		if err == nil {
			fmt.Printf("depth=%d in-flight=%d max-depth=%d\n", st.Depth, st.InFlight, st.MaxDepth)
			fmt.Printf("enqueues=%d dequeues=%d abort-returns=%d error-diversions=%d kills=%d\n",
				st.Enqueues, st.Dequeues, st.AbortReturns, st.ErrorDiversions, st.Kills)
		}
	case "hedge":
		var snap obs.Snapshot
		snap, err = cl.Metrics(ctx)
		if err == nil {
			err = printHedge(snap)
		}
	case "read":
		fs := flag.NewFlagSet("read", flag.ExitOnError)
		eid := fs.Uint64("eid", 0, "element id")
		fs.Parse(rest)
		var e queue.Element
		e, err = cl.Read(ctx, queue.EID(*eid))
		if err == nil {
			printElement(e)
		}
	case "trace":
		fs := flag.NewFlagSet("trace", flag.ExitOnError)
		fs.Parse(rest)
		if fs.NArg() != 1 {
			fmt.Fprintln(os.Stderr, "usage: qmctl trace <trace-id>")
			os.Exit(2)
		}
		var j []byte
		j, err = cl.TraceTree(ctx, fs.Arg(0))
		if err == nil {
			err = printTraceTree(j)
		}
	case "traces":
		fs := flag.NewFlagSet("traces", flag.ExitOnError)
		nSlow := fs.Int("slowest", 10, "number of slowest traces to list")
		fs.Parse(rest)
		var j []byte
		j, err = cl.SlowTraces(ctx, *nSlow)
		if err == nil {
			err = printTraceSummaries(j)
		}
	case "health":
		var j []byte
		j, err = cl.Health(ctx)
		if err == nil {
			err = printHealth(j)
		}
	case "repl":
		var j []byte
		j, err = cl.Repl(ctx)
		if err == nil {
			err = printRepl(j)
		}
	case "logs":
		fs := flag.NewFlagSet("logs", flag.ExitOnError)
		max := fs.Int("max", 50, "events to fetch (most recent)")
		raw := fs.Bool("json", false, "print raw JSON instead of rendered lines")
		fs.Parse(rest)
		var j []byte
		j, err = cl.Logs(ctx, *max)
		if err == nil && *raw {
			fmt.Printf("%s\n", j)
		} else if err == nil {
			err = printLogs(j)
		}
	case "flight":
		var j []byte
		j, err = cl.Flight(ctx)
		if err == nil {
			fmt.Printf("%s\n", j)
		}
	case "top":
		fs := flag.NewFlagSet("top", flag.ExitOnError)
		interval := fs.Duration("interval", 2*time.Second, "refresh interval")
		iters := fs.Int("n", 0, "iterations before exiting (0 = until interrupted)")
		plain := fs.Bool("plain", false, "append frames instead of redrawing the screen")
		fs.Parse(rest)
		err = runTop(ctx, cl, *interval, *iters, *plain)
	case "kill":
		fs := flag.NewFlagSet("kill", flag.ExitOnError)
		eid := fs.Uint64("eid", 0, "element id")
		fs.Parse(rest)
		var killed bool
		killed, err = cl.KillElement(ctx, queue.EID(*eid))
		if err == nil {
			fmt.Printf("killed=%v\n", killed)
		}
	default:
		usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "qmctl: %s: %v\n", cmd, err)
		os.Exit(1)
	}
}

// printSnapshot renders the whole registry: counters and gauges as
// name=value lines, histograms as count/mean/median/p99 summaries.
func printSnapshot(s obs.Snapshot) {
	var names []string
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-40s %d\n", n, s.Counters[n])
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-40s %d\n", n, s.Gauges[n])
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		fmt.Printf("%-40s count=%d mean=%.0f p50=%d p99=%d\n",
			n, h.Count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99))
	}
}

// printHedge renders the hedged-request ledger recorded by clerks that
// share the node's metrics registry (co-located clients, forwarders),
// plus the latency digest the hedge trigger is derived from, and checks
// the ledger invariant: every hedged Transceive is accounted to exactly
// one outcome (primary win, hedge win, timeout, or error). A violation
// is reported as an error so scripts exit non-zero.
func printHedge(s obs.Snapshot) error {
	total := s.Counters["clerk.hedged_transceives"]
	primary := s.Counters["clerk.hedge_primary_wins"]
	wins := s.Counters["clerk.hedge_wins"]
	timeouts := s.Counters["clerk.hedge_timeouts"]
	errs := s.Counters["clerk.hedge_errors"]
	clones := s.Counters["clerk.hedge_clones"]
	if total == 0 && clones == 0 {
		fmt.Println("(no hedged transceives recorded; hedge counters appear only when a hedged clerk records into this node's registry)")
		return nil
	}
	fmt.Printf("hedged-transceives %d\n", total)
	fmt.Printf("  hedges           %d\n", s.Counters["clerk.hedges"])
	fmt.Printf("  clones           %d\n", clones)
	fmt.Printf("  primary-wins     %d\n", primary)
	fmt.Printf("  hedge-wins       %d\n", wins)
	fmt.Printf("  timeouts         %d\n", timeouts)
	fmt.Printf("  errors           %d\n", errs)
	fmt.Printf("  cancels          %d\n", s.Counters["clerk.hedge_cancels"])
	fmt.Printf("  wasted (dup)     %d\n", s.Counters["clerk.hedge_wasted"])
	fmt.Printf("trigger            %s (quantile of observed latency, floored)\n",
		time.Duration(s.Gauges["clerk.hedge_trigger_ns"]))
	fmt.Printf("latency digest     p50=%s p95=%s p99=%s\n",
		time.Duration(s.Gauges["clerk.hedge_lat_p50_ns"]),
		time.Duration(s.Gauges["clerk.hedge_lat_p95_ns"]),
		time.Duration(s.Gauges["clerk.hedge_lat_p99_ns"]))
	if sum := primary + wins + timeouts + errs; sum != total {
		return fmt.Errorf("ledger violation: primary_wins+hedge_wins+timeouts+errors = %d, want %d (hedged transceives)", sum, total)
	}
	fmt.Println("ledger OK: primary_wins + hedge_wins + timeouts + errors == hedged_transceives")
	return nil
}

// traceNode mirrors the admin endpoint's span-tree JSON.
type traceNode struct {
	Trace    string         `json:"trace"`
	Span     string         `json:"span"`
	Parent   string         `json:"parent"`
	Name     string         `json:"name"`
	Start    int64          `json:"start_ns"`
	Dur      int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs"`
	Children []*traceNode   `json:"children"`
}

// printTraceTree pretty-prints one span tree: each span indented under
// its parent with its offset from the trace start and its duration.
func printTraceTree(j []byte) error {
	var roots []*traceNode
	if err := json.Unmarshal(j, &roots); err != nil {
		return fmt.Errorf("decode trace tree: %w", err)
	}
	if len(roots) == 0 {
		fmt.Println("(empty trace)")
		return nil
	}
	base := roots[0].Start
	for _, r := range roots {
		if r.Start < base {
			base = r.Start
		}
	}
	fmt.Printf("trace %s\n", roots[0].Trace)
	for _, r := range roots {
		printTraceNode(r, 0, base)
	}
	return nil
}

func printTraceNode(n *traceNode, depth int, base int64) {
	var attrs []string
	for k, v := range n.Attrs {
		attrs = append(attrs, fmt.Sprintf("%s=%v", k, v))
	}
	sort.Strings(attrs)
	fmt.Printf("%s%-14s +%-12s %-12s %s\n",
		strings.Repeat("  ", depth+1), n.Name,
		time.Duration(n.Start-base), time.Duration(n.Dur),
		strings.Join(attrs, " "))
	for _, c := range n.Children {
		printTraceNode(c, depth+1, base)
	}
}

// printTraceSummaries lists the slowest retained traces, one per line.
func printTraceSummaries(j []byte) error {
	var sums []struct {
		Trace string `json:"trace"`
		Spans int    `json:"spans"`
		Start int64  `json:"start_ns"`
		Dur   int64  `json:"dur_ns"`
		Root  string `json:"root"`
	}
	if err := json.Unmarshal(j, &sums); err != nil {
		return fmt.Errorf("decode trace summaries: %w", err)
	}
	if len(sums) == 0 {
		fmt.Println("(no traces retained)")
		return nil
	}
	for _, s := range sums {
		fmt.Printf("%s  %-12s spans=%-3d %s\n",
			s.Trace, time.Duration(s.Dur), s.Spans, s.Root)
	}
	return nil
}

// printHealth renders the qm.health document and returns an error when
// the node reports a hard failure, so scripts exit non-zero.
func printHealth(j []byte) error {
	var h struct {
		Status     string `json:"status"`
		Node       string `json:"node"`
		Components []struct {
			Name   string `json:"name"`
			Status string `json:"status"`
			Detail string `json:"detail"`
		} `json:"components"`
	}
	if err := json.Unmarshal(j, &h); err != nil {
		return fmt.Errorf("decode health: %w", err)
	}
	fmt.Printf("node %s: %s\n", h.Node, h.Status)
	for _, c := range h.Components {
		line := fmt.Sprintf("  %-12s %s", c.Name, c.Status)
		if c.Detail != "" {
			line += "  (" + c.Detail + ")"
		}
		fmt.Println(line)
	}
	if h.Status == "fail" {
		return fmt.Errorf("node unhealthy")
	}
	return nil
}

// printRepl renders the qm.repl replication-status document.
func printRepl(j []byte) error {
	var st struct {
		Role         string `json:"role"`
		Mode         string `json:"mode"`
		Epoch        uint64 `json:"epoch"`
		DurableLSN   uint64 `json:"durable_lsn"`
		AckedLSN     uint64 `json:"acked_lsn"`
		AppliedLSN   uint64 `json:"applied_lsn"`
		LagRecords   uint64 `json:"lag_records"`
		LagBytes     int64  `json:"lag_bytes"`
		ShipFailures uint64 `json:"ship_failures"`
		Degraded     bool   `json:"degraded"`
		Fenced       bool   `json:"fenced"`
		Promoted     bool   `json:"promoted"`
		LeaseTTLMs   int64  `json:"lease_ttl_ms"`
		LeaseLeftMs  int64  `json:"lease_remaining_ms"`
		Err          string `json:"err"`
	}
	if err := json.Unmarshal(j, &st); err != nil {
		return fmt.Errorf("decode repl: %w", err)
	}
	fmt.Printf("role %s  epoch %d", st.Role, st.Epoch)
	if st.Mode != "" {
		fmt.Printf("  mode %s", st.Mode)
	}
	fmt.Println()
	switch st.Role {
	case "primary":
		fmt.Printf("  durable-lsn %d  acked-lsn %d  lag %d records / %d bytes\n",
			st.DurableLSN, st.AckedLSN, st.LagRecords, st.LagBytes)
		fmt.Printf("  ship-failures %d  degraded %v  fenced %v\n",
			st.ShipFailures, st.Degraded, st.Fenced)
		if st.LeaseTTLMs > 0 {
			fmt.Printf("  lease-ttl %dms\n", st.LeaseTTLMs)
		}
	case "standby":
		fmt.Printf("  applied-lsn %d  promoted %v\n", st.AppliedLSN, st.Promoted)
		fmt.Printf("  lease-ttl %dms  lease-remaining %dms\n", st.LeaseTTLMs, st.LeaseLeftMs)
	}
	if st.Err != "" {
		fmt.Printf("  err %s\n", st.Err)
		return fmt.Errorf("replication unhealthy")
	}
	return nil
}

// printLogs renders qm.logs events (JSON objects with fixed keys ts,
// level, sub, msg plus free-form fields) as one line each.
func printLogs(j []byte) error {
	var events []map[string]any
	if err := json.Unmarshal(j, &events); err != nil {
		return fmt.Errorf("decode logs: %w", err)
	}
	if len(events) == 0 {
		fmt.Println("(no events retained)")
		return nil
	}
	fixed := map[string]bool{"ts": true, "level": true, "seq": true, "sub": true, "msg": true}
	for _, e := range events {
		ts := ""
		if v, ok := e["ts"].(float64); ok {
			ts = time.Unix(0, int64(v)).UTC().Format("2006-01-02T15:04:05.000Z")
		}
		sub, _ := e["sub"].(string)
		if sub != "" {
			sub = "[" + sub + "] "
		}
		var keys []string
		for k := range e {
			if !fixed[k] {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		var kv strings.Builder
		for _, k := range keys {
			fmt.Fprintf(&kv, " %s=%v", k, e[k])
		}
		fmt.Printf("%s %-5v %s%v%s\n", ts, e["level"], sub, e["msg"], kv.String())
	}
	return nil
}

// labeledValue extracts metrics of the form base{queue=NAME} into a
// name -> value map.
func labeledValue[V uint64 | int64](m map[string]V, base string) map[string]V {
	out := make(map[string]V)
	prefix := base + "{queue="
	for name, v := range m {
		if strings.HasPrefix(name, prefix) && strings.HasSuffix(name, "}") {
			out[name[len(prefix):len(name)-1]] = v
		}
	}
	return out
}

// rate renders a counter delta as an events-per-second figure.
func rate(delta uint64, window time.Duration) string {
	return fmt.Sprintf("%.1f/s", float64(delta)/window.Seconds())
}

// runTop polls the node's metrics snapshot and renders a live rate view:
// per-queue depth and enqueue/dequeue/commit rates, fsyncs-per-commit,
// hedge rate, and the hedge digest's p99 — the counters' deltas between
// consecutive polls, not all-time averages.
func runTop(ctx context.Context, cl *qservice.Client, interval time.Duration, iters int, plain bool) error {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	var prev *obs.Snapshot
	for i := 0; iters == 0 || i < iters+1; i++ {
		callCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		snap, err := cl.Metrics(callCtx)
		cancel()
		if err != nil {
			return err
		}
		if prev != nil {
			if !plain {
				fmt.Print("\x1b[2J\x1b[H") // clear screen, home cursor
			}
			printTopFrame(prev, &snap, interval)
		}
		prev = &snap
		if iters != 0 && i == iters {
			break
		}
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(interval):
		}
	}
	return nil
}

func printTopFrame(prev, cur *obs.Snapshot, window time.Duration) {
	d := func(name string) uint64 { return cur.Counters[name] - prev.Counters[name] }

	fmt.Printf("qmctl top  %s  (window %s)\n\n", time.Now().Format("15:04:05"), window)

	// Per-queue table from the labeled gauges/counters.
	depths := labeledValue(cur.Gauges, "queue.depth")
	enq := labeledValue(cur.Counters, "queue.enqueues")
	prevEnq := labeledValue(prev.Counters, "queue.enqueues")
	deq := labeledValue(cur.Counters, "queue.dequeues")
	prevDeq := labeledValue(prev.Counters, "queue.dequeues")
	inflight := labeledValue(cur.Gauges, "queue.in_flight")
	var queues []string
	for q := range depths {
		queues = append(queues, q)
	}
	sort.Strings(queues)
	if len(queues) > 0 {
		fmt.Printf("%-24s %8s %10s %12s %12s\n", "QUEUE", "DEPTH", "IN-FLIGHT", "ENQ", "DEQ")
		for _, q := range queues {
			fmt.Printf("%-24s %8d %10d %12s %12s\n",
				q, depths[q], inflight[q],
				rate(enq[q]-prevEnq[q], window), rate(deq[q]-prevDeq[q], window))
		}
		fmt.Println()
	}

	commits := d("txn.committed")
	fsyncs := d("wal.fsyncs")
	fsyncPerCommit := "-"
	if commits > 0 {
		fsyncPerCommit = fmt.Sprintf("%.2f", float64(fsyncs)/float64(commits))
	}
	fmt.Printf("txn      commits %-10s aborts %-10s fsyncs %-10s fsyncs/commit %s\n",
		rate(commits, window), rate(d("txn.aborted"), window), rate(fsyncs, window), fsyncPerCommit)
	fmt.Printf("wal      appends %-10s bytes %-11s rotations %s\n",
		rate(d("wal.appends"), window), rate(d("wal.append_bytes"), window), rate(d("wal.rotations"), window))
	fmt.Printf("rpc      requests %-9s errors %-10s shed %s\n",
		rate(d("rpc.server.requests"), window), rate(d("rpc.server.errors"), window), rate(d("server.shed"), window))
	if hedged := d("clerk.hedged_transceives"); hedged > 0 || cur.Counters["clerk.hedged_transceives"] > 0 {
		hedgeRate := "-"
		if hedged > 0 {
			hedgeRate = fmt.Sprintf("%.0f%%", 100*float64(d("clerk.hedges"))/float64(hedged))
		}
		fmt.Printf("hedge    transceives %-6s hedged %-9s p99 %s\n",
			rate(hedged, window), hedgeRate,
			time.Duration(cur.Gauges["clerk.hedge_lat_p99_ns"]))
	}
	if ring := d("queue.fastpath_hits") + d("queue.fastpath_fallbacks"); ring > 0 {
		fmt.Printf("ring     fastpath %-9s fallbacks %s\n",
			rate(d("queue.fastpath_hits"), window), rate(d("queue.fastpath_fallbacks"), window))
	}
}

func printElement(e queue.Element) {
	fmt.Printf("eid=%d queue=%s priority=%d aborts=%d\n", e.EID, e.Queue, e.Priority, e.AbortCount)
	if e.ReplyTo != "" {
		fmt.Printf("reply-to=%s\n", e.ReplyTo)
	}
	for k, v := range e.Headers {
		fmt.Printf("header %s=%s\n", k, v)
	}
	fmt.Printf("body: %s\n", e.Body)
}
