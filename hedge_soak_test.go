package repro

// The hedging soak: two queue-manager endpoints serve the same durable
// repository, but the client's link to the primary endpoint straggles —
// a fraction of reads stall for hundreds of milliseconds (the QM is up,
// just slow, which fig. 2's failure masking cannot help with). An
// unhedged clerk eats the stall every time it lands on the reply path; a
// hedged clerk clones the request to the alternate queue through the
// healthy endpoint after a trigger delay and takes whichever committed
// reply surfaces first. The soak demands the tail actually collapses
// (hedged p99 at least 2x better) while the paper's guarantee stays
// intact: every request surfaced exactly once, at most one duplicate
// execution per request, reply queues drained, ledger conserved.

import (
	"context"
	"fmt"
	"sort"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/rpc"
)

// hedgeSoakWorld: one repository, two request queues each drained by its
// own server pool, exposed through two RPC endpoints. The client reaches
// endpoint A (primary) through a straggling chaos network and endpoint B
// (hedge) directly.
type hedgeSoakWorld struct {
	repo  *queue.Repository
	net   *chaos.Network
	addrA string
	addrB string
}

func newHedgeSoakWorld(t *testing.T, seed int64) *hedgeSoakWorld {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	for _, qname := range []string{"req", "req.b"} {
		if err := repo.CreateQueue(queue.QueueConfig{Name: qname}); err != nil {
			t.Fatal(err)
		}
		for s := 0; s < 2; s++ {
			srv, err := core.NewServer(core.ServerConfig{
				Repo: repo, Queue: qname, Name: fmt.Sprintf("hsoak-%s-%d", qname, s),
				Handler: countingEchoHandler,
			})
			if err != nil {
				t.Fatal(err)
			}
			go srv.Serve(ctx)
		}
	}
	w := &hedgeSoakWorld{repo: repo, net: chaos.NewNetwork(seed)}
	for _, ep := range []struct {
		addr *string
	}{{&w.addrA}, {&w.addrB}} {
		rsrv := rpc.NewServer()
		qservice.New(repo, rsrv)
		addr, err := rsrv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { rsrv.Close() })
		*ep.addr = addr
	}
	return w
}

// countingEchoHandler is the exactly-once witness: it transactionally
// counts executions per rid, so duplicate executions are visible in the
// durable state no matter which reply surfaced.
func countingEchoHandler(rc *core.ReqCtx) ([]byte, error) {
	v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, true)
	if err != nil {
		return nil, err
	}
	n := 0
	if v != nil {
		n = int(v[0])
	}
	if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, []byte{byte(n + 1)}); err != nil {
		return nil, err
	}
	return append([]byte("echo:"), rc.Request.Body...), nil
}

func (w *hedgeSoakWorld) execCount(t *testing.T, rid string) int {
	t.Helper()
	v, _, err := w.repo.KVGet(context.Background(), nil, "execs", rid, false)
	if err != nil {
		t.Fatal(err)
	}
	if v == nil {
		return 0
	}
	return int(v[0])
}

func (w *hedgeSoakWorld) waitReplyDrained(t *testing.T, qname string, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		d, err := w.repo.Depth(qname)
		if err != nil {
			t.Fatal(err)
		}
		if d == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("reply queue %s depth = %d after %v, want 0 (undrained duplicates)", qname, d, timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func p99of(durs []time.Duration) time.Duration {
	s := append([]time.Duration(nil), durs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	idx := int(0.99 * float64(len(s)))
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestHedgeSoakStragglerTailCollapse(t *testing.T) {
	n := 120
	if testing.Short() {
		n = 40
	}
	w := newHedgeSoakWorld(t, 23)
	// 30% of reads on the primary link stall 200ms: the primary QM is
	// healthy but its answers are late — the tail fig. 2 cannot mask.
	w.net.SetStragglerProb(0.30, 200*time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	run := func(rc *core.ResilientClerk, prefix string) []time.Duration {
		durs := make([]time.Duration, 0, n)
		for i := 0; i < n; i++ {
			rid := fmt.Sprintf("%s-%05d", prefix, i)
			begin := time.Now()
			rep, err := rc.Transceive(ctx, rid, []byte(rid), nil, nil)
			durs = append(durs, time.Since(begin))
			if err != nil {
				t.Fatalf("%s: %v", rid, err)
			}
			if rep.RID != rid || string(rep.Body) != "echo:"+rid {
				t.Fatalf("%s: reply %q/%q", rid, rep.RID, rep.Body)
			}
		}
		return durs
	}

	// Arm 1: unhedged baseline through the straggling link.
	baseCl := rpc.NewClient(w.addrA, rpc.Dialer(w.net.Dialer(nil)))
	t.Cleanup(func() { baseCl.Close() })
	base := core.NewResilientClerk(qservice.NewClient(baseCl), core.ResilientConfig{
		Clerk:   core.ClerkConfig{ClientID: "hsoak-base", RequestQueue: "req", ReceiveWait: 300 * time.Millisecond},
		Backoff: core.BackoffPolicy{Initial: time.Millisecond, Max: 50 * time.Millisecond},
		Seed:    23,
	})
	unhedged := run(base, "u")

	// Arm 2: hedged clerk — primary through the same straggling link, one
	// clone arm to req.b through the healthy endpoint.
	hedgeRPC := rpc.NewClient(w.addrA, rpc.Dialer(w.net.Dialer(nil)))
	t.Cleanup(func() { hedgeRPC.Close() })
	cleanRPC := rpc.NewClient(w.addrB, nil)
	t.Cleanup(func() { cleanRPC.Close() })
	reg := obs.NewRegistry()
	hedged := core.NewResilientClerk(qservice.NewClient(hedgeRPC), core.ResilientConfig{
		Clerk:   core.ClerkConfig{ClientID: "hsoak-hedge", RequestQueue: "req", ReceiveWait: 300 * time.Millisecond},
		Backoff: core.BackoffPolicy{Initial: time.Millisecond, Max: 50 * time.Millisecond},
		Metrics: reg,
		Seed:    29,
		Hedge: &core.HedgePolicy{
			Queues:     []string{"req.b"},
			Conns:      []core.QMConn{qservice.NewClient(cleanRPC)},
			MinTrigger: 20 * time.Millisecond,
			DrainWait:  250 * time.Millisecond,
		},
	})
	hedgedDurs := run(hedged, "h")
	hedged.WaitHedgeDrains()

	pU, pH := p99of(unhedged), p99of(hedgedDurs)
	t.Logf("p99 unhedged=%v hedged=%v (%d requests each)", pU, pH, n)
	if pH*2 > pU {
		t.Errorf("hedged p99 %v not at least 2x better than unhedged %v", pH, pU)
	}

	// Exactly-once, conservation-checked. Every Transceive above returned
	// exactly one reply for its rid (zero lost, zero duplicates surfaced);
	// the durable side must show at most one duplicate execution per
	// hedged rid and exactly one per unhedged rid.
	for i := 0; i < n; i++ {
		if got := w.execCount(t, fmt.Sprintf("u-%05d", i)); got != 1 {
			t.Errorf("u-%05d executed %d times, want 1", i, got)
		}
		got := w.execCount(t, fmt.Sprintf("h-%05d", i))
		if got < 1 || got > 2 {
			t.Errorf("h-%05d executed %d times, want 1 or 2", i, got)
		}
	}

	s := reg.Snapshot()
	c := func(name string) uint64 { return s.Counters[name] }
	if got := c("clerk.hedged_transceives"); got != uint64(n) {
		t.Errorf("hedged_transceives = %d, want %d", got, n)
	}
	if ledger := c("clerk.hedge_primary_wins") + c("clerk.hedge_wins") +
		c("clerk.hedge_timeouts") + c("clerk.hedge_errors"); ledger != uint64(n) {
		t.Errorf("win/timeout/error ledger = %d, want %d: %+v", ledger, n, s.Counters)
	}
	if c("clerk.hedge_cancels")+c("clerk.hedge_wasted") > c("clerk.hedge_clones") {
		t.Errorf("cancels+wasted exceeds clones: %+v", s.Counters)
	}

	// Vacuity guards: the straggler must have actually stalled reads, and
	// the hedge must have actually fired.
	if w.net.Delays() == 0 {
		t.Error("chaos injected no straggles; soak is vacuous")
	}
	if c("clerk.hedges") == 0 {
		t.Error("no hedges fired; soak is vacuous")
	}

	// No duplicate reply may linger: the background drains scavenge every
	// loser's reply.
	w.waitReplyDrained(t, hedged.ReplyQueue(), 10*time.Second)
	w.waitReplyDrained(t, base.ReplyQueue(), 10*time.Second)
}
