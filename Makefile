# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build test race bench experiments examples fuzz trace-demo clean

all: build test

build:
	$(GO) build ./...
	$(GO) vet ./...

test:
	$(GO) test -shuffle=on -count=1 ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

## experiments regenerates the E1–E13 tables of EXPERIMENTS.md.
experiments:
	$(GO) run ./cmd/reprobench

experiments-full:
	$(GO) run ./cmd/reprobench -full -fsync

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fundstransfer
	$(GO) run ./examples/ticketagent
	$(GO) run ./examples/batchbank
	$(GO) run ./examples/failover
	$(GO) run ./examples/tracedemo

## trace-demo drives one traced request end to end and dumps its span tree.
trace-demo:
	$(GO) run ./examples/tracedemo

## fuzz runs each fuzz target briefly.
fuzz:
	$(GO) test ./internal/enc -run xxx -fuzz '^FuzzReaderNeverPanics$$' -fuzztime 20s
	$(GO) test ./internal/enc -run xxx -fuzz '^FuzzRoundTrip$$' -fuzztime 20s
	$(GO) test ./internal/enc -run xxx -fuzz '^FuzzTraceTailRoundTrip$$' -fuzztime 20s
	$(GO) test ./internal/queue -run xxx -fuzz '^FuzzElementDecode$$' -fuzztime 20s
	$(GO) test ./internal/queue -run xxx -fuzz '^FuzzRedoNeverPanics$$' -fuzztime 20s
	$(GO) test ./internal/rpc -run xxx -fuzz '^FuzzReadFrame$$' -fuzztime 20s
	$(GO) test ./internal/rpc -run xxx -fuzz '^FuzzFrameRoundTrip$$' -fuzztime 20s
	$(GO) test ./internal/rpc -run xxx -fuzz '^FuzzFrameRoundTripDeadline$$' -fuzztime 20s
	$(GO) test ./internal/core -run xxx -fuzz '^FuzzParseRequestReply$$' -fuzztime 20s
	$(GO) test ./internal/core -run xxx -fuzz '^FuzzParseForeignElement$$' -fuzztime 20s

clean:
	$(GO) clean ./...
