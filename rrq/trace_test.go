package rrq

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/obs/trace"
	"repro/internal/queue"
)

// collectSpans flattens a span tree into name → span for assertions.
// Duplicate names keep the first (earliest-started) span: the server sorts
// siblings by start time, so for a request trace that is the request-side
// span (e.g. the request queue's dequeue, not the reply queue's).
func collectSpans(nodes []*trace.Node, out map[string]*trace.Node) {
	for _, n := range nodes {
		if prev, ok := out[n.Span.Name]; !ok || n.Span.Start < prev.Span.Start {
			out[n.Span.Name] = n
		}
		collectSpans(n.Children, out)
	}
}

func spanAttr(n *trace.Node, key string) (int64, bool) {
	for _, a := range n.Span.Attrs {
		if a.Key == key && a.Str == "" {
			return a.Int, true
		}
	}
	return 0, false
}

// TestTraceContinuityAcrossCrash is the trace-continuity invariant: a node
// that crashes between dequeuing a traced request and committing must,
// after recovery, re-execute the request under the ORIGINAL trace id —
// the trace context is persisted in the element's WAL record — and the
// re-execution's processing span must carry retry=1 (the redelivery).
func TestTraceContinuityAcrossCrash(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()

	node, err := StartNode(NodeConfig{Dir: dir, NoFsync: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := node.CreateQueue(QueueConfig{Name: "requests"}); err != nil {
		t.Fatal(err)
	}
	clerk := NewClerk(node.LocalConn(), ClerkConfig{
		ClientID:     "trace-client",
		RequestQueue: "requests",
		Tracer:       node.Tracer(),
	})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-trace-1", []byte("work"), nil); err != nil {
		t.Fatal(err)
	}
	traceID := clerk.LastTrace()
	if traceID.IsZero() {
		t.Fatal("Send did not stamp a trace id")
	}

	// Dequeue inside a transaction and crash before commit: the paper's
	// recovery guarantee returns the element to the queue, and the trace
	// guarantee keeps its identity.
	if _, _, err := node.Repo().Register("requests", "crashsrv", false); err != nil {
		t.Fatal(err)
	}
	tx := node.Begin()
	el, err := node.Repo().Dequeue(ctx, tx, "requests", "crashsrv", queue.DequeueOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if el.Trace != traceID {
		t.Fatalf("dequeued element trace = %s, want %s", el.Trace, traceID)
	}
	node.Crash()

	node2, err := StartNode(NodeConfig{Dir: dir, NoFsync: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()

	// Recovery replay must have resumed the trace: a "replay" span under
	// the original id, before any server even runs.
	replayed := map[string]*trace.Node{}
	collectSpans(node2.Tracer().Trace(traceID), replayed)
	if replayed["replay"] == nil {
		t.Fatalf("recovery recorded no replay span for trace %s (got %v)", traceID, spanNames(replayed))
	}

	// Re-execute through a real server loop and receive the reply.
	srv, err := NewServer(ServerConfig{
		Repo:    node2.Repo(),
		Queue:   "requests",
		Name:    "crashsrv",
		Handler: func(rc *ReqCtx) ([]byte, error) { return []byte("ok"), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go srv.Serve(sctx)
	clerk2 := NewClerk(node2.LocalConn(), ClerkConfig{
		ClientID:     "trace-client",
		RequestQueue: "requests",
		Tracer:       node2.Tracer(),
	})
	info, err := clerk2.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Outstanding {
		t.Fatal("expected the request to be outstanding after recovery")
	}
	rctx, rcancel := context.WithTimeout(ctx, 10*time.Second)
	defer rcancel()
	rep, err := clerk2.Receive(rctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RID != "rid-trace-1" {
		t.Fatalf("reply rid = %q", rep.RID)
	}

	spans := map[string]*trace.Node{}
	collectSpans(node2.Tracer().Trace(traceID), spans)
	for _, name := range []string{"replay", "dequeue", "process", "txn.commit"} {
		if spans[name] == nil {
			t.Errorf("trace %s missing %q span after re-execution (got %v)", traceID, name, spanNames(spans))
		}
	}
	proc := spans["process"]
	if proc == nil {
		t.FailNow()
	}
	if proc.Span.Trace != traceID {
		t.Errorf("process span trace = %s, want original %s", proc.Span.Trace, traceID)
	}
	retry, ok := spanAttr(proc, "retry")
	if !ok || retry != 1 {
		t.Errorf("process span retry = %d (present=%v), want 1", retry, ok)
	}
	if redeliv, ok := spanAttr(spans["dequeue"], "redelivered"); !ok || redeliv != 1 {
		t.Errorf("dequeue span redelivered = %d (present=%v), want 1", redeliv, ok)
	}
}

func spanNames(m map[string]*trace.Node) []string {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	return names
}

// TestTraceEndToEndAdmin drives a traced request through a node and reads
// the assembled span tree back through GET /trace/{id}, checking the tree
// shape and that the phase durations are consistent with the end-to-end
// extent.
func TestTraceEndToEndAdmin(t *testing.T) {
	ctx := context.Background()
	node, err := StartNode(NodeConfig{
		Dir:       t.TempDir(),
		NoFsync:   true,
		AdminAddr: "127.0.0.1:0",
		Trace:     true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.CreateQueue(QueueConfig{Name: "requests"}); err != nil {
		t.Fatal(err)
	}
	srv, err := rrqNewTestServer(node, "requests")
	if err != nil {
		t.Fatal(err)
	}
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	go srv.Serve(sctx)

	clerk := NewClerk(node.LocalConn(), ClerkConfig{
		ClientID:     "admin-client",
		RequestQueue: "requests",
		Tracer:       node.Tracer(),
	})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := clerk.Transceive(ctx, "rid-admin-1", []byte("x"), nil, nil); err != nil {
		t.Fatal(err)
	}
	id := clerk.LastTrace()

	resp, err := http.Get("http://" + node.AdminAddr() + "/trace/" + id.String())
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /trace/%s: %d %s", id, resp.StatusCode, body)
	}
	var roots []struct {
		Trace    string          `json:"trace"`
		Name     string          `json:"name"`
		Start    int64           `json:"start_ns"`
		Dur      int64           `json:"dur_ns"`
		Children json.RawMessage `json:"children"`
	}
	if err := json.Unmarshal(body, &roots); err != nil {
		t.Fatalf("decode span tree: %v\n%s", err, body)
	}
	if len(roots) != 1 || roots[0].Name != "submit" {
		t.Fatalf("expected a single submit root, got %s", body)
	}
	if roots[0].Trace != id.String() {
		t.Fatalf("root trace = %s, want %s", roots[0].Trace, id)
	}
	// Every recorded phase must nest inside the submit..reply extent:
	// child [start, start+dur] windows may not overflow the trace extent
	// reported by the summary listing.
	nodes := map[string]*trace.Node{}
	collectSpans(node.Tracer().Trace(id), nodes)
	for _, name := range []string{"submit", "enqueue", "dequeue", "process", "txn.commit"} {
		if nodes[name] == nil {
			t.Errorf("missing %q span in %s", name, body)
		}
	}
	if lsn, ok := spanAttr(nodes["enqueue"], "lsn"); !ok || lsn <= 0 {
		t.Errorf("enqueue span lsn = %d (present=%v), want > 0", lsn, ok)
	}
	var minStart, maxEnd int64
	var walk func(ns []*trace.Node)
	walk = func(ns []*trace.Node) {
		for _, n := range ns {
			if minStart == 0 || n.Span.Start < minStart {
				minStart = n.Span.Start
			}
			if n.Span.End > maxEnd {
				maxEnd = n.Span.End
			}
			walk(n.Children)
		}
	}
	walk(node.Tracer().Trace(id))
	extent := maxEnd - minStart
	sums := node.Tracer().Slowest(1)
	if len(sums) != 1 || sums[0].Trace != id {
		t.Fatalf("Slowest(1) = %+v, want trace %s", sums, id)
	}
	// The summary's extent is computed from the same retained spans, so
	// the two must agree within rounding (they share the clock).
	if d := int64(sums[0].Duration) - extent; d < -extent/20 || d > extent/20 {
		t.Errorf("summary duration %d vs recomputed extent %d (>5%% apart)", sums[0].Duration, extent)
	}

	// GET /traces lists the trace; non-GET is rejected with 405.
	resp, err = http.Get("http://" + node.AdminAddr() + "/traces?slowest=5")
	if err != nil {
		t.Fatal(err)
	}
	list, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(list), id.String()) {
		t.Fatalf("GET /traces: %d %s", resp.StatusCode, list)
	}
	for _, path := range []string{"/metrics", "/traces", "/trace/" + id.String()} {
		resp, err := http.Post("http://"+node.AdminAddr()+path, "text/plain", strings.NewReader("x"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST %s = %d, want 405", path, resp.StatusCode)
		}
	}
}

func rrqNewTestServer(node *Node, q string) (*Server, error) {
	return NewServer(ServerConfig{
		Repo:    node.Repo(),
		Queue:   q,
		Handler: func(rc *ReqCtx) ([]byte, error) { return []byte("ok"), nil },
	})
}
