package rrq_test

import (
	"context"
	"fmt"
	"log"
	"os"

	"repro/rrq"
)

// Example shows the paper's fig. 4 system end to end: a node, a server
// transaction, and a non-transactional client with exactly-once semantics.
func Example() {
	dir, _ := os.MkdirTemp("", "rrq-example-*")
	defer os.RemoveAll(dir)
	node, err := rrq.StartNode(rrq.NodeConfig{Dir: dir, NoFsync: true})
	if err != nil {
		log.Fatal(err)
	}
	defer node.Close()
	if err := node.CreateQueue(rrq.QueueConfig{Name: "greetings"}); err != nil {
		log.Fatal(err)
	}

	srv, err := rrq.NewServer(rrq.ServerConfig{
		Repo: node.Repo(), Queue: "greetings",
		Handler: func(rc *rrq.ReqCtx) ([]byte, error) {
			return append([]byte("hello, "), rc.Request.Body...), nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	clerk := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{
		ClientID: "example", RequestQueue: "greetings",
	})
	if _, err := clerk.Connect(ctx); err != nil {
		log.Fatal(err)
	}
	rep, err := clerk.Transceive(ctx, "rid-1", []byte("world"), nil, nil)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(rep.Body))
	// Output: hello, world
}

// ExampleClerk_Rereceive shows at-least-once reply processing: the reply
// stays re-readable (from the queue manager's stable registration copy)
// until the client's next request.
func ExampleClerk_Rereceive() {
	dir, _ := os.MkdirTemp("", "rrq-example-*")
	defer os.RemoveAll(dir)
	node, _ := rrq.StartNode(rrq.NodeConfig{Dir: dir, NoFsync: true})
	defer node.Close()
	node.CreateQueue(rrq.QueueConfig{Name: "q"})
	srv, _ := rrq.NewServer(rrq.ServerConfig{Repo: node.Repo(), Queue: "q",
		Handler: func(rc *rrq.ReqCtx) ([]byte, error) { return []byte("the reply"), nil }})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	clerk := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{ClientID: "c", RequestQueue: "q"})
	clerk.Connect(ctx)
	clerk.Send(ctx, "rid-1", nil, nil)
	first, _ := clerk.Receive(ctx, nil)
	again, _ := clerk.Rereceive(ctx)
	fmt.Println(string(first.Body))
	fmt.Println(string(again.Body))
	// Output:
	// the reply
	// the reply
}

// ExampleNode_LocalConn shows connect-time resynchronisation: a client
// crashes after Send; its next incarnation learns from the registration
// that a request is outstanding and receives its reply — the request is
// never re-sent, never lost.
func ExampleNode_LocalConn() {
	dir, _ := os.MkdirTemp("", "rrq-example-*")
	defer os.RemoveAll(dir)
	node, _ := rrq.StartNode(rrq.NodeConfig{Dir: dir, NoFsync: true})
	defer node.Close()
	node.CreateQueue(rrq.QueueConfig{Name: "q"})
	srv, _ := rrq.NewServer(rrq.ServerConfig{Repo: node.Repo(), Queue: "q",
		Handler: func(rc *rrq.ReqCtx) ([]byte, error) { return []byte("done"), nil }})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)

	clerk := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{ClientID: "c", RequestQueue: "q"})
	clerk.Connect(ctx)
	clerk.Send(ctx, "rid-42", []byte("work"), nil)
	// ... the client process dies here ...

	reborn := rrq.NewClerk(node.LocalConn(), rrq.ClerkConfig{ClientID: "c", RequestQueue: "q"})
	info, _ := reborn.Connect(ctx)
	fmt.Println("outstanding:", info.Outstanding, info.SRID)
	rep, _ := reborn.Receive(ctx, nil)
	fmt.Println("reply:", string(rep.Body))
	// Output:
	// outstanding: true rid-42
	// reply: done
}
