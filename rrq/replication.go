package rrq

// Replication & failover (DESIGN.md §12): a primary node ships its WAL
// and snapshots to one standby, synchronously enough (per mode) that a
// standby promoted after the primary's death has every acked request.
//
// The pieces: NodeConfig.Replication makes a node a replicating primary
// (the WAL's commit gate blocks acks on standby acknowledgement in sync
// mode); StartStandby runs the warm standby — a Receiver applying the
// shipped stream plus a lease Watcher that self-promotes, with a bumped
// and persisted fencing epoch, when the primary misses a lease TTL; and
// ResilientClerk (with a Reconnect factory) rides through the switch:
// fenced rejections from the ex-primary are retryable, so the fig. 2
// recovery loop re-resolves and resynchronizes against the new primary.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
	rlog "repro/internal/obs/log"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// Replication modes and types, re-exported.
type (
	// ReplicationMode selects the commit rule: ReplAsync, ReplSemiSync,
	// or ReplSync.
	ReplicationMode = replica.Mode
	// ReplTransport carries ship/lease exchanges (tests inject faults
	// here; production uses the node's RPC substrate automatically).
	ReplTransport = replica.Transport
)

// Replication mode constants.
const (
	ReplAsync    = replica.ModeAsync
	ReplSemiSync = replica.ModeSemiSync
	ReplSync     = replica.ModeSync
)

var (
	// ErrFenced reports an operation rejected because a newer primary
	// epoch exists (matched with errors.Is; retryable through a
	// ResilientClerk with a Reconnect factory).
	ErrFenced = replica.ErrFenced
	// ParseReplicationMode parses "sync" | "semisync" | "async".
	ParseReplicationMode = replica.ParseMode
)

// ReplicationConfig makes a node a replicating primary.
type ReplicationConfig struct {
	// Mode is the commit rule (ReplSync / ReplSemiSync / ReplAsync).
	Mode ReplicationMode
	// StandbyAddr is the standby's RPC address (its StartStandby
	// ListenAddr). Ignored when Transport is set.
	StandbyAddr string
	// Transport overrides the ship transport (tests).
	Transport ReplTransport
	// MaxLagRecords / MaxLagBytes bound semi-sync lag before commits
	// block; zeros take the replica defaults (256 records, 1 MiB).
	MaxLagRecords uint64
	MaxLagBytes   int64
	// ShipRetries bounds sync-mode ship attempts per commit before the
	// failure action; zero means 3.
	ShipRetries int
	// DegradeToAsync drops to async shipping (and a degraded /healthz)
	// when sync-mode retries exhaust, instead of poisoning the WAL.
	DegradeToAsync bool
	// ShipInterval paces the background shipper; zero means 50ms.
	ShipInterval time.Duration
	// ShipTimeout bounds one ship exchange; zero means 2s.
	ShipTimeout time.Duration
	// LeaseTTL is the failover lease advertised in status documents (the
	// standby enforces its own); informational on the primary.
	LeaseTTL time.Duration
}

// ReplicationStatus is the node-role-agnostic replication document
// served by qm.repl and printed by `qmctl repl`.
type ReplicationStatus struct {
	Role         string `json:"role"` // "primary" | "standby"
	Mode         string `json:"mode,omitempty"`
	Epoch        uint64 `json:"epoch"`
	DurableLSN   uint64 `json:"durable_lsn,omitempty"`
	AckedLSN     uint64 `json:"acked_lsn,omitempty"`
	AppliedLSN   uint64 `json:"applied_lsn,omitempty"`
	LagRecords   uint64 `json:"lag_records"`
	LagBytes     int64  `json:"lag_bytes"`
	ShipFailures uint64 `json:"ship_failures"`
	Degraded     bool   `json:"degraded,omitempty"`
	Fenced       bool   `json:"fenced,omitempty"`
	Promoted     bool   `json:"promoted,omitempty"`
	LeaseTTLMs   int64  `json:"lease_ttl_ms,omitempty"`
	LeaseLeftMs  int64  `json:"lease_remaining_ms,omitempty"`
	Err          string `json:"err,omitempty"`
}

// Replication returns the node's replication status, or nil when the
// node is not a replicating primary.
func (n *Node) Replication() *ReplicationStatus {
	if n.sender == nil {
		return nil
	}
	st := n.sender.Status()
	return &ReplicationStatus{
		Role:         st.Role,
		Mode:         st.Mode,
		Epoch:        st.Epoch,
		DurableLSN:   st.DurableLSN,
		AckedLSN:     st.AckedLSN,
		LagRecords:   st.LagRecords,
		LagBytes:     st.LagBytes,
		ShipFailures: st.ShipFailures,
		Degraded:     st.Degraded,
		Fenced:       st.Fenced,
		LeaseTTLMs:   int64(st.LeaseTTL / time.Millisecond),
		Err:          st.Err,
	}
}

func (n *Node) replJSON() ([]byte, error) {
	st := n.Replication()
	if st == nil {
		return nil, fmt.Errorf("%w: replication not enabled on this node", queue.ErrNotFound)
	}
	return json.Marshal(st)
}

// startReplication builds the primary-side sender (called by StartNode
// before the repository opens, so the WAL gate is in place from the very
// first flush).
func startReplication(cfg *ReplicationConfig, dir string, reg *obs.Registry, logger *rlog.Logger) (*replica.Sender, error) {
	tr := cfg.Transport
	if tr == nil {
		if cfg.StandbyAddr == "" {
			return nil, fmt.Errorf("rrq: replication: neither StandbyAddr nor Transport set")
		}
		tr = replica.NewRPCTransport(rpc.NewClient(cfg.StandbyAddr, nil), replica.MethodShip)
	}
	return replica.NewSender(dir, tr, replica.SenderOptions{
		Mode:           cfg.Mode,
		MaxLagRecords:  cfg.MaxLagRecords,
		MaxLagBytes:    cfg.MaxLagBytes,
		ShipRetries:    cfg.ShipRetries,
		DegradeToAsync: cfg.DegradeToAsync,
		ShipTimeout:    cfg.ShipTimeout,
		Metrics:        reg,
		Logger:         logger,
	})
}

// StandbyConfig configures a warm standby (StartStandby).
type StandbyConfig struct {
	// Dir is the standby's state directory — the promotion target; after
	// promotion the same directory is opened as a live node.
	Dir string
	// ListenAddr serves the ship endpoint (and qm.repl status) over RPC;
	// "127.0.0.1:0" picks a port (see Standby.Addr).
	ListenAddr string
	// PrimaryAddr is the primary node's RPC address, pinged for the lease.
	PrimaryAddr string
	// LeaseTTL is the failover trigger: that long without a granted lease
	// promotes the standby. Zero means 1s.
	LeaseTTL time.Duration
	// PingEvery is the lease ping interval; zero means LeaseTTL/4.
	PingEvery time.Duration
	// NoFsync skips standby fsyncs (tests only: the ack is the durability
	// promise sync-mode commits wait on).
	NoFsync bool
	// Metrics receives the replica.* instruments; nil creates a private
	// registry.
	Metrics *obs.Registry
	// Log receives standby lifecycle events; nil disables logging.
	Log *rlog.Logger
	// OnPromote runs after the lease expired and the bumped epoch is
	// durable, with the standby's RPC server already closed — the hook
	// where the caller opens Dir as a live Node (often on the same
	// ListenAddr). Nil just records the promotion (see Promoted /
	// WaitPromoted).
	OnPromote func(epoch uint64)
	// LeaseTransport overrides the lease ping transport (tests).
	LeaseTransport ReplTransport
}

// Standby is a running warm standby: a ship receiver plus a lease
// watcher that promotes when the primary goes quiet.
type Standby struct {
	rcv     *replica.Receiver
	watcher *replica.Watcher
	srv     *rpc.Server
	addr    string
	cancel  context.CancelFunc
	done    chan struct{}

	mu       sync.Mutex
	promoted chan uint64 // closed-after-send on promotion
	epoch    uint64
}

// StartStandby opens (resuming, if restarted) a standby over cfg.Dir.
func StartStandby(cfg StandbyConfig) (*Standby, error) {
	rcv, err := replica.NewReceiver(cfg.Dir, replica.ReceiverOptions{
		NoFsync: cfg.NoFsync,
		Metrics: cfg.Metrics,
		Logger:  cfg.Log,
	})
	if err != nil {
		return nil, err
	}
	s := &Standby{rcv: rcv, promoted: make(chan uint64, 1), done: make(chan struct{})}

	s.srv = rpc.NewServerWith(cfg.Metrics)
	s.srv.SetLogger(cfg.Log)
	replica.RegisterReceiver(s.srv, rcv)
	s.srv.Handle(qservice.MethodRepl, func(p []byte) ([]byte, error) {
		j, err := json.Marshal(s.Status())
		return qservice.RespondJSON(j, err), nil
	})
	if cfg.ListenAddr != "" {
		addr, err := s.srv.ListenAndServe(cfg.ListenAddr)
		if err != nil {
			return nil, fmt.Errorf("rrq: standby listen: %w", err)
		}
		s.addr = addr
	}

	ltr := cfg.LeaseTransport
	if ltr == nil {
		if cfg.PrimaryAddr == "" {
			s.srv.Close()
			return nil, fmt.Errorf("rrq: standby: neither PrimaryAddr nor LeaseTransport set")
		}
		ltr = replica.NewRPCTransport(rpc.NewClient(cfg.PrimaryAddr, nil), replica.MethodLease)
	}
	w := replica.NewWatcher(rcv, ltr, replica.StandbyOptions{
		TTL:       cfg.LeaseTTL,
		PingEvery: cfg.PingEvery,
		Logger:    cfg.Log,
		OnPromote: func(epoch uint64) {
			// Stop serving ship/lease traffic before handing the directory
			// to the caller: the fencing epoch is already durable, so late
			// ships die with "connection refused" rather than fenced — the
			// sender treats both as fatal-or-degrade, and a re-listen on
			// this address will be the promoted live node.
			s.srv.Close()
			s.mu.Lock()
			s.epoch = epoch
			s.mu.Unlock()
			s.promoted <- epoch
			close(s.promoted)
			if cfg.OnPromote != nil {
				cfg.OnPromote(epoch)
			}
		},
	})
	s.mu.Lock()
	s.watcher = w
	s.mu.Unlock()
	ctx, cancel := context.WithCancel(context.Background())
	s.cancel = cancel
	go func() {
		defer close(s.done)
		w.Run(ctx)
	}()
	return s, nil
}

// Addr returns the standby's RPC address ("" if not listening).
func (s *Standby) Addr() string { return s.addr }

// Receiver exposes the underlying ship receiver.
func (s *Standby) Receiver() *replica.Receiver { return s.rcv }

// Epoch returns the standby's current fencing epoch.
func (s *Standby) Epoch() uint64 { return s.rcv.Epoch() }

// Promoted reports whether the standby has promoted itself.
func (s *Standby) Promoted() bool { return s.rcv.Promoted() }

// WaitPromoted blocks until promotion (returning the new epoch) or ctx
// ends (returning 0, false).
func (s *Standby) WaitPromoted(ctx context.Context) (uint64, bool) {
	select {
	case e, ok := <-s.promoted:
		if !ok {
			s.mu.Lock()
			defer s.mu.Unlock()
			return s.epoch, true
		}
		return e, true
	case <-ctx.Done():
		return 0, false
	}
}

// Status reports the standby's replication document.
func (s *Standby) Status() ReplicationStatus {
	st := ReplicationStatus{
		Role:       "standby",
		Epoch:      s.rcv.Epoch(),
		AppliedLSN: s.rcv.AppliedLSN(),
		Promoted:   s.rcv.Promoted(),
	}
	// The RPC server starts answering before the watcher exists (a ship
	// can land in that window); lease fields are best-effort.
	s.mu.Lock()
	w := s.watcher
	s.mu.Unlock()
	if w != nil {
		st.LeaseTTLMs = int64(w.TTL() / time.Millisecond)
		st.LeaseLeftMs = int64(w.LeaseRemaining() / time.Millisecond)
	}
	return st
}

// Close stops the standby (without promoting).
func (s *Standby) Close() {
	s.cancel()
	<-s.done
	s.srv.Close()
}
