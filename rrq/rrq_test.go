package rrq

import (
	"context"
	"errors"
	"fmt"
	"repro/internal/tpc"
	"testing"
	"time"
)

func startTestNode(t *testing.T, dir string, listen bool) *Node {
	t.Helper()
	cfg := NodeConfig{Dir: dir, NoFsync: true}
	if listen {
		cfg.ListenAddr = "127.0.0.1:0"
	}
	n, err := StartNode(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	return n
}

func TestNodeLocalRoundTrip(t *testing.T) {
	n := startTestNode(t, t.TempDir(), false)
	if err := n.CreateQueue(QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Repo: n.Repo(), Queue: "req", Handler: func(rc *ReqCtx) ([]byte, error) {
		return append([]byte("pong:"), rc.Request.Body...), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Serve(ctx)

	clerk := NewClerk(n.LocalConn(), ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Transceive(ctx, "rid-1", []byte("ping"), nil, nil)
	if err != nil || string(rep.Body) != "pong:ping" {
		t.Fatalf("reply %+v %v", rep, err)
	}
}

// TestCreateQueueExistsSentinel pins the duplicate-create contract qmd
// relies on: the error must match the ErrQueueExists sentinel via
// errors.Is, not by substring inspection of the message.
func TestCreateQueueExistsSentinel(t *testing.T) {
	n := startTestNode(t, t.TempDir(), false)
	if err := n.CreateQueue(QueueConfig{Name: "dup"}); err != nil {
		t.Fatal(err)
	}
	err := n.CreateQueue(QueueConfig{Name: "dup"})
	if err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if !errors.Is(err, ErrQueueExists) {
		t.Fatalf("duplicate create error %v does not match ErrQueueExists", err)
	}
	// Wrapping must not break the match — qmd may add context.
	if wrapped := fmt.Errorf("create queue dup: %w", err); !errors.Is(wrapped, ErrQueueExists) {
		t.Fatalf("wrapped error %v lost the sentinel", wrapped)
	}
}

func TestNodeRemoteRoundTrip(t *testing.T) {
	n := startTestNode(t, t.TempDir(), true)
	if n.Addr() == "" {
		t.Fatal("no address")
	}
	if err := n.CreateQueue(QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(ServerConfig{Repo: n.Repo(), Queue: "req", Handler: func(rc *ReqCtx) ([]byte, error) {
		return []byte("remote ok"), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Serve(ctx)

	clerk := NewClerk(Dial(n.Addr()), ClerkConfig{ClientID: "rc", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Transceive(ctx, "rid-1", []byte("x"), nil, nil)
	if err != nil || string(rep.Body) != "remote ok" {
		t.Fatalf("reply %+v %v", rep, err)
	}
}

func TestNodeCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	n, err := StartNode(NodeConfig{Dir: dir, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := n.CreateQueue(QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Repo().Enqueue(nil, "q", Element{Body: []byte("survivor")}, "", nil); err != nil {
		t.Fatal(err)
	}
	n.Crash()

	n2 := startTestNode(t, dir, false)
	d, err := n2.Repo().Depth("q")
	if err != nil || d != 1 {
		t.Fatalf("depth after node recovery = %d, %v", d, err)
	}
}

func TestTransferElementAcrossNodes(t *testing.T) {
	a := startTestNode(t, t.TempDir(), false)
	b := startTestNode(t, t.TempDir(), false)
	if err := a.CreateQueue(QueueConfig{Name: "outbox"}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateQueue(QueueConfig{Name: "inbox"}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 5; i++ {
		if _, err := a.Repo().Enqueue(nil, "outbox", Element{Body: []byte(fmt.Sprintf("m%d", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	// The forwarder: drain the local outbox into the remote inbox, each
	// move a distributed transaction.
	for i := 0; i < 5; i++ {
		if err := a.TransferElement(ctx, "outbox", b, "inbox"); err != nil {
			t.Fatal(err)
		}
	}
	if d, _ := a.Repo().Depth("outbox"); d != 0 {
		t.Fatalf("outbox depth %d", d)
	}
	if d, _ := b.Repo().Depth("inbox"); d != 5 {
		t.Fatalf("inbox depth %d", d)
	}
	// FIFO preserved across the transfer.
	e, err := b.Repo().Dequeue(ctx, nil, "inbox", "", DequeueOpts{})
	if err != nil || string(e.Body) != "m0" {
		t.Fatalf("first transferred = %q %v", e.Body, err)
	}
}

func TestEndToEndAcrossNodesWithForwarder(t *testing.T) {
	// The Section 1 availability pattern: the client enqueues to a local
	// queue; a forwarder moves requests to the remote server's input
	// queue; replies flow back the same way.
	front := startTestNode(t, t.TempDir(), false)
	back := startTestNode(t, t.TempDir(), false)
	for _, q := range []string{"outbox", "reply.c"} {
		if err := front.CreateQueue(QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	// The back end stages replies in a queue with the same name as the
	// client's reply queue; the reply forwarder drains it homeward (store
	// and forward).
	for _, q := range []string{"req", "reply.c"} {
		if err := back.CreateQueue(QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	// Server on the back end replies into its local replies.out.
	srv, err := NewServer(ServerConfig{Repo: back.Repo(), Queue: "req", Handler: func(rc *ReqCtx) ([]byte, error) {
		return []byte("processed " + rc.Request.RID), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ctx)

	// Forwarders: front.outbox → back.req, back.reply.c → front.reply.c.
	go front.RunForwarder(ctx, "outbox", back, "req")
	go back.RunForwarder(ctx, "reply.c", front, "reply.c")

	// The client talks only to its local (front-end) node.
	clerk := NewClerk(front.LocalConn(), ClerkConfig{ClientID: "c", RequestQueue: "outbox", ReplyQueue: "reply.c"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("work"), nil); err != nil {
		t.Fatal(err)
	}
	rep, err := clerk.Receive(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != "processed rid-1" {
		t.Fatalf("reply %q", rep.Body)
	}
}

func TestForwarderMasksPartition(t *testing.T) {
	// §1: "the server appears to provide a reliable service to the client
	// even if the client and server nodes are frequently partitioned".
	// While the link is down (no forwarder running), requests accumulate
	// safely in the local outbox; when it heals, everything flows and the
	// client's blocking Receive completes as if nothing happened.
	front := startTestNode(t, t.TempDir(), false)
	back := startTestNode(t, t.TempDir(), false)
	for _, q := range []string{"outbox", "reply.c"} {
		if err := front.CreateQueue(QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	for _, q := range []string{"req", "reply.c"} {
		if err := back.CreateQueue(QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	srv, err := NewServer(ServerConfig{Repo: back.Repo(), Queue: "req", Handler: func(rc *ReqCtx) ([]byte, error) {
		return []byte("ok " + rc.Request.RID), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ctx)

	clerk := NewClerk(front.LocalConn(), ClerkConfig{ClientID: "c", RequestQueue: "outbox", ReplyQueue: "reply.c"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	// Partitioned: send anyway. The Send succeeds against the LOCAL node.
	if err := clerk.Send(ctx, "rid-1", []byte("during partition"), nil); err != nil {
		t.Fatalf("send during partition failed: %v", err)
	}
	if d, _ := front.Repo().Depth("outbox"); d != 1 {
		t.Fatalf("outbox depth %d", d)
	}
	// Receive blocks in the background; the reply cannot arrive yet.
	type recvResult struct {
		rep Reply
		err error
	}
	got := make(chan recvResult, 1)
	go func() {
		rep, err := clerk.Receive(ctx, nil)
		got <- recvResult{rep, err}
	}()
	select {
	case r := <-got:
		t.Fatalf("reply crossed the partition: %+v %v", r.rep, r.err)
	case <-time.After(50 * time.Millisecond):
	}
	// Heal: start the forwarders.
	go front.RunForwarder(ctx, "outbox", back, "req")
	go back.RunForwarder(ctx, "reply.c", front, "reply.c")
	select {
	case r := <-got:
		if r.err != nil || string(r.rep.Body) != "ok rid-1" {
			t.Fatalf("after heal: %+v %v", r.rep, r.err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reply never arrived after heal")
	}
}

func TestCrossNodeInDoubtResolution(t *testing.T) {
	// A forwarder's distributed transaction is caught mid-2PC by a crash
	// of BOTH nodes: the source prepared and the coordinator logged the
	// commit decision, but the destination (also prepared) never heard it.
	// On restart, each node resolves its in-doubt branches through a
	// resolver registry that knows the other node's coordinator.
	dirA, dirB := t.TempDir(), t.TempDir()
	a, err := StartNode(NodeConfig{Dir: dirA, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := StartNode(NodeConfig{Dir: dirB, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CreateQueue(QueueConfig{Name: "out"}); err != nil {
		t.Fatal(err)
	}
	if err := b.CreateQueue(QueueConfig{Name: "in"}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := a.Repo().Enqueue(nil, "out", Element{Body: []byte("m")}, "", nil); err != nil {
		t.Fatal(err)
	}

	// Drive 2PC by hand up to the decision, then crash everything before
	// phase 2 reaches the participants.
	tA := a.Repo().Begin()
	tB := b.Repo().Begin()
	el, err := a.Repo().Dequeue(ctx, tA, "out", "", DequeueOpts{})
	if err != nil {
		t.Fatal(err)
	}
	el.EID = 0
	if _, err := b.Repo().Enqueue(tB, "in", el, "", nil); err != nil {
		t.Fatal(err)
	}
	g := a.Coordinator().Begin()
	gtid := g.GTID()
	if err := tA.Prepare(gtid); err != nil {
		t.Fatal(err)
	}
	if err := tB.Prepare(gtid); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); err != nil { // no branches enlisted: logs the decision only
		t.Fatal(err)
	}
	a.Crash()
	b.Crash()

	// Restart A first (it owns the coordinator), then B with a registry
	// that can reach A's coordinator.
	a2, err := StartNode(NodeConfig{Dir: dirA, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { a2.Close() })
	reg := tpc.NewRegistry()
	reg.Add(a2.Coordinator().Name(), a2.Coordinator())
	b2, err := StartNode(NodeConfig{Dir: dirB, NoFsync: true, Resolver: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { b2.Close() })

	// A resolved its in-doubt branch against its own coordinator's
	// decision log (commit: element consumed from "out"); B resolved via
	// the registry (commit: element published in "in").
	if d, _ := a2.Repo().Depth("out"); d != 0 {
		t.Fatalf("source element resurrected: depth %d", d)
	}
	if d, _ := b2.Repo().Depth("in"); d != 1 {
		t.Fatalf("destination element lost: depth %d", d)
	}
	// Without the registry, B's branch would have presumed abort; with it,
	// the element moved exactly once.
	e, err := b2.Repo().Dequeue(ctx, nil, "in", "", DequeueOpts{})
	if err != nil || string(e.Body) != "m" {
		t.Fatalf("moved element: %q %v", e.Body, err)
	}
}
