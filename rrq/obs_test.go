package rrq

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos/walfault"
	rlog "repro/internal/obs/log"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/rpc"
)

// dialQM returns the typed queue-manager client qmctl uses, closed with
// the test.
func dialQM(t *testing.T, addr string) *qservice.Client {
	t.Helper()
	qc := qservice.NewClient(rpc.NewClient(addr, nil))
	t.Cleanup(qc.Close)
	return qc
}

func mustOpen(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}

// getJSON fetches an admin endpoint and decodes its JSON body into out,
// returning the status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	// Non-2xx bodies are plain-text diagnostics except /healthz, which
	// serves its JSON document at 503 too.
	if out != nil && (resp.StatusCode < 300 || strings.Contains(url, "healthz") || strings.Contains(url, "readyz")) {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decode %s: %v\nbody: %s", url, err, body)
		}
	}
	return resp.StatusCode
}

// TestHealthzFlipsOnWALFault is the health plane's acceptance test: a
// healthy node answers /healthz 200, and once internal/chaos/walfault
// poisons the WAL writer the same endpoint flips to 503 with the "wal"
// component failed.
func TestHealthzFlipsOnWALFault(t *testing.T) {
	fs := walfault.New(1)
	n, err := StartNode(NodeConfig{
		Dir:       t.TempDir(),
		Name:      "faulty",
		AdminAddr: "127.0.0.1:0",
		WALFS:     fs,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	if err := n.CreateQueue(QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	base := "http://" + n.AdminAddr()

	var h Health
	if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK {
		t.Fatalf("healthy node: /healthz = %d, want 200", code)
	}
	if h.Status != HealthOK {
		t.Fatalf("healthy node: status %q, want %q (%+v)", h.Status, HealthOK, h)
	}

	// Poison the WAL: the very next segment write fails, the writer
	// records the sticky error, and enqueues start failing.
	fs.FailAfterWrites(0)
	tx := n.Begin()
	_, err = n.Repo().Enqueue(tx, "q", Element{Body: []byte("x")}, "", nil)
	if err == nil {
		err = tx.Commit()
	} else {
		tx.Abort()
	}
	if err == nil {
		t.Fatal("enqueue on poisoned WAL unexpectedly succeeded")
	}

	h = Health{}
	if code := getJSON(t, base+"/healthz", &h); code != http.StatusServiceUnavailable {
		t.Fatalf("poisoned node: /healthz = %d, want 503 (%+v)", code, h)
	}
	if h.Status != HealthFail {
		t.Fatalf("poisoned node: status %q, want %q", h.Status, HealthFail)
	}
	found := false
	for _, c := range h.Components {
		if c.Name == "wal" {
			found = true
			if c.Status != HealthFail {
				t.Fatalf("wal component %+v, want fail", c)
			}
		}
	}
	if !found {
		t.Fatalf("no wal component in %+v", h.Components)
	}

	// Readiness mirrors the failure.
	if code := getJSON(t, base+"/readyz", nil); code != http.StatusServiceUnavailable {
		t.Fatalf("poisoned node: /readyz = %d, want 503", code)
	}
}

// TestObservabilityPlaneEndToEnd drives one node with the full plane on
// (structured log + ring, metrics history, flight recorder, tracing) and
// checks every admin surface and the qm.* RPC mirrors.
func TestObservabilityPlaneEndToEnd(t *testing.T) {
	logger := rlog.New(rlog.LevelDebug, nil)
	n, err := StartNode(NodeConfig{
		Dir:                   t.TempDir(),
		Name:                  "obsnode",
		NoFsync:               true,
		ListenAddr:            "127.0.0.1:0",
		AdminAddr:             "127.0.0.1:0",
		Log:                   logger,
		MetricsHistory:        10 * time.Millisecond,
		MetricsHistorySamples: 32,
		Flight:                true,
		FlightPath:            t.TempDir() + "/dump.json",
		Trace:                 true,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	if err := n.CreateQueue(QueueConfig{Name: "work"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		tx := n.Begin()
		if _, err := n.Repo().Enqueue(tx, "work", Element{Body: []byte(fmt.Sprintf("e%d", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	base := "http://" + n.AdminAddr()

	// /logs — structured events from queue create + node start are in
	// the ring.
	var events []rlog.Event
	if code := getJSON(t, base+"/logs?max=100", &events); code != http.StatusOK {
		t.Fatalf("/logs = %d, want 200", code)
	}
	if len(events) == 0 {
		t.Fatal("/logs returned no events")
	}
	seen := map[string]bool{}
	for _, e := range events {
		seen[e.Msg] = true
	}
	if !seen["queue created"] || !seen["node started"] {
		t.Fatalf("expected 'queue created' and 'node started' events, got %v", seen)
	}

	// /metrics/history — wait for at least two samples, then a window
	// report must carry the enqueue counters.
	deadline := time.Now().Add(2 * time.Second)
	var rep MetricsHistoryReport
	for {
		code := getJSON(t, base+"/metrics/history?window=10s", &rep)
		if code == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/metrics/history never became ready (last code %d)", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if rep.Samples < 2 {
		t.Fatalf("history report has %d samples, want >= 2", rep.Samples)
	}

	// /healthz and /readyz are green.
	var h Health
	if code := getJSON(t, base+"/healthz", &h); code != http.StatusOK || h.Status != HealthOK {
		t.Fatalf("/healthz = %d status %q", code, h.Status)
	}
	if code := getJSON(t, base+"/readyz", nil); code != http.StatusOK {
		t.Fatalf("/readyz = %d, want 200", code)
	}

	// /debug/flight — a live snapshot carries recent events, a metrics
	// snapshot, and history samples.
	var dump FlightDump
	if code := getJSON(t, base+"/debug/flight", &dump); code != http.StatusOK {
		t.Fatalf("/debug/flight = %d, want 200", code)
	}
	if dump.Reason != "request" || len(dump.Events) == 0 || dump.Metrics == nil {
		t.Fatalf("flight dump incomplete: reason=%q events=%d metrics=%v",
			dump.Reason, len(dump.Events), dump.Metrics != nil)
	}
	if dump.Goroutines != "" {
		t.Fatal("live flight snapshot should not carry goroutine stacks")
	}
}

// TestAuxRPCRoundTrip exercises qm.health / qm.logs / qm.flight through
// the typed client, the path qmctl health/logs/flight takes.
func TestAuxRPCRoundTrip(t *testing.T) {
	logger := rlog.New(rlog.LevelInfo, nil)
	n, err := StartNode(NodeConfig{
		Dir:            t.TempDir(),
		Name:           "auxnode",
		NoFsync:        true,
		ListenAddr:     "127.0.0.1:0",
		Log:            logger,
		MetricsHistory: 10 * time.Millisecond,
		Flight:         true,
		FlightPath:     t.TempDir() + "/dump.json",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	if err := n.CreateQueue(QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}

	qc := dialQM(t, n.Addr())
	ctx := t.Context()

	hj, err := qc.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.Unmarshal(hj, &h); err != nil {
		t.Fatalf("qm.health payload: %v\n%s", err, hj)
	}
	if h.Status != HealthOK || h.Node != "auxnode" {
		t.Fatalf("qm.health = %+v", h)
	}

	lj, err := qc.Logs(ctx, 50)
	if err != nil {
		t.Fatal(err)
	}
	var events []rlog.Event
	if err := json.Unmarshal(lj, &events); err != nil || len(events) == 0 {
		t.Fatalf("qm.logs payload: %v (%d events)\n%s", err, len(events), lj)
	}

	fj, err := qc.Flight(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(fj), `"node": "auxnode"`) {
		t.Fatalf("qm.flight payload missing node name:\n%s", fj)
	}
}

// TestAuxRPCUnavailable pins the error contract when the plane is off:
// qm.health still answers (health needs no optional subsystem), while
// qm.logs and qm.flight report not-found.
func TestAuxRPCUnavailable(t *testing.T) {
	n, err := StartNode(NodeConfig{
		Dir:        t.TempDir(),
		Name:       "bare",
		NoFsync:    true,
		ListenAddr: "127.0.0.1:0",
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })

	qc := dialQM(t, n.Addr())
	ctx := t.Context()

	if _, err := qc.Health(ctx); err != nil {
		t.Fatalf("qm.health on bare node: %v", err)
	}
	if _, err := qc.Logs(ctx, 10); !errors.Is(err, queue.ErrNotFound) {
		t.Fatalf("qm.logs on bare node: %v, want ErrNotFound", err)
	}
	if _, err := qc.Flight(ctx); !errors.Is(err, queue.ErrNotFound) {
		t.Fatalf("qm.flight on bare node: %v, want ErrNotFound", err)
	}
}

// TestFlightDumpFileOnClose checks the post-mortem path at node level: a
// manual DumpFile (the same code SIGQUIT runs) lands an atomic JSON file
// containing the node's recent events.
func TestFlightDumpFileOnClose(t *testing.T) {
	logger := rlog.New(rlog.LevelInfo, nil)
	path := t.TempDir() + "/flight.json"
	n, err := StartNode(NodeConfig{
		Dir:            t.TempDir(),
		Name:           "fdump",
		NoFsync:        true,
		Log:            logger,
		MetricsHistory: 10 * time.Millisecond,
		Flight:         true,
		FlightPath:     path,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	if err := n.CreateQueue(QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Flight().DumpFile("test"); err != nil {
		t.Fatal(err)
	}
	var dump FlightDump
	j, err := io.ReadAll(mustOpen(t, path))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(j, &dump); err != nil {
		t.Fatal(err)
	}
	if dump.Node != "fdump" || len(dump.Events) == 0 || dump.Goroutines == "" {
		t.Fatalf("dump incomplete: node=%q events=%d stacks=%d bytes",
			dump.Node, len(dump.Events), len(dump.Goroutines))
	}
}
