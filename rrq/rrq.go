// Package rrq ("recoverable request queues") is the public API of this
// reproduction of Bernstein, Hsu & Mann, "Implementing Recoverable
// Requests Using Queues" (SIGMOD 1990).
//
// A Node is one back-end: a recoverable queue repository (queues, shared
// database tables, persistent registrations) with its write-ahead log,
// transaction manager, two-phase-commit coordinator, and — optionally — an
// RPC endpoint for remote clients. Clients talk to a node through a Clerk
// (the paper's Client Model: Connect / Send / Receive / Rereceive /
// Disconnect with exactly-once request processing); servers attach
// handlers with NewServer, multi-transaction pipelines with NewPipeline,
// compensatable pipelines with NewSaga, and conversations with
// ServeConversational.
//
// See the examples/ directory for runnable end-to-end programs.
package rrq

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/flight"
	rlog "repro/internal/obs/log"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/replica"
	"repro/internal/rpc"
	"repro/internal/tpc"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Re-exported types: the full vocabulary a downstream user needs, in one
// import.
type (
	// Element is a queue element.
	Element = queue.Element
	// EID identifies an element within a repository.
	EID = queue.EID
	// QueueConfig describes a queue.
	QueueConfig = queue.QueueConfig
	// DequeueOpts select and tag a dequeue.
	DequeueOpts = queue.DequeueOpts
	// RegInfo is a registrant's persistent last-operation record.
	RegInfo = queue.RegInfo
	// Repository is a queue repository (advanced/direct use).
	Repository = queue.Repository
	// Txn is a transaction.
	Txn = txn.Txn
	// Metrics is the cross-layer metrics registry (see Node.Metrics).
	Metrics = obs.Registry
	// MetricsSnapshot is a point-in-time copy of a registry.
	MetricsSnapshot = obs.Snapshot
	// Tracer records request span trees (see Node.Tracer).
	Tracer = trace.Tracer
	// TraceID identifies one request's span tree.
	TraceID = trace.ID

	// Clerk is the client-side runtime library (fig. 5).
	Clerk = core.Clerk
	// ClerkConfig configures a Clerk.
	ClerkConfig = core.ClerkConfig
	// ConnectInfo is what Connect returns for resynchronisation.
	ConnectInfo = core.ConnectInfo
	// Request is a server handler's view of a request.
	Request = core.Request
	// Reply is a client's view of a reply.
	Reply = core.Reply
	// ReqCtx is the handler execution context.
	ReqCtx = core.ReqCtx
	// Handler processes one request.
	Handler = core.Handler
	// Server is the fig. 5 server loop.
	Server = core.Server
	// ServerConfig configures a Server.
	ServerConfig = core.ServerConfig
	// Stage is one transaction of a multi-transaction request.
	Stage = core.Stage
	// StageHandler runs one stage.
	StageHandler = core.StageHandler
	// Pipeline is a fig. 6 multi-transaction pipeline.
	Pipeline = core.Pipeline
	// PipelineConfig configures a Pipeline.
	PipelineConfig = core.PipelineConfig
	// Saga is a compensatable pipeline (Section 7).
	Saga = core.Saga
	// SagaConfig configures a Saga.
	SagaConfig = core.SagaConfig
	// SagaStep pairs an action with its compensation.
	SagaStep = core.SagaStep
	// CancelOutcome classifies a cancellation.
	CancelOutcome = core.CancelOutcome
	// InteractiveSession drives a fig. 7 interactive request.
	InteractiveSession = core.InteractiveSession
	// ConvHandler runs one round of a pseudo-conversation.
	ConvHandler = core.ConvHandler
	// ConvServerConfig configures a conversational server.
	ConvServerConfig = core.ConvServerConfig
	// SequentialClient is the fig. 2 fault-tolerant client program.
	SequentialClient = core.SequentialClient
	// QMConn is the clerk's connection to a queue manager.
	QMConn = core.QMConn
	// AppLocks is the persistent application-lock table (Section 6).
	AppLocks = core.AppLocks
	// ThreadedClerk is the Section 5 in-client concurrency extension.
	ThreadedClerk = core.ThreadedClerk
	// BranchReq is one branch of a Section 6 fork/join.
	BranchReq = core.BranchReq
	// StreamClerk is the Section 11 streaming extension (Mercury-style
	// pipelined requests and replies).
	StreamClerk = core.StreamClerk
	// ResilientClerk is a self-healing clerk: it masks transport faults
	// by re-running the fig. 2 client recovery automatically.
	ResilientClerk = core.ResilientClerk
	// ResilientConfig configures a ResilientClerk.
	ResilientConfig = core.ResilientConfig
	// BackoffPolicy shapes a ResilientClerk's retry delays.
	BackoffPolicy = core.BackoffPolicy
	// HedgePolicy configures hedged Transceives on a ResilientClerk:
	// after a trigger delay derived from an online latency quantile, the
	// in-flight request is cloned to alternate queues, the first committed
	// reply wins, and losers are canceled (DESIGN.md §11).
	HedgePolicy = core.HedgePolicy
	// QuantileSnapshot is a point-in-time view of a streaming latency
	// digest (e.g. the one behind a hedged clerk's trigger; see
	// ResilientClerk.HedgeSnapshot).
	QuantileSnapshot = obs.QuantileSnapshot

	// Logger is the structured, leveled event logger every layer of a
	// node reports through (see NodeConfig.Log).
	Logger = rlog.Logger
	// LogLevel orders log severities (rlog.LevelDebug … rlog.LevelOff).
	LogLevel = rlog.Level
	// LogEvent is one structured log record.
	LogEvent = rlog.Event
	// LogField is one structured key/value log annotation (built with
	// LogStr / LogInt / LogErr / …).
	LogField = rlog.Field
	// MetricsHistoryReport is a windowed delta/rate view over the node's
	// metrics-history ring (see Node.History).
	MetricsHistoryReport = obs.HistoryReport
	// FlightDump is a black-box flight-recorder document (see
	// Node.Flight).
	FlightDump = flight.Dump
)

// Re-exported constructors and constants.
var (
	// NewClerk returns a disconnected clerk.
	NewClerk = core.NewClerk
	// NewServer returns a server loop.
	NewServer = core.NewServer
	// NewPipeline creates a multi-transaction pipeline.
	NewPipeline = core.NewPipeline
	// NewSaga creates a compensatable pipeline.
	NewSaga = core.NewSaga
	// ServeConversational runs a pseudo-conversational server.
	ServeConversational = core.ServeConversational
	// Failf builds an application-level failure (committed error reply).
	Failf = core.Failf
	// NewRequestElement builds a request element for direct (batch)
	// enqueueing without a clerk.
	NewRequestElement = core.NewRequestElement
	// NewThreadedClerk returns a clerk with n independent threads.
	NewThreadedClerk = core.NewThreadedClerk
	// NewResilientClerk returns a self-healing clerk.
	NewResilientClerk = core.NewResilientClerk
	// NewStreamClerk returns a windowed streaming clerk (Section 11).
	NewStreamClerk = core.NewStreamClerk
	// Fork fans a request out to parallel branches with a trigger-based
	// join (Section 6).
	Fork = core.Fork
	// CollectJoin drains a fork's branch replies.
	CollectJoin = core.CollectJoin
	// DestroyJoin tears down a fork's staging queue.
	DestroyJoin = core.DestroyJoin
	// NewLogger builds a structured logger (see NodeConfig.Log). Sinks
	// come from NewJSONLogSink / NewTextLogSink.
	NewLogger = rlog.New
	// NewJSONLogSink renders events as one JSON object per line.
	NewJSONLogSink = rlog.NewJSONSink
	// NewTextLogSink renders events as human-readable lines.
	NewTextLogSink = rlog.NewTextSink
	// ParseLogLevel parses "debug"/"info"/"warn"/"error"/"off".
	ParseLogLevel = rlog.ParseLevel
	// NewMetrics builds a fresh metrics registry (see NodeConfig.Metrics).
	NewMetrics = obs.NewRegistry
	// Log field constructors.
	LogStr    = rlog.Str
	LogInt    = rlog.Int
	LogInt64  = rlog.Int64
	LogUint64 = rlog.Uint64
	LogBool   = rlog.Bool
	LogDur    = rlog.Dur
	LogErr    = rlog.Err
)

// Log levels for NewLogger.
const (
	LogDebug = rlog.LevelDebug
	LogInfo  = rlog.LevelInfo
	LogWarn  = rlog.LevelWarn
	LogError = rlog.LevelError
	LogOff   = rlog.LevelOff
)

// Re-exported error sentinels, matched with errors.Is.
var (
	// ErrQueueExists reports creation of a queue that already exists.
	ErrQueueExists = queue.ErrQueueExists
	// ErrEmpty reports a dequeue from an empty queue.
	ErrEmpty = queue.ErrEmpty
	// ErrNoQueue reports an operation on a queue that does not exist.
	ErrNoQueue = queue.ErrNoQueue
)

// Cancellation outcomes.
const (
	NotCancelable            = core.NotCancelable
	CanceledImmediately      = core.CanceledImmediately
	CanceledWithCompensation = core.CanceledWithCompensation
	StatusOK                 = core.StatusOK
	StatusError              = core.StatusError
	StatusCanceled           = core.StatusCanceled
)

// NodeConfig configures a back-end node.
type NodeConfig struct {
	// Dir is the node's durable state directory.
	Dir string
	// Name is the node's (and its repository's) unique name; empty derives
	// it from Dir.
	Name string
	// ListenAddr, when non-empty, serves the queue manager over RPC
	// ("127.0.0.1:0" picks a port; see Node.Addr).
	ListenAddr string
	// AdminAddr, when non-empty, serves the admin HTTP endpoint: GET
	// /metrics returns the node's metrics registry as JSON (see
	// Node.AdminAddr for the bound address).
	AdminAddr string
	// Metrics, when non-nil, is the registry every layer of the node
	// (WAL, locks, transactions, queues, RPC server) records into; nil
	// creates a private one, retrievable via Node.Metrics.
	Metrics *obs.Registry
	// NoFsync disables physical fsync (tests and benchmarks only).
	NoFsync bool
	// SnapshotEvery checkpoints after that many logged operations; zero
	// disables automatic checkpoints.
	SnapshotEvery int
	// GroupCommit batches concurrent commits' fsyncs (durability
	// unchanged) and pipelines commits: locks release once the commit
	// record is staged with the log writer, and only the client
	// acknowledgement waits for the batched fsync.
	GroupCommit bool
	// GroupCommitMaxDelay is the writer's deliberate batching window:
	// after a batch's first record it waits up to this long for more
	// committers before forcing. Zero flushes as soon as the writer is
	// free (natural batching only).
	GroupCommitMaxDelay time.Duration
	// GroupCommitMaxBatchBytes forces a flush once this many bytes are
	// staged (zero = 1 MiB).
	GroupCommitMaxBatchBytes int
	// GroupCommitMaxWaiters cuts the delay window short once this many
	// committers are blocked on the force (zero = no waiter cutoff).
	GroupCommitMaxWaiters int
	// Resolver resolves in-doubt distributed transactions found at
	// recovery; nil uses only the node's own coordinator (presumed abort
	// for foreign ones).
	Resolver tpc.Resolver
	// Trace enables request tracing: every layer records spans into a
	// bounded in-memory ring, queryable via the admin endpoint
	// (GET /trace/{id}, GET /traces?slowest=N), qmctl, or Node.Tracer.
	Trace bool
	// TraceSpans caps the trace ring (spans retained across all traces);
	// zero uses 4096. Oldest spans are overwritten first.
	TraceSpans int
	// SlowTrace, when > 0 (and Trace is on), emits the full span tree of
	// any request slower than this as one JSON line to TraceSink.
	SlowTrace time.Duration
	// TraceSink receives slow-trace lines; nil uses os.Stderr.
	TraceSink io.Writer
	// MaxInflight caps concurrently executing RPC requests node-wide;
	// excess requests are shed with a retryable busy response. Zero means
	// unlimited.
	MaxInflight int
	// MaxInflightPerConn caps concurrently executing requests per client
	// connection. Zero means unlimited.
	MaxInflightPerConn int
	// Log, when non-nil, receives structured events from every layer of
	// the node (WAL, queue repository, RPC server, coordinator). The node
	// additionally attaches a bounded in-memory ring to it so recent
	// events are queryable via GET /logs, qmctl logs, and flight dumps.
	// Nil disables logging entirely (the disabled path is zero-alloc).
	Log *rlog.Logger
	// LogEvents caps the in-memory ring of recent events attached to Log;
	// zero uses 1024.
	LogEvents int
	// WALFS, when non-nil, supplies the WAL's segment files; fault-
	// injection tests interpose internal/chaos/walfault here. Nil uses
	// the real filesystem.
	WALFS wal.VFS
	// MetricsHistory, when > 0, samples the metrics registry on this
	// interval into a bounded time-series ring, enabling GET
	// /metrics/history?window=…, qmctl top's rate view, and the
	// rate-based health probes. Zero disables history.
	MetricsHistory time.Duration
	// MetricsHistorySamples caps the history ring; zero keeps 120
	// samples (two minutes at the default 1s interval).
	MetricsHistorySamples int
	// Flight enables the black-box flight recorder: recent events,
	// metric history, and slow-trace summaries are dumped to FlightPath
	// on SIGQUIT and queryable live via GET /debug/flight.
	Flight bool
	// FlightPath is the dump destination; empty uses
	// Dir/flight-<pid>.json.
	FlightPath string
	// FlightEvents caps the events section of a dump; zero uses 256.
	FlightEvents int
	// Replication, when non-nil, makes the node a replicating primary:
	// its WAL and snapshots ship to a standby (StartStandby) and, in sync
	// mode, no commit is acknowledged before the standby has the bytes —
	// zero acked loss across failover. See DESIGN.md §12.
	Replication *ReplicationConfig
}

// Node is a running back-end node.
type Node struct {
	repo      *queue.Repository
	coord     *tpc.Coordinator
	tracer    *trace.Tracer // nil when tracing is off
	rpcSrv    *rpc.Server
	addr      string
	adminSrv  *http.Server
	adminLis  net.Listener
	adminAddr string

	logger  *rlog.Logger     // nil when logging is off
	ring    *rlog.Ring       // recent-events ring (nil when logging is off)
	history *obs.History     // nil when MetricsHistory is zero
	flight  *flight.Recorder // nil when Flight is off

	sender     *replica.Sender    // nil unless Replication was configured
	replCfg    *ReplicationConfig // nil unless Replication was configured
	replCancel context.CancelFunc // stops the background shipper
	replDone   chan struct{}      // closed when the shipper exits
}

// StartNode opens (recovering if necessary) a node. In-doubt distributed
// transactions found during recovery are resolved through the configured
// resolver with presumed abort.
func StartNode(cfg NodeConfig) (*Node, error) {
	if cfg.Name == "" {
		cfg.Name = filepath.Base(cfg.Dir)
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	var tracer *trace.Tracer
	if cfg.Trace {
		capacity := cfg.TraceSpans
		if capacity <= 0 {
			capacity = 4096
		}
		tracer = trace.New(capacity, reg)
		tracer.SetEnabled(true)
		if cfg.SlowTrace > 0 {
			sink := cfg.TraceSink
			if sink == nil {
				sink = os.Stderr
			}
			tracer.SetSlowThreshold(cfg.SlowTrace, sink)
		}
	}
	logger := cfg.Log
	var ring *rlog.Ring
	if logger != nil {
		capacity := cfg.LogEvents
		if capacity <= 0 {
			capacity = 1024
		}
		ring = rlog.NewRing(capacity)
		logger.AddSink(ring)
	}
	// The replication sender exists before the repository opens so the
	// WAL's commit gate is in force from the very first flush — no
	// un-gated durability window.
	var sender *replica.Sender
	var walGate wal.Gate
	if cfg.Replication != nil {
		var err error
		sender, err = startReplication(cfg.Replication, cfg.Dir, reg, logger)
		if err != nil {
			return nil, err
		}
		sender.SetLeaseTTL(cfg.Replication.LeaseTTL)
		walGate = sender.Gate
	}
	repo, inDoubt, err := queue.Open(cfg.Dir, queue.Options{
		Name:          cfg.Name,
		NoFsync:       cfg.NoFsync,
		SnapshotEvery: cfg.SnapshotEvery,
		GroupCommit:   cfg.GroupCommit,
		Metrics:       reg,
		Tracer:        tracer,
		Logger:        logger,
		WALFS:         cfg.WALFS,
		WALGate:       walGate,

		GroupCommitMaxDelay:      cfg.GroupCommitMaxDelay,
		GroupCommitMaxBatchBytes: cfg.GroupCommitMaxBatchBytes,
		GroupCommitMaxWaiters:    cfg.GroupCommitMaxWaiters,
	})
	if err != nil {
		return nil, fmt.Errorf("rrq: open node %s: %w", cfg.Name, err)
	}
	coord, err := tpc.OpenCoordinator(cfg.Name+".coord", filepath.Join(cfg.Dir, "coord"), cfg.NoFsync)
	if err != nil {
		repo.Close()
		return nil, fmt.Errorf("rrq: open coordinator: %w", err)
	}
	resolver := cfg.Resolver
	if resolver == nil {
		reg := tpc.NewRegistry()
		reg.Add(coord.Name(), coord)
		resolver = reg
	}
	tpc.ResolveInDoubt(inDoubt, resolver)
	repo.RecheckTriggers()
	coord.SetTracer(tracer)
	coord.SetLogger(logger)

	n := &Node{repo: repo, coord: coord, tracer: tracer, logger: logger, ring: ring}
	if sender != nil {
		n.sender = sender
		n.replCfg = cfg.Replication
		n.replDone = make(chan struct{})
		interval := cfg.Replication.ShipInterval
		if interval <= 0 {
			interval = 50 * time.Millisecond
		}
		ctx, cancel := context.WithCancel(context.Background())
		n.replCancel = cancel
		go func() {
			defer close(n.replDone)
			sender.Run(ctx, interval)
		}()
	}
	if cfg.MetricsHistory > 0 {
		keep := cfg.MetricsHistorySamples
		if keep <= 0 {
			keep = 120
		}
		n.history = obs.NewHistory(reg, keep, cfg.MetricsHistory)
		n.history.Start()
	}
	if cfg.Flight {
		path := cfg.FlightPath
		if path == "" {
			path = filepath.Join(cfg.Dir, fmt.Sprintf("flight-%d.json", os.Getpid()))
		}
		maxEvents := cfg.FlightEvents
		if maxEvents <= 0 {
			maxEvents = 256
		}
		n.flight = flight.New(flight.Config{
			Node:      cfg.Name,
			Events:    ring,
			MaxEvents: maxEvents,
			History:   n.history,
			Tracer:    tracer,
			Registry:  reg,
			Path:      path,
			Logger:    logger,
		})
		n.flight.ArmSignal()
	}
	if cfg.ListenAddr != "" {
		n.rpcSrv = rpc.NewServerWith(reg)
		n.rpcSrv.SetLimits(rpc.Limits{MaxInflight: cfg.MaxInflight, MaxPerConn: cfg.MaxInflightPerConn})
		n.rpcSrv.SetLogger(logger)
		svc := qservice.New(repo, n.rpcSrv)
		svc.SetAux(qservice.AuxProviders{
			Health: func() ([]byte, error) { return json.Marshal(n.Health()) },
			Logs:   n.logsJSON,
			Flight: n.flightJSON,
			Repl:   n.replJSON,
		})
		if n.sender != nil {
			// The lease endpoint lives on the primary's own port: the
			// standby pings the node it replicates from.
			replica.RegisterSender(n.rpcSrv, n.sender)
		}
		addr, err := n.rpcSrv.ListenAndServe(cfg.ListenAddr)
		if err != nil {
			n.stopObs()
			repo.Close()
			coord.Close()
			return nil, fmt.Errorf("rrq: listen: %w", err)
		}
		n.addr = addr
	}
	if cfg.AdminAddr != "" {
		if err := n.startAdmin(cfg.AdminAddr); err != nil {
			n.Close()
			return nil, fmt.Errorf("rrq: admin listen: %w", err)
		}
	}
	if logger != nil {
		logger.Named("node").Info("node started",
			rlog.Str("name", cfg.Name),
			rlog.Str("addr", n.addr),
			rlog.Str("admin", n.adminAddr),
			rlog.Bool("flight", n.flight != nil),
			rlog.Bool("history", n.history != nil))
	}
	return n, nil
}

// stopObs tears down the observability plane: the history sampler's
// goroutine and the flight recorder's signal handler.
func (n *Node) stopObs() {
	if n.history != nil {
		n.history.Stop()
	}
	if n.flight != nil {
		n.flight.Disarm()
	}
}

// logsJSON renders up to max recent ring events (all when max <= 0) as a
// JSON array, oldest first.
func (n *Node) logsJSON(max int) ([]byte, error) {
	if n.ring == nil {
		return nil, fmt.Errorf("%w: structured logging not enabled on this node", queue.ErrNotFound)
	}
	return json.Marshal(n.ring.Recent(max))
}

// flightJSON builds a live flight snapshot (no goroutine stacks — those
// are for post-mortem dumps) as indented JSON.
func (n *Node) flightJSON() ([]byte, error) {
	if n.flight == nil {
		return nil, fmt.Errorf("%w: flight recorder not enabled on this node", queue.ErrNotFound)
	}
	d := n.flight.Snapshot("request", false)
	return json.MarshalIndent(d, "", "  ")
}

// Flight returns the node's flight recorder, or nil when
// NodeConfig.Flight was off.
func (n *Node) Flight() *flight.Recorder { return n.flight }

// startAdmin serves the admin HTTP endpoint:
//
//	GET /metrics            the metrics registry as deterministic JSON
//	GET /metrics/history    windowed counter deltas/rates (?window=30s)
//	GET /healthz            liveness: 200 unless a hard component failed
//	GET /readyz             readiness: like /healthz, plus 503 while warming
//	GET /logs               recent structured events (?max=N)
//	GET /debug/flight       live flight-recorder snapshot
//	GET /trace/{id}         one request's assembled span tree as JSON
//	GET /traces?slowest=N   summaries of the N slowest retained traces
//	GET /debug/pprof/...    net/http/pprof profiles
//
// Non-GET methods get 405. The server carries read timeouts so a stuck
// peer cannot pin a connection; the write timeout is generous because
// pprof profile captures stream for their ?seconds duration.
func (n *Node) startAdmin(addr string) error {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		j, err := n.repo.Metrics().MarshalJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(j)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/metrics/history", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if n.history == nil {
			http.Error(w, "metrics history not enabled (NodeConfig.MetricsHistory)", http.StatusNotFound)
			return
		}
		window := 30 * time.Second
		if s := req.URL.Query().Get("window"); s != "" {
			d, err := time.ParseDuration(s)
			if err != nil || d <= 0 {
				http.Error(w, "bad window parameter (want e.g. 30s)", http.StatusBadRequest)
				return
			}
			window = d
		}
		rep, ok := n.history.Report(window)
		if !ok {
			http.Error(w, "history warming up (need two samples)", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		j, err := json.Marshal(rep)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(j)
		w.Write([]byte("\n"))
	})
	health := func(ready bool) http.HandlerFunc {
		return func(w http.ResponseWriter, req *http.Request) {
			if req.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			h := n.Health()
			code := http.StatusOK
			if h.Status == HealthFail {
				code = http.StatusServiceUnavailable
			}
			// Readiness is stricter: a degraded node serves traffic but
			// should be rotated out of new-connection balancing.
			if ready && h.Status != HealthOK {
				code = http.StatusServiceUnavailable
			}
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(code)
			j, _ := json.Marshal(h)
			w.Write(j)
			w.Write([]byte("\n"))
		}
	}
	mux.HandleFunc("/healthz", health(false))
	mux.HandleFunc("/readyz", health(true))
	mux.HandleFunc("/logs", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		max := 100
		if s := req.URL.Query().Get("max"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "bad max parameter", http.StatusBadRequest)
				return
			}
			max = v
		}
		j, err := n.logsJSON(max)
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(j)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/flight", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		j, err := n.flightJSON()
		if err != nil {
			http.Error(w, err.Error(), http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(j)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/trace/", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		idStr := strings.TrimPrefix(req.URL.Path, "/trace/")
		id, err := trace.ParseID(idStr)
		if err != nil {
			http.Error(w, "bad trace id: "+err.Error(), http.StatusBadRequest)
			return
		}
		nodes := n.repo.Tracer().Trace(id)
		if len(nodes) == 0 {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		j, err := json.Marshal(nodes)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(j)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		nSlow := 10
		if s := req.URL.Query().Get("slowest"); s != "" {
			v, err := strconv.Atoi(s)
			if err != nil || v <= 0 {
				http.Error(w, "bad slowest parameter", http.StatusBadRequest)
				return
			}
			nSlow = v
		}
		sums := n.repo.Tracer().Slowest(nSlow)
		if sums == nil {
			sums = []trace.Summary{}
		}
		w.Header().Set("Content-Type", "application/json")
		j, err := json.Marshal(sums)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Write(j)
		w.Write([]byte("\n"))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	n.adminSrv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       10 * time.Second,
		WriteTimeout:      2 * time.Minute,
		IdleTimeout:       2 * time.Minute,
	}
	n.adminLis = lis
	n.adminAddr = lis.Addr().String()
	go n.adminSrv.Serve(lis)
	return nil
}

// Repo exposes the node's repository for servers (which are co-located
// with their queue manager, per the paper's system model).
func (n *Node) Repo() *queue.Repository { return n.repo }

// Coordinator exposes the node's two-phase-commit coordinator.
func (n *Node) Coordinator() *tpc.Coordinator { return n.coord }

// Addr returns the RPC address ("" if not listening).
func (n *Node) Addr() string { return n.addr }

// AdminAddr returns the admin HTTP address ("" if not serving).
func (n *Node) AdminAddr() string { return n.adminAddr }

// Metrics returns the registry all of the node's layers record into.
func (n *Node) Metrics() *obs.Registry { return n.repo.Metrics() }

// Tracer returns the node's tracer, or nil when tracing is off. A nil
// tracer is safe to call: every method no-ops.
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// LocalConn returns an in-process clerk connection to this node.
func (n *Node) LocalConn() QMConn { return &core.LocalConn{Repo: n.repo} }

// CreateQueue creates a queue on the node.
func (n *Node) CreateQueue(cfg QueueConfig) error { return n.repo.CreateQueue(cfg) }

// Begin starts a local transaction on the node.
func (n *Node) Begin() *Txn { return n.repo.Begin() }

// TransferElement moves the next element of fromQueue on this node into
// toQueue on another node as one distributed transaction (two-phase
// commit); ErrEmpty when there is nothing to move. RunForwarder loops
// this.
func (n *Node) TransferElement(ctx context.Context, fromQueue string, dst *Node, toQueue string) error {
	return n.transferOne(ctx, fromQueue, dst, toQueue, false)
}

// RunForwarder drains fromQueue on this node into toQueue on dst, each
// move one distributed transaction, until ctx ends. This is the paper's
// availability pattern (Section 1): "if a client enqueues its requests to
// a local queue, and periodically moves its local requests to the remote
// input queue of a server process, then the server appears to provide a
// reliable service to the client even if the client and server nodes are
// frequently partitioned". Transfer failures (the destination down, a
// partition) back off and retry; nothing is ever lost or duplicated — the
// element either moved atomically or stayed.
func (n *Node) RunForwarder(ctx context.Context, fromQueue string, dst *Node, toQueue string) {
	for ctx.Err() == nil {
		err := n.transferOne(ctx, fromQueue, dst, toQueue, true)
		if err == nil {
			continue
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(10 * time.Millisecond):
		}
	}
}

func (n *Node) transferOne(ctx context.Context, fromQueue string, dst *Node, toQueue string, wait bool) error {
	tSrc := n.repo.Begin()
	el, err := n.repo.Dequeue(ctx, tSrc, fromQueue, "", queue.DequeueOpts{Wait: wait})
	if err != nil {
		tSrc.Abort()
		return err
	}
	tDst := dst.repo.Begin()
	moved := el
	moved.EID = 0 // the element keeps its trace id across nodes
	if ref := el.TraceRef(); ref.Valid() {
		tSrc.SetTrace(ref)
		tDst.SetTrace(ref)
	}
	if _, err := dst.repo.Enqueue(tDst, toQueue, moved, "", nil); err != nil {
		tSrc.Abort()
		tDst.Abort()
		return err
	}
	g := n.coord.Begin()
	g.SetTrace(el.TraceRef())
	g.Enlist(&tpc.LocalBranch{Label: n.repo.Name(), Txn: tSrc})
	g.Enlist(&tpc.LocalBranch{Label: dst.repo.Name(), Txn: tDst})
	return g.Commit()
}

// stopReplication halts the background shipper (idempotent).
func (n *Node) stopReplication() {
	if n.replCancel != nil {
		n.replCancel()
		<-n.replDone
	}
}

// Crash simulates a node crash (tests and experiments): all volatile state
// is abandoned; StartNode on the same directory recovers.
func (n *Node) Crash() {
	n.stopReplication()
	n.stopObs()
	n.repo.Crash()
	if n.rpcSrv != nil {
		n.rpcSrv.Close()
	}
	n.closeAdmin()
	n.coord.Close()
}

func (n *Node) closeAdmin() {
	if n.adminSrv != nil {
		n.adminSrv.Close()
		n.adminSrv = nil
	}
}

// Close checkpoints and shuts the node down.
func (n *Node) Close() error {
	n.stopReplication()
	n.stopObs()
	if n.rpcSrv != nil {
		n.rpcSrv.Close()
	}
	n.closeAdmin()
	err := n.repo.Close()
	if cerr := n.coord.Close(); err == nil {
		err = cerr
	}
	if n.logger != nil {
		n.logger.Named("node").Info("node closed", rlog.Str("name", n.repo.Name()), rlog.Err(err))
	}
	return err
}

// Dial returns a clerk connection to a remote node.
func Dial(addr string) QMConn {
	return qservice.NewClient(rpc.NewClient(addr, nil))
}
