package rrq

import (
	"fmt"
	"time"

	"repro/internal/obs"
	"repro/internal/replica"
)

// Health statuses, ordered by severity. A node's overall status is the
// worst of its components'.
const (
	HealthOK       = "ok"
	HealthDegraded = "degraded"
	HealthFail     = "fail"
)

// HealthComponent is one probed subsystem.
type HealthComponent struct {
	Name   string `json:"name"`
	Status string `json:"status"`
	Detail string `json:"detail,omitempty"`
}

// Health is the node health document served by GET /healthz and
// qm.health.
type Health struct {
	Status     string            `json:"status"`
	Node       string            `json:"node"`
	At         time.Time         `json:"at"`
	Components []HealthComponent `json:"components"`
}

func worse(a, b string) string {
	rank := func(s string) int {
		switch s {
		case HealthFail:
			return 2
		case HealthDegraded:
			return 1
		default:
			return 0
		}
	}
	if rank(b) > rank(a) {
		return b
	}
	return a
}

// Health evaluates the node's live health. Hard failures (the WAL
// poisoned or the repository closed) are "fail" — /healthz answers 503
// and an orchestrator should restart the process. Soft signals computed
// over the metrics-history window (admission shedding, circuit-breaker
// opens, a collapsed ring fast path) are "degraded": the node still
// serves, but an operator should look.
func (n *Node) Health() Health {
	h := Health{Status: HealthOK, Node: n.repo.Name(), At: time.Now()}
	add := func(name, status, detail string) {
		h.Components = append(h.Components, HealthComponent{Name: name, Status: status, Detail: detail})
		h.Status = worse(h.Status, status)
	}

	// WAL writable and group-commit writer alive: the durability plane.
	if err := n.repo.WALErr(); err != nil {
		add("wal", HealthFail, err.Error())
	} else {
		add("wal", HealthOK, "")
	}

	// Repository open (closed/crashed nodes fail readiness).
	if n.repo.Closed() {
		add("repository", HealthFail, "repository closed")
	} else {
		add("repository", HealthOK, "")
	}

	// Replication: a fenced or ship-poisoned sender is a hard failure
	// (the node must stop acking — an orchestrator should retire it); a
	// degraded-to-async sender or one lagging beyond the semi-sync budget
	// still serves, but the zero-loss guarantee is suspended.
	if n.sender != nil {
		st := n.sender.Status()
		switch {
		case st.Err != "":
			add("replication", HealthFail, st.Err)
		case st.Degraded:
			add("replication", HealthDegraded,
				fmt.Sprintf("degraded to async after ship failures (%d total)", st.ShipFailures))
		case n.replCfg != nil && n.replCfg.Mode != ReplAsync && overLagBudget(st, n.replCfg):
			add("replication", HealthDegraded,
				fmt.Sprintf("standby lag %d records / %d bytes over budget", st.LagRecords, st.LagBytes))
		default:
			add("replication", HealthOK, "")
		}
	}

	// Rate-based probes need a history window; without one they report
	// ok with a note rather than guessing from all-time counters.
	if n.history == nil {
		add("load", HealthOK, "metrics history disabled; rate probes unavailable")
		return h
	}
	rep, ok := n.history.Report(time.Minute)
	if !ok {
		add("load", HealthOK, "warming up")
		return h
	}

	// Admission shedding: requests bounced by MaxInflight in the window.
	if shed := rep.Counters["server.shed"]; shed > 0 {
		add("admission", HealthDegraded,
			fmt.Sprintf("%d requests shed (%.1f/s)", shed, rep.Rates["server.shed"]))
	} else {
		add("admission", HealthOK, "")
	}

	// Circuit breakers: client-side breaker opens in the window mean a
	// downstream this node dials is failing.
	if opens := rep.Counters["rpc.client.breaker_opens"]; opens > 0 {
		add("breakers", HealthDegraded, fmt.Sprintf("%d breaker opens", opens))
	} else {
		add("breakers", HealthOK, "")
	}

	// Ring fast path: a high fallback fraction means volatile queues are
	// taking the locked slow path (sealed rings, contention artifacts).
	hits := rep.Counters["queue.fastpath_hits"]
	falls := rep.Counters["queue.fastpath_fallbacks"]
	if total := hits + falls; total >= 100 && falls*2 > total {
		add("fastpath", HealthDegraded,
			fmt.Sprintf("ring fallback fraction %.0f%% (%d/%d)",
				100*float64(falls)/float64(total), falls, total))
	} else {
		add("fastpath", HealthOK, "")
	}
	return h
}

// overLagBudget reports whether the sender's lag exceeds the configured
// semi-sync budget (with the replica-package defaults applied).
func overLagBudget(st replica.Status, cfg *ReplicationConfig) bool {
	maxRecs, maxBytes := cfg.MaxLagRecords, cfg.MaxLagBytes
	if maxRecs == 0 {
		maxRecs = 256
	}
	if maxBytes == 0 {
		maxBytes = 1 << 20
	}
	return st.LagRecords > maxRecs || st.LagBytes > maxBytes
}

// History returns the node's metrics-history sampler, or nil when
// NodeConfig.MetricsHistory was zero.
func (n *Node) History() *obs.History { return n.history }
