package rrq

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"
)

// TestHedgedClerkMetricsSurface pins the observability contract of
// hedging: a hedged clerk that records into its node's registry surfaces
// the full hedge ledger and the trigger's latency-digest gauges through
// the admin endpoint's GET /metrics (the same snapshot qmctl's stats and
// hedge subcommands render), and the ledger satisfies its conservation
// invariant.
func TestHedgedClerkMetricsSurface(t *testing.T) {
	n, err := StartNode(NodeConfig{Dir: t.TempDir(), NoFsync: true, AdminAddr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { n.Close() })
	for _, q := range []string{"req", "req.b"} {
		if err := n.CreateQueue(QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	// The primary queue's server straggles past the hedge trigger; the
	// alternate answers promptly, so the one request hedges and the clone
	// wins.
	slow, err := NewServer(ServerConfig{Repo: n.Repo(), Queue: "req", Handler: func(rc *ReqCtx) ([]byte, error) {
		time.Sleep(400 * time.Millisecond)
		return []byte("slow"), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := NewServer(ServerConfig{Repo: n.Repo(), Queue: "req.b", Handler: func(rc *ReqCtx) ([]byte, error) {
		return []byte("fast"), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	go slow.Serve(ctx)
	go fast.Serve(ctx)

	rc := NewResilientClerk(n.LocalConn(), ResilientConfig{
		Clerk:   ClerkConfig{ClientID: "hm", RequestQueue: "req", ReceiveWait: 2 * time.Second},
		Metrics: n.Metrics(),
		Seed:    1,
		Hedge: &HedgePolicy{
			Queues:     []string{"req.b"},
			MinTrigger: 25 * time.Millisecond,
			DrainWait:  250 * time.Millisecond,
		},
	})
	if _, err := rc.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := rc.Transceive(ctx, "rid-surface", []byte("x"), nil, nil); err != nil {
		t.Fatal(err)
	}
	rc.WaitHedgeDrains()

	if snap, ok := rc.HedgeSnapshot(); !ok || snap.Count != 1 {
		t.Fatalf("HedgeSnapshot = %+v ok=%v, want one observation", snap, ok)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", n.AdminAddr()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters map[string]uint64 `json:"counters"`
		Gauges   map[string]int64  `json:"gauges"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	c := snap.Counters
	if c["clerk.hedged_transceives"] != 1 {
		t.Fatalf("clerk.hedged_transceives = %d, want 1 (counters: %v)", c["clerk.hedged_transceives"], c)
	}
	if got := c["clerk.hedge_primary_wins"] + c["clerk.hedge_wins"] + c["clerk.hedge_timeouts"] + c["clerk.hedge_errors"]; got != c["clerk.hedged_transceives"] {
		t.Fatalf("ledger violation: outcomes = %d, hedged transceives = %d", got, c["clerk.hedged_transceives"])
	}
	if c["clerk.hedges"] != 1 || c["clerk.hedge_wins"] != 1 {
		t.Fatalf("hedges = %d, hedge_wins = %d, want 1 and 1", c["clerk.hedges"], c["clerk.hedge_wins"])
	}
	if snap.Gauges["clerk.hedge_trigger_ns"] <= 0 {
		t.Fatalf("clerk.hedge_trigger_ns gauge = %d, want > 0", snap.Gauges["clerk.hedge_trigger_ns"])
	}
	if _, ok := snap.Gauges["clerk.hedge_lat_p99_ns"]; !ok {
		t.Fatal("clerk.hedge_lat_p99_ns gauge missing from /metrics")
	}
}
