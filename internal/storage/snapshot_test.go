package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func newTestSnapshotter(t *testing.T) *Snapshotter {
	t.Helper()
	s, err := NewSnapshotter(t.TempDir(), true)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestWriteLoadRoundTrip(t *testing.T) {
	s := newTestSnapshotter(t)
	data := []byte("queue database image")
	if err := s.Write(42, data); err != nil {
		t.Fatal(err)
	}
	got, lsn, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 42 || !bytes.Equal(got, data) {
		t.Fatalf("Load = (%q, %d)", got, lsn)
	}
}

func TestLoadEmpty(t *testing.T) {
	s := newTestSnapshotter(t)
	_, _, err := s.Load()
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestNewestWins(t *testing.T) {
	s := newTestSnapshotter(t)
	for i := uint64(1); i <= 5; i++ {
		if err := s.Write(i*10, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got, lsn, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 50 || got[0] != 5 {
		t.Fatalf("Load = (%v, %d), want newest", got, lsn)
	}
}

func TestCorruptNewestFallsBack(t *testing.T) {
	s := newTestSnapshotter(t)
	if err := s.Write(10, []byte("older")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(20, []byte("newest")); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest snapshot's payload.
	path := filepath.Join(s.dir, snapName(20))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[17] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	got, lsn, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 10 || string(got) != "older" {
		t.Fatalf("Load = (%q, %d), want fallback to older", got, lsn)
	}
}

func TestTruncatedNewestFallsBack(t *testing.T) {
	s := newTestSnapshotter(t)
	if err := s.Write(10, []byte("older")); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(20, bytes.Repeat([]byte("n"), 100)); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.dir, snapName(20))
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	got, lsn, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 10 || string(got) != "older" {
		t.Fatalf("Load = (%q, %d)", got, lsn)
	}
}

func TestGCRetainsOne(t *testing.T) {
	s := newTestSnapshotter(t)
	for i := uint64(1); i <= 6; i++ {
		if err := s.Write(i, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, e := range entries {
		if _, ok := parseSnapName(e.Name()); ok {
			count++
		}
	}
	if count != 2 { // newest + 1 retained
		t.Fatalf("retained %d snapshots, want 2", count)
	}
}

func TestTempFilesCleaned(t *testing.T) {
	s := newTestSnapshotter(t)
	// Simulate a crash mid-write: a stray temp file.
	stray := filepath.Join(s.dir, snapName(99)+tmpSuffix)
	if err := os.WriteFile(stray, []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Write(100, []byte("real")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Fatalf("stray temp file survived: %v", err)
	}
	// Temp files must never be loaded.
	got, lsn, err := s.Load()
	if err != nil || lsn != 100 || string(got) != "real" {
		t.Fatalf("Load = (%q, %d, %v)", got, lsn, err)
	}
}

func TestForeignFileIgnored(t *testing.T) {
	s := newTestSnapshotter(t)
	if err := os.WriteFile(filepath.Join(s.dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(s.dir, snapName(7)), []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Load(); !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

func TestEmptyData(t *testing.T) {
	s := newTestSnapshotter(t)
	if err := s.Write(3, nil); err != nil {
		t.Fatal(err)
	}
	got, lsn, err := s.Load()
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 3 || len(got) != 0 {
		t.Fatalf("Load = (%v, %d)", got, lsn)
	}
}

func TestQuickRoundTrip(t *testing.T) {
	s := newTestSnapshotter(t)
	lsn := uint64(0)
	f := func(data []byte) bool {
		lsn++
		if err := s.Write(lsn, data); err != nil {
			return false
		}
		got, gotLSN, err := s.Load()
		if err != nil {
			return false
		}
		return gotLSN == lsn && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickArbitraryCutIsNeverTrusted(t *testing.T) {
	// Property: a snapshot file truncated at any point either loads the
	// full original data or is rejected — never partial data.
	s := newTestSnapshotter(t)
	data := bytes.Repeat([]byte("abcdefgh"), 20)
	if err := s.Write(5, data); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(s.dir, snapName(5))
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(raw); cut++ {
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, _, err := s.Load()
		if err == nil {
			t.Fatalf("cut %d: truncated snapshot loaded: %d bytes", cut, len(got))
		}
	}
}
