// Package storage provides crash-safe snapshot files for the main-memory
// queue database.
//
// A snapshot is an atomic, checksummed image of a repository's committed
// state, tagged with the WAL LSN it covers. Recovery loads the newest valid
// snapshot and replays the log from its LSN. Snapshots are written with the
// classic write-temp, fsync, rename dance so a crash mid-write can never
// leave a half-written snapshot that recovery would trust: a corrupt or
// partial file fails its checksum and is skipped in favour of the previous
// one.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

const (
	snapPrefix = "snap-"
	snapSuffix = ".db"
	tmpSuffix  = ".tmp"
	// snapMagic identifies a snapshot file; it guards against loading a
	// foreign file that happens to match the name pattern.
	snapMagic = uint32(0x52515348) // "RQSH"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrNoSnapshot reports that no valid snapshot exists in the directory.
var ErrNoSnapshot = errors.New("storage: no snapshot")

// Snapshotter manages the snapshot files of one repository directory.
type Snapshotter struct {
	dir string
	// keep is how many old snapshots to retain beyond the newest (for
	// paranoia and debugging). Default 1.
	keep int
	// noFsync disables fsync for tests and volatile configurations.
	noFsync bool
}

// NewSnapshotter returns a Snapshotter rooted at dir, creating it if needed.
func NewSnapshotter(dir string, noFsync bool) (*Snapshotter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("storage: mkdir %s: %w", dir, err)
	}
	return &Snapshotter{dir: dir, keep: 1, noFsync: noFsync}, nil
}

func snapName(lsn uint64) string {
	return fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix)
}

func parseSnapName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix)
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return v, true
}

// Write persists data as the snapshot covering WAL position lsn. On return
// the snapshot is durable and will be preferred by Load. Older snapshots
// beyond the retention count are removed.
func (s *Snapshotter) Write(lsn uint64, data []byte) error {
	// File layout: magic u32 | lsn u64 | len u32 | data | crc u32 (over all
	// preceding bytes).
	buf := make([]byte, 0, 16+len(data)+4)
	buf = binary.LittleEndian.AppendUint32(buf, snapMagic)
	buf = binary.LittleEndian.AppendUint64(buf, lsn)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
	buf = append(buf, data...)
	crc := crc32.Checksum(buf, castagnoli)
	buf = binary.LittleEndian.AppendUint32(buf, crc)

	final := filepath.Join(s.dir, snapName(lsn))
	tmp := final + tmpSuffix
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("storage: create snapshot: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("storage: write snapshot: %w", err)
	}
	if !s.noFsync {
		if err := f.Sync(); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("storage: sync snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: close snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("storage: publish snapshot: %w", err)
	}
	if !s.noFsync {
		// fsync the directory so the rename itself is durable.
		if d, err := os.Open(s.dir); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	s.gc(lsn)
	return nil
}

// gc removes snapshots older than the newest, keeping s.keep extras, and any
// leftover temp files.
func (s *Snapshotter) gc(newest uint64) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return
	}
	var lsns []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, tmpSuffix) {
			os.Remove(filepath.Join(s.dir, name))
			continue
		}
		if lsn, ok := parseSnapName(name); ok && lsn < newest {
			lsns = append(lsns, lsn)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for i, lsn := range lsns {
		if i >= s.keep {
			os.Remove(filepath.Join(s.dir, snapName(lsn)))
		}
	}
}

// Load returns the newest valid snapshot's data and its covered LSN. A
// corrupt newest snapshot is skipped (and reported via the cleanup return)
// in favour of an older valid one. If none exists, ErrNoSnapshot is
// returned.
func (s *Snapshotter) Load() (data []byte, lsn uint64, err error) {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0, fmt.Errorf("storage: read dir: %w", err)
	}
	var lsns []uint64
	for _, e := range entries {
		if l, ok := parseSnapName(e.Name()); ok {
			lsns = append(lsns, l)
		}
	}
	sort.Slice(lsns, func(i, j int) bool { return lsns[i] > lsns[j] })
	for _, l := range lsns {
		data, err := readSnapshot(filepath.Join(s.dir, snapName(l)), l)
		if err == nil {
			return data, l, nil
		}
	}
	return nil, 0, ErrNoSnapshot
}

func readSnapshot(path string, wantLSN uint64) ([]byte, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 16+4 {
		return nil, errors.New("storage: snapshot too short")
	}
	if binary.LittleEndian.Uint32(raw) != snapMagic {
		return nil, errors.New("storage: bad magic")
	}
	lsn := binary.LittleEndian.Uint64(raw[4:])
	if lsn != wantLSN {
		return nil, errors.New("storage: lsn mismatch with filename")
	}
	n := binary.LittleEndian.Uint32(raw[12:])
	if int(n) != len(raw)-16-4 {
		return nil, errors.New("storage: length mismatch")
	}
	body := raw[:len(raw)-4]
	crc := binary.LittleEndian.Uint32(raw[len(raw)-4:])
	if crc32.Checksum(body, castagnoli) != crc {
		return nil, errors.New("storage: checksum mismatch")
	}
	out := make([]byte, n)
	copy(out, raw[16:16+n])
	return out, nil
}
