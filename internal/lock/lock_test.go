package lock

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSharedCompatible(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, "r", Shared) || !m.Holds(2, "r", Shared) {
		t.Fatal("shared holders not recorded")
	}
}

func TestExclusiveExcludes(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.TryAcquire(2, "r", Shared); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("TryAcquire = %v, want ErrWouldBlock", err)
	}
	if err := m.TryAcquire(2, "r", Exclusive); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("TryAcquire = %v, want ErrWouldBlock", err)
	}
	m.ReleaseAll(1)
	if err := m.TryAcquire(2, "r", Exclusive); err != nil {
		t.Fatalf("after release: %v", err)
	}
}

func TestReentrant(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	// X holder asking for S is a no-op and must not downgrade.
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, "r", Exclusive) {
		t.Fatal("mode downgraded by re-acquire")
	}
}

func TestUpgradeSoleHolder(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, "r", Exclusive) {
		t.Fatal("upgrade not applied")
	}
}

func TestUpgradeWaitsForOtherReaders(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctx, 1, "r", Exclusive) }()
	select {
	case err := <-done:
		t.Fatalf("upgrade granted with another reader: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !m.Holds(1, "r", Exclusive) {
		t.Fatal("upgrade lost")
	}
}

func TestBlockingGrantFIFO(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	var order []uint64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range []uint64{2, 3, 4} {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := m.Acquire(ctx, id, "r", Exclusive); err != nil {
				t.Errorf("acquire %d: %v", id, err)
				return
			}
			mu.Lock()
			order = append(order, id)
			mu.Unlock()
			time.Sleep(5 * time.Millisecond)
			m.ReleaseAll(id)
		}(id)
		time.Sleep(15 * time.Millisecond) // enforce queue order
	}
	m.ReleaseAll(1)
	wg.Wait()
	if len(order) != 3 || order[0] != 2 || order[1] != 3 || order[2] != 4 {
		t.Fatalf("grant order = %v, want FIFO [2 3 4]", order)
	}
}

func TestContextCancelWhileWaiting(t *testing.T) {
	m := NewManager()
	bg := context.Background()
	if err := m.Acquire(bg, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 30*time.Millisecond)
	defer cancel()
	err := m.Acquire(ctx, 2, "r", Exclusive)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	// The canceled waiter must not receive the lock later.
	m.ReleaseAll(1)
	if m.Holds(2, "r", Shared) {
		t.Fatal("canceled waiter was granted")
	}
	if err := m.TryAcquire(3, "r", Exclusive); err != nil {
		t.Fatalf("lock leaked to canceled waiter: %v", err)
	}
}

func TestDeadlockDetected(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "a", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "b", Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Acquire(ctx, 1, "b", Exclusive) }() // 1 waits for 2
	time.Sleep(20 * time.Millisecond)
	err := m.Acquire(ctx, 2, "a", Exclusive) // 2 waits for 1: cycle
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	// Victim (2) releases; 1 proceeds.
	m.ReleaseAll(2)
	if err := <-done; err != nil {
		t.Fatalf("survivor: %v", err)
	}
	if st := m.Stats(); st.Deadlocks != 1 {
		t.Fatalf("deadlocks = %d, want 1", st.Deadlocks)
	}
}

func TestThreeWayDeadlock(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	for i := uint64(1); i <= 3; i++ {
		if err := m.Acquire(ctx, i, string(rune('a'+i-1)), Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	errs := make(chan error, 3)
	go func() { errs <- m.Acquire(ctx, 1, "b", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	go func() { errs <- m.Acquire(ctx, 2, "c", Exclusive) }()
	time.Sleep(20 * time.Millisecond)
	// Closing the cycle: 3 -> a held by 1.
	err := m.Acquire(ctx, 3, "a", Exclusive)
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
	m.ReleaseAll(3)
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
	m.ReleaseAll(2)
	m.ReleaseAll(1)
	// Drain remaining.
	if err := <-errs; err != nil {
		t.Fatal(err)
	}
}

func TestSharedWaitersGrantedTogether(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	var granted atomic.Int32
	var wg sync.WaitGroup
	for id := uint64(2); id <= 5; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			if err := m.Acquire(ctx, id, "r", Shared); err == nil {
				granted.Add(1)
			}
		}(id)
	}
	time.Sleep(30 * time.Millisecond)
	m.ReleaseAll(1)
	wg.Wait()
	if granted.Load() != 4 {
		t.Fatalf("granted %d shared waiters, want 4", granted.Load())
	}
}

func TestTransfer(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "acct/7", Exclusive); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 1, "acct/9", Shared); err != nil {
		t.Fatal(err)
	}
	m.Transfer(1, 2)
	if m.Holds(1, "acct/7", Shared) {
		t.Fatal("source still holds after transfer")
	}
	if !m.Holds(2, "acct/7", Exclusive) || !m.Holds(2, "acct/9", Shared) {
		t.Fatal("destination missing transferred locks")
	}
	// The lock was never free in between: a third party must still block.
	if err := m.TryAcquire(3, "acct/7", Shared); !errors.Is(err, ErrWouldBlock) {
		t.Fatalf("lock observable free during transfer: %v", err)
	}
	m.ReleaseAll(2)
	if err := m.TryAcquire(3, "acct/7", Shared); err != nil {
		t.Fatal(err)
	}
}

func TestTransferMergesModes(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Acquire(ctx, 2, "r", Shared); err != nil {
		t.Fatal(err)
	}
	m.Transfer(1, 2)
	if !m.Holds(2, "r", Shared) {
		t.Fatal("merge lost lock")
	}
	m.ReleaseAll(2)
	if err := m.TryAcquire(3, "r", Exclusive); err != nil {
		t.Fatalf("lock leaked after merge release: %v", err)
	}
}

func TestReleaseNotHeld(t *testing.T) {
	m := NewManager()
	if err := m.Release(1, "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v, want ErrNotHeld", err)
	}
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Shared); err != nil {
		t.Fatal(err)
	}
	if err := m.Release(2, "r"); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("err = %v, want ErrNotHeld", err)
	}
}

func TestHeldBy(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	for _, r := range []string{"a", "b", "c"} {
		if err := m.Acquire(ctx, 1, r, Exclusive); err != nil {
			t.Fatal(err)
		}
	}
	if got := m.HeldBy(1); len(got) != 3 {
		t.Fatalf("HeldBy = %v", got)
	}
	m.ReleaseAll(1)
	if got := m.HeldBy(1); len(got) != 0 {
		t.Fatalf("HeldBy after ReleaseAll = %v", got)
	}
}

func TestStatsWaitTime(t *testing.T) {
	m := NewManager()
	ctx := context.Background()
	if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := m.Acquire(ctx, 2, "r", Exclusive); err != nil {
			t.Error(err)
		}
	}()
	time.Sleep(25 * time.Millisecond)
	m.ReleaseAll(1)
	<-done
	st := m.Stats()
	if st.Waits != 1 {
		t.Fatalf("waits = %d, want 1", st.Waits)
	}
	if st.WaitNanos < uint64(10*time.Millisecond) {
		t.Fatalf("wait nanos = %d, implausibly small", st.WaitNanos)
	}
}

// TestNoPhantomExclusion is the core mutual-exclusion property under a
// randomized workload: at no instant do two owners hold conflicting locks
// on the same resource.
func TestNoPhantomExclusion(t *testing.T) {
	m := NewManager()
	const resources = 4
	const owners = 8
	var holders [resources]atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for id := uint64(1); id <= owners; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			ctx := context.Background()
			for i := 0; i < 200; i++ {
				r := rng.Intn(resources)
				res := string(rune('a' + r))
				if err := m.Acquire(ctx, id, res, Exclusive); err != nil {
					if errors.Is(err, ErrDeadlock) {
						m.ReleaseAll(id)
						continue
					}
					t.Errorf("acquire: %v", err)
					return
				}
				if holders[r].Add(1) != 1 {
					violations.Add(1)
				}
				holders[r].Add(-1)
				m.ReleaseAll(id)
			}
		}(id)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d mutual-exclusion violations", v)
	}
}

// TestRandomMixedModes drives shared and exclusive acquires concurrently
// and checks the S/X invariant: a resource has either one X holder or any
// number of S holders, never both.
func TestRandomMixedModes(t *testing.T) {
	m := NewManager()
	type state struct {
		mu sync.Mutex
		s  int
		x  int
	}
	var st state
	var violations atomic.Int64
	var wg sync.WaitGroup
	for id := uint64(1); id <= 10; id++ {
		wg.Add(1)
		go func(id uint64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id) * 77))
			ctx := context.Background()
			for i := 0; i < 150; i++ {
				mode := Shared
				if rng.Intn(3) == 0 {
					mode = Exclusive
				}
				if err := m.Acquire(ctx, id, "res", mode); err != nil {
					if errors.Is(err, ErrDeadlock) {
						m.ReleaseAll(id)
						continue
					}
					t.Errorf("acquire: %v", err)
					return
				}
				st.mu.Lock()
				if mode == Shared {
					st.s++
					if st.x > 0 {
						violations.Add(1)
					}
				} else {
					st.x++
					if st.x > 1 || st.s > 0 {
						violations.Add(1)
					}
				}
				st.mu.Unlock()
				st.mu.Lock()
				if mode == Shared {
					st.s--
				} else {
					st.x--
				}
				st.mu.Unlock()
				m.ReleaseAll(id)
			}
		}(id)
	}
	wg.Wait()
	if v := violations.Load(); v != 0 {
		t.Fatalf("%d S/X invariant violations", v)
	}
}
