// Package lock implements the lock manager used by the transaction manager
// and the queue manager.
//
// It provides strict two-phase locking with shared and exclusive modes,
// FIFO wait queues, wait-for-graph deadlock detection, context-based
// timeouts, non-blocking TryAcquire (the basis of the paper's skip-locked
// queue scans, Section 10), and lock transfer between owners (the paper's
// lock inheritance across the transactions of a multi-transaction request,
// Section 6).
//
// Owners are identified by opaque uint64 ids — in practice transaction ids.
// Resources are strings, namespaced by the caller (e.g. "q/<queue>/<eid>"
// or "kv/<table>/<key>").
package lock

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/obs"
)

// Mode is a lock mode.
type Mode int8

const (
	// Shared permits concurrent holders that are all Shared.
	Shared Mode = iota
	// Exclusive permits exactly one holder.
	Exclusive
)

func (m Mode) String() string {
	switch m {
	case Shared:
		return "S"
	case Exclusive:
		return "X"
	default:
		return fmt.Sprintf("Mode(%d)", int8(m))
	}
}

// compatible reports whether a new lock of mode b may be granted alongside
// an existing holder of mode a.
func compatible(a, b Mode) bool { return a == Shared && b == Shared }

// Errors returned by Acquire.
var (
	// ErrDeadlock reports that granting the request would create a cycle in
	// the wait-for graph; the requester is chosen as the victim.
	ErrDeadlock = errors.New("lock: deadlock victim")
	// ErrWouldBlock is returned by TryAcquire when the lock is unavailable.
	ErrWouldBlock = errors.New("lock: would block")
	// ErrNotHeld reports a release or transfer of a lock the owner does not
	// hold.
	ErrNotHeld = errors.New("lock: not held")
)

// Stats are cumulative counters for contention experiments.
type Stats struct {
	Acquires  uint64
	Waits     uint64 // acquires that had to block
	Deadlocks uint64
	Timeouts  uint64 // waits abandoned because the context ended
	WaitNanos uint64 // total time spent blocked
}

// Manager is a lock manager. The zero value is not usable; call NewManager.
type Manager struct {
	mu    sync.Mutex
	locks map[string]*lockState
	held  map[uint64]map[string]Mode

	// Instruments (lock.acquires, lock.waits, lock.deadlocks,
	// lock.timeouts, lock.wait_ns), resolved once at construction.
	acquires  *obs.Counter
	waits     *obs.Counter
	deadlocks *obs.Counter
	timeouts  *obs.Counter
	waitNanos *obs.Histogram
}

type lockState struct {
	holders map[uint64]Mode
	queue   []*waiter
}

type waiter struct {
	owner uint64
	mode  Mode
	ready chan error // buffered(1); receives nil on grant or an error
}

// NewManager returns an empty lock manager with a private metrics
// registry.
func NewManager() *Manager { return NewManagerWith(nil) }

// NewManagerWith returns an empty lock manager whose instruments live in
// reg (nil gives it a private registry).
func NewManagerWith(reg *obs.Registry) *Manager {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Manager{
		locks:     make(map[string]*lockState),
		held:      make(map[uint64]map[string]Mode),
		acquires:  reg.Counter("lock.acquires"),
		waits:     reg.Counter("lock.waits"),
		deadlocks: reg.Counter("lock.deadlocks"),
		timeouts:  reg.Counter("lock.timeouts"),
		waitNanos: reg.Histogram("lock.wait_ns"),
	}
}

// Stats returns a snapshot of the cumulative counters.
func (m *Manager) Stats() Stats {
	return Stats{
		Acquires:  m.acquires.Value(),
		Waits:     m.waits.Value(),
		Deadlocks: m.deadlocks.Value(),
		Timeouts:  m.timeouts.Value(),
		WaitNanos: m.waitNanos.Sum(),
	}
}

// Acquire obtains resource in the given mode for owner, blocking until the
// lock is granted, the context is done, or the request is chosen as a
// deadlock victim. Re-acquiring a held lock is a no-op if the held mode is
// at least as strong; a Shared-to-Exclusive upgrade is granted immediately
// when owner is the sole holder and otherwise waits.
func (m *Manager) Acquire(ctx context.Context, owner uint64, resource string, mode Mode) error {
	m.acquires.Inc()
	m.mu.Lock()
	ls := m.lockState(resource)

	if cur, ok := ls.holders[owner]; ok {
		if cur == Exclusive || mode == Shared {
			m.mu.Unlock()
			return nil // already strong enough
		}
		// Upgrade request.
		if len(ls.holders) == 1 {
			ls.holders[owner] = Exclusive
			m.held[owner][resource] = Exclusive
			m.mu.Unlock()
			return nil
		}
		// Fall through to wait; the grant path understands upgrades.
	}

	if m.grantableLocked(ls, owner, mode) && len(ls.queue) == 0 {
		m.grantLocked(ls, owner, resource, mode)
		m.mu.Unlock()
		return nil
	}

	// Must wait. Check for deadlock before enqueueing.
	w := &waiter{owner: owner, mode: mode, ready: make(chan error, 1)}
	ls.queue = append(ls.queue, w)
	if m.wouldDeadlockLocked(owner) {
		m.removeWaiterLocked(ls, w)
		m.deadlocks.Inc()
		m.mu.Unlock()
		return fmt.Errorf("%w: owner %d on %s", ErrDeadlock, owner, resource)
	}
	m.waits.Inc()
	m.mu.Unlock()

	start := time.Now()
	select {
	case err := <-w.ready:
		m.waitNanos.Observe(time.Since(start).Nanoseconds())
		return err
	case <-ctx.Done():
		m.waitNanos.Observe(time.Since(start).Nanoseconds())
		m.mu.Lock()
		// We may have been granted between ctx firing and taking the lock.
		select {
		case err := <-w.ready:
			m.mu.Unlock()
			return err
		default:
		}
		m.removeWaiterLocked(ls, w)
		m.promoteLocked(ls, resource)
		m.timeouts.Inc()
		m.mu.Unlock()
		return ctx.Err()
	}
}

// TryAcquire obtains the lock only if it is grantable immediately; it never
// queues. Waiters ahead of the request do not block a TryAcquire — the
// skip-locked scan wants "is it free right now", not fairness.
func (m *Manager) TryAcquire(owner uint64, resource string, mode Mode) error {
	m.acquires.Inc()
	m.mu.Lock()
	defer m.mu.Unlock()
	ls := m.lockState(resource)
	if cur, ok := ls.holders[owner]; ok {
		if cur == Exclusive || mode == Shared {
			return nil
		}
		if len(ls.holders) == 1 {
			ls.holders[owner] = Exclusive
			m.held[owner][resource] = Exclusive
			return nil
		}
		return ErrWouldBlock
	}
	if m.grantableLocked(ls, owner, mode) {
		m.grantLocked(ls, owner, resource, mode)
		return nil
	}
	return ErrWouldBlock
}

// Release releases one resource held by owner and wakes eligible waiters.
func (m *Manager) Release(owner uint64, resource string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.releaseLocked(owner, resource)
}

// ReleaseAll releases every lock held by owner (end of the two-phase
// protocol) and wakes eligible waiters.
func (m *Manager) ReleaseAll(owner uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for resource := range m.held[owner] {
		_ = m.releaseLocked(owner, resource)
	}
	delete(m.held, owner)
}

// Transfer moves every lock held by from to owner to (the paper's lock
// inheritance: "each transaction's database locks are inherited by the next
// transaction in the sequence", Section 6). Waiters are unaffected: the
// physical locks remain held throughout.
func (m *Manager) Transfer(from, to uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for resource, mode := range m.held[from] {
		ls := m.locks[resource]
		delete(ls.holders, from)
		// The destination may already hold it; keep the stronger mode.
		if cur, ok := ls.holders[to]; !ok || mode == Exclusive && cur == Shared {
			ls.holders[to] = mode
		}
		if m.held[to] == nil {
			m.held[to] = make(map[string]Mode)
		}
		if cur, ok := m.held[to][resource]; !ok || mode == Exclusive && cur == Shared {
			m.held[to][resource] = mode
		}
	}
	delete(m.held, from)
}

// Holds reports whether owner holds resource in at least the given mode.
func (m *Manager) Holds(owner uint64, resource string, mode Mode) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	cur, ok := m.held[owner][resource]
	return ok && (cur == Exclusive || mode == Shared)
}

// HeldBy returns the resources currently held by owner.
func (m *Manager) HeldBy(owner uint64) []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]string, 0, len(m.held[owner]))
	for r := range m.held[owner] {
		out = append(out, r)
	}
	return out
}

// --- internals (all require m.mu) ---

func (m *Manager) lockState(resource string) *lockState {
	ls, ok := m.locks[resource]
	if !ok {
		ls = &lockState{holders: make(map[uint64]Mode)}
		m.locks[resource] = ls
	}
	return ls
}

func (m *Manager) grantableLocked(ls *lockState, owner uint64, mode Mode) bool {
	for h, hm := range ls.holders {
		if h == owner {
			continue
		}
		if !compatible(hm, mode) {
			return false
		}
	}
	return true
}

func (m *Manager) grantLocked(ls *lockState, owner uint64, resource string, mode Mode) {
	if cur, ok := ls.holders[owner]; ok && cur == Exclusive {
		mode = Exclusive
	}
	ls.holders[owner] = mode
	if m.held[owner] == nil {
		m.held[owner] = make(map[string]Mode)
	}
	m.held[owner][resource] = mode
}

func (m *Manager) releaseLocked(owner uint64, resource string) error {
	ls, ok := m.locks[resource]
	if !ok {
		return fmt.Errorf("%w: %s by %d", ErrNotHeld, resource, owner)
	}
	if _, ok := ls.holders[owner]; !ok {
		return fmt.Errorf("%w: %s by %d", ErrNotHeld, resource, owner)
	}
	delete(ls.holders, owner)
	if held := m.held[owner]; held != nil {
		delete(held, resource)
		if len(held) == 0 {
			delete(m.held, owner)
		}
	}
	m.promoteLocked(ls, resource)
	if len(ls.holders) == 0 && len(ls.queue) == 0 {
		delete(m.locks, resource)
	}
	return nil
}

// promoteLocked grants queued waiters in FIFO order while compatible.
func (m *Manager) promoteLocked(ls *lockState, resource string) {
	for len(ls.queue) > 0 {
		w := ls.queue[0]
		// An upgrade waiter is grantable when it is the sole holder.
		if cur, ok := ls.holders[w.owner]; ok && w.mode == Exclusive && cur == Shared {
			if len(ls.holders) != 1 {
				return
			}
			ls.holders[w.owner] = Exclusive
			m.held[w.owner][resource] = Exclusive
			ls.queue = ls.queue[1:]
			w.ready <- nil
			continue
		}
		if !m.grantableLocked(ls, w.owner, w.mode) {
			return
		}
		m.grantLocked(ls, w.owner, resource, w.mode)
		ls.queue = ls.queue[1:]
		w.ready <- nil
	}
}

func (m *Manager) removeWaiterLocked(ls *lockState, w *waiter) {
	for i, q := range ls.queue {
		if q == w {
			ls.queue = append(ls.queue[:i], ls.queue[i+1:]...)
			return
		}
	}
}

// wouldDeadlockLocked runs a DFS over the wait-for graph starting at the
// requesting owner, returning true if the requester can reach itself.
// Edges: each waiter waits for every incompatible holder of its resource
// and for every incompatible waiter queued ahead of it.
func (m *Manager) wouldDeadlockLocked(start uint64) bool {
	// Build adjacency lazily during the walk.
	visited := make(map[uint64]bool)
	var stack []uint64
	pushSuccessors := func(owner uint64) {
		for resource, ls := range m.locks {
			_ = resource
			for i, w := range ls.queue {
				if w.owner != owner {
					continue
				}
				for h, hm := range ls.holders {
					if h != owner && !compatible(hm, w.mode) {
						stack = append(stack, h)
					}
				}
				for j := 0; j < i; j++ {
					ahead := ls.queue[j]
					if ahead.owner != owner && !compatible(ahead.mode, w.mode) {
						stack = append(stack, ahead.owner)
					}
				}
			}
		}
	}
	pushSuccessors(start)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == start {
			return true
		}
		if visited[n] {
			continue
		}
		visited[n] = true
		pushSuccessors(n)
	}
	return false
}
