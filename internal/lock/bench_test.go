package lock

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"
)

func BenchmarkAcquireReleaseUncontended(b *testing.B) {
	m := NewManager()
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Acquire(ctx, 1, "r", Exclusive); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(1)
	}
}

func BenchmarkTryAcquireFree(b *testing.B) {
	m := NewManager()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.TryAcquire(1, "r", Exclusive); err != nil {
			b.Fatal(err)
		}
		m.ReleaseAll(1)
	}
}

func BenchmarkTryAcquireBlocked(b *testing.B) {
	m := NewManager()
	if err := m.Acquire(context.Background(), 1, "r", Exclusive); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.TryAcquire(2, "r", Exclusive); err == nil {
			b.Fatal("acquired held lock")
		}
	}
}

func BenchmarkContendedSharedParallel(b *testing.B) {
	m := NewManager()
	ctx := context.Background()
	var owner atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		id := owner.Add(1)
		for pb.Next() {
			if err := m.Acquire(ctx, id, "hot", Shared); err != nil {
				b.Error(err)
				return
			}
			m.ReleaseAll(id)
		}
	})
}

func BenchmarkDisjointExclusiveParallel(b *testing.B) {
	m := NewManager()
	ctx := context.Background()
	var owner atomic.Uint64
	b.RunParallel(func(pb *testing.PB) {
		id := owner.Add(1)
		res := fmt.Sprintf("r%d", id)
		for pb.Next() {
			if err := m.Acquire(ctx, id, res, Exclusive); err != nil {
				b.Error(err)
				return
			}
			m.ReleaseAll(id)
		}
	})
}

func BenchmarkTransfer(b *testing.B) {
	m := NewManager()
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if err := m.Acquire(ctx, 1, fmt.Sprintf("res-%d", i), Exclusive); err != nil {
			b.Fatal(err)
		}
	}
	from, to := uint64(1), uint64(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Transfer(from, to)
		from, to = to, from
	}
}
