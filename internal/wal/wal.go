// Package wal implements a segmented, checksummed write-ahead log.
//
// The log is the durability backbone of the queue manager. Per the paper's
// implementation notes (Section 10), queue repositories are managed as
// main-memory databases: all reads are served from memory, and the log plus
// periodic snapshots provide recoverability. The log therefore only ever
// needs to be read at recovery time, sequentially.
//
// Records are opaque to this package; the transaction manager defines their
// contents. Each record is framed as
//
//	lsn     uint64  little-endian
//	length  uint32  little-endian, payload length
//	type    uint8
//	payload [length]byte
//	crc     uint32  little-endian, CRC-32C over the preceding fields
//
// LSNs are assigned densely starting at 1. The log is split into segment
// files named wal-<first-lsn>.seg so that TruncateBefore can drop whole
// files. A torn write at the tail of the last segment (from a crash mid-
// append) is detected by the CRC and treated as the end of the log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/log"
)

// LSN is a log sequence number. LSNs start at 1 and increase by one per
// appended record. Zero is never a valid LSN; it is used as "before the
// first record".
type LSN uint64

// Record is a single log entry.
type Record struct {
	LSN     LSN
	Type    uint8
	Payload []byte
}

// SyncPolicy controls when appends are forced to stable storage.
type SyncPolicy int

const (
	// SyncAlways fsyncs on every Append. This is the default and the only
	// policy under which a returned Append implies durability.
	SyncAlways SyncPolicy = iota
	// SyncManual leaves fsync to explicit Sync calls. Appends are buffered
	// by the OS; a crash may lose the unsynced suffix (never a prefix).
	SyncManual
	// SyncNever performs no fsync at all; for volatile or benchmark use.
	SyncNever
	// SyncGroup implements group commit: Append does not fsync; a
	// committer calls SyncTo(lsn) and one physical fsync satisfies every
	// committer whose records it covers. Under concurrent commit load
	// this amortizes the dominant logging cost.
	SyncGroup
)

// Options configure Open.
type Options struct {
	// SegmentSize is the byte size at which a new segment file is started.
	// Zero means the default (4 MiB).
	SegmentSize int64
	// Sync selects the sync policy. The zero value is SyncAlways.
	Sync SyncPolicy
	// NoFsync disables the physical fsync syscall while keeping SyncAlways
	// bookkeeping. Tests use it to keep the durability accounting without
	// paying disk latency; correctness tests that crash processes must not
	// set it.
	NoFsync bool
	// Metrics receives the log's instruments (wal.appends, wal.append_bytes,
	// wal.fsyncs, wal.fsync_ns, wal.group_commit_batch, wal.group_size,
	// wal.group_wait_ns, wal.group_flushes, wal.rotations). Nil gives the
	// log a private registry, so instrumentation is always live.
	Metrics *obs.Registry
	// GroupCommit tunes the log-writer goroutine used under SyncGroup; see
	// GroupCommitConfig. Ignored under other policies.
	GroupCommit GroupCommitConfig
	// FS, when non-nil, supplies segment files for the write path. Tests
	// use it to interpose crash-fault layers (internal/chaos/walfault);
	// nil means the real filesystem.
	FS VFS
	// Logger receives lifecycle events (open, torn-tail truncation,
	// rotation, writer failure). Nil disables logging.
	Logger *log.Logger
	// Gate, when non-nil, is invoked after a flush reaches local stable
	// storage and before the covered durable-LSN promises are released
	// (syncedLSN published, committers woken). Synchronous replication
	// hangs here: the gate ships the flushed bytes to a standby and does
	// not return until the standby acknowledges them (or a lag budget
	// allows release). A gate error poisons the log exactly like a failed
	// fsync — the promise of already-assigned LSNs cannot be kept.
	Gate Gate
}

// Gate blocks the release of durable-LSN promises after a local flush.
// upTo is the highest LSN the flush covered. When the flushed bytes are
// known to be a single contiguous append, seg is the segment file path,
// off the offset the bytes landed at, and batch the raw frame bytes —
// the ship unit, handed over without re-reading the file. When the
// flush was not one contiguous append (a rotation inside the batch, a
// direct-mode sync covering earlier appends), batch is nil and the gate
// must diff the log directory itself. The gate runs outside the log
// mutex on the group-commit path and must not call back into the Log.
type Gate func(upTo LSN, seg string, off int64, batch []byte) error

const (
	defaultSegmentSize = 4 << 20
	headerSize         = 8 + 4 + 1 // lsn + length + type
	trailerSize        = 4         // crc
	segPrefix          = "wal-"
	segSuffix          = ".seg"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the log.
var (
	// ErrClosed reports use of a closed log.
	ErrClosed = errors.New("wal: log closed")
	// ErrCorrupt reports a checksum or framing failure before the tail.
	ErrCorrupt = errors.New("wal: corrupt record")
)

// Log is an append-only segmented write-ahead log. It is safe for
// concurrent use.
type Log struct {
	dir  string
	opts Options
	fs   VFS
	gc   GroupCommitConfig

	mu       sync.Mutex
	closed   bool
	active   File
	activeSz int64
	firstLSN LSN // first LSN of the active segment
	nextLSN  LSN
	dirty    bool // unsynced appends exist
	segments []segmentInfo

	// Group-commit state: syncedLSN is the highest LSN known durable;
	// syncing marks a leader's fsync in flight (performed outside mu so
	// appends keep flowing); syncCond wakes followers.
	syncedLSN LSN
	syncing   bool
	syncCond  *sync.Cond

	// Log-writer state (SyncGroup only). Appends stage frames under mu;
	// the writer goroutine (or a committer on the inline-force path)
	// drains them. Whoever sets flushing owns active, activeSz, and
	// firstLSN exclusively until it clears the flag — no other path
	// touches them under SyncGroup between Open and Close. writerErr is
	// sticky: once a flush fails, the promise of already-assigned LSNs
	// cannot be kept and the log refuses further appends.
	// Staged frames live contiguously in staged (one encoded frame after
	// another); stagedEnds[i] is the end offset of frame i and stagedFirst
	// the LSN of frame 0. The writer swaps the buffers with spare/spareEnds
	// when it takes a batch, so steady state stages and flushes with zero
	// per-record allocation and writes each batch with one syscall.
	staged      []byte
	stagedEnds  []int
	stagedFirst LSN
	spare       []byte
	spareEnds   []int
	writerCond  *sync.Cond // wakes the writer (work or close)
	syncWaiters int        // committers parked in SyncTo
	flushing    bool       // a batch flush is in flight (file owned by the flusher)
	writerErr   error
	closing     bool
	writerDone  chan struct{}

	// testSyncDelay simulates fsync latency when NoFsync is set, so tests
	// can observe group-commit batching deterministically.
	testSyncDelay time.Duration

	logger *log.Logger
	gate   Gate // see Options.Gate; nil when unreplicated

	// Instruments, resolved once at Open (obs hot-path contract). appends
	// and syncs also back the Stats API.
	mAppends      *obs.Counter
	mAppendBytes  *obs.Counter
	mFsyncs       *obs.Counter
	mFsyncNanos   *obs.Histogram
	mGroupBatch   *obs.Histogram
	mGroupSize    *obs.Histogram
	mGroupWait    *obs.Histogram
	mGroupFlushes *obs.Counter
	mRotations    *obs.Counter
}

type segmentInfo struct {
	first LSN
	path  string
}

// Open opens or creates a log in dir. Existing segments are scanned to find
// the next LSN; a torn final record is truncated away.
func Open(dir string, opts Options) (*Log, error) {
	if opts.SegmentSize <= 0 {
		opts.SegmentSize = defaultSegmentSize
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	l := &Log{dir: dir, opts: opts, gc: opts.GroupCommit, nextLSN: 1}
	l.logger = opts.Logger.Named("wal")
	l.gate = opts.Gate
	l.fs = opts.FS
	if l.fs == nil {
		l.fs = osVFS{}
	}
	l.mAppends = reg.Counter("wal.appends")
	l.mAppendBytes = reg.Counter("wal.append_bytes")
	l.mFsyncs = reg.Counter("wal.fsyncs")
	l.mFsyncNanos = reg.Histogram("wal.fsync_ns")
	l.mGroupBatch = reg.Histogram("wal.group_commit_batch")
	l.mGroupSize = reg.Histogram("wal.group_size")
	l.mGroupWait = reg.Histogram("wal.group_wait_ns")
	l.mGroupFlushes = reg.Counter("wal.group_flushes")
	l.mRotations = reg.Counter("wal.rotations")
	l.syncCond = sync.NewCond(&l.mu)
	l.writerCond = sync.NewCond(&l.mu)
	if err := l.loadSegments(); err != nil {
		return nil, err
	}
	if err := l.openActive(); err != nil {
		return nil, err
	}
	l.syncedLSN = l.nextLSN - 1 // everything recovered is on disk
	if opts.Sync == SyncGroup {
		l.writerDone = make(chan struct{})
		go l.writerLoop()
	}
	l.logger.Info("log opened",
		log.Str("dir", dir),
		log.Int("segments", len(l.segments)),
		log.Uint64("next_lsn", uint64(l.nextLSN)),
		log.Bool("group_commit", opts.Sync == SyncGroup))
	return l, nil
}

// Err reports the log's health: nil while the log can accept appends,
// the sticky writer error once an append or fsync has failed (the log is
// poisoned — a torn frame or dropped dirty pages mean durability
// promises can no longer be kept), or ErrClosed after Close. This is the
// probe behind /healthz's "wal" component.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.writerErr != nil {
		return l.writerErr
	}
	if l.closed || l.closing {
		return ErrClosed
	}
	return nil
}

// Pipelined reports whether the log runs a group-commit writer: Append
// returns a durable-LSN promise rather than a durable record, and the
// commit protocol may release locks before SyncTo returns.
func (l *Log) Pipelined() bool { return l.opts.Sync == SyncGroup }

func segName(first LSN) string {
	return fmt.Sprintf("%s%016x%s", segPrefix, uint64(first), segSuffix)
}

func parseSegName(name string) (LSN, bool) {
	if !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
		return 0, false
	}
	hexPart := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
	v, err := strconv.ParseUint(hexPart, 16, 64)
	if err != nil {
		return 0, false
	}
	return LSN(v), true
}

func (l *Log) loadSegments() error {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return fmt.Errorf("wal: read dir: %w", err)
	}
	for _, e := range entries {
		if first, ok := parseSegName(e.Name()); ok {
			l.segments = append(l.segments, segmentInfo{first: first, path: filepath.Join(l.dir, e.Name())})
		}
	}
	sort.Slice(l.segments, func(i, j int) bool { return l.segments[i].first < l.segments[j].first })
	// Determine nextLSN by scanning the last segment; earlier segments are
	// trusted (they were complete when rotated).
	if len(l.segments) == 0 {
		return nil
	}
	last := l.segments[len(l.segments)-1]
	lastLSN, validLen, err := scanSegment(last.path, last.first)
	if err != nil {
		return err
	}
	// Truncate a torn tail so the next append lands on a clean boundary.
	if fi, err := os.Stat(last.path); err == nil && fi.Size() > validLen {
		if err := os.Truncate(last.path, validLen); err != nil {
			return fmt.Errorf("wal: truncate torn tail: %w", err)
		}
		l.logger.Warn("torn tail truncated",
			log.Str("segment", last.path),
			log.Int64("torn_bytes", fi.Size()-validLen),
			log.Uint64("last_lsn", uint64(lastLSN)))
	}
	if lastLSN >= l.nextLSN {
		l.nextLSN = lastLSN + 1
	}
	if lastLSN == 0 {
		// Empty last segment: next LSN is its declared first LSN, which may
		// reflect records in earlier segments.
		if last.first > l.nextLSN {
			l.nextLSN = last.first
		}
	}
	return nil
}

// scanSegment walks a segment validating frames, returning the last valid
// LSN (0 if none) and the byte length of the valid prefix.
func scanSegment(path string, first LSN) (LSN, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, fmt.Errorf("wal: scan %s: %w", path, err)
	}
	var last LSN
	off := int64(0)
	want := first
	for {
		rec, n, ok := decodeFrame(data[off:])
		if !ok {
			break
		}
		if rec.LSN != want {
			break // sequence break: treat as end of valid prefix
		}
		last = rec.LSN
		want++
		off += n
	}
	return last, off, nil
}

// decodeFrame decodes one frame from b. It returns ok=false on any
// truncation or checksum failure.
func decodeFrame(b []byte) (Record, int64, bool) {
	if len(b) < headerSize+trailerSize {
		return Record{}, 0, false
	}
	lsn := binary.LittleEndian.Uint64(b)
	length := binary.LittleEndian.Uint32(b[8:])
	typ := b[12]
	total := int64(headerSize) + int64(length) + trailerSize
	if int64(len(b)) < total {
		return Record{}, 0, false
	}
	payload := b[headerSize : headerSize+int(length)]
	crc := binary.LittleEndian.Uint32(b[headerSize+int(length):])
	if crc32.Checksum(b[:headerSize+int(length)], castagnoli) != crc {
		return Record{}, 0, false
	}
	p := make([]byte, length)
	copy(p, payload)
	return Record{LSN: LSN(lsn), Type: typ, Payload: p}, total, true
}

func (l *Log) openActive() error {
	var first LSN
	if n := len(l.segments); n > 0 {
		first = l.segments[n-1].first
	} else {
		first = l.nextLSN
		path := filepath.Join(l.dir, segName(first))
		l.segments = append(l.segments, segmentInfo{first: first, path: path})
	}
	path := l.segments[len(l.segments)-1].path
	f, err := l.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal: open active segment: %w", err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: stat active segment: %w", err)
	}
	l.active = f
	l.activeSz = fi.Size()
	l.firstLSN = first
	return nil
}

// NextLSN returns the LSN that the next Append will be assigned.
func (l *Log) NextLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN
}

// LastLSN returns the LSN of the most recently appended record, or 0 if the
// log is empty.
func (l *Log) LastLSN() LSN {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.nextLSN - 1
}

// Append writes a record and returns its LSN. Under SyncAlways the record
// is durable when Append returns.
func (l *Log) Append(typ uint8, payload []byte) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.closing {
		return 0, ErrClosed
	}
	if l.opts.Sync == SyncGroup {
		return l.stageLocked(typ, payload)
	}
	lsn, err := l.appendLocked(typ, payload)
	if err != nil {
		return 0, err
	}
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return lsn, nil
}

// AppendBatch writes several records with a single sync at the end (under
// SyncAlways). It returns the LSN of the last record written.
func (l *Log) AppendBatch(recs []Record) (LSN, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || l.closing {
		return 0, ErrClosed
	}
	if l.opts.Sync == SyncGroup {
		var last LSN
		for _, r := range recs {
			lsn, err := l.stageLocked(r.Type, r.Payload)
			if err != nil {
				return 0, err
			}
			last = lsn
		}
		return last, nil
	}
	var last LSN
	for _, r := range recs {
		lsn, err := l.appendLocked(r.Type, r.Payload)
		if err != nil {
			return 0, err
		}
		last = lsn
	}
	if l.opts.Sync == SyncAlways {
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	return last, nil
}

func (l *Log) appendLocked(typ uint8, payload []byte) (LSN, error) {
	if l.writerErr != nil {
		return 0, fmt.Errorf("wal: append after write failure: %w", l.writerErr)
	}
	if l.activeSz >= l.opts.SegmentSize {
		if err := l.rotateLocked(); err != nil {
			return 0, err
		}
	}
	lsn := l.nextLSN
	frame := encodeFrame(lsn, typ, payload)
	if _, err := l.active.Write(frame); err != nil {
		// A failed append leaves an unknown prefix of the frame on disk;
		// writing more frames after it would strand them behind the torn
		// one at recovery. Poison the log — Err() reports it and /healthz
		// flips.
		l.writerErr = fmt.Errorf("wal: append: %w", err)
		l.logger.Error("append failed; log poisoned",
			log.Err(err), log.Uint64("lsn", uint64(lsn)))
		return 0, l.writerErr
	}
	l.activeSz += int64(len(frame))
	l.nextLSN++
	l.dirty = true
	l.mAppends.Inc()
	l.mAppendBytes.Add(uint64(len(frame)))
	return lsn, nil
}

func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	first := l.nextLSN
	path := filepath.Join(l.dir, segName(first))
	f, err := l.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal: rotate open: %w", err)
	}
	l.segments = append(l.segments, segmentInfo{first: first, path: path})
	l.active = f
	l.activeSz = 0
	l.firstLSN = first
	l.mRotations.Inc()
	l.logger.Debug("segment rotated",
		log.Uint64("first_lsn", uint64(first)),
		log.Int("segments", len(l.segments)))
	return nil
}

// Sync forces buffered appends to stable storage. Under SyncGroup it
// blocks until the writer has flushed everything staged so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	if l.opts.Sync == SyncGroup {
		return l.syncToGroup(l.nextLSN - 1)
	}
	return l.syncLocked()
}

func (l *Log) syncLocked() error {
	if !l.dirty || l.opts.Sync == SyncNever {
		l.dirty = false
		l.syncedLSN = l.nextLSN - 1
		return nil
	}
	l.mFsyncs.Inc()
	l.mGroupBatch.Observe(int64(l.nextLSN - 1 - l.syncedLSN))
	l.dirty = false
	if !l.opts.NoFsync {
		start := time.Now()
		if err := l.active.Sync(); err != nil {
			// A failed fsync means durability promises can no longer be kept
			// (the kernel may have dropped the dirty pages): sticky, like a
			// failed append.
			l.writerErr = fmt.Errorf("wal: sync: %w", err)
			l.logger.Error("fsync failed; log poisoned", log.Err(err))
			return l.writerErr
		}
		l.mFsyncNanos.Observe(time.Since(start).Nanoseconds())
	}
	// Replication gate: locally durable, but the promise is not released
	// until the standby side of the gate lets go. Direct-mode appends
	// already hold l.mu across the fsync, so holding it across the gate
	// changes the locking story not at all.
	if l.gate != nil {
		if err := l.gate(l.nextLSN-1, "", 0, nil); err != nil {
			l.writerErr = fmt.Errorf("wal: replication gate: %w", err)
			l.logger.Error("replication gate failed; log poisoned", log.Err(err))
			return l.writerErr
		}
	}
	l.syncedLSN = l.nextLSN - 1
	return nil
}

// SyncTo blocks until every record up to lsn is durable. Under SyncGroup
// one committer becomes the leader and its single fsync (performed without
// holding the log mutex, so appends keep flowing) satisfies every waiter
// whose records it covers — classic group commit. Under other policies it
// returns immediately once lsn is covered (SyncAlways already synced it).
func (l *Log) SyncTo(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opts.Sync == SyncGroup {
		return l.syncToGroup(lsn)
	}
	for {
		if l.closed {
			return ErrClosed
		}
		if l.syncedLSN >= lsn {
			return nil
		}
		if l.syncing {
			l.syncCond.Wait()
			continue
		}
		// Leader: flush everything appended so far.
		l.syncing = true
		target := l.nextLSN - 1
		f := l.active
		l.mFsyncs.Inc()
		l.mGroupBatch.Observe(int64(target - l.syncedLSN))
		l.dirty = false
		noFsync := l.opts.NoFsync || l.opts.Sync == SyncNever
		l.mu.Unlock()
		var err error
		start := time.Now()
		if !noFsync {
			err = f.Sync()
			l.mFsyncNanos.Observe(time.Since(start).Nanoseconds())
		} else if l.testSyncDelay > 0 {
			time.Sleep(l.testSyncDelay)
		}
		// Replication gate: the records are locally durable; hold their
		// release until the gate (standby ack, lag budget) lets go. Runs
		// without l.mu, like the fsync it extends.
		gated := err == nil && l.gate != nil
		if gated {
			err = l.gate(target, "", 0, nil)
		}
		l.mu.Lock()
		l.syncing = false
		if err != nil && !gated && l.syncedLSN >= target {
			// A concurrent rotation synced and closed the file under us;
			// the records are durable regardless.
			err = nil
		}
		if err == nil && target > l.syncedLSN {
			l.syncedLSN = target
		}
		l.syncCond.Broadcast()
		if err != nil {
			l.writerErr = fmt.Errorf("wal: leader sync: %w", err)
			l.logger.Error("fsync failed; log poisoned", log.Err(err))
			return l.writerErr
		}
	}
}

// Stats reports operation counters since Open.
type Stats struct {
	Appends  uint64
	Syncs    uint64
	Segments int
	NextLSN  LSN
}

// Stats returns a snapshot of the log's counters (backed by the same
// instruments the metrics registry exposes).
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Appends: l.mAppends.Value(), Syncs: l.mFsyncs.Value(), Segments: len(l.segments), NextLSN: l.nextLSN}
}

// TruncateBefore removes whole segments whose records all precede lsn. It
// never splits a segment, so some records below lsn may survive; recovery
// must tolerate replaying from earlier than requested.
func (l *Log) TruncateBefore(lsn LSN) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return ErrClosed
	}
	keep := l.segments[:0:0]
	for i, s := range l.segments {
		// A segment may be removed if the next segment starts at or below
		// lsn (so this one holds only records < lsn) and it is not active.
		if i+1 < len(l.segments) && l.segments[i+1].first <= lsn {
			if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("wal: truncate: %w", err)
			}
			continue
		}
		keep = append(keep, s)
	}
	l.segments = keep
	return nil
}

// ReadFrom returns all records with LSN >= from, in order. It re-reads the
// segment files; callers use it only during recovery, so appends during a
// scan see an undefined suffix. Under the lock we only snapshot the segment
// list; file contents are immutable except the active tail, which recovery
// never races with.
func (l *Log) ReadFrom(from LSN) ([]Record, error) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil, ErrClosed
	}
	if l.opts.Sync == SyncGroup {
		// Drain the writer so staged records reach their segments; if the
		// writer has failed, what is on disk is all there will ever be,
		// which is exactly what recovery should see.
		l.drainGroupLocked()
	} else if err := l.syncLocked(); err != nil {
		l.mu.Unlock()
		return nil, err
	}
	segs := append([]segmentInfo(nil), l.segments...)
	l.mu.Unlock()

	var out []Record
	for _, s := range segs {
		data, err := os.ReadFile(s.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, fmt.Errorf("wal: read segment: %w", err)
		}
		off := int64(0)
		for {
			rec, n, ok := decodeFrame(data[off:])
			if !ok {
				break
			}
			if rec.LSN >= from {
				out = append(out, rec)
			}
			off += n
		}
	}
	return out, nil
}

// Close syncs and closes the log. Under SyncGroup it first drains the
// writer: records staged before Close carry a durable-LSN promise, so
// they are flushed, not dropped.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	if l.opts.Sync == SyncGroup {
		return l.closeGroup() // releases l.mu itself
	}
	defer l.mu.Unlock()
	err := l.syncLocked()
	l.closed = true
	if cerr := l.active.Close(); err == nil {
		err = cerr
	}
	return err
}

// CopyTail is a test/diagnostic helper: it returns the raw bytes of the
// active segment so crash tests can simulate torn writes.
func (l *Log) CopyTail() ([]byte, string, error) {
	l.mu.Lock()
	path := l.segments[len(l.segments)-1].path
	l.mu.Unlock()
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, "", err
	}
	return b, path, nil
}

var _ io.Closer = (*Log)(nil)
