package wal

import (
	"testing"
	"time"

	"repro/internal/obs"
)

func benchLog(b *testing.B, opts Options) *Log {
	b.Helper()
	l, err := Open(b.TempDir(), opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { l.Close() })
	return l
}

func BenchmarkAppendNoFsync(b *testing.B) {
	l := benchLog(b, Options{NoFsync: true})
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAppendNoFsyncWithSnapshots is the observability worst case:
// the instrumented append hot path while a concurrent reader snapshots
// the shared registry every 100µs (a hyperactive admin endpoint).
// Compare with BenchmarkAppendNoFsync — the instruments themselves are
// identical in both (appends always count); this adds only snapshot
// contention, which the lock-free counters shrug off.
func BenchmarkAppendNoFsyncWithSnapshots(b *testing.B) {
	reg := obs.NewRegistry()
	l := benchLog(b, Options{NoFsync: true, Metrics: reg})
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
				_ = reg.Snapshot()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	close(stop)
	<-done
}

func BenchmarkAppendFsync(b *testing.B) {
	l := benchLog(b, Options{})
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendGroupCommitParallel(b *testing.B) {
	l := benchLog(b, Options{Sync: SyncGroup})
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			lsn, err := l.Append(1, payload)
			if err != nil {
				b.Error(err)
				return
			}
			if err := l.SyncTo(lsn); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkAppendFsyncParallel(b *testing.B) {
	l := benchLog(b, Options{})
	payload := make([]byte, 128)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(1, payload); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

func BenchmarkRecoveryScan(b *testing.B) {
	l := benchLog(b, Options{NoFsync: true})
	payload := make([]byte, 128)
	for i := 0; i < 10000; i++ {
		if _, err := l.Append(1, payload); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		recs, err := l.ReadFrom(1)
		if err != nil || len(recs) != 10000 {
			b.Fatalf("%d records, %v", len(recs), err)
		}
	}
}
