package wal

import (
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
	"time"
)

func openTest(t *testing.T, dir string, opts Options) *Log {
	t.Helper()
	opts.NoFsync = true // keep tests fast; torn-tail tests inject corruption directly
	l, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return l
}

func TestAppendAndReadBack(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	var want []Record
	for i := 0; i < 100; i++ {
		payload := []byte(fmt.Sprintf("record-%d", i))
		lsn, err := l.Append(uint8(i%7), payload)
		if err != nil {
			t.Fatalf("Append: %v", err)
		}
		if lsn != LSN(i+1) {
			t.Fatalf("lsn = %d, want %d", lsn, i+1)
		}
		want = append(want, Record{LSN: lsn, Type: uint8(i % 7), Payload: payload})
	}
	got, err := l.ReadFrom(1)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].LSN != want[i].LSN || got[i].Type != want[i].Type || !bytes.Equal(got[i].Payload, want[i].Payload) {
			t.Fatalf("record %d mismatch: %+v vs %+v", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

func TestReopenContinuesLSNs(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 10; i++ {
		if _, err := l.Append(1, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()

	l2 := openTest(t, dir, Options{})
	defer l2.Close()
	lsn, err := l2.Append(2, []byte("y"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 11 {
		t.Fatalf("lsn after reopen = %d, want 11", lsn)
	}
	recs, err := l2.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 {
		t.Fatalf("got %d records, want 11", len(recs))
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentSize: 256})
	for i := 0; i < 50; i++ {
		if _, err := l.Append(0, bytes.Repeat([]byte{byte(i)}, 40)); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Segments < 3 {
		t.Fatalf("expected >=3 segments, got %d", st.Segments)
	}
	recs, err := l.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 50 {
		t.Fatalf("got %d records, want 50", len(recs))
	}
	l.Close()

	// Reopen across segments.
	l2 := openTest(t, dir, Options{SegmentSize: 256})
	defer l2.Close()
	if got := l2.NextLSN(); got != 51 {
		t.Fatalf("NextLSN after reopen = %d, want 51", got)
	}
}

func TestReadFromMidpoint(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentSize: 128})
	defer l.Close()
	for i := 0; i < 30; i++ {
		if _, err := l.Append(0, []byte("payload")); err != nil {
			t.Fatal(err)
		}
	}
	recs, err := l.ReadFrom(17)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 14 {
		t.Fatalf("got %d records, want 14", len(recs))
	}
	if recs[0].LSN != 17 {
		t.Fatalf("first LSN = %d, want 17", recs[0].LSN)
	}
}

func TestTruncateBefore(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentSize: 128})
	for i := 0; i < 40; i++ {
		if _, err := l.Append(0, []byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
	}
	before := l.Stats().Segments
	if before < 4 {
		t.Fatalf("want several segments, got %d", before)
	}
	if err := l.TruncateBefore(30); err != nil {
		t.Fatal(err)
	}
	after := l.Stats().Segments
	if after >= before {
		t.Fatalf("truncate removed nothing: %d -> %d", before, after)
	}
	recs, err := l.ReadFrom(30)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 11 || recs[0].LSN > 30 {
		t.Fatalf("records >=30 damaged by truncate: n=%d first=%d", len(recs), recs[0].LSN)
	}
	l.Close()

	// Reopen after truncation must still continue LSNs.
	l2 := openTest(t, dir, Options{SegmentSize: 128})
	defer l2.Close()
	lsn, err := l2.Append(0, []byte("new"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 41 {
		t.Fatalf("lsn after truncate+reopen = %d, want 41", lsn)
	}
}

func TestTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(0, []byte("good")); err != nil {
			t.Fatal(err)
		}
	}
	raw, path, err := l.CopyTail()
	if err != nil {
		t.Fatal(err)
	}
	l.Close()

	// Simulate a crash mid-append: chop the last 3 bytes of the final frame.
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, dir, Options{})
	defer l2.Close()
	recs, err := l2.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 4 {
		t.Fatalf("got %d records after torn tail, want 4", len(recs))
	}
	// The torn record's LSN is reused.
	lsn, err := l2.Append(9, []byte("replacement"))
	if err != nil {
		t.Fatal(err)
	}
	if lsn != 5 {
		t.Fatalf("replacement lsn = %d, want 5", lsn)
	}
	recs, _ = l2.ReadFrom(1)
	if len(recs) != 5 || recs[4].Type != 9 {
		t.Fatalf("replacement not visible: %+v", recs)
	}
}

func TestCorruptMiddleStopsScan(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	for i := 0; i < 5; i++ {
		if _, err := l.Append(0, []byte("abcdefgh")); err != nil {
			t.Fatal(err)
		}
	}
	raw, path, err := l.CopyTail()
	if err != nil {
		t.Fatal(err)
	}
	l.Close()
	// Flip a payload byte in the middle record; the scan must stop there.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	l2 := openTest(t, dir, Options{})
	defer l2.Close()
	recs, err := l2.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) >= 5 {
		t.Fatalf("corruption not detected: got %d records", len(recs))
	}
}

func TestEmptyPayload(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	defer l.Close()
	lsn, err := l.Append(3, nil)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := l.ReadFrom(lsn)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || len(recs[0].Payload) != 0 || recs[0].Type != 3 {
		t.Fatalf("empty payload roundtrip: %+v", recs)
	}
}

func TestAppendBatch(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	defer l.Close()
	last, err := l.AppendBatch([]Record{
		{Type: 1, Payload: []byte("a")},
		{Type: 2, Payload: []byte("b")},
		{Type: 3, Payload: []byte("c")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if last != 3 {
		t.Fatalf("last = %d, want 3", last)
	}
	recs, _ := l.ReadFrom(1)
	if len(recs) != 3 || recs[2].Type != 3 {
		t.Fatalf("batch roundtrip: %+v", recs)
	}
}

func TestClosedLogRejectsOps(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{})
	l.Close()
	if _, err := l.Append(0, nil); err != ErrClosed {
		t.Fatalf("Append after close: %v", err)
	}
	if err := l.Sync(); err != ErrClosed {
		t.Fatalf("Sync after close: %v", err)
	}
	if _, err := l.ReadFrom(1); err != ErrClosed {
		t.Fatalf("ReadFrom after close: %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("double Close: %v", err)
	}
}

func TestSyncCounters(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncManual})
	defer l.Close()
	for i := 0; i < 10; i++ {
		if _, err := l.Append(0, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := l.Stats(); st.Syncs != 0 {
		t.Fatalf("manual policy synced eagerly: %d", st.Syncs)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 1 {
		t.Fatalf("syncs = %d, want 1", st.Syncs)
	}
	// Sync with nothing dirty is a no-op.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if st := l.Stats(); st.Syncs != 1 {
		t.Fatalf("idle sync counted: %d", st.Syncs)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentSize: 1024})
	defer l.Close()
	const goroutines = 8
	const perG = 200
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < perG; i++ {
				if _, err := l.Append(uint8(g), []byte("concurrent")); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	recs, err := l.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != goroutines*perG {
		t.Fatalf("got %d records, want %d", len(recs), goroutines*perG)
	}
	for i, r := range recs {
		if r.LSN != LSN(i+1) {
			t.Fatalf("LSN gap at %d: %d", i, r.LSN)
		}
	}
}

func TestQuickRoundTripRandomPayloads(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{SegmentSize: 2048})
	defer l.Close()
	var stored [][]byte
	f := func(payload []byte, typ uint8) bool {
		lsn, err := l.Append(typ, payload)
		if err != nil {
			return false
		}
		stored = append(stored, append([]byte(nil), payload...))
		recs, err := l.ReadFrom(lsn)
		if err != nil || len(recs) != 1 {
			return false
		}
		return recs[0].Type == typ && bytes.Equal(recs[0].Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
	recs, err := l.ReadFrom(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(stored) {
		t.Fatalf("full scan %d != appended %d", len(recs), len(stored))
	}
	for i := range stored {
		if !bytes.Equal(recs[i].Payload, stored[i]) {
			t.Fatalf("payload %d mismatch", i)
		}
	}
}

func TestQuickTornTailAlwaysPrefix(t *testing.T) {
	// Property: chopping the log file at any byte offset yields a clean
	// prefix of the appended records — never a reordering, corruption
	// mis-read, or phantom record.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		l := openTest(t, dir, Options{})
		n := 3 + rng.Intn(10)
		for i := 0; i < n; i++ {
			payload := make([]byte, rng.Intn(64))
			rng.Read(payload)
			if _, err := l.Append(uint8(i), payload); err != nil {
				t.Fatal(err)
			}
		}
		raw, path, err := l.CopyTail()
		if err != nil {
			t.Fatal(err)
		}
		l.Close()
		cut := rng.Intn(len(raw) + 1)
		if err := os.WriteFile(path, raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l2 := openTest(t, dir, Options{})
		recs, err := l2.ReadFrom(1)
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range recs {
			if r.LSN != LSN(i+1) || r.Type != uint8(i) {
				t.Fatalf("trial %d: torn log produced non-prefix at %d: %+v", trial, i, r)
			}
		}
		if len(recs) > n {
			t.Fatalf("trial %d: phantom records", trial)
		}
		l2.Close()
	}
}

func TestSegmentNameParse(t *testing.T) {
	name := segName(0xabcdef)
	got, ok := parseSegName(name)
	if !ok || got != 0xabcdef {
		t.Fatalf("parseSegName(%q) = %d, %v", name, got, ok)
	}
	for _, bad := range []string{"wal-xyz.seg", "foo.seg", "wal-10", "snapshot-01.snap"} {
		if _, ok := parseSegName(bad); ok {
			t.Errorf("parseSegName(%q) accepted", bad)
		}
	}
}

func TestOpenCreatesDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "wal")
	l, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
}

func TestSyncToGroupCommit(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncGroup, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	l.testSyncDelay = 500 * time.Microsecond // simulated fsync latency
	// Concurrent committers: every SyncTo must return only once its lsn is
	// covered; the fsync count must be well below the append count.
	const committers = 8
	const perC = 50
	errs := make(chan error, committers)
	for c := 0; c < committers; c++ {
		go func(c int) {
			for i := 0; i < perC; i++ {
				lsn, err := l.Append(uint8(c), []byte("rec"))
				if err != nil {
					errs <- err
					return
				}
				if err := l.SyncTo(lsn); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(c)
	}
	for c := 0; c < committers; c++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Appends != committers*perC {
		t.Fatalf("appends = %d", st.Appends)
	}
	if st.Syncs >= st.Appends {
		t.Fatalf("no batching: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	recs, err := l.ReadFrom(1)
	if err != nil || len(recs) != committers*perC {
		t.Fatalf("read back %d records, %v", len(recs), err)
	}
}

func TestSyncToAlreadyDurableReturnsImmediately(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{}) // SyncAlways
	lsn, err := l.Append(0, []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	before := l.Stats().Syncs
	if err := l.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	if l.Stats().Syncs != before {
		t.Fatal("SyncTo under SyncAlways performed a redundant fsync")
	}
}

func TestSyncToAfterClose(t *testing.T) {
	dir := t.TempDir()
	l := openTest(t, dir, Options{Sync: SyncGroup})
	lsn, _ := l.Append(0, []byte("x"))
	l.Close()
	if err := l.SyncTo(lsn + 1); err != ErrClosed {
		t.Fatalf("SyncTo after close: %v", err)
	}
}

func TestSyncToSurvivesRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, Options{Sync: SyncGroup, SegmentSize: 128, NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan error, 4)
	for g := 0; g < 4; g++ {
		go func() {
			for i := 0; i < 100; i++ {
				lsn, err := l.Append(0, bytes.Repeat([]byte{1}, 40))
				if err != nil {
					done <- err
					return
				}
				if err := l.SyncTo(lsn); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 4; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	recs, err := l.ReadFrom(1)
	if err != nil || len(recs) != 400 {
		t.Fatalf("records %d, %v", len(recs), err)
	}
}
