package wal

// Group commit via a dedicated log-writer goroutine.
//
// Under SyncPolicy SyncGroup, Append does not touch the segment file at
// all: it encodes the frame, assigns the LSN, and stages the bytes on an
// in-memory list — a *durable-LSN promise*: the record WILL reach stable
// storage at that LSN, in order, or the log will report a sticky failure.
// A single writer goroutine drains the staged list, coalesces every
// staged frame into one write syscall plus one fsync (rotating segments
// as it goes), advances syncedLSN, and wakes the committers blocked in
// SyncTo. Concurrent committers from different queue shards therefore
// share fsyncs: while the writer is forcing batch N, new commits stage
// batch N+1, so the fsync rate is bounded by disk latency rather than by
// the commit rate (classic group commit).
//
// The commit protocol built on top (internal/txn) releases transaction
// locks as soon as the commit record is staged, blocking only on the
// force-completion notification — see DESIGN.md "Group commit & commit
// pipelining" for why early release is safe: log order equals LSN order,
// so any transaction that observed this one's effects commits at a later
// LSN and can never survive a crash this one did not.

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"repro/internal/obs/log"
	"time"
)

// GroupCommitConfig tunes the group-commit writer (SyncPolicy SyncGroup).
// The zero value is a sensible default: flush as soon as the writer is
// free (natural batching — commits arriving during an fsync form the next
// batch), with a 1 MiB batch cap.
type GroupCommitConfig struct {
	// MaxDelay, when positive, is a deliberate batching window: after the
	// first record of a batch is staged the writer waits up to MaxDelay
	// for more committers before forcing, trading commit latency for
	// larger batches (fewer fsyncs). Zero disables the window.
	MaxDelay time.Duration
	// MaxBatchBytes forces a flush once this many bytes are staged,
	// cutting a MaxDelay window short. Zero means 1 MiB.
	MaxBatchBytes int
	// MaxWaiters, when positive, cuts a MaxDelay window short once this
	// many committers are blocked in SyncTo — everyone who will join the
	// batch has arrived, so waiting longer only adds latency.
	MaxWaiters int
}

const defaultMaxBatchBytes = 1 << 20

func (c GroupCommitConfig) maxBatchBytes() int {
	if c.MaxBatchBytes > 0 {
		return c.MaxBatchBytes
	}
	return defaultMaxBatchBytes
}

// VFS abstracts creation of append-mode segment files so tests can
// interpose crash-fault layers under the log (torn tail writes, dropped
// unsynced data — see internal/chaos/walfault). Only the write path is
// virtualized: recovery reads, truncation, and removal act on the real
// files, which a fault layer mutates in place to simulate a crash.
type VFS interface {
	// OpenAppend opens (creating if needed) path for appending.
	OpenAppend(path string) (File, error)
}

// File is a writable segment file handle.
type File interface {
	io.Writer
	// Sync forces written data to stable storage.
	Sync() error
	// Close closes the handle.
	Close() error
}

// osVFS is the default VFS over the real filesystem.
type osVFS struct{}

func (osVFS) OpenAppend(path string) (File, error) {
	return os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// stageLocked is Append under SyncGroup: encode, assign the LSN, stage
// the frame for the writer, and return the durable-LSN promise. Caller
// holds l.mu.
func (l *Log) stageLocked(typ uint8, payload []byte) (LSN, error) {
	if l.writerErr != nil {
		return 0, fmt.Errorf("wal: append after writer failure: %w", l.writerErr)
	}
	lsn := l.nextLSN
	if len(l.stagedEnds) == 0 {
		l.stagedFirst = lsn
	}
	l.staged = appendFrame(l.staged, lsn, typ, payload)
	l.stagedEnds = append(l.stagedEnds, len(l.staged))
	l.nextLSN++
	l.mAppends.Inc()
	l.mAppendBytes.Add(uint64(headerSize + len(payload) + trailerSize))
	l.writerCond.Signal()
	return lsn, nil
}

// appendFrame appends one framed record (header + payload + CRC) to buf.
func appendFrame(buf []byte, lsn LSN, typ uint8, payload []byte) []byte {
	start := len(buf)
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint64(hdr[:], uint64(lsn))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(payload)))
	hdr[12] = typ
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	var tr [trailerSize]byte
	binary.LittleEndian.PutUint32(tr[:], crc32.Checksum(buf[start:], castagnoli))
	return append(buf, tr[:]...)
}

// encodeFrame builds one framed record as a fresh slice (non-group path).
func encodeFrame(lsn LSN, typ uint8, payload []byte) []byte {
	return appendFrame(make([]byte, 0, headerSize+len(payload)+trailerSize), lsn, typ, payload)
}

// syncToGroup is SyncTo under SyncGroup: block until the writer reports
// every record up to lsn durable. Caller holds l.mu (released via the
// cond while parked). The wait is the commit-pipelining force window and
// is observed as wal.group_wait_ns.
func (l *Log) syncToGroup(lsn LSN) error {
	var waitStart time.Time
	for l.syncedLSN < lsn {
		if l.writerErr != nil {
			return fmt.Errorf("wal: group sync: %w", l.writerErr)
		}
		if l.closed {
			return ErrClosed
		}
		// Inline force: with no flush in flight and no deliberate batching
		// window, flush the staged batch ourselves instead of handing off
		// to the writer — the uncontended commit then never parks, saving
		// two context switches. Under load the flushing flag is set and
		// committers park as usual, forming the next batch.
		if !l.flushing && !l.closing && l.gc.MaxDelay == 0 && len(l.stagedEnds) > 0 {
			l.flushStagedLocked()
			continue
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		l.syncWaiters++
		l.writerCond.Signal() // a waiter may cut the batch window short
		l.syncCond.Wait()
		l.syncWaiters--
	}
	if !waitStart.IsZero() {
		l.mGroupWait.Observe(time.Since(waitStart).Nanoseconds())
	}
	return nil
}

// drainGroupLocked blocks until everything staged so far is flushed (or
// the writer has failed, in which case what is on disk is all there will
// ever be). Caller holds l.mu. Used by ReadFrom and Sync.
func (l *Log) drainGroupLocked() {
	target := l.nextLSN - 1
	for l.syncedLSN < target && l.writerErr == nil && !l.closed {
		l.syncWaiters++
		l.writerCond.Signal()
		l.syncCond.Wait()
		l.syncWaiters--
	}
}

// writerLoop is the dedicated log writer: appends only stage, and the
// flushing flag hands the segment file to exactly one flusher at a time
// (this goroutine, or a committer on the inline-force path), so writes
// and fsyncs happen entirely outside l.mu and commits keep staging while
// a force is in flight.
func (l *Log) writerLoop() {
	defer close(l.writerDone)
	l.mu.Lock()
	for {
		for (len(l.stagedEnds) == 0 || l.flushing) && !l.closing {
			l.writerCond.Wait()
		}
		if l.flushing { // closing, but a committer owns the file: wait it out
			l.writerCond.Wait()
			continue
		}
		if len(l.stagedEnds) == 0 { // closing and fully drained
			l.mu.Unlock()
			return
		}
		if l.writerErr != nil {
			// The log is broken: staged frames can never become durable.
			// Fail their committers and wait for Close.
			l.staged, l.stagedEnds = l.staged[:0], l.stagedEnds[:0]
			l.syncCond.Broadcast()
			continue
		}
		if d := l.gc.MaxDelay; d > 0 && !l.closing {
			l.waitBatchWindowLocked(d)
		}
		l.flushStagedLocked()
	}
}

// flushStagedLocked takes the staged batch (swapping the staging buffers
// with the spares so new commits keep staging), flushes it with l.mu
// released, and publishes the result. The flushing flag grants exclusive
// ownership of the segment file for the duration; it is set and cleared
// under l.mu, so the writer and an inline-forcing committer never flush
// concurrently. Caller holds l.mu with flushing unset and at least one
// staged frame; l.mu is held again on return.
func (l *Log) flushStagedLocked() {
	batch, ends, first := l.staged, l.stagedEnds, l.stagedFirst
	l.staged, l.stagedEnds = l.spare[:0], l.spareEnds[:0]
	l.spare, l.spareEnds = batch, ends
	target := first + LSN(len(ends)) - 1
	// Where this batch will land if no rotation interrupts it — handed to
	// the replication gate so the common case ships the staged bytes
	// directly instead of re-reading the segment.
	segPath, segOff := l.segments[len(l.segments)-1].path, l.activeSz
	l.flushing = true
	l.mu.Unlock()

	rotated, err := l.flushBatch(batch, ends, first)

	// Replication gate: the batch is locally durable; its durable-LSN
	// promises are not released (syncedLSN stays put, committers stay
	// parked) until the gate returns. Runs outside l.mu, so new commits
	// keep staging the next batch while this one ships. The batch buffer
	// is stable here: it becomes a staging buffer again only after a later
	// flush swap, which cannot start until flushing clears below.
	if err == nil && l.gate != nil {
		if !rotated {
			err = l.gate(target, segPath, segOff, batch[:ends[len(ends)-1]])
		} else { // rotated mid-batch: the gate diffs the directory
			err = l.gate(target, "", 0, nil)
		}
	}

	l.mu.Lock()
	l.flushing = false
	if err != nil {
		l.writerErr = err
		l.logger.Error("group-commit writer failed; log poisoned",
			log.Err(err),
			log.Uint64("first_lsn", uint64(first)),
			log.Int("batch", len(ends)))
	} else {
		l.syncedLSN = target
		l.mGroupSize.Observe(int64(len(ends)))
		l.mGroupFlushes.Inc()
	}
	l.writerCond.Signal() // more may have staged, or Close may be waiting
	l.syncCond.Broadcast()
}

// waitBatchWindowLocked parks the writer for up to max after the first
// record of a batch, letting more committers join; it is cut short when
// the staged bytes hit MaxBatchBytes, when MaxWaiters committers are
// blocked, or at close. Caller holds l.mu.
func (l *Log) waitBatchWindowLocked(max time.Duration) {
	expired := false
	tm := time.AfterFunc(max, func() {
		l.mu.Lock()
		expired = true
		l.writerCond.Signal()
		l.mu.Unlock()
	})
	for !expired && !l.closing && l.writerErr == nil &&
		len(l.staged) < l.gc.maxBatchBytes() &&
		!(l.gc.MaxWaiters > 0 && l.syncWaiters >= l.gc.MaxWaiters) {
		l.writerCond.Wait()
	}
	tm.Stop()
}

// flushBatch writes a batch of staged frames with the minimum number of
// write syscalls (one per segment touched) and exactly one fsync at the
// end; segment rotation inside a batch adds one fsync per retired
// segment, which is then complete and immutable. Runs with no locks held
// except for the brief segment-list update inside rotateGroup. The batch
// is already contiguous (frames buf[off:ends[0]], buf[ends[0]:ends[1]],
// …), so the common no-rotation case is exactly one Write of buf. The
// returned bool reports whether a rotation occurred (the replication
// gate then cannot treat the batch as one contiguous append).
func (l *Log) flushBatch(buf []byte, ends []int, first LSN) (bool, error) {
	off := 0
	rotated := false
	for i := 0; i < len(ends); {
		if l.activeSz >= l.opts.SegmentSize {
			if err := l.rotateGroup(first + LSN(i)); err != nil {
				return rotated, err
			}
			rotated = true
		}
		// Extend the chunk while the next frame would still start below
		// the rotation threshold — the same per-record check the
		// non-group append path applies.
		j := i + 1
		for j < len(ends) && l.activeSz+int64(ends[j-1]-off) < l.opts.SegmentSize {
			j++
		}
		n, err := l.active.Write(buf[off:ends[j-1]])
		l.activeSz += int64(n)
		if err != nil {
			return rotated, fmt.Errorf("wal: group append: %w", err)
		}
		off = ends[j-1]
		i = j
	}
	l.mFsyncs.Inc()
	if l.opts.NoFsync {
		if l.testSyncDelay > 0 {
			time.Sleep(l.testSyncDelay)
		}
		return rotated, nil
	}
	start := time.Now()
	if err := l.active.Sync(); err != nil {
		return rotated, fmt.Errorf("wal: group sync: %w", err)
	}
	l.mFsyncNanos.Observe(time.Since(start).Nanoseconds())
	return rotated, nil
}

// rotateGroup retires the active segment (forcing it first, so rotated
// segments are always fully durable and TruncateBefore can drop them
// without a second look) and opens a new one whose first record will be
// firstLSN. Only the writer calls it; l.mu is taken just for the segment
// list update.
func (l *Log) rotateGroup(firstLSN LSN) error {
	l.mFsyncs.Inc()
	if !l.opts.NoFsync {
		if err := l.active.Sync(); err != nil {
			return fmt.Errorf("wal: rotate sync: %w", err)
		}
	}
	if err := l.active.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	path := filepath.Join(l.dir, segName(firstLSN))
	f, err := l.fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal: rotate open: %w", err)
	}
	l.mu.Lock()
	l.segments = append(l.segments, segmentInfo{first: firstLSN, path: path})
	l.mu.Unlock()
	l.active = f
	l.activeSz = 0
	l.firstLSN = firstLSN
	l.mRotations.Inc()
	return nil
}

// closeGroup shuts the group-commit log down: stop accepting appends,
// let the writer drain what is staged (committers already promised those
// LSNs), then close the file and wake everyone still parked.
func (l *Log) closeGroup() error {
	if l.closing { // concurrent Close already driving the shutdown
		l.mu.Unlock()
		<-l.writerDone
		return nil
	}
	l.closing = true
	l.writerCond.Broadcast()
	l.mu.Unlock()
	<-l.writerDone
	l.mu.Lock()
	l.closed = true
	err := l.writerErr
	if cerr := l.active.Close(); err == nil && cerr != nil {
		err = cerr
	}
	l.syncCond.Broadcast()
	l.mu.Unlock()
	return err
}
