package wal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
)

// gateRecorder captures every gate invocation.
type gateRecorder struct {
	mu    sync.Mutex
	calls []gateCall
	fail  atomic.Bool
	errV  error
}

type gateCall struct {
	upTo  LSN
	seg   string
	off   int64
	batch []byte
}

func (g *gateRecorder) gate(upTo LSN, seg string, off int64, batch []byte) error {
	if g.fail.Load() {
		return g.errV
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	var cp []byte
	if batch != nil {
		cp = append(cp, batch...)
	}
	g.calls = append(g.calls, gateCall{upTo: upTo, seg: seg, off: off, batch: cp})
	return nil
}

func (g *gateRecorder) snapshot() []gateCall {
	g.mu.Lock()
	defer g.mu.Unlock()
	return append([]gateCall(nil), g.calls...)
}

// TestGateCoversEveryDurableLSN: under group commit, every published
// durable LSN must have been covered by a gate call first — the gate is
// the replication hook sync mode hangs its zero-acked-loss rule on.
func TestGateCoversEveryDurableLSN(t *testing.T) {
	rec := &gateRecorder{}
	l, err := Open(t.TempDir(), Options{Sync: SyncGroup, NoFsync: true, Gate: rec.gate})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const committers, perC = 4, 25
	done := make(chan error, committers)
	for c := 0; c < committers; c++ {
		go func() {
			for i := 0; i < perC; i++ {
				lsn, err := l.Append(0, []byte("rec"))
				if err != nil {
					done <- err
					return
				}
				if err := l.SyncTo(lsn); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}()
	}
	for c := 0; c < committers; c++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	calls := rec.snapshot()
	if len(calls) == 0 {
		t.Fatal("gate never called")
	}
	var max LSN
	for _, c := range calls {
		if c.upTo > max {
			max = c.upTo
		}
	}
	if max != LSN(committers*perC) {
		t.Fatalf("gate high-water %d, want %d", max, committers*perC)
	}
	// Contiguous single-segment batches carry the raw bytes and their
	// placement; at least the common case must take the fast path.
	withBatch := 0
	for _, c := range calls {
		if c.batch != nil {
			withBatch++
			if c.seg == "" {
				t.Fatal("batch gate call without a segment path")
			}
		}
	}
	if withBatch == 0 {
		t.Fatal("no gate call carried batch bytes")
	}
}

// TestGateErrorPoisonsLog: a gate failure is a commit-rule failure — the
// durable-LSN promise cannot be released, so the log must poison exactly
// as a failed fsync would, and stay poisoned.
func TestGateErrorPoisonsLog(t *testing.T) {
	rec := &gateRecorder{errV: errors.New("standby unreachable")}
	l, err := Open(t.TempDir(), Options{Sync: SyncGroup, NoFsync: true, Gate: rec.gate})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	lsn, err := l.Append(0, []byte("ok"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}

	rec.fail.Store(true)
	lsn2, err := l.Append(0, []byte("gated"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncTo(lsn2); !errors.Is(err, rec.errV) {
		t.Fatalf("SyncTo past failing gate: %v, want wrapped gate error", err)
	}
	if err := l.Err(); !errors.Is(err, rec.errV) {
		t.Fatalf("Err() = %v, want sticky gate error", err)
	}
	if _, err := l.Append(0, []byte("after")); !errors.Is(err, rec.errV) {
		t.Fatalf("append after gate poison: %v", err)
	}
}

// TestGateDirectMode: under SyncAlways the gate runs on every sync too
// (the diff-form call, batch == nil).
func TestGateDirectMode(t *testing.T) {
	rec := &gateRecorder{}
	l, err := Open(t.TempDir(), Options{NoFsync: true, Gate: rec.gate})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(0, []byte("x")); err != nil {
		t.Fatal(err)
	}
	calls := rec.snapshot()
	if len(calls) == 0 {
		t.Fatal("gate not called on SyncAlways append")
	}
	if calls[len(calls)-1].upTo != 1 {
		t.Fatalf("gate upTo = %d, want 1", calls[len(calls)-1].upTo)
	}
}
