package queue

import (
	"errors"

	"repro/internal/enc"
)

// Errors returned by repository operations.
var (
	// ErrNoQueue reports an operation on a queue that does not exist.
	ErrNoQueue = errors.New("queue: no such queue")
	// ErrQueueExists reports creation of a queue that already exists.
	// Callers match it with errors.Is rather than inspecting the message.
	ErrQueueExists = errors.New("queue: queue exists")
	// ErrExists is the historical name for ErrQueueExists, kept so
	// existing errors.Is call sites continue to match.
	ErrExists = ErrQueueExists
	// ErrEmpty reports a non-waiting dequeue on a queue with no available
	// element (strict-FIFO dequeues also report it when the head element is
	// held by an uncommitted transaction).
	ErrEmpty = errors.New("queue: empty")
	// ErrStopped reports a dequeue from a stopped queue.
	ErrStopped = errors.New("queue: stopped")
	// ErrNotFound reports an element id that does not identify a live
	// element.
	ErrNotFound = errors.New("queue: element not found")
	// ErrBusy reports destroying a queue that has elements held by
	// in-flight transactions.
	ErrBusy = errors.New("queue: busy")
	// ErrFull reports an enqueue beyond the queue's MaxDepth.
	ErrFull = errors.New("queue: full")
	// ErrNotRegistered reports a tagged operation by an unknown registrant.
	ErrNotRegistered = errors.New("queue: not registered")
	// ErrClosed reports use of a closed repository.
	ErrClosed = errors.New("queue: repository closed")
	// ErrRedirectLoop reports a cycle in queue redirection.
	ErrRedirectLoop = errors.New("queue: redirect loop")
)

// QueueConfig describes a queue. The zero value of every optional field is
// a sensible default.
//
// Concurrency: the repository stores one config per queue, written only
// under the exclusive repository lock plus the queue's shard lock
// (UpdateQueueConfig replaces the struct wholesale), so readers may rely
// on either lock. Name and Volatile are immutable after CreateQueue —
// UpdateQueueConfig preserves them — which lets hot paths read the
// queue's cached copies without any lock (see queueState in shard.go).
type QueueConfig struct {
	// Name identifies the queue within its repository. Immutable.
	Name string
	// ErrorQueue names the queue that receives an element after RetryLimit
	// successive aborts of its dequeuers (Section 4.2). Empty means the
	// element is retried forever.
	ErrorQueue string
	// RetryLimit is the paper's n: the n-th abort diverts the element to
	// the error queue. Zero means no limit.
	RetryLimit int32
	// Volatile queues are neither logged nor snapshotted; their contents
	// are lost on restart (Section 10's volatile queues). Immutable: a
	// queue cannot change durability after creation, and auto-committed
	// operations on volatile queues take a direct path that bypasses the
	// transaction manager entirely (see enqueueFast/dequeueFast).
	Volatile bool
	// StrictFIFO makes dequeues honour exact FIFO order: a dequeue blocks
	// behind (rather than skips) an element held by an uncommitted
	// transaction. The default is the paper's recommended skip-locked
	// behaviour (Section 10).
	StrictFIFO bool
	// RedirectTo forwards enqueues into this queue to another queue
	// (DECintact's queue redirection, Section 9).
	RedirectTo string
	// AlertThreshold triggers the repository's alert callback when the
	// visible depth reaches the threshold. Zero disables alerts.
	AlertThreshold int32
	// MaxDepth bounds the number of live elements; Enqueue beyond it fails
	// with ErrFull. Zero means unbounded.
	MaxDepth int32
}

func encodeConfig(b *enc.Buffer, c *QueueConfig) {
	b.String(c.Name)
	b.String(c.ErrorQueue)
	b.Varint(int64(c.RetryLimit))
	b.Bool(c.Volatile)
	b.Bool(c.StrictFIFO)
	b.String(c.RedirectTo)
	b.Varint(int64(c.AlertThreshold))
	b.Varint(int64(c.MaxDepth))
}

func decodeConfig(r *enc.Reader) QueueConfig {
	var c QueueConfig
	c.Name = r.String()
	c.ErrorQueue = r.String()
	c.RetryLimit = int32(r.Varint())
	c.Volatile = r.Bool()
	c.StrictFIFO = r.Bool()
	c.RedirectTo = r.String()
	c.AlertThreshold = int32(r.Varint())
	c.MaxDepth = int32(r.Varint())
	return c
}

// QueueStats are cumulative per-queue counters.
type QueueStats struct {
	Enqueues        uint64
	Dequeues        uint64 // committed removals
	AbortReturns    uint64 // elements returned by aborting dequeuers
	ErrorDiversions uint64 // elements moved to the error queue
	Kills           uint64
	Depth           int // current visible depth
	InFlight        int // elements held by uncommitted dequeuers
	MaxDepth        int // high-water mark of visible depth
}

// RegInfo is what Register returns about the registrant's previous life
// (Section 4.3): the type, tag, and element id of its last tagged
// operation, used by clients to resynchronize after a failure.
type RegInfo struct {
	// HasLast reports whether a previous tagged operation exists.
	HasLast bool
	// LastOp is the type of the last tagged operation.
	LastOp OpType
	// LastEID is the element the last operation touched.
	LastEID EID
	// LastTag is the registrant-defined tag of the last operation.
	LastTag []byte
}
