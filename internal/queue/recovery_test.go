package queue

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"time"
)

// reopen crashes r (no checkpoint) and recovers a fresh repository from the
// same directory.
func reopen(t *testing.T, r *Repository, dir string) *Repository {
	t.Helper()
	r.Crash()
	r2, inDoubt, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("unexpected in-doubt txns on reopen: %d", len(inDoubt))
	}
	t.Cleanup(func() { r2.Close() })
	return r2
}

func TestRecoveryRestoresElements(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	for i := 0; i < 5; i++ {
		enq(t, r, "q", fmt.Sprintf("m%d", i))
	}
	deq(t, r, "q") // consume m0

	r2 := reopen(t, r, dir)
	if d, _ := r2.Depth("q"); d != 4 {
		t.Fatalf("depth after recovery = %d, want 4", d)
	}
	for i := 1; i < 5; i++ {
		if got := string(deq(t, r2, "q").Body); got != fmt.Sprintf("m%d", i) {
			t.Fatalf("recovered order broken at %d: %q", i, got)
		}
	}
}

func TestRecoveryWithCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	for i := 0; i < 10; i++ {
		enq(t, r, "q", fmt.Sprintf("a%d", i))
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint activity must replay on top of the snapshot.
	deq(t, r, "q")
	enq(t, r, "q", "post")

	r2 := reopen(t, r, dir)
	if d, _ := r2.Depth("q"); d != 10 {
		t.Fatalf("depth = %d, want 10", d)
	}
	var got []string
	for i := 0; i < 10; i++ {
		got = append(got, string(deq(t, r2, "q").Body))
	}
	want := []string{"a1", "a2", "a3", "a4", "a5", "a6", "a7", "a8", "a9", "post"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order after checkpointed recovery: %v", got)
		}
	}
}

func TestRepeatedCheckpointAndRecovery(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	for round := 0; round < 5; round++ {
		for i := 0; i < 6; i++ {
			enq(t, r, "q", fmt.Sprintf("r%d-%d", round, i))
		}
		for i := 0; i < 3; i++ {
			deq(t, r, "q")
		}
		if round%2 == 0 {
			if err := r.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		r = reopen(t, r, dir)
	}
	// 5 rounds × (6 in − 3 out) = 15 left.
	if d, _ := r.Depth("q"); d != 15 {
		t.Fatalf("depth = %d, want 15", d)
	}
}

func TestRecoveryUncommittedInvisible(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "committed")
	tx := r.Begin()
	if _, err := r.Enqueue(tx, "q", Element{Body: []byte("uncommitted")}, "", nil); err != nil {
		t.Fatal(err)
	}
	tx2 := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx2, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	// Crash with both transactions in flight: the uncommitted enqueue
	// vanishes; the in-flight dequeue rolls back (element available again).
	r2 := reopen(t, r, dir)
	if d, _ := r2.Depth("q"); d != 1 {
		t.Fatalf("depth = %d, want 1", d)
	}
	if got := string(deq(t, r2, "q").Body); got != "committed" {
		t.Fatalf("recovered %q", got)
	}
}

func TestRecoveryRegistrationTags(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "req"})
	h, _, err := r.Register("req", "client-9", true)
	if err != nil {
		t.Fatal(err)
	}
	eid, err := h.Enqueue(nil, Element{Body: []byte("the-request")}, []byte("rid-0017"))
	if err != nil {
		t.Fatal(err)
	}

	r2 := reopen(t, r, dir)
	_, ri, err := r2.Register("req", "client-9", true)
	if err != nil {
		t.Fatal(err)
	}
	if !ri.HasLast || ri.LastOp != OpEnqueue || ri.LastEID != eid || string(ri.LastTag) != "rid-0017" {
		t.Fatalf("registration after crash = %+v", ri)
	}
}

func TestRecoveryReadLastSurvivesConsumption(t *testing.T) {
	// A reply dequeued (consumed) before a crash must still be re-readable
	// by its registrant after recovery (at-least-once reply processing).
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "reply"})
	h, _, err := r.Register("reply", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enqueue(nil, "reply", Element{Body: []byte("the-reply")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Dequeue(context.Background(), nil, DequeueOpts{Tag: []byte("ck")}); err != nil {
		t.Fatal(err)
	}

	r2 := reopen(t, r, dir)
	h2, ri, err := r2.Register("reply", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if ri.LastOp != OpDequeue || string(ri.LastTag) != "ck" {
		t.Fatalf("reg info = %+v", ri)
	}
	last, err := h2.ReadLast()
	if err != nil {
		t.Fatal(err)
	}
	if string(last.Body) != "the-reply" {
		t.Fatalf("ReadLast after crash = %q", last.Body)
	}
}

func TestRecoveryAbortCountDurable(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "err"})
	mustCreate(t, r, QueueConfig{Name: "q", ErrorQueue: "err", RetryLimit: 3})
	enq(t, r, "q", "poison")
	for i := 0; i < 2; i++ {
		tx := r.Begin()
		if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
			t.Fatal(err)
		}
		tx.Abort()
	}

	// Crash: the two abort returns must be remembered.
	r2 := reopen(t, r, dir)
	tx := r2.Begin()
	e, err := r2.Dequeue(context.Background(), tx, "q", "", DequeueOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if e.AbortCount != 2 {
		t.Fatalf("AbortCount after crash = %d, want 2", e.AbortCount)
	}
	tx.Abort() // third strike
	if got := string(deq(t, r2, "err").Body); got != "poison" {
		t.Fatalf("error queue after crash-spanning retries: %q", got)
	}
}

func TestRecoveryErrorDiversionDurable(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "err"})
	mustCreate(t, r, QueueConfig{Name: "q", ErrorQueue: "err", RetryLimit: 1})
	enq(t, r, "q", "bad")
	tx := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	tx.Abort() // diverted immediately

	r2 := reopen(t, r, dir)
	if d, _ := r2.Depth("q"); d != 0 {
		t.Fatalf("main queue depth = %d", d)
	}
	if got := string(deq(t, r2, "err").Body); got != "bad" {
		t.Fatalf("error queue lost element: %q", got)
	}
}

func TestRecoveryKilledElementStaysDead(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	eid := enq(t, r, "q", "x")
	if killed, err := r.KillElement(eid); err != nil || !killed {
		t.Fatalf("kill: %v %v", killed, err)
	}
	r2 := reopen(t, r, dir)
	if d, _ := r2.Depth("q"); d != 0 {
		t.Fatalf("killed element resurrected: depth %d", d)
	}
}

func TestRecoveryVolatileQueueLost(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "v", Volatile: true})
	mustCreate(t, r, QueueConfig{Name: "d"})
	enq(t, r, "v", "gone")
	enq(t, r, "d", "kept")

	r2 := reopen(t, r, dir)
	// The volatile queue itself is gone (not snapshotted, creation not
	// replayed into it)... its creation IS logged, so the queue exists but
	// is empty.
	if d, err := r2.Depth("v"); err != nil || d != 0 {
		t.Fatalf("volatile queue after crash: depth=%d err=%v", d, err)
	}
	if got := string(deq(t, r2, "d").Body); got != "kept" {
		t.Fatalf("durable element lost: %q", got)
	}
}

func TestRecoveryQueueConfigAndStopState(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q", ErrorQueue: "e", RetryLimit: 7, StrictFIFO: true, MaxDepth: 100})
	if err := r.StopQueue("q"); err != nil {
		t.Fatal(err)
	}

	r2 := reopen(t, r, dir)
	cfg, err := r2.Config("q")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ErrorQueue != "e" || cfg.RetryLimit != 7 || !cfg.StrictFIFO || cfg.MaxDepth != 100 {
		t.Fatalf("config after crash = %+v", cfg)
	}
	if _, err := r2.Dequeue(context.Background(), nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("stop state lost: %v", err)
	}
}

func TestRecoveryDestroyedQueueStaysGone(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "x")
	deq(t, r, "q")
	if err := r.DestroyQueue("q"); err != nil {
		t.Fatal(err)
	}
	r2 := reopen(t, r, dir)
	if _, err := r2.Depth("q"); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("destroyed queue recovered: %v", err)
	}
}

func TestRecoveryKVTables(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	ctx := context.Background()
	if err := r.KVSet(ctx, nil, "acct", "alice", []byte("100")); err != nil {
		t.Fatal(err)
	}
	if err := r.KVSet(ctx, nil, "acct", "bob", []byte("200")); err != nil {
		t.Fatal(err)
	}
	if err := r.KVDelete(ctx, nil, "acct", "bob"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := r.KVSet(ctx, nil, "acct", "alice", []byte("150")); err != nil {
		t.Fatal(err)
	}

	r2 := reopen(t, r, dir)
	v, ok, err := r2.KVGet(ctx, nil, "acct", "alice", false)
	if err != nil || !ok || string(v) != "150" {
		t.Fatalf("alice = %q %v %v", v, ok, err)
	}
	if _, ok, _ := r2.KVGet(ctx, nil, "acct", "bob", false); ok {
		t.Fatal("deleted key recovered")
	}
}

func TestRecoveryEIDsNeverReused(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	var last EID
	for i := 0; i < 10; i++ {
		last = enq(t, r, "q", "x")
		deq(t, r, "q")
	}
	r2 := reopen(t, r, dir)
	next := enq(t, r2, "q", "y")
	if next <= last {
		t.Fatalf("eid reused after crash: %d <= %d", next, last)
	}
}

func TestTriggerFiresOnDepth(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "replies"})
	mustCreate(t, r, QueueConfig{Name: "next"})
	if err := r.CreateTrigger("join-1", "replies", 3, Element{Queue: "next", Body: []byte("all-replies-in")}); err != nil {
		t.Fatal(err)
	}
	enq(t, r, "replies", "r1")
	enq(t, r, "replies", "r2")
	// Not yet.
	if _, err := r.Dequeue(context.Background(), nil, "next", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("trigger fired early: %v", err)
	}
	enq(t, r, "replies", "r3")
	e, err := r.Dequeue(context.Background(), nil, "next", "", DequeueOpts{Wait: true})
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Body) != "all-replies-in" {
		t.Fatalf("trigger element %q", e.Body)
	}
	if got := r.Triggers(); len(got) != 0 {
		t.Fatalf("trigger not removed: %v", got)
	}
}

func TestTriggerFiresImmediatelyIfMet(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "w"})
	mustCreate(t, r, QueueConfig{Name: "out"})
	enq(t, r, "w", "a")
	enq(t, r, "w", "b")
	if err := r.CreateTrigger("t", "w", 2, Element{Queue: "out", Body: []byte("go")}); err != nil {
		t.Fatal(err)
	}
	e, err := r.Dequeue(context.Background(), nil, "out", "", DequeueOpts{Wait: true})
	if err != nil || string(e.Body) != "go" {
		t.Fatalf("immediate trigger: %q %v", e.Body, err)
	}
}

func TestTriggerSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "w"})
	mustCreate(t, r, QueueConfig{Name: "out"})
	if err := r.CreateTrigger("t", "w", 2, Element{Queue: "out", Body: []byte("go")}); err != nil {
		t.Fatal(err)
	}
	enq(t, r, "w", "a")

	r2 := reopen(t, r, dir)
	if got := r2.Triggers(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("trigger lost in crash: %v", got)
	}
	enq(t, r2, "w", "b")
	e, err := r2.Dequeue(context.Background(), nil, "out", "", DequeueOpts{Wait: true})
	if err != nil || string(e.Body) != "go" {
		t.Fatalf("post-crash trigger: %q %v", e.Body, err)
	}
}

func TestTriggerRecheckAfterRecovery(t *testing.T) {
	// Condition met, crash before the async fire completes: RecheckTriggers
	// fires it after recovery.
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "w"})
	mustCreate(t, r, QueueConfig{Name: "out"})
	enq(t, r, "w", "a")
	enq(t, r, "w", "b")
	// Install the trigger state directly via a crash race simulation: create
	// it while the watch queue is already at depth, then crash immediately.
	// The CreateTrigger fast path fires asynchronously; crash first.
	r.Crash()
	r2, _, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if err := r2.CreateTrigger("t", "w", 2, Element{Queue: "out", Body: []byte("go")}); err != nil {
		t.Fatal(err)
	}
	r2.RecheckTriggers()
	e, err := r2.Dequeue(context.Background(), nil, "out", "", DequeueOpts{Wait: true})
	if err != nil || string(e.Body) != "go" {
		t.Fatalf("recheck trigger: %q %v", e.Body, err)
	}
}

func TestSnapshotCadence(t *testing.T) {
	dir := t.TempDir()
	r, _, err := Open(dir, Options{NoFsync: true, SnapshotEvery: 10})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, r, QueueConfig{Name: "q"})
	for i := 0; i < 50; i++ {
		enq(t, r, "q", "x")
	}
	// Give automatic snapshots a moment; they run synchronously inside
	// Enqueue, so state is already snapshotted. Just verify recovery works
	// and is fast (log truncated).
	stats := r.Log().Stats()
	r.Crash()
	r2, _, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if d, _ := r2.Depth("q"); d != 50 {
		t.Fatalf("depth = %d", d)
	}
	_ = stats
}

// TestQuickConservation is the queue-conservation property: under a random
// mix of committed/aborted enqueues and dequeues with a crash at the end,
// recovered state equals the committed history exactly — no element lost,
// duplicated, or resurrected.
func TestQuickConservation(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			r := openTest(t, dir)
			mustCreate(t, r, QueueConfig{Name: "q"})
			rng := rand.New(rand.NewSource(int64(trial) * 997))

			alive := make(map[string]bool) // committed, not yet consumed
			nextID := 0
			for step := 0; step < 200; step++ {
				switch rng.Intn(4) {
				case 0, 1: // enqueue, maybe abort
					body := fmt.Sprintf("e%d", nextID)
					nextID++
					tx := r.Begin()
					if _, err := r.Enqueue(tx, "q", Element{Body: []byte(body)}, "", nil); err != nil {
						t.Fatal(err)
					}
					if rng.Intn(4) == 0 {
						tx.Abort()
					} else {
						if err := tx.Commit(); err != nil {
							t.Fatal(err)
						}
						alive[body] = true
					}
				case 2: // dequeue, maybe abort
					tx := r.Begin()
					e, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{})
					if errors.Is(err, ErrEmpty) {
						tx.Abort()
						continue
					}
					if err != nil {
						t.Fatal(err)
					}
					if rng.Intn(3) == 0 {
						tx.Abort() // element returns
					} else {
						if err := tx.Commit(); err != nil {
							t.Fatal(err)
						}
						if !alive[string(e.Body)] {
							t.Fatalf("dequeued element %q not in committed set", e.Body)
						}
						delete(alive, string(e.Body))
					}
				case 3: // occasionally checkpoint
					if rng.Intn(10) == 0 {
						if err := r.Checkpoint(); err != nil {
							t.Fatal(err)
						}
					}
				}
			}

			r2 := reopen(t, r, dir)
			els, err := r2.ListElements("q", 0)
			if err != nil {
				t.Fatal(err)
			}
			var got, want []string
			for _, e := range els {
				got = append(got, string(e.Body))
			}
			for b := range alive {
				want = append(want, b)
			}
			sort.Strings(got)
			sort.Strings(want)
			if len(got) != len(want) {
				t.Fatalf("recovered %d elements, want %d\n got: %v\nwant: %v", len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("conservation violated:\n got: %v\nwant: %v", got, want)
				}
			}
		})
	}
}

// TestConcurrentLoadSharing drives several producers and consumers through
// one queue and verifies every element is consumed exactly once (the
// paper's load-sharing property, Section 1).
func TestConcurrentLoadSharing(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "work"})
	const producers = 4
	const perProducer = 50
	const consumers = 3

	consumed := make(chan string, producers*perProducer)
	prodDone := make(chan error, producers)
	for p := 0; p < producers; p++ {
		go func(p int) {
			for i := 0; i < perProducer; i++ {
				if _, err := r.Enqueue(nil, "work", Element{Body: []byte(fmt.Sprintf("p%d-%d", p, i))}, "", nil); err != nil {
					prodDone <- err
					return
				}
			}
			prodDone <- nil
		}(p)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	consDone := make(chan int, consumers)
	for c := 0; c < consumers; c++ {
		go func() {
			n := 0
			for {
				tx := r.Begin()
				e, err := r.Dequeue(ctx, tx, "work", "", DequeueOpts{Wait: true})
				if err != nil {
					tx.Abort()
					consDone <- n
					return
				}
				if err := tx.Commit(); err != nil {
					consDone <- n
					return
				}
				consumed <- string(e.Body)
				n++
			}
		}()
	}
	for p := 0; p < producers; p++ {
		if err := <-prodDone; err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[string]bool)
	for i := 0; i < producers*perProducer; i++ {
		select {
		case b := <-consumed:
			if seen[b] {
				t.Fatalf("element %q consumed twice", b)
			}
			seen[b] = true
		case <-time.After(5 * time.Second):
			t.Fatalf("only %d/%d elements consumed", len(seen), producers*perProducer)
		}
	}
	cancel() // stop consumers
	total := 0
	for c := 0; c < consumers; c++ {
		total += <-consDone
	}
	if total != producers*perProducer {
		t.Fatalf("consumer total = %d", total)
	}
	if len(seen) != producers*perProducer {
		t.Fatalf("exactly-once violated: %d unique", len(seen))
	}
}

func TestVolatileQueueDefinitionSurvivesCheckpoint(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "v", Volatile: true})
	enq(t, r, "v", "ephemeral")
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r2 := reopen(t, r, dir)
	d, err := r2.Depth("v")
	if err != nil {
		t.Fatalf("volatile queue definition lost after checkpoint: %v", err)
	}
	if d != 0 {
		t.Fatalf("volatile contents survived: depth %d", d)
	}
}

func TestCheckpointPreservesInDoubtPrepare(t *testing.T) {
	// A transaction prepares (2PC), then a checkpoint runs, then the node
	// crashes before the decision. The checkpoint's log truncation must
	// not drop the prepare record: recovery must reinstate the in-doubt
	// transaction.
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "held")
	tx := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare("coordX/7"); err != nil {
		t.Fatal(err)
	}
	// Churn the log past several segments, then checkpoint: truncation
	// would love to drop the old segments, but the outstanding prepare
	// pins them.
	for i := 0; i < 50; i++ {
		enq(t, r, "q", fmt.Sprintf("churn-%d", i))
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.Crash()

	r2, inDoubt, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if len(inDoubt) != 1 {
		t.Fatalf("in-doubt after checkpoint+crash = %d, want 1", len(inDoubt))
	}
	if inDoubt[0].Coordinator != "coordX/7" {
		t.Fatalf("coordinator = %q", inDoubt[0].Coordinator)
	}
	// The held element is still protected (in-flight), not double-counted.
	d, _ := r2.Depth("q")
	if d != 50 {
		t.Fatalf("depth = %d, want 50 churn elements", d)
	}
	// Abort the in-doubt txn: the held element returns.
	if err := inDoubt[0].Txn.AbortPrepared(); err != nil {
		t.Fatal(err)
	}
	if d, _ := r2.Depth("q"); d != 51 {
		t.Fatalf("depth after in-doubt abort = %d, want 51", d)
	}
}

func TestCheckpointThenCommitInDoubt(t *testing.T) {
	// Same as above, but the coordinator decides commit after recovery:
	// the element must be consumed exactly once.
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "held")
	tx := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare("c/1"); err != nil {
		t.Fatal(err)
	}
	if err := r.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	r.Crash()

	r2, inDoubt, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 {
		t.Fatalf("in-doubt = %d", len(inDoubt))
	}
	if err := inDoubt[0].Txn.CommitPrepared(); err != nil {
		t.Fatal(err)
	}
	if d, _ := r2.Depth("q"); d != 0 {
		t.Fatalf("depth = %d after in-doubt commit", d)
	}
	r2.Crash()

	// One more recovery: the decision is durable; nothing in doubt, the
	// element stays consumed.
	r3, inDoubt3, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r3.Close()
	if len(inDoubt3) != 0 {
		t.Fatalf("in-doubt after decision = %d", len(inDoubt3))
	}
	if d, _ := r3.Depth("q"); d != 0 {
		t.Fatalf("element resurrected: depth %d", d)
	}
}
