package queue

// Crash-point durability torture for the group-commit writer.
//
// Each iteration runs concurrent committers over a WAL whose files sit on
// a walfault crash-injection layer, kills the log at a randomized write,
// materializes a randomly torn post-crash state (any prefix of the
// unsynced suffix survives, possibly with corrupted bytes), recovers, and
// checks the recoverable-request contract from the paper's client view:
//
//	acknowledged commit  ⇒ its effects are present after recovery
//	unacknowledged       ⇒ atomically absent or present — never torn,
//	                       never duplicated, never partially applied
//
// "Atomically" is probed with transactions that enqueue to two queues:
// recovery must surface both halves or neither.

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/chaos/walfault"
)

const tortureSeedBase = 0x6C0FFEE0

func TestGroupCommitCrashTorture(t *testing.T) {
	iterations := 500
	if testing.Short() {
		iterations = 64
	}
	var (
		totalAcked   int
		totalFired   int
		totalDropped int64
	)
	for i := 0; i < iterations; i++ {
		seed := int64(tortureSeedBase + i)
		acked, fired, dropped := tortureIteration(t, seed, i)
		totalAcked += acked
		if fired {
			totalFired++
		}
		totalDropped += dropped
	}
	// The run must actually have exercised the machinery: commits were
	// acknowledged, injected failures fired, and crashes destroyed
	// unsynced data. A torture test that never tears anything passes
	// vacuously.
	if totalAcked == 0 {
		t.Fatal("no commit was ever acknowledged; torture exercised nothing")
	}
	if totalFired < iterations/2 {
		t.Fatalf("injected failure fired in only %d/%d iterations", totalFired, iterations)
	}
	if totalDropped == 0 {
		t.Fatal("no crash ever dropped unsynced data; torture exercised nothing")
	}
}

// tortureIteration runs one randomized crash point and returns the number
// of acknowledged enqueue bodies, whether the injected failure fired, and
// how many bytes the crash destroyed.
func tortureIteration(t *testing.T, seed int64, iter int) (int, bool, int64) {
	t.Helper()
	fail := func(format string, args ...any) {
		t.Helper()
		t.Fatalf("iter %d (seed %#x): %s", iter, seed, fmt.Sprintf(format, args...))
	}
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(seed))
	fs := walfault.New(seed)
	opts := Options{
		GroupCommit: true,
		WALFS:       fs,
		// walfault's Sync is watermark-only, so real fsyncs stay off the
		// clock; vary the batching window across iterations to hit both
		// immediate-flush and delayed-window crash points.
		GroupCommitMaxDelay:   []time.Duration{0, 200 * time.Microsecond, time.Millisecond}[iter%3],
		GroupCommitMaxWaiters: iter % 4,
	}
	r, inDoubt, err := Open(dir, opts)
	if err != nil {
		fail("open: %v", err)
	}
	if len(inDoubt) != 0 {
		fail("in-doubt txns on fresh open: %d", len(inDoubt))
	}
	for _, q := range []string{"work", "pair0", "pair1"} {
		if err := r.CreateQueue(QueueConfig{Name: q}); err != nil {
			fail("create %s: %v", q, err)
		}
	}

	// The DDL above is durable; everything after this line races the
	// injected failure.
	fs.FailAfterWrites(rng.Intn(30) + 1)

	var (
		mu           sync.Mutex
		enqAttempted = map[string]bool{} // body staged for enqueue into "work"
		enqAcked     = map[string]bool{} // enqueue commit acknowledged
		deqAttempted = map[string]bool{} // body staged for dequeue from "work"
		deqAcked     = map[string]bool{} // dequeue commit acknowledged
		pairAcked    = map[string]bool{} // two-queue txn acknowledged
		pairTried    = map[string]bool{}
	)
	var wg sync.WaitGroup
	for w := 0; w < 2; w++ {
		wg.Add(2)
		// Work-queue committers: single-queue enqueues, with occasional
		// dequeues so lost-dequeue-record recovery (element returns) is
		// also under test.
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				body := fmt.Sprintf("w%d-%d", w, i)
				tx := r.Begin()
				if _, err := r.Enqueue(tx, "work", Element{Body: []byte(body)}, "", nil); err != nil {
					tx.Abort()
					return
				}
				mu.Lock()
				enqAttempted[body] = true
				mu.Unlock()
				if err := tx.Commit(); err != nil {
					return
				}
				mu.Lock()
				enqAcked[body] = true
				mu.Unlock()
				if i%3 == 2 {
					tx := r.Begin()
					e, err := r.Dequeue(context.Background(), tx, "work", "", DequeueOpts{})
					if err != nil {
						tx.Abort()
						continue
					}
					mu.Lock()
					deqAttempted[string(e.Body)] = true
					mu.Unlock()
					if err := tx.Commit(); err != nil {
						return
					}
					mu.Lock()
					deqAcked[string(e.Body)] = true
					mu.Unlock()
				}
			}
		}(w)
		// Pair committers: one transaction, two queues — the atomicity
		// probe. Recovery must never split the pair.
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				key := fmt.Sprintf("p%d-%d", w, i)
				tx := r.Begin()
				_, errA := r.Enqueue(tx, "pair0", Element{Body: []byte(key)}, "", nil)
				_, errB := r.Enqueue(tx, "pair1", Element{Body: []byte(key)}, "", nil)
				if errA != nil || errB != nil {
					tx.Abort()
					return
				}
				mu.Lock()
				pairTried[key] = true
				mu.Unlock()
				if err := tx.Commit(); err != nil {
					return
				}
				mu.Lock()
				pairAcked[key] = true
				mu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	fired := fs.Failed()

	r.Crash()
	if err := fs.Crash(); err != nil {
		fail("materialize crash: %v", err)
	}

	// Recover over the torn files with the fault layer removed. Recovery
	// itself failing (e.g. a torn record surviving the CRC scan) is a
	// torture failure.
	r2, inDoubt, err := Open(dir, Options{GroupCommit: true, NoFsync: true})
	if err != nil {
		fail("recovery: %v", err)
	}
	defer r2.Close()
	if len(inDoubt) != 0 {
		fail("in-doubt after recovery: %d", len(inDoubt))
	}

	count := func(qname string) map[string]int {
		els, err := r2.ListElements(qname, 1<<20)
		if err != nil {
			fail("list %s: %v", qname, err)
		}
		m := make(map[string]int, len(els))
		for _, e := range els {
			m[string(e.Body)]++
		}
		return m
	}
	work := count("work")
	pair0 := count("pair0")
	pair1 := count("pair1")

	for body, n := range work {
		if !enqAttempted[body] {
			fail("recovered element %q was never enqueued", body)
		}
		if n > 1 {
			fail("element %q duplicated after recovery (%d copies)", body, n)
		}
	}
	for body := range enqAcked {
		n := work[body]
		switch {
		case deqAcked[body]:
			// Acknowledged dequeue: the element must be gone.
			if n != 0 {
				fail("element %q resurfaced after acknowledged dequeue", body)
			}
		case deqAttempted[body]:
			// Unacknowledged dequeue: either outcome, bounded above by 1
			// (checked over all recovered elements).
		default:
			// Acknowledged enqueue, untouched since: must be present.
			if n != 1 {
				fail("acknowledged element %q lost by recovery (count=%d)", body, n)
			}
		}
	}
	for key := range pairTried {
		a, b := pair0[key], pair1[key]
		if a != b {
			fail("pair %q split by recovery: pair0=%d pair1=%d", key, a, b)
		}
		if pairAcked[key] && a != 1 {
			fail("acknowledged pair %q lost by recovery (count=%d)", key, a)
		}
	}
	for key := range pair0 {
		if !pairTried[key] {
			fail("recovered pair element %q was never enqueued", key)
		}
	}
	return len(enqAcked), fired, fs.DroppedBytes()
}
