package queue

// Lock-free bounded MPMC ring for the volatile fast path.
//
// The ring is a two-level structure in the spirit of the memory-optimal
// segment-queue designs (PAPERS.md): a fixed array of ringMaxSegs segment
// pointers, each segment holding ringSegSlots slots, for a total capacity
// of ringCap elements. Segments are allocated lazily on first touch and
// then recycled in place forever — they are never unlinked, so there is
// no reclamation problem and no ABA hazard from reuse: a slot's sequence
// number strictly increases across cycles and uniquely identifies which
// logical position currently owns it.
//
// Protocol (Vyukov-style per-slot sequencing, global CAS cursors):
//
//   - Positions are unbounded uint64s. Position p maps to segment
//     (p/ringSegSlots)%ringMaxSegs, slot p%ringSegSlots.
//   - A slot with seq == p is free for the producer of position p.
//     The producer claims p by CASing the global enq cursor p→p+1 (the
//     linearization point), copies the element in, then publishes with
//     seq.Store(p+1).
//   - A consumer at position p waits for seq == p+1, claims p by CASing
//     deq p→p+1, copies the element out, clears the slot, and releases it
//     to the next cycle with seq.Store(p+ringCap).
//   - A producer that finds seq < p while enq still reads p has lapped a
//     slow consumer (ring full): it reports failure and the caller falls
//     back to the locked path.
//
// All cross-goroutine element transfers are ordered by the seq atomics:
// the producer's seq.Store(p+1) release-publishes the element write, and
// the consumer's seq load acquires it before the copy-out (and vice versa
// for the slot clear and the next cycle's producer).
//
// The ring by itself is only a queue of Elements; queueState layers the
// drain-and-seal handoff protocol on top (see shard.go) so transactional,
// prioritized, filtered and blocking consumers — which need the locked
// lists — never interleave unsafely with ring traffic.

import (
	"sync/atomic"
	"time"
)

const (
	// ringSegSlots is the number of element slots per segment. One segment
	// is ~ringSegSlots * sizeof(rslot) bytes (Element is pointer-heavy, so
	// roughly 160 B/slot → ~20 KB/segment), small enough that the lazy
	// first-cycle allocation is cheap and idle eligible queues cost nothing.
	ringSegSlots = 128

	// ringMaxSegs bounds resident memory per queue at ringMaxSegs segments;
	// segments are recycled in place, never freed, so this is also the
	// steady-state footprint once a queue has seen ringCap elements.
	ringMaxSegs = 8

	// ringCap is the total bounded capacity. A 1024-element burst cushion
	// before falling back to the locked path matches the depth regime the
	// contention benches exercise; deeper backlogs take the locked path,
	// which is the right place for them anyway (alerting, MaxDepth, stats).
	ringCap = ringSegSlots * ringMaxSegs

	// ringFullYields is how many times a producer finding the ring full
	// backs off before giving up and taking the locked fallback. On
	// few-core boxes a "full" ring is usually a consumer one quantum
	// behind; backing off is far cheaper than seal-drain-reopen.
	ringFullYields = 64

	// ringSpinYields is the cooperative-yield budget within that: the
	// first attempts use runtime.Gosched, which is nearly free when the
	// consumer is on the same P (the GOMAXPROCS=1 regime). When that many
	// yields fail to free a slot, the consumer is NOT reachable by
	// cooperative yielding — on an oversubscribed host (GOMAXPROCS >
	// physical cores) it sits on another P's run queue that this M never
	// steals from under Gosched, and the producer spins its whole OS
	// quantum in lockstep. The remaining attempts park on a timer
	// (ringYieldSleep) instead, which deschedules the M and lets the
	// consumer drain a long stretch of the ring rather than one slot.
	ringSpinYields = 8

	// ringYieldSleep is the timer-park used after the spin budget. At 20µs
	// a draining consumer (~200ns/op) frees ~100 slots per park, so a
	// handful of parks beats one seal-drain-reopen; the worst case before
	// the locked fallback is ~1.1ms, acceptable for the only case that
	// reaches it — a consumer that is genuinely absent, for which the
	// locked path (parking, MaxDepth, alerting) is the right home anyway.
	ringYieldSleep = 20 * time.Microsecond
)

// ringStatus is the outcome of a pop attempt.
type ringStatus int

const (
	// ringOK: an element was dequeued into *out.
	ringOK ringStatus = iota
	// ringEmpty: the ring was observed empty (enq == deq) — with the seal
	// invariant (fast mode ⇒ locked lists empty) this means queue-empty.
	ringEmpty
	// ringInflight: a producer has claimed a position but not yet
	// published the element. The caller should yield and retry; it must
	// NOT report empty, because the enqueue already linearized.
	ringInflight
)

// rslot is one element cell. seq carries both the handshake state and the
// cycle (see protocol above); el is written only by the slot's current
// owner, ordered by seq.
type rslot struct {
	seq atomic.Uint64
	el  Element
}

// rseg is one lazily-allocated, in-place-recycled segment.
type rseg struct {
	slots [ringSegSlots]rslot
}

// ring is the bounded MPMC queue. Zero value is NOT usable; use newRing.
type ring struct {
	enq  atomic.Uint64 // next position to enqueue
	deq  atomic.Uint64 // next position to dequeue
	segs [ringMaxSegs]atomic.Pointer[rseg]
}

func newRing() *ring {
	return &ring{}
}

// segFor returns the segment for position pos, allocating it on first
// touch. Lazy allocation is only ever needed in cycle 0 (positions advance
// sequentially, so segment i is first touched at position i*ringSegSlots),
// which is why initializing slot j of segment i with seq = i*ringSegSlots+j
// is always correct. CAS losers let their allocation be collected.
func (r *ring) segFor(pos uint64) *rseg {
	i := (pos / ringSegSlots) % ringMaxSegs
	if seg := r.segs[i].Load(); seg != nil {
		return seg
	}
	seg := new(rseg)
	base := i * ringSegSlots
	for j := range seg.slots {
		seg.slots[j].seq.Store(base + uint64(j))
	}
	if r.segs[i].CompareAndSwap(nil, seg) {
		return seg
	}
	return r.segs[i].Load()
}

// push enqueues *e, returning false if the ring is full (a producer lapped
// a slow consumer). On success the element has been copied; the caller's
// copy may be reused.
func (r *ring) push(e *Element) bool {
	for {
		pos := r.enq.Load()
		seg := r.segFor(pos)
		s := &seg.slots[pos%ringSegSlots]
		seq := s.seq.Load()
		if seq != pos {
			if r.enq.Load() != pos {
				continue // raced with another producer; re-read cursor
			}
			// seq < pos: the slot still belongs to a previous cycle's
			// consumer — we have wrapped all the way around. Full.
			return false
		}
		if !r.enq.CompareAndSwap(pos, pos+1) {
			continue
		}
		s.el = *e
		s.seq.Store(pos + 1) // release: publish element to consumer
		return true
	}
}

// pop dequeues into *out. See ringStatus for the three outcomes.
func (r *ring) pop(out *Element) ringStatus {
	for {
		pos := r.deq.Load()
		i := (pos / ringSegSlots) % ringMaxSegs
		seg := r.segs[i].Load()
		if seg == nil {
			// Segment never touched ⇒ no producer has reached pos yet.
			if r.enq.Load() == pos {
				return ringEmpty
			}
			continue
		}
		s := &seg.slots[pos%ringSegSlots]
		seq := s.seq.Load() // acquire: pairs with producer's publish
		switch {
		case seq == pos+1:
			if !r.deq.CompareAndSwap(pos, pos+1) {
				continue
			}
			*out = s.el
			s.el = Element{}                // drop references for GC
			s.seq.Store(pos + ringCap)      // release slot to next cycle
			return ringOK
		case seq <= pos:
			// Slot not yet published for this position.
			if r.enq.Load() == pos {
				return ringEmpty
			}
			// An enqueue linearized (enq > deq) but its element is not
			// visible yet — in-flight producer between CAS and publish.
			return ringInflight
		default:
			// seq > pos+1: another consumer already took pos; re-read.
			continue
		}
	}
}

// len reports an instantaneous (racy) element count, for stats merging.
func (r *ring) len() int {
	e, d := r.enq.Load(), r.deq.Load()
	if e <= d {
		return 0
	}
	return int(e - d)
}
