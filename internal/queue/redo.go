package queue

import (
	"fmt"

	"repro/internal/enc"
	"repro/internal/txn"
)

// Redo op kinds, the first byte of every queue-manager redo record.
const (
	opEnqueue       uint8 = 1
	opDequeue       uint8 = 2
	opKill          uint8 = 3
	opAbortReturn   uint8 = 4
	opCreateQueue   uint8 = 5
	opDestroyQueue  uint8 = 6
	opRegister      uint8 = 7
	opDeregister    uint8 = 8
	opSetStopped    uint8 = 9
	opKVSet         uint8 = 10
	opKVDel         uint8 = 11
	opTriggerCreate uint8 = 12
	opTriggerFire   uint8 = 13
	opUpdateQueue   uint8 = 14
)

// RMName implements txn.ResourceManager.
func (r *Repository) RMName() string { return rmName }

// Redo re-applies one committed operation at recovery. Operations replay
// in original commit order, so every precondition (queue exists, element
// exists) holds by construction; violations indicate a corrupt log and are
// reported.
func (r *Repository) Redo(data []byte) error {
	rd := enc.NewReader(data)
	kind := rd.Uint8()
	if err := rd.Err(); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	switch kind {
	case opEnqueue:
		e, err := decodeElement(rd)
		if err != nil {
			return err
		}
		registrant := rd.String()
		tag := rd.BytesField()
		regQueue := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		qs, ok := r.queues[e.Queue]
		if !ok {
			return fmt.Errorf("queue: redo enqueue into missing queue %s", e.Queue)
		}
		el := &elem{e: e, state: stateVisible, q: qs}
		qs.insert(el)
		qs.bumpDepth(1)
		qs.countEnqueue()
		r.elems[e.EID] = el
		if uint64(e.EID) >= r.nextEID {
			r.nextEID = uint64(e.EID) + 1
		}
		if e.seq >= r.nextSeq {
			r.nextSeq = e.seq + 1
		}
		r.redoRegUpdateLocked(regQueue, registrant, OpEnqueue, e.EID, tag, marshalElement(&e))
		return nil

	case opDequeue:
		_ = rd.String() // element's queue (diagnostic)
		eid := EID(rd.Uvarint())
		regQueue := rd.String()
		registrant := rd.String()
		tag := rd.BytesField()
		regCopy := rd.BytesField()
		if err := rd.Err(); err != nil {
			return err
		}
		el, ok := r.elems[eid]
		if !ok {
			return fmt.Errorf("queue: redo dequeue of missing element %d", eid)
		}
		el.q.remove(el)
		el.q.bumpDepth(-1)
		el.q.countDequeue()
		delete(r.elems, eid)
		if len(regCopy) == 0 {
			regCopy = nil
		}
		r.redoRegUpdateLocked(regQueue, registrant, OpDequeue, eid, tag, regCopy)
		return nil

	case opKill:
		eid := EID(rd.Uvarint())
		if err := rd.Err(); err != nil {
			return err
		}
		if el, ok := r.elems[eid]; ok {
			el.q.remove(el)
			if el.state == stateVisible {
				el.q.bumpDepth(-1)
			}
			el.q.countKill()
			delete(r.elems, eid)
		}
		return nil

	case opAbortReturn:
		eid := EID(rd.Uvarint())
		count := int32(rd.Varint())
		movedTo := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		el, ok := r.elems[eid]
		if !ok {
			return nil // element since consumed; count no longer matters
		}
		el.e.AbortCount = count
		if movedTo != "" && el.e.Queue != movedTo {
			if eqs, ok := r.queues[movedTo]; ok {
				el.q.remove(el)
				if el.state == stateVisible {
					el.q.bumpDepth(-1)
				}
				el.q.countDiversion()
				el.e.Queue = movedTo
				el.e.AbortCode = fmt.Sprintf("aborted %d times", count)
				el.q = eqs
				eqs.insert(el)
				if el.state == stateVisible {
					eqs.bumpDepth(1)
				}
			}
		}
		return nil

	case opCreateQueue:
		cfg := decodeConfig(rd)
		if err := rd.Err(); err != nil {
			return err
		}
		if _, ok := r.queues[cfg.Name]; ok {
			return fmt.Errorf("queue: redo create of existing queue %s", cfg.Name)
		}
		r.queues[cfg.Name] = r.newQueueState(cfg)
		return nil

	case opDestroyQueue:
		name := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		qs, ok := r.queues[name]
		if !ok {
			return nil
		}
		for _, l := range qs.lists {
			for n := l.Front(); n != nil; n = n.Next() {
				delete(r.elems, n.Value.(*elem).e.EID)
			}
		}
		delete(r.queues, name)
		qs.m.depth.Add(-int64(qs.stats.Depth))
		return nil

	case opRegister:
		qname := rd.String()
		registrant := rd.String()
		stable := rd.Bool()
		if err := rd.Err(); err != nil {
			return err
		}
		k := regKey{queue: qname, registrant: registrant}
		if _, ok := r.regs[k]; !ok {
			r.regs[k] = &registration{key: k, stable: stable}
		}
		return nil

	case opDeregister:
		qname := rd.String()
		registrant := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		delete(r.regs, regKey{queue: qname, registrant: registrant})
		return nil

	case opSetStopped:
		name := rd.String()
		stopped := rd.Bool()
		if err := rd.Err(); err != nil {
			return err
		}
		if qs, ok := r.queues[name]; ok {
			qs.stopped = stopped
		}
		return nil

	case opKVSet:
		table := rd.String()
		key := rd.String()
		value := rd.BytesField()
		if err := rd.Err(); err != nil {
			return err
		}
		tbl, ok := r.tables[table]
		if !ok {
			tbl = make(map[string][]byte)
			r.tables[table] = tbl
		}
		tbl[key] = value
		return nil

	case opKVDel:
		table := rd.String()
		key := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		delete(r.tables[table], key)
		return nil

	case opTriggerCreate:
		tr := &trigger{}
		tr.id = rd.String()
		tr.watch = rd.String()
		tr.threshold = int32(rd.Varint())
		e, err := decodeElement(rd)
		if err != nil {
			return err
		}
		tr.fire = e
		r.triggers[tr.id] = tr
		return nil

	case opTriggerFire:
		id := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		delete(r.triggers, id)
		return nil

	case opUpdateQueue:
		cfg := decodeConfig(rd)
		if err := rd.Err(); err != nil {
			return err
		}
		if qs, ok := r.queues[cfg.Name]; ok {
			cfg.Volatile = qs.cfg.Volatile
			qs.cfg = cfg
		}
		return nil

	default:
		return fmt.Errorf("queue: unknown redo op %d", kind)
	}
}

// redoRegUpdateLocked applies a tagged-operation update during replay.
func (r *Repository) redoRegUpdateLocked(qname, registrant string, op OpType, eid EID, tag, elemCopy []byte) {
	if registrant == "" {
		return
	}
	g, ok := r.regs[regKey{queue: qname, registrant: registrant}]
	if !ok || !g.stable {
		return
	}
	g.hasLast = true
	g.lastOp = op
	g.lastEID = eid
	g.lastTag = tag
	if elemCopy != nil {
		g.lastElem = elemCopy
	}
}

// RedoPrepared re-applies an in-doubt operation as uncommitted state inside
// t, re-acquiring the element's claim and re-registering undo/commit
// behaviour exactly as the original execution did.
func (r *Repository) RedoPrepared(t *txn.Txn, data []byte) error {
	rd := enc.NewReader(data)
	kind := rd.Uint8()
	if err := rd.Err(); err != nil {
		return err
	}
	switch kind {
	case opEnqueue:
		e, err := decodeElement(rd)
		if err != nil {
			return err
		}
		registrant := rd.String()
		tag := rd.BytesField()
		regQueue := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		qs, ok := r.queues[e.Queue]
		if !ok {
			return fmt.Errorf("queue: redo-prepared enqueue into missing queue %s", e.Queue)
		}
		el := &elem{e: e, state: statePending, owner: t, q: qs}
		qs.insert(el)
		r.elems[e.EID] = el
		if uint64(e.EID) >= r.nextEID {
			r.nextEID = uint64(e.EID) + 1
		}
		if e.seq >= r.nextSeq {
			r.nextSeq = e.seq + 1
		}
		var regCopy []byte
		if registrant != "" {
			if g, ok := r.regs[regKey{queue: regQueue, registrant: registrant}]; ok && g.stable {
				regCopy = marshalElement(&e)
			}
		}
		r.updateRegLocked(t, regQueue, registrant, OpEnqueue, e.EID, tag, regCopy)
		t.OnUndo(func() {
			r.mu.Lock()
			qs.remove(el)
			delete(r.elems, el.e.EID)
			r.mu.Unlock()
		})
		t.OnCommit(func() {
			r.mu.Lock()
			el.state = stateVisible
			el.owner = nil
			qs.bumpDepth(1)
			qs.countEnqueue()
			r.cond.Broadcast()
			r.mu.Unlock()
		})
		return nil

	case opDequeue:
		_ = rd.String()
		eid := EID(rd.Uvarint())
		regQueue := rd.String()
		registrant := rd.String()
		tag := rd.BytesField()
		_ = rd.BytesField() // regCopy recomputed by claimLocked
		if err := rd.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		el, ok := r.elems[eid]
		if !ok || el.state != stateVisible {
			return fmt.Errorf("queue: redo-prepared dequeue of unavailable element %d", eid)
		}
		r.claimLocked(t, el, regQueue, registrant, tag)
		return nil

	default:
		// Other ops never appear in prepared (2PC) transactions: prepare is
		// used only by the distributed dequeue/enqueue path.
		return fmt.Errorf("queue: unexpected prepared op %d", kind)
	}
}

// --- triggers (Section 6 fork/join) ---

// CreateTrigger installs a trigger: when watch's visible depth reaches
// threshold, fire is enqueued into fire.Queue and the trigger is removed.
// If the condition already holds, the trigger fires immediately.
func (r *Repository) CreateTrigger(id, watch string, threshold int32, fire Element) error {
	var fireNow *trigger
	err := r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		if _, ok := r.queues[watch]; !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, watch)
		}
		if _, ok := r.queues[fire.Queue]; !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, fire.Queue)
		}
		tr := &trigger{id: id, watch: watch, threshold: threshold, fire: fire.clone()}
		r.triggers[id] = tr
		t.OnUndo(func() {
			r.mu.Lock()
			delete(r.triggers, id)
			r.mu.Unlock()
		})
		b := enc.NewBuffer(64)
		b.Uint8(opTriggerCreate)
		b.String(id)
		b.String(watch)
		b.Varint(int64(threshold))
		encodeElement(b, &tr.fire)
		r.logOpLocked(t, b.Bytes())
		if r.queues[watch].stats.Depth >= int(threshold) {
			fireNow = tr
		}
		return nil
	})
	if err != nil {
		return err
	}
	if fireNow != nil {
		go r.fireTrigger(fireNow)
	}
	return nil
}

// Triggers lists installed trigger ids.
func (r *Repository) Triggers() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.triggers))
	for id := range r.triggers {
		out = append(out, id)
	}
	return out
}

// dueTriggersLocked collects triggers whose condition now holds on qname,
// marking them so each fires once. Caller holds r.mu.
func (r *Repository) dueTriggersLocked(qname string) []*trigger {
	var due []*trigger
	for id, tr := range r.triggers {
		if tr.watch != qname {
			continue
		}
		qs := r.queues[qname]
		if qs != nil && qs.stats.Depth >= int(tr.threshold) {
			due = append(due, tr)
			delete(r.triggers, id) // claimed; durable removal in fireTrigger
		}
	}
	return due
}

// fireTrigger durably fires a claimed trigger: one system transaction
// removes the trigger and enqueues its element.
func (r *Repository) fireTrigger(tr *trigger) {
	st := r.tm.Begin()
	b := enc.NewBuffer(16)
	b.Uint8(opTriggerFire)
	b.String(tr.id)
	st.LogOp(rmName, b.Bytes())
	if _, err := r.Enqueue(st, tr.fire.Queue, tr.fire, "", nil); err != nil {
		_ = st.Abort()
		// Re-install so the trigger is not lost.
		r.mu.Lock()
		r.triggers[tr.id] = tr
		r.mu.Unlock()
		return
	}
	_ = st.Commit()
}

// RecheckTriggers evaluates all triggers against current depths; Open's
// caller uses it after recovery in case a trigger's condition was already
// met before a crash.
func (r *Repository) RecheckTriggers() {
	r.mu.Lock()
	var due []*trigger
	for id, tr := range r.triggers {
		qs := r.queues[tr.watch]
		if qs != nil && qs.stats.Depth >= int(tr.threshold) {
			due = append(due, tr)
			delete(r.triggers, id)
		}
	}
	r.mu.Unlock()
	for _, tr := range due {
		r.fireTrigger(tr)
	}
}
