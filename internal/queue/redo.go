package queue

import (
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/enc"
	"repro/internal/obs/trace"
	"repro/internal/txn"
)

// Redo op kinds, the first byte of every queue-manager redo record.
const (
	opEnqueue       uint8 = 1
	opDequeue       uint8 = 2
	opKill          uint8 = 3
	opAbortReturn   uint8 = 4
	opCreateQueue   uint8 = 5
	opDestroyQueue  uint8 = 6
	opRegister      uint8 = 7
	opDeregister    uint8 = 8
	opSetStopped    uint8 = 9
	opKVSet         uint8 = 10
	opKVDel         uint8 = 11
	opTriggerCreate uint8 = 12
	opTriggerFire   uint8 = 13
	opUpdateQueue   uint8 = 14
)

// RMName implements txn.ResourceManager.
func (r *Repository) RMName() string { return rmName }

// raiseFloor lifts an atomic counter to at least min (CAS max; recovery
// replays concurrently-allocated ids in commit order).
func raiseFloor(a *atomic.Uint64, min uint64) {
	for {
		cur := a.Load()
		if cur >= min {
			return
		}
		if a.CompareAndSwap(cur, min) {
			return
		}
	}
}

// lockedQueue looks up a queue by name and returns it with its shard lock
// held (nil if absent). Replay-path helper; follows the repo→shard order.
func (r *Repository) lockedQueue(name string) *queueState {
	r.mu.RLock()
	qs, ok := r.queues[name]
	if !ok {
		r.mu.RUnlock()
		return nil
	}
	qs.lock()
	r.mu.RUnlock()
	// Replay mutates the locked lists directly; recovery-time rings are
	// empty, so this only closes the fast gate until normal traffic
	// reopens it.
	qs.sealFastLocked()
	return qs
}

// Redo re-applies one committed operation at recovery. Operations replay
// in original commit order, so every precondition (queue exists, element
// exists) holds by construction; violations indicate a corrupt log and are
// reported. Replay is single-threaded, but it takes the same fine-grained
// locks as live traffic so the invariants hold uniformly (and stay clean
// under the race detector in tests that replay concurrently with reads).
func (r *Repository) Redo(data []byte) error {
	rd := enc.NewReader(data)
	kind := rd.Uint8()
	if err := rd.Err(); err != nil {
		return err
	}
	switch kind {
	case opEnqueue:
		e, err := decodeElement(rd)
		if err != nil {
			return err
		}
		registrant := rd.String()
		tag := rd.BytesField()
		regQueue := rd.String()
		decodeTraceTail(rd, &e) // absent on pre-trace records
		if err := rd.Err(); err != nil {
			return err
		}
		// The element is reconstructed by recovery: it resumes its
		// original trace, and any server that dequeues it is
		// re-executing the request after a crash.
		e.Redelivered = true
		qs := r.lockedQueue(e.Queue)
		if qs == nil {
			return fmt.Errorf("queue: redo enqueue into missing queue %s", e.Queue)
		}
		el := &elem{e: e, state: stateVisible}
		if r.tracer.Enabled() && !e.Trace.IsZero() {
			now := time.Now()
			el.visibleAt = now.UnixNano()
			r.tracer.RecordAt(e.TraceRef(), "replay", now, now,
				trace.Str("queue", e.Queue), trace.Int64("eid", int64(e.EID)))
		}
		el.q.Store(qs)
		qs.insert(el)
		qs.bumpDepth(1)
		qs.countEnqueue()
		qs.unlock()
		r.elems.put(e.EID, el)
		raiseFloor(&r.nextEID, uint64(e.EID)+1)
		raiseFloor(&r.nextSeq, e.seq+1)
		r.redoRegUpdate(regQueue, registrant, OpEnqueue, e.EID, tag, marshalElement(&e))
		return nil

	case opDequeue:
		_ = rd.String() // element's queue (diagnostic)
		eid := EID(rd.Uvarint())
		regQueue := rd.String()
		registrant := rd.String()
		tag := rd.BytesField()
		regCopy := rd.BytesField()
		if err := rd.Err(); err != nil {
			return err
		}
		el, ok := r.elems.get(eid)
		if !ok {
			return fmt.Errorf("queue: redo dequeue of missing element %d", eid)
		}
		qs := r.lockElem(el)
		if qs == nil {
			return fmt.Errorf("queue: redo dequeue of missing element %d", eid)
		}
		qs.remove(el)
		qs.bumpDepth(-1)
		qs.countDequeue()
		qs.unlock()
		r.elems.del(eid)
		if len(regCopy) == 0 {
			regCopy = nil
		}
		r.redoRegUpdate(regQueue, registrant, OpDequeue, eid, tag, regCopy)
		return nil

	case opKill:
		eid := EID(rd.Uvarint())
		if err := rd.Err(); err != nil {
			return err
		}
		if el, ok := r.elems.get(eid); ok {
			if qs := r.lockElem(el); qs != nil {
				qs.remove(el)
				if el.state == stateVisible {
					qs.bumpDepth(-1)
				}
				qs.countKill()
				qs.unlock()
			}
			r.elems.del(eid)
		}
		return nil

	case opAbortReturn:
		eid := EID(rd.Uvarint())
		count := int32(rd.Varint())
		movedTo := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		el, ok := r.elems.get(eid)
		if !ok {
			return nil // element since consumed; count no longer matters
		}
		r.mu.RLock()
		qs := el.q.Load()
		var eqs *queueState
		if movedTo != "" && el.e.Queue != movedTo {
			eqs = r.queues[movedTo]
		}
		lockPair(qs, eqs)
		r.mu.RUnlock()
		el.e.AbortCount = count
		if eqs != nil && eqs != qs {
			qs.remove(el)
			if el.state == stateVisible {
				qs.bumpDepth(-1)
			}
			qs.countDiversion()
			el.e.Queue = movedTo
			el.e.AbortCode = fmt.Sprintf("aborted %d times", count)
			el.q.Store(eqs)
			eqs.insert(el)
			if el.state == stateVisible {
				eqs.bumpDepth(1)
			}
		}
		unlockPair(qs, eqs)
		return nil

	case opCreateQueue:
		cfg := decodeConfig(rd)
		if err := rd.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if _, ok := r.queues[cfg.Name]; ok {
			return fmt.Errorf("queue: redo create of existing queue %s", cfg.Name)
		}
		r.queues[cfg.Name] = r.newQueueState(cfg)
		return nil

	case opDestroyQueue:
		name := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		qs, ok := r.queues[name]
		if !ok {
			return nil
		}
		qs.lock()
		var eids []EID
		for _, l := range qs.lists {
			for n := l.Front(); n != nil; n = n.Next() {
				eids = append(eids, n.Value.(*elem).e.EID)
			}
		}
		delete(r.queues, name)
		qs.dead = true
		qs.m.depth.Add(-int64(qs.stats.Depth))
		qs.unlock()
		for _, eid := range eids {
			r.elems.del(eid)
		}
		return nil

	case opRegister:
		qname := rd.String()
		registrant := rd.String()
		stable := rd.Bool()
		if err := rd.Err(); err != nil {
			return err
		}
		k := regKey{queue: qname, registrant: registrant}
		r.regMu.Lock()
		if _, ok := r.regs[k]; !ok {
			r.regs[k] = &registration{key: k, stable: stable}
		}
		r.regMu.Unlock()
		return nil

	case opDeregister:
		qname := rd.String()
		registrant := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		r.regMu.Lock()
		delete(r.regs, regKey{queue: qname, registrant: registrant})
		r.regMu.Unlock()
		return nil

	case opSetStopped:
		name := rd.String()
		stopped := rd.Bool()
		if err := rd.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if qs, ok := r.queues[name]; ok {
			qs.lock()
			qs.stopped = stopped
			qs.unlock()
		}
		return nil

	case opKVSet:
		table := rd.String()
		key := rd.String()
		value := rd.BytesField()
		if err := rd.Err(); err != nil {
			return err
		}
		r.kvMu.Lock()
		tbl, ok := r.tables[table]
		if !ok {
			tbl = make(map[string][]byte)
			r.tables[table] = tbl
		}
		tbl[key] = value
		r.kvMu.Unlock()
		return nil

	case opKVDel:
		table := rd.String()
		key := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		r.kvMu.Lock()
		delete(r.tables[table], key)
		r.kvMu.Unlock()
		return nil

	case opTriggerCreate:
		tr := &trigger{}
		tr.id = rd.String()
		tr.watch = rd.String()
		tr.threshold = int32(rd.Varint())
		e, err := decodeElement(rd)
		if err != nil {
			return err
		}
		tr.fire = e
		r.trigMu.Lock()
		r.triggers[tr.id] = tr
		r.syncTrigCount()
		r.trigMu.Unlock()
		return nil

	case opTriggerFire:
		id := rd.String()
		if err := rd.Err(); err != nil {
			return err
		}
		r.trigMu.Lock()
		delete(r.triggers, id)
		r.syncTrigCount()
		r.trigMu.Unlock()
		return nil

	case opUpdateQueue:
		cfg := decodeConfig(rd)
		if err := rd.Err(); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if qs, ok := r.queues[cfg.Name]; ok {
			qs.lock()
			cfg.Volatile = qs.cfg.Volatile
			qs.cfg = cfg
			qs.unlock()
		}
		return nil

	default:
		return fmt.Errorf("queue: unknown redo op %d", kind)
	}
}

// redoRegUpdate applies a tagged-operation update during replay.
func (r *Repository) redoRegUpdate(qname, registrant string, op OpType, eid EID, tag, elemCopy []byte) {
	if registrant == "" {
		return
	}
	r.regMu.Lock()
	defer r.regMu.Unlock()
	g, ok := r.regs[regKey{queue: qname, registrant: registrant}]
	if !ok || !g.stable {
		return
	}
	g.hasLast = true
	g.lastOp = op
	g.lastEID = eid
	g.lastTag = tag
	if elemCopy != nil {
		g.lastElem = elemCopy
	}
}

// RedoPrepared re-applies an in-doubt operation as uncommitted state inside
// t, re-acquiring the element's claim and re-registering undo/commit
// behaviour exactly as the original execution did.
func (r *Repository) RedoPrepared(t *txn.Txn, data []byte) error {
	rd := enc.NewReader(data)
	kind := rd.Uint8()
	if err := rd.Err(); err != nil {
		return err
	}
	switch kind {
	case opEnqueue:
		e, err := decodeElement(rd)
		if err != nil {
			return err
		}
		registrant := rd.String()
		tag := rd.BytesField()
		regQueue := rd.String()
		decodeTraceTail(rd, &e)
		if err := rd.Err(); err != nil {
			return err
		}
		e.Redelivered = true
		qs := r.lockedQueue(e.Queue)
		if qs == nil {
			return fmt.Errorf("queue: redo-prepared enqueue into missing queue %s", e.Queue)
		}
		el := &elem{e: e, state: statePending, owner: t}
		el.q.Store(qs)
		qs.insert(el)
		qs.unlock()
		r.elems.put(e.EID, el)
		raiseFloor(&r.nextEID, uint64(e.EID)+1)
		raiseFloor(&r.nextSeq, e.seq+1)
		r.updateReg(t, regQueue, registrant, OpEnqueue, e.EID, tag, &e)
		t.OnUndo(func() {
			qs.lock()
			qs.remove(el)
			qs.unlock()
			r.elems.del(el.e.EID)
		})
		t.OnCommit(func() {
			qs.lock()
			el.state = stateVisible
			el.owner = nil
			qs.bumpDepth(1)
			qs.countEnqueue()
			qs.notifyLocked()
			qs.unlock()
		})
		return nil

	case opDequeue:
		_ = rd.String()
		eid := EID(rd.Uvarint())
		regQueue := rd.String()
		registrant := rd.String()
		tag := rd.BytesField()
		_ = rd.BytesField() // regCopy recomputed by wireClaim
		if err := rd.Err(); err != nil {
			return err
		}
		el, ok := r.elems.get(eid)
		if !ok {
			return fmt.Errorf("queue: redo-prepared dequeue of unavailable element %d", eid)
		}
		qs := r.lockElem(el)
		if qs == nil || el.state != stateVisible {
			if qs != nil {
				qs.unlock()
			}
			return fmt.Errorf("queue: redo-prepared dequeue of unavailable element %d", eid)
		}
		claimShardLocked(qs, el, t)
		qs.unlock()
		r.wireClaim(t, el, regQueue, registrant, tag)
		return nil

	default:
		// Other ops never appear in prepared (2PC) transactions: prepare is
		// used only by the distributed dequeue/enqueue path.
		return fmt.Errorf("queue: unexpected prepared op %d", kind)
	}
}

// --- triggers (Section 6 fork/join) ---

// CreateTrigger installs a trigger: when watch's visible depth reaches
// threshold, fire is enqueued into fire.Queue and the trigger is removed.
// If the condition already holds, the trigger fires immediately.
func (r *Repository) CreateTrigger(id, watch string, threshold int32, fire Element) error {
	var fireNow *trigger
	err := r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return ErrClosed
		}
		if _, ok := r.queues[watch]; !ok {
			r.mu.RUnlock()
			return fmt.Errorf("%w: %s", ErrNoQueue, watch)
		}
		if _, ok := r.queues[fire.Queue]; !ok {
			r.mu.RUnlock()
			return fmt.Errorf("%w: %s", ErrNoQueue, fire.Queue)
		}
		depthGauge := r.queues[watch].m.depth
		r.mu.RUnlock()
		tr := &trigger{id: id, watch: watch, threshold: threshold, fire: fire.clone()}
		r.trigMu.Lock()
		r.triggers[id] = tr
		r.syncTrigCount()
		r.trigMu.Unlock()
		t.OnUndo(func() {
			r.trigMu.Lock()
			delete(r.triggers, id)
			r.syncTrigCount()
			r.trigMu.Unlock()
		})
		// Read the watch depth only after the trigger and its count are
		// published: a concurrent lock-free enqueue either observes the
		// count (and re-evaluates triggers itself) or its depth bump is
		// sequenced before this read — either way the condition is
		// checked against a depth that includes it.
		watchDepth := int(depthGauge.Value())
		b := enc.NewBuffer(64)
		b.Uint8(opTriggerCreate)
		b.String(id)
		b.String(watch)
		b.Varint(int64(threshold))
		encodeElement(b, &tr.fire)
		r.logOp(t, b.Bytes())
		if watchDepth >= int(threshold) {
			fireNow = tr
		}
		return nil
	})
	if err != nil {
		return err
	}
	if fireNow != nil {
		// Claim it (dueTriggers may have raced us) before firing.
		r.trigMu.Lock()
		_, ok := r.triggers[fireNow.id]
		if ok {
			delete(r.triggers, fireNow.id)
			r.syncTrigCount()
		}
		r.trigMu.Unlock()
		if ok {
			go r.fireTrigger(fireNow)
		}
	}
	return nil
}

// Triggers lists installed trigger ids.
func (r *Repository) Triggers() []string {
	r.trigMu.Lock()
	defer r.trigMu.Unlock()
	out := make([]string, 0, len(r.triggers))
	for id := range r.triggers {
		out = append(out, id)
	}
	return out
}

// dueTriggers collects triggers whose condition now holds on qname, given
// its visible depth at commit time, marking them so each fires once.
// Called with no shard lock held (trigMu is a leaf lock).
func (r *Repository) dueTriggers(qname string, depth int) []*trigger {
	r.trigMu.Lock()
	defer r.trigMu.Unlock()
	var due []*trigger
	for id, tr := range r.triggers {
		if tr.watch != qname {
			continue
		}
		if depth >= int(tr.threshold) {
			due = append(due, tr)
			delete(r.triggers, id) // claimed; durable removal in fireTrigger
		}
	}
	r.syncTrigCount()
	return due
}

// fireTrigger durably fires a claimed trigger: one system transaction
// removes the trigger and enqueues its element.
func (r *Repository) fireTrigger(tr *trigger) {
	st := r.tm.Begin()
	b := enc.NewBuffer(16)
	b.Uint8(opTriggerFire)
	b.String(tr.id)
	st.LogOp(rmName, b.Bytes())
	if _, err := r.Enqueue(st, tr.fire.Queue, tr.fire, "", nil); err != nil {
		_ = st.Abort()
		// Re-install so the trigger is not lost.
		r.trigMu.Lock()
		r.triggers[tr.id] = tr
		r.syncTrigCount()
		r.trigMu.Unlock()
		return
	}
	_ = st.Commit()
}

// RecheckTriggers evaluates all triggers against current depths; Open's
// caller uses it after recovery in case a trigger's condition was already
// met before a crash. Candidates are collected first, then re-claimed one
// at a time (depth reads take the repo read lock, which must not nest
// inside trigMu).
func (r *Repository) RecheckTriggers() {
	r.trigMu.Lock()
	cands := make([]*trigger, 0, len(r.triggers))
	for _, tr := range r.triggers {
		cands = append(cands, tr)
	}
	r.trigMu.Unlock()
	var due []*trigger
	for _, tr := range cands {
		d, err := r.Depth(tr.watch)
		if err != nil || d < int(tr.threshold) {
			continue
		}
		r.trigMu.Lock()
		if _, ok := r.triggers[tr.id]; ok {
			delete(r.triggers, tr.id)
			r.syncTrigCount()
			due = append(due, tr)
		}
		r.trigMu.Unlock()
	}
	for _, tr := range due {
		r.fireTrigger(tr)
	}
}
