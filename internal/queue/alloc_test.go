package queue

// Allocation regressions on the volatile fast path. The ring path exists
// to make auto-commit volatile traffic allocation-free: an Element with
// nil Body/Headers/ScratchPad moves through enqueue and dequeue without a
// single heap allocation once the ring's lazily-allocated segments have
// been touched. Pinning it to exactly zero keeps accidental escapes (a
// fmt.Errorf on a hot return, a closure capturing the element) from
// creeping back in.

import (
	"context"
	"errors"
	"testing"
)

func TestVolatileFastPathZeroAlloc(t *testing.T) {
	r, _, err := Open(t.TempDir(), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateQueue(QueueConfig{Name: "v", Volatile: true}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// Walk the ring through a full cycle first: segments allocate lazily on
	// first touch, and that one-time cost is not what this test pins.
	for i := 0; i < ringCap+1; i++ {
		if _, err := r.Enqueue(nil, "v", Element{}, "", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Dequeue(ctx, nil, "v", "", DequeueOpts{}); err != nil {
			t.Fatal(err)
		}
	}
	avg := testing.AllocsPerRun(1000, func() {
		if _, err := r.Enqueue(nil, "v", Element{}, "", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Dequeue(ctx, nil, "v", "", DequeueOpts{}); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("volatile enqueue/dequeue pair allocates %.2f objects/op, want 0", avg)
	}
}

func TestVolatileFastPathEmptyPollZeroAlloc(t *testing.T) {
	r, _, err := Open(t.TempDir(), Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.CreateQueue(QueueConfig{Name: "v", Volatile: true}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	avg := testing.AllocsPerRun(1000, func() {
		_, err := r.Dequeue(ctx, nil, "v", "", DequeueOpts{})
		if !errors.Is(err, ErrEmpty) {
			t.Fatalf("want ErrEmpty, got %v", err)
		}
	})
	if avg != 0 {
		t.Fatalf("empty poll allocates %.2f objects/op, want 0", avg)
	}
}
