package queue

import (
	"container/list"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/txn"
)

// Concurrency control is striped per queue (see DESIGN.md §8). The lock
// order, outermost first, is:
//
//	r.mu (RWMutex over the queue map) → queueState.mu (two shards in
//	ascending name order) → elemTable stripe → regMu / trigMu / kvMu /
//	setWaiter.mu → alertMu
//
// The WAL is never appended to — and redo records are never staged —
// while a shard lock is held; transactions stage records after the shard
// critical section and the commit path orders them. r.mu is never
// acquired while holding a shard lock (an RWMutex blocks new readers
// once a writer waits, so shard→repo would deadlock against DDL).

// elemState tracks an element's transactional visibility.
type elemState int8

const (
	// statePending: enqueued by an uncommitted transaction; invisible.
	statePending elemState = iota
	// stateVisible: committed and available for dequeue.
	stateVisible
	// stateDequeued: removed by an uncommitted transaction; invisible to
	// dequeuers but still present (its committed state is "in the queue").
	stateDequeued
)

// elem is the in-memory representation of one element. All fields except
// q are guarded by the shard lock of the queue currently holding the
// element; q itself is atomic because error-queue diversion moves an
// element between shards and eid-addressed readers must chase it (see
// lockElem).
type elem struct {
	e      Element
	state  elemState
	owner  *txn.Txn // while pending or dequeued
	killed bool     // killed while dequeued; dropped on owner's abort
	node   *list.Element
	q      atomic.Pointer[queueState]

	// visibleAt is when (unix ns) the element, if traced, last became
	// visible — enqueue commit, abort return, or recovery — and anchors
	// the start of the queue-residency "dequeue" span. Zero for
	// untraced elements. An int64 rather than a time.Time to keep the
	// per-element footprint small.
	visibleAt int64
}

// queueState is one queue's in-memory structure — per-priority FIFO
// lists — plus its own latch and condition variable, so operations on
// disjoint queues never serialize and a visibility change wakes only
// this queue's waiters.
type queueState struct {
	name     string // immutable copy of cfg.Name (lock-free reads)
	volatile bool   // immutable copy of cfg.Volatile (lock-free reads)

	mu   sync.Mutex
	cond *sync.Cond // signaled on this queue's visibility changes
	// setWaiters are DequeueSet waiters subscribed to this queue; a
	// commit here fires only the sets that include this queue.
	setWaiters map[*setWaiter]struct{}
	dead       bool // destroyed; parked callers must re-resolve by name

	cfg     QueueConfig // writes hold r.mu (W) AND mu; reads hold either
	lists   map[int32]*list.List
	prios   []int32 // sorted descending
	stopped bool    // writes hold r.mu (W) AND mu; reads hold either
	stats   QueueStats
	m       qmetrics

	// mShardWait is the repository's shard-lock contention histogram
	// (shared across queues; see lock()).
	mShardWait *obs.Histogram
}

// lock acquires the shard latch, observing the wait only when contended
// (TryLock first keeps the uncontended fast path free of clock reads).
func (q *queueState) lock() {
	if q.mu.TryLock() {
		return
	}
	t0 := time.Now()
	q.mu.Lock()
	q.mShardWait.Observe(time.Since(t0).Nanoseconds())
}

func (q *queueState) unlock() { q.mu.Unlock() }

// notifyLocked wakes this queue's parked dequeuers and any queue-set
// waiters subscribed to it. Caller holds q.mu.
func (q *queueState) notifyLocked() {
	q.cond.Broadcast()
	for sw := range q.setWaiters {
		sw.fire()
	}
}

// lockPair locks one or two shards in ascending name order — the
// repository-wide two-shard order (error-queue diversion, abort-return
// replay). b may be nil or equal to a.
func lockPair(a, b *queueState) {
	if b == nil || b == a {
		a.lock()
		return
	}
	if b.name < a.name {
		a, b = b, a
	}
	a.lock()
	b.lock()
}

func unlockPair(a, b *queueState) {
	a.unlock()
	if b != nil && b != a {
		b.unlock()
	}
}

// setWaiter is a DequeueSet's wakeup token, registered on every member
// queue so that a commit on any one of them wakes the set — and nothing
// else does. fire is safe to call with shard locks held (setWaiter.mu is
// a leaf); wait is called with no locks held.
type setWaiter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	fired bool
}

func newSetWaiter() *setWaiter {
	w := &setWaiter{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *setWaiter) fire() {
	w.mu.Lock()
	w.fired = true
	w.cond.Signal()
	w.mu.Unlock()
}

// wait parks until the next fire. A fire that lands before wait is not
// lost: the fired flag stays set until consumed here.
func (w *setWaiter) wait() {
	w.mu.Lock()
	for !w.fired {
		w.cond.Wait()
	}
	w.fired = false
	w.mu.Unlock()
}

// elemTable is the eid → element index, striped so eid-addressed reads
// (Read, KillElement) and hot-path insert/delete don't share one lock.
const elemStripes = 64

type elemTable struct {
	stripes [elemStripes]elemStripe
}

type elemStripe struct {
	mu sync.Mutex
	m  map[EID]*elem
}

func newElemTable() *elemTable {
	t := &elemTable{}
	for i := range t.stripes {
		t.stripes[i].m = make(map[EID]*elem)
	}
	return t
}

func (t *elemTable) stripe(eid EID) *elemStripe {
	return &t.stripes[uint64(eid)%elemStripes]
}

func (t *elemTable) put(eid EID, el *elem) {
	s := t.stripe(eid)
	s.mu.Lock()
	s.m[eid] = el
	s.mu.Unlock()
}

func (t *elemTable) get(eid EID) (*elem, bool) {
	s := t.stripe(eid)
	s.mu.Lock()
	el, ok := s.m[eid]
	s.mu.Unlock()
	return el, ok
}

func (t *elemTable) del(eid EID) {
	s := t.stripe(eid)
	s.mu.Lock()
	delete(s.m, eid)
	s.mu.Unlock()
}

// lockElem locks the shard currently holding el, revalidating after each
// acquisition: an abort-time error diversion can move an element between
// queues, and DestroyQueue can drop its queue wholesale. Returns nil —
// with no lock held — when el is no longer live.
func (r *Repository) lockElem(el *elem) *queueState {
	for {
		qs := el.q.Load()
		qs.lock()
		if el.q.Load() == qs {
			if qs.dead || el.node == nil {
				qs.unlock()
				return nil
			}
			return qs
		}
		qs.unlock()
	}
}

// qmetrics holds the queue's registry instruments, resolved once at queue
// creation so the per-operation cost is a single atomic add. Every
// qs.stats bump is mirrored here; the stats struct stays the synchronous
// per-queue API while the registry gives the cross-layer labeled view.
type qmetrics struct {
	enqueues   *obs.Counter
	dequeues   *obs.Counter
	requeues   *obs.Counter // abort-returns back onto the queue
	kills      *obs.Counter
	diversions *obs.Counter // retry-limit diversions to the error queue
	depth      *obs.Gauge
	inFlight   *obs.Gauge
}

// newQueueState builds a queue's state with instruments labeled by queue
// name. Counters for a re-created queue continue from the prior
// incarnation's values (cumulative by design); the depth gauge is zeroed
// on destroy so it always reflects live visible depth.
func (r *Repository) newQueueState(cfg QueueConfig) *queueState {
	qs := &queueState{
		name:       cfg.Name,
		volatile:   cfg.Volatile,
		cfg:        cfg,
		lists:      make(map[int32]*list.List),
		setWaiters: make(map[*setWaiter]struct{}),
		mShardWait: r.mShardWait,
	}
	qs.cond = sync.NewCond(&qs.mu)
	qs.m = qmetrics{
		enqueues:   r.reg.Counter("queue.enqueues", "queue", cfg.Name),
		dequeues:   r.reg.Counter("queue.dequeues", "queue", cfg.Name),
		requeues:   r.reg.Counter("queue.requeues", "queue", cfg.Name),
		kills:      r.reg.Counter("queue.kills", "queue", cfg.Name),
		diversions: r.reg.Counter("queue.error_diversions", "queue", cfg.Name),
		depth:      r.reg.Gauge("queue.depth", "queue", cfg.Name),
		inFlight:   r.reg.Gauge("queue.in_flight", "queue", cfg.Name),
	}
	return qs
}

func (q *queueState) countEnqueue()   { q.stats.Enqueues++; q.m.enqueues.Inc() }
func (q *queueState) countDequeue()   { q.stats.Dequeues++; q.m.dequeues.Inc() }
func (q *queueState) countRequeue()   { q.stats.AbortReturns++; q.m.requeues.Inc() }
func (q *queueState) countKill()      { q.stats.Kills++; q.m.kills.Inc() }
func (q *queueState) countDiversion() { q.stats.ErrorDiversions++; q.m.diversions.Inc() }

func (q *queueState) bumpInFlight(delta int) {
	q.stats.InFlight += delta
	q.m.inFlight.Add(int64(delta))
}

func (q *queueState) listFor(prio int32) *list.List {
	l, ok := q.lists[prio]
	if !ok {
		l = list.New()
		q.lists[prio] = l
		q.prios = append(q.prios, prio)
		sort.Slice(q.prios, func(i, j int) bool { return q.prios[i] > q.prios[j] })
	}
	return l
}

// insert places el into FIFO position within its priority (ordered by seq,
// so recovery re-inserts in original order even when replay order differs).
func (q *queueState) insert(el *elem) {
	l := q.listFor(el.e.Priority)
	for n := l.Back(); n != nil; n = n.Prev() {
		if n.Value.(*elem).e.seq <= el.e.seq {
			el.node = l.InsertAfter(el, n)
			return
		}
	}
	el.node = l.PushFront(el)
}

func (q *queueState) remove(el *elem) {
	if el.node != nil {
		q.lists[el.e.Priority].Remove(el.node)
		el.node = nil
	}
}

// live counts elements in any state (pending, visible, dequeued).
func (q *queueState) live() int {
	n := 0
	for _, l := range q.lists {
		n += l.Len()
	}
	return n
}

func (q *queueState) bumpDepth(delta int) {
	q.stats.Depth += delta
	if q.stats.Depth > q.stats.MaxDepth {
		q.stats.MaxDepth = q.stats.Depth
	}
	q.m.depth.Add(int64(delta))
}
