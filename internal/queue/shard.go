package queue

import (
	"container/list"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/txn"
)

// Concurrency control is striped per queue (see DESIGN.md §8). The lock
// order, outermost first, is:
//
//	r.mu (RWMutex over the queue map) → queueState.mu (two shards in
//	ascending name order) → elemTable stripe → regMu / trigMu / kvMu /
//	setWaiter.mu → alertMu
//
// The WAL is never appended to — and redo records are never staged —
// while a shard lock is held; transactions stage records after the shard
// critical section and the commit path orders them. r.mu is never
// acquired while holding a shard lock (an RWMutex blocks new readers
// once a writer waits, so shard→repo would deadlock against DDL).

// elemState tracks an element's transactional visibility.
type elemState int8

const (
	// statePending: enqueued by an uncommitted transaction; invisible.
	statePending elemState = iota
	// stateVisible: committed and available for dequeue.
	stateVisible
	// stateDequeued: removed by an uncommitted transaction; invisible to
	// dequeuers but still present (its committed state is "in the queue").
	stateDequeued
)

// elem is the in-memory representation of one element. All fields except
// q are guarded by the shard lock of the queue currently holding the
// element; q itself is atomic because error-queue diversion moves an
// element between shards and eid-addressed readers must chase it (see
// lockElem).
type elem struct {
	e      Element
	state  elemState
	owner  *txn.Txn // while pending or dequeued
	killed bool     // killed while dequeued; dropped on owner's abort
	node   *list.Element
	q      atomic.Pointer[queueState]

	// visibleAt is when (unix ns) the element, if traced, last became
	// visible — enqueue commit, abort return, or recovery — and anchors
	// the start of the queue-residency "dequeue" span. Zero for
	// untraced elements. An int64 rather than a time.Time to keep the
	// per-element footprint small.
	visibleAt int64
}

// queueState is one queue's in-memory structure — per-priority FIFO
// lists — plus its own latch and condition variable, so operations on
// disjoint queues never serialize and a visibility change wakes only
// this queue's waiters.
type queueState struct {
	name     string // immutable copy of cfg.Name (lock-free reads)
	volatile bool   // immutable copy of cfg.Volatile (lock-free reads)

	mu   sync.Mutex
	cond *sync.Cond // signaled on this queue's visibility changes
	// setWaiters are DequeueSet waiters subscribed to this queue; a
	// commit here fires only the sets that include this queue.
	setWaiters map[*setWaiter]struct{}
	dead       bool // destroyed; parked callers must re-resolve by name

	// errEmpty is the queue's pre-wrapped ErrEmpty, built once so the
	// non-blocking dequeue poll loop doesn't pay fmt.Errorf per miss.
	errEmpty error

	cfg     QueueConfig // writes hold r.mu (W) AND mu; reads hold either
	lists   map[int32]*list.List
	prios   []int32 // sorted descending
	stopped bool    // writes hold r.mu (W) AND mu; reads hold either
	stats   QueueStats
	m       qmetrics

	// nwait counts dequeuers parked on cond (guarded by mu). The fast
	// path must stay sealed while anyone is parked, because ring enqueues
	// do not signal cond.
	nwait int

	// mShardWait is the repository's shard-lock contention histogram
	// (shared across queues; see lock()).
	mShardWait *obs.Histogram

	// --- lock-free volatile fast path (see ring.go and DESIGN.md §10) ---
	//
	// ring is non-nil iff the queue's config is ring-eligible (volatile,
	// non-strict-FIFO, unlimited depth, no alerts/redirect). fastMode
	// gates whether auto-commit unfiltered ops may use it; when true the
	// locked lists are empty, so ring-empty ⇒ queue-empty. Any operation
	// that needs the locked lists seals first (sealFastLocked): flips
	// fastMode off, waits out the fastOps in-flight gate, and drains ring
	// contents into the lists under mu. fastMode is re-enabled only at
	// quiescence (maybeReopenFastLocked).
	ring     *ring
	fastMode atomic.Bool
	fastOps  atomic.Int64 // in-flight ring ops (enter/exit gate)

	// Fast-path op accounting, merged into stats by Repository.Stats:
	// fastEnqs/fastDeqs count ring pushes/pops; fastDrained counts
	// elements moved ring→lists by seals (they re-enter locked Depth, so
	// the merge subtracts them from the fast-resident count).
	fastEnqs    atomic.Uint64
	fastDeqs    atomic.Uint64
	fastDrained atomic.Uint64

	// elems is the repository's eid index (fast enqueues don't register
	// there; sealing does — see sealFastLocked and drainFastResident).
	elems *elemTable
}

// ringEligible reports whether a config permits the lock-free fast path
// at all: volatile (never logged), no strict-FIFO blocking semantics, no
// depth limit or alert threshold to enforce per-op, and not a redirect
// source. Per-op gates (txn, priority, filters, waiters, triggers) are
// checked at the call sites in ops.go.
func ringEligible(cfg *QueueConfig) bool {
	return cfg.Volatile && !cfg.StrictFIFO && cfg.MaxDepth == 0 &&
		cfg.AlertThreshold == 0 && cfg.RedirectTo == ""
}

// enterFast joins the fast-path in-flight gate. On true the caller may
// operate on q.ring and must call exitFast when done; on false the queue
// is sealed (or sealing) and the caller must take the locked path. The
// re-check after the increment closes the race with a concurrent sealer:
// either the sealer sees our increment and waits, or we see its flip and
// back out.
func (q *queueState) enterFast() bool {
	if !q.fastMode.Load() {
		return false
	}
	q.fastOps.Add(1)
	if !q.fastMode.Load() {
		q.fastOps.Add(-1)
		return false
	}
	return true
}

func (q *queueState) exitFast() { q.fastOps.Add(-1) }

// sealFastLocked transitions the queue to locked mode: no new ring ops
// can start, in-flight ones are waited out, and ring contents are drained
// into the locked lists (registering each element in the eid index) so the
// caller sees the complete queue. Caller holds q.mu. Idempotent; cheap
// when already sealed or never opened.
func (q *queueState) sealFastLocked() {
	if q.ring == nil || !q.fastMode.Load() {
		return
	}
	q.fastMode.Store(false)
	for q.fastOps.Load() != 0 {
		runtime.Gosched()
	}
	var e Element
	for {
		switch q.ring.pop(&e) {
		case ringOK:
			el := &elem{e: e, state: stateVisible}
			el.q.Store(q)
			q.insert(el)
			q.elems.put(e.EID, el)
			// The enqueue was already counted (fastEnqs, m.depth); only
			// the locked-side Depth moves here, and fastDrained keeps the
			// Stats merge from counting the element twice.
			q.stats.Depth++
			q.fastDrained.Add(1)
		case ringEmpty:
			if q.stats.Depth > q.stats.MaxDepth {
				q.stats.MaxDepth = q.stats.Depth
			}
			return
		case ringInflight:
			// Unreachable after the gate drained, but harmless: yield and
			// re-pop rather than risk dropping a published element.
			runtime.Gosched()
		}
	}
}

// maybeReopenFastLocked re-enables the fast path when the queue is fully
// quiescent: configured eligible, alive, started, no parked dequeuers or
// set waiters (ring enqueues don't signal cond), and no live elements in
// the locked lists (preserving the fastMode ⇒ lists-empty invariant).
// Caller holds q.mu.
func (q *queueState) maybeReopenFastLocked() {
	if q.ring == nil || q.fastMode.Load() || q.dead || q.stopped {
		return
	}
	if q.nwait != 0 || len(q.setWaiters) != 0 {
		return
	}
	if !ringEligible(&q.cfg) || q.live() != 0 {
		return
	}
	q.fastMode.Store(true)
}

// lock acquires the shard latch, observing the wait only when contended
// (TryLock first keeps the uncontended fast path free of clock reads).
func (q *queueState) lock() {
	if q.mu.TryLock() {
		return
	}
	t0 := time.Now()
	q.mu.Lock()
	q.mShardWait.Observe(time.Since(t0).Nanoseconds())
}

func (q *queueState) unlock() { q.mu.Unlock() }

// notifyLocked wakes this queue's parked dequeuers and any queue-set
// waiters subscribed to it. Caller holds q.mu.
func (q *queueState) notifyLocked() {
	q.cond.Broadcast()
	for sw := range q.setWaiters {
		sw.fire()
	}
}

// lockPair locks one or two shards in ascending name order — the
// repository-wide two-shard order (error-queue diversion, abort-return
// replay). b may be nil or equal to a.
func lockPair(a, b *queueState) {
	if b == nil || b == a {
		a.lock()
		return
	}
	if b.name < a.name {
		a, b = b, a
	}
	a.lock()
	b.lock()
}

func unlockPair(a, b *queueState) {
	a.unlock()
	if b != nil && b != a {
		b.unlock()
	}
}

// setWaiter is a DequeueSet's wakeup token, registered on every member
// queue so that a commit on any one of them wakes the set — and nothing
// else does. fire is safe to call with shard locks held (setWaiter.mu is
// a leaf); wait is called with no locks held.
type setWaiter struct {
	mu    sync.Mutex
	cond  *sync.Cond
	fired bool
}

func newSetWaiter() *setWaiter {
	w := &setWaiter{}
	w.cond = sync.NewCond(&w.mu)
	return w
}

func (w *setWaiter) fire() {
	w.mu.Lock()
	w.fired = true
	w.cond.Signal()
	w.mu.Unlock()
}

// wait parks until the next fire. A fire that lands before wait is not
// lost: the fired flag stays set until consumed here.
func (w *setWaiter) wait() {
	w.mu.Lock()
	for !w.fired {
		w.cond.Wait()
	}
	w.fired = false
	w.mu.Unlock()
}

// elemTable is the eid → element index, striped so eid-addressed reads
// (Read, KillElement) and hot-path insert/delete don't share one lock.
const elemStripes = 64

type elemTable struct {
	stripes [elemStripes]elemStripe
}

type elemStripe struct {
	mu sync.Mutex
	m  map[EID]*elem
}

func newElemTable() *elemTable {
	t := &elemTable{}
	for i := range t.stripes {
		t.stripes[i].m = make(map[EID]*elem)
	}
	return t
}

func (t *elemTable) stripe(eid EID) *elemStripe {
	return &t.stripes[uint64(eid)%elemStripes]
}

func (t *elemTable) put(eid EID, el *elem) {
	s := t.stripe(eid)
	s.mu.Lock()
	s.m[eid] = el
	s.mu.Unlock()
}

func (t *elemTable) get(eid EID) (*elem, bool) {
	s := t.stripe(eid)
	s.mu.Lock()
	el, ok := s.m[eid]
	s.mu.Unlock()
	return el, ok
}

func (t *elemTable) del(eid EID) {
	s := t.stripe(eid)
	s.mu.Lock()
	delete(s.m, eid)
	s.mu.Unlock()
}

// lockElem locks the shard currently holding el, revalidating after each
// acquisition: an abort-time error diversion can move an element between
// queues, and DestroyQueue can drop its queue wholesale. Returns nil —
// with no lock held — when el is no longer live.
func (r *Repository) lockElem(el *elem) *queueState {
	for {
		qs := el.q.Load()
		qs.lock()
		if el.q.Load() == qs {
			if qs.dead || el.node == nil {
				qs.unlock()
				return nil
			}
			return qs
		}
		qs.unlock()
	}
}

// qmetrics holds the queue's registry instruments, resolved once at queue
// creation so the per-operation cost is a single atomic add. Every
// qs.stats bump is mirrored here; the stats struct stays the synchronous
// per-queue API while the registry gives the cross-layer labeled view.
type qmetrics struct {
	enqueues   *obs.Counter
	dequeues   *obs.Counter
	requeues   *obs.Counter // abort-returns back onto the queue
	kills      *obs.Counter
	diversions *obs.Counter // retry-limit diversions to the error queue
	depth      *obs.Gauge
	inFlight   *obs.Gauge
}

// newQueueState builds a queue's state with instruments labeled by queue
// name. Counters for a re-created queue continue from the prior
// incarnation's values (cumulative by design); the depth gauge is zeroed
// on destroy so it always reflects live visible depth.
func (r *Repository) newQueueState(cfg QueueConfig) *queueState {
	qs := &queueState{
		name:       cfg.Name,
		volatile:   cfg.Volatile,
		errEmpty:   fmt.Errorf("%w: %s", ErrEmpty, cfg.Name),
		cfg:        cfg,
		lists:      make(map[int32]*list.List),
		setWaiters: make(map[*setWaiter]struct{}),
		mShardWait: r.mShardWait,
		elems:      r.elems,
	}
	qs.cond = sync.NewCond(&qs.mu)
	if ringEligible(&cfg) {
		qs.ring = newRing()
		qs.fastMode.Store(true)
	}
	qs.m = qmetrics{
		enqueues:   r.reg.Counter("queue.enqueues", "queue", cfg.Name),
		dequeues:   r.reg.Counter("queue.dequeues", "queue", cfg.Name),
		requeues:   r.reg.Counter("queue.requeues", "queue", cfg.Name),
		kills:      r.reg.Counter("queue.kills", "queue", cfg.Name),
		diversions: r.reg.Counter("queue.error_diversions", "queue", cfg.Name),
		depth:      r.reg.Gauge("queue.depth", "queue", cfg.Name),
		inFlight:   r.reg.Gauge("queue.in_flight", "queue", cfg.Name),
	}
	return qs
}

func (q *queueState) countEnqueue()   { q.stats.Enqueues++; q.m.enqueues.Inc() }
func (q *queueState) countDequeue()   { q.stats.Dequeues++; q.m.dequeues.Inc() }
func (q *queueState) countRequeue()   { q.stats.AbortReturns++; q.m.requeues.Inc() }
func (q *queueState) countKill()      { q.stats.Kills++; q.m.kills.Inc() }
func (q *queueState) countDiversion() { q.stats.ErrorDiversions++; q.m.diversions.Inc() }

func (q *queueState) bumpInFlight(delta int) {
	q.stats.InFlight += delta
	q.m.inFlight.Add(int64(delta))
}

func (q *queueState) listFor(prio int32) *list.List {
	l, ok := q.lists[prio]
	if !ok {
		l = list.New()
		q.lists[prio] = l
		q.prios = append(q.prios, prio)
		sort.Slice(q.prios, func(i, j int) bool { return q.prios[i] > q.prios[j] })
	}
	return l
}

// insert places el into FIFO position within its priority (ordered by seq,
// so recovery re-inserts in original order even when replay order differs).
func (q *queueState) insert(el *elem) {
	l := q.listFor(el.e.Priority)
	for n := l.Back(); n != nil; n = n.Prev() {
		if n.Value.(*elem).e.seq <= el.e.seq {
			el.node = l.InsertAfter(el, n)
			return
		}
	}
	el.node = l.PushFront(el)
}

func (q *queueState) remove(el *elem) {
	if el.node != nil {
		q.lists[el.e.Priority].Remove(el.node)
		el.node = nil
	}
}

// live counts elements in any state (pending, visible, dequeued).
func (q *queueState) live() int {
	n := 0
	for _, l := range q.lists {
		n += l.Len()
	}
	return n
}

func (q *queueState) bumpDepth(delta int) {
	q.stats.Depth += delta
	if q.stats.Depth > q.stats.MaxDepth {
		q.stats.MaxDepth = q.stats.Depth
	}
	q.m.depth.Add(int64(delta))
}
