package qservice

import (
	"context"
	"encoding/json"
	"time"

	"repro/internal/enc"
	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/rpc"
)

// Client is the typed remote-QM client used by clerks. It mirrors the
// repository's non-transactional surface.
type Client struct {
	rc *rpc.Client
}

// NewClient wraps an rpc client.
func NewClient(rc *rpc.Client) *Client { return &Client{rc: rc} }

// RPC exposes the underlying rpc client (stats, close).
func (c *Client) RPC() *rpc.Client { return c.rc }

// Close closes the underlying connection.
func (c *Client) Close() { c.rc.Close() }

// call performs the RPC and peels the status prefix.
func (c *Client) call(ctx context.Context, method string, req *enc.Buffer) (*enc.Reader, error) {
	out, err := c.rc.Call(ctx, method, req.Bytes())
	if err != nil {
		return nil, err
	}
	r := enc.NewReader(out)
	code := r.Uint8()
	if err := r.Err(); err != nil {
		return nil, err
	}
	if code != stOK {
		return nil, decodeErr(code, r.String())
	}
	return r, nil
}

// Register registers a registrant with a queue and returns its persistent
// last-operation info.
func (c *Client) Register(ctx context.Context, qname, registrant string, stable bool) (queue.RegInfo, error) {
	b := enc.NewBuffer(64)
	b.String(qname)
	b.String(registrant)
	b.Bool(stable)
	r, err := c.call(ctx, MethodRegister, b)
	if err != nil {
		return queue.RegInfo{}, err
	}
	var ri queue.RegInfo
	ri.HasLast = r.Bool()
	ri.LastOp = queue.OpType(r.Uint8())
	ri.LastEID = queue.EID(r.Uvarint())
	ri.LastTag = r.BytesField()
	return ri, r.Err()
}

// Deregister destroys the registration.
func (c *Client) Deregister(ctx context.Context, qname, registrant string) error {
	b := enc.NewBuffer(32)
	b.String(qname)
	b.String(registrant)
	_, err := c.call(ctx, MethodDeregister, b)
	return err
}

func encodeEnqueue(qname string, e queue.Element, registrant string, tag []byte) *enc.Buffer {
	b := enc.NewBuffer(64 + len(e.Body))
	b.String(qname)
	wireElement(b, &e)
	b.String(registrant)
	b.BytesField(tag)
	return b
}

// Enqueue stores an element; on return it is stably stored (the paper's
// Send guarantee).
func (c *Client) Enqueue(ctx context.Context, qname string, e queue.Element, registrant string, tag []byte) (queue.EID, error) {
	r, err := c.call(ctx, MethodEnqueue, encodeEnqueue(qname, e, registrant, tag))
	if err != nil {
		return 0, err
	}
	eid := queue.EID(r.Uvarint())
	return eid, r.Err()
}

// EnqueueOneWay fires the enqueue as a one-way message: no acknowledgement,
// saving the response message in the common case (Section 5). The caller
// learns the outcome when the reply arrives — or at reconnect, from the
// registration tags.
func (c *Client) EnqueueOneWay(qname string, e queue.Element, registrant string, tag []byte) error {
	return c.rc.Send(MethodEnqueue1W, encodeEnqueue(qname, e, registrant, tag).Bytes())
}

// Dequeue removes and returns the next element; wait > 0 blocks up to that
// duration before reporting ErrEmpty.
func (c *Client) Dequeue(ctx context.Context, qname, registrant string, tag []byte, wait time.Duration, match map[string]string) (queue.Element, error) {
	return c.dequeue(ctx, qname, registrant, tag, wait, match, "")
}

// DequeueBest removes the available element whose named header has the
// largest numeric value — remote content-based scheduling ("highest dollar
// amount first", Section 10).
func (c *Client) DequeueBest(ctx context.Context, qname, registrant, preferHeader string, wait time.Duration) (queue.Element, error) {
	return c.dequeue(ctx, qname, registrant, nil, wait, nil, preferHeader)
}

func (c *Client) dequeue(ctx context.Context, qname, registrant string, tag []byte, wait time.Duration, match map[string]string, preferHeader string) (queue.Element, error) {
	b := enc.NewBuffer(64)
	b.String(qname)
	b.String(registrant)
	b.BytesField(tag)
	b.Uvarint(uint64(wait / time.Millisecond))
	b.StringMap(match)
	b.String(preferHeader)
	callCtx := ctx
	if wait > 0 {
		// Leave headroom so the server's wait elapses before the RPC's.
		var cancel context.CancelFunc
		callCtx, cancel = context.WithTimeout(ctx, wait+5*time.Second)
		defer cancel()
	}
	r, err := c.call(callCtx, MethodDequeue, b)
	if err != nil {
		return queue.Element{}, err
	}
	e := readWireElement(r)
	return e, r.Err()
}

// ReadLast returns the registrant's last-operated element (Rereceive).
func (c *Client) ReadLast(ctx context.Context, qname, registrant string) (queue.Element, error) {
	b := enc.NewBuffer(32)
	b.String(qname)
	b.String(registrant)
	r, err := c.call(ctx, MethodReadLast, b)
	if err != nil {
		return queue.Element{}, err
	}
	e := readWireElement(r)
	return e, r.Err()
}

// Read returns a live element by id.
func (c *Client) Read(ctx context.Context, eid queue.EID) (queue.Element, error) {
	b := enc.NewBuffer(12)
	b.Uvarint(uint64(eid))
	r, err := c.call(ctx, MethodRead, b)
	if err != nil {
		return queue.Element{}, err
	}
	e := readWireElement(r)
	return e, r.Err()
}

// KillElement cancels an element (Section 7).
func (c *Client) KillElement(ctx context.Context, eid queue.EID) (bool, error) {
	b := enc.NewBuffer(12)
	b.Uvarint(uint64(eid))
	r, err := c.call(ctx, MethodKill, b)
	if err != nil {
		return false, err
	}
	killed := r.Bool()
	return killed, r.Err()
}

// CreateQueue creates a queue remotely (idempotent).
func (c *Client) CreateQueue(ctx context.Context, cfg queue.QueueConfig) error {
	b := enc.NewBuffer(64)
	b.String(cfg.Name)
	b.String(cfg.ErrorQueue)
	b.Varint(int64(cfg.RetryLimit))
	b.Bool(cfg.Volatile)
	b.Bool(cfg.StrictFIFO)
	b.String(cfg.RedirectTo)
	b.Varint(int64(cfg.AlertThreshold))
	b.Varint(int64(cfg.MaxDepth))
	_, err := c.call(ctx, MethodCreateQueue, b)
	return err
}

// Queues lists the repository's queue names.
func (c *Client) Queues(ctx context.Context) ([]string, error) {
	r, err := c.call(ctx, MethodQueues, enc.NewBuffer(0))
	if err != nil {
		return nil, err
	}
	names := r.StringSlice()
	return names, r.Err()
}

// Stats returns a queue's cumulative counters.
func (c *Client) Stats(ctx context.Context, qname string) (queue.QueueStats, error) {
	b := enc.NewBuffer(16)
	b.String(qname)
	r, err := c.call(ctx, MethodStats, b)
	if err != nil {
		return queue.QueueStats{}, err
	}
	var st queue.QueueStats
	st.Enqueues = r.Uvarint()
	st.Dequeues = r.Uvarint()
	st.AbortReturns = r.Uvarint()
	st.ErrorDiversions = r.Uvarint()
	st.Kills = r.Uvarint()
	st.Depth = int(r.Varint())
	st.InFlight = int(r.Varint())
	st.MaxDepth = int(r.Varint())
	return st, r.Err()
}

// Metrics fetches the server's full metrics registry snapshot.
func (c *Client) Metrics(ctx context.Context) (obs.Snapshot, error) {
	r, err := c.call(ctx, MethodMetrics, enc.NewBuffer(0))
	if err != nil {
		return obs.Snapshot{}, err
	}
	j := r.BytesField()
	if err := r.Err(); err != nil {
		return obs.Snapshot{}, err
	}
	var s obs.Snapshot
	if err := json.Unmarshal(j, &s); err != nil {
		return obs.Snapshot{}, err
	}
	return s, nil
}

// Health fetches the node's health document as raw JSON (qm.health).
func (c *Client) Health(ctx context.Context) ([]byte, error) {
	r, err := c.call(ctx, MethodHealth, enc.NewBuffer(0))
	if err != nil {
		return nil, err
	}
	j := r.BytesField()
	return j, r.Err()
}

// Logs fetches up to max recent structured log events as a raw JSON
// array (qm.logs); max <= 0 means everything retained.
func (c *Client) Logs(ctx context.Context, max int) ([]byte, error) {
	b := enc.NewBuffer(8)
	b.Uvarint(uint64(max))
	r, err := c.call(ctx, MethodLogs, b)
	if err != nil {
		return nil, err
	}
	j := r.BytesField()
	return j, r.Err()
}

// Flight fetches the live flight-recorder document as raw JSON
// (qm.flight).
func (c *Client) Flight(ctx context.Context) ([]byte, error) {
	r, err := c.call(ctx, MethodFlight, enc.NewBuffer(0))
	if err != nil {
		return nil, err
	}
	j := r.BytesField()
	return j, r.Err()
}

// Repl fetches the node's replication status document as raw JSON
// (qm.repl). ErrNotFound when the node is not replicated.
func (c *Client) Repl(ctx context.Context) ([]byte, error) {
	r, err := c.call(ctx, MethodRepl, enc.NewBuffer(0))
	if err != nil {
		return nil, err
	}
	j := r.BytesField()
	return j, r.Err()
}

// TraceTree fetches one assembled span tree as raw JSON (an array of
// root nodes) from the server's trace ring. ErrNotFound when the server
// retains no spans for id.
func (c *Client) TraceTree(ctx context.Context, id string) ([]byte, error) {
	b := enc.NewBuffer(48)
	b.String(id)
	r, err := c.call(ctx, MethodTrace, b)
	if err != nil {
		return nil, err
	}
	j := r.BytesField()
	return j, r.Err()
}

// SlowTraces fetches the slowest-n retained trace summaries as raw JSON.
func (c *Client) SlowTraces(ctx context.Context, n int) ([]byte, error) {
	b := enc.NewBuffer(8)
	b.Uvarint(uint64(n))
	r, err := c.call(ctx, MethodTraces, b)
	if err != nil {
		return nil, err
	}
	j := r.BytesField()
	return j, r.Err()
}

// DequeueSet removes the best element across several queues (Section 9's
// queue sets): highest priority first, then oldest.
func (c *Client) DequeueSet(ctx context.Context, qnames []string, registrant string, tag []byte, wait time.Duration, match map[string]string) (queue.Element, error) {
	b := enc.NewBuffer(64)
	b.StringSlice(qnames)
	b.String(registrant)
	b.BytesField(tag)
	b.Uvarint(uint64(wait / time.Millisecond))
	b.StringMap(match)
	callCtx := ctx
	if wait > 0 {
		var cancel context.CancelFunc
		callCtx, cancel = context.WithTimeout(ctx, wait+5*time.Second)
		defer cancel()
	}
	r, err := c.call(callCtx, MethodDequeueSet, b)
	if err != nil {
		return queue.Element{}, err
	}
	e := readWireElement(r)
	return e, r.Err()
}

// Depth returns a queue's visible depth.
func (c *Client) Depth(ctx context.Context, qname string) (int, error) {
	b := enc.NewBuffer(16)
	b.String(qname)
	r, err := c.call(ctx, MethodDepth, b)
	if err != nil {
		return 0, err
	}
	d := int(r.Uvarint())
	return d, r.Err()
}
