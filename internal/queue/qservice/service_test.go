package qservice

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/queue"
	"repro/internal/rpc"
)

type world struct {
	repo *queue.Repository
	srv  *rpc.Server
	cl   *Client
}

func newWorld(t *testing.T) *world {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	srv := rpc.NewServer()
	New(repo, srv)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	cl := NewClient(rpc.NewClient(addr, nil))
	t.Cleanup(cl.Close)
	return &world{repo: repo, srv: srv, cl: cl}
}

func TestRemoteCreateEnqueueDequeue(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	// Idempotent remote creation.
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatalf("second create: %v", err)
	}
	eid, err := w.cl.Enqueue(ctx, "q", queue.Element{Body: []byte("hi"), Priority: 3,
		Headers: map[string]string{"k": "v"}, ReplyTo: "rq"}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if eid == 0 {
		t.Fatal("zero eid")
	}
	d, err := w.cl.Depth(ctx, "q")
	if err != nil || d != 1 {
		t.Fatalf("Depth = %d, %v", d, err)
	}
	e, err := w.cl.Dequeue(ctx, "q", "", nil, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Body) != "hi" || e.Priority != 3 || e.Headers["k"] != "v" || e.ReplyTo != "rq" || e.EID != eid {
		t.Fatalf("element %+v", e)
	}
	if _, err := w.cl.Dequeue(ctx, "q", "", nil, 0, nil); !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("empty dequeue: %v", err)
	}
}

func TestRemoteErrorsMapToSentinels(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if _, err := w.cl.Enqueue(ctx, "missing", queue.Element{}, "", nil); !errors.Is(err, queue.ErrNoQueue) {
		t.Fatalf("enqueue missing queue: %v", err)
	}
	if _, err := w.cl.Read(ctx, 999); !errors.Is(err, queue.ErrNotFound) {
		t.Fatalf("read missing: %v", err)
	}
	if _, err := w.cl.Depth(ctx, "nope"); !errors.Is(err, queue.ErrNoQueue) {
		t.Fatalf("depth missing: %v", err)
	}
}

func TestRemoteRegistrationFlow(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	ri, err := w.cl.Register(ctx, "req", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if ri.HasLast {
		t.Fatalf("fresh reg: %+v", ri)
	}
	if _, err := w.cl.Enqueue(ctx, "req", queue.Element{Body: []byte("r1")}, "client-1", []byte("rid-1")); err != nil {
		t.Fatal(err)
	}
	ri2, err := w.cl.Register(ctx, "req", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if !ri2.HasLast || ri2.LastOp != queue.OpEnqueue || string(ri2.LastTag) != "rid-1" {
		t.Fatalf("reg after enqueue: %+v", ri2)
	}
	// Consume and ReadLast (Rereceive path).
	if _, err := w.cl.Dequeue(ctx, "req", "client-1", []byte("ck-1"), 0, nil); err != nil {
		t.Fatal(err)
	}
	last, err := w.cl.ReadLast(ctx, "req", "client-1")
	if err != nil {
		t.Fatal(err)
	}
	if string(last.Body) != "r1" {
		t.Fatalf("ReadLast = %q", last.Body)
	}
	if err := w.cl.Deregister(ctx, "req", "client-1"); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cl.ReadLast(ctx, "req", "client-1"); !errors.Is(err, queue.ErrNotRegistered) {
		t.Fatalf("ReadLast after deregister: %v", err)
	}
}

func TestRemoteWaitingDequeue(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	done := make(chan queue.Element, 1)
	go func() {
		e, err := w.cl.Dequeue(ctx, "q", "", nil, 5*time.Second, nil)
		if err != nil {
			t.Errorf("waiting dequeue: %v", err)
			close(done)
			return
		}
		done <- e
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := w.cl.Enqueue(ctx, "q", queue.Element{Body: []byte("late")}, "", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-done:
		if string(e.Body) != "late" {
			t.Fatalf("got %q", e.Body)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("waiting dequeue never returned")
	}
}

func TestRemoteWaitTimeoutIsEmpty(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := w.cl.Dequeue(ctx, "q", "", nil, 50*time.Millisecond, nil)
	if !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("wait timeout: %v", err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Fatal("did not wait")
	}
}

func TestRemoteOneWayEnqueue(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	if err := w.cl.EnqueueOneWay("q", queue.Element{Body: []byte("fire")}, "", nil); err != nil {
		t.Fatal(err)
	}
	// It lands asynchronously.
	e, err := w.cl.Dequeue(ctx, "q", "", nil, 3*time.Second, nil)
	if err != nil || string(e.Body) != "fire" {
		t.Fatalf("one-way element: %q %v", e.Body, err)
	}
	// One-way enqueue cost 1 client message; the regular dequeue cost 2.
	st := w.cl.RPC().Stats()
	if st.OneWays != 1 {
		t.Fatalf("one-ways = %d", st.OneWays)
	}
}

func TestRemoteKill(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	eid, err := w.cl.Enqueue(ctx, "q", queue.Element{Body: []byte("doomed")}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	killed, err := w.cl.KillElement(ctx, eid)
	if err != nil || !killed {
		t.Fatalf("kill = %v, %v", killed, err)
	}
	killed, err = w.cl.KillElement(ctx, eid)
	if err != nil || killed {
		t.Fatalf("double kill = %v, %v", killed, err)
	}
}

func TestRemoteHeaderMatch(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cl.Enqueue(ctx, "q", queue.Element{Body: []byte("a"), Headers: map[string]string{"t": "1"}}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cl.Enqueue(ctx, "q", queue.Element{Body: []byte("b"), Headers: map[string]string{"t": "2"}}, "", nil); err != nil {
		t.Fatal(err)
	}
	e, err := w.cl.Dequeue(ctx, "q", "", nil, 0, map[string]string{"t": "2"})
	if err != nil || string(e.Body) != "b" {
		t.Fatalf("header-match dequeue: %q %v", e.Body, err)
	}
}

func TestRemoteQueuesAndStats(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	for _, q := range []string{"a", "b"} {
		if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	names, err := w.cl.Queues(ctx)
	if err != nil || len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("Queues = %v, %v", names, err)
	}
	if _, err := w.cl.Enqueue(ctx, "a", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cl.Dequeue(ctx, "a", "", nil, 0, nil); err != nil {
		t.Fatal(err)
	}
	st, err := w.cl.Stats(ctx, "a")
	if err != nil {
		t.Fatal(err)
	}
	if st.Enqueues != 1 || st.Dequeues != 1 || st.Depth != 0 || st.MaxDepth != 1 {
		t.Fatalf("stats %+v", st)
	}
	if _, err := w.cl.Stats(ctx, "missing"); !errors.Is(err, queue.ErrNoQueue) {
		t.Fatalf("stats missing queue: %v", err)
	}
}

func TestRemoteDequeueSet(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	for _, q := range []string{"a", "b"} {
		if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: q}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := w.cl.Enqueue(ctx, "a", queue.Element{Priority: 1, Body: []byte("low")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := w.cl.Enqueue(ctx, "b", queue.Element{Priority: 9, Body: []byte("high")}, "", nil); err != nil {
		t.Fatal(err)
	}
	e, err := w.cl.DequeueSet(ctx, []string{"a", "b"}, "", nil, 0, nil)
	if err != nil || string(e.Body) != "high" {
		t.Fatalf("set pick %q %v", e.Body, err)
	}
	e, err = w.cl.DequeueSet(ctx, []string{"a", "b"}, "", nil, 0, nil)
	if err != nil || string(e.Body) != "low" {
		t.Fatalf("second pick %q %v", e.Body, err)
	}
	if _, err := w.cl.DequeueSet(ctx, []string{"a", "b"}, "", nil, 0, nil); !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("empty set: %v", err)
	}
	// Waiting variant.
	done := make(chan queue.Element, 1)
	go func() {
		e, err := w.cl.DequeueSet(ctx, []string{"a", "b"}, "", nil, 5*time.Second, nil)
		if err != nil {
			t.Errorf("waiting set: %v", err)
			close(done)
			return
		}
		done <- e
	}()
	time.Sleep(20 * time.Millisecond)
	if _, err := w.cl.Enqueue(ctx, "b", queue.Element{Body: []byte("late")}, "", nil); err != nil {
		t.Fatal(err)
	}
	select {
	case e := <-done:
		if string(e.Body) != "late" {
			t.Fatalf("waiting set got %q", e.Body)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("waiting set never returned")
	}
}

func TestRemoteDequeueBest(t *testing.T) {
	w := newWorld(t)
	ctx := context.Background()
	if err := w.cl.CreateQueue(ctx, queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	for _, amt := range []string{"50", "900", "12"} {
		if _, err := w.cl.Enqueue(ctx, "q", queue.Element{
			Body: []byte(amt), Headers: map[string]string{"amount": amt},
		}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	e, err := w.cl.DequeueBest(ctx, "q", "", "amount", 0)
	if err != nil || string(e.Body) != "900" {
		t.Fatalf("best pick %q %v", e.Body, err)
	}
	e, err = w.cl.DequeueBest(ctx, "q", "", "amount", 0)
	if err != nil || string(e.Body) != "50" {
		t.Fatalf("second pick %q %v", e.Body, err)
	}
}
