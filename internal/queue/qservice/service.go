// Package qservice exposes a queue.Repository over the rpc substrate — the
// system model's wiring (fig. 4): the clerk in the client's process invokes
// queue-manager operations by remote procedure call.
//
// Only the non-transactional (auto-commit) surface is remote, which is
// exactly the paper's architecture: "the client accesses queues outside of
// a transaction, while the server accesses queues within transactions"
// (Section 2). Servers are co-located with their repository and use the
// in-process transactional API.
package qservice

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"repro/internal/enc"
	"repro/internal/obs/trace"
	"repro/internal/queue"
	"repro/internal/replica"
	"repro/internal/rpc"
)

// Wire method names.
const (
	MethodRegister    = "qm.register"
	MethodDeregister  = "qm.deregister"
	MethodEnqueue     = "qm.enqueue"
	MethodEnqueue1W   = "qm.enqueue1w" // one-way: no response (Section 5)
	MethodDequeue     = "qm.dequeue"
	MethodReadLast    = "qm.readlast"
	MethodRead        = "qm.read"
	MethodKill        = "qm.kill"
	MethodCreateQueue = "qm.createqueue"
	MethodDepth       = "qm.depth"
	MethodQueues      = "qm.queues"
	MethodStats       = "qm.stats"
	MethodDequeueSet  = "qm.dequeueset"
	MethodMetrics     = "qm.metrics"
	MethodTrace       = "qm.trace"  // one span tree as JSON
	MethodTraces      = "qm.traces" // slowest-N summaries as JSON
	MethodHealth      = "qm.health" // node health document as JSON
	MethodLogs        = "qm.logs"   // recent structured log events as JSON
	MethodFlight      = "qm.flight" // flight-recorder document as JSON
	MethodRepl        = "qm.repl"   // replication status document as JSON
)

// Status codes carried in every response payload.
const (
	stOK uint8 = iota
	stEmpty
	stNoQueue
	stNotFound
	stNotRegistered
	stStopped
	stFull
	stOther
	// stNotPrimary rejects an operation on a fenced ex-primary: a newer
	// epoch exists, so this node must not ack. Decoded back to
	// replica.ErrFenced, which ResilientClerk treats as retryable — the
	// fig. 2 recovery loop re-resolves the primary and resynchronizes
	// against the promoted standby.
	stNotPrimary
)

func encodeErr(err error) (uint8, string) {
	switch {
	case err == nil:
		return stOK, ""
	case errors.Is(err, queue.ErrEmpty):
		return stEmpty, err.Error()
	case errors.Is(err, queue.ErrNoQueue):
		return stNoQueue, err.Error()
	case errors.Is(err, queue.ErrNotFound):
		return stNotFound, err.Error()
	case errors.Is(err, queue.ErrNotRegistered):
		return stNotRegistered, err.Error()
	case errors.Is(err, queue.ErrStopped):
		return stStopped, err.Error()
	case errors.Is(err, queue.ErrFull):
		return stFull, err.Error()
	case errors.Is(err, replica.ErrFenced):
		return stNotPrimary, err.Error()
	case errors.Is(err, context.DeadlineExceeded):
		// A timed-out waiting dequeue is an empty queue to the client.
		return stEmpty, "wait timeout"
	default:
		return stOther, err.Error()
	}
}

func decodeErr(code uint8, msg string) error {
	switch code {
	case stOK:
		return nil
	case stEmpty:
		return fmt.Errorf("%w: %s", queue.ErrEmpty, msg)
	case stNoQueue:
		return fmt.Errorf("%w: %s", queue.ErrNoQueue, msg)
	case stNotFound:
		return fmt.Errorf("%w: %s", queue.ErrNotFound, msg)
	case stNotRegistered:
		return fmt.Errorf("%w: %s", queue.ErrNotRegistered, msg)
	case stStopped:
		return fmt.Errorf("%w: %s", queue.ErrStopped, msg)
	case stFull:
		return fmt.Errorf("%w: %s", queue.ErrFull, msg)
	case stNotPrimary:
		return fmt.Errorf("%w: %s", replica.ErrFenced, msg)
	default:
		return errors.New(msg)
	}
}

// respond builds a status-prefixed response.
func respond(err error, body func(b *enc.Buffer)) []byte {
	b := enc.NewBuffer(64)
	code, msg := encodeErr(err)
	b.Uint8(code)
	if code != stOK {
		b.String(msg)
		return b.Bytes()
	}
	if body != nil {
		body(b)
	}
	return b.Bytes()
}

// wireElement encodes an element for the wire (public fields only; the
// fifo sequence is repository-internal and regenerated on enqueue). The
// trace context rides as a self-delimiting tail: old peers that stop
// reading after AbortCode still parse the prefix, and their elements
// decode here as untraced.
func wireElement(b *enc.Buffer, e *queue.Element) {
	b.Uvarint(uint64(e.EID))
	b.String(e.Queue)
	b.Varint(int64(e.Priority))
	b.BytesField(e.Body)
	b.StringMap(e.Headers)
	b.BytesField(e.ScratchPad)
	b.String(e.ReplyTo)
	b.Varint(int64(e.AbortCount))
	b.String(e.AbortCode)
	b.TraceTail(e.Trace, uint64(e.Span))
}

func readWireElement(r *enc.Reader) queue.Element {
	var e queue.Element
	e.EID = queue.EID(r.Uvarint())
	e.Queue = r.String()
	e.Priority = int32(r.Varint())
	e.Body = r.BytesField()
	e.Headers = r.StringMap()
	e.ScratchPad = r.BytesField()
	e.ReplyTo = r.String()
	e.AbortCount = int32(r.Varint())
	e.AbortCode = r.String()
	id, span := r.TraceTail()
	e.Trace = trace.ID(id)
	e.Span = trace.SpanID(span)
	return e
}

// AuxProviders supply the node-level observability documents (health,
// recent logs, flight-recorder state) that live above the repository —
// the node that owns the service wires them in with SetAux. Each returns
// a complete JSON document. Nil providers answer "not available".
type AuxProviders struct {
	Health func() ([]byte, error)
	Logs   func(max int) ([]byte, error)
	Flight func() ([]byte, error)
	// Repl returns the node's replication status document (qm.repl —
	// `qmctl repl` reads it). Nil on unreplicated nodes.
	Repl func() ([]byte, error)
}

// Service serves one repository.
type Service struct {
	repo *queue.Repository
	srv  *rpc.Server
	aux  atomic.Pointer[AuxProviders]
}

// SetAux installs the node-level providers behind qm.health, qm.logs and
// qm.flight. Safe to call after serving has started.
func (s *Service) SetAux(p AuxProviders) { s.aux.Store(&p) }

// New registers the repository's methods on srv and returns the service.
// The hot-path methods are context-aware (HandleCtx): a traced call gets
// an "rpc.<method>" server span and its element operations parent under
// it, and a call carrying a propagated deadline is abandoned — with any
// waiting dequeue left uncommitted — the moment the caller's time budget
// expires.
func New(repo *queue.Repository, srv *rpc.Server) *Service {
	s := &Service{repo: repo, srv: srv}
	srv.SetTracer(repo.Tracer())
	srv.Handle(MethodRegister, s.handleRegister)
	srv.Handle(MethodDeregister, s.handleDeregister)
	srv.HandleCtx(MethodEnqueue, s.handleEnqueue)
	srv.HandleCtx(MethodEnqueue1W, func(ctx context.Context, p []byte) ([]byte, error) {
		s.handleEnqueue(ctx, p) // same work; the response is discarded
		return nil, nil
	})
	srv.HandleCtx(MethodDequeue, s.handleDequeue)
	srv.Handle(MethodReadLast, s.handleReadLast)
	srv.Handle(MethodRead, s.handleRead)
	srv.Handle(MethodKill, s.handleKill)
	srv.Handle(MethodCreateQueue, s.handleCreateQueue)
	srv.Handle(MethodDepth, s.handleDepth)
	srv.Handle(MethodQueues, s.handleQueues)
	srv.Handle(MethodStats, s.handleStats)
	srv.HandleCtx(MethodDequeueSet, s.handleDequeueSet)
	srv.Handle(MethodMetrics, s.handleMetrics)
	srv.Handle(MethodTrace, s.handleTrace)
	srv.Handle(MethodTraces, s.handleTraces)
	srv.Handle(MethodHealth, s.handleHealth)
	srv.Handle(MethodLogs, s.handleLogs)
	srv.Handle(MethodFlight, s.handleFlight)
	srv.Handle(MethodRepl, s.handleRepl)
	return s
}

var errAuxUnavailable = fmt.Errorf("%w: not enabled on this node", queue.ErrNotFound)

// handleHealth returns the node's health document as JSON (qm.health).
func (s *Service) handleHealth(p []byte) ([]byte, error) {
	aux := s.aux.Load()
	if aux == nil || aux.Health == nil {
		return respond(errAuxUnavailable, nil), nil
	}
	j, err := aux.Health()
	return respond(err, func(b *enc.Buffer) { b.BytesField(j) }), nil
}

// handleLogs returns up to max recent log events as a JSON array (qm.logs).
func (s *Service) handleLogs(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	max := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	aux := s.aux.Load()
	if aux == nil || aux.Logs == nil {
		return respond(errAuxUnavailable, nil), nil
	}
	j, err := aux.Logs(max)
	return respond(err, func(b *enc.Buffer) { b.BytesField(j) }), nil
}

// handleFlight returns the live flight-recorder document (qm.flight).
func (s *Service) handleFlight(p []byte) ([]byte, error) {
	aux := s.aux.Load()
	if aux == nil || aux.Flight == nil {
		return respond(errAuxUnavailable, nil), nil
	}
	j, err := aux.Flight()
	return respond(err, func(b *enc.Buffer) { b.BytesField(j) }), nil
}

// handleRepl returns the node's replication status document (qm.repl).
func (s *Service) handleRepl(p []byte) ([]byte, error) {
	aux := s.aux.Load()
	if aux == nil || aux.Repl == nil {
		return respond(errAuxUnavailable, nil), nil
	}
	j, err := aux.Repl()
	return respond(err, func(b *enc.Buffer) { b.BytesField(j) }), nil
}

// RespondJSON builds a response carrying one JSON document in the shape
// the JSON-returning methods (qm.health, qm.repl, ...) use — exported so
// a standby daemon, which has no Service until promotion, can still
// answer qm.repl with its own status.
func RespondJSON(j []byte, err error) []byte {
	return respond(err, func(b *enc.Buffer) { b.BytesField(j) })
}

// handleTrace returns one assembled span tree as JSON (qm.trace).
func (s *Service) handleTrace(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	idStr := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	id, err := trace.ParseID(idStr)
	if err != nil {
		return respond(fmt.Errorf("%w: %v", queue.ErrNotFound, err), nil), nil
	}
	nodes := s.repo.Tracer().Trace(id)
	if len(nodes) == 0 {
		return respond(fmt.Errorf("%w: trace %s", queue.ErrNotFound, idStr), nil), nil
	}
	j, err := json.Marshal(nodes)
	return respond(err, func(b *enc.Buffer) { b.BytesField(j) }), nil
}

// handleTraces returns the slowest-N retained trace summaries as JSON
// (qm.traces).
func (s *Service) handleTraces(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	n := int(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	sums := s.repo.Tracer().Slowest(n)
	if sums == nil {
		sums = []trace.Summary{}
	}
	j, err := json.Marshal(sums)
	return respond(err, func(b *enc.Buffer) { b.BytesField(j) }), nil
}

// handleMetrics returns the repository's full metrics registry as JSON —
// the same document the admin HTTP endpoint serves, so qmctl can read it
// over the RPC port without a second listener.
func (s *Service) handleMetrics(p []byte) ([]byte, error) {
	j, err := json.Marshal(s.repo.Metrics())
	return respond(err, func(b *enc.Buffer) { b.BytesField(j) }), nil
}

func (s *Service) handleQueues(p []byte) ([]byte, error) {
	names := s.repo.Queues()
	return respond(nil, func(b *enc.Buffer) { b.StringSlice(names) }), nil
}

func (s *Service) handleStats(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	qname := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	st, err := s.repo.Stats(qname)
	return respond(err, func(b *enc.Buffer) {
		b.Uvarint(st.Enqueues)
		b.Uvarint(st.Dequeues)
		b.Uvarint(st.AbortReturns)
		b.Uvarint(st.ErrorDiversions)
		b.Uvarint(st.Kills)
		b.Varint(int64(st.Depth))
		b.Varint(int64(st.InFlight))
		b.Varint(int64(st.MaxDepth))
	}), nil
}

func (s *Service) handleDequeueSet(ctx context.Context, p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	qnames := r.StringSlice()
	registrant := r.String()
	tag := r.BytesField()
	waitMillis := r.Uvarint()
	match := r.StringMap()
	if err := r.Err(); err != nil {
		return nil, err
	}
	opts := queue.DequeueOpts{Tag: tag, HeaderMatch: match}
	// ctx carries the caller's propagated deadline: a waiting dequeue is
	// cancelled — uncommitted, the element left for redelivery — when the
	// client's budget runs out, even before the wait parameter elapses.
	if waitMillis > 0 {
		opts.Wait = true
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(waitMillis)*time.Millisecond)
		defer cancel()
	}
	e, err := s.repo.DequeueSet(ctx, nil, qnames, registrant, opts)
	return respond(err, func(b *enc.Buffer) { wireElement(b, &e) }), nil
}

func (s *Service) handleRegister(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	qname := r.String()
	registrant := r.String()
	stable := r.Bool()
	if err := r.Err(); err != nil {
		return nil, err
	}
	_, ri, err := s.repo.Register(qname, registrant, stable)
	return respond(err, func(b *enc.Buffer) {
		b.Bool(ri.HasLast)
		b.Uint8(uint8(ri.LastOp))
		b.Uvarint(uint64(ri.LastEID))
		b.BytesField(ri.LastTag)
	}), nil
}

func (s *Service) handleDeregister(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	qname := r.String()
	registrant := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	h := s.handleFor(qname, registrant)
	return respond(s.repo.Deregister(h), nil), nil
}

// handleFor rebuilds a Handle without re-registering (handles are just
// (queue, registrant) bindings).
func (s *Service) handleFor(qname, registrant string) *queue.Handle {
	return s.repo.HandleFor(qname, registrant)
}

func (s *Service) handleEnqueue(ctx context.Context, p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	qname := r.String()
	e := readWireElement(r)
	registrant := r.String()
	tag := r.BytesField()
	if err := r.Err(); err != nil {
		return nil, err
	}
	// Parent the repository's enqueue span under the server's rpc span
	// (ctx carries that span's ref when the call was traced).
	ref := trace.From(ctx)
	if ref.Valid() {
		if e.Trace.IsZero() {
			e.Trace = ref.Trace
		}
		if e.Trace == ref.Trace {
			e.Span = ref.Span
		}
	}
	eid, err := s.repo.Enqueue(nil, qname, e, registrant, tag)
	return respond(err, func(b *enc.Buffer) { b.Uvarint(uint64(eid)) }), nil
}

func (s *Service) handleDequeue(ctx context.Context, p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	qname := r.String()
	registrant := r.String()
	tag := r.BytesField()
	waitMillis := r.Uvarint()
	match := r.StringMap()
	preferHeader := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	opts := queue.DequeueOpts{Tag: tag, HeaderMatch: match, PreferHeaderDesc: preferHeader}
	// ctx carries the caller's propagated deadline: a waiting dequeue is
	// cancelled — uncommitted, the element left for redelivery — when the
	// client's budget runs out, even before the wait parameter elapses.
	if waitMillis > 0 {
		opts.Wait = true
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(waitMillis)*time.Millisecond)
		defer cancel()
	}
	e, err := s.repo.Dequeue(ctx, nil, qname, registrant, opts)
	return respond(err, func(b *enc.Buffer) { wireElement(b, &e) }), nil
}

func (s *Service) handleReadLast(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	qname := r.String()
	registrant := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	e, err := s.handleFor(qname, registrant).ReadLast()
	return respond(err, func(b *enc.Buffer) { wireElement(b, &e) }), nil
}

func (s *Service) handleRead(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	eid := queue.EID(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	e, err := s.repo.Read(eid)
	return respond(err, func(b *enc.Buffer) { wireElement(b, &e) }), nil
}

func (s *Service) handleKill(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	eid := queue.EID(r.Uvarint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	killed, err := s.repo.KillElement(eid)
	return respond(err, func(b *enc.Buffer) { b.Bool(killed) }), nil
}

func (s *Service) handleCreateQueue(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	var cfg queue.QueueConfig
	cfg.Name = r.String()
	cfg.ErrorQueue = r.String()
	cfg.RetryLimit = int32(r.Varint())
	cfg.Volatile = r.Bool()
	cfg.StrictFIFO = r.Bool()
	cfg.RedirectTo = r.String()
	cfg.AlertThreshold = int32(r.Varint())
	cfg.MaxDepth = int32(r.Varint())
	if err := r.Err(); err != nil {
		return nil, err
	}
	err := s.repo.CreateQueue(cfg)
	if errors.Is(err, queue.ErrExists) {
		err = nil // idempotent remote creation
	}
	return respond(err, nil), nil
}

// handleDepth serves qm.depth. Depth is a lock-free gauge read on the
// repository side (it serializes against nothing but the queue lookup),
// so remote pollers — load balancers watching backlog, qmctl watch loops
// — can call it at high rate without perturbing enqueuers or dequeuers.
func (s *Service) handleDepth(p []byte) ([]byte, error) {
	r := enc.NewReader(p)
	qname := r.String()
	if err := r.Err(); err != nil {
		return nil, err
	}
	d, err := s.repo.Depth(qname)
	return respond(err, func(b *enc.Buffer) { b.Uvarint(uint64(d)) }), nil
}
