package qservice

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/rpc"
)

// TestDeadlinePropagationAbandonsDequeue is the end-to-end deadline
// satellite: a waiting remote dequeue whose client gives up must observe
// the propagated deadline server-side, abandon the wait WITHOUT
// committing a dequeue, and leave the element for redelivery to the next
// consumer. The server counts the drop.
func TestDeadlinePropagationAbandonsDequeue(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer repo.Close()
	if err := repo.CreateQueue(queue.QueueConfig{Name: "slow"}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	rsrv := rpc.NewServerWith(reg)
	New(repo, rsrv)
	addr, err := rsrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer rsrv.Close()

	impatient := NewClient(rpc.NewClient(addr, nil))
	defer impatient.Close()

	// The impatient client asks for a 5s server-side wait but only has a
	// 150ms budget. The queue is empty, so the server-side dequeue blocks;
	// the propagated deadline must cancel it.
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = impatient.Dequeue(ctx, "slow", "c-impatient", nil, 5*time.Second, nil)
	if err == nil {
		t.Fatal("dequeue of empty queue succeeded")
	}
	// Either shape is correct — the server's cancellation racing the
	// client's local ctx — but it must not take anywhere near the 5s wait.
	if !errors.Is(err, context.DeadlineExceeded) && !errors.Is(err, queue.ErrEmpty) {
		t.Fatalf("unexpected error: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("dequeue held for %v; deadline did not propagate", elapsed)
	}

	// Server handler observed the cancellation.
	deadline := time.Now().Add(2 * time.Second)
	for reg.Counter("rpc.deadline_drops").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("rpc.deadline_drops never incremented")
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The abandoned wait committed nothing: an element enqueued after the
	// client gave up is delivered intact to the next consumer.
	if _, err := repo.Enqueue(nil, "slow", queue.Element{Body: []byte("late")}, "", nil); err != nil {
		t.Fatal(err)
	}
	patient := NewClient(rpc.NewClient(addr, nil))
	defer patient.Close()
	e, err := patient.Dequeue(context.Background(), "slow", "c-patient", nil, 2*time.Second, nil)
	if err != nil {
		t.Fatalf("redelivery dequeue: %v", err)
	}
	if string(e.Body) != "late" {
		t.Fatalf("redelivered body %q", e.Body)
	}
	st, err := repo.Stats("slow")
	if err != nil {
		t.Fatal(err)
	}
	if st.Dequeues != 1 {
		t.Fatalf("committed dequeues = %d, want 1 (abandoned wait must not commit)", st.Dequeues)
	}
}
