package queue

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"testing"
	"testing/quick"
)

func TestPreferHighestDollarAmount(t *testing.T) {
	// The paper's §10 example: requests "may be scheduled by priority,
	// request contents (highest dollar amount first), submission time".
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	amounts := []int{50, 900, 12, 301, 4500, 77}
	for _, a := range amounts {
		if _, err := r.Enqueue(nil, "q", Element{
			Body:    []byte(strconv.Itoa(a)),
			Headers: map[string]string{"amount": strconv.Itoa(a)},
		}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	byAmount := func(a, b *Element) bool {
		x, _ := strconv.Atoi(a.Headers["amount"])
		y, _ := strconv.Atoi(b.Headers["amount"])
		return x > y
	}
	want := append([]int(nil), amounts...)
	sort.Sort(sort.Reverse(sort.IntSlice(want)))
	for i, w := range want {
		e, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{Prefer: byAmount})
		if err != nil {
			t.Fatal(err)
		}
		if string(e.Body) != strconv.Itoa(w) {
			t.Fatalf("pick %d = %s, want %d", i, e.Body, w)
		}
	}
}

func TestPreferRespectsInFlightElements(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	for _, a := range []string{"10", "99", "50"} {
		if _, err := r.Enqueue(nil, "q", Element{Body: []byte(a), Headers: map[string]string{"amount": a}}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	byAmount := func(a, b *Element) bool { return string(a.Headers["amount"]) > string(b.Headers["amount"]) }
	tx := r.Begin()
	e, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{Prefer: byAmount})
	if err != nil || string(e.Body) != "99" {
		t.Fatalf("first pick %q %v", e.Body, err)
	}
	// 99 is in flight: the next pick skips it and takes 50.
	e2, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{Prefer: byAmount})
	if err != nil || string(e2.Body) != "50" {
		t.Fatalf("second pick %q %v", e2.Body, err)
	}
	tx.Abort()
	// 99 back: best again.
	e3, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{Prefer: byAmount})
	if err != nil || string(e3.Body) != "99" {
		t.Fatalf("third pick %q %v", e3.Body, err)
	}
}

// TestQuickPriorityFIFOInvariant: for any mix of priorities, dequeue order
// is priority-descending and FIFO within a priority.
func TestQuickPriorityFIFOInvariant(t *testing.T) {
	f := func(prios []int8) bool {
		if len(prios) == 0 {
			return true
		}
		if len(prios) > 64 {
			prios = prios[:64]
		}
		r, _, err := Open(t.TempDir(), Options{NoFsync: true})
		if err != nil {
			return false
		}
		defer r.Close()
		if err := r.CreateQueue(QueueConfig{Name: "q"}); err != nil {
			return false
		}
		type rec struct {
			prio int8
			seq  int
		}
		var want []rec
		for i, p := range prios {
			if _, err := r.Enqueue(nil, "q", Element{Priority: int32(p), Body: []byte(fmt.Sprintf("%d", i))}, "", nil); err != nil {
				return false
			}
			want = append(want, rec{prio: p, seq: i})
		}
		sort.SliceStable(want, func(a, b int) bool { return want[a].prio > want[b].prio })
		for _, w := range want {
			e, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{})
			if err != nil {
				return false
			}
			if string(e.Body) != fmt.Sprintf("%d", w.seq) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickHeaderMatchNeverReturnsNonMatch: a filtered dequeue only ever
// returns matching elements, and drains exactly the matching subset.
func TestQuickHeaderMatchSubset(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		r, _, err := Open(t.TempDir(), Options{NoFsync: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := r.CreateQueue(QueueConfig{Name: "q"}); err != nil {
			t.Fatal(err)
		}
		nA, nB := 0, 0
		total := 5 + rng.Intn(30)
		for i := 0; i < total; i++ {
			kind := "a"
			if rng.Intn(2) == 0 {
				kind = "b"
				nB++
			} else {
				nA++
			}
			if _, err := r.Enqueue(nil, "q", Element{Headers: map[string]string{"kind": kind}}, "", nil); err != nil {
				t.Fatal(err)
			}
		}
		got := 0
		for {
			e, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{HeaderMatch: map[string]string{"kind": "a"}})
			if err != nil {
				break
			}
			if e.Headers["kind"] != "a" {
				t.Fatalf("filter returned kind %q", e.Headers["kind"])
			}
			got++
		}
		if got != nA {
			t.Fatalf("drained %d of %d kind-a elements", got, nA)
		}
		if d, _ := r.Depth("q"); d != nB {
			t.Fatalf("left %d, want %d kind-b", d, nB)
		}
		r.Close()
	}
}

func TestUpdateQueueConfig(t *testing.T) {
	dir := t.TempDir()
	r := openTest(t, dir)
	mustCreate(t, r, QueueConfig{Name: "q", RetryLimit: 10})
	mustCreate(t, r, QueueConfig{Name: "q.err"})
	// Tighten the retry limit and add the error queue at runtime.
	if err := r.UpdateQueueConfig(QueueConfig{Name: "q", RetryLimit: 1, ErrorQueue: "q.err"}); err != nil {
		t.Fatal(err)
	}
	if err := r.UpdateQueueConfig(QueueConfig{Name: "missing"}); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("update missing: %v", err)
	}
	enq(t, r, "q", "poison")
	tx := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	tx.Abort() // one strike now suffices
	if got := string(deq(t, r, "q.err").Body); got != "poison" {
		t.Fatalf("updated retry limit ignored: %q", got)
	}
	// The modification is durable.
	r2 := reopen(t, r, dir)
	cfg, err := r2.Config("q")
	if err != nil || cfg.RetryLimit != 1 || cfg.ErrorQueue != "q.err" {
		t.Fatalf("config after crash: %+v %v", cfg, err)
	}
}
