package queue

// Fuzz the ring's single-threaded state machine against a slice model.
// Concurrency is the race detector's and TestRingConcurrentExactlyOnce's
// job; what fuzzing buys here is coverage of the transition structure —
// full/empty edges, segment boundaries, whole-ring wraparound, lazy
// segment allocation order — under operation sequences no hand-written
// test would think to try.
//
// Each input byte is one operation: even = push, odd = pop. Sequential
// use must be a perfect FIFO with capacity exactly ringCap, and len()
// must agree with the model at every quiescent point.

import "testing"

func FuzzRingOps(f *testing.F) {
	// Seeds cross the interesting edges: empty pops, a full segment, a
	// full ring (push refusal), and drain-refill cycles that wrap the
	// position space around all segments.
	f.Add([]byte{1, 1, 0, 1, 1})
	seg := make([]byte, ringSegSlots+2)
	f.Add(seg) // one segment boundary, pushes only
	full := make([]byte, ringCap+16)
	f.Add(full) // overfill: the tail pushes must be refused
	cycle := make([]byte, 0, 4*ringSegSlots)
	for i := 0; i < 2*ringSegSlots; i++ {
		cycle = append(cycle, 0, 1) // push/pop lockstep marches positions forward
	}
	f.Add(cycle)
	f.Fuzz(func(t *testing.T, ops []byte) {
		r := newRing()
		var model []EID
		var next EID
		for i, op := range ops {
			if op%2 == 0 {
				e := Element{EID: next}
				ok := r.push(&e)
				if want := len(model) < ringCap; ok != want {
					t.Fatalf("op %d: push ok=%v with %d/%d queued", i, ok, len(model), ringCap)
				}
				if ok {
					model = append(model, next)
					next++
				}
			} else {
				var out Element
				st := r.pop(&out)
				if len(model) == 0 {
					if st != ringEmpty {
						t.Fatalf("op %d: pop on empty ring = %v, want ringEmpty", i, st)
					}
				} else {
					if st != ringOK {
						t.Fatalf("op %d: pop = %v with %d queued, want ringOK", i, st, len(model))
					}
					if out.EID != model[0] {
						t.Fatalf("op %d: popped EID %d, want %d (FIFO violation)", i, out.EID, model[0])
					}
					model = model[1:]
				}
			}
			if got := r.len(); got != len(model) {
				t.Fatalf("op %d: len() = %d, model %d", i, got, len(model))
			}
		}
	})
}
