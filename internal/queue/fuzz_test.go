package queue

import (
	"testing"

	"repro/internal/enc"
)

// FuzzElementDecode feeds arbitrary bytes to the element decoder: it must
// error or produce a value, never panic, and valid encodings must
// round-trip.
func FuzzElementDecode(f *testing.F) {
	seed := Element{
		EID: 7, Queue: "q", Priority: -3, Body: []byte("body"),
		Headers: map[string]string{"k": "v"}, ScratchPad: []byte("s"),
		ReplyTo: "r", AbortCount: 2, AbortCode: "x",
	}
	f.Add(marshalElement(&seed))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0x01, 0x02})
	f.Fuzz(func(t *testing.T, data []byte) {
		e, err := unmarshalElement(data)
		if err != nil {
			return
		}
		// A valid decode must re-encode to a decodable value describing the
		// same element.
		again, err := unmarshalElement(marshalElement(&e))
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if again.EID != e.EID || again.Queue != e.Queue || again.Priority != e.Priority ||
			string(again.Body) != string(e.Body) || again.ReplyTo != e.ReplyTo ||
			again.AbortCount != e.AbortCount || again.seq != e.seq {
			t.Fatalf("unstable roundtrip: %+v vs %+v", again, e)
		}
	})
}

// FuzzRedoNeverPanics feeds arbitrary bytes to the redo interpreter on a
// live repository: corrupt records must produce errors, not panics or
// state corruption that breaks later operations.
func FuzzRedoNeverPanics(f *testing.F) {
	b := enc.NewBuffer(0)
	b.Uint8(opEnqueue)
	f.Add(b.Bytes())
	f.Add([]byte{opDequeue, 0, 0})
	f.Add([]byte{opKill})
	f.Add([]byte{99})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, _, err := Open(t.TempDir(), Options{NoFsync: true})
		if err != nil {
			t.Skip()
		}
		defer r.Close()
		if err := r.CreateQueue(QueueConfig{Name: "q"}); err != nil {
			t.Skip()
		}
		_ = r.Redo(data) // must not panic
		// The repository must still work afterwards.
		if _, err := r.Enqueue(nil, "q", Element{Body: []byte("ok")}, "", nil); err != nil {
			t.Fatalf("repository broken after corrupt redo: %v", err)
		}
	})
}
