package queue

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"repro/internal/enc"
	"repro/internal/lock"
	"repro/internal/txn"
)

// DequeueOpts select and tag a dequeue.
type DequeueOpts struct {
	// Tag is the registrant-defined operation tag recorded stably with the
	// dequeue (Section 4.3); nil leaves the registration untouched except
	// for the op/eid bookkeeping.
	Tag []byte
	// Wait blocks until an element is available (the paper's blocking
	// dequeue via "notify locks", Section 10). The context bounds the wait.
	Wait bool
	// Filter is a content-based retrieval predicate (local callers only).
	Filter func(*Element) bool
	// HeaderMatch is a wire-friendly content filter: every key must be
	// present in the element's headers with an equal value.
	HeaderMatch map[string]string
	// Prefer is a content-based scheduling comparator (Section 10:
	// requests "may be scheduled by priority, request contents (highest
	// dollar amount first), submission time"): when set, the dequeue scans
	// every available element and takes the one Prefer ranks best, rather
	// than the first in priority/FIFO order. Local callers only.
	Prefer func(a, b *Element) bool
	// PreferHeaderDesc is the wire-friendly form of Prefer: take the
	// element whose named header has the largest numeric value ("highest
	// dollar amount first"). Ignored when Prefer is set.
	PreferHeaderDesc string
}

// effectivePrefer resolves the comparator, materializing PreferHeaderDesc.
func (o *DequeueOpts) effectivePrefer() func(a, b *Element) bool {
	if o.Prefer != nil {
		return o.Prefer
	}
	if o.PreferHeaderDesc == "" {
		return nil
	}
	key := o.PreferHeaderDesc
	return func(a, b *Element) bool {
		av, _ := strconv.ParseFloat(a.Headers[key], 64)
		bv, _ := strconv.ParseFloat(b.Headers[key], 64)
		return av > bv
	}
}

func (o *DequeueOpts) matches(e *Element) bool {
	for k, v := range o.HeaderMatch {
		if e.Headers[k] != v {
			return false
		}
	}
	if o.Filter != nil && !o.Filter(e) {
		return false
	}
	return true
}

// Handle is a registrant's binding to one queue, returned by Register.
type Handle struct {
	r          *Repository
	queue      string
	registrant string
}

// Queue returns the handle's queue name.
func (h *Handle) Queue() string { return h.queue }

// Registrant returns the handle's registrant name.
func (h *Handle) Registrant() string { return h.registrant }

// --- registration ---

// Register associates a uniquely-named registrant with a queue and returns
// a handle plus the registrant's persistent last-operation info (Section
// 4.3). Registering an already-registered registrant is the recovery path:
// the existing registration is returned unchanged. stable selects whether
// the QM maintains the registrant's last operation.
func (r *Repository) Register(qname, registrant string, stable bool) (*Handle, RegInfo, error) {
	var ri RegInfo
	err := r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		if _, ok := r.queues[qname]; !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, qname)
		}
		k := regKey{queue: qname, registrant: registrant}
		if g, ok := r.regs[k]; ok {
			ri = g.info()
			return nil // re-registration: return prior state, log nothing
		}
		g := &registration{key: k, stable: stable}
		r.regs[k] = g
		ri = g.info()
		t.OnUndo(func() {
			r.mu.Lock()
			delete(r.regs, k)
			r.mu.Unlock()
		})
		b := enc.NewBuffer(32)
		b.Uint8(opRegister)
		b.String(qname)
		b.String(registrant)
		b.Bool(stable)
		r.logOpLocked(t, b.Bytes())
		return nil
	})
	if err != nil {
		return nil, RegInfo{}, err
	}
	r.maybeSnapshot()
	return &Handle{r: r, queue: qname, registrant: registrant}, ri, nil
}

// HandleFor returns a handle binding for an existing registration without
// performing a registration; operations through it fail with
// ErrNotRegistered if the registrant is unknown (tagged bookkeeping is
// simply skipped for untagged uses).
func (r *Repository) HandleFor(qname, registrant string) *Handle {
	return &Handle{r: r, queue: qname, registrant: registrant}
}

// Deregister destroys all registration information about the registrant on
// the handle's queue.
func (r *Repository) Deregister(h *Handle) error {
	err := r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		k := regKey{queue: h.queue, registrant: h.registrant}
		g, ok := r.regs[k]
		if !ok {
			return fmt.Errorf("%w: %s on %s", ErrNotRegistered, h.registrant, h.queue)
		}
		delete(r.regs, k)
		t.OnUndo(func() {
			r.mu.Lock()
			r.regs[k] = g
			r.mu.Unlock()
		})
		b := enc.NewBuffer(32)
		b.Uint8(opDeregister)
		b.String(h.queue)
		b.String(h.registrant)
		r.logOpLocked(t, b.Bytes())
		return nil
	})
	return err
}

// updateRegLocked applies a tagged-operation update to the registrant's
// registration eagerly, registering an undo in t. Caller holds r.mu.
func (r *Repository) updateRegLocked(t *txn.Txn, qname, registrant string, op OpType, eid EID, tag []byte, elemCopy []byte) {
	if registrant == "" {
		return
	}
	k := regKey{queue: qname, registrant: registrant}
	g, ok := r.regs[k]
	if !ok || !g.stable {
		return
	}
	prev := *g
	g.hasLast = true
	g.lastOp = op
	g.lastEID = eid
	g.lastTag = append([]byte(nil), tag...)
	if elemCopy != nil {
		g.lastElem = elemCopy
	}
	t.OnUndo(func() {
		r.mu.Lock()
		*g = prev
		r.mu.Unlock()
	})
}

// --- enqueue ---

// Enqueue creates an element in qname (following redirection) and returns
// its element id. Inside a transaction the element becomes visible at
// commit; with t == nil the operation auto-commits and the element is
// visible (and durable, for non-volatile queues) when Enqueue returns —
// this is the paper's Send guarantee ("when Send returns, the request and
// rid have been stably stored", Section 3). registrant and tag feed the
// persistent registration; pass "" / nil for untagged enqueues.
func (r *Repository) Enqueue(t *txn.Txn, qname string, e Element, registrant string, tag []byte) (EID, error) {
	var eid EID
	err := r.autoTxn(t, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		qs, target, err := r.resolveRedirectLocked(qname)
		if err != nil {
			return err
		}
		if qs.cfg.MaxDepth > 0 && qs.live() >= int(qs.cfg.MaxDepth) {
			return fmt.Errorf("%w: %s at max depth %d", ErrFull, target, qs.cfg.MaxDepth)
		}
		e := e.clone()
		e.EID = EID(r.nextEID)
		r.nextEID++
		e.Queue = target
		e.seq = r.nextSeq
		r.nextSeq++
		el := &elem{e: e, state: statePending, owner: t, q: qs}
		qs.insert(el)
		r.elems[e.EID] = el
		eid = e.EID

		var regCopy []byte
		if registrant != "" {
			if g, ok := r.regs[regKey{queue: qname, registrant: registrant}]; ok && g.stable {
				regCopy = marshalElement(&e)
			}
		}
		r.updateRegLocked(t, qname, registrant, OpEnqueue, e.EID, tag, regCopy)

		t.OnUndo(func() {
			r.mu.Lock()
			qs.remove(el)
			delete(r.elems, el.e.EID)
			r.mu.Unlock()
		})
		t.OnCommit(func() {
			r.mu.Lock()
			el.state = stateVisible
			el.owner = nil
			qs.bumpDepth(1)
			qs.countEnqueue()
			depth := qs.stats.Depth
			alert := qs.cfg.AlertThreshold > 0 && depth == int(qs.cfg.AlertThreshold)
			fires := r.dueTriggersLocked(target)
			r.cond.Broadcast()
			r.mu.Unlock()
			if alert {
				r.fireAlert(target, depth)
			}
			for _, tr := range fires {
				go r.fireTrigger(tr)
			}
		})
		if !qs.cfg.Volatile {
			b := enc.NewBuffer(64 + len(e.Body))
			b.Uint8(opEnqueue)
			encodeElement(b, &e)
			b.String(registrant)
			b.BytesField(tag)
			b.String(qname) // registration queue; differs from e.Queue under redirection
			r.logOpLocked(t, b.Bytes())
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	r.maybeSnapshot()
	return eid, nil
}

// resolveRedirectLocked follows RedirectTo chains (Section 9's queue
// redirection), returning the terminal queue.
func (r *Repository) resolveRedirectLocked(qname string) (*queueState, string, error) {
	target := qname
	for hops := 0; ; hops++ {
		if hops > 8 {
			return nil, "", fmt.Errorf("%w: starting at %s", ErrRedirectLoop, qname)
		}
		qs, ok := r.queues[target]
		if !ok {
			return nil, "", fmt.Errorf("%w: %s", ErrNoQueue, target)
		}
		if qs.cfg.RedirectTo == "" {
			return qs, target, nil
		}
		target = qs.cfg.RedirectTo
	}
}

// --- dequeue ---

// Dequeue removes and returns the next available element of qname. Element
// order is priority-descending, FIFO within a priority, skipping elements
// held by uncommitted transactions unless the queue is StrictFIFO. If the
// dequeuing transaction aborts, the element returns to the queue with its
// AbortCount incremented; the RetryLimit-th abort diverts it to the
// queue's error queue (Section 4.2).
func (r *Repository) Dequeue(ctx context.Context, t *txn.Txn, qname, registrant string, opts DequeueOpts) (Element, error) {
	var out Element
	err := r.autoTxn(t, func(t *txn.Txn) error {
		return r.dequeueInto(ctx, t, qname, registrant, opts, &out)
	})
	if err != nil {
		return Element{}, err
	}
	r.maybeSnapshot()
	return out, nil
}

func (r *Repository) dequeueInto(ctx context.Context, t *txn.Txn, qname, registrant string, opts DequeueOpts, out *Element) error {
	var waitStart time.Time
	var stopWatch func() bool
	if opts.Wait && ctx != nil {
		stopWatch = context.AfterFunc(ctx, func() {
			r.mu.Lock()
			r.cond.Broadcast()
			r.mu.Unlock()
		})
		defer stopWatch()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		if r.closed {
			return ErrClosed
		}
		qs, ok := r.queues[qname]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, qname)
		}
		if qs.stopped {
			return fmt.Errorf("%w: %s", ErrStopped, qname)
		}
		el, blocked := scanQueueLocked(qs, &opts)
		if el != nil {
			if !waitStart.IsZero() {
				r.mWaitNanos.Observe(time.Since(waitStart).Nanoseconds())
			}
			r.claimLocked(t, el, qname, registrant, opts.Tag)
			*out = el.e.clone()
			return nil
		}
		_ = blocked // strict-FIFO in-flight head: wait like empty
		if !opts.Wait {
			return fmt.Errorf("%w: %s", ErrEmpty, qname)
		}
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		r.cond.Wait()
	}
}

// scanQueueLocked finds the dequeue candidate. blocked reports that a
// strict-FIFO queue's next element is held by an uncommitted transaction.
func scanQueueLocked(qs *queueState, opts *DequeueOpts) (*elem, bool) {
	prefer := opts.effectivePrefer()
	var best *elem
	for _, prio := range qs.prios {
		for n := qs.lists[prio].Front(); n != nil; n = n.Next() {
			el := n.Value.(*elem)
			switch el.state {
			case statePending:
				continue // uncommitted enqueue: not yet in the queue
			case stateDequeued:
				if qs.cfg.StrictFIFO {
					return nil, true // must not overtake the in-flight head
				}
				continue // skip-locked (Section 10)
			case stateVisible:
				if !opts.matches(&el.e) {
					continue
				}
				if prefer == nil {
					return el, false
				}
				// Content-based scheduling: rank the whole queue.
				if best == nil || prefer(&el.e, &best.e) {
					best = el
				}
			}
		}
	}
	return best, false
}

// claimLocked marks el dequeued by t, wires undo/commit behaviour, updates
// the registration, and logs the redo op. Caller holds r.mu.
func (r *Repository) claimLocked(t *txn.Txn, el *elem, regQueue, registrant string, tag []byte) {
	qs := el.q
	el.state = stateDequeued
	el.owner = t
	qs.bumpDepth(-1)
	qs.bumpInFlight(1)

	var regCopy []byte
	if registrant != "" {
		if g, ok := r.regs[regKey{queue: regQueue, registrant: registrant}]; ok && g.stable {
			regCopy = marshalElement(&el.e)
		}
	}
	r.updateRegLocked(t, regQueue, registrant, OpDequeue, el.e.EID, tag, regCopy)

	// Abort: return the element (or divert to the error queue on the n-th
	// abort, or drop it if killed meanwhile). The durable record of the
	// abort-return is written by the OnAbort hook, outside r.mu.
	var returned struct {
		count   int32
		moved   string
		volatil bool
		killed  bool
	}
	t.OnUndo(func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		qs.bumpInFlight(-1)
		if el.killed {
			qs.remove(el)
			delete(r.elems, el.e.EID)
			returned.killed = true
			r.cond.Broadcast()
			return
		}
		el.owner = nil
		el.e.AbortCount++
		returned.count = el.e.AbortCount
		returned.volatil = qs.cfg.Volatile
		qs.countRequeue()
		if qs.cfg.RetryLimit > 0 && el.e.AbortCount >= qs.cfg.RetryLimit && qs.cfg.ErrorQueue != "" {
			if eqs, ok := r.queues[qs.cfg.ErrorQueue]; ok {
				qs.remove(el)
				el.e.Queue = qs.cfg.ErrorQueue
				el.e.AbortCode = fmt.Sprintf("aborted %d times", el.e.AbortCount)
				el.q = eqs
				el.state = stateVisible
				eqs.insert(el)
				eqs.bumpDepth(1)
				qs.countDiversion()
				returned.moved = qs.cfg.ErrorQueue
				r.cond.Broadcast()
				return
			}
		}
		el.state = stateVisible
		qs.bumpDepth(1)
		r.cond.Broadcast()
	})
	t.OnAbort(func() {
		if returned.killed || returned.volatil {
			return
		}
		r.logAbortReturn(el.e.EID, returned.count, returned.moved)
	})
	t.OnCommit(func() {
		r.mu.Lock()
		qs.remove(el)
		delete(r.elems, el.e.EID)
		qs.bumpInFlight(-1)
		qs.countDequeue()
		r.cond.Broadcast() // strict-FIFO waiters behind this element
		r.mu.Unlock()
	})
	if !qs.cfg.Volatile {
		b := enc.NewBuffer(64)
		b.Uint8(opDequeue)
		b.String(el.e.Queue)
		b.Uvarint(uint64(el.e.EID))
		b.String(regQueue)
		b.String(registrant)
		b.BytesField(tag)
		b.BytesField(regCopy)
		r.logOpLocked(t, b.Bytes())
	}
}

// logAbortReturn durably records that an aborted dequeue returned an
// element (with its new abort count, possibly diverted to an error queue),
// so retry counting survives crashes. Runs outside r.mu, in its own
// system transaction.
func (r *Repository) logAbortReturn(eid EID, count int32, movedTo string) {
	st := r.tm.Begin()
	b := enc.NewBuffer(24)
	b.Uint8(opAbortReturn)
	b.Uvarint(uint64(eid))
	b.Varint(int64(count))
	b.String(movedTo)
	st.LogOp(rmName, b.Bytes())
	_ = st.Commit() // best-effort: a crash here merely loses one retry tick
}

// DequeueSet dequeues the best available element across several queues (a
// "queue set", Section 9): highest priority first, then oldest. All queues
// must exist; StrictFIFO blocking applies per queue.
func (r *Repository) DequeueSet(ctx context.Context, t *txn.Txn, qnames []string, registrant string, opts DequeueOpts) (Element, error) {
	var out Element
	err := r.autoTxn(t, func(t *txn.Txn) error {
		var stopWatch func() bool
		if opts.Wait && ctx != nil {
			stopWatch = context.AfterFunc(ctx, func() {
				r.mu.Lock()
				r.cond.Broadcast()
				r.mu.Unlock()
			})
			defer stopWatch()
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		for {
			if r.closed {
				return ErrClosed
			}
			var best *elem
			var bestQueue string
			for _, qname := range qnames {
				qs, ok := r.queues[qname]
				if !ok {
					return fmt.Errorf("%w: %s", ErrNoQueue, qname)
				}
				if qs.stopped {
					continue
				}
				el, _ := scanQueueLocked(qs, &opts)
				if el == nil {
					continue
				}
				if best == nil || el.e.Priority > best.e.Priority ||
					(el.e.Priority == best.e.Priority && el.e.seq < best.e.seq) {
					best = el
					bestQueue = qname
				}
			}
			if best != nil {
				r.claimLocked(t, best, bestQueue, registrant, opts.Tag)
				out = best.e.clone()
				return nil
			}
			if !opts.Wait {
				return fmt.Errorf("%w: set %v", ErrEmpty, qnames)
			}
			if ctx != nil && ctx.Err() != nil {
				return ctx.Err()
			}
			r.cond.Wait()
		}
	})
	if err != nil {
		return Element{}, err
	}
	return out, nil
}

// --- read ---

// Read returns a copy of a live element without modifying it (Section
// 4.2). Elements held by uncommitted dequeuers are readable (their
// committed state is "in the queue"); uncommitted enqueues are not.
func (r *Repository) Read(eid EID) (Element, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	el, ok := r.elems[eid]
	if !ok || el.state == statePending {
		return Element{}, fmt.Errorf("%w: eid %d", ErrNotFound, eid)
	}
	return el.e.clone(), nil
}

// ReadLast returns the element most recently operated on by the handle's
// registrant, served from the registration's stable copy — even if the
// element has since been consumed (the basis of Rereceive, Sections 4.3
// and 5).
func (r *Repository) ReadLast(h *Handle) (Element, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.regs[regKey{queue: h.queue, registrant: h.registrant}]
	if !ok {
		return Element{}, fmt.Errorf("%w: %s on %s", ErrNotRegistered, h.registrant, h.queue)
	}
	if !g.hasLast || g.lastElem == nil {
		return Element{}, fmt.Errorf("%w: no last element for %s", ErrNotFound, h.registrant)
	}
	return unmarshalElement(g.lastElem)
}

// --- cancellation ---

// KillElement tries to delete the element (the paper's cancellation
// primitive, Section 7): a waiting element is deleted; an element held by
// an uncommitted dequeuer dooms that transaction and is deleted when it
// rolls back; an element already consumed (or held by a prepared
// transaction, whose outcome the coordinator owns) is not killed.
// KillElement reports whether the element is now guaranteed dead. It is
// always auto-committed.
func (r *Repository) KillElement(eid EID) (bool, error) {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return false, ErrClosed
	}
	el, ok := r.elems[eid]
	if !ok {
		r.mu.Unlock()
		return false, nil // already consumed (or never existed)
	}
	switch el.state {
	case statePending:
		// Uncommitted enqueue: the killer cannot have learned this eid
		// through a committed channel; treat as not-found.
		r.mu.Unlock()
		return false, nil
	case stateDequeued:
		// Mark killed first so the owner's abort-undo (which may run at any
		// moment) drops the element instead of requeueing it; then ask the
		// owner to die. Doom's answer is authoritative: true means the
		// owner is guaranteed to abort.
		owner := el.owner
		volatil := el.q.cfg.Volatile
		el.killed = true
		r.mu.Unlock()
		if owner != nil && owner.Doom() {
			if !volatil {
				r.logKill(eid)
			}
			return true, nil
		}
		// The owner's outcome is out of our hands: it committed (element
		// consumed — not killed), is prepared (coordinator owns it), or
		// already aborted. In the last case its undo ran before we set
		// killed (state transitions under r.mu make later undos see the
		// flag), so check whether the flag took effect.
		r.mu.Lock()
		cur, present := r.elems[eid]
		if present && cur == el {
			el.killed = false // owner will (or did) consume or keep it
			r.mu.Unlock()
			return false, nil
		}
		r.mu.Unlock()
		if owner != nil && owner.State() == txn.Aborted {
			// Element is gone and the owner aborted: the kill took effect.
			if !volatil {
				r.logKill(eid)
			}
			return true, nil
		}
		return false, nil
	case stateVisible:
		qs := el.q
		qs.remove(el)
		delete(r.elems, eid)
		qs.bumpDepth(-1)
		qs.countKill()
		volatil := qs.cfg.Volatile
		r.mu.Unlock()
		if !volatil {
			r.logKill(eid)
		}
		return true, nil
	}
	r.mu.Unlock()
	return false, nil
}

func (r *Repository) logKill(eid EID) {
	st := r.tm.Begin()
	b := enc.NewBuffer(12)
	b.Uint8(opKill)
	b.Uvarint(uint64(eid))
	st.LogOp(rmName, b.Bytes())
	_ = st.Commit()
}

// --- key-value tables (the server-side shared database) ---

func kvResource(table, key string) string { return "kv/" + table + "/" + key }

// KVSet transactionally writes table[key] = value under an exclusive lock.
func (r *Repository) KVSet(ctx context.Context, t *txn.Txn, table, key string, value []byte) error {
	return r.autoTxn(t, func(t *txn.Txn) error {
		if err := t.Lock(ctx, kvResource(table, key), lock.Exclusive); err != nil {
			return err
		}
		value := append([]byte(nil), value...)
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		tbl, ok := r.tables[table]
		if !ok {
			tbl = make(map[string][]byte)
			r.tables[table] = tbl
		}
		old, had := tbl[key]
		tbl[key] = value
		t.OnUndo(func() {
			r.mu.Lock()
			if had {
				tbl[key] = old
			} else {
				delete(tbl, key)
			}
			r.mu.Unlock()
		})
		b := enc.NewBuffer(32 + len(value))
		b.Uint8(opKVSet)
		b.String(table)
		b.String(key)
		b.BytesField(value)
		r.logOpLocked(t, b.Bytes())
		return nil
	})
}

// KVGet reads table[key]. Inside a transaction it takes a shared lock (or
// exclusive when forUpdate), giving serializable reads; with t == nil it
// reads committed state without locking.
func (r *Repository) KVGet(ctx context.Context, t *txn.Txn, table, key string, forUpdate bool) ([]byte, bool, error) {
	if t != nil {
		mode := lock.Shared
		if forUpdate {
			mode = lock.Exclusive
		}
		if err := t.Lock(ctx, kvResource(table, key), mode); err != nil {
			return nil, false, err
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return nil, false, ErrClosed
	}
	v, ok := r.tables[table][key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// KVDelete transactionally deletes table[key].
func (r *Repository) KVDelete(ctx context.Context, t *txn.Txn, table, key string) error {
	return r.autoTxn(t, func(t *txn.Txn) error {
		if err := t.Lock(ctx, kvResource(table, key), lock.Exclusive); err != nil {
			return err
		}
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		tbl := r.tables[table]
		old, had := tbl[key]
		if had {
			delete(tbl, key)
			t.OnUndo(func() {
				r.mu.Lock()
				tbl[key] = old
				r.mu.Unlock()
			})
		}
		b := enc.NewBuffer(32)
		b.Uint8(opKVDel)
		b.String(table)
		b.String(key)
		r.logOpLocked(t, b.Bytes())
		return nil
	})
}

// --- handle conveniences (the paper's fig. 3 surface) ---

// Enqueue enqueues into the handle's queue with the registrant's tag.
func (h *Handle) Enqueue(t *txn.Txn, e Element, tag []byte) (EID, error) {
	return h.r.Enqueue(t, h.queue, e, h.registrant, tag)
}

// Dequeue dequeues from the handle's queue with the registrant's tag.
func (h *Handle) Dequeue(ctx context.Context, t *txn.Txn, opts DequeueOpts) (Element, error) {
	return h.r.Dequeue(ctx, t, h.queue, h.registrant, opts)
}

// ReadLast returns the registrant's last-operated element (Rereceive).
func (h *Handle) ReadLast() (Element, error) { return h.r.ReadLast(h) }

// Info returns the registrant's current persistent registration info.
func (h *Handle) Info() (RegInfo, error) {
	h.r.mu.Lock()
	defer h.r.mu.Unlock()
	g, ok := h.r.regs[regKey{queue: h.queue, registrant: h.registrant}]
	if !ok {
		return RegInfo{}, fmt.Errorf("%w: %s on %s", ErrNotRegistered, h.registrant, h.queue)
	}
	return g.info(), nil
}
