package queue

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"time"

	"repro/internal/enc"
	"repro/internal/lock"
	rlog "repro/internal/obs/log"
	"repro/internal/obs/trace"
	"repro/internal/txn"
)

// DequeueOpts select and tag a dequeue.
type DequeueOpts struct {
	// Tag is the registrant-defined operation tag recorded stably with the
	// dequeue (Section 4.3); nil leaves the registration untouched except
	// for the op/eid bookkeeping.
	Tag []byte
	// Wait blocks until an element is available (the paper's blocking
	// dequeue via "notify locks", Section 10). The context bounds the wait.
	Wait bool
	// Filter is a content-based retrieval predicate (local callers only).
	Filter func(*Element) bool
	// HeaderMatch is a wire-friendly content filter: every key must be
	// present in the element's headers with an equal value.
	HeaderMatch map[string]string
	// Prefer is a content-based scheduling comparator (Section 10:
	// requests "may be scheduled by priority, request contents (highest
	// dollar amount first), submission time"): when set, the dequeue scans
	// every available element and takes the one Prefer ranks best, rather
	// than the first in priority/FIFO order. Local callers only.
	Prefer func(a, b *Element) bool
	// PreferHeaderDesc is the wire-friendly form of Prefer: take the
	// element whose named header has the largest numeric value ("highest
	// dollar amount first"). Ignored when Prefer is set.
	PreferHeaderDesc string
}

// effectivePrefer resolves the comparator, materializing PreferHeaderDesc.
func (o *DequeueOpts) effectivePrefer() func(a, b *Element) bool {
	if o.Prefer != nil {
		return o.Prefer
	}
	if o.PreferHeaderDesc == "" {
		return nil
	}
	key := o.PreferHeaderDesc
	return func(a, b *Element) bool {
		av, _ := strconv.ParseFloat(a.Headers[key], 64)
		bv, _ := strconv.ParseFloat(b.Headers[key], 64)
		return av > bv
	}
}

func (o *DequeueOpts) matches(e *Element) bool {
	for k, v := range o.HeaderMatch {
		if e.Headers[k] != v {
			return false
		}
	}
	if o.Filter != nil && !o.Filter(e) {
		return false
	}
	return true
}

// Handle is a registrant's binding to one queue, returned by Register.
type Handle struct {
	r          *Repository
	queue      string
	registrant string
}

// Queue returns the handle's queue name.
func (h *Handle) Queue() string { return h.queue }

// Registrant returns the handle's registrant name.
func (h *Handle) Registrant() string { return h.registrant }

// --- registration ---

// Register associates a uniquely-named registrant with a queue and returns
// a handle plus the registrant's persistent last-operation info (Section
// 4.3). Registering an already-registered registrant is the recovery path:
// the existing registration is returned unchanged. stable selects whether
// the QM maintains the registrant's last operation.
func (r *Repository) Register(qname, registrant string, stable bool) (*Handle, RegInfo, error) {
	var ri RegInfo
	err := r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return ErrClosed
		}
		if _, ok := r.queues[qname]; !ok {
			r.mu.RUnlock()
			return fmt.Errorf("%w: %s", ErrNoQueue, qname)
		}
		r.mu.RUnlock()
		k := regKey{queue: qname, registrant: registrant}
		r.regMu.Lock()
		if g, ok := r.regs[k]; ok {
			ri = g.info()
			r.regMu.Unlock()
			return nil // re-registration: return prior state, log nothing
		}
		g := &registration{key: k, stable: stable}
		r.regs[k] = g
		ri = g.info()
		r.regMu.Unlock()
		t.OnUndo(func() {
			r.regMu.Lock()
			delete(r.regs, k)
			r.regMu.Unlock()
		})
		b := enc.NewBuffer(32)
		b.Uint8(opRegister)
		b.String(qname)
		b.String(registrant)
		b.Bool(stable)
		r.logOp(t, b.Bytes())
		return nil
	})
	if err != nil {
		return nil, RegInfo{}, err
	}
	r.maybeSnapshot()
	return &Handle{r: r, queue: qname, registrant: registrant}, ri, nil
}

// HandleFor returns a handle binding for an existing registration without
// performing a registration; operations through it fail with
// ErrNotRegistered if the registrant is unknown (tagged bookkeeping is
// simply skipped for untagged uses).
func (r *Repository) HandleFor(qname, registrant string) *Handle {
	return &Handle{r: r, queue: qname, registrant: registrant}
}

// Deregister destroys all registration information about the registrant on
// the handle's queue.
func (r *Repository) Deregister(h *Handle) error {
	err := r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return ErrClosed
		}
		r.mu.RUnlock()
		k := regKey{queue: h.queue, registrant: h.registrant}
		r.regMu.Lock()
		g, ok := r.regs[k]
		if !ok {
			r.regMu.Unlock()
			return fmt.Errorf("%w: %s on %s", ErrNotRegistered, h.registrant, h.queue)
		}
		delete(r.regs, k)
		r.regMu.Unlock()
		t.OnUndo(func() {
			r.regMu.Lock()
			r.regs[k] = g
			r.regMu.Unlock()
		})
		b := enc.NewBuffer(32)
		b.Uint8(opDeregister)
		b.String(h.queue)
		b.String(h.registrant)
		r.logOp(t, b.Bytes())
		return nil
	})
	return err
}

// updateReg applies a tagged-operation update to the registrant's
// registration eagerly, registering an undo in t, and returns the stable
// copy of e it recorded (nil for unregistered or non-stable registrants).
// Called with no shard lock held; regMu is a leaf lock.
func (r *Repository) updateReg(t *txn.Txn, qname, registrant string, op OpType, eid EID, tag []byte, e *Element) []byte {
	if registrant == "" {
		return nil
	}
	k := regKey{queue: qname, registrant: registrant}
	r.regMu.Lock()
	g, ok := r.regs[k]
	if !ok || !g.stable {
		r.regMu.Unlock()
		return nil
	}
	regCopy := marshalElement(e)
	prev := *g
	g.hasLast = true
	g.lastOp = op
	g.lastEID = eid
	g.lastTag = append([]byte(nil), tag...)
	g.lastElem = regCopy
	r.regMu.Unlock()
	t.OnUndo(func() {
		r.regMu.Lock()
		*g = prev
		r.regMu.Unlock()
	})
	return regCopy
}

// --- enqueue ---

// Enqueue creates an element in qname (following redirection) and returns
// its element id. Inside a transaction the element becomes visible at
// commit; with t == nil the operation auto-commits and the element is
// visible (and durable, for non-volatile queues) when Enqueue returns —
// this is the paper's Send guarantee ("when Send returns, the request and
// rid have been stably stored", Section 3). registrant and tag feed the
// persistent registration; pass "" / nil for untagged enqueues.
func (r *Repository) Enqueue(t *txn.Txn, qname string, e Element, registrant string, tag []byte) (EID, error) {
	if t == nil {
		if eid, ok, err := r.enqueueFast(qname, e, registrant, tag); ok {
			if err != nil {
				return 0, err
			}
			r.maybeSnapshot()
			return eid, nil
		}
	}
	var eid EID
	err := r.autoTxn(t, func(t *txn.Txn) error {
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return ErrClosed
		}
		qs, target, err := r.resolveRedirect(qname)
		if err != nil {
			r.mu.RUnlock()
			return err
		}
		e := e.clone()
		e.EID = EID(r.nextEID.Add(1) - 1)
		e.Queue = target
		e.seq = r.nextSeq.Add(1) - 1
		// Begin the enqueue span before the element is stored or logged:
		// rewriting e.Span to the enqueue span makes everything downstream
		// — the persisted record, recovery replay, the dequeuing server —
		// parent under this span.
		sp, traced := r.tracer.Begin(e.TraceRef(), "enqueue")
		if traced {
			sp.Annotate(trace.Str("queue", target), trace.Int64("eid", int64(e.EID)))
			e.Span = sp.ID
		}
		el := &elem{e: e, state: statePending, owner: t}
		el.q.Store(qs)
		qs.lock()
		r.mu.RUnlock()
		qs.sealFastLocked()
		if qs.cfg.MaxDepth > 0 && qs.live() >= int(qs.cfg.MaxDepth) {
			qs.unlock()
			return fmt.Errorf("%w: %s at max depth %d", ErrFull, target, qs.cfg.MaxDepth)
		}
		qs.insert(el)
		qs.unlock()
		r.elems.put(e.EID, el)
		eid = e.EID

		r.updateReg(t, qname, registrant, OpEnqueue, e.EID, tag, &e)

		t.OnUndo(func() {
			qs.lock()
			qs.remove(el)
			qs.maybeReopenFastLocked()
			qs.unlock()
			r.elems.del(el.e.EID)
		})
		t.OnCommit(func() {
			qs.lock()
			el.state = stateVisible
			el.owner = nil
			if traced {
				el.visibleAt = time.Now().UnixNano()
			}
			qs.bumpDepth(1)
			qs.countEnqueue()
			depth := qs.stats.Depth
			alert := qs.cfg.AlertThreshold > 0 && depth == int(qs.cfg.AlertThreshold)
			qs.notifyLocked() // this queue's waiters only
			qs.unlock()
			// Alerts and triggers run strictly after the shard lock is
			// released: both re-enter the repository (fireTrigger enqueues,
			// the alert callback may).
			fires := r.dueTriggers(target, depth)
			if alert {
				r.fireAlert(target, depth)
			}
			for _, tr := range fires {
				go r.fireTrigger(tr)
			}
		})
		if traced {
			// Registered separately, capturing a traced-only heap copy of
			// the span: letting the commit hook capture sp directly would
			// move it to the heap on every enqueue even with tracing off
			// (escape analysis is flow-insensitive).
			spc := new(trace.Span)
			*spc = sp
			t.OnCommit(func() {
				if lsn := t.CommitLSN(); lsn != 0 {
					spc.Annotate(trace.Int64("lsn", int64(lsn)))
				}
				r.tracer.Finish(spc)
			})
		}
		if !qs.volatile {
			b := enc.NewBuffer(96 + len(e.Body))
			b.Uint8(opEnqueue)
			encodeElement(b, &e)
			b.String(registrant)
			b.BytesField(tag)
			b.String(qname) // registration queue; differs from e.Queue under redirection
			encodeTraceTail(b, &e)
			r.logOp(t, b.Bytes())
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	r.maybeSnapshot()
	return eid, nil
}

// enqueueFast is the direct path for auto-committed enqueues into
// volatile queues, enabled by the striped design: a volatile enqueue logs
// nothing and an auto-commit transaction around it cannot abort between
// insert and commit, so making the element visible inside one shard
// critical section is indistinguishable from an instantly-committed
// transaction — without paying for one. When the op additionally carries
// no priority, no trace to record and no trigger is watching, it skips
// the shard lock entirely and publishes through the queue's lock-free
// ring (see ring.go and DESIGN.md §10). Returns ok=false (untouched
// state) when the target queue is durable and the caller must take the
// transactional path.
func (r *Repository) enqueueFast(qname string, e Element, registrant string, tag []byte) (EID, bool, error) {
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return 0, true, ErrClosed
	}
	qs, target, err := r.resolveRedirect(qname)
	if err != nil {
		r.mu.RUnlock()
		return 0, true, err
	}
	if !qs.volatile {
		r.mu.RUnlock()
		return 0, false, nil
	}
	if e.Priority == 0 && r.ntrig.Load() == 0 &&
		!(r.tracer.Enabled() && !e.Trace.IsZero()) && qs.enterFast() {
		r.mu.RUnlock()
		ne := e.clone()
		ne.EID = EID(r.nextEID.Add(1) - 1)
		ne.Queue = target
		ne.seq = r.nextSeq.Add(1) - 1
		// A full ring usually means the consumer is one scheduler quantum
		// behind, not genuinely absent; a few yields let it drain and keep
		// a momentary burst from forcing the expensive seal-and-drain
		// fallback. The gate is released across each yield so a sealer is
		// never made to wait on a parked producer.
		for attempt := 0; ; attempt++ {
			if qs.ring.push(&ne) {
				qs.fastEnqs.Add(1)
				qs.m.enqueues.Inc()
				qs.m.depth.Add(1)
				qs.exitFast()
				r.mFastHits.Inc()
				r.fastRegUpdate(qname, registrant, OpEnqueue, ne.EID, tag, &ne)
				// Close the trigger-creation race: if a trigger was
				// installed after the gate check above, re-evaluate against
				// the published depth. With seq-cst atomics, either this
				// load sees the new count or CreateTrigger's post-install
				// depth read sees our bump — one side always fires (see
				// CreateTrigger).
				if r.ntrig.Load() != 0 {
					for _, tr := range r.dueTriggers(target, int(qs.m.depth.Value())) {
						go r.fireTrigger(tr)
					}
				}
				return ne.EID, true, nil
			}
			qs.exitFast()
			if attempt >= ringFullYields {
				break
			}
			if attempt < ringSpinYields {
				runtime.Gosched()
			} else {
				// Cooperative yields didn't free a slot: the consumer is
				// not schedulable from here (oversubscribed host). Park on
				// a timer so it can drain a stretch, not one slot.
				time.Sleep(ringYieldSleep)
			}
			if !qs.enterFast() { // sealed while yielding
				break
			}
		}
		// Ring still full (or sealed): land the already-prepared element
		// via the locked path. The seal there drains the ring first, so
		// arrival order by seq is preserved in the lists.
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return 0, true, ErrClosed
		}
		qs, target, err = r.resolveRedirect(qname)
		if err != nil {
			r.mu.RUnlock()
			return 0, true, err
		}
		if !qs.volatile { // destroyed and recreated durable meanwhile
			r.mu.RUnlock()
			return 0, false, nil
		}
		ne.Queue = target
		return r.enqueueFastLocked(qs, target, qname, ne, registrant, tag)
	}
	ne := e.clone()
	ne.EID = EID(r.nextEID.Add(1) - 1)
	ne.Queue = target
	ne.seq = r.nextSeq.Add(1) - 1
	return r.enqueueFastLocked(qs, target, qname, ne, registrant, tag)
}

// enqueueFastLocked is the shard-locked tail of enqueueFast: the
// auto-commit volatile insert for operations the ring cannot serve
// (priority, traced, triggers watching, ring full, or fast path sealed).
// Called with r.mu read-held; releases it. Counts one fastpath fallback
// on every completed-op return.
func (r *Repository) enqueueFastLocked(qs *queueState, target, qname string, ne Element, registrant string, tag []byte) (EID, bool, error) {
	sp, traced := r.tracer.Begin(ne.TraceRef(), "enqueue")
	if traced {
		sp.Annotate(trace.Str("queue", target), trace.Int64("eid", int64(ne.EID)))
		ne.Span = sp.ID
	}
	el := &elem{e: ne, state: stateVisible}
	if traced {
		el.visibleAt = time.Now().UnixNano()
	}
	el.q.Store(qs)
	qs.lock()
	r.mu.RUnlock()
	qs.sealFastLocked()
	if qs.cfg.MaxDepth > 0 && qs.live() >= int(qs.cfg.MaxDepth) {
		qs.unlock()
		r.mFastFallbacks.Inc()
		return 0, true, fmt.Errorf("%w: %s at max depth %d", ErrFull, target, qs.cfg.MaxDepth)
	}
	qs.insert(el)
	qs.bumpDepth(1)
	qs.countEnqueue()
	depth := qs.stats.Depth
	alert := qs.cfg.AlertThreshold > 0 && depth == int(qs.cfg.AlertThreshold)
	qs.notifyLocked()
	qs.unlock()
	r.elems.put(ne.EID, el)
	if traced {
		r.tracer.Finish(&sp)
	}
	r.fastRegUpdate(qname, registrant, OpEnqueue, ne.EID, tag, &ne)
	r.mFastFallbacks.Inc()
	fires := r.dueTriggers(target, depth)
	if alert {
		r.fireAlert(target, depth)
	}
	for _, tr := range fires {
		go r.fireTrigger(tr)
	}
	return ne.EID, true, nil
}

// fastRegUpdate applies a tagged-operation update for an auto-committed
// operation: eager and undo-free, since the operation can no longer
// abort.
func (r *Repository) fastRegUpdate(qname, registrant string, op OpType, eid EID, tag []byte, e *Element) {
	if registrant == "" {
		return
	}
	k := regKey{queue: qname, registrant: registrant}
	r.regMu.Lock()
	g, ok := r.regs[k]
	if !ok || !g.stable {
		r.regMu.Unlock()
		return
	}
	g.hasLast = true
	g.lastOp = op
	g.lastEID = eid
	g.lastTag = append([]byte(nil), tag...)
	g.lastElem = marshalElement(e)
	r.regMu.Unlock()
}

// resolveRedirect follows RedirectTo chains (Section 9's queue
// redirection), returning the terminal queue. Caller holds r.mu in either
// mode (configs only change under the exclusive lock).
func (r *Repository) resolveRedirect(qname string) (*queueState, string, error) {
	target := qname
	for hops := 0; ; hops++ {
		if hops > 8 {
			return nil, "", fmt.Errorf("%w: starting at %s", ErrRedirectLoop, qname)
		}
		qs, ok := r.queues[target]
		if !ok {
			return nil, "", fmt.Errorf("%w: %s", ErrNoQueue, target)
		}
		if qs.cfg.RedirectTo == "" {
			return qs, target, nil
		}
		target = qs.cfg.RedirectTo
	}
}

// --- dequeue ---

// Dequeue removes and returns the next available element of qname. Element
// order is priority-descending, FIFO within a priority, skipping elements
// held by uncommitted transactions unless the queue is StrictFIFO. If the
// dequeuing transaction aborts, the element returns to the queue with its
// AbortCount incremented; the RetryLimit-th abort diverts it to the
// queue's error queue (Section 4.2).
func (r *Repository) Dequeue(ctx context.Context, t *txn.Txn, qname, registrant string, opts DequeueOpts) (Element, error) {
	var out Element
	if t == nil {
		if ok, err := r.dequeueFast(ctx, qname, registrant, opts, &out); ok {
			if err != nil {
				return Element{}, err
			}
			r.maybeSnapshot()
			return out, nil
		}
	}
	err := r.autoTxn(t, func(t *txn.Txn) error {
		return r.dequeueInto(ctx, t, qname, registrant, opts, &out)
	})
	if err != nil {
		return Element{}, err
	}
	r.maybeSnapshot()
	return out, nil
}

// dequeueFast is the direct path for auto-committed dequeues from
// volatile queues: claim and commit collapse into one shard critical
// section (remove the element, bump the counters, done). An auto-commit
// transaction around a volatile dequeue stages no log record and so
// cannot fail between claim and commit; removing the element outright is
// the same observable history with no window for Doom to land in.
// Unfiltered non-waiting dequeues go further and pop the queue's
// lock-free ring without any lock; the ring's empty answer is
// authoritative because fast mode implies the locked lists are empty.
// Returns ok=false (untouched state) when the queue is durable.
func (r *Repository) dequeueFast(ctx context.Context, qname, registrant string, opts DequeueOpts, out *Element) (bool, error) {
	var waitStart time.Time
	woken := false
	var stopWatch func() bool
	defer func() {
		if stopWatch != nil {
			stopWatch()
		}
	}()
	// Filters and comparators need a scan of the locked lists; plain
	// front-of-queue dequeues are ring-eligible.
	fastOK := opts.Filter == nil && opts.HeaderMatch == nil &&
		opts.Prefer == nil && opts.PreferHeaderDesc == ""
	tryFast := fastOK
	for {
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return true, ErrClosed
		}
		qs, ok := r.queues[qname]
		if !ok {
			r.mu.RUnlock()
			return true, fmt.Errorf("%w: %s", ErrNoQueue, qname)
		}
		if !qs.volatile {
			r.mu.RUnlock()
			return false, nil
		}
		if tryFast && qs.enterFast() {
			r.mu.RUnlock()
			st := qs.ring.pop(out)
			if st == ringOK {
				qs.fastDeqs.Add(1)
				qs.m.dequeues.Inc()
				qs.m.depth.Add(-1)
				qs.exitFast()
				r.mFastHits.Inc()
				if woken {
					r.mWakeTargeted.Inc()
				}
				if !waitStart.IsZero() {
					r.mWaitNanos.Observe(time.Since(waitStart).Nanoseconds())
				}
				r.fastRegUpdate(qname, registrant, OpDequeue, out.EID, opts.Tag, out)
				r.recordFastDequeueSpan(out)
				return true, nil
			}
			qs.exitFast()
			if st == ringInflight {
				// An enqueue has linearized but not yet published; yield to
				// it rather than answer "empty" out of order.
				runtime.Gosched()
				continue
			}
			// ringEmpty: with fast mode on, the locked lists are empty too,
			// so this is the queue's authoritative empty answer.
			if !opts.Wait {
				r.mFastHits.Inc()
				return true, qs.errEmpty
			}
			// Parking needs the condition variable, which ring enqueues do
			// not signal: take the locked path (sealing the ring) to wait.
			tryFast = false
			continue
		}
		qs.lock()
		r.mu.RUnlock()
		if qs.stopped {
			qs.unlock()
			r.mFastFallbacks.Inc()
			return true, fmt.Errorf("%w: %s", ErrStopped, qname)
		}
		qs.sealFastLocked()
		el, blocked := scanQueueLocked(qs, &opts)
		if el != nil {
			qs.remove(el)
			qs.bumpDepth(-1)
			qs.countDequeue()
			qs.maybeReopenFastLocked()
			qs.unlock()
			r.elems.del(el.e.EID)
			if woken {
				r.mWakeTargeted.Inc()
			}
			if !waitStart.IsZero() {
				r.mWaitNanos.Observe(time.Since(waitStart).Nanoseconds())
			}
			r.fastRegUpdate(qname, registrant, OpDequeue, el.e.EID, opts.Tag, &el.e)
			r.recordDequeueSpan(el)
			r.mFastFallbacks.Inc()
			// el is unreachable now (out of the lists and the eid index);
			// hand its element over without a defensive copy.
			*out = el.e
			return true, nil
		}
		_ = blocked // strict-FIFO in-flight head: wait like empty
		if !opts.Wait {
			qs.maybeReopenFastLocked()
			qs.unlock()
			r.mFastFallbacks.Inc()
			return true, qs.errEmpty
		}
		if ctx != nil && ctx.Err() != nil {
			qs.maybeReopenFastLocked()
			qs.unlock()
			r.mFastFallbacks.Inc()
			return true, ctx.Err()
		}
		if woken {
			r.mWakeSpurious.Inc()
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		if stopWatch == nil && ctx != nil && ctx.Done() != nil {
			// Installed lazily, before the first wait: the non-blocking
			// path never pays for the cancellation watcher.
			stopWatch = context.AfterFunc(ctx, func() { r.wakeQueue(qname) })
		}
		qs.nwait++
		qs.cond.Wait()
		qs.nwait--
		woken = true
		qs.unlock()
		// A locked enqueue may have been the last obstacle to fast mode;
		// retry the ring first in case the queue reopened.
		tryFast = fastOK
	}
}

// recordFastDequeueSpan is the ring path's residency span: ring elements
// carry no visibleAt (the enqueue gate routes traced elements to the
// locked path), so tracing here is normally a no-op; the check keeps
// late-enabled tracers from crashing on zero-trace elements.
func (r *Repository) recordFastDequeueSpan(e *Element) {
	if !r.tracer.Enabled() || e.Trace.IsZero() {
		return
	}
	now := time.Now()
	r.tracer.RecordAt(e.TraceRef(), "dequeue", now, now,
		trace.Str("queue", e.Queue), trace.Int64("eid", int64(e.EID)))
}

func (r *Repository) dequeueInto(ctx context.Context, t *txn.Txn, qname, registrant string, opts DequeueOpts, out *Element) error {
	var waitStart time.Time
	woken := false
	var stopWatch func() bool
	defer func() {
		if stopWatch != nil {
			stopWatch()
		}
	}()
	for {
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return ErrClosed
		}
		qs, ok := r.queues[qname]
		if !ok {
			r.mu.RUnlock()
			return fmt.Errorf("%w: %s", ErrNoQueue, qname)
		}
		qs.lock()
		r.mu.RUnlock()
		if qs.stopped {
			qs.unlock()
			return fmt.Errorf("%w: %s", ErrStopped, qname)
		}
		qs.sealFastLocked()
		el, blocked := scanQueueLocked(qs, &opts)
		if el != nil {
			claimShardLocked(qs, el, t)
			qs.unlock()
			if woken {
				r.mWakeTargeted.Inc()
			}
			if !waitStart.IsZero() {
				r.mWaitNanos.Observe(time.Since(waitStart).Nanoseconds())
			}
			r.wireClaim(t, el, qname, registrant, opts.Tag)
			r.recordDequeueSpan(el)
			// el is exclusively owned by t now; cloning outside the shard
			// lock is safe (only t's own undo mutates it later).
			*out = el.e.clone()
			return nil
		}
		_ = blocked // strict-FIFO in-flight head: wait like empty
		if !opts.Wait {
			qs.maybeReopenFastLocked()
			qs.unlock()
			return qs.errEmpty
		}
		if ctx != nil && ctx.Err() != nil {
			qs.maybeReopenFastLocked()
			qs.unlock()
			return ctx.Err()
		}
		if woken {
			r.mWakeSpurious.Inc()
		}
		if waitStart.IsZero() {
			waitStart = time.Now()
		}
		if stopWatch == nil && ctx != nil && ctx.Done() != nil {
			// Wake this queue's waiters on cancellation so the loop can
			// observe ctx.Err(). Installed lazily, before the first wait,
			// so the non-blocking path never pays for the watcher.
			stopWatch = context.AfterFunc(ctx, func() { r.wakeQueue(qname) })
		}
		// Park on this queue's condition variable; only commits touching
		// this queue (or DDL on it, or close) signal it. The wait releases
		// just the shard lock, so checkpoints and other queues proceed.
		qs.nwait++
		qs.cond.Wait()
		qs.nwait--
		woken = true
		qs.unlock()
		// Re-resolve by name: the queue may have been destroyed (dead) or
		// destroyed-and-recreated while we were parked.
	}
}

// wakeQueue broadcasts on one queue's condition variable (context
// cancellation path).
func (r *Repository) wakeQueue(qname string) {
	r.mu.RLock()
	qs, ok := r.queues[qname]
	if !ok {
		r.mu.RUnlock()
		return
	}
	qs.lock()
	r.mu.RUnlock()
	qs.cond.Broadcast()
	qs.unlock()
}

// scanQueueLocked finds the dequeue candidate. blocked reports that a
// strict-FIFO queue's next element is held by an uncommitted transaction.
// Caller holds the shard lock.
func scanQueueLocked(qs *queueState, opts *DequeueOpts) (*elem, bool) {
	prefer := opts.effectivePrefer()
	var best *elem
	for _, prio := range qs.prios {
		for n := qs.lists[prio].Front(); n != nil; n = n.Next() {
			el := n.Value.(*elem)
			switch el.state {
			case statePending:
				continue // uncommitted enqueue: not yet in the queue
			case stateDequeued:
				if qs.cfg.StrictFIFO {
					return nil, true // must not overtake the in-flight head
				}
				continue // skip-locked (Section 10)
			case stateVisible:
				if !opts.matches(&el.e) {
					continue
				}
				if prefer == nil {
					return el, false
				}
				// Content-based scheduling: rank the whole queue.
				if best == nil || prefer(&el.e, &best.e) {
					best = el
				}
			}
		}
	}
	return best, false
}

// claimShardLocked is the in-shard half of a dequeue claim. Caller holds
// el's shard lock and follows up with wireClaim after releasing it.
func claimShardLocked(qs *queueState, el *elem, t *txn.Txn) {
	el.state = stateDequeued
	el.owner = t
	qs.bumpDepth(-1)
	qs.bumpInFlight(1)
}

// recordDequeueSpan records the element's queue-residency interval — from
// the moment it became visible (or was reconstructed by recovery) to the
// claiming dequeue — as a "dequeue" span parented under the element's
// enqueue span. Called after the claim, when the caller owns el
// exclusively; one element re-dequeued after aborts or crashes honestly
// yields one such span per attempt.
func (r *Repository) recordDequeueSpan(el *elem) {
	if !r.tracer.Enabled() || el.e.Trace.IsZero() {
		return
	}
	attrs := []trace.Attr{
		trace.Str("queue", el.e.Queue),
		trace.Int64("eid", int64(el.e.EID)),
	}
	if el.e.Redelivered {
		attrs = append(attrs, trace.Int64("redelivered", 1))
	}
	r.tracer.RecordAt(el.e.TraceRef(), "dequeue", time.Unix(0, el.visibleAt), time.Now(), attrs...)
}

// claimReturn records what the abort path did, for the OnAbort hook's
// durable abort-return record.
type claimReturn struct {
	count   int32
	moved   string
	volatil bool
	killed  bool
}

// wireClaim finishes a dequeue claim outside the shard lock: registration
// update, undo/abort/commit behaviour, and redo-record staging (the WAL
// record is staged here and appended by the transaction's commit — never
// under a shard lock).
func (r *Repository) wireClaim(t *txn.Txn, el *elem, regQueue, registrant string, tag []byte) {
	regCopy := r.updateReg(t, regQueue, registrant, OpDequeue, el.e.EID, tag, &el.e)

	// Abort: return the element (or divert to the error queue on the n-th
	// abort, or drop it if killed meanwhile). The durable record of the
	// abort-return is written by the OnAbort hook, outside all locks.
	returned := &claimReturn{}
	t.OnUndo(func() { r.undoClaim(el, returned) })
	t.OnAbort(func() {
		if returned.killed || returned.volatil {
			return
		}
		r.logAbortReturn(el.e.EID, returned.count, returned.moved)
	})
	t.OnCommit(func() {
		qs := el.q.Load() // stable while dequeued (diversion happens only on abort)
		qs.lock()
		qs.remove(el)
		qs.bumpInFlight(-1)
		qs.countDequeue()
		if qs.cfg.StrictFIFO {
			qs.notifyLocked() // waiters were blocked behind this in-flight head
		}
		qs.maybeReopenFastLocked()
		qs.unlock()
		r.elems.del(el.e.EID)
	})
	if !el.q.Load().volatile {
		b := enc.NewBuffer(64)
		b.Uint8(opDequeue)
		b.String(el.e.Queue)
		b.Uvarint(uint64(el.e.EID))
		b.String(regQueue)
		b.String(registrant)
		b.BytesField(tag)
		b.BytesField(regCopy)
		r.logOp(t, b.Bytes())
	}
}

// undoClaim returns a claimed element to its queue when the claiming
// transaction rolls back: plain requeue, error-queue diversion on the
// retry limit, or drop if killed meanwhile. Runs with no locks held; the
// two-shard diversion case locks both shards in name order (lockPair).
func (r *Repository) undoClaim(el *elem, returned *claimReturn) {
	r.mu.RLock()
	qs := el.q.Load() // stable: only this undo moves a dequeued element
	var eqs *queueState
	if qs.cfg.RetryLimit > 0 && qs.cfg.ErrorQueue != "" {
		eqs = r.queues[qs.cfg.ErrorQueue] // may be nil (missing error queue)
	}
	lockPair(qs, eqs)
	r.mu.RUnlock()
	// qs is necessarily sealed (it holds el); the error queue may not be,
	// and the diversion below inserts into its lists.
	qs.sealFastLocked()
	if eqs != nil && eqs != qs {
		eqs.sealFastLocked()
	}

	qs.bumpInFlight(-1)
	if el.killed {
		qs.remove(el)
		returned.killed = true
		strict := qs.cfg.StrictFIFO
		if strict {
			qs.notifyLocked() // removal unblocks waiters behind the head
		}
		qs.maybeReopenFastLocked()
		unlockPair(qs, eqs)
		r.elems.del(el.e.EID)
		return
	}
	el.owner = nil
	el.e.AbortCount++
	returned.count = el.e.AbortCount
	returned.volatil = qs.volatile
	qs.countRequeue()
	if eqs != nil && el.e.AbortCount >= qs.cfg.RetryLimit {
		qs.remove(el)
		el.e.Queue = eqs.name
		el.e.AbortCode = fmt.Sprintf("aborted %d times", el.e.AbortCount)
		el.q.Store(eqs)
		el.state = stateVisible
		eqs.insert(el)
		eqs.bumpDepth(1)
		qs.countDiversion()
		returned.moved = eqs.name
		eqs.notifyLocked() // new visible element in the error queue
		if eqs != qs && qs.cfg.StrictFIFO {
			qs.notifyLocked() // head removed from the source queue
		}
		qs.maybeReopenFastLocked() // the diverted element left this queue
		unlockPair(qs, eqs)
		r.logger.Warn("element diverted to error queue",
			rlog.Str("queue", qs.name),
			rlog.Str("error_queue", eqs.name),
			rlog.Uint64("eid", uint64(el.e.EID)),
			rlog.Int("aborts", int(el.e.AbortCount)))
		return
	}
	el.state = stateVisible
	if el.visibleAt != 0 {
		el.visibleAt = time.Now().UnixNano() // residency restarts for the retry's span
	}
	qs.bumpDepth(1)
	qs.notifyLocked() // element visible again
	unlockPair(qs, eqs)
}

// logAbortReturn durably records that an aborted dequeue returned an
// element (with its new abort count, possibly diverted to an error queue),
// so retry counting survives crashes. Runs outside all repository locks,
// in its own system transaction.
func (r *Repository) logAbortReturn(eid EID, count int32, movedTo string) {
	st := r.tm.Begin()
	b := enc.NewBuffer(24)
	b.Uint8(opAbortReturn)
	b.Uvarint(uint64(eid))
	b.Varint(int64(count))
	b.String(movedTo)
	st.LogOp(rmName, b.Bytes())
	_ = st.Commit() // best-effort: a crash here merely loses one retry tick
}

// DequeueSet dequeues the best available element across several queues (a
// "queue set", Section 9): highest priority first, then oldest. All queues
// must exist; StrictFIFO blocking applies per queue. While waiting, the
// caller registers a waiter token on every member queue, so a commit on
// any member wakes this set — and commits elsewhere wake nothing.
func (r *Repository) DequeueSet(ctx context.Context, t *txn.Txn, qnames []string, registrant string, opts DequeueOpts) (Element, error) {
	var out Element
	err := r.autoTxn(t, func(t *txn.Txn) error {
		// Sorted unique names give the ordered multi-shard acquisition.
		names := append([]string(nil), qnames...)
		sort.Strings(names)
		uniq := names[:0]
		for i, n := range names {
			if i == 0 || n != names[i-1] {
				uniq = append(uniq, n)
			}
		}
		names = uniq
		if len(names) == 0 {
			return fmt.Errorf("%w: empty set", ErrNoQueue)
		}

		var sw *setWaiter
		var registered []*queueState // shards carrying sw, for cleanup
		if opts.Wait {
			sw = newSetWaiter()
			if ctx != nil && ctx.Done() != nil {
				stop := context.AfterFunc(ctx, sw.fire)
				defer stop()
			}
			defer func() {
				for _, qs := range registered {
					qs.lock()
					delete(qs.setWaiters, sw)
					qs.maybeReopenFastLocked()
					qs.unlock()
				}
			}()
		}

		var waitStart time.Time
		woken := false
		cur := make([]*queueState, len(names))
		for {
			r.mu.RLock()
			if r.closed {
				r.mu.RUnlock()
				return ErrClosed
			}
			for i, n := range names {
				qs, ok := r.queues[n]
				if !ok {
					r.mu.RUnlock()
					return fmt.Errorf("%w: %s", ErrNoQueue, n)
				}
				cur[i] = qs
			}
			for _, qs := range cur {
				qs.lock()
			}
			r.mu.RUnlock()
			// The scan below needs every member's locked lists complete.
			for _, qs := range cur {
				qs.sealFastLocked()
			}

			var best *elem
			var bestQS *queueState
			var bestQueue string
			for i, qs := range cur {
				if qs.stopped {
					continue
				}
				el, _ := scanQueueLocked(qs, &opts)
				if el == nil {
					continue
				}
				if best == nil || el.e.Priority > best.e.Priority ||
					(el.e.Priority == best.e.Priority && el.e.seq < best.e.seq) {
					best = el
					bestQS = qs
					bestQueue = names[i]
				}
			}
			if best != nil {
				claimShardLocked(bestQS, best, t)
				for i := len(cur) - 1; i >= 0; i-- {
					cur[i].maybeReopenFastLocked()
					cur[i].unlock()
				}
				if woken {
					r.mWakeTargeted.Inc()
				}
				if !waitStart.IsZero() {
					r.mWaitNanos.Observe(time.Since(waitStart).Nanoseconds())
				}
				r.wireClaim(t, best, bestQueue, registrant, opts.Tag)
				r.recordDequeueSpan(best)
				out = best.e.clone()
				return nil
			}
			if !opts.Wait {
				for i := len(cur) - 1; i >= 0; i-- {
					cur[i].maybeReopenFastLocked()
					cur[i].unlock()
				}
				return fmt.Errorf("%w: set %v", ErrEmpty, qnames)
			}
			if ctx != nil && ctx.Err() != nil {
				for i := len(cur) - 1; i >= 0; i-- {
					cur[i].maybeReopenFastLocked()
					cur[i].unlock()
				}
				return ctx.Err()
			}
			if woken {
				r.mWakeSpurious.Inc()
			}
			// Subscribe to every member while still holding all shard
			// locks: any commit after this release finds the token, so no
			// wakeup is lost between scan and wait.
			for _, qs := range cur {
				if _, ok := qs.setWaiters[sw]; !ok {
					qs.setWaiters[sw] = struct{}{}
					registered = append(registered, qs)
				}
			}
			for i := len(cur) - 1; i >= 0; i-- {
				cur[i].unlock()
			}
			if waitStart.IsZero() {
				waitStart = time.Now()
			}
			sw.wait()
			woken = true
		}
	})
	if err != nil {
		return Element{}, err
	}
	return out, nil
}

// --- read ---

// Read returns a copy of a live element without modifying it (Section
// 4.2). Elements held by uncommitted dequeuers are readable (their
// committed state is "in the queue"); uncommitted enqueues are not.
func (r *Repository) Read(eid EID) (Element, error) {
	el, ok := r.elems.get(eid)
	if !ok {
		// The element may be riding a lock-free ring, invisible to the eid
		// index; sealing the fast-resident queues materializes it.
		r.drainFastResident()
		el, ok = r.elems.get(eid)
	}
	if !ok {
		return Element{}, fmt.Errorf("%w: eid %d", ErrNotFound, eid)
	}
	qs := r.lockElem(el)
	if qs == nil {
		return Element{}, fmt.Errorf("%w: eid %d", ErrNotFound, eid)
	}
	if el.state == statePending {
		qs.unlock()
		return Element{}, fmt.Errorf("%w: eid %d", ErrNotFound, eid)
	}
	e := el.e.clone()
	qs.unlock()
	return e, nil
}

// ReadLast returns the element most recently operated on by the handle's
// registrant, served from the registration's stable copy — even if the
// element has since been consumed (the basis of Rereceive, Sections 4.3
// and 5).
func (r *Repository) ReadLast(h *Handle) (Element, error) {
	r.regMu.Lock()
	g, ok := r.regs[regKey{queue: h.queue, registrant: h.registrant}]
	if !ok {
		r.regMu.Unlock()
		return Element{}, fmt.Errorf("%w: %s on %s", ErrNotRegistered, h.registrant, h.queue)
	}
	if !g.hasLast || g.lastElem == nil {
		r.regMu.Unlock()
		return Element{}, fmt.Errorf("%w: no last element for %s", ErrNotFound, h.registrant)
	}
	data := g.lastElem
	r.regMu.Unlock()
	return unmarshalElement(data)
}

// --- cancellation ---

// KillElement tries to delete the element (the paper's cancellation
// primitive, Section 7): a waiting element is deleted; an element held by
// an uncommitted dequeuer dooms that transaction and is deleted when it
// rolls back; an element already consumed (or held by a prepared
// transaction, whose outcome the coordinator owns) is not killed.
// KillElement reports whether the element is now guaranteed dead. It is
// always auto-committed.
func (r *Repository) KillElement(eid EID) (bool, error) {
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return false, ErrClosed
	}
	r.mu.RUnlock()
	el, ok := r.elems.get(eid)
	if !ok {
		// Ring-resident elements are not in the eid index; seal the
		// fast-resident queues and retry before concluding it is gone.
		r.drainFastResident()
		el, ok = r.elems.get(eid)
	}
	if !ok {
		return false, nil // already consumed (or never existed)
	}
	qs := r.lockElem(el)
	if qs == nil {
		return false, nil // consumed (or its queue destroyed) meanwhile
	}
	switch el.state {
	case statePending:
		// Uncommitted enqueue: the killer cannot have learned this eid
		// through a committed channel; treat as not-found.
		qs.unlock()
		return false, nil
	case stateDequeued:
		// Mark killed first so the owner's abort-undo (which may run at any
		// moment) drops the element instead of requeueing it; then ask the
		// owner to die. Doom's answer is authoritative: true means the
		// owner is guaranteed to abort.
		owner := el.owner
		volatil := qs.volatile
		el.killed = true
		qs.unlock()
		if owner != nil && owner.Doom() {
			if !volatil {
				r.logKill(eid)
			}
			return true, nil
		}
		// The owner's outcome is out of our hands: it committed (element
		// consumed — not killed), is prepared (coordinator owns it), or
		// already aborted. In the last case its undo ran before we set
		// killed (state transitions under the shard lock make later undos
		// see the flag), so check whether the flag took effect.
		cur, present := r.elems.get(eid)
		if present && cur == el {
			if qs2 := r.lockElem(el); qs2 != nil {
				el.killed = false // owner will (or did) consume or keep it
				qs2.unlock()
				return false, nil
			}
		}
		if owner != nil && owner.State() == txn.Aborted {
			// Element is gone and the owner aborted: the kill took effect.
			if !volatil {
				r.logKill(eid)
			}
			return true, nil
		}
		return false, nil
	case stateVisible:
		qs.remove(el)
		qs.bumpDepth(-1)
		qs.countKill()
		qs.maybeReopenFastLocked()
		volatil := qs.volatile
		qs.unlock()
		r.elems.del(eid)
		if !volatil {
			r.logKill(eid)
		}
		return true, nil
	}
	qs.unlock()
	return false, nil
}

func (r *Repository) logKill(eid EID) {
	st := r.tm.Begin()
	b := enc.NewBuffer(12)
	b.Uint8(opKill)
	b.Uvarint(uint64(eid))
	st.LogOp(rmName, b.Bytes())
	_ = st.Commit()
}

// --- key-value tables (the server-side shared database) ---

func kvResource(table, key string) string { return "kv/" + table + "/" + key }

// KVSet transactionally writes table[key] = value under an exclusive lock.
func (r *Repository) KVSet(ctx context.Context, t *txn.Txn, table, key string, value []byte) error {
	return r.autoTxn(t, func(t *txn.Txn) error {
		if err := t.Lock(ctx, kvResource(table, key), lock.Exclusive); err != nil {
			return err
		}
		value := append([]byte(nil), value...)
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return ErrClosed
		}
		r.mu.RUnlock()
		r.kvMu.Lock()
		tbl, ok := r.tables[table]
		if !ok {
			tbl = make(map[string][]byte)
			r.tables[table] = tbl
		}
		old, had := tbl[key]
		tbl[key] = value
		r.kvMu.Unlock()
		t.OnUndo(func() {
			r.kvMu.Lock()
			if had {
				tbl[key] = old
			} else {
				delete(tbl, key)
			}
			r.kvMu.Unlock()
		})
		b := enc.NewBuffer(32 + len(value))
		b.Uint8(opKVSet)
		b.String(table)
		b.String(key)
		b.BytesField(value)
		r.logOp(t, b.Bytes())
		return nil
	})
}

// KVGet reads table[key]. Inside a transaction it takes a shared lock (or
// exclusive when forUpdate), giving serializable reads; with t == nil it
// reads committed state without locking.
func (r *Repository) KVGet(ctx context.Context, t *txn.Txn, table, key string, forUpdate bool) ([]byte, bool, error) {
	if t != nil {
		mode := lock.Shared
		if forUpdate {
			mode = lock.Exclusive
		}
		if err := t.Lock(ctx, kvResource(table, key), mode); err != nil {
			return nil, false, err
		}
	}
	r.mu.RLock()
	if r.closed {
		r.mu.RUnlock()
		return nil, false, ErrClosed
	}
	r.mu.RUnlock()
	r.kvMu.Lock()
	defer r.kvMu.Unlock()
	v, ok := r.tables[table][key]
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// KVDelete transactionally deletes table[key].
func (r *Repository) KVDelete(ctx context.Context, t *txn.Txn, table, key string) error {
	return r.autoTxn(t, func(t *txn.Txn) error {
		if err := t.Lock(ctx, kvResource(table, key), lock.Exclusive); err != nil {
			return err
		}
		r.mu.RLock()
		if r.closed {
			r.mu.RUnlock()
			return ErrClosed
		}
		r.mu.RUnlock()
		r.kvMu.Lock()
		tbl := r.tables[table]
		old, had := tbl[key]
		if had {
			delete(tbl, key)
			t.OnUndo(func() {
				r.kvMu.Lock()
				tbl[key] = old
				r.kvMu.Unlock()
			})
		}
		r.kvMu.Unlock()
		b := enc.NewBuffer(32)
		b.Uint8(opKVDel)
		b.String(table)
		b.String(key)
		r.logOp(t, b.Bytes())
		return nil
	})
}

// --- handle conveniences (the paper's fig. 3 surface) ---

// Enqueue enqueues into the handle's queue with the registrant's tag.
func (h *Handle) Enqueue(t *txn.Txn, e Element, tag []byte) (EID, error) {
	return h.r.Enqueue(t, h.queue, e, h.registrant, tag)
}

// Dequeue dequeues from the handle's queue with the registrant's tag.
func (h *Handle) Dequeue(ctx context.Context, t *txn.Txn, opts DequeueOpts) (Element, error) {
	return h.r.Dequeue(ctx, t, h.queue, h.registrant, opts)
}

// ReadLast returns the registrant's last-operated element (Rereceive).
func (h *Handle) ReadLast() (Element, error) { return h.r.ReadLast(h) }

// Info returns the registrant's current persistent registration info.
func (h *Handle) Info() (RegInfo, error) {
	h.r.regMu.Lock()
	defer h.r.regMu.Unlock()
	g, ok := h.r.regs[regKey{queue: h.queue, registrant: h.registrant}]
	if !ok {
		return RegInfo{}, fmt.Errorf("%w: %s on %s", ErrNotRegistered, h.registrant, h.queue)
	}
	return g.info(), nil
}
