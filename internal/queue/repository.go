package queue

import (
	"container/list"
	"fmt"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/enc"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// rmName identifies the repository's redo records in the shared log.
const rmName = "qm"

// elemState tracks an element's transactional visibility.
type elemState int8

const (
	// statePending: enqueued by an uncommitted transaction; invisible.
	statePending elemState = iota
	// stateVisible: committed and available for dequeue.
	stateVisible
	// stateDequeued: removed by an uncommitted transaction; invisible to
	// dequeuers but still present (its committed state is "in the queue").
	stateDequeued
)

// elem is the in-memory representation of one element.
type elem struct {
	e      Element
	state  elemState
	owner  *txn.Txn // while pending or dequeued
	killed bool     // killed while dequeued; dropped on owner's abort
	node   *list.Element
	q      *queueState
}

// queueState is one queue's in-memory structure: per-priority FIFO lists.
type queueState struct {
	cfg     QueueConfig
	lists   map[int32]*list.List
	prios   []int32 // sorted descending
	stopped bool
	stats   QueueStats
	m       qmetrics
}

// qmetrics holds the queue's registry instruments, resolved once at queue
// creation so the per-operation cost is a single atomic add. Every
// qs.stats bump is mirrored here; the stats struct stays the synchronous
// per-queue API while the registry gives the cross-layer labeled view.
type qmetrics struct {
	enqueues   *obs.Counter
	dequeues   *obs.Counter
	requeues   *obs.Counter // abort-returns back onto the queue
	kills      *obs.Counter
	diversions *obs.Counter // retry-limit diversions to the error queue
	depth      *obs.Gauge
	inFlight   *obs.Gauge
}

// newQueueState builds a queue's state with instruments labeled by queue
// name. Counters for a re-created queue continue from the prior
// incarnation's values (cumulative by design); the depth gauge is zeroed
// on destroy so it always reflects live visible depth.
func (r *Repository) newQueueState(cfg QueueConfig) *queueState {
	qs := &queueState{cfg: cfg, lists: make(map[int32]*list.List)}
	qs.m = qmetrics{
		enqueues:   r.reg.Counter("queue.enqueues", "queue", cfg.Name),
		dequeues:   r.reg.Counter("queue.dequeues", "queue", cfg.Name),
		requeues:   r.reg.Counter("queue.requeues", "queue", cfg.Name),
		kills:      r.reg.Counter("queue.kills", "queue", cfg.Name),
		diversions: r.reg.Counter("queue.error_diversions", "queue", cfg.Name),
		depth:      r.reg.Gauge("queue.depth", "queue", cfg.Name),
		inFlight:   r.reg.Gauge("queue.in_flight", "queue", cfg.Name),
	}
	return qs
}

func (q *queueState) countEnqueue()   { q.stats.Enqueues++; q.m.enqueues.Inc() }
func (q *queueState) countDequeue()   { q.stats.Dequeues++; q.m.dequeues.Inc() }
func (q *queueState) countRequeue()   { q.stats.AbortReturns++; q.m.requeues.Inc() }
func (q *queueState) countKill()      { q.stats.Kills++; q.m.kills.Inc() }
func (q *queueState) countDiversion() { q.stats.ErrorDiversions++; q.m.diversions.Inc() }

func (q *queueState) bumpInFlight(delta int) {
	q.stats.InFlight += delta
	q.m.inFlight.Add(int64(delta))
}

func (q *queueState) listFor(prio int32) *list.List {
	l, ok := q.lists[prio]
	if !ok {
		l = list.New()
		q.lists[prio] = l
		q.prios = append(q.prios, prio)
		sort.Slice(q.prios, func(i, j int) bool { return q.prios[i] > q.prios[j] })
	}
	return l
}

// insert places el into FIFO position within its priority (ordered by seq,
// so recovery re-inserts in original order even when replay order differs).
func (q *queueState) insert(el *elem) {
	l := q.listFor(el.e.Priority)
	for n := l.Back(); n != nil; n = n.Prev() {
		if n.Value.(*elem).e.seq <= el.e.seq {
			el.node = l.InsertAfter(el, n)
			return
		}
	}
	el.node = l.PushFront(el)
}

func (q *queueState) remove(el *elem) {
	if el.node != nil {
		q.lists[el.e.Priority].Remove(el.node)
		el.node = nil
	}
}

// live counts elements in any state (pending, visible, dequeued).
func (q *queueState) live() int {
	n := 0
	for _, l := range q.lists {
		n += l.Len()
	}
	return n
}

func (q *queueState) bumpDepth(delta int) {
	q.stats.Depth += delta
	if q.stats.Depth > q.stats.MaxDepth {
		q.stats.MaxDepth = q.stats.Depth
	}
	q.m.depth.Add(int64(delta))
}

// regKey identifies a registration: a registrant is bound to one queue.
type regKey struct {
	queue      string
	registrant string
}

// registration is the persistent per-registrant state (Section 4.3).
type registration struct {
	key      regKey
	stable   bool
	hasLast  bool
	lastOp   OpType
	lastEID  EID
	lastTag  []byte
	lastElem []byte // stable copy of the last element operated on
}

func (g *registration) info() RegInfo {
	ri := RegInfo{HasLast: g.hasLast, LastOp: g.lastOp, LastEID: g.lastEID}
	if g.lastTag != nil {
		ri.LastTag = append([]byte(nil), g.lastTag...)
	}
	return ri
}

// trigger fires an enqueue when a watched queue's visible depth reaches a
// threshold — the paper's fork/join mechanism: "a trigger is set to send a
// request when all of the replies to earlier concurrent requests have been
// received" (Section 6).
type trigger struct {
	id        string
	watch     string
	threshold int32
	fire      Element // enqueued into fire.Queue when the trigger fires
}

// AlertFunc receives queue-depth alert notifications (Section 9's alert
// thresholds). It is called on its own goroutine.
type AlertFunc func(queue string, depth int)

// Options configure a Repository.
type Options struct {
	// Name is the repository's system-wide unique name (Section 4.1).
	Name string
	// NoFsync disables physical fsync (tests and benchmarks).
	NoFsync bool
	// SnapshotEvery takes a snapshot after this many logged operations;
	// zero disables automatic snapshots (Checkpoint can still be called).
	SnapshotEvery int
	// SegmentSize overrides the WAL segment size.
	SegmentSize int64
	// GroupCommit batches concurrent commits' fsyncs into one (the
	// classic group-commit optimization); durability is unchanged — a
	// commit still returns only after its record is on disk.
	GroupCommit bool
	// Metrics, when non-nil, is the registry all layers (WAL, lock, txn,
	// queue) record into. When nil the repository creates a private one,
	// retrievable via Metrics().
	Metrics *obs.Registry
}

// Repository is a queue repository: a named set of queues, registrations,
// key-value tables and triggers, durable via one write-ahead log.
type Repository struct {
	name  string
	dir   string
	opts  Options
	log   *wal.Log
	locks *lock.Manager
	tm    *txn.Manager
	snap  *storage.Snapshotter
	reg   *obs.Registry

	// mWaitNanos records how long blocking dequeuers waited for an
	// element to become visible.
	mWaitNanos *obs.Histogram

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on any visibility change
	closed   bool
	queues   map[string]*queueState
	elems    map[EID]*elem
	regs     map[regKey]*registration
	triggers map[string]*trigger
	tables   map[string]map[string][]byte
	nextEID  uint64
	nextSeq  uint64
	opCount  int // logged ops since last snapshot

	alertMu sync.Mutex
	alertFn AlertFunc
}

// Open opens (creating if necessary) the repository in dir and recovers it
// from its snapshot and log. It returns any in-doubt prepared transactions
// for the distributed-commit layer to resolve.
func Open(dir string, opts Options) (*Repository, []txn.InDoubt, error) {
	if opts.Name == "" {
		opts.Name = filepath.Base(dir)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	walOpts := wal.Options{
		NoFsync:     opts.NoFsync,
		SegmentSize: opts.SegmentSize,
		Metrics:     reg,
	}
	if opts.GroupCommit {
		walOpts.Sync = wal.SyncGroup
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), walOpts)
	if err != nil {
		return nil, nil, err
	}
	snap, err := storage.NewSnapshotter(filepath.Join(dir, "snap"), opts.NoFsync)
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	lm := lock.NewManagerWith(reg)
	r := &Repository{
		name:       opts.Name,
		dir:        dir,
		opts:       opts,
		log:        log,
		locks:      lm,
		tm:         txn.NewManagerWith(log, lm, reg),
		snap:       snap,
		reg:        reg,
		mWaitNanos: reg.Histogram("queue.dequeue_wait_ns"),
		queues:     make(map[string]*queueState),
		elems:      make(map[EID]*elem),
		regs:       make(map[regKey]*registration),
		triggers:   make(map[string]*trigger),
		tables:     make(map[string]map[string][]byte),
		nextEID:    1,
		nextSeq:    1,
	}
	r.cond = sync.NewCond(&r.mu)
	r.tm.RegisterRM(r)

	// Recovery: snapshot, then log replay.
	var snapLSN wal.LSN
	data, lsn, err := snap.Load()
	switch err {
	case nil:
		if err := r.loadSnapshot(data); err != nil {
			log.Close()
			return nil, nil, err
		}
		snapLSN = wal.LSN(lsn)
	case storage.ErrNoSnapshot:
		// fresh repository
	default:
		log.Close()
		return nil, nil, err
	}
	inDoubt, err := r.tm.Recover(snapLSN)
	if err != nil {
		log.Close()
		return nil, nil, fmt.Errorf("queue: recover %s: %w", opts.Name, err)
	}
	return r, inDoubt, nil
}

// Name returns the repository's unique name.
func (r *Repository) Name() string { return r.name }

// TM returns the repository's transaction manager; servers begin their
// request-processing transactions through it.
func (r *Repository) TM() *txn.Manager { return r.tm }

// Locks returns the repository's lock manager, shared with application
// locks (Section 6).
func (r *Repository) Locks() *lock.Manager { return r.locks }

// Log exposes the write-ahead log for stats.
func (r *Repository) Log() *wal.Log { return r.log }

// Metrics returns the registry all of the repository's layers (WAL, lock
// manager, transaction manager, queues) record into.
func (r *Repository) Metrics() *obs.Registry { return r.reg }

// SetAlertFunc installs the queue-depth alert callback.
func (r *Repository) SetAlertFunc(f AlertFunc) {
	r.alertMu.Lock()
	r.alertFn = f
	r.alertMu.Unlock()
}

// Crash simulates a process failure: the write-ahead log is closed with no
// checkpoint, and the repository rejects further operations. All volatile
// state (in-flight transactions, volatile queues, unsnapshotted memory) is
// abandoned exactly as a real crash would abandon it; reopen the directory
// to recover. The chaos test harness is the intended caller.
func (r *Repository) Crash() {
	r.mu.Lock()
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	_ = r.log.Close()
}

// Close snapshots and closes the repository.
func (r *Repository) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	if err := r.Checkpoint(); err != nil {
		r.log.Close()
		return err
	}
	return r.log.Close()
}

// --- transactions ---

// Begin starts a transaction against this repository.
func (r *Repository) Begin() *txn.Txn { return r.tm.Begin() }

// autoTxn runs op inside t, or inside a fresh auto-commit transaction when
// t is nil (the paper's non-transactional front-end access). op must not
// commit or abort t itself.
func (r *Repository) autoTxn(t *txn.Txn, op func(t *txn.Txn) error) error {
	if t != nil {
		return op(t)
	}
	at := r.tm.Begin()
	if err := op(at); err != nil {
		// Roll back whatever the op half-did.
		_ = at.Abort()
		return err
	}
	return at.Commit()
}

// --- DDL ---

// CreateQueue creates a queue. DDL is always auto-committed.
func (r *Repository) CreateQueue(cfg QueueConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("queue: empty queue name")
	}
	return r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		if _, ok := r.queues[cfg.Name]; ok {
			return fmt.Errorf("%w: %s", ErrQueueExists, cfg.Name)
		}
		qs := r.newQueueState(cfg)
		r.queues[cfg.Name] = qs
		t.OnUndo(func() {
			r.mu.Lock()
			delete(r.queues, cfg.Name)
			r.mu.Unlock()
		})
		b := enc.NewBuffer(32)
		b.Uint8(opCreateQueue)
		encodeConfig(b, &cfg)
		r.logOpLocked(t, b.Bytes())
		return nil
	})
}

// DestroyQueue removes a queue and its elements. It fails with ErrBusy if
// any element is held by an in-flight transaction.
func (r *Repository) DestroyQueue(name string) error {
	return r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		qs, ok := r.queues[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, name)
		}
		var doomed []*elem
		for _, l := range qs.lists {
			for n := l.Front(); n != nil; n = n.Next() {
				el := n.Value.(*elem)
				if el.state != stateVisible {
					return fmt.Errorf("%w: %s has in-flight elements", ErrBusy, name)
				}
				doomed = append(doomed, el)
			}
		}
		delete(r.queues, name)
		for _, el := range doomed {
			delete(r.elems, el.e.EID)
		}
		qs.m.depth.Add(-int64(qs.stats.Depth)) // gauge reflects live queues only
		t.OnUndo(func() {
			r.mu.Lock()
			r.queues[name] = qs
			for _, el := range doomed {
				r.elems[el.e.EID] = el
			}
			qs.m.depth.Add(int64(qs.stats.Depth))
			r.mu.Unlock()
		})
		b := enc.NewBuffer(16)
		b.Uint8(opDestroyQueue)
		b.String(name)
		r.logOpLocked(t, b.Bytes())
		return nil
	})
}

// UpdateQueueConfig modifies a queue's tunables in place (the "modify"
// data-definition operation of Section 4.1): error queue, retry limit,
// strict-FIFO mode, redirection, alert threshold, and max depth. The name
// and volatility are immutable.
func (r *Repository) UpdateQueueConfig(cfg QueueConfig) error {
	return r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		qs, ok := r.queues[cfg.Name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, cfg.Name)
		}
		prev := qs.cfg
		cfg.Volatile = prev.Volatile // immutable
		qs.cfg = cfg
		r.cond.Broadcast() // strict-FIFO relaxation may unblock waiters
		t.OnUndo(func() {
			r.mu.Lock()
			qs.cfg = prev
			r.mu.Unlock()
		})
		b := enc.NewBuffer(64)
		b.Uint8(opUpdateQueue)
		encodeConfig(b, &cfg)
		r.logOpLocked(t, b.Bytes())
		return nil
	})
}

// StopQueue pauses dequeues from a queue; enqueues still succeed.
func (r *Repository) StopQueue(name string) error { return r.setStopped(name, true) }

// StartQueue resumes dequeues from a stopped queue.
func (r *Repository) StartQueue(name string) error { return r.setStopped(name, false) }

func (r *Repository) setStopped(name string, stopped bool) error {
	return r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		qs, ok := r.queues[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, name)
		}
		prev := qs.stopped
		qs.stopped = stopped
		if !stopped {
			r.cond.Broadcast()
		}
		t.OnUndo(func() {
			r.mu.Lock()
			qs.stopped = prev
			r.mu.Unlock()
		})
		b := enc.NewBuffer(16)
		b.Uint8(opSetStopped)
		b.String(name)
		b.Bool(stopped)
		r.logOpLocked(t, b.Bytes())
		return nil
	})
}

// Queues lists queue names.
func (r *Repository) Queues() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.queues))
	for name := range r.queues {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a queue's counters.
func (r *Repository) Stats(name string) (QueueStats, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	qs, ok := r.queues[name]
	if !ok {
		return QueueStats{}, fmt.Errorf("%w: %s", ErrNoQueue, name)
	}
	return qs.stats, nil
}

// Depth returns a queue's visible depth.
func (r *Repository) Depth(name string) (int, error) {
	st, err := r.Stats(name)
	return st.Depth, err
}

// Config returns a queue's configuration.
func (r *Repository) Config(name string) (QueueConfig, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	qs, ok := r.queues[name]
	if !ok {
		return QueueConfig{}, fmt.Errorf("%w: %s", ErrNoQueue, name)
	}
	return qs.cfg, nil
}

// ListElements returns up to max elements of a queue in dequeue order
// (copies; diagnostic use).
func (r *Repository) ListElements(name string, max int) ([]Element, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	qs, ok := r.queues[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoQueue, name)
	}
	var out []Element
	for _, prio := range qs.prios {
		for n := qs.lists[prio].Front(); n != nil; n = n.Next() {
			el := n.Value.(*elem)
			if el.state == statePending {
				continue
			}
			out = append(out, el.e.clone())
			if max > 0 && len(out) >= max {
				return out, nil
			}
		}
	}
	return out, nil
}

// logOpLocked attaches a redo op to t and counts it toward the snapshot
// cadence. Caller holds r.mu.
func (r *Repository) logOpLocked(t *txn.Txn, data []byte) {
	t.LogOp(rmName, data)
	r.opCount++
}

// maybeSnapshot is called outside r.mu after committing an auto-op; it
// takes a checkpoint when the configured cadence is reached.
func (r *Repository) maybeSnapshot() {
	if r.opts.SnapshotEvery <= 0 {
		return
	}
	r.mu.Lock()
	due := r.opCount >= r.opts.SnapshotEvery
	if due {
		r.opCount = 0
	}
	r.mu.Unlock()
	if due {
		_ = r.Checkpoint() // best effort; next cadence retries
	}
}

// fireAlert delivers a depth alert without holding locks.
func (r *Repository) fireAlert(queue string, depth int) {
	r.alertMu.Lock()
	f := r.alertFn
	r.alertMu.Unlock()
	if f != nil {
		go f(queue, depth)
	}
}

// --- snapshots ---

// Checkpoint serializes committed state, writes a snapshot, and truncates
// the log below min(snapshot LSN, oldest outstanding prepare).
func (r *Repository) Checkpoint() error {
	var data []byte
	var lastLSN, cutoff wal.LSN
	err := r.tm.BlockCommits(func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		data = r.serializeLocked()
		lastLSN = r.log.LastLSN()
		cutoff = lastLSN + 1
		if p := r.tm.OldestPrepareLSN(); p != 0 && p < cutoff {
			cutoff = p
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := r.snap.Write(uint64(lastLSN), data); err != nil {
		return fmt.Errorf("queue: checkpoint %s: %w", r.name, err)
	}
	if err := r.log.TruncateBefore(cutoff); err != nil {
		return fmt.Errorf("queue: truncate %s: %w", r.name, err)
	}
	return nil
}

const snapVersion = 1

// serializeLocked encodes committed state only: pending elements are
// omitted (their transactions haven't committed), dequeued elements are
// written as visible (their committed state is "still in the queue"; the
// dequeuer's commit record, if any, has a later LSN and will be replayed).
func (r *Repository) serializeLocked() []byte {
	b := enc.NewBuffer(4096)
	b.Uint8(snapVersion)
	b.String(r.name)
	b.Uvarint(r.nextEID)
	b.Uvarint(r.nextSeq)
	b.Uvarint(r.tm.NextID())

	// Queues: definitions of volatile queues are durable, their contents
	// are not.
	var qnames []string
	for name := range r.queues {
		qnames = append(qnames, name)
	}
	sort.Strings(qnames)
	b.Uvarint(uint64(len(qnames)))
	for _, name := range qnames {
		qs := r.queues[name]
		encodeConfig(b, &qs.cfg)
		b.Bool(qs.stopped)
		var els []*elem
		if !qs.cfg.Volatile {
			for _, prio := range qs.prios {
				for n := qs.lists[prio].Front(); n != nil; n = n.Next() {
					el := n.Value.(*elem)
					if el.state == statePending {
						continue
					}
					els = append(els, el)
				}
			}
		}
		b.Uvarint(uint64(len(els)))
		for _, el := range els {
			encodeElement(b, &el.e)
		}
	}

	// Registrations.
	var rkeys []regKey
	for k := range r.regs {
		rkeys = append(rkeys, k)
	}
	sort.Slice(rkeys, func(i, j int) bool {
		if rkeys[i].queue != rkeys[j].queue {
			return rkeys[i].queue < rkeys[j].queue
		}
		return rkeys[i].registrant < rkeys[j].registrant
	})
	b.Uvarint(uint64(len(rkeys)))
	for _, k := range rkeys {
		g := r.regs[k]
		b.String(k.queue)
		b.String(k.registrant)
		b.Bool(g.stable)
		b.Bool(g.hasLast)
		b.Uint8(uint8(g.lastOp))
		b.Uvarint(uint64(g.lastEID))
		b.BytesField(g.lastTag)
		b.BytesField(g.lastElem)
	}

	// Triggers.
	var tids []string
	for id := range r.triggers {
		tids = append(tids, id)
	}
	sort.Strings(tids)
	b.Uvarint(uint64(len(tids)))
	for _, id := range tids {
		tr := r.triggers[id]
		b.String(tr.id)
		b.String(tr.watch)
		b.Varint(int64(tr.threshold))
		encodeElement(b, &tr.fire)
	}

	// Tables.
	var tnames []string
	for name := range r.tables {
		tnames = append(tnames, name)
	}
	sort.Strings(tnames)
	b.Uvarint(uint64(len(tnames)))
	for _, name := range tnames {
		tbl := r.tables[name]
		b.String(name)
		var keys []string
		for k := range tbl {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			b.String(k)
			b.BytesField(tbl[k])
		}
	}
	return b.Bytes()
}

func (r *Repository) loadSnapshot(data []byte) error {
	rd := enc.NewReader(data)
	if v := rd.Uint8(); v != snapVersion {
		return fmt.Errorf("queue: snapshot version %d unsupported", v)
	}
	r.name = rd.String()
	r.nextEID = rd.Uvarint()
	r.nextSeq = rd.Uvarint()
	r.tm.SetNextID(rd.Uvarint())

	nq := rd.Uvarint()
	for i := uint64(0); i < nq && rd.Err() == nil; i++ {
		cfg := decodeConfig(rd)
		qs := r.newQueueState(cfg)
		qs.stopped = rd.Bool()
		r.queues[cfg.Name] = qs
		ne := rd.Uvarint()
		for j := uint64(0); j < ne && rd.Err() == nil; j++ {
			e, err := decodeElement(rd)
			if err != nil {
				return fmt.Errorf("queue: snapshot element: %w", err)
			}
			el := &elem{e: e, state: stateVisible, q: qs}
			qs.insert(el)
			qs.bumpDepth(1)
			r.elems[e.EID] = el
		}
	}

	nr := rd.Uvarint()
	for i := uint64(0); i < nr && rd.Err() == nil; i++ {
		k := regKey{queue: rd.String(), registrant: rd.String()}
		g := &registration{key: k}
		g.stable = rd.Bool()
		g.hasLast = rd.Bool()
		g.lastOp = OpType(rd.Uint8())
		g.lastEID = EID(rd.Uvarint())
		g.lastTag = rd.BytesField()
		g.lastElem = rd.BytesField()
		r.regs[k] = g
	}

	nt := rd.Uvarint()
	for i := uint64(0); i < nt && rd.Err() == nil; i++ {
		tr := &trigger{}
		tr.id = rd.String()
		tr.watch = rd.String()
		tr.threshold = int32(rd.Varint())
		e, err := decodeElement(rd)
		if err != nil {
			return fmt.Errorf("queue: snapshot trigger: %w", err)
		}
		tr.fire = e
		r.triggers[tr.id] = tr
	}

	ntbl := rd.Uvarint()
	for i := uint64(0); i < ntbl && rd.Err() == nil; i++ {
		name := rd.String()
		nk := rd.Uvarint()
		tbl := make(map[string][]byte, nk)
		for j := uint64(0); j < nk && rd.Err() == nil; j++ {
			k := rd.String()
			tbl[k] = rd.BytesField()
		}
		r.tables[name] = tbl
	}
	if err := rd.Finish(); err != nil {
		return fmt.Errorf("queue: snapshot decode: %w", err)
	}
	return nil
}
