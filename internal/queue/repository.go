package queue

import (
	"fmt"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/enc"
	"repro/internal/lock"
	"repro/internal/obs"
	rlog "repro/internal/obs/log"
	"repro/internal/obs/trace"
	"repro/internal/storage"
	"repro/internal/txn"
	"repro/internal/wal"
)

// rmName identifies the repository's redo records in the shared log.
const rmName = "qm"

// regKey identifies a registration: a registrant is bound to one queue.
type regKey struct {
	queue      string
	registrant string
}

// registration is the persistent per-registrant state (Section 4.3).
type registration struct {
	key      regKey
	stable   bool
	hasLast  bool
	lastOp   OpType
	lastEID  EID
	lastTag  []byte
	lastElem []byte // stable copy of the last element operated on
}

func (g *registration) info() RegInfo {
	ri := RegInfo{HasLast: g.hasLast, LastOp: g.lastOp, LastEID: g.lastEID}
	if g.lastTag != nil {
		ri.LastTag = append([]byte(nil), g.lastTag...)
	}
	return ri
}

// trigger fires an enqueue when a watched queue's visible depth reaches a
// threshold — the paper's fork/join mechanism: "a trigger is set to send a
// request when all of the replies to earlier concurrent requests have been
// received" (Section 6).
type trigger struct {
	id        string
	watch     string
	threshold int32
	fire      Element // enqueued into fire.Queue when the trigger fires
}

// AlertFunc receives queue-depth alert notifications (Section 9's alert
// thresholds). It is called on its own goroutine.
type AlertFunc func(queue string, depth int)

// Options configure a Repository.
type Options struct {
	// Name is the repository's system-wide unique name (Section 4.1).
	Name string
	// NoFsync disables physical fsync (tests and benchmarks).
	NoFsync bool
	// SnapshotEvery takes a snapshot after this many logged operations;
	// zero disables automatic snapshots (Checkpoint can still be called).
	SnapshotEvery int
	// SegmentSize overrides the WAL segment size.
	SegmentSize int64
	// GroupCommit batches concurrent commits' fsyncs into one (the
	// classic group-commit optimization); durability is unchanged — a
	// commit still returns only after its record is on disk. It also
	// enables commit pipelining: locks release once the commit record is
	// staged with the log writer, before the batched fsync completes.
	GroupCommit bool
	// GroupCommitMaxDelay / GroupCommitMaxBatchBytes / GroupCommitMaxWaiters
	// tune the group-commit writer's batching window; see
	// wal.GroupCommitConfig. Zero values mean flush as soon as the writer
	// is free. Ignored unless GroupCommit is set.
	GroupCommitMaxDelay      time.Duration
	GroupCommitMaxBatchBytes int
	GroupCommitMaxWaiters    int
	// WALFS, when non-nil, supplies the WAL's segment files; crash tests
	// interpose a fault layer (internal/chaos/walfault) here. nil means
	// the real filesystem.
	WALFS wal.VFS
	// WALGate, when non-nil, runs after every WAL flush reaches local
	// stable storage and before the covered durable-LSN promises are
	// released — the hook synchronous replication hangs its commit rule
	// on (see wal.Gate). A gate error poisons the log.
	WALGate wal.Gate
	// Metrics, when non-nil, is the registry all layers (WAL, lock, txn,
	// queue) record into. When nil the repository creates a private one,
	// retrievable via Metrics().
	Metrics *obs.Registry
	// Tracer, when non-nil, records request spans across the queue and
	// transaction layers. nil disables tracing; every trace check then
	// costs one nil test, keeping the hot paths unchanged.
	Tracer *trace.Tracer
	// Logger receives repository lifecycle events (recovery, checkpoints,
	// DDL, error-queue diversions) and is threaded into the WAL. Nil
	// disables logging; element hot paths never log regardless.
	Logger *rlog.Logger
}

// Repository is a queue repository: a named set of queues, registrations,
// key-value tables and triggers, durable via one write-ahead log.
//
// Concurrency control is striped per queue: mu guards only the queue map
// (DDL and checkpoints take it exclusively, element operations take it
// shared), and each queueState carries its own latch and condition
// variable so disjoint queues never serialize and a commit wakes only the
// affected queue's waiters. The full lock order is documented in shard.go.
type Repository struct {
	name  string
	dir   string
	opts  Options
	log   *wal.Log
	locks *lock.Manager
	tm    *txn.Manager
	snap   *storage.Snapshotter
	reg    *obs.Registry
	tracer *trace.Tracer // nil when tracing is off
	logger *rlog.Logger  // nil-safe; cold paths only

	// mWaitNanos records how long blocking dequeuers waited for an
	// element to become visible.
	mWaitNanos *obs.Histogram
	// mShardWait records contended shard-lock acquisitions (uncontended
	// TryLock hits are not observed; see queueState.lock).
	mShardWait *obs.Histogram
	// mWakeTargeted / mWakeSpurious classify waiter wakeups: targeted
	// wakeups find an element on the rescan, spurious ones park again.
	// With per-queue signaling, commits on disjoint queues produce no
	// spurious wakeups at all (the thundering-herd regression test pins
	// this to zero).
	mWakeTargeted *obs.Counter
	mWakeSpurious *obs.Counter
	// mFastHits / mFastFallbacks classify completed auto-commit volatile
	// operations: a hit was served by a queue's lock-free ring (including
	// its authoritative empty answer), a fallback by the locked shard
	// path. Their sum equals the number of such operations — the
	// conservation law pinned by TestObsFastpathConservation.
	mFastHits      *obs.Counter
	mFastFallbacks *obs.Counter

	mu     sync.RWMutex // queue map + closed; never acquired under a shard lock
	closed bool
	queues map[string]*queueState

	elems *elemTable // eid index, striped independently of the shards

	regMu sync.Mutex // registrations (leaf lock)
	regs  map[regKey]*registration

	trigMu   sync.Mutex // triggers (leaf lock)
	triggers map[string]*trigger
	// ntrig mirrors len(triggers) (refreshed under trigMu by
	// syncTrigCount) so the lock-free enqueue path can skip the trigger
	// check without taking trigMu.
	ntrig atomic.Int64

	kvMu   sync.Mutex // key-value tables (leaf lock)
	tables map[string]map[string][]byte

	nextEID atomic.Uint64
	nextSeq atomic.Uint64
	opCount atomic.Int64 // logged ops since last snapshot

	alertMu sync.Mutex
	alertFn AlertFunc
}

// Open opens (creating if necessary) the repository in dir and recovers it
// from its snapshot and log. It returns any in-doubt prepared transactions
// for the distributed-commit layer to resolve.
func Open(dir string, opts Options) (*Repository, []txn.InDoubt, error) {
	if opts.Name == "" {
		opts.Name = filepath.Base(dir)
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	walOpts := wal.Options{
		NoFsync:     opts.NoFsync,
		SegmentSize: opts.SegmentSize,
		Metrics:     reg,
		FS:          opts.WALFS,
		Logger:      opts.Logger,
		Gate:        opts.WALGate,
	}
	if opts.GroupCommit {
		walOpts.Sync = wal.SyncGroup
		walOpts.GroupCommit = wal.GroupCommitConfig{
			MaxDelay:      opts.GroupCommitMaxDelay,
			MaxBatchBytes: opts.GroupCommitMaxBatchBytes,
			MaxWaiters:    opts.GroupCommitMaxWaiters,
		}
	}
	log, err := wal.Open(filepath.Join(dir, "wal"), walOpts)
	if err != nil {
		return nil, nil, err
	}
	snap, err := storage.NewSnapshotter(filepath.Join(dir, "snap"), opts.NoFsync)
	if err != nil {
		log.Close()
		return nil, nil, err
	}
	lm := lock.NewManagerWith(reg)
	r := &Repository{
		name:          opts.Name,
		dir:           dir,
		opts:          opts,
		log:           log,
		locks:         lm,
		tm:            txn.NewManagerWith(log, lm, reg),
		snap:          snap,
		reg:           reg,
		tracer:        opts.Tracer,
		logger:        opts.Logger.Named("queue"),
		mWaitNanos:    reg.Histogram("queue.dequeue_wait_ns"),
		mShardWait:    reg.Histogram("queue.shard_lock_wait_ns"),
		mWakeTargeted: reg.Counter("queue.wakeups_targeted"),
		mWakeSpurious: reg.Counter("queue.wakeups_spurious"),
		mFastHits:      reg.Counter("queue.fastpath_hits"),
		mFastFallbacks: reg.Counter("queue.fastpath_fallbacks"),
		queues:        make(map[string]*queueState),
		elems:         newElemTable(),
		regs:          make(map[regKey]*registration),
		triggers:      make(map[string]*trigger),
		tables:        make(map[string]map[string][]byte),
	}
	r.nextEID.Store(1)
	r.nextSeq.Store(1)
	r.tm.RegisterRM(r)
	r.tm.SetTracer(opts.Tracer)

	// Recovery: snapshot, then log replay.
	var snapLSN wal.LSN
	data, lsn, err := snap.Load()
	switch err {
	case nil:
		if err := r.loadSnapshot(data); err != nil {
			log.Close()
			return nil, nil, err
		}
		snapLSN = wal.LSN(lsn)
	case storage.ErrNoSnapshot:
		// fresh repository
	default:
		log.Close()
		return nil, nil, err
	}
	inDoubt, err := r.tm.Recover(snapLSN)
	if err != nil {
		log.Close()
		return nil, nil, fmt.Errorf("queue: recover %s: %w", opts.Name, err)
	}
	r.logger.Info("repository recovered",
		rlog.Str("name", r.name),
		rlog.Int("queues", len(r.queues)),
		rlog.Uint64("snapshot_lsn", uint64(snapLSN)),
		rlog.Uint64("next_lsn", uint64(log.NextLSN())),
		rlog.Int("in_doubt", len(inDoubt)))
	return r, inDoubt, nil
}

// WALErr reports the durability plane's health: nil while the write-ahead
// log accepts appends, the sticky writer error once the group-commit
// writer has failed, ErrClosed after Close/Crash. /healthz probes this.
func (r *Repository) WALErr() error { return r.log.Err() }

// Closed reports whether the repository has been closed or crashed.
func (r *Repository) Closed() bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.closed
}

// Name returns the repository's unique name.
func (r *Repository) Name() string { return r.name }

// TM returns the repository's transaction manager; servers begin their
// request-processing transactions through it.
func (r *Repository) TM() *txn.Manager { return r.tm }

// Locks returns the repository's lock manager, shared with application
// locks (Section 6).
func (r *Repository) Locks() *lock.Manager { return r.locks }

// Log exposes the write-ahead log for stats.
func (r *Repository) Log() *wal.Log { return r.log }

// Metrics returns the registry all of the repository's layers (WAL, lock
// manager, transaction manager, queues) record into.
func (r *Repository) Metrics() *obs.Registry { return r.reg }

// Tracer returns the repository's tracer (nil when tracing is off).
func (r *Repository) Tracer() *trace.Tracer { return r.tracer }

// SetAlertFunc installs the queue-depth alert callback.
func (r *Repository) SetAlertFunc(f AlertFunc) {
	r.alertMu.Lock()
	r.alertFn = f
	r.alertMu.Unlock()
}

// syncTrigCount refreshes the lock-free trigger-count gate. Call under
// trigMu after every mutation of r.triggers (loadSnapshot, which runs
// single-threaded before traffic, may call it unlocked).
func (r *Repository) syncTrigCount() {
	r.ntrig.Store(int64(len(r.triggers)))
}

// drainFastResident seals every queue that may hold ring-resident
// elements, materializing them in the locked lists and the eid index so
// eid-addressed operations (Read, KillElement) can find them; each queue
// reopens immediately if it turns out to be quiescent.
func (r *Repository) drainFastResident() {
	r.mu.RLock()
	var qss []*queueState
	for _, qs := range r.queues {
		if qs.ring != nil &&
			qs.fastEnqs.Load()-qs.fastDeqs.Load()-qs.fastDrained.Load() != 0 {
			qss = append(qss, qs)
		}
	}
	r.mu.RUnlock()
	for _, qs := range qss {
		qs.lock()
		qs.sealFastLocked()
		qs.maybeReopenFastLocked()
		qs.unlock()
	}
}

// wakeAllLocked wakes every parked waiter on every queue so they observe
// the closed flag. Caller holds r.mu exclusively.
func (r *Repository) wakeAllLocked() {
	for _, qs := range r.queues {
		qs.lock()
		qs.notifyLocked()
		qs.unlock()
	}
}

// Crash simulates a process failure: the write-ahead log is closed with no
// checkpoint, and the repository rejects further operations. All volatile
// state (in-flight transactions, volatile queues, unsnapshotted memory) is
// abandoned exactly as a real crash would abandon it; reopen the directory
// to recover. The chaos test harness is the intended caller.
func (r *Repository) Crash() {
	r.mu.Lock()
	r.closed = true
	r.wakeAllLocked()
	r.mu.Unlock()
	_ = r.log.Close()
	r.logger.Warn("repository crashed (simulated)", rlog.Str("name", r.name))
}

// Close snapshots and closes the repository.
func (r *Repository) Close() error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	r.wakeAllLocked()
	r.mu.Unlock()
	r.logger.Info("repository closing", rlog.Str("name", r.name))
	if err := r.Checkpoint(); err != nil {
		r.log.Close()
		return err
	}
	return r.log.Close()
}

// --- transactions ---

// Begin starts a transaction against this repository.
func (r *Repository) Begin() *txn.Txn { return r.tm.Begin() }

// autoTxn runs op inside t, or inside a fresh auto-commit transaction when
// t is nil (the paper's non-transactional front-end access). op must not
// commit or abort t itself.
func (r *Repository) autoTxn(t *txn.Txn, op func(t *txn.Txn) error) error {
	if t != nil {
		return op(t)
	}
	at := r.tm.Begin()
	if err := op(at); err != nil {
		// Roll back whatever the op half-did.
		_ = at.Abort()
		return err
	}
	return at.Commit()
}

// --- DDL ---

// CreateQueue creates a queue. DDL is always auto-committed.
func (r *Repository) CreateQueue(cfg QueueConfig) error {
	if cfg.Name == "" {
		return fmt.Errorf("queue: empty queue name")
	}
	return r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		if _, ok := r.queues[cfg.Name]; ok {
			return fmt.Errorf("%w: %s", ErrQueueExists, cfg.Name)
		}
		qs := r.newQueueState(cfg)
		r.queues[cfg.Name] = qs
		t.OnUndo(func() {
			r.mu.Lock()
			delete(r.queues, cfg.Name)
			r.mu.Unlock()
		})
		b := enc.NewBuffer(32)
		b.Uint8(opCreateQueue)
		encodeConfig(b, &cfg)
		r.logOp(t, b.Bytes())
		r.logger.Info("queue created",
			rlog.Str("queue", cfg.Name), rlog.Bool("volatile", cfg.Volatile))
		return nil
	})
}

// DestroyQueue removes a queue and its elements. It fails with ErrBusy if
// any element is held by an in-flight transaction.
func (r *Repository) DestroyQueue(name string) error {
	return r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		qs, ok := r.queues[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, name)
		}
		qs.lock()
		qs.sealFastLocked() // ring-resident elements must be found and doomed
		var doomed []*elem
		for _, l := range qs.lists {
			for n := l.Front(); n != nil; n = n.Next() {
				el := n.Value.(*elem)
				if el.state != stateVisible {
					qs.unlock()
					return fmt.Errorf("%w: %s has in-flight elements", ErrBusy, name)
				}
				doomed = append(doomed, el)
			}
		}
		delete(r.queues, name)
		qs.dead = true
		qs.m.depth.Add(-int64(qs.stats.Depth)) // gauge reflects live queues only
		qs.notifyLocked()                      // parked waiters re-resolve and fail
		qs.unlock()
		for _, el := range doomed {
			r.elems.del(el.e.EID)
		}
		t.OnUndo(func() {
			r.mu.Lock()
			r.queues[name] = qs
			qs.lock()
			qs.dead = false
			qs.m.depth.Add(int64(qs.stats.Depth))
			qs.unlock()
			for _, el := range doomed {
				r.elems.put(el.e.EID, el)
			}
			r.mu.Unlock()
		})
		b := enc.NewBuffer(16)
		b.Uint8(opDestroyQueue)
		b.String(name)
		r.logOp(t, b.Bytes())
		r.logger.Info("queue destroyed",
			rlog.Str("queue", name), rlog.Int("dropped", len(doomed)))
		return nil
	})
}

// UpdateQueueConfig modifies a queue's tunables in place (the "modify"
// data-definition operation of Section 4.1): error queue, retry limit,
// strict-FIFO mode, redirection, alert threshold, and max depth. The name
// and volatility are immutable.
func (r *Repository) UpdateQueueConfig(cfg QueueConfig) error {
	return r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		qs, ok := r.queues[cfg.Name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, cfg.Name)
		}
		qs.lock()
		// The new config may be ring-ineligible (MaxDepth, alerts,
		// redirection, strict FIFO): seal first so its constraints see the
		// complete locked state, then let the queue reopen if the new
		// config still allows it.
		qs.sealFastLocked()
		prev := qs.cfg
		cfg.Volatile = prev.Volatile // immutable
		qs.cfg = cfg
		qs.notifyLocked() // strict-FIFO relaxation may unblock waiters
		qs.maybeReopenFastLocked()
		qs.unlock()
		t.OnUndo(func() {
			r.mu.Lock()
			qs.lock()
			qs.sealFastLocked()
			qs.cfg = prev
			qs.maybeReopenFastLocked()
			qs.unlock()
			r.mu.Unlock()
		})
		b := enc.NewBuffer(64)
		b.Uint8(opUpdateQueue)
		encodeConfig(b, &cfg)
		r.logOp(t, b.Bytes())
		return nil
	})
}

// StopQueue pauses dequeues from a queue; enqueues still succeed.
func (r *Repository) StopQueue(name string) error { return r.setStopped(name, true) }

// StartQueue resumes dequeues from a stopped queue.
func (r *Repository) StartQueue(name string) error { return r.setStopped(name, false) }

func (r *Repository) setStopped(name string, stopped bool) error {
	return r.autoTxn(nil, func(t *txn.Txn) error {
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.closed {
			return ErrClosed
		}
		qs, ok := r.queues[name]
		if !ok {
			return fmt.Errorf("%w: %s", ErrNoQueue, name)
		}
		qs.lock()
		prev := qs.stopped
		qs.stopped = stopped
		// A stop must seal: the ring dequeue path checks no flags, so the
		// only way to make it observe ErrStopped is to close the fast gate
		// and let the locked path answer. A start may reopen.
		if stopped {
			qs.sealFastLocked()
		} else {
			qs.maybeReopenFastLocked()
		}
		// Wake parked waiters in both directions: a start lets them race
		// for elements, a stop lets them observe ErrStopped instead of
		// sleeping forever (with per-queue signaling there is no global
		// broadcast to rescue them by accident).
		qs.notifyLocked()
		qs.unlock()
		t.OnUndo(func() {
			r.mu.Lock()
			qs.lock()
			qs.stopped = prev
			if prev {
				qs.sealFastLocked()
			} else {
				qs.maybeReopenFastLocked()
			}
			qs.unlock()
			r.mu.Unlock()
		})
		b := enc.NewBuffer(16)
		b.Uint8(opSetStopped)
		b.String(name)
		b.Bool(stopped)
		r.logOp(t, b.Bytes())
		return nil
	})
}

// Queues lists queue names.
func (r *Repository) Queues() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.queues))
	for name := range r.queues {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Stats returns a queue's counters. It takes only the repository read
// lock and the queue's shard lock, so monitoring never stalls traffic on
// other queues.
func (r *Repository) Stats(name string) (QueueStats, error) {
	r.mu.RLock()
	qs, ok := r.queues[name]
	if !ok {
		r.mu.RUnlock()
		return QueueStats{}, fmt.Errorf("%w: %s", ErrNoQueue, name)
	}
	qs.lock()
	r.mu.RUnlock()
	st := qs.stats
	// Fold in lock-free fast-path traffic, which bypasses the locked
	// counters: ring pushes/pops count as enqueues/dequeues, and elements
	// currently ring-resident (pushed, not popped, not drained into the
	// lists by a seal) add to Depth. The three loads are unordered with
	// respect to in-flight ring ops, so the residual is clamped; at
	// quiescence it is exact.
	fe := qs.fastEnqs.Load()
	fd := qs.fastDeqs.Load()
	dr := qs.fastDrained.Load()
	qs.unlock()
	st.Enqueues += fe
	st.Dequeues += fd
	if res := int64(fe) - int64(fd) - int64(dr); res > 0 {
		st.Depth += int(res)
	}
	if st.Depth > st.MaxDepth {
		st.MaxDepth = st.Depth
	}
	return st, nil
}

// Depth returns a queue's visible depth. It is lock-free past the queue
// lookup: the depth gauge is maintained atomically under the shard lock,
// so monitoring reads never contend with enqueues and dequeues at all.
func (r *Repository) Depth(name string) (int, error) {
	r.mu.RLock()
	qs, ok := r.queues[name]
	r.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoQueue, name)
	}
	return int(qs.m.depth.Value()), nil
}

// Config returns a queue's configuration.
func (r *Repository) Config(name string) (QueueConfig, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	qs, ok := r.queues[name]
	if !ok {
		return QueueConfig{}, fmt.Errorf("%w: %s", ErrNoQueue, name)
	}
	return qs.cfg, nil
}

// ListElements returns up to max elements of a queue in dequeue order
// (copies; diagnostic use).
func (r *Repository) ListElements(name string, max int) ([]Element, error) {
	r.mu.RLock()
	qs, ok := r.queues[name]
	if !ok {
		r.mu.RUnlock()
		return nil, fmt.Errorf("%w: %s", ErrNoQueue, name)
	}
	qs.lock()
	r.mu.RUnlock()
	defer qs.unlock()
	qs.sealFastLocked() // diagnostics must see ring-resident elements too
	var out []Element
	for _, prio := range qs.prios {
		for n := qs.lists[prio].Front(); n != nil; n = n.Next() {
			el := n.Value.(*elem)
			if el.state == statePending {
				continue
			}
			out = append(out, el.e.clone())
			if max > 0 && len(out) >= max {
				return out, nil
			}
		}
	}
	return out, nil
}

// logOp attaches a redo op to t and counts it toward the snapshot
// cadence. Called with no shard lock held: records are staged here and
// appended to the WAL by the transaction's commit, so the log write never
// happens inside a queue critical section.
func (r *Repository) logOp(t *txn.Txn, data []byte) {
	t.LogOp(rmName, data)
	r.opCount.Add(1)
}

// maybeSnapshot is called with no locks held after committing an auto-op;
// it takes a checkpoint when the configured cadence is reached.
func (r *Repository) maybeSnapshot() {
	every := r.opts.SnapshotEvery
	if every <= 0 {
		return
	}
	for {
		c := r.opCount.Load()
		if int(c) < every {
			return
		}
		if r.opCount.CompareAndSwap(c, 0) {
			_ = r.Checkpoint() // best effort; next cadence retries
			return
		}
	}
}

// fireAlert delivers a depth alert without holding locks.
func (r *Repository) fireAlert(queue string, depth int) {
	r.alertMu.Lock()
	f := r.alertFn
	r.alertMu.Unlock()
	if f != nil {
		go f(queue, depth)
	}
}

// --- snapshots ---

// Checkpoint serializes committed state, writes a snapshot, and truncates
// the log below min(snapshot LSN, oldest outstanding prepare). Quiescing
// is hierarchical: BlockCommits excludes commit hooks, the exclusive repo
// lock excludes DDL and new element operations, and the ordered sweep of
// every shard lock excludes in-flight abort hooks (which are not gated by
// BlockCommits and can move elements across queues).
func (r *Repository) Checkpoint() error {
	var data []byte
	var lastLSN, cutoff wal.LSN
	err := r.tm.BlockCommits(func() error {
		r.mu.Lock()
		defer r.mu.Unlock()
		names := make([]string, 0, len(r.queues))
		for name := range r.queues {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			r.queues[name].lock()
		}
		data = r.serializeLocked(names)
		for i := len(names) - 1; i >= 0; i-- {
			r.queues[names[i]].unlock()
		}
		lastLSN = r.log.LastLSN()
		cutoff = lastLSN + 1
		if p := r.tm.OldestPrepareLSN(); p != 0 && p < cutoff {
			cutoff = p
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := r.snap.Write(uint64(lastLSN), data); err != nil {
		return fmt.Errorf("queue: checkpoint %s: %w", r.name, err)
	}
	if err := r.log.TruncateBefore(cutoff); err != nil {
		return fmt.Errorf("queue: truncate %s: %w", r.name, err)
	}
	r.logger.Debug("checkpoint written",
		rlog.Uint64("lsn", uint64(lastLSN)),
		rlog.Uint64("truncate_below", uint64(cutoff)),
		rlog.Int("bytes", len(data)))
	return nil
}

// snapVersion 2 appends a trace tail (enc.TraceTail) after every
// encoded element — queue elements and trigger fire elements — so
// traces survive snapshot-based recovery. Version-1 snapshots (no
// tails) still load.
const snapVersion = 2

// serializeLocked encodes committed state only: pending elements are
// omitted (their transactions haven't committed), dequeued elements are
// written as visible (their committed state is "still in the queue"; the
// dequeuer's commit record, if any, has a later LSN and will be replayed).
// Caller holds r.mu exclusively plus every shard lock, with names the
// sorted queue names; the leaf locks are taken per section here.
func (r *Repository) serializeLocked(names []string) []byte {
	b := enc.NewBuffer(4096)
	b.Uint8(snapVersion)
	b.String(r.name)
	b.Uvarint(r.nextEID.Load())
	b.Uvarint(r.nextSeq.Load())
	b.Uvarint(r.tm.NextID())

	// Queues: definitions of volatile queues are durable, their contents
	// are not.
	b.Uvarint(uint64(len(names)))
	for _, name := range names {
		qs := r.queues[name]
		encodeConfig(b, &qs.cfg)
		b.Bool(qs.stopped)
		var els []*elem
		if !qs.volatile {
			for _, prio := range qs.prios {
				for n := qs.lists[prio].Front(); n != nil; n = n.Next() {
					el := n.Value.(*elem)
					if el.state == statePending {
						continue
					}
					els = append(els, el)
				}
			}
		}
		b.Uvarint(uint64(len(els)))
		for _, el := range els {
			encodeElement(b, &el.e)
			encodeTraceTail(b, &el.e)
		}
	}

	// Registrations.
	r.regMu.Lock()
	var rkeys []regKey
	for k := range r.regs {
		rkeys = append(rkeys, k)
	}
	sort.Slice(rkeys, func(i, j int) bool {
		if rkeys[i].queue != rkeys[j].queue {
			return rkeys[i].queue < rkeys[j].queue
		}
		return rkeys[i].registrant < rkeys[j].registrant
	})
	b.Uvarint(uint64(len(rkeys)))
	for _, k := range rkeys {
		g := r.regs[k]
		b.String(k.queue)
		b.String(k.registrant)
		b.Bool(g.stable)
		b.Bool(g.hasLast)
		b.Uint8(uint8(g.lastOp))
		b.Uvarint(uint64(g.lastEID))
		b.BytesField(g.lastTag)
		b.BytesField(g.lastElem)
	}
	r.regMu.Unlock()

	// Triggers.
	r.trigMu.Lock()
	var tids []string
	for id := range r.triggers {
		tids = append(tids, id)
	}
	sort.Strings(tids)
	b.Uvarint(uint64(len(tids)))
	for _, id := range tids {
		tr := r.triggers[id]
		b.String(tr.id)
		b.String(tr.watch)
		b.Varint(int64(tr.threshold))
		encodeElement(b, &tr.fire)
		encodeTraceTail(b, &tr.fire)
	}
	r.trigMu.Unlock()

	// Tables.
	r.kvMu.Lock()
	var tnames []string
	for name := range r.tables {
		tnames = append(tnames, name)
	}
	sort.Strings(tnames)
	b.Uvarint(uint64(len(tnames)))
	for _, name := range tnames {
		tbl := r.tables[name]
		b.String(name)
		var keys []string
		for k := range tbl {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		b.Uvarint(uint64(len(keys)))
		for _, k := range keys {
			b.String(k)
			b.BytesField(tbl[k])
		}
	}
	r.kvMu.Unlock()
	return b.Bytes()
}

// loadSnapshot rebuilds state from a snapshot. It runs single-threaded
// inside Open, before any API traffic, so no locks are taken.
func (r *Repository) loadSnapshot(data []byte) error {
	rd := enc.NewReader(data)
	v := rd.Uint8()
	if v != 1 && v != snapVersion {
		return fmt.Errorf("queue: snapshot version %d unsupported", v)
	}
	hasTrace := v >= 2
	r.name = rd.String()
	r.nextEID.Store(rd.Uvarint())
	r.nextSeq.Store(rd.Uvarint())
	r.tm.SetNextID(rd.Uvarint())

	nq := rd.Uvarint()
	for i := uint64(0); i < nq && rd.Err() == nil; i++ {
		cfg := decodeConfig(rd)
		qs := r.newQueueState(cfg)
		qs.stopped = rd.Bool()
		r.queues[cfg.Name] = qs
		ne := rd.Uvarint()
		for j := uint64(0); j < ne && rd.Err() == nil; j++ {
			e, err := decodeElement(rd)
			if err != nil {
				return fmt.Errorf("queue: snapshot element: %w", err)
			}
			if hasTrace {
				decodeTraceTail(rd, &e)
			}
			// Snapshot-loaded elements predate this process: any server
			// that dequeues one is re-executing after a crash.
			e.Redelivered = true
			el := &elem{e: e, state: stateVisible}
			el.q.Store(qs)
			qs.insert(el)
			qs.bumpDepth(1)
			r.elems.put(e.EID, el)
		}
	}

	nr := rd.Uvarint()
	for i := uint64(0); i < nr && rd.Err() == nil; i++ {
		k := regKey{queue: rd.String(), registrant: rd.String()}
		g := &registration{key: k}
		g.stable = rd.Bool()
		g.hasLast = rd.Bool()
		g.lastOp = OpType(rd.Uint8())
		g.lastEID = EID(rd.Uvarint())
		g.lastTag = rd.BytesField()
		g.lastElem = rd.BytesField()
		r.regs[k] = g
	}

	nt := rd.Uvarint()
	for i := uint64(0); i < nt && rd.Err() == nil; i++ {
		tr := &trigger{}
		tr.id = rd.String()
		tr.watch = rd.String()
		tr.threshold = int32(rd.Varint())
		e, err := decodeElement(rd)
		if err != nil {
			return fmt.Errorf("queue: snapshot trigger: %w", err)
		}
		if hasTrace {
			decodeTraceTail(rd, &e)
		}
		tr.fire = e
		r.triggers[tr.id] = tr
	}
	r.syncTrigCount() // single-threaded inside Open; no trigMu needed

	ntbl := rd.Uvarint()
	for i := uint64(0); i < ntbl && rd.Err() == nil; i++ {
		name := rd.String()
		nk := rd.Uvarint()
		tbl := make(map[string][]byte, nk)
		for j := uint64(0); j < nk && rd.Err() == nil; j++ {
			k := rd.String()
			tbl[k] = rd.BytesField()
		}
		r.tables[name] = tbl
	}
	if err := rd.Finish(); err != nil {
		return fmt.Errorf("queue: snapshot decode: %w", err)
	}
	return nil
}
