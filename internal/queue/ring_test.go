package queue

// Tests for the lock-free volatile fast path (ring.go) and its
// drain-and-seal handoff with the locked shard path (DESIGN.md §10).
//
// The strategy mirrors model_test.go: drive the real repository and the
// trivially-correct queueModel oracle through the same operation sequence
// and demand identical observable behaviour. Here the queue is
// ring-eligible (volatile, unbounded, unprioritized config), and the
// operation mix deliberately alternates between ring-served ops and ops
// that force a seal (transactional dequeues, priority enqueues, kills,
// ListElements, stop/start, config updates), so every transition of the
// fastMode state machine — including reopen — is crossed many times per
// trial.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
)

func TestRingModelEquivalence(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial)*977 + 13))
			dir := t.TempDir()
			r := openTest(t, dir)
			mustCreate(t, r, QueueConfig{Name: "err", Volatile: true})
			mustCreate(t, r, QueueConfig{Name: "q", Volatile: true, ErrorQueue: "err", RetryLimit: 3})
			model := &queueModel{retryLimit: 3}

			idToEID := map[int]EID{}
			nextID := 0
			seq := 0
			ctx := context.Background()

			for step := 0; step < 400; step++ {
				switch op := rng.Intn(12); {
				case op < 4: // auto-commit enqueue; prio 0 rides the ring
					prio := int32(rng.Intn(3))
					id := nextID
					nextID++
					eid, err := r.Enqueue(nil, "q", Element{
						Priority: prio,
						Body:     []byte(fmt.Sprintf("%d", id)),
					}, "", nil)
					if err != nil {
						t.Fatalf("step %d enqueue: %v", step, err)
					}
					idToEID[id] = eid
					model.enqueue(modelElem{id: id, prio: prio, seq: seq})
					seq++
				case op < 6: // auto-commit dequeue; may be ring-served
					got, err := r.Dequeue(ctx, nil, "q", "", DequeueOpts{})
					want := model.next()
					if errors.Is(err, ErrEmpty) {
						if want != -1 {
							t.Fatalf("step %d: real empty, model has %d elements", step, len(model.els))
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d dequeue: %v", step, err)
					}
					if want == -1 {
						t.Fatalf("step %d: real returned %q, model empty", step, got.Body)
					}
					wantElem := model.take(want)
					if string(got.Body) != fmt.Sprintf("%d", wantElem.id) {
						t.Fatalf("step %d: dequeued %q, model wants %d (prio %d seq %d)",
							step, got.Body, wantElem.id, wantElem.prio, wantElem.seq)
					}
				case op < 9: // transactional dequeue (seals), commit or abort
					tx := r.Begin()
					got, err := r.Dequeue(ctx, tx, "q", "", DequeueOpts{})
					want := model.next()
					if errors.Is(err, ErrEmpty) {
						tx.Abort()
						if want != -1 {
							t.Fatalf("step %d: real empty, model has %d elements", step, len(model.els))
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d txn dequeue: %v", step, err)
					}
					if want == -1 {
						t.Fatalf("step %d: real returned %q, model empty", step, got.Body)
					}
					wantElem := model.take(want)
					if string(got.Body) != fmt.Sprintf("%d", wantElem.id) {
						t.Fatalf("step %d: txn dequeued %q, model wants %d (prio %d seq %d)",
							step, got.Body, wantElem.id, wantElem.prio, wantElem.seq)
					}
					if got.AbortCount != wantElem.aborts {
						t.Fatalf("step %d: abort count %d, model %d", step, got.AbortCount, wantElem.aborts)
					}
					if rng.Intn(3) == 0 {
						tx.Abort()
						model.abortReturn(wantElem)
					} else if err := tx.Commit(); err != nil {
						t.Fatalf("step %d commit: %v", step, err)
					}
				case op == 9: // kill (drains fast-resident elements to find them)
					if nextID == 0 {
						continue
					}
					id := rng.Intn(nextID)
					eid, known := idToEID[id]
					if !known {
						// Enqueued before a crash: its EID may have been
						// reassigned to a post-crash element, so killing it
						// would hit the wrong target.
						continue
					}
					gotKilled, err := r.KillElement(eid)
					if err != nil {
						t.Fatalf("step %d kill: %v", step, err)
					}
					wantKilled := model.kill(id)
					if gotKilled != wantKilled {
						t.Fatalf("step %d: kill(%d) = %v, model %v", step, id, gotKilled, wantKilled)
					}
				case op == 10: // seal-forcing DDL and reads
					switch rng.Intn(3) {
					case 0:
						if _, err := r.ListElements("q", 0); err != nil {
							t.Fatal(err)
						}
					case 1:
						if err := r.StopQueue("q"); err != nil {
							t.Fatal(err)
						}
						if _, err := r.Dequeue(ctx, nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrStopped) {
							t.Fatalf("step %d: dequeue on stopped queue: %v", step, err)
						}
						if err := r.StartQueue("q"); err != nil {
							t.Fatal(err)
						}
					case 2:
						cfg, err := r.Config("q")
						if err != nil {
							t.Fatal(err)
						}
						if err := r.UpdateQueueConfig(cfg); err != nil {
							t.Fatal(err)
						}
					}
				default: // crash and recover: volatile contents vanish
					if rng.Intn(4) != 0 {
						continue
					}
					r = reopen(t, r, dir)
					model.els = nil
					model.err = nil
					// EIDs restart after a crash (volatile elements are not
					// logged), so pre-crash EIDs are no longer addressable.
					clear(idToEID)
				}
				// Depth invariant after every step (quiescent, so the
				// fast-path residual merge must be exact).
				d, err := r.Depth("q")
				if err != nil {
					t.Fatal(err)
				}
				if d != len(model.els) {
					t.Fatalf("step %d: depth %d, model %d", step, d, len(model.els))
				}
			}
			de, err := r.Depth("err")
			if err != nil {
				t.Fatal(err)
			}
			if de != len(model.err) {
				t.Fatalf("error queue depth %d, model %d", de, len(model.err))
			}
		})
	}
}

// TestRingOverflowFIFO overfills the ring so enqueues cross the
// full→yield→locked-fallback edge (sealing and draining the ring
// mid-stream), then drains everything and checks strict FIFO survived the
// handoff.
func TestRingOverflowFIFO(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q", Volatile: true})
	const n = ringCap + 256
	for i := 0; i < n; i++ {
		if _, err := r.Enqueue(nil, "q", Element{Body: []byte(fmt.Sprintf("%d", i))}, "", nil); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	ctx := context.Background()
	for i := 0; i < n; i++ {
		e, err := r.Dequeue(ctx, nil, "q", "", DequeueOpts{})
		if err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		if got := string(e.Body); got != fmt.Sprintf("%d", i) {
			t.Fatalf("dequeue %d: got %q, FIFO violated across ring overflow", i, got)
		}
	}
	if _, err := r.Dequeue(ctx, nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty after drain, got %v", err)
	}
}

// TestRingConcurrentExactlyOnce hammers one ring-eligible queue with
// concurrent producers and consumers while a third goroutine repeatedly
// forces seal/reopen transitions. Every element must come out exactly
// once — a lost or doubled element means the handoff leaked or replayed a
// slot. Run under -race in CI (the soak job), where the ring's and the
// seal protocol's ordering claims are checked by the detector.
func TestRingConcurrentExactlyOnce(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q", Volatile: true})
	const (
		producers   = 4
		consumers   = 4
		perProducer = 3000
	)
	total := producers * perProducer
	ctx := context.Background()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				body := []byte(fmt.Sprintf("p%d-%d", p, i))
				if _, err := r.Enqueue(nil, "q", Element{Body: body}, "", nil); err != nil {
					t.Errorf("producer %d: %v", p, err)
					return
				}
			}
		}(p)
	}

	var mu sync.Mutex
	seen := make(map[string]bool, total)
	var received int
	var cwg sync.WaitGroup
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				e, err := r.Dequeue(ctx, nil, "q", "", DequeueOpts{})
				if errors.Is(err, ErrEmpty) {
					runtime.Gosched()
					continue
				}
				if err != nil {
					t.Errorf("consumer: %v", err)
					return
				}
				mu.Lock()
				if seen[string(e.Body)] {
					mu.Unlock()
					t.Errorf("element %q delivered twice", e.Body)
					return
				}
				seen[string(e.Body)] = true
				received++
				if received == total {
					close(done)
				}
				mu.Unlock()
			}
		}()
	}

	// Chaos: force seal/reopen churn while traffic flows.
	chaosDone := make(chan struct{})
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		for i := 0; ; i++ {
			select {
			case <-chaosDone:
				return
			default:
			}
			if i%2 == 0 {
				if _, err := r.ListElements("q", 0); err != nil {
					t.Errorf("chaos list: %v", err)
					return
				}
			} else {
				tx := r.Begin()
				e, err := r.Dequeue(ctx, tx, "q", "", DequeueOpts{})
				if err != nil {
					tx.Abort()
				} else {
					// Abort: the element must return and be delivered to a
					// consumer anyway.
					_ = e
					tx.Abort()
				}
			}
			runtime.Gosched()
		}
	}()

	wg.Wait()
	cwg.Wait()
	close(chaosDone)
	chaosWg.Wait()

	if received != total {
		t.Fatalf("received %d of %d elements", received, total)
	}
	d, err := r.Depth("q")
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("depth %d after full drain, want 0", d)
	}
}
