// Package queue implements the recoverable queue manager (QM) of the
// paper's Section 4, as a main-memory database (Section 10): all state
// lives in memory, durability comes from the shared write-ahead log plus
// periodic snapshots.
//
// A Repository holds named queues of elements, per-registrant persistent
// registrations with operation tags (the paper's novel feature, Section
// 4.3), transactional key-value tables (the shared database that servers
// update while processing requests), and triggers (the fork/join mechanism
// of Section 6). All data-manipulation operations are all-or-nothing and
// serializable; invoked inside a transaction they obey transaction
// semantics, invoked outside one they auto-commit — the queue is the
// "gateway between the non-transaction world of front-ends and the
// transactional world of back-ends" (Section 2).
package queue

import (
	"fmt"

	"repro/internal/enc"
	"repro/internal/obs/trace"
)

// EID is an element identifier, unique within a repository for the lifetime
// of the repository (never reused while any record of the element may
// exist).
type EID uint64

// OpType distinguishes the kinds of tagged operations recorded in a
// registration (Section 4.3: "the QM must maintain the type of the last
// operation executed by each registrant").
type OpType uint8

const (
	// OpNone means the registrant has performed no tagged operation.
	OpNone OpType = iota
	// OpEnqueue is a tagged Enqueue.
	OpEnqueue
	// OpDequeue is a tagged Dequeue.
	OpDequeue
)

func (o OpType) String() string {
	switch o {
	case OpNone:
		return "none"
	case OpEnqueue:
		return "enqueue"
	case OpDequeue:
		return "dequeue"
	default:
		return fmt.Sprintf("OpType(%d)", uint8(o))
	}
}

// Element is a queue element. The queue manager treats Body as opaque; the
// surrounding request-processing protocols define its contents.
type Element struct {
	// EID is assigned by the repository at Enqueue.
	EID EID
	// Queue is the queue currently holding the element.
	Queue string
	// Priority orders dequeues: higher first, FIFO within a priority.
	Priority int32
	// Body is the uninterpreted payload.
	Body []byte
	// Headers carry small key/value metadata; content-based retrieval
	// matches on them.
	Headers map[string]string
	// ScratchPad passes state between the transactions of a
	// multi-transaction request (the IMS scratch pad, Section 9).
	ScratchPad []byte
	// ReplyTo names the queue a reply should be enqueued into; servers use
	// it to serve many clients with private reply queues (Section 5).
	ReplyTo string
	// AbortCount counts how many dequeuing transactions have aborted and
	// returned the element (Section 4.2).
	AbortCount int32
	// AbortCode describes the last abort that returned the element; set
	// when the element is diverted to an error queue.
	AbortCode string
	// Trace is the request's trace ID, stamped by the submitting client
	// and persisted with the element so a dequeuing server — including
	// one re-executing the request after crash recovery — resumes the
	// same trace. Zero means untraced.
	Trace trace.ID
	// Span is the span under which the element's subsequent lifecycle
	// parents (the enqueue span once enqueued).
	Span trace.SpanID
	// Redelivered reports that this copy of the element was
	// reconstructed from the log or a snapshot (crash recovery) rather
	// than enqueued in this process lifetime. In-memory only — never
	// encoded — it drives the trace retry annotation.
	Redelivered bool

	// seq fixes FIFO order within a priority; assigned at enqueue.
	seq uint64
}

// TraceRef returns the element's trace context for parenting new spans.
func (e *Element) TraceRef() trace.Ref {
	return trace.Ref{Trace: e.Trace, Span: e.Span}
}

// Seq exposes the FIFO sequence for diagnostics and tests.
func (e *Element) Seq() uint64 { return e.seq }

// clone returns a deep copy so callers can never alias repository state.
func (e *Element) clone() Element {
	c := *e
	if e.Body != nil {
		c.Body = append([]byte(nil), e.Body...)
	}
	if e.ScratchPad != nil {
		c.ScratchPad = append([]byte(nil), e.ScratchPad...)
	}
	if e.Headers != nil {
		c.Headers = make(map[string]string, len(e.Headers))
		for k, v := range e.Headers {
			c.Headers[k] = v
		}
	}
	return c
}

// encodeElement appends e to b.
func encodeElement(b *enc.Buffer, e *Element) {
	b.Uvarint(uint64(e.EID))
	b.String(e.Queue)
	b.Varint(int64(e.Priority))
	b.BytesField(e.Body)
	b.StringMap(e.Headers)
	b.BytesField(e.ScratchPad)
	b.String(e.ReplyTo)
	b.Varint(int64(e.AbortCount))
	b.String(e.AbortCode)
	b.Uvarint(e.seq)
}

// decodeElement reads an element written by encodeElement.
func decodeElement(r *enc.Reader) (Element, error) {
	var e Element
	e.EID = EID(r.Uvarint())
	e.Queue = r.String()
	e.Priority = int32(r.Varint())
	e.Body = r.BytesField()
	e.Headers = r.StringMap()
	e.ScratchPad = r.BytesField()
	e.ReplyTo = r.String()
	e.AbortCount = int32(r.Varint())
	e.AbortCode = r.String()
	e.seq = r.Uvarint()
	return e, r.Err()
}

// encodeTraceTail appends e's trace context after an encodeElement body.
// Kept separate from encodeElement so every container (redo record,
// registration blob, snapshot, wire frame) appends it explicitly at its
// own tail position, where absent bytes decode as untraced — which is
// how pre-trace encodings stay readable.
func encodeTraceTail(b *enc.Buffer, e *Element) {
	b.TraceTail([16]byte(e.Trace), uint64(e.Span))
}

// decodeTraceTail reads a tail written by encodeTraceTail (or nothing,
// for old-format data) into e.
func decodeTraceTail(r *enc.Reader, e *Element) {
	id, span := r.TraceTail()
	e.Trace = trace.ID(id)
	e.Span = trace.SpanID(span)
}

// marshalElement returns the stand-alone encoding of e (used for the stable
// element copies kept in registrations), trace tail included.
func marshalElement(e *Element) []byte {
	b := enc.NewBuffer(64 + len(e.Body))
	encodeElement(b, e)
	encodeTraceTail(b, e)
	return b.Bytes()
}

// unmarshalElement decodes a stand-alone element encoding. Blobs written
// before trace support simply end early and decode as untraced.
func unmarshalElement(data []byte) (Element, error) {
	r := enc.NewReader(data)
	e, err := decodeElement(r)
	if err != nil {
		return Element{}, fmt.Errorf("queue: decode element: %w", err)
	}
	decodeTraceTail(r, &e)
	if err := r.Err(); err != nil {
		return Element{}, fmt.Errorf("queue: decode element trace: %w", err)
	}
	return e, nil
}
