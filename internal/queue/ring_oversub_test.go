package queue

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"testing"

	"repro/internal/obs"
)

// TestFastpathOversubscribedYieldEscalation guards the 1Q oversubscription
// regression: one producer + one consumer on a single volatile queue with
// GOMAXPROCS above the physical core count. Before yield escalation
// (ringSpinYields/ringYieldSleep), a producer that found the ring full
// burned its entire Gosched budget in lockstep with a consumer it could
// not schedule — every overflow ended in a seal-drain-reopen storm, which
// is visible as a high queue.fastpath_fallbacks fraction (measured ~19% of
// CPU in enqueueFastLocked, 1322–1476 ns/op vs ~220 at GOMAXPROCS=1).
// With escalation the producer parks on a timer, the consumer drains a
// long stretch, and fallbacks stay a rounding error. The threshold (5% of
// ops) is an order of magnitude above the post-fix rate and an order of
// magnitude below the storm rate, so it fails on regression without being
// timing-flaky.
func TestFastpathOversubscribedYieldEscalation(t *testing.T) {
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)

	reg := obs.NewRegistry()
	r, _, err := Open(t.TempDir(), Options{NoFsync: true, Metrics: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { r.Close() })
	mustCreate(t, r, QueueConfig{Name: "v", Volatile: true})

	const (
		cushion = 64
		ops     = 30000
	)
	for i := 0; i < cushion; i++ {
		if _, err := r.Enqueue(nil, "v", Element{}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	base := reg.Snapshot()
	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			if _, err := r.Enqueue(nil, "v", Element{}, "", nil); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < ops; i++ {
			for {
				_, err := r.Dequeue(ctx, nil, "v", "", DequeueOpts{})
				if err == nil {
					break
				}
				if !errors.Is(err, ErrEmpty) {
					t.Error(err)
					return
				}
				runtime.Gosched() // producer briefly behind the cushion
			}
		}
	}()
	wg.Wait()

	end := reg.Snapshot()
	hits := counterOf(end, "queue.fastpath_hits") - counterOf(base, "queue.fastpath_hits")
	falls := counterOf(end, "queue.fastpath_fallbacks") - counterOf(base, "queue.fastpath_fallbacks")
	total := hits + falls
	if total == 0 {
		t.Fatal("no fast-path ops recorded")
	}
	if falls*20 > total {
		t.Fatalf("fastpath fallbacks = %d of %d ops (>5%%): full-ring yield escalation is not protecting the oversubscribed 1Q regime", falls, total)
	}
	t.Logf("oversubscribed 1Q: %d ops, %d fallbacks (%.3f%%)", total, falls, 100*float64(falls)/float64(total))
}
