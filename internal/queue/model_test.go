package queue

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"
)

// modelElem is the reference model's view of an element.
type modelElem struct {
	id     int // body index, unique
	prio   int32
	seq    int // enqueue order
	aborts int32
}

// queueModel is a trivially-correct reference implementation of the queue
// semantics: priority-descending, FIFO (by original enqueue order) within a
// priority, abort returns with retry counting and error-queue diversion,
// kill by id.
type queueModel struct {
	els        []modelElem
	err        []modelElem
	retryLimit int32
}

func (m *queueModel) enqueue(e modelElem) { m.els = append(m.els, e) }

// next returns the dequeue candidate index, or -1.
func (m *queueModel) next() int {
	best := -1
	for i := range m.els {
		if best == -1 ||
			m.els[i].prio > m.els[best].prio ||
			(m.els[i].prio == m.els[best].prio && m.els[i].seq < m.els[best].seq) {
			best = i
		}
	}
	return best
}

func (m *queueModel) take(i int) modelElem {
	e := m.els[i]
	m.els = append(m.els[:i], m.els[i+1:]...)
	return e
}

func (m *queueModel) abortReturn(e modelElem) {
	e.aborts++
	if m.retryLimit > 0 && e.aborts >= m.retryLimit {
		m.err = append(m.err, e)
		return
	}
	m.els = append(m.els, e)
	// Keep the slice position irrelevant: ordering uses seq.
	sort.SliceStable(m.els, func(a, b int) bool { return m.els[a].seq < m.els[b].seq })
}

// kill removes a live element by id — whether it waits in the main queue
// or was diverted to the error queue (KillElement addresses elements, not
// queues).
func (m *queueModel) kill(id int) bool {
	for i := range m.els {
		if m.els[i].id == id {
			m.els = append(m.els[:i], m.els[i+1:]...)
			return true
		}
	}
	for i := range m.err {
		if m.err[i].id == id {
			m.err = append(m.err[:i], m.err[i+1:]...)
			return true
		}
	}
	return false
}

// TestModelEquivalence drives the real repository and the reference model
// through the same randomized single-threaded operation sequence —
// enqueues with random priorities, dequeues that commit or abort, kills,
// checkpoints, and crash/recover cycles — and demands identical observable
// behaviour at every step.
func TestModelEquivalence(t *testing.T) {
	for trial := 0; trial < 12; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(int64(trial)*131 + 7))
			dir := t.TempDir()
			r := openTest(t, dir)
			mustCreate(t, r, QueueConfig{Name: "err"})
			mustCreate(t, r, QueueConfig{Name: "q", ErrorQueue: "err", RetryLimit: 3})
			model := &queueModel{retryLimit: 3}

			idToEID := map[int]EID{}
			nextID := 0
			seq := 0
			ctx := context.Background()

			for step := 0; step < 300; step++ {
				switch op := rng.Intn(10); {
				case op < 4: // enqueue
					prio := int32(rng.Intn(3))
					id := nextID
					nextID++
					eid, err := r.Enqueue(nil, "q", Element{
						Priority: prio,
						Body:     []byte(fmt.Sprintf("%d", id)),
					}, "", nil)
					if err != nil {
						t.Fatalf("step %d enqueue: %v", step, err)
					}
					idToEID[id] = eid
					model.enqueue(modelElem{id: id, prio: prio, seq: seq})
					seq++
				case op < 8: // dequeue, commit or abort
					tx := r.Begin()
					got, err := r.Dequeue(ctx, tx, "q", "", DequeueOpts{})
					want := model.next()
					if errors.Is(err, ErrEmpty) {
						tx.Abort()
						if want != -1 {
							t.Fatalf("step %d: real empty, model has %d elements", step, len(model.els))
						}
						continue
					}
					if err != nil {
						t.Fatalf("step %d dequeue: %v", step, err)
					}
					if want == -1 {
						t.Fatalf("step %d: real returned %q, model empty", step, got.Body)
					}
					wantElem := model.take(want)
					if string(got.Body) != fmt.Sprintf("%d", wantElem.id) {
						t.Fatalf("step %d: dequeued %q, model wants %d (prio %d seq %d)",
							step, got.Body, wantElem.id, wantElem.prio, wantElem.seq)
					}
					if got.AbortCount != wantElem.aborts {
						t.Fatalf("step %d: abort count %d, model %d", step, got.AbortCount, wantElem.aborts)
					}
					if rng.Intn(3) == 0 {
						tx.Abort()
						model.abortReturn(wantElem)
					} else if err := tx.Commit(); err != nil {
						t.Fatalf("step %d commit: %v", step, err)
					}
				case op == 8: // kill a random known element
					if nextID == 0 {
						continue
					}
					id := rng.Intn(nextID)
					gotKilled, err := r.KillElement(idToEID[id])
					if err != nil {
						t.Fatalf("step %d kill: %v", step, err)
					}
					wantKilled := model.kill(id)
					if gotKilled != wantKilled {
						t.Fatalf("step %d: kill(%d) = %v, model %v", step, id, gotKilled, wantKilled)
					}
				default: // checkpoint and/or crash
					if rng.Intn(2) == 0 {
						if err := r.Checkpoint(); err != nil {
							t.Fatal(err)
						}
					}
					if rng.Intn(3) == 0 {
						r = reopen(t, r, dir)
					}
				}
				// Depth invariant after every step.
				d, err := r.Depth("q")
				if err != nil {
					t.Fatal(err)
				}
				if d != len(model.els) {
					t.Fatalf("step %d: depth %d, model %d", step, d, len(model.els))
				}
			}
			// Final check: the error queues agree (order-insensitive).
			de, _ := r.Depth("err")
			if de != len(model.err) {
				t.Fatalf("error queue depth %d, model %d", de, len(model.err))
			}
			gotErr := map[string]bool{}
			els, err := r.ListElements("err", 0)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range els {
				gotErr[string(e.Body)] = true
			}
			for _, e := range model.err {
				if !gotErr[fmt.Sprintf("%d", e.id)] {
					t.Fatalf("model error element %d missing from real error queue", e.id)
				}
			}
		})
	}
}
