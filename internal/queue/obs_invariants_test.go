package queue

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/obs"
)

// These tests check the metrics subsystem against conservation laws the
// repository must obey: counters are not decorative — they are claims
// about what the system did, and the laws cross-check them against the
// recovered state across crash/recovery cycles.
//
// The baseline for each cycle is taken immediately after Open, because
// recovery replay itself bumps the operation counters (replayed enqueues
// count as enqueues); per-cycle deltas therefore contain only new work.

// obsReopen crashes r and reopens it with group commit and the same
// registry discipline the test started with (a fresh private registry per
// incarnation, like a restarted process).
func obsReopen(t *testing.T, r *Repository, dir string) *Repository {
	t.Helper()
	r.Crash()
	r2, inDoubt, err := Open(dir, Options{NoFsync: true, GroupCommit: true})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("unexpected in-doubt txns on reopen: %d", len(inDoubt))
	}
	t.Cleanup(func() { r2.Close() })
	return r2
}

// gaugeOf reads one gauge from a snapshot (0 when absent).
func gaugeOf(s obs.Snapshot, name string, labels ...string) int64 {
	return s.Gauges[obs.Name(name, labels...)]
}

func counterOf(s obs.Snapshot, name string, labels ...string) uint64 {
	return s.Counters[obs.Name(name, labels...)]
}

// histDelta returns the count and sum a histogram gained between two
// snapshots.
func histDelta(base, end obs.Snapshot, name string) (uint64, uint64) {
	b, e := base.Histograms[name], end.Histograms[name]
	return e.Count - b.Count, e.Sum - b.Sum
}

// runObsWorkload drives workers through randomized transactional
// enqueue/dequeue work (roughly half the transactions abort) and returns
// when every worker has finished, so no transactions are in flight.
func runObsWorkload(t *testing.T, r *Repository, qnames []string, seed int64, workers, opsPerWorker int) {
	t.Helper()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)))
			for i := 0; i < opsPerWorker; i++ {
				q := qnames[rng.Intn(len(qnames))]
				tx := r.Begin()
				if _, err := r.Enqueue(tx, q, Element{Body: []byte(fmt.Sprintf("w%d-%d", w, i))}, "", nil); err != nil {
					t.Errorf("enqueue: %v", err)
					tx.Abort()
					return
				}
				if rng.Intn(2) == 0 {
					_, err := r.Dequeue(context.Background(), tx, q, "", DequeueOpts{})
					if err != nil && !errors.Is(err, ErrEmpty) {
						t.Errorf("dequeue: %v", err)
						tx.Abort()
						return
					}
				}
				if rng.Intn(4) == 0 {
					if err := tx.Abort(); err != nil {
						t.Errorf("abort: %v", err)
						return
					}
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

// TestObsConservationAcrossRecovery drives a concurrent transactional
// workload through several crash/recovery cycles and asserts, per cycle
// and cumulatively:
//
//	txn.begun == txn.committed + txn.aborted + txn.active   (active == 0 at rest)
//	Σ (enqueues − dequeues) deltas across cycles == final visible depth
//	queue.depth gauge == QueueStats.Depth after every cycle and recovery
//	wal.fsyncs ≤ wal.appends under group commit
func TestObsConservationAcrossRecovery(t *testing.T) {
	dir := t.TempDir()
	qnames := []string{"a", "b"}
	r, inDoubt, err := Open(dir, Options{NoFsync: true, GroupCommit: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("in-doubt on fresh open: %d", len(inDoubt))
	}
	t.Cleanup(func() { r.Close() })
	for _, q := range qnames {
		mustCreate(t, r, QueueConfig{Name: q})
	}

	const cycles = 3
	netFlow := make(map[string]int64) // Σ per-cycle (Δenqueues − Δdequeues)
	for cycle := 0; cycle < cycles; cycle++ {
		base := r.Metrics().Snapshot()

		// The baseline must itself be at rest and self-consistent.
		if a := gaugeOf(base, "txn.active"); a != 0 {
			t.Fatalf("cycle %d: txn.active = %d at baseline, want 0", cycle, a)
		}
		for _, q := range qnames {
			st, err := r.Stats(q)
			if err != nil {
				t.Fatal(err)
			}
			if g := gaugeOf(base, "queue.depth", "queue", q); g != int64(st.Depth) {
				t.Fatalf("cycle %d: recovered depth gauge %s = %d, stats say %d", cycle, q, g, st.Depth)
			}
		}

		runObsWorkload(t, r, qnames, int64(1000*cycle+7), 4, 150)
		end := r.Metrics().Snapshot()

		// Transaction conservation: every begun transaction ended.
		dBegun := obs.CounterDelta(base, end, "txn.begun")
		dCommitted := obs.CounterDelta(base, end, "txn.committed")
		dAborted := obs.CounterDelta(base, end, "txn.aborted")
		if active := gaugeOf(end, "txn.active"); active != 0 {
			t.Fatalf("cycle %d: txn.active = %d after join, want 0", cycle, active)
		}
		if dBegun != dCommitted+dAborted {
			t.Fatalf("cycle %d: begun %d != committed %d + aborted %d", cycle, dBegun, dCommitted, dAborted)
		}
		if dBegun == 0 {
			t.Fatalf("cycle %d: workload ran no transactions", cycle)
		}

		// Queue-flow conservation: committed enqueues minus committed
		// dequeues is exactly the depth change, per queue.
		for _, q := range qnames {
			dEnq := int64(obs.CounterDelta(base, end, obs.Name("queue.enqueues", "queue", q)))
			dDeq := int64(obs.CounterDelta(base, end, obs.Name("queue.dequeues", "queue", q)))
			dDepth := gaugeOf(end, "queue.depth", "queue", q) - gaugeOf(base, "queue.depth", "queue", q)
			if dEnq-dDeq != dDepth {
				t.Fatalf("cycle %d: queue %s: Δenq %d − Δdeq %d != Δdepth %d", cycle, q, dEnq, dDeq, dDepth)
			}
			netFlow[q] += dEnq - dDeq
			if f := gaugeOf(end, "queue.in_flight", "queue", q); f != 0 {
				t.Fatalf("cycle %d: queue %s: in_flight = %d at rest, want 0", cycle, q, f)
			}
			if d := obs.CounterDelta(base, end, obs.Name("queue.error_diversions", "queue", q)); d != 0 {
				t.Fatalf("cycle %d: queue %s: unexpected error diversions %d", cycle, q, d)
			}
		}

		// Durability accounting: group commit may batch fsyncs but can
		// never need more syncs than appends.
		dAppends := obs.CounterDelta(base, end, "wal.appends")
		dFsyncs := obs.CounterDelta(base, end, "wal.fsyncs")
		if dFsyncs > dAppends {
			t.Fatalf("cycle %d: wal.fsyncs %d > wal.appends %d", cycle, dFsyncs, dAppends)
		}
		if dAppends == 0 {
			t.Fatalf("cycle %d: workload appended nothing", cycle)
		}

		// Group-commit conservation: at rest every appended record has
		// been flushed by the writer in exactly one batch, so the batch
		// sizes sum to the appends; each batch was one flush; and every
		// flush carried at least its one fsync.
		gsCount, gsSum := histDelta(base, end, "wal.group_size")
		dFlushes := obs.CounterDelta(base, end, "wal.group_flushes")
		if gsSum != dAppends {
			t.Fatalf("cycle %d: Σ wal.group_size %d != wal.appends %d (staged records leaked or double-flushed)",
				cycle, gsSum, dAppends)
		}
		if gsCount != dFlushes {
			t.Fatalf("cycle %d: wal.group_size count %d != wal.group_flushes %d", cycle, gsCount, dFlushes)
		}
		if dFsyncs < dFlushes {
			t.Fatalf("cycle %d: wal.fsyncs %d < wal.group_flushes %d", cycle, dFsyncs, dFlushes)
		}

		r = obsReopen(t, r, dir)
	}

	// Cross-restart conservation: the sum of committed net flow over all
	// cycles is the depth the final recovery reconstructed.
	for _, q := range qnames {
		st, err := r.Stats(q)
		if err != nil {
			t.Fatal(err)
		}
		if int64(st.Depth) != netFlow[q] {
			t.Fatalf("queue %s: recovered depth %d != Σ net flow %d", q, st.Depth, netFlow[q])
		}
		final := r.Metrics().Snapshot()
		if g := gaugeOf(final, "queue.depth", "queue", q); g != netFlow[q] {
			t.Fatalf("queue %s: final depth gauge %d != Σ net flow %d", q, g, netFlow[q])
		}
	}
}

// TestObsFsyncsPerCommitUnderGroupCommit is the point of group commit,
// stated as a metric invariant: with concurrent committers and a batching
// window, the writer must acknowledge strictly more commits than it
// issues fsyncs — here at least two commits per fsync.
func TestObsFsyncsPerCommitUnderGroupCommit(t *testing.T) {
	dir := t.TempDir()
	r, _, err := Open(dir, Options{
		NoFsync:             true,
		GroupCommit:         true,
		GroupCommitMaxDelay: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	mustCreate(t, r, QueueConfig{Name: "q"})

	base := r.Metrics().Snapshot()
	const workers, perWorker = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tx := r.Begin()
				if _, err := r.Enqueue(tx, "q", Element{Body: []byte(fmt.Sprintf("w%d-%d", w, i))}, "", nil); err != nil {
					t.Errorf("enqueue: %v", err)
					tx.Abort()
					return
				}
				if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	end := r.Metrics().Snapshot()

	dCommitted := obs.CounterDelta(base, end, "txn.committed")
	dFsyncs := obs.CounterDelta(base, end, "wal.fsyncs")
	if dCommitted != workers*perWorker {
		t.Fatalf("committed = %d, want %d", dCommitted, workers*perWorker)
	}
	if dFsyncs*2 > dCommitted {
		t.Fatalf("fsyncs-per-commit = %d/%d, want < 1/2 (group commit not batching)", dFsyncs, dCommitted)
	}
	if _, sum := histDelta(base, end, "wal.group_wait_ns"); sum == 0 {
		t.Fatal("wal.group_wait_ns never observed a force wait")
	}
}

// TestObsAbortRequeueAccounting pins down the abort path: an aborted
// dequeue returns its element (counted as a requeue) and moves no depth,
// and the retry-limit diversion shows up in the diversion counter.
func TestObsAbortRequeueAccounting(t *testing.T) {
	dir := t.TempDir()
	r, _, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	mustCreate(t, r, QueueConfig{Name: "err"})
	mustCreate(t, r, QueueConfig{Name: "q", ErrorQueue: "err", RetryLimit: 2})
	enq(t, r, "q", "poison")

	base := r.Metrics().Snapshot()
	for i := 0; i < 2; i++ {
		tx := r.Begin()
		if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
			t.Fatalf("dequeue %d: %v", i, err)
		}
		if err := tx.Abort(); err != nil {
			t.Fatalf("abort %d: %v", i, err)
		}
	}
	end := r.Metrics().Snapshot()
	if d := obs.CounterDelta(base, end, obs.Name("queue.requeues", "queue", "q")); d != 2 {
		t.Fatalf("requeues = %d, want 2", d)
	}
	if d := obs.CounterDelta(base, end, obs.Name("queue.error_diversions", "queue", "q")); d != 1 {
		t.Fatalf("error diversions = %d, want 1", d)
	}
	if g := gaugeOf(end, "queue.depth", "queue", "q"); g != 0 {
		t.Fatalf("poison queue depth gauge = %d, want 0 (diverted)", g)
	}
	if g := gaugeOf(end, "queue.depth", "queue", "err"); g != 1 {
		t.Fatalf("error queue depth gauge = %d, want 1", g)
	}
	// Dequeues never committed, so the counter must not move.
	if d := obs.CounterDelta(base, end, obs.Name("queue.dequeues", "queue", "q")); d != 0 {
		t.Fatalf("dequeues = %d, want 0 (all aborted)", d)
	}
}

// TestObsRegistrySharedAcrossLayers asserts the repository exposes one
// registry with every layer's instruments present — the admin endpoint
// and qmctl depend on finding them all in a single snapshot.
func TestObsRegistrySharedAcrossLayers(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	r, _, err := Open(dir, Options{NoFsync: true, Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { r.Close() })
	if r.Metrics() != reg {
		t.Fatal("repository did not adopt the supplied registry")
	}
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "x")
	deq(t, r, "q")

	s := reg.Snapshot()
	for _, want := range []string{
		"wal.appends", "wal.fsyncs",
		"txn.begun", "txn.committed",
		"lock.acquires",
		obs.Name("queue.enqueues", "queue", "q"),
		obs.Name("queue.dequeues", "queue", "q"),
	} {
		if _, ok := s.Counters[want]; !ok {
			t.Errorf("counter %q missing from shared registry", want)
		}
	}
	if _, ok := s.Gauges[obs.Name("queue.depth", "queue", "q")]; !ok {
		t.Error("queue.depth gauge missing from shared registry")
	}
	if _, ok := s.Histograms["wal.fsync_ns"]; !ok {
		t.Error("wal.fsync_ns histogram missing from shared registry")
	}
}

// TestObsFastpathConservation checks the fast-path counters' conservation
// law: every completed auto-commit operation against a volatile queue is
// served exactly once, by the ring (queue.fastpath_hits) or by the locked
// shard path (queue.fastpath_fallbacks) — so at quiescence the two sum to
// exactly the number of such operations, no double counting and no leaks,
// even while concurrent seal/reopen churn bounces ops between the paths.
// These are the counters qmd's /metrics endpoint and qmctl stats surface;
// if the law breaks, the dashboards lie about where the hot path runs.
func TestObsFastpathConservation(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	r, inDoubt, err := Open(dir, Options{NoFsync: true, Metrics: reg})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("in-doubt on fresh open: %d", len(inDoubt))
	}
	t.Cleanup(func() { r.Close() })
	mustCreate(t, r, QueueConfig{Name: "v", Volatile: true})

	base := reg.Snapshot()
	const (
		producers   = 3
		consumers   = 3
		perProducer = 2000
	)
	total := producers * perProducer
	var fastOps atomic.Uint64 // auto-commit volatile ops issued by the test
	ctx := context.Background()

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				if _, err := r.Enqueue(nil, "v", Element{Body: []byte(fmt.Sprintf("p%d-%d", p, i))}, "", nil); err != nil {
					t.Errorf("enqueue: %v", err)
					return
				}
				fastOps.Add(1)
			}
		}(p)
	}
	var consumed atomic.Uint64
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < uint64(total) {
				_, err := r.Dequeue(ctx, nil, "v", "", DequeueOpts{})
				fastOps.Add(1)
				if errors.Is(err, ErrEmpty) {
					runtime.Gosched()
					continue
				}
				if err != nil {
					t.Errorf("dequeue: %v", err)
					return
				}
				consumed.Add(1)
			}
		}()
	}
	// Churn the fast/locked handoff while the counters accumulate:
	// ListElements seals the ring, the next dequeue reopens it.
	chaosDone := make(chan struct{})
	var chaosWg sync.WaitGroup
	chaosWg.Add(1)
	go func() {
		defer chaosWg.Done()
		for {
			select {
			case <-chaosDone:
				return
			default:
			}
			if _, err := r.ListElements("v", 0); err != nil {
				t.Errorf("chaos list: %v", err)
				return
			}
			runtime.Gosched()
		}
	}()
	wg.Wait()
	close(chaosDone)
	chaosWg.Wait()

	// Quiescent tail: with the churn stopped, the first empty dequeue
	// reopens the ring and the remaining pairs must ride it, so hits are
	// guaranteed even if the churn pinned the whole workload above onto
	// the locked path (likely on a single-CPU box).
	if _, err := r.Dequeue(ctx, nil, "v", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("want ErrEmpty at quiescence, got %v", err)
	}
	fastOps.Add(1)
	for i := 0; i < 100; i++ {
		if _, err := r.Enqueue(nil, "v", Element{}, "", nil); err != nil {
			t.Fatal(err)
		}
		if _, err := r.Dequeue(ctx, nil, "v", "", DequeueOpts{}); err != nil {
			t.Fatal(err)
		}
		fastOps.Add(2)
	}

	end := reg.Snapshot()
	hits := counterOf(end, "queue.fastpath_hits") - counterOf(base, "queue.fastpath_hits")
	falls := counterOf(end, "queue.fastpath_fallbacks") - counterOf(base, "queue.fastpath_fallbacks")
	if hits+falls != fastOps.Load() {
		t.Fatalf("fastpath_hits (%d) + fastpath_fallbacks (%d) = %d, want %d auto-commit volatile ops",
			hits, falls, hits+falls, fastOps.Load())
	}
	if hits == 0 {
		t.Fatal("fastpath_hits = 0: the ring never served a single op")
	}
	d, err := r.Depth("v")
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("depth %d after balanced workload, want 0", d)
	}
	st, err := r.Stats("v")
	if err != nil {
		t.Fatal(err)
	}
	if want := uint64(total + 100); st.Enqueues != want || st.Dequeues != want {
		t.Fatalf("stats enqueues/dequeues = %d/%d, want %d/%d", st.Enqueues, st.Dequeues, want, want)
	}
}
