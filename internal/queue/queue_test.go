package queue

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/txn"
)

func openTest(t *testing.T, dir string) *Repository {
	t.Helper()
	r, inDoubt, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("unexpected in-doubt txns: %d", len(inDoubt))
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func mustCreate(t *testing.T, r *Repository, cfg QueueConfig) {
	t.Helper()
	if err := r.CreateQueue(cfg); err != nil {
		t.Fatalf("CreateQueue(%s): %v", cfg.Name, err)
	}
}

func enq(t *testing.T, r *Repository, q string, body string) EID {
	t.Helper()
	eid, err := r.Enqueue(nil, q, Element{Body: []byte(body)}, "", nil)
	if err != nil {
		t.Fatalf("Enqueue(%s, %q): %v", q, body, err)
	}
	return eid
}

func deq(t *testing.T, r *Repository, q string) Element {
	t.Helper()
	e, err := r.Dequeue(context.Background(), nil, q, "", DequeueOpts{})
	if err != nil {
		t.Fatalf("Dequeue(%s): %v", q, err)
	}
	return e
}

func TestCreateDestroyQueue(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	if err := r.CreateQueue(QueueConfig{Name: "q"}); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: %v", err)
	}
	if got := r.Queues(); len(got) != 1 || got[0] != "q" {
		t.Fatalf("Queues = %v", got)
	}
	if err := r.DestroyQueue("q"); err != nil {
		t.Fatal(err)
	}
	if err := r.DestroyQueue("q"); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("destroy missing: %v", err)
	}
	if _, err := r.Enqueue(nil, "q", Element{}, "", nil); !errors.Is(err, ErrNoQueue) {
		t.Fatalf("enqueue to destroyed queue: %v", err)
	}
}

func TestEnqueueDequeueRoundTrip(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	eid := enq(t, r, "q", "hello")
	if eid == 0 {
		t.Fatal("zero eid")
	}
	d, err := r.Depth("q")
	if err != nil || d != 1 {
		t.Fatalf("Depth = %d, %v", d, err)
	}
	e := deq(t, r, "q")
	if string(e.Body) != "hello" || e.EID != eid {
		t.Fatalf("dequeued %+v", e)
	}
	if _, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("dequeue from empty: %v", err)
	}
}

func TestFIFOOrder(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	for i := 0; i < 10; i++ {
		enq(t, r, "q", fmt.Sprintf("m%d", i))
	}
	for i := 0; i < 10; i++ {
		if got := string(deq(t, r, "q").Body); got != fmt.Sprintf("m%d", i) {
			t.Fatalf("position %d: got %q", i, got)
		}
	}
}

func TestPriorityOrder(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	put := func(prio int32, body string) {
		if _, err := r.Enqueue(nil, "q", Element{Priority: prio, Body: []byte(body)}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	put(0, "low1")
	put(5, "high1")
	put(0, "low2")
	put(5, "high2")
	put(2, "mid")
	want := []string{"high1", "high2", "mid", "low1", "low2"}
	for i, w := range want {
		if got := string(deq(t, r, "q").Body); got != w {
			t.Fatalf("position %d: got %q, want %q", i, got, w)
		}
	}
}

func TestTransactionalEnqueueVisibility(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	tx := r.Begin()
	if _, err := r.Enqueue(tx, "q", Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	// Invisible before commit.
	if _, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("uncommitted element visible: %v", err)
	}
	if d, _ := r.Depth("q"); d != 0 {
		t.Fatalf("depth of pending = %d", d)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if d, _ := r.Depth("q"); d != 1 {
		t.Fatalf("depth after commit = %d", d)
	}
	if got := string(deq(t, r, "q").Body); got != "x" {
		t.Fatalf("got %q", got)
	}
}

func TestTransactionalEnqueueAbort(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	tx := r.Begin()
	eid, err := r.Enqueue(tx, "q", Element{Body: []byte("x")}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if d, _ := r.Depth("q"); d != 0 {
		t.Fatalf("depth after abort = %d", d)
	}
	if _, err := r.Read(eid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("aborted element readable: %v", err)
	}
}

func TestDequeueAbortReturnsElement(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "x")
	tx := r.Begin()
	e, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	got := deq(t, r, "q")
	if got.EID != e.EID {
		t.Fatalf("different element after abort: %d vs %d", got.EID, e.EID)
	}
	if got.AbortCount != 1 {
		t.Fatalf("AbortCount = %d, want 1", got.AbortCount)
	}
	st, _ := r.Stats("q")
	if st.AbortReturns != 1 {
		t.Fatalf("AbortReturns = %d", st.AbortReturns)
	}
}

func TestDequeueCommitConsumes(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	eid := enq(t, r, "q", "x")
	tx := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(eid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("consumed element readable: %v", err)
	}
	st, _ := r.Stats("q")
	if st.Dequeues != 1 || st.Depth != 0 || st.InFlight != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorQueueDiversion(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "err"})
	mustCreate(t, r, QueueConfig{Name: "q", ErrorQueue: "err", RetryLimit: 3})
	enq(t, r, "q", "poison")
	for i := 0; i < 3; i++ {
		tx := r.Begin()
		if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
			t.Fatalf("attempt %d: %v", i, err)
		}
		if err := tx.Abort(); err != nil {
			t.Fatal(err)
		}
	}
	// The third abort diverted it.
	if _, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("poison element still in main queue: %v", err)
	}
	e := deq(t, r, "err")
	if string(e.Body) != "poison" || e.AbortCount != 3 || e.AbortCode == "" {
		t.Fatalf("error-queue element %+v", e)
	}
	st, _ := r.Stats("q")
	if st.ErrorDiversions != 1 {
		t.Fatalf("ErrorDiversions = %d", st.ErrorDiversions)
	}
}

func TestSkipLockedDequeue(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "first")
	enq(t, r, "q", "second")
	tx1 := r.Begin()
	e1, err := r.Dequeue(context.Background(), tx1, "q", "", DequeueOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if string(e1.Body) != "first" {
		t.Fatalf("tx1 got %q", e1.Body)
	}
	// A second dequeuer skips the in-flight head (Section 10).
	tx2 := r.Begin()
	e2, err := r.Dequeue(context.Background(), tx2, "q", "", DequeueOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if string(e2.Body) != "second" {
		t.Fatalf("tx2 got %q", e2.Body)
	}
	// The anomaly the paper tolerates: tx1 aborts, tx2 commits → non-FIFO.
	if err := tx1.Abort(); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	if got := string(deq(t, r, "q").Body); got != "first" {
		t.Fatalf("returned element = %q", got)
	}
}

func TestStrictFIFOBlocksBehindInFlight(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q", StrictFIFO: true})
	enq(t, r, "q", "first")
	enq(t, r, "q", "second")
	tx1 := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx1, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	// Non-waiting dequeue cannot overtake.
	if _, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("strict dequeue overtook in-flight head: %v", err)
	}
	// A waiting dequeue proceeds once tx1 commits.
	done := make(chan Element, 1)
	go func() {
		e, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{Wait: true})
		if err != nil {
			t.Errorf("waiting dequeue: %v", err)
		}
		done <- e
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case e := <-done:
		t.Fatalf("strict waiter overtook: %q", e.Body)
	default:
	}
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	e := <-done
	if string(e.Body) != "second" {
		t.Fatalf("waiter got %q", e.Body)
	}
}

func TestBlockingDequeue(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	done := make(chan Element, 1)
	go func() {
		e, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{Wait: true})
		if err != nil {
			t.Errorf("blocking dequeue: %v", err)
			close(done)
			return
		}
		done <- e
	}()
	time.Sleep(20 * time.Millisecond)
	enq(t, r, "q", "wake")
	select {
	case e := <-done:
		if string(e.Body) != "wake" {
			t.Fatalf("got %q", e.Body)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("blocking dequeue never woke")
	}
}

func TestBlockingDequeueContextTimeout(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	_, err := r.Dequeue(ctx, nil, "q", "", DequeueOpts{Wait: true})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v", err)
	}
}

func TestHeaderMatchRetrieval(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	if _, err := r.Enqueue(nil, "q", Element{Body: []byte("a"), Headers: map[string]string{"type": "credit"}}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enqueue(nil, "q", Element{Body: []byte("b"), Headers: map[string]string{"type": "debit"}}, "", nil); err != nil {
		t.Fatal(err)
	}
	e, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{HeaderMatch: map[string]string{"type": "debit"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Body) != "b" {
		t.Fatalf("content-based dequeue got %q", e.Body)
	}
	// The non-matching element is still there.
	if got := string(deq(t, r, "q").Body); got != "a" {
		t.Fatalf("remaining = %q", got)
	}
}

func TestFilterFunc(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	for i := 0; i < 5; i++ {
		enq(t, r, "q", fmt.Sprintf("%d", i))
	}
	e, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{
		Filter: func(e *Element) bool { return string(e.Body) == "3" },
	})
	if err != nil || string(e.Body) != "3" {
		t.Fatalf("filter dequeue = %q, %v", e.Body, err)
	}
}

func TestRegistrationTagsAndRecall(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	h, ri, err := r.Register("q", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if ri.HasLast {
		t.Fatalf("fresh registration has last op: %+v", ri)
	}
	eid, err := h.Enqueue(nil, Element{Body: []byte("req")}, []byte("rid-42"))
	if err != nil {
		t.Fatal(err)
	}
	// Re-register (the recovery path) returns the enqueue's tag and eid.
	_, ri2, err := r.Register("q", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if !ri2.HasLast || ri2.LastOp != OpEnqueue || ri2.LastEID != eid || string(ri2.LastTag) != "rid-42" {
		t.Fatalf("reg info after enqueue = %+v", ri2)
	}
	// Dequeue with a tag updates it.
	if _, err := h.Dequeue(context.Background(), nil, DequeueOpts{Tag: []byte("ckpt-7")}); err != nil {
		t.Fatal(err)
	}
	_, ri3, err := r.Register("q", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if ri3.LastOp != OpDequeue || string(ri3.LastTag) != "ckpt-7" || ri3.LastEID != eid {
		t.Fatalf("reg info after dequeue = %+v", ri3)
	}
	// ReadLast serves the consumed element from the stable copy.
	last, err := h.ReadLast()
	if err != nil {
		t.Fatal(err)
	}
	if string(last.Body) != "req" || last.EID != eid {
		t.Fatalf("ReadLast = %+v", last)
	}
}

func TestRegistrationAbortRestoresTag(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	h, _, err := r.Register("q", "c", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Enqueue(nil, Element{Body: []byte("a")}, []byte("tag-1")); err != nil {
		t.Fatal(err)
	}
	tx := r.Begin()
	if _, err := h.Dequeue(context.Background(), tx, DequeueOpts{Tag: []byte("tag-2")}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	ri, err := h.Info()
	if err != nil {
		t.Fatal(err)
	}
	if ri.LastOp != OpEnqueue || string(ri.LastTag) != "tag-1" {
		t.Fatalf("tag not restored on abort: %+v", ri)
	}
}

func TestDeregister(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	h, _, err := r.Register("q", "c", true)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Deregister(h); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Info(); !errors.Is(err, ErrNotRegistered) {
		t.Fatalf("Info after deregister: %v", err)
	}
	// Fresh registration after deregister has no history.
	_, ri, err := r.Register("q", "c", true)
	if err != nil {
		t.Fatal(err)
	}
	if ri.HasLast {
		t.Fatalf("deregistered history leaked: %+v", ri)
	}
}

func TestUnstableRegistrationKeepsNothing(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	h, _, err := r.Register("q", "server-1", false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Enqueue(nil, Element{Body: []byte("x")}, []byte("tag")); err != nil {
		t.Fatal(err)
	}
	_, ri, err := r.Register("q", "server-1", false)
	if err != nil {
		t.Fatal(err)
	}
	if ri.HasLast {
		t.Fatalf("unstable registration retained op: %+v", ri)
	}
}

func TestReadStates(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	// Pending: unreadable.
	tx := r.Begin()
	eidPending, err := r.Enqueue(tx, "q", Element{Body: []byte("p")}, "", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(eidPending); !errors.Is(err, ErrNotFound) {
		t.Fatalf("pending element readable: %v", err)
	}
	tx.Abort()

	// Visible: readable.
	eid := enq(t, r, "q", "v")
	if e, err := r.Read(eid); err != nil || string(e.Body) != "v" {
		t.Fatalf("Read visible: %+v, %v", e, err)
	}
	// Dequeued-uncommitted: still readable (committed state is "present").
	tx2 := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx2, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	if e, err := r.Read(eid); err != nil || string(e.Body) != "v" {
		t.Fatalf("Read dequeued: %+v, %v", e, err)
	}
	tx2.Commit()
	if _, err := r.Read(eid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Read consumed: %v", err)
	}
}

func TestKillVisibleElement(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	eid := enq(t, r, "q", "x")
	killed, err := r.KillElement(eid)
	if err != nil || !killed {
		t.Fatalf("KillElement = %v, %v", killed, err)
	}
	if d, _ := r.Depth("q"); d != 0 {
		t.Fatalf("depth after kill = %d", d)
	}
	// Killing again: already gone.
	killed, err = r.KillElement(eid)
	if err != nil || killed {
		t.Fatalf("second kill = %v, %v", killed, err)
	}
}

func TestKillInFlightElementDoomsOwner(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	eid := enq(t, r, "q", "x")
	tx := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	killed, err := r.KillElement(eid)
	if err != nil || !killed {
		t.Fatalf("KillElement = %v, %v", killed, err)
	}
	if err := tx.Commit(); !errors.Is(err, txn.ErrDoomed) {
		t.Fatalf("doomed owner commit: %v", err)
	}
	// Element is gone, not requeued.
	if _, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("killed element requeued: %v", err)
	}
	if _, err := r.Read(eid); !errors.Is(err, ErrNotFound) {
		t.Fatalf("killed element readable: %v", err)
	}
}

func TestKillConsumedElementFails(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	eid := enq(t, r, "q", "x")
	deq(t, r, "q")
	killed, err := r.KillElement(eid)
	if err != nil || killed {
		t.Fatalf("kill of consumed element = %v, %v", killed, err)
	}
}

func TestRedirection(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "remote"})
	mustCreate(t, r, QueueConfig{Name: "local", RedirectTo: "remote"})
	enq(t, r, "local", "fwd")
	if d, _ := r.Depth("local"); d != 0 {
		t.Fatalf("local depth = %d", d)
	}
	e := deq(t, r, "remote")
	if string(e.Body) != "fwd" || e.Queue != "remote" {
		t.Fatalf("redirected element %+v", e)
	}
}

func TestRedirectLoop(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "a", RedirectTo: "b"})
	mustCreate(t, r, QueueConfig{Name: "b", RedirectTo: "a"})
	if _, err := r.Enqueue(nil, "a", Element{}, "", nil); !errors.Is(err, ErrRedirectLoop) {
		t.Fatalf("redirect loop: %v", err)
	}
}

func TestMaxDepth(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q", MaxDepth: 2})
	enq(t, r, "q", "1")
	enq(t, r, "q", "2")
	if _, err := r.Enqueue(nil, "q", Element{}, "", nil); !errors.Is(err, ErrFull) {
		t.Fatalf("enqueue beyond max depth: %v", err)
	}
	deq(t, r, "q")
	enq(t, r, "q", "3") // room again
}

func TestStopStartQueue(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "x")
	if err := r.StopQueue("q"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrStopped) {
		t.Fatalf("dequeue from stopped: %v", err)
	}
	enq(t, r, "q", "y") // enqueues still allowed
	if err := r.StartQueue("q"); err != nil {
		t.Fatal(err)
	}
	if got := string(deq(t, r, "q").Body); got != "x" {
		t.Fatalf("after restart got %q", got)
	}
}

func TestDequeueSet(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "a"})
	mustCreate(t, r, QueueConfig{Name: "b"})
	if _, err := r.Enqueue(nil, "a", Element{Priority: 1, Body: []byte("low")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enqueue(nil, "b", Element{Priority: 9, Body: []byte("high")}, "", nil); err != nil {
		t.Fatal(err)
	}
	e, err := r.DequeueSet(context.Background(), nil, []string{"a", "b"}, "", DequeueOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if string(e.Body) != "high" {
		t.Fatalf("queue set picked %q", e.Body)
	}
	e, err = r.DequeueSet(context.Background(), nil, []string{"a", "b"}, "", DequeueOpts{})
	if err != nil || string(e.Body) != "low" {
		t.Fatalf("second pick %q, %v", e.Body, err)
	}
	if _, err := r.DequeueSet(context.Background(), nil, []string{"a", "b"}, "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty set: %v", err)
	}
}

func TestAlertThreshold(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q", AlertThreshold: 3})
	alerts := make(chan int, 4)
	r.SetAlertFunc(func(q string, depth int) {
		if q == "q" {
			alerts <- depth
		}
	})
	for i := 0; i < 4; i++ {
		enq(t, r, "q", "x")
	}
	select {
	case d := <-alerts:
		if d != 3 {
			t.Fatalf("alert depth = %d", d)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("no alert fired")
	}
	// Only the crossing fires, not every enqueue beyond it.
	select {
	case d := <-alerts:
		t.Fatalf("spurious extra alert at depth %d", d)
	case <-time.After(50 * time.Millisecond):
	}
}

func TestKVBasics(t *testing.T) {
	r := openTest(t, t.TempDir())
	ctx := context.Background()
	if err := r.KVSet(ctx, nil, "acct", "alice", []byte("100")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := r.KVGet(ctx, nil, "acct", "alice", false)
	if err != nil || !ok || string(v) != "100" {
		t.Fatalf("KVGet = %q, %v, %v", v, ok, err)
	}
	// Transactional update with abort.
	tx := r.Begin()
	if err := r.KVSet(ctx, tx, "acct", "alice", []byte("50")); err != nil {
		t.Fatal(err)
	}
	tx.Abort()
	v, _, _ = r.KVGet(ctx, nil, "acct", "alice", false)
	if string(v) != "100" {
		t.Fatalf("abort did not restore: %q", v)
	}
	if err := r.KVDelete(ctx, nil, "acct", "alice"); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := r.KVGet(ctx, nil, "acct", "alice", false); ok {
		t.Fatal("delete did not remove")
	}
}

func TestKVLockConflict(t *testing.T) {
	r := openTest(t, t.TempDir())
	ctx := context.Background()
	tx1 := r.Begin()
	if err := r.KVSet(ctx, tx1, "t", "k", []byte("1")); err != nil {
		t.Fatal(err)
	}
	tx2 := r.Begin()
	ctx2, cancel := context.WithTimeout(ctx, 30*time.Millisecond)
	defer cancel()
	err := r.KVSet(ctx2, tx2, "t", "k", []byte("2"))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("conflicting write: %v", err)
	}
	tx2.Abort()
	if err := tx1.Commit(); err != nil {
		t.Fatal(err)
	}
	v, _, _ := r.KVGet(ctx, nil, "t", "k", false)
	if string(v) != "1" {
		t.Fatalf("v = %q", v)
	}
}

func TestDequeueWithinSameTxnSeesOwnEnqueueInvisible(t *testing.T) {
	// An element enqueued by an uncommitted transaction is pending and not
	// dequeueable, even by its own transaction (the queue is a commit-time
	// hand-off, per the paper's system model).
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	tx := r.Begin()
	if _, err := r.Enqueue(tx, "q", Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); !errors.Is(err, ErrEmpty) {
		t.Fatalf("own pending element dequeued: %v", err)
	}
	tx.Commit()
}

func TestScratchPadAndReplyTo(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	if _, err := r.Enqueue(nil, "q", Element{
		Body:       []byte("b"),
		ScratchPad: []byte("state-after-step-1"),
		ReplyTo:    "client-77-replies",
	}, "", nil); err != nil {
		t.Fatal(err)
	}
	e := deq(t, r, "q")
	if string(e.ScratchPad) != "state-after-step-1" || e.ReplyTo != "client-77-replies" {
		t.Fatalf("element %+v", e)
	}
}

func TestElementCloneIsolation(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	body := []byte("mutable")
	if _, err := r.Enqueue(nil, "q", Element{Body: body}, "", nil); err != nil {
		t.Fatal(err)
	}
	body[0] = 'X' // caller mutates its buffer after enqueue
	e := deq(t, r, "q")
	if !bytes.Equal(e.Body, []byte("mutable")) {
		t.Fatalf("repository aliased caller buffer: %q", e.Body)
	}
	e.Body[0] = 'Y' // mutating the returned copy must not corrupt anything
}

func TestDestroyQueueBusy(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "q"})
	enq(t, r, "q", "x")
	tx := r.Begin()
	if _, err := r.Dequeue(context.Background(), tx, "q", "", DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	if err := r.DestroyQueue("q"); !errors.Is(err, ErrBusy) {
		t.Fatalf("destroy with in-flight element: %v", err)
	}
	tx.Commit()
	if err := r.DestroyQueue("q"); err != nil {
		t.Fatal(err)
	}
}

func TestClosedRepositoryRejectsOps(t *testing.T) {
	dir := t.TempDir()
	r, _, err := Open(dir, Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	mustCreate(t, r, QueueConfig{Name: "q"})
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Enqueue(nil, "q", Element{}, "", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: %v", err)
	}
	if _, err := r.Dequeue(context.Background(), nil, "q", "", DequeueOpts{}); !errors.Is(err, ErrClosed) {
		t.Fatalf("dequeue after close: %v", err)
	}
}
