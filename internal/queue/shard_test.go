package queue

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// These tests pin down the striped-locking contract (DESIGN.md §8): a
// commit on one queue must wake only that queue's waiters, per-queue
// reads must not serialize against mutations, and the alert callback
// must be able to re-enter the repository.

// TestTargetedWakeupDisjointQueues is the thundering-herd regression
// test: with a waiter parked on queue B, a burst of traffic on queue A
// must not wake it. Under the old repository-wide broadcast every commit
// on A woke B's waiter for a fruitless rescan; with per-queue condition
// variables the spurious-wakeup counter must stay at zero for disjoint
// queues, and the eventual enqueue on B must register as targeted.
func TestTargetedWakeupDisjointQueues(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "a"})
	mustCreate(t, r, QueueConfig{Name: "b"})
	mustCreate(t, r, QueueConfig{Name: "bv", Volatile: true})

	// Park one waiter on durable b and one on volatile bv. Background
	// contexts are deliberately non-cancelable: the waiters are released
	// by enqueues at the end, never by a broadcast.
	var got [2]Element
	var errs [2]error
	var wg sync.WaitGroup
	for i, q := range []string{"b", "bv"} {
		wg.Add(1)
		go func(i int, q string) {
			defer wg.Done()
			got[i], errs[i] = r.Dequeue(context.Background(), nil, q, "", DequeueOpts{Wait: true})
		}(i, q)
	}
	time.Sleep(100 * time.Millisecond) // let both reach cond.Wait

	// Traffic on a — auto-committed (volatile-style fast path does not
	// apply; a is durable so each op runs a full commit) plus explicit
	// transactions, covering both notification paths.
	for i := 0; i < 25; i++ {
		enq(t, r, "a", fmt.Sprintf("noise-%d", i))
	}
	for i := 0; i < 25; i++ {
		deq(t, r, "a")
	}

	s := r.Metrics().Snapshot()
	if n := counterOf(s, "queue.wakeups_spurious"); n != 0 {
		t.Fatalf("spurious wakeups after disjoint traffic: got %d, want 0", n)
	}
	if n := counterOf(s, "queue.wakeups_targeted"); n != 0 {
		t.Fatalf("targeted wakeups before releasing waiters: got %d, want 0", n)
	}

	enq(t, r, "b", "payload-b")
	enq(t, r, "bv", "payload-bv")
	wg.Wait()
	for i, q := range []string{"b", "bv"} {
		if errs[i] != nil {
			t.Fatalf("waiter on %s: %v", q, errs[i])
		}
	}
	if string(got[0].Body) != "payload-b" || string(got[1].Body) != "payload-bv" {
		t.Fatalf("waiters got %q / %q", got[0].Body, got[1].Body)
	}

	s = r.Metrics().Snapshot()
	if n := counterOf(s, "queue.wakeups_spurious"); n != 0 {
		t.Fatalf("spurious wakeups after release: got %d, want 0", n)
	}
	if n := counterOf(s, "queue.wakeups_targeted"); n != 2 {
		t.Fatalf("targeted wakeups: got %d, want 2", n)
	}
}

// TestSetWaiterDisjointFromTraffic pins the DequeueSet analogue: a set
// waiter over {c, d} subscribes only to its member queues, so commits on
// a must not fire it.
func TestSetWaiterDisjointFromTraffic(t *testing.T) {
	r := openTest(t, t.TempDir())
	for _, q := range []string{"a", "c", "d"} {
		mustCreate(t, r, QueueConfig{Name: q})
	}

	done := make(chan error, 1)
	var got Element
	go func() {
		var err error
		got, err = r.DequeueSet(context.Background(), nil, []string{"c", "d"}, "", DequeueOpts{Wait: true})
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)

	for i := 0; i < 25; i++ {
		enq(t, r, "a", "noise")
		deq(t, r, "a")
	}
	if n := counterOf(r.Metrics().Snapshot(), "queue.wakeups_spurious"); n != 0 {
		t.Fatalf("set waiter woke spuriously on disjoint traffic: %d", n)
	}

	enq(t, r, "d", "for-the-set")
	if err := <-done; err != nil {
		t.Fatalf("DequeueSet: %v", err)
	}
	if got.Queue != "d" || string(got.Body) != "for-the-set" {
		t.Fatalf("set waiter got %q from %s", got.Body, got.Queue)
	}
	if n := counterOf(r.Metrics().Snapshot(), "queue.wakeups_spurious"); n != 0 {
		t.Fatalf("spurious wakeups after set release: %d", n)
	}
}

// TestStatsConcurrentWithMutations drives Depth/Stats/Queues readers
// against enqueue/dequeue writers on the same queues. Run under -race
// this proves the read paths take the documented locks (Depth reads the
// gauge lock-free; Stats copies under the shard lock) rather than racing
// the mutators.
func TestStatsConcurrentWithMutations(t *testing.T) {
	r := openTest(t, t.TempDir())
	mustCreate(t, r, QueueConfig{Name: "d0"})
	mustCreate(t, r, QueueConfig{Name: "v0", Volatile: true})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for _, q := range []string{"d0", "v0"} {
		wg.Add(1)
		go func(q string) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := r.Enqueue(nil, q, Element{Body: []byte("x")}, "", nil); err != nil {
					t.Errorf("Enqueue(%s): %v", q, err)
					return
				}
				if _, err := r.Dequeue(context.Background(), nil, q, "", DequeueOpts{}); err != nil {
					t.Errorf("Dequeue(%s): %v", q, err)
					return
				}
			}
		}(q)
	}
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, q := range []string{"d0", "v0"} {
					if d, err := r.Depth(q); err != nil || d < 0 || d > 1 {
						t.Errorf("Depth(%s) = %d, %v", q, d, err)
						return
					}
					if st, err := r.Stats(q); err != nil || st.Depth < 0 {
						t.Errorf("Stats(%s) = %+v, %v", q, st, err)
						return
					}
				}
				r.Queues()
			}
		}()
	}
	time.Sleep(300 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestAlertCallbackReentrantEnqueue enqueues past the alert threshold
// from inside the alert callback itself. Alerts fire strictly after the
// shard lock is released, so the callback's re-entry must neither
// deadlock nor lose the extra elements. Both the transactional commit
// hook (durable queue) and the volatile direct path are exercised.
func TestAlertCallbackReentrantEnqueue(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  QueueConfig
	}{
		{"durable", QueueConfig{Name: "q", AlertThreshold: 3}},
		{"volatile", QueueConfig{Name: "q", AlertThreshold: 3, Volatile: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := openTest(t, t.TempDir())

			var fired atomic.Int32
			done := make(chan struct{})
			r.SetAlertFunc(func(queue string, depth int) {
				if fired.Add(1) > 1 {
					return // depth only re-crosses the threshold on a re-fill; guard anyway
				}
				// Re-enter the repository from the callback: push the
				// queue two past its threshold.
				for i := 0; i < 2; i++ {
					if _, err := r.Enqueue(nil, queue, Element{Body: []byte("reentrant")}, "", nil); err != nil {
						t.Errorf("reentrant Enqueue: %v", err)
					}
				}
				close(done)
			})

			mustCreate(t, r, tc.cfg)
			for i := 0; i < 3; i++ {
				enq(t, r, "q", "seed")
			}
			select {
			case <-done:
			case <-time.After(5 * time.Second):
				t.Fatal("alert callback never completed (deadlock?)")
			}
			if d, err := r.Depth("q"); err != nil || d != 5 {
				t.Fatalf("depth after reentrant alert: got %d, %v; want 5", d, err)
			}
			if got := fired.Load(); got != 1 {
				t.Fatalf("alert fired %d times, want 1", got)
			}
		})
	}
}
