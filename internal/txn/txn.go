// Package txn implements the transaction manager shared by the queue
// manager and the transactional key-value store.
//
// Design: main-memory resource managers apply changes eagerly under locks
// and register (a) an undo closure, run if the transaction aborts, and (b)
// a redo record, written to the write-ahead log when the transaction
// commits. A transaction's redo records are written as one atomic commit
// record, so the log never contains a partial transaction: recovery is
// redo-only — load the latest snapshot, then re-apply every committed
// record after it, in LSN order.
//
// For distributed transactions (a server dequeuing from one repository and
// enqueueing into another, paper Sections 5–6), a transaction can instead
// be prepared: its redo records are logged in a prepare record, and a later
// decision record commits or aborts it. Recovery re-instates prepared but
// undecided transactions as in-doubt, re-applying their effects as
// uncommitted state so their locks are re-held until the coordinator's
// decision arrives (presumed abort).
package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/enc"
	"repro/internal/lock"
	"repro/internal/obs"
	"repro/internal/obs/trace"
	"repro/internal/wal"
)

// Log record types used by the transaction manager.
const (
	recCommit   uint8 = 1 // redo ops of a locally committed transaction
	recPrepare  uint8 = 2 // redo ops of a prepared (in-doubt) transaction
	recDecision uint8 = 3 // commit/abort decision for a prepared transaction
)

// State is a transaction's lifecycle state.
type State int8

const (
	// Active transactions accept operations.
	Active State = iota
	// Prepared transactions await a commit/abort decision (2PC phase 2).
	Prepared
	// Committed is terminal.
	Committed
	// Aborted is terminal.
	Aborted
)

func (s State) String() string {
	switch s {
	case Active:
		return "active"
	case Prepared:
		return "prepared"
	case Committed:
		return "committed"
	case Aborted:
		return "aborted"
	default:
		return fmt.Sprintf("State(%d)", int8(s))
	}
}

// encBufPool recycles commit-record encode buffers. The payload handed to
// wal.Append is consumed before Append returns (copied into the staged
// batch under SyncGroup, written to the segment otherwise), so the buffer
// can go straight back to the pool.
var encBufPool = sync.Pool{New: func() any { return enc.NewBuffer(256) }}

// Errors returned by the transaction manager.
var (
	// ErrNotActive reports an operation on a transaction that has left the
	// Active state.
	ErrNotActive = errors.New("txn: not active")
	// ErrNotPrepared reports a decision for a transaction that is not
	// prepared.
	ErrNotPrepared = errors.New("txn: not prepared")
	// ErrUnknownRM reports a recovery record naming an unregistered
	// resource manager.
	ErrUnknownRM = errors.New("txn: unknown resource manager")
	// ErrDoomed reports a commit attempt on a transaction that was doomed
	// (e.g. its dequeued element was killed by a cancellation, paper
	// Section 7). The transaction is rolled back instead.
	ErrDoomed = errors.New("txn: doomed")
)

// Op is one redo operation belonging to a resource manager.
type Op struct {
	RM   string
	Data []byte
}

// ResourceManager replays redo records at recovery.
type ResourceManager interface {
	// RMName identifies the resource manager in redo records.
	RMName() string
	// Redo re-applies a committed operation to in-memory state. It must be
	// idempotent-free safe in the sense that it is called exactly once per
	// logged op, in original commit order.
	Redo(data []byte) error
	// RedoPrepared re-applies an in-doubt operation as uncommitted state
	// inside t: it must re-acquire the affected resources' locks via t and
	// re-register undo and commit hooks, exactly as the original execution
	// did.
	RedoPrepared(t *Txn, data []byte) error
}

// Manager coordinates transactions over one write-ahead log and one lock
// manager (one per repository/node).
type Manager struct {
	log   *wal.Log
	locks *lock.Manager

	mu  sync.Mutex
	rms map[string]ResourceManager

	// nextID and the active-transaction table are on every Begin/finish;
	// the table is striped by id so concurrent committers do not
	// serialize on one mutex (the map is bookkeeping for prepared-txn
	// scans and recovery, never a cross-transaction ordering point).
	nextID  atomic.Uint64
	stripes [activeStripes]txnStripe

	// commitGate serializes commits against snapshotting: commits hold it
	// shared, snapshot serialization holds it exclusively so a snapshot
	// never observes a half-applied commit.
	commitGate sync.RWMutex

	// Instruments (txn.begun, txn.committed, txn.aborted, txn.prepared,
	// txn.active, txn.commit_ns, txn.prepare_ns), resolved once at
	// construction. begun == committed + aborted + active is the package's
	// conservation law: every transaction ever begun (or reinstated
	// in-doubt at recovery) is either finished or still active.
	mBegun       *obs.Counter
	mCommitted   *obs.Counter
	mAborted     *obs.Counter
	mPrepared    *obs.Counter
	mActive      *obs.Gauge
	mCommitNanos *obs.Histogram
	mPrepNanos   *obs.Histogram

	// tracer records commit/prepare spans for traced transactions; nil
	// disables them (one nil check per commit).
	tracer *trace.Tracer
}

// NewManager returns a Manager writing to log and locking through lm, with
// a private metrics registry.
func NewManager(log *wal.Log, lm *lock.Manager) *Manager {
	return NewManagerWith(log, lm, nil)
}

// NewManagerWith is NewManager with the instruments registered in reg (nil
// gives the manager a private registry).
func NewManagerWith(log *wal.Log, lm *lock.Manager, reg *obs.Registry) *Manager {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	m := &Manager{
		log:          log,
		locks:        lm,
		rms:          make(map[string]ResourceManager),
		mBegun:       reg.Counter("txn.begun"),
		mCommitted:   reg.Counter("txn.committed"),
		mAborted:     reg.Counter("txn.aborted"),
		mPrepared:    reg.Counter("txn.prepared"),
		mActive:      reg.Gauge("txn.active"),
		mCommitNanos: reg.Histogram("txn.commit_ns"),
		mPrepNanos:   reg.Histogram("txn.prepare_ns"),
	}
	m.nextID.Store(1)
	for i := range m.stripes {
		m.stripes[i].txns = make(map[uint64]*Txn)
	}
	return m
}

// activeStripes is the stripe count of the active-transaction table; a
// small power of two comfortably above typical committer concurrency.
const activeStripes = 16

type txnStripe struct {
	mu   sync.Mutex
	txns map[uint64]*Txn
	// pad spaces stripes a cache line apart so neighboring stripes'
	// mutexes do not false-share.
	_ [40]byte
}

func (m *Manager) stripe(id uint64) *txnStripe {
	return &m.stripes[id%activeStripes]
}

// eachActive calls f on every live transaction, one stripe at a time.
// Cold-path only (prepared scans, recovery checks).
func (m *Manager) eachActive(f func(*Txn)) {
	for i := range m.stripes {
		s := &m.stripes[i]
		s.mu.Lock()
		for _, t := range s.txns {
			f(t)
		}
		s.mu.Unlock()
	}
}

// SetTracer installs the tracer commit/prepare spans are recorded into
// (nil disables). Call before traffic, alongside RegisterRM.
func (m *Manager) SetTracer(tr *trace.Tracer) { m.tracer = tr }

// RegisterRM registers a resource manager for recovery replay.
func (m *Manager) RegisterRM(rm ResourceManager) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.rms[rm.RMName()] = rm
}

// Locks exposes the lock manager (shared with resource managers).
func (m *Manager) Locks() *lock.Manager { return m.locks }

// Log exposes the write-ahead log.
func (m *Manager) Log() *wal.Log { return m.log }

// NextID returns the next transaction id that will be assigned. Snapshots
// persist it so ids never repeat across restarts.
func (m *Manager) NextID() uint64 {
	return m.nextID.Load()
}

// SetNextID raises the next transaction id; used when loading a snapshot.
func (m *Manager) SetNextID(id uint64) {
	for {
		cur := m.nextID.Load()
		if id <= cur || m.nextID.CompareAndSwap(cur, id) {
			return
		}
	}
}

// Stats reports commit/abort counters.
func (m *Manager) Stats() (commits, aborts uint64) {
	return m.mCommitted.Value(), m.mAborted.Value()
}

// Begin starts a transaction.
func (m *Manager) Begin() *Txn {
	id := m.nextID.Add(1) - 1
	t := &Txn{m: m, id: id, state: Active}
	s := m.stripe(id)
	s.mu.Lock()
	s.txns[id] = t
	s.mu.Unlock()
	m.mBegun.Inc()
	m.mActive.Add(1)
	return t
}

// BlockCommits runs f while no commit is in flight; the repository uses it
// to serialize snapshots against commits.
func (m *Manager) BlockCommits(f func() error) error {
	m.commitGate.Lock()
	defer m.commitGate.Unlock()
	return f()
}

// Txn is a single transaction. A Txn is not safe for concurrent use by
// multiple goroutines; each transaction belongs to one worker.
type Txn struct {
	m     *Manager
	id    uint64
	state State

	ops        []Op
	undo       []func()
	onCommit   []func()
	onAbort    []func()
	prepareLSN wal.LSN // set while Prepared; guards log truncation

	// traceRef is the request trace this transaction works for; set by
	// the server that begins the transaction (SetTrace). Commit and
	// Prepare record spans under it.
	traceRef trace.Ref
	// commitLSN is the transaction's commit (or prepare) record LSN,
	// readable from OnCommit hooks — the enqueue span's LSN annotation.
	commitLSN wal.LSN
	// lockWaitNS accumulates time this transaction spent blocked in
	// Lock, annotated onto the commit span. Traced transactions only.
	lockWaitNS int64

	// doomMu guards state transitions against Doom, the only cross-
	// goroutine entry point on a Txn. It is held across the commit-record
	// append so that Doom's answer ("will this transaction abort?") is
	// final: once a commit record is durable, Doom returns false.
	doomMu sync.Mutex
	doomed bool
}

// ID returns the transaction id (also its lock-owner id).
func (t *Txn) ID() uint64 { return t.id }

// SetTrace attaches a request trace to the transaction; Commit and
// Prepare then record txn.commit / txn.prepare spans parented under ref.
func (t *Txn) SetTrace(ref trace.Ref) { t.traceRef = ref }

// TraceRef returns the transaction's trace context (zero if untraced).
func (t *Txn) TraceRef() trace.Ref { return t.traceRef }

// CommitLSN returns the LSN of the transaction's commit or prepare
// record (0 before one is written, or for read-only transactions).
// Valid inside OnCommit hooks.
func (t *Txn) CommitLSN() wal.LSN { return t.commitLSN }

// State returns the transaction's state.
func (t *Txn) State() State {
	t.doomMu.Lock()
	defer t.doomMu.Unlock()
	return t.state
}

// Doom condemns an active transaction from another goroutine: its Commit
// (or Prepare) will fail with ErrDoomed and roll back. Doom returns true if
// the transaction is now guaranteed to abort, false if it already left the
// Active state (its outcome is no longer influenceable). The paper's
// KillElement uses this to abort the transaction that holds a request
// being cancelled.
func (t *Txn) Doom() bool {
	t.doomMu.Lock()
	defer t.doomMu.Unlock()
	if t.state != Active {
		return false
	}
	t.doomed = true
	return true
}

// Lock acquires resource in mode on behalf of the transaction, blocking per
// the lock manager's rules. Traced transactions accumulate blocked time
// for the commit span's lock_wait_ns annotation.
func (t *Txn) Lock(ctx context.Context, resource string, mode lock.Mode) error {
	if t.state != Active {
		return ErrNotActive
	}
	if t.m.tracer.Enabled() && t.traceRef.Valid() {
		start := time.Now()
		err := t.m.locks.Acquire(ctx, t.id, resource, mode)
		t.lockWaitNS += time.Since(start).Nanoseconds()
		return err
	}
	return t.m.locks.Acquire(ctx, t.id, resource, mode)
}

// TryLock acquires resource only if free (skip-locked scans).
func (t *Txn) TryLock(resource string, mode lock.Mode) error {
	if t.state != Active {
		return ErrNotActive
	}
	return t.m.locks.TryAcquire(t.id, resource, mode)
}

// LogOp appends a redo record to the transaction.
func (t *Txn) LogOp(rm string, data []byte) {
	t.ops = append(t.ops, Op{RM: rm, Data: data})
}

// OnUndo registers a closure run (in reverse order) if the transaction
// aborts; resource managers use it to roll back eager in-memory changes.
func (t *Txn) OnUndo(f func()) { t.undo = append(t.undo, f) }

// OnCommit registers a closure run after the commit record is durable;
// resource managers use it to publish changes (e.g. make an enqueued
// element visible).
func (t *Txn) OnCommit(f func()) { t.onCommit = append(t.onCommit, f) }

// OnAbort registers a closure run after all undo closures on abort.
func (t *Txn) OnAbort(f func()) { t.onAbort = append(t.onAbort, f) }

func encodeOps(b *enc.Buffer, id uint64, ops []Op) {
	b.Uvarint(id)
	b.Uvarint(uint64(len(ops)))
	for _, op := range ops {
		b.String(op.RM)
		b.BytesField(op.Data)
	}
}

func decodeOps(r *enc.Reader) (id uint64, ops []Op, err error) {
	id = r.Uvarint()
	n := r.Uvarint()
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	ops = make([]Op, 0, n)
	for i := uint64(0); i < n; i++ {
		rm := r.String()
		data := r.BytesField()
		if err := r.Err(); err != nil {
			return 0, nil, err
		}
		ops = append(ops, Op{RM: rm, Data: data})
	}
	return id, ops, r.Err()
}

// Commit makes the transaction durable and visible: its redo ops are
// written as one log record, commit hooks run, and all locks release. A
// doomed transaction rolls back and reports ErrDoomed.
//
// When the log runs a group-commit writer (wal.SyncGroup), the commit is
// *pipelined*: Append stages the record and returns a durable-LSN
// promise, after which effects become visible and every lock releases —
// the force wait happens at the very end, outside all locks, so the lock
// hold time no longer includes the fsync. Early release is safe because
// log order equals LSN order: any transaction that reads this one's
// effects commits at a later LSN, so a crash can never preserve the
// reader's commit while losing this one. Commit still returns only after
// the record is durable — the recoverable-request contract is about the
// acknowledgement, and the acknowledgement waits.
func (t *Txn) Commit() error {
	start := time.Now()
	t.doomMu.Lock()
	if t.state != Active {
		st := t.state
		t.doomMu.Unlock()
		return fmt.Errorf("%w: commit of %s txn %d", ErrNotActive, st, t.id)
	}
	if t.doomed {
		t.doomMu.Unlock()
		t.rollback()
		return fmt.Errorf("txn %d: %w", t.id, ErrDoomed)
	}
	sp, traced := t.m.tracer.Begin(t.traceRef, "txn.commit")
	pipelined := t.m.log.Pipelined()
	var logNS int64
	t.m.commitGate.RLock()
	if len(t.ops) > 0 {
		b := encBufPool.Get().(*enc.Buffer)
		b.Reset()
		encodeOps(b, t.id, t.ops)
		var logStart time.Time
		if traced {
			logStart = time.Now()
		}
		lsn, err := t.m.log.Append(recCommit, b.Bytes())
		encBufPool.Put(b)
		if err == nil && !pipelined {
			// Non-pipelined group policies wait for (or lead) the batched
			// fsync here, before visibility. A no-op under SyncAlways.
			err = t.m.log.SyncTo(lsn)
		}
		if traced {
			logNS = time.Since(logStart).Nanoseconds()
		}
		if err != nil {
			t.m.commitGate.RUnlock()
			t.doomMu.Unlock()
			// With a failed append/sync the record cannot be trusted on
			// disk, so rolling back keeps memory consistent with what
			// recovery will reconstruct.
			t.rollback()
			return fmt.Errorf("txn %d: commit log: %w", t.id, err)
		}
		t.commitLSN = lsn
	}
	t.state = Committed
	t.doomMu.Unlock()
	for _, f := range t.onCommit {
		f()
	}
	t.m.commitGate.RUnlock()
	if traced {
		sp.Annotate(
			trace.Int64("txn", int64(t.id)),
			trace.Int64("lsn", int64(t.commitLSN)),
			trace.Int64("log_ns", logNS),
			trace.Int64("lock_wait_ns", t.lockWaitNS),
		)
		t.m.tracer.Finish(&sp)
	}
	t.finish(true)
	if pipelined && t.commitLSN != 0 {
		// The pipelined force wait: effects are visible and locks are
		// released; block only on the writer's force-completion
		// notification before acknowledging. On failure the log has
		// poisoned itself (sticky writer error — no later append can
		// succeed either), so the already-visible effects can never be
		// contradicted by a post-crash state that lost them and kept
		// something later.
		if err := t.m.log.SyncTo(t.commitLSN); err != nil {
			t.m.mCommitNanos.Observe(time.Since(start).Nanoseconds())
			return fmt.Errorf("txn %d: commit force: %w", t.id, err)
		}
	}
	t.m.mCommitNanos.Observe(time.Since(start).Nanoseconds())
	return nil
}

// Abort rolls back the transaction: undo closures run in reverse order,
// abort hooks run, and all locks release. Nothing is logged — an unlogged
// transaction is invisible to recovery by construction.
func (t *Txn) Abort() error {
	t.doomMu.Lock()
	if t.state != Active {
		st := t.state
		t.doomMu.Unlock()
		return fmt.Errorf("%w: abort of %s txn %d", ErrNotActive, st, t.id)
	}
	t.doomMu.Unlock()
	t.rollback()
	return nil
}

func (t *Txn) rollback() {
	t.doomMu.Lock()
	t.state = Aborted
	t.doomMu.Unlock()
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
	}
	for _, f := range t.onAbort {
		f()
	}
	t.finish(false)
}

func (t *Txn) finish(committed bool) {
	t.m.locks.ReleaseAll(t.id)
	s := t.m.stripe(t.id)
	s.mu.Lock()
	delete(s.txns, t.id)
	s.mu.Unlock()
	if committed {
		t.m.mCommitted.Inc()
	} else {
		t.m.mAborted.Inc()
	}
	t.m.mActive.Add(-1)
	t.ops, t.undo, t.onCommit, t.onAbort = nil, nil, nil, nil
}

// Prepare logs the transaction's redo ops as an in-doubt prepare record and
// moves it to the Prepared state. The coordinator name is recorded so
// recovery knows whom to ask. Locks remain held.
func (t *Txn) Prepare(coordinator string) error {
	start := time.Now()
	t.doomMu.Lock()
	if t.state != Active {
		st := t.state
		t.doomMu.Unlock()
		return fmt.Errorf("%w: prepare of %s txn %d", ErrNotActive, st, t.id)
	}
	if t.doomed {
		t.doomMu.Unlock()
		t.rollback()
		return fmt.Errorf("txn %d: %w", t.id, ErrDoomed)
	}
	sp, traced := t.m.tracer.Begin(t.traceRef, "txn.prepare")
	b := enc.NewBuffer(64)
	b.String(coordinator)
	encodeOps(b, t.id, t.ops)
	lsn, err := t.m.log.Append(recPrepare, b.Bytes())
	if err == nil {
		err = t.m.log.SyncTo(lsn)
	}
	if err != nil {
		t.doomMu.Unlock()
		t.rollback()
		return fmt.Errorf("txn %d: prepare log: %w", t.id, err)
	}
	t.prepareLSN = lsn
	t.commitLSN = lsn
	t.state = Prepared
	t.doomMu.Unlock()
	if traced {
		sp.Annotate(
			trace.Int64("txn", int64(t.id)),
			trace.Int64("lsn", int64(lsn)),
			trace.Str("coordinator", coordinator),
			trace.Int64("lock_wait_ns", t.lockWaitNS),
		)
		t.m.tracer.Finish(&sp)
	}
	t.m.mPrepared.Inc()
	t.m.mPrepNanos.Observe(time.Since(start).Nanoseconds())
	return nil
}

// OldestPrepareLSN returns the smallest prepare-record LSN among currently
// prepared transactions, or 0 if none. Log truncation must not remove
// segments at or after this LSN, or recovery would lose an in-doubt
// transaction.
func (m *Manager) OldestPrepareLSN() wal.LSN {
	var oldest wal.LSN
	m.eachActive(func(t *Txn) {
		if t.state == Prepared && t.prepareLSN != 0 && (oldest == 0 || t.prepareLSN < oldest) {
			oldest = t.prepareLSN
		}
	})
	return oldest
}

// CommitPrepared completes a prepared transaction with a commit decision.
func (t *Txn) CommitPrepared() error {
	t.doomMu.Lock()
	if t.state != Prepared {
		st := t.state
		t.doomMu.Unlock()
		return fmt.Errorf("%w: txn %d is %s", ErrNotPrepared, t.id, st)
	}
	sp, traced := t.m.tracer.Begin(t.traceRef, "txn.commit")
	b := enc.NewBuffer(16)
	b.Uvarint(t.id)
	b.Bool(true)
	t.m.commitGate.RLock()
	lsn, err := t.m.log.Append(recDecision, b.Bytes())
	if err == nil {
		err = t.m.log.SyncTo(lsn)
	}
	if err != nil {
		t.m.commitGate.RUnlock()
		t.doomMu.Unlock()
		return fmt.Errorf("txn %d: decision log: %w", t.id, err)
	}
	t.commitLSN = lsn
	t.state = Committed
	t.doomMu.Unlock()
	for _, f := range t.onCommit {
		f()
	}
	t.m.commitGate.RUnlock()
	if traced {
		sp.Annotate(
			trace.Int64("txn", int64(t.id)),
			trace.Int64("lsn", int64(lsn)),
			trace.Int64("prepared", 1),
		)
		t.m.tracer.Finish(&sp)
	}
	t.finish(true)
	return nil
}

// AbortPrepared completes a prepared transaction with an abort decision.
func (t *Txn) AbortPrepared() error {
	t.doomMu.Lock()
	if t.state != Prepared {
		st := t.state
		t.doomMu.Unlock()
		return fmt.Errorf("%w: txn %d is %s", ErrNotPrepared, t.id, st)
	}
	b := enc.NewBuffer(16)
	b.Uvarint(t.id)
	b.Bool(false)
	if lsn, err := t.m.log.Append(recDecision, b.Bytes()); err != nil {
		t.doomMu.Unlock()
		return fmt.Errorf("txn %d: decision log: %w", t.id, err)
	} else if err := t.m.log.SyncTo(lsn); err != nil {
		t.doomMu.Unlock()
		return fmt.Errorf("txn %d: decision sync: %w", t.id, err)
	}
	t.doomMu.Unlock()
	t.rollback()
	return nil
}

// InDoubt describes a prepared transaction reconstructed at recovery.
type InDoubt struct {
	Txn         *Txn
	Coordinator string
}

// Recover rebuilds transactional state after a restart. snapLSN is the WAL
// position covered by the loaded snapshot (0 for none). The entire
// remaining log is scanned — truncation guarantees it still contains every
// record that matters — but effects are applied only for records with LSN
// beyond snapLSN, since earlier committed effects are already in the
// snapshot. Committed records re-apply through the registered resource
// managers; prepare records are held until a decision resolves them;
// unresolved prepares are re-instated as in-doubt transactions (effects
// re-applied as uncommitted via RedoPrepared, locks re-held) and returned
// for coordinator resolution (presumed abort).
func (m *Manager) Recover(snapLSN wal.LSN) ([]InDoubt, error) {
	recs, err := m.log.ReadFrom(1)
	if err != nil {
		return nil, fmt.Errorf("txn: recovery scan: %w", err)
	}
	type pending struct {
		coordinator string
		ops         []Op
		lsn         wal.LSN
	}
	inDoubt := make(map[uint64]*pending)
	var order []uint64 // prepare order, for deterministic reinstatement
	maxID := uint64(0)

	apply := func(ops []Op) error {
		for _, op := range ops {
			rm, ok := m.rms[op.RM]
			if !ok {
				return fmt.Errorf("%w: %q", ErrUnknownRM, op.RM)
			}
			if err := rm.Redo(op.Data); err != nil {
				return fmt.Errorf("txn: redo %s: %w", op.RM, err)
			}
		}
		return nil
	}

	for _, rec := range recs {
		switch rec.Type {
		case recCommit:
			r := enc.NewReader(rec.Payload)
			id, ops, err := decodeOps(r)
			if err != nil {
				return nil, fmt.Errorf("txn: decode commit at %d: %w", rec.LSN, err)
			}
			if id > maxID {
				maxID = id
			}
			if rec.LSN <= snapLSN {
				continue // already reflected in the snapshot
			}
			if err := apply(ops); err != nil {
				return nil, err
			}
		case recPrepare:
			r := enc.NewReader(rec.Payload)
			coord := r.String()
			id, ops, err := decodeOps(r)
			if err != nil {
				return nil, fmt.Errorf("txn: decode prepare at %d: %w", rec.LSN, err)
			}
			if id > maxID {
				maxID = id
			}
			inDoubt[id] = &pending{coordinator: coord, ops: ops, lsn: rec.LSN}
			order = append(order, id)
		case recDecision:
			r := enc.NewReader(rec.Payload)
			id := r.Uvarint()
			commit := r.Bool()
			if err := r.Err(); err != nil {
				return nil, fmt.Errorf("txn: decode decision at %d: %w", rec.LSN, err)
			}
			p, ok := inDoubt[id]
			if !ok {
				continue // repeated or already-resolved decision
			}
			delete(inDoubt, id)
			// Apply only if the decision is a commit that the snapshot has
			// not already absorbed (prepared effects enter the snapshot at
			// the moment the commit decision lands, so the decision LSN is
			// the visibility point).
			if commit && rec.LSN > snapLSN {
				if err := apply(p.ops); err != nil {
					return nil, err
				}
			}
		}
	}

	m.SetNextID(maxID + 1)

	var out []InDoubt
	for _, id := range order {
		p, ok := inDoubt[id]
		if !ok {
			continue
		}
		t := &Txn{m: m, id: id, state: Active}
		for _, op := range p.ops {
			rm, ok := m.rms[op.RM]
			if !ok {
				return nil, fmt.Errorf("%w: %q", ErrUnknownRM, op.RM)
			}
			if err := rm.RedoPrepared(t, op.Data); err != nil {
				return nil, fmt.Errorf("txn: redo prepared %s: %w", op.RM, err)
			}
		}
		t.ops = p.ops
		t.prepareLSN = p.lsn
		t.state = Prepared
		s := m.stripe(id)
		s.mu.Lock()
		s.txns[id] = t
		s.mu.Unlock()
		// Reinstated in-doubt txns count as begun again in this incarnation
		// so the conservation law begun == committed+aborted+active holds
		// across restarts.
		m.mBegun.Inc()
		m.mActive.Add(1)
		out = append(out, InDoubt{Txn: t, Coordinator: p.coordinator})
	}
	return out, nil
}
