package txn

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/enc"
	"repro/internal/lock"
	"repro/internal/wal"
)

// kvRM is a miniature transactional map used to exercise the manager: eager
// apply with undo closures, redo records of the form "set k v" / "del k".
type kvRM struct {
	mu   sync.Mutex
	data map[string]string
}

func newKVRM() *kvRM { return &kvRM{data: make(map[string]string)} }

func (r *kvRM) RMName() string { return "kv" }

func (r *kvRM) encodeSet(k, v string) []byte {
	b := enc.NewBuffer(16)
	b.Uint8(1)
	b.String(k)
	b.String(v)
	return b.Bytes()
}

func (r *kvRM) applySet(k, v string) (undo func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old, had := r.data[k]
	r.data[k] = v
	return func() {
		r.mu.Lock()
		defer r.mu.Unlock()
		if had {
			r.data[k] = old
		} else {
			delete(r.data, k)
		}
	}
}

// Set performs a transactional set: lock, eager apply, undo, redo record.
func (r *kvRM) Set(t *Txn, k, v string) error {
	if err := t.Lock(context.Background(), "kv/"+k, lock.Exclusive); err != nil {
		return err
	}
	undo := r.applySet(k, v)
	t.OnUndo(undo)
	t.LogOp("kv", r.encodeSet(k, v))
	return nil
}

func (r *kvRM) Get(k string) (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	v, ok := r.data[k]
	return v, ok
}

func (r *kvRM) Redo(data []byte) error {
	rd := enc.NewReader(data)
	if op := rd.Uint8(); op != 1 {
		return fmt.Errorf("kvRM: bad op %d", op)
	}
	k := rd.String()
	v := rd.String()
	if err := rd.Err(); err != nil {
		return err
	}
	r.applySet(k, v)
	return nil
}

func (r *kvRM) RedoPrepared(t *Txn, data []byte) error {
	rd := enc.NewReader(data)
	if op := rd.Uint8(); op != 1 {
		return fmt.Errorf("kvRM: bad op %d", op)
	}
	k := rd.String()
	v := rd.String()
	if err := rd.Err(); err != nil {
		return err
	}
	return r.Set(t, k, v)
}

type env struct {
	dir string
	log *wal.Log
	lm  *lock.Manager
	m   *Manager
	kv  *kvRM
}

func newEnv(t *testing.T, dir string) *env {
	t.Helper()
	log, err := wal.Open(dir, wal.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { log.Close() })
	lm := lock.NewManager()
	m := NewManager(log, lm)
	kv := newKVRM()
	m.RegisterRM(kv)
	return &env{dir: dir, log: log, lm: lm, m: m, kv: kv}
}

func TestCommitAppliesAndSurvivesRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := e.kv.Set(tx, "b", "2"); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.kv.Get("a"); v != "1" {
		t.Fatal("eager apply missing")
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.log.Close()

	// "Crash": fresh manager, empty memory, replay the log.
	e2 := newEnv(t, dir)
	if _, err := e2.m.Recover(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := e2.kv.Get("a"); v != "1" {
		t.Fatalf("a = %q after recovery", v)
	}
	if v, _ := e2.kv.Get("b"); v != "2" {
		t.Fatalf("b = %q after recovery", v)
	}
}

func TestAbortUndoesAndIsInvisibleToRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.kv.Get("a"); ok {
		t.Fatal("abort did not undo")
	}
	e.log.Close()

	e2 := newEnv(t, dir)
	if _, err := e2.m.Recover(0); err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.kv.Get("a"); ok {
		t.Fatal("aborted txn visible after recovery")
	}
}

func TestUndoRunsInReverseOrder(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	var order []int
	tx.OnUndo(func() { order = append(order, 1) })
	tx.OnUndo(func() { order = append(order, 2) })
	tx.OnUndo(func() { order = append(order, 3) })
	if err := tx.Abort(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 3 || order[2] != 1 {
		t.Fatalf("undo order = %v, want [3 2 1]", order)
	}
}

func TestHooks(t *testing.T) {
	e := newEnv(t, t.TempDir())
	var committed, aborted bool
	tx := e.m.Begin()
	tx.OnCommit(func() { committed = true })
	tx.OnAbort(func() { aborted = true })
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if !committed || aborted {
		t.Fatalf("commit hooks: committed=%v aborted=%v", committed, aborted)
	}

	committed, aborted = false, false
	tx2 := e.m.Begin()
	tx2.OnCommit(func() { committed = true })
	tx2.OnAbort(func() { aborted = true })
	if err := tx2.Abort(); err != nil {
		t.Fatal(err)
	}
	if committed || !aborted {
		t.Fatalf("abort hooks: committed=%v aborted=%v", committed, aborted)
	}
}

func TestLocksReleasedAtEnd(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := e.lm.TryAcquire(999, "kv/a", lock.Shared); !errors.Is(err, lock.ErrWouldBlock) {
		t.Fatalf("lock not held during txn: %v", err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := e.lm.TryAcquire(999, "kv/a", lock.Exclusive); err != nil {
		t.Fatalf("lock not released after commit: %v", err)
	}
}

func TestTerminalStateRejectsOps(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("double commit: %v", err)
	}
	if err := tx.Abort(); !errors.Is(err, ErrNotActive) {
		t.Fatalf("abort after commit: %v", err)
	}
	if err := tx.Lock(context.Background(), "r", lock.Shared); !errors.Is(err, ErrNotActive) {
		t.Fatalf("lock after commit: %v", err)
	}
	if err := tx.Prepare("c"); !errors.Is(err, ErrNotActive) {
		t.Fatalf("prepare after commit: %v", err)
	}
}

func TestRecoveryRespectsSnapshotLSN(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "old"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snapLSN := e.log.LastLSN() // pretend we snapshot here, containing a=old

	tx2 := e.m.Begin()
	if err := e.kv.Set(tx2, "a", "new"); err != nil {
		t.Fatal(err)
	}
	if err := tx2.Commit(); err != nil {
		t.Fatal(err)
	}
	e.log.Close()

	e2 := newEnv(t, dir)
	e2.kv.data["a"] = "old" // snapshot contents
	if _, err := e2.m.Recover(snapLSN); err != nil {
		t.Fatal(err)
	}
	if v, _ := e2.kv.Get("a"); v != "new" {
		t.Fatalf("a = %q, want new", v)
	}
}

func TestPrepareCommitDecision(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare("coord-1"); err != nil {
		t.Fatal(err)
	}
	if tx.State() != Prepared {
		t.Fatalf("state = %v", tx.State())
	}
	// Locks still held while prepared.
	if err := e.lm.TryAcquire(999, "kv/a", lock.Shared); !errors.Is(err, lock.ErrWouldBlock) {
		t.Fatalf("prepared txn dropped locks: %v", err)
	}
	if err := tx.CommitPrepared(); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.kv.Get("a"); v != "1" {
		t.Fatal("prepared commit lost")
	}
	e.log.Close()

	e2 := newEnv(t, dir)
	if _, err := e2.m.Recover(0); err != nil {
		t.Fatal(err)
	}
	if v, _ := e2.kv.Get("a"); v != "1" {
		t.Fatalf("a = %q after recovery of decided txn", v)
	}
}

func TestPrepareAbortDecision(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare("coord-1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.AbortPrepared(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.kv.Get("a"); ok {
		t.Fatal("aborted prepared txn visible")
	}
	e.log.Close()

	e2 := newEnv(t, dir)
	inDoubt, err := e2.m.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("decided txn reported in doubt: %v", inDoubt)
	}
	if _, ok := e2.kv.Get("a"); ok {
		t.Fatal("aborted txn visible after recovery")
	}
}

func TestInDoubtReinstatement(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare("coord-7"); err != nil {
		t.Fatal(err)
	}
	e.log.Close() // crash before decision

	e2 := newEnv(t, dir)
	inDoubt, err := e2.m.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 1 {
		t.Fatalf("in-doubt count = %d, want 1", len(inDoubt))
	}
	d := inDoubt[0]
	if d.Coordinator != "coord-7" {
		t.Fatalf("coordinator = %q", d.Coordinator)
	}
	if d.Txn.State() != Prepared {
		t.Fatalf("state = %v", d.Txn.State())
	}
	// Effects are re-applied as uncommitted: visible in the RM's map
	// (eager apply) but its lock is held, so no other txn can touch it.
	if err := e2.lm.TryAcquire(999, "kv/a", lock.Shared); !errors.Is(err, lock.ErrWouldBlock) {
		t.Fatalf("in-doubt data not protected: %v", err)
	}
	// Coordinator says commit.
	if err := d.Txn.CommitPrepared(); err != nil {
		t.Fatal(err)
	}
	if v, _ := e2.kv.Get("a"); v != "1" {
		t.Fatalf("a = %q after in-doubt commit", v)
	}
	e2.log.Close()

	// A further recovery sees the decision and no in-doubt remains.
	e3 := newEnv(t, dir)
	inDoubt3, err := e3.m.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt3) != 0 {
		t.Fatalf("in-doubt after decision = %d", len(inDoubt3))
	}
	if v, _ := e3.kv.Get("a"); v != "1" {
		t.Fatalf("a = %q", v)
	}
}

func TestInDoubtAbortAfterRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare("coord"); err != nil {
		t.Fatal(err)
	}
	e.log.Close()

	e2 := newEnv(t, dir)
	inDoubt, err := e2.m.Recover(0)
	if err != nil {
		t.Fatal(err)
	}
	if err := inDoubt[0].Txn.AbortPrepared(); err != nil {
		t.Fatal(err)
	}
	if _, ok := e2.kv.Get("a"); ok {
		t.Fatal("in-doubt abort did not undo")
	}
	if err := e2.lm.TryAcquire(999, "kv/a", lock.Exclusive); err != nil {
		t.Fatalf("locks not freed after in-doubt abort: %v", err)
	}
}

func TestNextIDSurvivesViaLog(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	var lastID uint64
	for i := 0; i < 5; i++ {
		tx := e.m.Begin()
		lastID = tx.ID()
		if err := e.kv.Set(tx, "k", "v"); err != nil {
			t.Fatal(err)
		}
		if err := tx.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	e.log.Close()

	e2 := newEnv(t, dir)
	if _, err := e2.m.Recover(0); err != nil {
		t.Fatal(err)
	}
	tx := e2.m.Begin()
	if tx.ID() <= lastID {
		t.Fatalf("txn id %d reused (last was %d)", tx.ID(), lastID)
	}
}

func TestOldestPrepareLSN(t *testing.T) {
	e := newEnv(t, t.TempDir())
	if got := e.m.OldestPrepareLSN(); got != 0 {
		t.Fatalf("OldestPrepareLSN = %d, want 0", got)
	}
	tx1 := e.m.Begin()
	tx1.LogOp("kv", e.kv.encodeSet("a", "1"))
	if err := tx1.Prepare("c"); err != nil {
		t.Fatal(err)
	}
	tx2 := e.m.Begin()
	tx2.LogOp("kv", e.kv.encodeSet("b", "2"))
	if err := tx2.Prepare("c"); err != nil {
		t.Fatal(err)
	}
	first := e.m.OldestPrepareLSN()
	if first == 0 {
		t.Fatal("no oldest prepare")
	}
	if err := tx1.AbortPrepared(); err != nil {
		t.Fatal(err)
	}
	second := e.m.OldestPrepareLSN()
	if second <= first {
		t.Fatalf("oldest did not advance: %d -> %d", first, second)
	}
	if err := tx2.CommitPrepared(); err != nil {
		t.Fatal(err)
	}
	if got := e.m.OldestPrepareLSN(); got != 0 {
		t.Fatalf("OldestPrepareLSN = %d after all decided", got)
	}
}

func TestEmptyTxnCommitLogsNothing(t *testing.T) {
	e := newEnv(t, t.TempDir())
	before := e.log.LastLSN()
	tx := e.m.Begin()
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if e.log.LastLSN() != before {
		t.Fatal("read-only commit wrote to the log")
	}
}

func TestUnknownRMFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	tx := e.m.Begin()
	tx.LogOp("mystery", []byte("x"))
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	e.log.Close()

	e2 := newEnv(t, dir)
	if _, err := e2.m.Recover(0); !errors.Is(err, ErrUnknownRM) {
		t.Fatalf("err = %v, want ErrUnknownRM", err)
	}
}

func TestConcurrentTransactions(t *testing.T) {
	dir := t.TempDir()
	e := newEnv(t, dir)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tx := e.m.Begin()
				key := fmt.Sprintf("g%d", g)
				if err := e.kv.Set(tx, key, fmt.Sprintf("%d", i)); err != nil {
					t.Errorf("set: %v", err)
					tx.Abort()
					return
				}
				if i%5 == 4 {
					if err := tx.Abort(); err != nil {
						t.Errorf("abort: %v", err)
					}
				} else if err := tx.Commit(); err != nil {
					t.Errorf("commit: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	commits, aborts := e.m.Stats()
	if commits != 8*40 || aborts != 8*10 {
		t.Fatalf("commits=%d aborts=%d", commits, aborts)
	}
	// Each key's final committed value: last committed i per goroutine is 48
	// (i=49 aborted back to 48).
	e.log.Close()
	e2 := newEnv(t, dir)
	if _, err := e2.m.Recover(0); err != nil {
		t.Fatal(err)
	}
	for g := 0; g < 8; g++ {
		if v, _ := e2.kv.Get(fmt.Sprintf("g%d", g)); v != "48" {
			t.Fatalf("g%d = %q, want 48", g, v)
		}
	}
}

func TestDoomPreventsCommit(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if !tx.Doom() {
		t.Fatal("Doom on active txn returned false")
	}
	err := tx.Commit()
	if !errors.Is(err, ErrDoomed) {
		t.Fatalf("commit of doomed txn: %v", err)
	}
	if _, ok := e.kv.Get("a"); ok {
		t.Fatal("doomed txn's write survived")
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v, want aborted", tx.State())
	}
}

func TestDoomAfterCommitFails(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if tx.Doom() {
		t.Fatal("Doom on committed txn returned true")
	}
	if v, _ := e.kv.Get("a"); v != "1" {
		t.Fatal("committed write lost")
	}
}

func TestDoomPreventsPrepare(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if !tx.Doom() {
		t.Fatal("Doom returned false")
	}
	if err := tx.Prepare("c"); !errors.Is(err, ErrDoomed) {
		t.Fatalf("prepare of doomed txn: %v", err)
	}
}

func TestDoomRace(t *testing.T) {
	// Doom and Commit race; exactly one outcome must win and memory must
	// match it.
	for trial := 0; trial < 50; trial++ {
		e := newEnv(t, t.TempDir())
		tx := e.m.Begin()
		if err := e.kv.Set(tx, "a", "1"); err != nil {
			t.Fatal(err)
		}
		doomCh := make(chan bool, 1)
		go func() { doomCh <- tx.Doom() }()
		commitErr := tx.Commit()
		doomed := <-doomCh
		_, present := e.kv.Get("a")
		if doomed {
			if commitErr == nil {
				t.Fatalf("trial %d: doom succeeded but commit also succeeded", trial)
			}
			if present {
				t.Fatalf("trial %d: doomed but write present", trial)
			}
		} else {
			if commitErr != nil {
				t.Fatalf("trial %d: doom failed but commit errored: %v", trial, commitErr)
			}
			if !present {
				t.Fatalf("trial %d: committed but write absent", trial)
			}
		}
	}
}

func TestCommitFailsWhenLogClosed(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	e.log.Close()
	err := tx.Commit()
	if err == nil {
		t.Fatal("commit succeeded on a closed log")
	}
	// The failed commit rolled back: memory matches what recovery would
	// reconstruct (nothing).
	if _, ok := e.kv.Get("a"); ok {
		t.Fatal("failed commit left its write")
	}
	if tx.State() != Aborted {
		t.Fatalf("state = %v", tx.State())
	}
	if err := e.lm.TryAcquire(9, "kv/a", lock.Exclusive); err != nil {
		t.Fatalf("locks leaked: %v", err)
	}
}

func TestPrepareFailsWhenLogClosed(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	e.log.Close()
	if err := tx.Prepare("c"); err == nil {
		t.Fatal("prepare succeeded on a closed log")
	}
	if _, ok := e.kv.Get("a"); ok {
		t.Fatal("failed prepare left its write")
	}
}

func TestDecisionFailsWhenLogClosed(t *testing.T) {
	e := newEnv(t, t.TempDir())
	tx := e.m.Begin()
	if err := e.kv.Set(tx, "a", "1"); err != nil {
		t.Fatal(err)
	}
	if err := tx.Prepare("c"); err != nil {
		t.Fatal(err)
	}
	e.log.Close()
	if err := tx.CommitPrepared(); err == nil {
		t.Fatal("decision succeeded on a closed log")
	}
	// Still prepared: the decision can be retried (e.g. after the log
	// recovers); nothing was published.
	if tx.State() != Prepared {
		t.Fatalf("state = %v", tx.State())
	}
}
