package replica

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// TestWatcherPromotesOnLeaseExpiry: a standby that cannot reach its
// primary must self-promote within roughly one TTL, with the bumped
// epoch durable before OnPromote runs.
func TestWatcherPromotesOnLeaseExpiry(t *testing.T) {
	dir := t.TempDir()
	rcv, err := NewReceiver(dir, ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	dead := TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return nil, errors.New("connection refused")
	})
	promoted := make(chan uint64, 1)
	w := NewWatcher(rcv, dead, StandbyOptions{
		TTL:       80 * time.Millisecond,
		PingEvery: 10 * time.Millisecond,
		OnPromote: func(e uint64) { promoted <- e },
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	start := time.Now()
	go w.Run(ctx)

	select {
	case e := <-promoted:
		if e != 1 {
			t.Fatalf("promoted to epoch %d, want 1", e)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("standby never promoted against a dead primary")
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("promotion took %v, want about one TTL", d)
	}
	if !rcv.Promoted() {
		t.Fatal("receiver not promoted")
	}
	// The epoch bump was persisted before OnPromote ran.
	if e, err := LoadEpoch(dir); err != nil || e != 1 {
		t.Fatalf("persisted epoch %d (%v), want 1", e, err)
	}
}

// TestWatcherGrantsSuppressPromotion: while the primary answers pings
// with grants the standby must never promote; once grants stop, the
// lease runs out and it must.
func TestWatcherGrantsSuppressPromotion(t *testing.T) {
	rcv, err := NewReceiver(t.TempDir(), ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	var granting atomic.Bool
	granting.Store(true)
	tr := TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		f, _, err := DecodeFrame(req)
		if err != nil || f.Kind != FrameLeasePing {
			t.Errorf("unexpected lease request: %+v %v", f, err)
		}
		if !granting.Load() {
			return nil, errors.New("primary is gone")
		}
		return AppendFrame(nil, &Frame{Kind: FrameLeaseGrant, Epoch: f.Epoch, LSN: 42}), nil
	})
	promoted := make(chan uint64, 1)
	w := NewWatcher(rcv, tr, StandbyOptions{
		TTL:       60 * time.Millisecond,
		PingEvery: 10 * time.Millisecond,
		OnPromote: func(e uint64) { promoted <- e },
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)

	// Several TTLs under grants: still a standby.
	select {
	case <-promoted:
		t.Fatal("promoted while the primary was granting")
	case <-time.After(300 * time.Millisecond):
	}
	if rcv.Promoted() {
		t.Fatal("receiver promoted under live lease")
	}
	if w.PrimaryLSN() != 42 {
		t.Fatalf("primary lsn from grants = %d, want 42", w.PrimaryLSN())
	}
	if w.LeaseRemaining() <= 0 {
		t.Fatal("lease not being renewed")
	}

	// Primary dies: the lease runs out.
	granting.Store(false)
	select {
	case <-promoted:
	case <-time.After(2 * time.Second):
		t.Fatal("never promoted after grants stopped")
	}
}

// TestWatcherFencedPingDoesNotRenew: a primary answering FrameFenced
// (poisoned, or itself fenced) must not extend the lease — the standby
// promotes as if the primary were silent.
func TestWatcherFencedPingDoesNotRenew(t *testing.T) {
	rcv, err := NewReceiver(t.TempDir(), ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	tr := TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return AppendFrame(nil, &Frame{Kind: FrameFenced, Epoch: 0}), nil
	})
	promoted := make(chan uint64, 1)
	w := NewWatcher(rcv, tr, StandbyOptions{
		TTL:       60 * time.Millisecond,
		PingEvery: 10 * time.Millisecond,
		OnPromote: func(e uint64) { promoted <- e },
	})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go w.Run(ctx)
	select {
	case <-promoted:
	case <-time.After(2 * time.Second):
		t.Fatal("fenced grants kept the standby from promoting")
	}
}
