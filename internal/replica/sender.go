package replica

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
	rlog "repro/internal/obs/log"
	"repro/internal/wal"
)

// Mode selects the replication commit rule.
type Mode int

const (
	// ModeAsync ships in the background; commits never wait. Loss on
	// failover is bounded by the shipping lag (the pre-failover E13
	// behavior).
	ModeAsync Mode = iota
	// ModeSemiSync lets a commit release as soon as the standby's lag is
	// within budget (MaxLagRecords / MaxLagBytes); beyond budget the
	// commit blocks until the standby catches up.
	ModeSemiSync
	// ModeSync releases no commit until the standby has acked the bytes
	// that make it durable: zero acked loss on failover.
	ModeSync
)

func (m Mode) String() string {
	switch m {
	case ModeSync:
		return "sync"
	case ModeSemiSync:
		return "semisync"
	default:
		return "async"
	}
}

// ParseMode parses "sync", "semisync"/"semi-sync", or "async".
func ParseMode(s string) (Mode, error) {
	switch s {
	case "sync":
		return ModeSync, nil
	case "semisync", "semi-sync":
		return ModeSemiSync, nil
	case "async", "":
		return ModeAsync, nil
	}
	return 0, fmt.Errorf("replica: unknown mode %q (want sync|semisync|async)", s)
}

// ErrFenced reports that a newer primary epoch exists: this node's
// appends and ships are rejected everywhere that matters, so it must
// stop acking. It poisons the WAL through the commit gate, surfaces
// through Repository.WALErr and /healthz, and is mapped to a retryable
// not-primary rejection on the RPC wire so clerks re-resolve.
var ErrFenced = errors.New("replica: fenced (superseded by a newer primary epoch)")

// Transport carries one ship or lease exchange to the peer and returns
// its single response frame's bytes.
type Transport interface {
	Exchange(ctx context.Context, req []byte) ([]byte, error)
}

// TransportFunc adapts a function to Transport (in-process pairs, test
// fault injection).
type TransportFunc func(ctx context.Context, req []byte) ([]byte, error)

// Exchange implements Transport.
func (f TransportFunc) Exchange(ctx context.Context, req []byte) ([]byte, error) {
	return f(ctx, req)
}

// SenderOptions configure a primary-side Sender.
type SenderOptions struct {
	// Mode is the commit rule; see Mode.
	Mode Mode
	// MaxLagRecords is the semi-sync budget in unacked records; zero
	// means 256.
	MaxLagRecords uint64
	// MaxLagBytes is the semi-sync budget in unacked bytes; zero means
	// 1 MiB.
	MaxLagBytes int64
	// ShipRetries bounds the exchange attempts per commit gate before the
	// failure action (poison, or degrade with DegradeToAsync); zero means
	// 3. Ship failure is never silent: it is counted, logged, and after
	// the bound either poisons the WAL or degrades the mode — commits are
	// never stalled forever.
	ShipRetries int
	// RetryBackoff is the pause between retries; zero means 10ms.
	RetryBackoff time.Duration
	// ShipTimeout bounds one exchange; zero means 2s.
	ShipTimeout time.Duration
	// DegradeToAsync, in sync/semi-sync mode, drops to async shipping
	// after ShipRetries exhaust instead of poisoning the WAL: the node
	// stays available at the cost of the zero-loss guarantee, and
	// /healthz reports degraded. False keeps the guarantee: the WAL is
	// poisoned and the node stops acking (the standby takes over).
	DegradeToAsync bool
	// Epoch overrides the persisted epoch (tests); zero loads dir/EPOCH.
	Epoch uint64
	// Metrics receives the replica.* gauges and counters; nil uses a
	// private registry.
	Metrics *obs.Registry
	// Logger receives ship lifecycle events; nil disables logging.
	Logger *rlog.Logger
}

// Status is a point-in-time view of a Sender, the primary half of
// `qmctl repl`.
type Status struct {
	Role            string        `json:"role"` // "primary"
	Mode            string        `json:"mode"`
	Epoch           uint64        `json:"epoch"`
	DurableLSN      uint64        `json:"durable_lsn"`
	AckedLSN        uint64        `json:"acked_lsn"`
	LagRecords      uint64        `json:"lag_records"`
	LagBytes        int64         `json:"lag_bytes"`
	ShipFailures    uint64        `json:"ship_failures"`
	Degraded        bool          `json:"degraded"`
	Fenced          bool          `json:"fenced"`
	Err             string        `json:"err,omitempty"`
	LastStandbyPing time.Duration `json:"last_standby_ping_ms,omitempty"` // since last lease ping, ms-rounded
	LeaseTTL        time.Duration `json:"lease_ttl_ms,omitempty"`
}

// Sender is the primary side: it ships the repository's wal/ and snap/
// files to a standby through a Transport, as frames carrying the
// primary's epoch, and implements the WAL commit gate that makes the
// sync and semi-sync commit rules hold.
type Sender struct {
	src string
	tr  Transport
	o   SenderOptions

	// shipMu serializes exchanges and owns offsets/seq/curDiff — the
	// gate, the background loop, and resync handling all funnel through
	// it. mu owns the cheap state (LSNs, sticky error, mode) and is never
	// held across an exchange, so Status() stays responsive mid-ship.
	shipMu  sync.Mutex
	offsets map[string]int64
	seq     uint64
	curDiff pendingDiff

	mu           sync.Mutex
	epoch        uint64
	durableLSN   uint64 // highest locally durable LSN (from the gate)
	ackedLSN     uint64 // highest standby-acked LSN
	pendingBytes int64  // locally durable bytes not yet acked (best effort)
	degraded     bool
	err          error // sticky: fencing or retry exhaustion
	lastPing     time.Time
	leaseTTL     time.Duration

	kick chan struct{} // wakes the background loop early

	logger *rlog.Logger

	mLagBytes   *obs.Gauge
	mLagRecords *obs.Gauge
	mEpoch      *obs.Gauge
	mFailures   *obs.Counter
	mShips      *obs.Counter
	mShipBytes  *obs.Counter
}

// NewSender ships src (a repository directory) through tr. The epoch is
// loaded from src/EPOCH, so a promoted standby that becomes a primary
// automatically ships with its bumped, fencing-proof epoch.
func NewSender(src string, tr Transport, o SenderOptions) (*Sender, error) {
	if o.MaxLagRecords == 0 {
		o.MaxLagRecords = 256
	}
	if o.MaxLagBytes == 0 {
		o.MaxLagBytes = 1 << 20
	}
	if o.ShipRetries == 0 {
		o.ShipRetries = 3
	}
	if o.RetryBackoff == 0 {
		o.RetryBackoff = 10 * time.Millisecond
	}
	if o.ShipTimeout == 0 {
		o.ShipTimeout = 2 * time.Second
	}
	if err := os.MkdirAll(src, 0o755); err != nil {
		return nil, fmt.Errorf("replica: sender src: %w", err)
	}
	epoch := o.Epoch
	if epoch == 0 {
		var err error
		if epoch, err = LoadEpoch(src); err != nil {
			return nil, err
		}
	}
	reg := o.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Sender{
		src:     src,
		tr:      tr,
		o:       o,
		offsets: make(map[string]int64),
		epoch:   epoch,
		kick:    make(chan struct{}, 1),
		logger:  o.Logger.Named("replica"),

		mLagBytes:   reg.Gauge("replica.lag_bytes"),
		mLagRecords: reg.Gauge("replica.lag_records"),
		mEpoch:      reg.Gauge("replica.epoch"),
		mFailures:   reg.Counter("replica.ship_failures"),
		mShips:      reg.Counter("replica.ships"),
		mShipBytes:  reg.Counter("replica.ship_bytes"),
	}
	s.mEpoch.Set(int64(epoch))
	return s, nil
}

// Epoch returns the sender's fencing epoch.
func (s *Sender) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Err returns the sticky replication error: ErrFenced-wrapping once a
// newer epoch has been observed, a ship-exhaustion error once sync-mode
// retries ran out (without DegradeToAsync), nil otherwise.
func (s *Sender) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// SetLeaseTTL records the advertised lease TTL (status/display only; the
// standby enforces it).
func (s *Sender) SetLeaseTTL(d time.Duration) {
	s.mu.Lock()
	s.leaseTTL = d
	s.mu.Unlock()
}

// Status reports the sender's replication health.
func (s *Sender) Status() Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Status{
		Role:         "primary",
		Mode:         s.effectiveModeLocked().String(),
		Epoch:        s.epoch,
		DurableLSN:   s.durableLSN,
		AckedLSN:     s.ackedLSN,
		LagBytes:     s.pendingBytes,
		ShipFailures: s.mFailures.Value(),
		Degraded:     s.degraded,
		LeaseTTL:     s.leaseTTL / time.Millisecond * time.Millisecond,
	}
	if s.durableLSN > s.ackedLSN {
		st.LagRecords = s.durableLSN - s.ackedLSN
	}
	if s.err != nil {
		st.Err = s.err.Error()
		st.Fenced = errors.Is(s.err, ErrFenced)
	}
	if !s.lastPing.IsZero() {
		st.LastStandbyPing = time.Since(s.lastPing).Round(time.Millisecond)
	}
	return st
}

func (s *Sender) effectiveModeLocked() Mode {
	if s.degraded {
		return ModeAsync
	}
	return s.o.Mode
}

// fenceLocked records the sticky fencing state. Never degraded away: a
// fenced primary must stop acking, full stop.
func (s *Sender) fenceLocked(theirEpoch uint64) error {
	if s.err == nil || !errors.Is(s.err, ErrFenced) {
		s.err = fmt.Errorf("%w: our epoch %d, theirs %d", ErrFenced, s.epoch, theirEpoch)
		s.logger.Error("primary fenced",
			rlog.Uint64("our_epoch", s.epoch),
			rlog.Uint64("their_epoch", theirEpoch))
	}
	return s.err
}

// Gate is the wal.Gate implementation: it runs after every local flush,
// with the covered LSN and (when contiguous) the raw batch bytes, and
// decides when the durable-LSN promises may be released.
func (s *Sender) Gate(upTo wal.LSN, seg string, off int64, batch []byte) error {
	s.mu.Lock()
	if uint64(upTo) > s.durableLSN {
		s.durableLSN = uint64(upTo)
	}
	if batch != nil {
		s.pendingBytes += int64(len(batch))
	}
	s.updateLagLocked()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	mode := s.effectiveModeLocked()
	s.mu.Unlock()

	switch mode {
	case ModeAsync:
		s.Kick()
		return nil
	case ModeSemiSync:
		s.mu.Lock()
		within := s.durableLSN-s.ackedLSN <= s.o.MaxLagRecords && s.pendingBytes <= s.o.MaxLagBytes
		s.mu.Unlock()
		if within {
			s.Kick()
			return nil
		}
		// Over budget: this commit pays the ship, bringing lag back down.
		return s.shipForCommit(upTo, seg, off, batch)
	default: // ModeSync
		return s.shipForCommit(upTo, seg, off, batch)
	}
}

// Kick nudges the background loop to ship soon (async / within-budget
// semi-sync commits).
func (s *Sender) Kick() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// shipForCommit ships until the standby has acked everything up to lsn,
// with bounded retries; on exhaustion it degrades or poisons per
// DegradeToAsync. Fencing always poisons.
func (s *Sender) shipForCommit(lsn wal.LSN, seg string, off int64, batch []byte) error {
	var lastErr error
	for attempt := 0; attempt < s.o.ShipRetries; attempt++ {
		if attempt > 0 {
			time.Sleep(s.o.RetryBackoff)
			// The fast-path batch is only valid for the very first try —
			// a partial application on the standby may have shifted its
			// state, and the diff path re-derives everything.
			seg, off, batch = "", 0, nil
		}
		err := s.shipOnce(seg, off, batch, uint64(lsn))
		if err == nil {
			s.mu.Lock()
			acked := s.ackedLSN >= uint64(lsn)
			s.mu.Unlock()
			if acked {
				return nil
			}
			// Ack advanced but not far enough (concurrent appends raced
			// the diff): loop and ship again.
			lastErr = fmt.Errorf("replica: ack behind commit lsn %d", lsn)
			continue
		}
		if errors.Is(err, ErrFenced) {
			return err // already sticky via fenceLocked
		}
		lastErr = err
		s.mFailures.Inc()
		s.logger.Warn("ship failed",
			rlog.Int("attempt", attempt+1),
			rlog.Int("max", s.o.ShipRetries),
			rlog.Err(err))
	}
	// Bounded retry exhausted: never stall commits forever. Either shed
	// the guarantee (degrade) or shed availability (poison) — per config.
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.o.DegradeToAsync {
		if !s.degraded {
			s.degraded = true
			s.logger.Error("replication degraded to async after retry exhaustion",
				rlog.Int("retries", s.o.ShipRetries),
				rlog.Err(lastErr))
		}
		return nil
	}
	if s.err == nil {
		s.err = fmt.Errorf("replica: ship failed after %d attempts: %w", s.o.ShipRetries, lastErr)
	}
	return s.err
}

// shipOnce performs one exchange. With a contiguous batch it appends the
// staged bytes directly (zero file reads on the hot path); otherwise, or
// on any bookkeeping mismatch, it diffs the directory. shipMu serializes
// it against the background loop.
func (s *Sender) shipOnce(seg string, off int64, batch []byte, durableLSN uint64) error {
	s.shipMu.Lock()
	defer s.shipMu.Unlock()

	s.mu.Lock()
	if s.err != nil {
		err := s.err
		s.mu.Unlock()
		return err
	}
	epoch := s.epoch
	if durableLSN == 0 {
		durableLSN = s.durableLSN
	}
	s.mu.Unlock()

	var req []byte
	var shipped int64
	fastRel := ""
	if batch != nil && seg != "" {
		if rel, ok := s.relOf(seg); ok && s.offsets[rel] == off {
			f := Frame{Kind: FrameData, Epoch: epoch, Seq: s.seq + 1, LSN: durableLSN, Path: rel, Off: off, Data: batch}
			req = AppendFrame(nil, &f)
			shipped = int64(len(batch))
			fastRel = rel
		}
	}
	if req == nil {
		var err error
		req, shipped, err = s.buildDiff(epoch, durableLSN)
		if err != nil {
			return err
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), s.o.ShipTimeout)
	resp, err := s.tr.Exchange(ctx, req)
	cancel()
	if err != nil {
		return fmt.Errorf("replica: exchange: %w", err)
	}
	f, _, err := DecodeFrame(resp)
	if err != nil {
		return fmt.Errorf("replica: bad response: %w", err)
	}
	switch f.Kind {
	case FrameAck:
		s.seq++
		if fastRel != "" {
			s.offsets[fastRel] = off + int64(len(batch))
		} else {
			s.commitDiffOffsets()
		}
		s.mShips.Inc()
		s.mShipBytes.Add(uint64(shipped))
		s.mu.Lock()
		if f.LSN > s.ackedLSN {
			s.ackedLSN = f.LSN
		}
		s.pendingBytes -= shipped
		if s.pendingBytes < 0 {
			s.pendingBytes = 0
		}
		s.updateLagLocked()
		s.mu.Unlock()
		return nil
	case FrameFenced:
		s.mu.Lock()
		defer s.mu.Unlock()
		return s.fenceLocked(f.Epoch)
	case FrameResync:
		// Adopt the receiver's durable state and report a retryable miss;
		// the caller's next attempt ships the difference.
		s.seq = f.Seq
		s.offsets = make(map[string]int64, len(f.Files))
		for _, fs := range f.Files {
			s.offsets[fs.Path] = fs.Size
		}
		s.mu.Lock()
		if f.LSN > s.ackedLSN {
			s.ackedLSN = f.LSN
		}
		s.mu.Unlock()
		return fmt.Errorf("replica: receiver requested resync (applied lsn %d)", f.LSN)
	default:
		return fmt.Errorf("%w: unexpected response kind %d", ErrFrameCorrupt, f.Kind)
	}
}

// pendingDiff holds the offset advances of an in-flight diff exchange,
// committed only on ack.
type pendingDiff struct {
	advances map[string]int64
	deletes  []string
}

func (s *Sender) commitDiffOffsets() {
	for rel, sz := range s.curDiff.advances {
		s.offsets[rel] = sz
	}
	for _, rel := range s.curDiff.deletes {
		delete(s.offsets, rel)
	}
	s.curDiff = pendingDiff{}
}

// relOf maps an absolute segment path inside src to its relative form.
func (s *Sender) relOf(abs string) (string, bool) {
	rel, err := filepath.Rel(s.src, abs)
	if err != nil || len(rel) == 0 || rel[0] == '.' {
		return "", false
	}
	return rel, true
}

// buildDiff scans src for bytes beyond the shipped offsets and encodes
// them as data frames (plus prune frames for vanished files). When
// nothing differs it encodes a single heartbeat, so the exchange still
// refreshes the standby's ack. Offsets are NOT advanced here — only an
// ack commits them (see commitDiffOffsets).
func (s *Sender) buildDiff(epoch, durableLSN uint64) ([]byte, int64, error) {
	s.curDiff = pendingDiff{advances: make(map[string]int64)}
	seq := s.seq + 1
	var req []byte
	var shipped int64
	live := make(map[string]bool)
	var rels []string
	for _, sub := range []string{"wal", "snap"} {
		entries, err := os.ReadDir(filepath.Join(s.src, sub))
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return nil, 0, fmt.Errorf("replica: read %s: %w", sub, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			rels = append(rels, filepath.Join(sub, e.Name()))
		}
	}
	sort.Strings(rels)
	for _, rel := range rels {
		live[rel] = true
		fi, err := os.Stat(filepath.Join(s.src, rel))
		if err != nil {
			continue // vanished mid-scan; reconciles next pass
		}
		have := s.offsets[rel]
		if fi.Size() < have {
			have = 0 // source shrank (torn-tail truncation): restart the file
		}
		if fi.Size() == have {
			continue
		}
		data := make([]byte, fi.Size()-have)
		f, err := os.Open(filepath.Join(s.src, rel))
		if err != nil {
			continue
		}
		n, err := f.ReadAt(data, have)
		f.Close()
		if err != nil && n == 0 {
			continue
		}
		data = data[:n]
		fr := Frame{Kind: FrameData, Epoch: epoch, Seq: seq, LSN: durableLSN, Path: rel, Off: have, Data: data}
		req = AppendFrame(req, &fr)
		shipped += int64(n)
		s.curDiff.advances[rel] = have + int64(n)
	}
	for rel := range s.offsets {
		if !live[rel] {
			fr := Frame{Kind: FramePrune, Epoch: epoch, Seq: seq, Path: rel}
			req = AppendFrame(req, &fr)
			s.curDiff.deletes = append(s.curDiff.deletes, rel)
		}
	}
	if req == nil {
		fr := Frame{Kind: FrameHeartbeat, Epoch: epoch, Seq: seq, LSN: durableLSN}
		req = AppendFrame(req, &fr)
	}
	return req, shipped, nil
}

func (s *Sender) updateLagLocked() {
	if s.durableLSN > s.ackedLSN {
		s.mLagRecords.Set(int64(s.durableLSN - s.ackedLSN))
	} else {
		s.mLagRecords.Set(0)
	}
	s.mLagBytes.Set(s.pendingBytes)
}

// Run ships in the background until ctx ends: on every interval tick (or
// sooner when kicked), anything unshipped — including snapshot and
// truncation changes that never pass through the commit gate — goes out.
// Errors are counted and retried next tick; in async mode that is the
// whole failure story, in sync mode the gate's bounded retry is the
// enforcement point.
func (s *Sender) Run(ctx context.Context, interval time.Duration) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		case <-s.kick:
		}
		s.mu.Lock()
		stop := s.err != nil
		s.mu.Unlock()
		if stop {
			return
		}
		if err := s.shipOnce("", 0, nil, 0); err != nil {
			if errors.Is(err, ErrFenced) {
				return
			}
			s.mFailures.Inc()
			s.logger.Warn("background ship failed; retrying next tick", rlog.Err(err))
		}
	}
}

// HandleLease answers a standby's lease ping (the primary side of the
// lease protocol): still-primary grants, a ping carrying a higher epoch
// fences us on the spot (the standby has promoted; stop acking).
func (s *Sender) HandleLease(req []byte) []byte {
	f, _, err := DecodeFrame(req)
	if err != nil || f.Kind != FrameLeasePing {
		return respondFrame(&Frame{Kind: FrameFenced, Epoch: s.Epoch()})
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if f.Epoch > s.epoch {
		s.fenceLocked(f.Epoch)
		return respondFrame(&Frame{Kind: FrameFenced, Epoch: f.Epoch})
	}
	if s.err != nil {
		// A poisoned/fenced primary must not extend leases it can no
		// longer honor: let the standby's lease expire and promote.
		return respondFrame(&Frame{Kind: FrameFenced, Epoch: s.epoch})
	}
	s.lastPing = time.Now()
	return respondFrame(&Frame{Kind: FrameLeaseGrant, Epoch: s.epoch, LSN: s.durableLSN})
}
