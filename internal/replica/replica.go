// Package replica implements standby replication for queue repositories by
// log shipping.
//
// The paper's Section 10–11 implementation notes call queues "a good
// candidate for being stored as a replicated database", since reliably
// managing requests is the heart of the system's availability. This
// package takes the classic approach the paper's durability design makes
// almost free: a repository IS its write-ahead log plus snapshots, so a
// standby is maintained by shipping exactly those files. Promotion is
// ordinary crash recovery on the shipped copy — the same code path every
// restart already exercises — so the standby's correctness is the
// recovery's correctness, with data loss bounded by the shipping lag.
//
// Shipping is incremental: WAL segments are append-only (new bytes are
// copied from the previous offset) and snapshot files are immutable once
// published (copied whole, once). Files deleted at the source (log
// truncation, snapshot GC) are deleted at the standby. A ship racing an
// append may copy a torn tail; promotion's recovery treats it exactly like
// a crash-torn tail and ignores it, and the next ship completes it.
package replica

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	rlog "repro/internal/obs/log"
)

// Shipper incrementally mirrors a repository directory (its wal/ and snap/
// subdirectories) to a standby directory.
type Shipper struct {
	src string
	dst string

	mu      sync.Mutex
	offsets map[string]int64 // relative path -> bytes already shipped

	ships        uint64
	bytesShipped uint64

	logger *rlog.Logger // nil-safe
}

// SetLogger installs the logger for ship-failure events (retried on the
// next tick, so otherwise silent). Nil disables logging.
func (s *Shipper) SetLogger(l *rlog.Logger) {
	s.mu.Lock()
	s.logger = l.Named("replica")
	s.mu.Unlock()
}

func (s *Shipper) getLogger() *rlog.Logger {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.logger
}

// NewShipper mirrors the repository at src into dst (created if needed).
func NewShipper(src, dst string) (*Shipper, error) {
	for _, sub := range []string{"wal", "snap"} {
		if err := os.MkdirAll(filepath.Join(dst, sub), 0o755); err != nil {
			return nil, fmt.Errorf("replica: mkdir: %w", err)
		}
	}
	return &Shipper{src: src, dst: dst, offsets: make(map[string]int64)}, nil
}

// Stats reports ships performed and bytes copied.
func (s *Shipper) Stats() (ships, bytes uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ships, s.bytesShipped
}

// SyncOnce ships every new byte since the previous call and prunes files
// the source has deleted. It returns the number of bytes copied.
func (s *Shipper) SyncOnce() (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var copied int64
	live := make(map[string]bool)
	for _, sub := range []string{"wal", "snap"} {
		srcDir := filepath.Join(s.src, sub)
		entries, err := os.ReadDir(srcDir)
		if err != nil {
			if os.IsNotExist(err) {
				continue
			}
			return copied, fmt.Errorf("replica: read %s: %w", srcDir, err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			rel := filepath.Join(sub, e.Name())
			live[rel] = true
			n, err := s.shipFile(rel)
			if err != nil {
				// The file may have been truncated/removed mid-ship (log
				// truncation); it will reconcile on the next pass.
				if os.IsNotExist(err) {
					continue
				}
				return copied, err
			}
			copied += n
		}
	}
	// Prune deletions (truncated segments, GC'd snapshots).
	for rel := range s.offsets {
		if !live[rel] {
			os.Remove(filepath.Join(s.dst, rel))
			delete(s.offsets, rel)
		}
	}
	s.ships++
	s.bytesShipped += uint64(copied)
	return copied, nil
}

func (s *Shipper) shipFile(rel string) (int64, error) {
	srcPath := filepath.Join(s.src, rel)
	fi, err := os.Stat(srcPath)
	if err != nil {
		return 0, err
	}
	have := s.offsets[rel]
	if fi.Size() < have {
		// Source shrank (e.g. torn-tail truncation at source recovery):
		// restart the file from scratch.
		have = 0
	}
	if fi.Size() == have {
		return 0, nil
	}
	src, err := os.Open(srcPath)
	if err != nil {
		return 0, err
	}
	defer src.Close()
	if _, err := src.Seek(have, io.SeekStart); err != nil {
		return 0, err
	}
	dstPath := filepath.Join(s.dst, rel)
	flags := os.O_CREATE | os.O_WRONLY
	dst, err := os.OpenFile(dstPath, flags, 0o644)
	if err != nil {
		return 0, err
	}
	defer dst.Close()
	if have == 0 {
		if err := dst.Truncate(0); err != nil {
			return 0, err
		}
	}
	if _, err := dst.Seek(have, io.SeekStart); err != nil {
		return 0, err
	}
	n, err := io.Copy(dst, src)
	if err != nil {
		return n, fmt.Errorf("replica: copy %s: %w", rel, err)
	}
	s.offsets[rel] = have + n
	return n, nil
}

// Run ships on the given interval until ctx ends; errors are retried on
// the next tick.
func (s *Shipper) Run(ctx context.Context, interval time.Duration) {
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			if _, err := s.SyncOnce(); err != nil {
				s.getLogger().Warn("ship failed; retrying next tick", rlog.Err(err))
			}
		}
	}
}

// ErrNotShipped reports promotion of a standby directory that has no
// shipped state at all.
var ErrNotShipped = errors.New("replica: standby has no shipped state")

// VerifyStandby sanity-checks that dst looks like a shipped repository
// before promotion (promotion itself is just queue.Open on dst).
func VerifyStandby(dst string) error {
	entries, err := os.ReadDir(filepath.Join(dst, "wal"))
	if err != nil || len(entries) == 0 {
		return ErrNotShipped
	}
	return nil
}
