package replica

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/internal/obs"
	rlog "repro/internal/obs/log"
)

// ReceiverOptions configure a standby Receiver.
type ReceiverOptions struct {
	// NoFsync skips the per-exchange fsync of touched files (tests). A
	// real standby must leave it false: the ack IS the durability promise
	// the primary's commit gate is waiting on.
	NoFsync bool
	// Metrics receives replica.epoch / replica.applied_lsn gauges and the
	// replica.exchanges / replica.resyncs counters; nil uses a private
	// registry.
	Metrics *obs.Registry
	// Logger receives lifecycle events; nil disables logging.
	Logger *rlog.Logger
}

// Receiver is the standby side of the replication stream: it applies
// shipped frames into a repository directory that queue.Open can recover
// at promotion time, tracks the primary's epoch, and — once promoted —
// fences every further exchange from the old primary.
type Receiver struct {
	dir  string
	opts ReceiverOptions

	mu         sync.Mutex
	epoch      uint64 // highest epoch seen or persisted
	promoted   bool
	lastSeq    uint64
	appliedLSN uint64
	sizes      map[string]int64 // relative path -> bytes applied

	logger *rlog.Logger

	mEpoch     *obs.Gauge
	mApplied   *obs.Gauge
	mExchanges *obs.Counter
	mResyncs   *obs.Counter
	mFenced    *obs.Counter
}

// NewReceiver opens (creating if needed) a standby over dir. Existing
// shipped state is adopted: file sizes are scanned so a restarted
// standby resyncs instead of re-receiving everything.
func NewReceiver(dir string, opts ReceiverOptions) (*Receiver, error) {
	for _, sub := range []string{"wal", "snap"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, fmt.Errorf("replica: mkdir standby: %w", err)
		}
	}
	epoch, err := LoadEpoch(dir)
	if err != nil {
		return nil, err
	}
	reg := opts.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	r := &Receiver{
		dir:        dir,
		opts:       opts,
		epoch:      epoch,
		sizes:      make(map[string]int64),
		logger:     opts.Logger.Named("replica"),
		mEpoch:     reg.Gauge("replica.epoch"),
		mApplied:   reg.Gauge("replica.applied_lsn"),
		mExchanges: reg.Counter("replica.exchanges"),
		mResyncs:   reg.Counter("replica.resyncs"),
		mFenced:    reg.Counter("replica.fenced_exchanges"),
	}
	r.mEpoch.Set(int64(epoch))
	for _, sub := range []string{"wal", "snap"} {
		entries, err := os.ReadDir(filepath.Join(dir, sub))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if fi, err := e.Info(); err == nil {
				r.sizes[filepath.Join(sub, e.Name())] = fi.Size()
			}
		}
	}
	return r, nil
}

// Dir returns the standby directory (the promotion target).
func (r *Receiver) Dir() string { return r.dir }

// Epoch returns the highest epoch the standby has seen or persisted.
func (r *Receiver) Epoch() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.epoch
}

// AppliedLSN returns the highest primary-durable LSN whose bytes the
// standby has applied (and, unless NoFsync, made durable).
func (r *Receiver) AppliedLSN() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.appliedLSN
}

// Promoted reports whether Promote has run.
func (r *Receiver) Promoted() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoted
}

// Promote fences the stream and claims the primacy: the epoch is bumped
// past everything seen and durably recorded BEFORE the method returns,
// so by the time the caller opens the directory as a live repository,
// any exchange from the old primary already meets a higher epoch here —
// and, through the lease protocol, at the old primary itself. Returns
// the new epoch. Idempotent.
func (r *Receiver) Promote() (uint64, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.promoted {
		return r.epoch, nil
	}
	next := r.epoch + 1
	if err := StoreEpoch(r.dir, next); err != nil {
		return 0, err
	}
	r.epoch = next
	r.promoted = true
	r.mEpoch.Set(int64(next))
	r.logger.Info("standby promoted",
		rlog.Uint64("epoch", next),
		rlog.Uint64("applied_lsn", r.appliedLSN))
	return next, nil
}

// resyncFrame builds the receiver's durable-state answer: file sizes,
// applied LSN, last applied seq. The sender restarts shipping from
// exactly here.
func (r *Receiver) resyncFrameLocked() *Frame {
	f := &Frame{Kind: FrameResync, Epoch: r.epoch, Seq: r.lastSeq, LSN: r.appliedLSN}
	paths := make([]string, 0, len(r.sizes))
	for p := range r.sizes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		f.Files = append(f.Files, FileState{Path: p, Size: r.sizes[p]})
	}
	return f
}

func respondFrame(f *Frame) []byte { return AppendFrame(nil, f) }

// Apply performs one ship exchange: decode the request frames, apply
// them, answer with a single response frame. It never returns an error —
// protocol trouble is answered in-band (fenced, resync) so the transport
// layer stays dumb.
func (r *Receiver) Apply(req []byte) []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.mExchanges.Inc()

	frames, derr := DecodeFrames(req)
	if len(frames) == 0 {
		// Nothing intelligible at all: ask for a restart from our state.
		r.mResyncs.Inc()
		r.logger.Warn("unintelligible exchange; resync", rlog.Err(derr))
		return respondFrame(r.resyncFrameLocked())
	}
	e := frames[0].Epoch

	// Fencing. A promoted standby is a primary now: nothing ships to it.
	// A lower epoch is a demoted primary that does not yet know it.
	if r.promoted || e < r.epoch {
		r.mFenced.Inc()
		r.logger.Warn("exchange fenced",
			rlog.Uint64("their_epoch", e),
			rlog.Uint64("our_epoch", r.epoch),
			rlog.Bool("promoted", r.promoted))
		return respondFrame(&Frame{Kind: FrameFenced, Epoch: r.epoch})
	}
	if e > r.epoch {
		// A newer primary: adopt its epoch durably before applying
		// anything, so a crash cannot forget who we followed.
		if err := StoreEpoch(r.dir, e); err != nil {
			r.logger.Error("epoch persist failed", rlog.Err(err))
			return respondFrame(r.resyncFrameLocked())
		}
		r.epoch = e
		r.mEpoch.Set(int64(e))
	}

	// Sequence discipline: an exchange must be the next one (seq+1) or an
	// exact retry of the last (ack lost; re-application is idempotent).
	// Anything else — a restarted sender, a restarted receiver, frames
	// lost in between — resyncs from our durable state.
	seq := frames[0].Seq
	if seq != r.lastSeq+1 && seq != r.lastSeq {
		r.mResyncs.Inc()
		return respondFrame(r.resyncFrameLocked())
	}

	// The decode may have hit a torn tail after a clean prefix. Applying
	// the prefix would be fine (offset-addressed writes), but the sender
	// treats a resync as "re-ship from my state", which handles both —
	// and the explicit answer is what the torn-ship-tail recovery wants.
	if derr != nil {
		r.mResyncs.Inc()
		r.logger.Warn("torn exchange tail; resync",
			rlog.Err(derr), rlog.Int("clean_frames", len(frames)))
		return respondFrame(r.resyncFrameLocked())
	}

	touched := make(map[string]*os.File)
	defer func() {
		for _, f := range touched {
			f.Close()
		}
	}()
	maxLSN := r.appliedLSN
	for i := range frames {
		f := &frames[i]
		switch f.Kind {
		case FrameData:
			if !validRel(f.Path) {
				r.mResyncs.Inc()
				return respondFrame(r.resyncFrameLocked())
			}
			if f.Off > r.sizes[f.Path] {
				// A gap: we never got the bytes before Off. Resync.
				r.mResyncs.Inc()
				return respondFrame(r.resyncFrameLocked())
			}
			fh := touched[f.Path]
			if fh == nil {
				var err error
				fh, err = os.OpenFile(filepath.Join(r.dir, f.Path), os.O_CREATE|os.O_WRONLY, 0o644)
				if err != nil {
					r.logger.Error("standby open failed", rlog.Str("path", f.Path), rlog.Err(err))
					return respondFrame(r.resyncFrameLocked())
				}
				touched[f.Path] = fh
			}
			if f.Off == 0 {
				// A restart from scratch (source file shrank or is new):
				// drop whatever we had beyond the incoming bytes.
				if err := fh.Truncate(0); err != nil {
					return respondFrame(r.resyncFrameLocked())
				}
			}
			if _, err := fh.WriteAt(f.Data, f.Off); err != nil {
				r.logger.Error("standby write failed", rlog.Str("path", f.Path), rlog.Err(err))
				return respondFrame(r.resyncFrameLocked())
			}
			if end := f.Off + int64(len(f.Data)); end > r.sizes[f.Path] || f.Off == 0 {
				r.sizes[f.Path] = end
			}
			if f.LSN > maxLSN {
				maxLSN = f.LSN
			}
		case FramePrune:
			if !validRel(f.Path) {
				continue
			}
			os.Remove(filepath.Join(r.dir, f.Path))
			delete(r.sizes, f.Path)
		case FrameHeartbeat:
			// No bytes: the sender asserts everything through f.LSN has
			// already been shipped and acked (it only sends a heartbeat
			// when its diff is empty). The seq discipline above is what
			// makes that assertion trustworthy: a sender whose session we
			// did not fully receive would have mismatched seq and been
			// resynced instead.
			if f.LSN > maxLSN {
				maxLSN = f.LSN
			}
		default:
			// Lease frames and responses do not belong in a ship exchange.
			r.mResyncs.Inc()
			return respondFrame(r.resyncFrameLocked())
		}
	}
	if !r.opts.NoFsync {
		for _, fh := range touched {
			if err := fh.Sync(); err != nil {
				r.logger.Error("standby fsync failed", rlog.Err(err))
				return respondFrame(r.resyncFrameLocked())
			}
		}
	}
	r.lastSeq = seq
	r.appliedLSN = maxLSN
	r.mApplied.Set(int64(maxLSN))
	return respondFrame(&Frame{Kind: FrameAck, Epoch: r.epoch, Seq: seq, LSN: maxLSN})
}

// validRel rejects paths that would escape the standby directory or
// touch anything but the replicated subtrees.
func validRel(p string) bool {
	if p == "" || filepath.IsAbs(p) {
		return false
	}
	clean := filepath.Clean(p)
	if clean != p {
		return false
	}
	dir, _ := filepath.Split(clean)
	return dir == "wal"+string(filepath.Separator) || dir == "snap"+string(filepath.Separator)
}
