package replica

// Epoch persistence — the fencing token.
//
// Each repository directory carries an EPOCH file holding the highest
// primary epoch the node has ever served or observed. A standby bumps it
// when it self-promotes; every shipped frame and lease message carries
// it; both sides reject anything from a lower epoch. Because the bump is
// persisted (write-temp, rename, fsync) *before* the promoted standby
// accepts its first operation, a partitioned ex-primary can never be
// acked by anyone after the new primary exists: its frames carry the old
// epoch, and every surviving party knows a higher one.

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

const epochFile = "EPOCH"

// LoadEpoch reads dir's persisted epoch; a missing file is epoch 0 (a
// node that has never been part of a replicated pair).
func LoadEpoch(dir string) (uint64, error) {
	b, err := os.ReadFile(filepath.Join(dir, epochFile))
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, fmt.Errorf("replica: load epoch: %w", err)
	}
	v, err := strconv.ParseUint(strings.TrimSpace(string(b)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("replica: load epoch: malformed %q: %w", string(b), err)
	}
	return v, nil
}

// StoreEpoch durably records epoch in dir (temp file, rename, fsync of
// file and directory — the same publish discipline snapshots use).
func StoreEpoch(dir string, epoch uint64) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("replica: store epoch: %w", err)
	}
	tmp := filepath.Join(dir, epochFile+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("replica: store epoch: %w", err)
	}
	if _, err := fmt.Fprintf(f, "%d\n", epoch); err != nil {
		f.Close()
		return fmt.Errorf("replica: store epoch: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("replica: store epoch: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("replica: store epoch: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(dir, epochFile)); err != nil {
		return fmt.Errorf("replica: store epoch: %w", err)
	}
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
	return nil
}
