package replica

// The lease protocol — who gets to be primary.
//
// The standby pings the primary on a short interval; each FrameLeaseGrant
// answer renews the primary's lease for TTL. When a whole TTL passes
// without a grant — primary dead, partitioned, or answering FrameFenced
// because it has already observed a higher epoch — the standby promotes
// itself: it bumps and persists the epoch (fencing every late ship from
// the old primary) and hands control to OnPromote, which opens the
// replicated directory as a live repository.
//
// The TTL is the availability/safety dial of fig. 2's single-queue-pair
// world: failover completes within roughly one TTL of the primary's
// death, and because the grant is the ONLY thing that renews it, a
// primary that cannot reach its standby knows (via lease pings carrying a
// higher epoch, or simply via fenced acks) that it may have been
// superseded and must stop acking new work.

import (
	"context"
	"sync"
	"time"

	rlog "repro/internal/obs/log"
)

// StandbyOptions configure the lease watcher on the standby side.
type StandbyOptions struct {
	// TTL is the lease duration: a standby that has gone TTL without a
	// grant promotes itself. Zero means 1s.
	TTL time.Duration
	// PingEvery is the ping interval; zero means TTL/4.
	PingEvery time.Duration
	// PingTimeout bounds one ping exchange; zero means PingEvery.
	PingTimeout time.Duration
	// OnPromote runs (once) after the epoch bump has been persisted; this
	// is where the caller opens the directory as a live node. The watcher
	// has already stopped when it runs.
	OnPromote func(epoch uint64)
	// Logger receives lease lifecycle events; nil disables logging.
	Logger *rlog.Logger
}

// Watcher drives the standby's side of the lease protocol.
type Watcher struct {
	rcv  *Receiver
	tr   Transport
	o    StandbyOptions
	log  *rlog.Logger
	once sync.Once

	mu        sync.Mutex
	lastGrant time.Time
	primLSN   uint64 // primary's durable LSN from the last grant
}

// NewWatcher builds a lease watcher pinging the primary through tr on
// behalf of rcv. Run starts it.
func NewWatcher(rcv *Receiver, tr Transport, o StandbyOptions) *Watcher {
	if o.TTL <= 0 {
		o.TTL = time.Second
	}
	if o.PingEvery <= 0 {
		o.PingEvery = o.TTL / 4
	}
	if o.PingTimeout <= 0 {
		o.PingTimeout = o.PingEvery
	}
	return &Watcher{rcv: rcv, tr: tr, o: o, log: o.Logger.Named("replica.lease")}
}

// LeaseRemaining reports how much of the current lease is left; zero or
// negative means expired (promotion imminent or done).
func (w *Watcher) LeaseRemaining() time.Duration {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.lastGrant.IsZero() {
		return w.o.TTL
	}
	return w.o.TTL - time.Since(w.lastGrant)
}

// PrimaryLSN returns the primary's durable LSN as of the last grant.
func (w *Watcher) PrimaryLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.primLSN
}

// TTL returns the configured lease duration.
func (w *Watcher) TTL() time.Duration { return w.o.TTL }

// Run pings until ctx ends or the lease expires; expiry promotes the
// receiver and invokes OnPromote. The initial lease starts NOW — a
// standby that boots against a dead primary promotes after one TTL.
func (w *Watcher) Run(ctx context.Context) {
	w.mu.Lock()
	w.lastGrant = time.Now()
	w.mu.Unlock()
	tick := time.NewTicker(w.o.PingEvery)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
		}
		if w.rcv.Promoted() {
			return
		}
		w.ping(ctx)
		w.mu.Lock()
		expired := time.Since(w.lastGrant) > w.o.TTL
		w.mu.Unlock()
		if expired {
			w.promote()
			return
		}
	}
}

func (w *Watcher) ping(ctx context.Context) {
	req := AppendFrame(nil, &Frame{Kind: FrameLeasePing, Epoch: w.rcv.Epoch()})
	pctx, cancel := context.WithTimeout(ctx, w.o.PingTimeout)
	resp, err := w.tr.Exchange(pctx, req)
	cancel()
	if err != nil {
		w.log.Debug("lease ping failed", rlog.Err(err))
		return
	}
	f, _, err := DecodeFrame(resp)
	if err != nil || f.Kind != FrameLeaseGrant {
		// A fenced answer (or garbage) does not renew: the primary has
		// stepped down or gone strange, and the lease clock keeps running.
		w.log.Debug("lease not renewed", rlog.Err(err))
		return
	}
	w.mu.Lock()
	w.lastGrant = time.Now()
	w.primLSN = f.LSN
	w.mu.Unlock()
}

func (w *Watcher) promote() {
	w.once.Do(func() {
		epoch, err := w.rcv.Promote()
		if err != nil {
			// The one unrecoverable spot: we cannot durably claim the
			// epoch, so we must NOT serve (a lost bump could resurrect
			// split-brain after a crash). Log loudly and stay standby.
			w.log.Error("promotion failed; staying standby", rlog.Err(err))
			return
		}
		w.log.Info("lease expired; promoted", rlog.Uint64("epoch", epoch))
		if w.o.OnPromote != nil {
			w.o.OnPromote(epoch)
		}
	})
}
