package replica

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/queue"
)

// applyTr wires a Sender straight into a Receiver: the in-process
// equivalent of the RPC transport.
func applyTr(rcv *Receiver) TransportFunc {
	return func(ctx context.Context, req []byte) ([]byte, error) {
		return rcv.Apply(req), nil
	}
}

// replicatedDirsEqual compares the replicated subtrees byte for byte.
func replicatedDirsEqual(t *testing.T, src, dst string) {
	t.Helper()
	for _, sub := range []string{"wal", "snap"} {
		entries, err := os.ReadDir(filepath.Join(src, sub))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			rel := filepath.Join(sub, e.Name())
			a, err := os.ReadFile(filepath.Join(src, rel))
			if err != nil {
				t.Fatal(err)
			}
			b, err := os.ReadFile(filepath.Join(dst, rel))
			if err != nil {
				t.Fatalf("standby missing %s: %v", rel, err)
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("standby diverges on %s: %d vs %d bytes", rel, len(a), len(b))
			}
		}
	}
}

// TestSyncReplicationEndToEnd: the tentpole commit rule. A repository
// whose WAL gate is a sync-mode Sender must leave the standby holding
// every acked record — acked LSN tracks durable LSN exactly — and the
// promoted standby must recover the identical queue.
func TestSyncReplicationEndToEnd(t *testing.T) {
	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	rcv, err := NewReceiver(standbyDir, ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSender(primaryDir, applyTr(rcv), SenderOptions{Mode: ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	repo, inDoubt, err := queue.Open(primaryDir, queue.Options{NoFsync: true, WALGate: s.Gate})
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("in-doubt: %d", len(inDoubt))
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: []byte(fmt.Sprintf("m%d", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
		st := s.Status()
		if st.AckedLSN != st.DurableLSN {
			t.Fatalf("after commit %d: acked %d behind durable %d — sync rule violated",
				i, st.AckedLSN, st.DurableLSN)
		}
	}
	// Compare before Close: the close-time checkpoint snapshot does not
	// pass through the commit gate (the background Run loop ships it in
	// production, and recovery needs only the WAL anyway).
	replicatedDirsEqual(t, primaryDir, standbyDir)
	repo.Close()

	if _, err := rcv.Promote(); err != nil {
		t.Fatal(err)
	}
	sb, inDoubt, err := queue.Open(standbyDir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer sb.Close()
	if len(inDoubt) != 0 {
		t.Fatalf("standby in-doubt: %d", len(inDoubt))
	}
	d, err := sb.Depth("q")
	if err != nil {
		t.Fatal(err)
	}
	if d != n {
		t.Fatalf("promoted standby depth %d, want %d", d, n)
	}
}

// TestTornShipTailRecovery (satellite): a ship truncated in transit must
// not wedge the stream or corrupt the standby — the receiver answers
// with a resync from its last durable state and the sender's retry ships
// the difference.
func TestTornShipTailRecovery(t *testing.T) {
	primaryDir, standbyDir := t.TempDir(), t.TempDir()
	rcv, err := NewReceiver(standbyDir, ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	var torn atomic.Int64
	tr := TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		// Tear the tail off the first data-carrying exchange.
		if torn.Load() == 0 && len(req) > 8 {
			torn.Store(1)
			return rcv.Apply(req[:len(req)-5]), nil
		}
		return rcv.Apply(req), nil
	})
	s, err := NewSender(primaryDir, tr, SenderOptions{Mode: ModeSync, RetryBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	repo, _, err := queue.Open(primaryDir, queue.Options{NoFsync: true, WALGate: s.Gate})
	if err != nil {
		t.Fatal(err)
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: []byte("payload")}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	if torn.Load() == 0 {
		t.Fatal("fault never injected")
	}
	st := s.Status()
	if st.AckedLSN != st.DurableLSN {
		t.Fatalf("acked %d behind durable %d after torn-tail recovery", st.AckedLSN, st.DurableLSN)
	}
	if st.ShipFailures == 0 {
		t.Fatal("torn ship was not counted as a failure")
	}
	replicatedDirsEqual(t, primaryDir, standbyDir)
	repo.Close()
}

// TestShipRetryExhaustionPoisons: with DegradeToAsync off, a standby
// that stays unreachable must poison the gate after the bounded retries
// — the commit fails instead of stalling forever or acking unreplicated.
func TestShipRetryExhaustionPoisons(t *testing.T) {
	boom := errors.New("standby unreachable")
	tr := TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return nil, boom
	})
	s, err := NewSender(t.TempDir(), tr, SenderOptions{
		Mode: ModeSync, ShipRetries: 2, RetryBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Gate(1, "", 0, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("gate error %v, want wrapped transport error", err)
	}
	if s.Err() == nil {
		t.Fatal("error not sticky")
	}
	// Sticky: the next commit fails immediately, same error.
	if err2 := s.Gate(2, "", 0, nil); !errors.Is(err2, boom) {
		t.Fatalf("second gate: %v", err2)
	}
	st := s.Status()
	if st.Err == "" || st.Degraded {
		t.Fatalf("status after poison: %+v", st)
	}
	if st.ShipFailures < 2 {
		t.Fatalf("ship failures %d, want >= 2", st.ShipFailures)
	}
}

// TestShipRetryExhaustionDegradesToAsync: with DegradeToAsync on, the
// same exhaustion sheds the guarantee instead of availability — the
// commit succeeds, the mode reads async, health reports degraded.
func TestShipRetryExhaustionDegradesToAsync(t *testing.T) {
	tr := TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return nil, errors.New("standby unreachable")
	})
	s, err := NewSender(t.TempDir(), tr, SenderOptions{
		Mode: ModeSync, ShipRetries: 2, RetryBackoff: time.Millisecond, DegradeToAsync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Gate(1, "", 0, nil); err != nil {
		t.Fatalf("degrading gate returned %v, want nil", err)
	}
	st := s.Status()
	if !st.Degraded {
		t.Fatal("not degraded")
	}
	if st.Mode != "async" {
		t.Fatalf("effective mode %q, want async", st.Mode)
	}
	if s.Err() != nil {
		t.Fatalf("degrade must not poison: %v", s.Err())
	}
	// Subsequent commits are async: no exchange in the commit path.
	if err := s.Gate(2, "", 0, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFencedShipIsSticky: a promoted standby answers FrameFenced; the
// sender must go sticky-fenced — and DegradeToAsync must NOT rescue it
// (a fenced primary acking async-style is exactly split-brain).
func TestFencedShipIsSticky(t *testing.T) {
	rcv, err := NewReceiver(t.TempDir(), ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rcv.Promote(); err != nil {
		t.Fatal(err)
	}
	src := t.TempDir()
	if err := os.MkdirAll(filepath.Join(src, "wal"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(src, "wal", "wal-1.seg"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := NewSender(src, applyTr(rcv), SenderOptions{
		Mode: ModeSync, RetryBackoff: time.Millisecond, DegradeToAsync: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	err = s.Gate(1, "", 0, nil)
	if !errors.Is(err, ErrFenced) {
		t.Fatalf("gate on fenced standby: %v, want ErrFenced", err)
	}
	st := s.Status()
	if !st.Fenced || st.Degraded {
		t.Fatalf("status: %+v — fencing must never degrade away", st)
	}
	if err := s.Gate(2, "", 0, nil); !errors.Is(err, ErrFenced) {
		t.Fatalf("fencing not sticky: %v", err)
	}
}

// TestHandleLease: the primary grants while healthy, records the ping,
// self-fences on a ping from a higher epoch, and refuses to extend
// leases once poisoned.
func TestHandleLease(t *testing.T) {
	tr := TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return nil, errors.New("unused")
	})
	s, err := NewSender(t.TempDir(), tr, SenderOptions{Mode: ModeSync})
	if err != nil {
		t.Fatal(err)
	}
	ping := func(epoch uint64) Frame {
		resp := s.HandleLease(AppendFrame(nil, &Frame{Kind: FrameLeasePing, Epoch: epoch}))
		f, _, err := DecodeFrame(resp)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if f := ping(0); f.Kind != FrameLeaseGrant {
		t.Fatalf("healthy ping answered %d, want grant", f.Kind)
	}
	// A ping carrying a higher epoch means the standby promoted: the
	// primary must fence itself on the spot.
	if f := ping(5); f.Kind != FrameFenced {
		t.Fatalf("stale-epoch ping answered %d, want fenced", f.Kind)
	}
	if !errors.Is(s.Err(), ErrFenced) {
		t.Fatalf("sender not fenced: %v", s.Err())
	}
	// And a fenced primary never grants again.
	if f := ping(0); f.Kind != FrameFenced {
		t.Fatalf("fenced primary still granting: kind %d", f.Kind)
	}
}

func applyReq(t *testing.T, rcv *Receiver, frames ...Frame) Frame {
	t.Helper()
	var req []byte
	for i := range frames {
		req = AppendFrame(req, &frames[i])
	}
	f, _, err := DecodeFrame(rcv.Apply(req))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestReceiverIdempotentRetry: an exact retry of the last exchange (ack
// lost) must re-ack without corrupting the file.
func TestReceiverIdempotentRetry(t *testing.T) {
	dir := t.TempDir()
	rcv, err := NewReceiver(dir, ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	data := Frame{Kind: FrameData, Epoch: 1, Seq: 1, LSN: 3, Path: "wal/wal-1.seg", Off: 0, Data: []byte("hello")}
	if f := applyReq(t, rcv, data); f.Kind != FrameAck || f.LSN != 3 {
		t.Fatalf("first apply: %+v", f)
	}
	if f := applyReq(t, rcv, data); f.Kind != FrameAck || f.LSN != 3 {
		t.Fatalf("retry apply: %+v", f)
	}
	b, err := os.ReadFile(filepath.Join(dir, "wal", "wal-1.seg"))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "hello" {
		t.Fatalf("file after retry: %q", b)
	}
	if rcv.AppliedLSN() != 3 {
		t.Fatalf("applied lsn %d", rcv.AppliedLSN())
	}
}

// TestReceiverSeqGapResyncs: a sequence jump means lost exchanges; the
// receiver must answer with its durable state, not apply blind.
func TestReceiverSeqGapResyncs(t *testing.T) {
	rcv, err := NewReceiver(t.TempDir(), ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	applyReq(t, rcv, Frame{Kind: FrameData, Epoch: 1, Seq: 1, Path: "wal/wal-1.seg", Off: 0, Data: []byte("abc")})
	f := applyReq(t, rcv, Frame{Kind: FrameData, Epoch: 1, Seq: 7, Path: "wal/wal-1.seg", Off: 3, Data: []byte("def")})
	if f.Kind != FrameResync {
		t.Fatalf("seq gap answered %d, want resync", f.Kind)
	}
	if f.Seq != 1 {
		t.Fatalf("resync seq %d, want 1", f.Seq)
	}
	if len(f.Files) != 1 || f.Files[0].Path != "wal/wal-1.seg" || f.Files[0].Size != 3 {
		t.Fatalf("resync files: %+v", f.Files)
	}
	// An offset gap inside an in-sequence exchange resyncs too.
	f = applyReq(t, rcv, Frame{Kind: FrameData, Epoch: 1, Seq: 2, Path: "wal/wal-1.seg", Off: 9, Data: []byte("zzz")})
	if f.Kind != FrameResync {
		t.Fatalf("offset gap answered %d, want resync", f.Kind)
	}
}

// TestReceiverEpochAdoptionPersists: a higher shipping epoch is adopted
// durably before anything is applied — a restarted standby must still
// know whom it followed.
func TestReceiverEpochAdoptionPersists(t *testing.T) {
	dir := t.TempDir()
	rcv, err := NewReceiver(dir, ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if f := applyReq(t, rcv, Frame{Kind: FrameHeartbeat, Epoch: 7, Seq: 1, LSN: 0}); f.Kind != FrameAck {
		t.Fatalf("adopting exchange: %+v", f)
	}
	if rcv.Epoch() != 7 {
		t.Fatalf("epoch %d, want 7", rcv.Epoch())
	}
	rcv2, err := NewReceiver(dir, ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rcv2.Epoch() != 7 {
		t.Fatalf("restarted receiver epoch %d, want 7 (not persisted)", rcv2.Epoch())
	}
	// And lower-epoch traffic is now fenced.
	if f := applyReq(t, rcv2, Frame{Kind: FrameHeartbeat, Epoch: 3, Seq: 1}); f.Kind != FrameFenced {
		t.Fatalf("stale epoch answered %d, want fenced", f.Kind)
	}
}

// TestReceiverRestartResyncsFromScannedSizes: a restarted receiver knows
// its file sizes and resyncs the sender to them instead of re-receiving
// from scratch.
func TestReceiverRestartResyncsFromScannedSizes(t *testing.T) {
	dir := t.TempDir()
	rcv, err := NewReceiver(dir, ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	applyReq(t, rcv, Frame{Kind: FrameData, Epoch: 1, Seq: 1, Path: "wal/wal-1.seg", Off: 0, Data: []byte("abcdef")})

	rcv2, err := NewReceiver(dir, ReceiverOptions{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	// The restarted receiver lost its seq; the next exchange resyncs with
	// the scanned size so the sender ships only the delta.
	f := applyReq(t, rcv2, Frame{Kind: FrameData, Epoch: 1, Seq: 2, Path: "wal/wal-1.seg", Off: 6, Data: []byte("ghi")})
	if f.Kind != FrameResync {
		t.Fatalf("restarted receiver answered %d, want resync", f.Kind)
	}
	if len(f.Files) != 1 || f.Files[0].Size != 6 {
		t.Fatalf("scanned sizes: %+v", f.Files)
	}
}
