package replica

import (
	"context"

	"repro/internal/rpc"
)

// RPC method names for the replication plane. They live beside the queue
// methods on the same server/port: the standby serves MethodShip, the
// primary serves MethodLease.
const (
	MethodShip  = "repl.ship"
	MethodLease = "repl.lease"
)

// RegisterReceiver exposes rcv on srv as the ship endpoint (standby side).
func RegisterReceiver(srv *rpc.Server, rcv *Receiver) {
	srv.Handle(MethodShip, func(payload []byte) ([]byte, error) {
		return rcv.Apply(payload), nil
	})
}

// RegisterSender exposes s's lease responder on srv (primary side).
func RegisterSender(srv *rpc.Server, s *Sender) {
	srv.Handle(MethodLease, func(payload []byte) ([]byte, error) {
		return s.HandleLease(payload), nil
	})
}

// RPCTransport adapts an rpc.Client to Transport for one method.
type RPCTransport struct {
	c      *rpc.Client
	method string
}

// NewRPCTransport wraps c; method is MethodShip or MethodLease.
func NewRPCTransport(c *rpc.Client, method string) *RPCTransport {
	return &RPCTransport{c: c, method: method}
}

// Exchange implements Transport.
func (t *RPCTransport) Exchange(ctx context.Context, req []byte) ([]byte, error) {
	return t.c.Call(ctx, t.method, req)
}
