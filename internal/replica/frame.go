package replica

// The replication stream codec.
//
// Primary and standby exchange *frames*: the primary ships file deltas
// (WAL segment suffixes, snapshot files, prune notices) and the standby
// answers with exactly one response frame (ack, fenced, or resync).
// Every frame carries the sender's epoch — the fencing token — and a
// sequence number; each is CRC-framed so a torn or corrupted exchange is
// detected at the frame boundary, never applied half-way. A request is
// simply a concatenation of frames sharing one (epoch, seq); the
// response is a single frame.
//
// Data frames address bytes by (file, offset), which makes re-delivery
// idempotent: re-writing the same bytes at the same offset is a no-op,
// so a retried exchange whose ack was lost is harmless. Gaps are
// impossible by construction — the receiver rejects a write that would
// start past the file's current size with a resync response carrying its
// durable file sizes, and the sender restarts shipping from exactly
// there (the torn-ship-tail recovery path).

import (
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/enc"
)

// Frame kinds.
const (
	// FrameData carries bytes to write at (Path, Off) on the standby.
	// LSN is the highest locally-durable LSN the sender's state covers.
	FrameData uint8 = iota + 1
	// FramePrune deletes Path on the standby (log truncation, snapshot GC).
	FramePrune
	// FrameHeartbeat carries no bytes; it solicits a fresh ack (used when
	// an ack was lost but every byte already shipped).
	FrameHeartbeat
	// FrameLeasePing is the standby→primary lease ping.
	FrameLeasePing
	// FrameLeaseGrant is the primary's answer to a ping: still primary.
	FrameLeaseGrant
	// FrameAck is the standby's success response: everything in the
	// exchange applied and durable; LSN echoes the standby's applied LSN.
	FrameAck
	// FrameFenced rejects an exchange from a stale epoch; Epoch is the
	// rejecting side's (higher) current epoch.
	FrameFenced
	// FrameResync asks the sender to restart shipping from the receiver's
	// durable state: Files lists its current file sizes, LSN its applied
	// LSN, Seq its last applied sequence number.
	FrameResync
)

var frameCRC = crc32.MakeTable(crc32.Castagnoli)

// Errors returned by the codec.
var (
	// ErrFrameTruncated reports an input that ended mid-frame (a torn
	// ship tail).
	ErrFrameTruncated = errors.New("replica: truncated frame")
	// ErrFrameCorrupt reports a checksum or structural failure.
	ErrFrameCorrupt = errors.New("replica: corrupt frame")
)

// FileState is one file's shipped length, as known by one side.
type FileState struct {
	Path string // relative path, e.g. "wal/wal-0000000000000001.seg"
	Size int64
}

// Frame is one unit of the replication stream. Unused fields are zero
// for a given kind (see the kind constants).
type Frame struct {
	Kind  uint8
	Epoch uint64
	Seq   uint64
	LSN   uint64 // data/heartbeat: sender's durable LSN; ack/resync: receiver's applied LSN
	Path  string
	Off   int64
	Data  []byte
	Files []FileState // resync only
}

// frameMagic opens every frame, so arbitrary noise is rejected before
// the CRC is even computed.
const frameMagic uint8 = 0xA7

// AppendFrame encodes f onto buf: magic, a length-prefixed body, and a
// CRC-32C over the body. Returns the extended buffer.
func AppendFrame(buf []byte, f *Frame) []byte {
	b := enc.NewBuffer(64 + len(f.Data))
	b.Uint8(f.Kind)
	b.Uvarint(f.Epoch)
	b.Uvarint(f.Seq)
	b.Uvarint(f.LSN)
	b.String(f.Path)
	b.Varint(f.Off)
	b.BytesField(f.Data)
	b.Uvarint(uint64(len(f.Files)))
	for _, fs := range f.Files {
		b.String(fs.Path)
		b.Varint(fs.Size)
	}
	body := b.Bytes()
	hdr := enc.NewBuffer(16)
	hdr.Uint8(frameMagic)
	hdr.Uvarint(uint64(len(body)))
	buf = append(buf, hdr.Bytes()...)
	buf = append(buf, body...)
	c := crc32.Checksum(body, frameCRC)
	return append(buf, byte(c), byte(c>>8), byte(c>>16), byte(c>>24))
}

// DecodeFrame decodes one frame from the front of b, returning the frame
// and the number of bytes consumed. ErrFrameTruncated means b ended
// mid-frame (ship the rest and try again, or resync); ErrFrameCorrupt
// means the bytes can never parse.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) == 0 {
		return Frame{}, 0, ErrFrameTruncated
	}
	if b[0] != frameMagic {
		return Frame{}, 0, fmt.Errorf("%w: bad magic 0x%02x", ErrFrameCorrupt, b[0])
	}
	r := enc.NewReader(b[1:])
	bodyLen := r.Uvarint()
	if r.Err() != nil {
		return Frame{}, 0, ErrFrameTruncated
	}
	if bodyLen > 1<<30 {
		return Frame{}, 0, fmt.Errorf("%w: implausible body length %d", ErrFrameCorrupt, bodyLen)
	}
	consumed := 1 + (len(b) - 1 - r.Remaining()) // magic + length prefix
	rest := b[consumed:]
	if uint64(len(rest)) < bodyLen+4 {
		return Frame{}, 0, ErrFrameTruncated
	}
	body := rest[:bodyLen]
	crc := uint32(rest[bodyLen]) | uint32(rest[bodyLen+1])<<8 | uint32(rest[bodyLen+2])<<16 | uint32(rest[bodyLen+3])<<24
	if crc32.Checksum(body, frameCRC) != crc {
		return Frame{}, 0, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	fr := enc.NewReader(body)
	var f Frame
	f.Kind = fr.Uint8()
	f.Epoch = fr.Uvarint()
	f.Seq = fr.Uvarint()
	f.LSN = fr.Uvarint()
	f.Path = fr.String()
	f.Off = fr.Varint()
	f.Data = fr.BytesField()
	nf := fr.Uvarint()
	if fr.Err() != nil {
		return Frame{}, 0, fmt.Errorf("%w: %v", ErrFrameCorrupt, fr.Err())
	}
	if nf > uint64(fr.Remaining()) { // each entry needs ≥ 2 bytes
		return Frame{}, 0, fmt.Errorf("%w: implausible file count %d", ErrFrameCorrupt, nf)
	}
	for i := uint64(0); i < nf; i++ {
		var fs FileState
		fs.Path = fr.String()
		fs.Size = fr.Varint()
		if fr.Err() != nil {
			return Frame{}, 0, fmt.Errorf("%w: %v", ErrFrameCorrupt, fr.Err())
		}
		f.Files = append(f.Files, fs)
	}
	if f.Kind < FrameData || f.Kind > FrameResync {
		return Frame{}, 0, fmt.Errorf("%w: unknown kind %d", ErrFrameCorrupt, f.Kind)
	}
	if f.Off < 0 {
		return Frame{}, 0, fmt.Errorf("%w: negative offset", ErrFrameCorrupt)
	}
	return f, consumed + int(bodyLen) + 4, nil
}

// DecodeFrames decodes a whole request (concatenated frames). A clean
// prefix followed by a torn tail returns the prefix and
// ErrFrameTruncated; corruption returns ErrFrameCorrupt.
func DecodeFrames(b []byte) ([]Frame, error) {
	var out []Frame
	for len(b) > 0 {
		f, n, err := DecodeFrame(b)
		if err != nil {
			return out, err
		}
		out = append(out, f)
		b = b[n:]
	}
	return out, nil
}
