package replica

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

func sampleFrames() []Frame {
	return []Frame{
		{Kind: FrameData, Epoch: 3, Seq: 7, LSN: 41,
			Path: "wal/wal-0000000000000001.seg", Off: 4096, Data: []byte("the batch bytes")},
		{Kind: FrameData, Epoch: 3, Seq: 7, LSN: 41,
			Path: "snap/snap-0000000000000002", Off: 0, Data: []byte{0, 1, 2, 255}},
		{Kind: FramePrune, Epoch: 3, Seq: 7, Path: "wal/wal-0000000000000000.seg"},
		{Kind: FrameHeartbeat, Epoch: 3, Seq: 8, LSN: 41},
		{Kind: FrameLeasePing, Epoch: 2},
		{Kind: FrameLeaseGrant, Epoch: 3, LSN: 41},
		{Kind: FrameAck, Epoch: 3, Seq: 7, LSN: 41},
		{Kind: FrameFenced, Epoch: 9},
		{Kind: FrameResync, Epoch: 3, Seq: 6, LSN: 33, Files: []FileState{
			{Path: "wal/wal-0000000000000001.seg", Size: 8192},
			{Path: "snap/snap-0000000000000001", Size: 77},
		}},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	for _, want := range sampleFrames() {
		b := AppendFrame(nil, &want)
		got, n, err := DecodeFrame(b)
		if err != nil {
			t.Fatalf("kind %d: %v", want.Kind, err)
		}
		if n != len(b) {
			t.Fatalf("kind %d: consumed %d of %d", want.Kind, n, len(b))
		}
		if !framesEqual(got, want) {
			t.Fatalf("kind %d roundtrip:\n got %+v\nwant %+v", want.Kind, got, want)
		}
	}
}

func framesEqual(a, b Frame) bool {
	// Normalise nil vs empty for the optional slices.
	if len(a.Data) == 0 && len(b.Data) == 0 {
		a.Data, b.Data = nil, nil
	}
	if len(a.Files) == 0 && len(b.Files) == 0 {
		a.Files, b.Files = nil, nil
	}
	return reflect.DeepEqual(a, b)
}

func TestFrameStreamRoundTrip(t *testing.T) {
	want := sampleFrames()
	var b []byte
	for i := range want {
		b = AppendFrame(b, &want[i])
	}
	got, err := DecodeFrames(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("decoded %d frames, want %d", len(got), len(want))
	}
	for i := range want {
		if !framesEqual(got[i], want[i]) {
			t.Fatalf("frame %d:\n got %+v\nwant %+v", i, got[i], want[i])
		}
	}
}

// TestFrameTornTail: every truncation point of a valid stream must
// decode the clean prefix and report ErrFrameTruncated — never a bogus
// frame, never a hang. This is what torn-ship-tail recovery leans on.
func TestFrameTornTail(t *testing.T) {
	f1 := Frame{Kind: FrameData, Epoch: 1, Seq: 1, LSN: 5,
		Path: "wal/wal-0000000000000001.seg", Off: 0, Data: []byte("hello wal")}
	f2 := Frame{Kind: FrameHeartbeat, Epoch: 1, Seq: 1, LSN: 5}
	full := AppendFrame(AppendFrame(nil, &f1), &f2)
	cut1 := len(AppendFrame(nil, &f1)) // boundary between the frames

	for n := 0; n < len(full); n++ {
		frames, err := DecodeFrames(full[:n])
		switch {
		case n == 0:
			if err != nil || len(frames) != 0 {
				t.Fatalf("empty input: frames=%d err=%v", len(frames), err)
			}
		case n < cut1:
			if !errors.Is(err, ErrFrameTruncated) {
				t.Fatalf("cut at %d: err = %v, want ErrFrameTruncated", n, err)
			}
			if len(frames) != 0 {
				t.Fatalf("cut at %d: got %d clean frames, want 0", n, len(frames))
			}
		case n == cut1:
			if err != nil || len(frames) != 1 {
				t.Fatalf("cut at boundary %d: frames=%d err=%v", n, len(frames), err)
			}
		default:
			if !errors.Is(err, ErrFrameTruncated) {
				t.Fatalf("cut at %d: err = %v, want ErrFrameTruncated", n, err)
			}
			if len(frames) != 1 {
				t.Fatalf("cut at %d: got %d clean frames, want 1", n, len(frames))
			}
		}
	}
}

func TestFrameCorruption(t *testing.T) {
	f := Frame{Kind: FrameData, Epoch: 1, Seq: 1, LSN: 5,
		Path: "wal/wal-0000000000000001.seg", Off: 128, Data: []byte("payload")}
	good := AppendFrame(nil, &f)

	// Flip each byte in turn; every corruption must surface as an error
	// (truncated when the length field now overshoots, corrupt otherwise),
	// never as a silently different frame.
	for i := 0; i < len(good); i++ {
		bad := bytes.Clone(good)
		bad[i] ^= 0x40
		got, _, err := DecodeFrame(bad)
		if err == nil && !framesEqual(got, f) {
			t.Fatalf("flip at %d: decoded a different frame with no error: %+v", i, got)
		}
		if err != nil && !errors.Is(err, ErrFrameCorrupt) && !errors.Is(err, ErrFrameTruncated) {
			t.Fatalf("flip at %d: unexpected error class: %v", i, err)
		}
	}
}

// FuzzShipFrameRoundTrip: any bytes the decoder accepts must re-encode
// to something that decodes to the same frame; bytes it rejects must be
// rejected with the protocol's error classes, never a panic.
func FuzzShipFrameRoundTrip(f *testing.F) {
	for _, s := range sampleFrames() {
		f.Add(AppendFrame(nil, &s))
	}
	// A two-frame exchange, a torn tail, and raw garbage.
	two := sampleFrames()[:2]
	f.Add(AppendFrame(AppendFrame(nil, &two[0]), &two[1]))
	one := AppendFrame(nil, &two[0])
	f.Add(one[:len(one)-3])
	f.Add([]byte{0xA7})
	f.Add([]byte("not a frame at all"))

	f.Fuzz(func(t *testing.T, b []byte) {
		fr, n, err := DecodeFrame(b)
		if err != nil {
			if !errors.Is(err, ErrFrameTruncated) && !errors.Is(err, ErrFrameCorrupt) {
				t.Fatalf("unclassified decode error: %v", err)
			}
			return
		}
		if n <= 0 || n > len(b) {
			t.Fatalf("consumed %d of %d", n, len(b))
		}
		re := AppendFrame(nil, &fr)
		fr2, n2, err := DecodeFrame(re)
		if err != nil {
			t.Fatalf("re-decode of re-encode failed: %v", err)
		}
		if n2 != len(re) {
			t.Fatalf("re-decode consumed %d of %d", n2, len(re))
		}
		if !framesEqual(fr, fr2) {
			t.Fatalf("re-encode changed the frame:\n got %+v\nwant %+v", fr2, fr)
		}
	})
}
