package replica

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/queue"
)

func openRepo(t *testing.T, dir string) *queue.Repository {
	t.Helper()
	r, inDoubt, err := queue.Open(dir, queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(inDoubt) != 0 {
		t.Fatalf("in-doubt: %d", len(inDoubt))
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func TestShipAndPromote(t *testing.T) {
	primaryDir := t.TempDir()
	standbyDir := t.TempDir()
	primary := openRepo(t, primaryDir)
	if err := primary.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte(fmt.Sprintf("m%d", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	// Consume a few so the standby must reflect removals too.
	for i := 0; i < 5; i++ {
		if _, err := primary.Dequeue(context.Background(), nil, "q", "", queue.DequeueOpts{}); err != nil {
			t.Fatal(err)
		}
	}

	sh, err := NewShipper(primaryDir, standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := sh.SyncOnce()
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing shipped")
	}
	if err := VerifyStandby(standbyDir); err != nil {
		t.Fatal(err)
	}

	// Primary dies; promote the standby.
	primary.Crash()
	standby := openRepo(t, standbyDir)
	d, err := standby.Depth("q")
	if err != nil || d != 15 {
		t.Fatalf("standby depth = %d, %v", d, err)
	}
	e, err := standby.Dequeue(context.Background(), nil, "q", "", queue.DequeueOpts{})
	if err != nil || string(e.Body) != "m5" {
		t.Fatalf("standby head = %q %v", e.Body, err)
	}
}

func TestIncrementalShipping(t *testing.T) {
	primaryDir := t.TempDir()
	standbyDir := t.TempDir()
	primary := openRepo(t, primaryDir)
	if err := primary.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	sh, err := NewShipper(primaryDir, standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte("a")}, "", nil); err != nil {
		t.Fatal(err)
	}
	n1, err := sh.SyncOnce()
	if err != nil || n1 == 0 {
		t.Fatalf("first ship %d %v", n1, err)
	}
	// Nothing new: second ship copies nothing.
	n2, err := sh.SyncOnce()
	if err != nil || n2 != 0 {
		t.Fatalf("idle ship copied %d bytes, %v", n2, err)
	}
	// One more record: the delta is small (one record's frame), not the
	// whole log again.
	if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte("b")}, "", nil); err != nil {
		t.Fatal(err)
	}
	n3, err := sh.SyncOnce()
	if err != nil || n3 == 0 || n3 >= n1 {
		t.Fatalf("incremental ship %d (first was %d), %v", n3, n1, err)
	}
}

func TestShippingSurvivesCheckpointTruncation(t *testing.T) {
	primaryDir := t.TempDir()
	standbyDir := t.TempDir()
	primary := openRepo(t, primaryDir)
	if err := primary.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	sh, err := NewShipper(primaryDir, standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte(fmt.Sprintf("m%d", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			if _, err := sh.SyncOnce(); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Checkpoint truncates the primary's log; the standby must converge to
	// snapshot+tail.
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte("post-ckpt")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	primary.Crash()

	standby := openRepo(t, standbyDir)
	d, err := standby.Depth("q")
	if err != nil || d != 31 {
		t.Fatalf("standby depth = %d, %v", d, err)
	}
}

func TestShippingLagBoundsLoss(t *testing.T) {
	primaryDir := t.TempDir()
	standbyDir := t.TempDir()
	primary := openRepo(t, primaryDir)
	if err := primary.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	sh, err := NewShipper(primaryDir, standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte("shipped")}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := sh.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	// These land after the last ship: lost at failover — the documented
	// bounded loss of asynchronous log shipping.
	for i := 0; i < 3; i++ {
		if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte("lagged")}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	primary.Crash()
	standby := openRepo(t, standbyDir)
	d, _ := standby.Depth("q")
	if d != 10 {
		t.Fatalf("standby depth = %d, want 10 (3 lagged lost)", d)
	}
}

func TestContinuousShippingLoop(t *testing.T) {
	primaryDir := t.TempDir()
	standbyDir := t.TempDir()
	primary := openRepo(t, primaryDir)
	if err := primary.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		t.Fatal(err)
	}
	sh, err := NewShipper(primaryDir, standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sh.Run(ctx, 2*time.Millisecond)
	}()
	for i := 0; i < 50; i++ {
		if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte("x")}, "", nil); err != nil {
			t.Fatal(err)
		}
		time.Sleep(500 * time.Microsecond)
	}
	// Let the loop catch up, then stop it.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := sh.SyncOnce(); err != nil {
			t.Fatal(err)
		}
		n, _ := sh.SyncOnce()
		if n == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("shipping never converged")
		}
	}
	cancel()
	<-done
	primary.Crash()
	standby := openRepo(t, standbyDir)
	d, _ := standby.Depth("q")
	if d != 50 {
		t.Fatalf("standby depth = %d, want 50", d)
	}
	ships, bytes := sh.Stats()
	if ships == 0 || bytes == 0 {
		t.Fatalf("stats = %d ships, %d bytes", ships, bytes)
	}
}

func TestVerifyStandbyEmpty(t *testing.T) {
	if err := VerifyStandby(t.TempDir()); !errors.Is(err, ErrNotShipped) {
		t.Fatalf("VerifyStandby on empty dir: %v", err)
	}
}

func TestStandbyIsAFullReplicaIncludingRegistrations(t *testing.T) {
	// Failover must preserve the paper's persistent registrations, or
	// clients could not resynchronize against the promoted standby.
	primaryDir := t.TempDir()
	standbyDir := t.TempDir()
	primary := openRepo(t, primaryDir)
	if err := primary.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	h, _, err := primary.Register("req", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Enqueue(nil, queue.Element{Body: []byte("r")}, []byte("rid-42")); err != nil {
		t.Fatal(err)
	}
	sh, err := NewShipper(primaryDir, standbyDir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.SyncOnce(); err != nil {
		t.Fatal(err)
	}
	primary.Crash()

	standby := openRepo(t, standbyDir)
	_, ri, err := standby.Register("req", "client-1", true)
	if err != nil {
		t.Fatal(err)
	}
	if !ri.HasLast || string(ri.LastTag) != "rid-42" {
		t.Fatalf("registration lost in failover: %+v", ri)
	}
}
