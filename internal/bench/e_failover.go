package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"repro/internal/queue"
	"repro/internal/replica"
)

func init() { register("e15", runE15) }

// e13GatedArm is the synchronous-replication counterpart of e13Arm: the
// standby is fed through the WAL commit gate (replica.Sender) instead of
// a background shipper, so acked loss is bounded by the commit rule —
// zero for sync, the lag budget for semi-sync — rather than by cadence.
func e13GatedArm(cfg Config, mode replica.Mode, maxLagRecords uint64) ([]string, error) {
	base, err := cfg.tempDir("e13g-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)
	primaryDir := filepath.Join(base, "primary")
	standbyDir := filepath.Join(base, "standby")
	rcv, err := replica.NewReceiver(standbyDir, replica.ReceiverOptions{NoFsync: true})
	if err != nil {
		return nil, err
	}
	tr := replica.TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return rcv.Apply(req), nil
	})
	snd, err := replica.NewSender(primaryDir, tr, replica.SenderOptions{
		Mode: mode, MaxLagRecords: maxLagRecords,
	})
	if err != nil {
		return nil, err
	}
	primary, _, err := queue.Open(primaryDir, queue.Options{NoFsync: !cfg.Fsync, WALGate: snd.Gate})
	if err != nil {
		return nil, err
	}
	defer primary.Close()
	if err := primary.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		return nil, err
	}

	body := make([]byte, 64)
	n := cfg.scale(400, 4000)
	for i := 0; i < n; i++ {
		if _, err := primary.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
			return nil, err
		}
	}
	// The crash: no goodbye ship. Whatever the commit rule forced across
	// is all the standby has.
	primary.Crash()

	if _, err := rcv.Promote(); err != nil {
		return nil, err
	}
	standby, _, err := queue.Open(standbyDir, queue.Options{NoFsync: true})
	if err != nil {
		return nil, fmt.Errorf("promotion failed: %w", err)
	}
	defer standby.Close()
	survived, err := standby.Depth("q")
	if err != nil {
		return nil, err
	}
	st := snd.Status()
	interval := "commit-gated"
	if mode == replica.ModeSemiSync {
		interval = fmt.Sprintf("lag<=%d", maxLagRecords)
	}
	return []string{
		mode.String(), interval, strconv.Itoa(n), strconv.Itoa(survived), strconv.Itoa(n - survived),
		strconv.FormatUint(st.ShipFailures, 10) + " fails",
	}, nil
}

// runE15: failover under fire — the whole §10–11 availability story,
// measured. A sync-replicating primary takes concurrent enqueue load
// through the commit gate while a lease watcher guards it; the primary
// is crashed mid-group-commit, the lease expires, the standby promotes,
// and the promoted copy is audited element by element against the set
// of acknowledged enqueues.
func runE15(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E15",
		Title: "Failover under fire: acked survival and promotion latency by commit rule",
		Claim: "§10–11: replicated queues make the request store highly available; the sync commit rule makes " +
			"failover lossless for acknowledged requests, semi-sync bounds loss by the lag budget, async by the " +
			"shipping window.",
		Columns: []string{"mode", "acked", "survived", "lost-acked", "duplicated", "failover-latency", "lease-ttl"},
	}
	for _, arm := range []struct {
		mode   replica.Mode
		maxLag uint64
	}{{replica.ModeSync, 0}, {replica.ModeSemiSync, 64}, {replica.ModeAsync, 0}} {
		row, err := e15Arm(cfg, arm.mode, arm.maxLag)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Notef("8 concurrent enqueuers; the primary is crashed mid-load with no final ship; the standby's lease " +
		"(pings every TTL/6) expires and it promotes itself")
	t.Notef("lost-acked counts enqueues whose ack returned before the crash but whose element is missing after " +
		"promotion — the sync row must read 0")
	t.Notef("failover-latency is crash-to-promotion: one lease TTL plus scheduling, the availability gap a " +
		"Reconnect-equipped ResilientClerk rides through (TestFailoverUnderFire)")
	return t, nil
}

func e15Arm(cfg Config, mode replica.Mode, maxLag uint64) ([]string, error) {
	base, err := cfg.tempDir("e15-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)
	primaryDir := filepath.Join(base, "primary")
	standbyDir := filepath.Join(base, "standby")
	rcv, err := replica.NewReceiver(standbyDir, replica.ReceiverOptions{NoFsync: true})
	if err != nil {
		return nil, err
	}
	shipTr := replica.TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		return rcv.Apply(req), nil
	})
	snd, err := replica.NewSender(primaryDir, shipTr, replica.SenderOptions{
		Mode: mode, MaxLagRecords: maxLag,
	})
	if err != nil {
		return nil, err
	}
	primary, _, err := queue.Open(primaryDir, queue.Options{NoFsync: !cfg.Fsync, WALGate: snd.Gate})
	if err != nil {
		return nil, err
	}
	defer primary.Close()
	if err := primary.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go snd.Run(ctx, 2*time.Millisecond)

	// The lease: the standby pings the live sender until the crash cuts
	// the path, then its TTL runs out and it promotes.
	const ttl = 150 * time.Millisecond
	var crashed sync.Map // "down" -> true after the crash
	leaseTr := replica.TransportFunc(func(ctx context.Context, req []byte) ([]byte, error) {
		if _, down := crashed.Load("down"); down {
			return nil, fmt.Errorf("primary is down")
		}
		return snd.HandleLease(req), nil
	})
	promoted := make(chan time.Time, 1)
	w := replica.NewWatcher(rcv, leaseTr, replica.StandbyOptions{
		TTL: ttl, PingEvery: ttl / 6,
		OnPromote: func(uint64) { promoted <- time.Now() },
	})
	go w.Run(ctx)

	// 8-way fire: every enqueuer records the bodies it got acks for.
	const clients = 8
	perClient := cfg.scale(60, 600)
	var mu sync.Mutex
	acked := make(map[string]bool)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				body := fmt.Sprintf("c%d-%06d", c, i)
				if _, err := primary.Enqueue(nil, "q", queue.Element{Body: []byte(body)}, "", nil); err != nil {
					return // the crash: stop firing
				}
				mu.Lock()
				acked[body] = true
				mu.Unlock()
			}
		}(c)
	}
	// Crash mid-load: roughly a third of the workload in.
	for {
		mu.Lock()
		n := len(acked)
		mu.Unlock()
		if n >= clients*perClient/3 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	crashAt := time.Now()
	crashed.Store("down", true)
	primary.Crash()
	wg.Wait()

	promoteAt := <-promoted
	standby, _, err := queue.Open(standbyDir, queue.Options{NoFsync: true})
	if err != nil {
		return nil, fmt.Errorf("promotion failed: %w", err)
	}
	defer standby.Close()

	// Audit: drain the promoted queue and check the acked set against it.
	survived := make(map[string]int)
	depth, err := standby.Depth("q")
	if err != nil {
		return nil, err
	}
	for i := 0; i < depth; i++ {
		el, err := standby.Dequeue(context.Background(), nil, "q", "", queue.DequeueOpts{})
		if err != nil {
			return nil, err
		}
		survived[string(el.Body)]++
	}
	lost, duplicated := 0, 0
	mu.Lock()
	for body := range acked {
		if survived[body] == 0 {
			lost++
		}
	}
	nAcked := len(acked)
	mu.Unlock()
	for _, n := range survived {
		if n > 1 {
			duplicated++
		}
	}
	return []string{
		mode.String(), strconv.Itoa(nAcked), strconv.Itoa(depth), strconv.Itoa(lost),
		strconv.Itoa(duplicated), promoteAt.Sub(crashAt).Round(time.Millisecond).String(), ttl.String(),
	}, nil
}
