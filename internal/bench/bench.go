// Package bench is the experiment harness: it regenerates, as measured
// tables, every performance and behaviour claim the paper makes. The paper
// (a protocols paper) publishes no measurement tables of its own, so each
// experiment id E1–E12 is defined in DESIGN.md §3 against the paper claim
// it validates; EXPERIMENTS.md records claim vs. measured outcome.
//
// All experiments run on the real system — the same queue manager,
// transaction manager, clerk, and server loops the tests exercise — with
// deterministic seeds. The Quick configuration keeps every experiment
// within a few seconds on a laptop.
package bench

import (
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
)

// Config parameterizes an experiment run.
type Config struct {
	// Quick shrinks workload sizes for fast runs; full mode multiplies
	// request counts for steadier numbers.
	Quick bool
	// Seed drives every random choice.
	Seed int64
	// Dir is scratch space for repositories; empty uses the OS temp dir.
	Dir string
	// Fsync enables real fsync (off by default: experiment shapes, not
	// absolute durability latency, are the point — see EXPERIMENTS.md).
	Fsync bool
}

func (c *Config) scale(quick, full int) int {
	if c.Quick {
		return quick
	}
	return full
}

func (c *Config) tempDir(pattern string) (string, error) {
	base := c.Dir
	if base == "" {
		base = os.TempDir()
	}
	return os.MkdirTemp(base, pattern)
}

// Table is one experiment's result.
type Table struct {
	ID      string
	Title   string
	Claim   string // the paper claim under test (with section reference)
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Notef appends a formatted note.
func (t *Table) Notef(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title)
	fmt.Fprintf(w, "claim: %s\n\n", t.Claim)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], c)
			} else {
				parts[i] = c
			}
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Experiment runs one experiment.
type Experiment func(cfg Config) (*Table, error)

// registry maps lowercase experiment ids to implementations.
var registry = map[string]Experiment{}

func register(id string, e Experiment) { registry[strings.ToLower(id)] = e }

// IDs returns all experiment ids in order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, cfg Config) (*Table, error) {
	e, ok := registry[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (have %v)", id, IDs())
	}
	return e(cfg)
}

// RunAll executes every experiment in id order.
func RunAll(cfg Config) ([]*Table, error) {
	var out []*Table
	for _, id := range IDs() {
		t, err := Run(id, cfg)
		if err != nil {
			return out, fmt.Errorf("bench: %s: %w", id, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// helpers shared by experiments

func fmtRate(n int, seconds float64) string {
	if seconds <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(n)/seconds)
}

func fmtMs(seconds float64) string {
	return fmt.Sprintf("%.2fms", seconds*1000)
}

func fmtPct(p float64) string {
	return fmt.Sprintf("%.0f%%", p*100)
}
