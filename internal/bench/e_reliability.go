package bench

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/core/baseline"
	"repro/internal/queue"
	"repro/internal/queue/qservice"
	"repro/internal/rpc"
	"repro/internal/txn"
)

func init() {
	register("e1", runE1)
	register("e6", runE6)
	register("e7", runE7)
}

// countingHandler increments the per-rid execution counter — duplicates
// and losses are read off the "execs" table afterwards.
func countingHandler(repo *queue.Repository) baseline.Handler {
	return func(ctx context.Context, t *txn.Txn, rid string, body []byte) ([]byte, error) {
		v, _, err := repo.KVGet(ctx, t, "execs", rid, true)
		if err != nil {
			return nil, err
		}
		n := 0
		if v != nil {
			n, _ = strconv.Atoi(string(v))
		}
		if err := repo.KVSet(ctx, t, "execs", rid, []byte(strconv.Itoa(n+1))); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	}
}

func execCount(repo *queue.Repository, rid string) int {
	v, ok, err := repo.KVGet(context.Background(), nil, "execs", rid, false)
	if err != nil || !ok {
		return 0
	}
	n, _ := strconv.Atoi(string(v))
	return n
}

// runE1: raw messages lose requests/replies under failures; the queued
// protocol achieves exactly-once (Section 2).
func runE1(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Raw messaging vs. queued requests under communication failures",
		Claim: "§2: with ordinary messages an untimely failure loses the request or the reply; " +
			"clients must choose lost work or duplicate execution. The queued protocol is exactly-once.",
		Columns: []string{"arm", "cut-prob", "requests", "lost", "dup-execs", "exactly-once"},
	}
	n := cfg.scale(60, 300)
	for _, p := range []float64{0.02, 0.10} {
		for _, arm := range []string{"raw/no-retry", "raw/blind-retry", "queued", "queued/self-heal"} {
			lost, dups, exact, err := e1Arm(cfg, arm, p, n)
			if err != nil {
				return nil, fmt.Errorf("%s p=%v: %w", arm, p, err)
			}
			t.AddRow(arm, fmtPct(p), strconv.Itoa(n), strconv.Itoa(lost), strconv.Itoa(dups), strconv.Itoa(exact))
		}
	}
	t.Notef("lost = requests with no processed reply; dup-execs = extra committed executions beyond one per request")
	t.Notef("every fault is a delivered-then-severed connection: the worst case of §2 (reply in transit)")
	return t, nil
}

func e1Arm(cfg Config, arm string, cutProb float64, n int) (lost, dups, exact int, err error) {
	dir, err := cfg.tempDir("e1-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return 0, 0, 0, err
	}
	defer repo.Close()
	net := chaos.NewNetwork(cfg.Seed + int64(cutProb*1000))
	net.SetCutProb(cutProb)

	srv := rpc.NewServer()
	defer srv.Close()
	addr := ""

	processed := make(map[int]bool)
	switch arm {
	case "raw/no-retry", "raw/blind-retry":
		(&baseline.RawServer{Repo: repo, Handler: countingHandler(repo)}).Attach(srv)
		addr, err = srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return 0, 0, 0, err
		}
		retries := 0
		if arm == "raw/blind-retry" {
			retries = 5
		}
		rc := &baseline.RawClient{RC: rpc.NewClient(addr, rpc.Dialer(net.Dialer(nil))), Timeout: 300 * time.Millisecond, Retries: retries}
		defer rc.RC.Close()
		for i := 0; i < n; i++ {
			out, outcome := rc.Do(ridOf(i), nil)
			if outcome != baseline.RawLost && out != nil {
				processed[i] = true
			}
		}
	case "queued":
		if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
			return 0, 0, 0, err
		}
		handler := countingHandler(repo)
		coreSrv, err := core.NewServer(core.ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *core.ReqCtx) ([]byte, error) {
			return handler(rc.Ctx, rc.Txn, rc.Request.RID, rc.Request.Body)
		}})
		if err != nil {
			return 0, 0, 0, err
		}
		qservice.New(repo, srv)
		addr, err = srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return 0, 0, 0, err
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		go coreSrv.Serve(ctx)

		qc := qservice.NewClient(rpc.NewClient(addr, rpc.Dialer(net.Dialer(nil))))
		defer qc.Close()
		sc := &core.SequentialClient{
			QM:    qc,
			Cfg:   core.ClerkConfig{ClientID: "e1c", RequestQueue: "req", ReceiveWait: 400 * time.Millisecond},
			Total: n,
			ProcessReply: func(i int, rep core.Reply) {
				processed[i] = true
			},
		}
		// Connection faults surface as clerk errors; the client simply
		// reconnects and resynchronizes, forever, until the work is done.
		deadline := time.Now().Add(3 * time.Minute)
		for {
			err := sc.Run(ctx)
			if err == nil {
				break
			}
			if time.Now().After(deadline) {
				return 0, 0, 0, fmt.Errorf("queued arm never completed: %w", err)
			}
		}
	case "queued/self-heal":
		if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
			return 0, 0, 0, err
		}
		handler := countingHandler(repo)
		coreSrv, err := core.NewServer(core.ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *core.ReqCtx) ([]byte, error) {
			return handler(rc.Ctx, rc.Txn, rc.Request.RID, rc.Request.Body)
		}})
		if err != nil {
			return 0, 0, 0, err
		}
		qservice.New(repo, srv)
		addr, err = srv.ListenAndServe("127.0.0.1:0")
		if err != nil {
			return 0, 0, 0, err
		}
		ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
		defer cancel()
		go coreSrv.Serve(ctx)

		qc := qservice.NewClient(rpc.NewClient(addr, rpc.Dialer(net.Dialer(nil))))
		defer qc.Close()
		// Identical guarantee, zero recovery code at the call site: the
		// ResilientClerk reconnects and resynchronizes internally.
		rc := core.NewResilientClerk(qc, core.ResilientConfig{
			Clerk:   core.ClerkConfig{ClientID: "e1r", RequestQueue: "req", ReceiveWait: 400 * time.Millisecond},
			Backoff: core.BackoffPolicy{Initial: time.Millisecond, Max: 50 * time.Millisecond},
			Seed:    cfg.Seed + 1,
		})
		for i := 0; i < n; i++ {
			rep, err := rc.Transceive(ctx, ridOf(i), nil, nil, nil)
			if err != nil {
				return 0, 0, 0, fmt.Errorf("self-heal arm rid %d: %w", i, err)
			}
			_ = rep
			processed[i] = true
		}
	default:
		return 0, 0, 0, fmt.Errorf("unknown arm %q", arm)
	}

	for i := 0; i < n; i++ {
		ex := execCount(repo, ridOf(i))
		if ex > 1 {
			dups += ex - 1
		}
		if !processed[i] {
			lost++
		}
		if ex == 1 && processed[i] {
			exact++
		}
	}
	return lost, dups, exact, nil
}

func ridOf(i int) string { return fmt.Sprintf("rid-%06d", i) }

// runE6: the Send optimisations of §5 — one-way-message Send saves a wire
// message per request; Transceive merges Send+Receive.
func runE6(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Send variants: RPC Send vs one-way Send vs Transceive",
		Claim: "§5: invoking Enqueue as a one-way message \"saves a message from the QM to the client " +
			"in the common case that the reply arrives within the client's timeout period\".",
		Columns: []string{"variant", "requests", "client-msgs-sent", "client-msgs-recv", "msgs/request", "avg-latency"},
	}
	n := cfg.scale(200, 2000)
	for _, variant := range []string{"rpc-send", "oneway-send", "transceive", "stream-w8"} {
		sent, recv, avgLat, err := e6Arm(cfg, variant, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(variant, strconv.Itoa(n),
			strconv.FormatUint(sent, 10), strconv.FormatUint(recv, 10),
			fmt.Sprintf("%.2f", float64(sent+recv)/float64(n)), fmtMs(avgLat))
	}
	t.Notef("rpc-send per request: enqueue call+ack, dequeue call+reply = 4 msgs; oneway-send saves the enqueue ack (3)")
	t.Notef("stream-w8 is the §11 streaming extension: same messages, but 8 requests pipelined — latency amortized")
	return t, nil
}

func e6Arm(cfg Config, variant string, n int) (sent, recv uint64, avgLatency float64, err error) {
	dir, err := cfg.tempDir("e6-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return 0, 0, 0, err
	}
	defer repo.Close()
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		return 0, 0, 0, err
	}
	// Three server instances with ~1ms of work each: enough service time
	// for the streaming window to overlap requests.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for s := 0; s < 3; s++ {
		srv, err := core.NewServer(core.ServerConfig{
			Repo: repo, Queue: "req", Name: fmt.Sprintf("e6srv-%d", s),
			Handler: func(rc *core.ReqCtx) ([]byte, error) {
				time.Sleep(time.Millisecond)
				return []byte("ok"), nil
			}})
		if err != nil {
			return 0, 0, 0, err
		}
		go srv.Serve(ctx)
	}

	rsrv := rpc.NewServer()
	defer rsrv.Close()
	qservice.New(repo, rsrv)
	addr, err := rsrv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		return 0, 0, 0, err
	}
	rcl := rpc.NewClient(addr, nil)
	defer rcl.Close()
	qc := qservice.NewClient(rcl)

	if variant == "stream-w8" {
		sc := core.NewStreamClerk(qc, core.ClerkConfig{ClientID: "e6s", RequestQueue: "req"}, 8)
		if _, err := sc.Connect(ctx); err != nil {
			return 0, 0, 0, err
		}
		base := rcl.Stats()
		start := time.Now()
		sent := 0
		for sent < n || len(sc.Outstanding()) > 0 {
			for len(sc.Outstanding()) < 8 && sent < n {
				if err := sc.Send(ctx, ridOf(sent), nil, nil); err != nil {
					return 0, 0, 0, err
				}
				sent++
			}
			if _, err := sc.Receive(ctx); err != nil {
				return 0, 0, 0, err
			}
		}
		elapsed := time.Since(start)
		st := rcl.Stats()
		return st.MessagesSent - base.MessagesSent, st.MessagesReceived - base.MessagesReceived,
			elapsed.Seconds() / float64(n), nil
	}

	clerk := core.NewClerk(qc, core.ClerkConfig{
		ClientID:     "e6c",
		RequestQueue: "req",
		OneWaySend:   variant == "oneway-send",
	})
	if _, err := clerk.Connect(ctx); err != nil {
		return 0, 0, 0, err
	}
	base := rcl.Stats() // exclude connection setup
	start := time.Now()
	for i := 0; i < n; i++ {
		rid := ridOf(i)
		switch variant {
		case "transceive":
			if _, err := clerk.Transceive(ctx, rid, nil, nil, nil); err != nil {
				return 0, 0, 0, err
			}
		default:
			if err := clerk.Send(ctx, rid, nil, nil); err != nil {
				return 0, 0, 0, err
			}
			if _, err := clerk.Receive(ctx, nil); err != nil {
				return 0, 0, 0, err
			}
		}
	}
	elapsed := time.Since(start)
	st := rcl.Stats()
	return st.MessagesSent - base.MessagesSent, st.MessagesReceived - base.MessagesReceived,
		elapsed.Seconds() / float64(n), nil
}

// runE7: the central guarantees under randomized crash schedules across
// client, server, and node (Section 3 and 5).
func runE7(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "Exactly-once request processing under crash storms",
		Claim: "§3: despite failures and recoveries, the system processes each request exactly once " +
			"and the client processes each reply at least once.",
		Columns: []string{"crash-prob", "requests", "crashes", "exec=1", "exec≠1", "replies≥1", "reply-reprocessings"},
	}
	n := cfg.scale(30, 150)
	for _, p := range []float64{0.05, 0.15, 0.30} {
		row, err := e7Arm(cfg, p, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Notef("exec≠1 must be 0 in every row; reply-reprocessings > 0 shows at-least-once (not exactly-once) reply delivery")
	return t, nil
}

func e7Arm(cfg Config, p float64, n int) ([]string, error) {
	dir, err := cfg.tempDir("e7-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req", ErrorQueue: "req.err", RetryLimit: 100}); err != nil {
		return nil, err
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req.err"}); err != nil {
		return nil, err
	}
	crash := chaos.NewPoints(cfg.Seed + int64(p*1000))
	for _, pt := range []string{"client.beforeSend", "client.afterSend", "client.afterReceive", "client.afterProcess"} {
		crash.FailWithProb(pt, p, 0)
	}
	for _, pt := range []string{"server.afterDequeue", "server.beforeReply", "server.beforeCommit"} {
		crash.FailWithProb(pt, p/2, 0)
	}
	handler := countingHandler(repo)
	srv, err := core.NewServer(core.ServerConfig{Repo: repo, Queue: "req", Crash: crash, Handler: func(rc *core.ReqCtx) ([]byte, error) {
		return handler(rc.Ctx, rc.Txn, rc.Request.RID, rc.Request.Body)
	}})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Supervisor restarts the server after every injected crash.
	go func() {
		for ctx.Err() == nil {
			if err := srv.Serve(ctx); !errors.Is(err, core.ErrCrashed) {
				return
			}
		}
	}()

	processCount := make(map[int]int)
	sc := &core.SequentialClient{
		QM:    &core.LocalConn{Repo: repo},
		Cfg:   core.ClerkConfig{ClientID: "e7c", RequestQueue: "req", ReceiveWait: 300 * time.Millisecond},
		Total: n,
		ProcessReply: func(i int, rep core.Reply) {
			processCount[i]++
		},
		Crash: crash,
	}
	crashes, err := sc.RunToCompletion(ctx)
	if err != nil {
		return nil, err
	}
	exactOne, notOne, atLeastOnce, reprocess := 0, 0, 0, 0
	for i := 0; i < n; i++ {
		switch execCount(repo, ridOf(i)) {
		case 1:
			exactOne++
		default:
			notOne++
		}
		if processCount[i] >= 1 {
			atLeastOnce++
		}
		if processCount[i] > 1 {
			reprocess += processCount[i] - 1
		}
	}
	return []string{
		fmtPct(p), strconv.Itoa(n), strconv.Itoa(crashes + crash.TotalFired()),
		strconv.Itoa(exactOne), strconv.Itoa(notOne), strconv.Itoa(atLeastOnce), strconv.Itoa(reprocess),
	}, nil
}
