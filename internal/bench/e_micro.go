package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/internal/queue"
	"repro/internal/tpc"
)

func init() {
	register("e8", runE8)
	register("e12", runE12)
}

// runE8: the queue manager as a main-memory database (Section 10): raw
// operation costs, checkpoint cost, recovery time.
func runE8(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Queue manager operation costs (main-memory database, Section 10)",
		Claim: "§10: most stored data is deleted shortly after insertion, so queues can be managed as a " +
			"main-memory database — logging updates, with snapshots only for restart speed.",
		Columns: []string{"operation", "ops", "elapsed", "ops/s", "µs/op"},
	}
	n := cfg.scale(3000, 30000)

	dir, err := cfg.tempDir("e8-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	for _, q := range []string{"durable", "volatile", "tagged"} {
		vol := q == "volatile"
		if err := repo.CreateQueue(queue.QueueConfig{Name: q, Volatile: vol}); err != nil {
			return nil, err
		}
	}
	h, _, err := repo.Register("tagged", "bench-client", true)
	if err != nil {
		return nil, err
	}
	body := make([]byte, 128)

	measure := func(name string, ops int, f func(i int) error) error {
		start := time.Now()
		for i := 0; i < ops; i++ {
			if err := f(i); err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
		}
		el := time.Since(start).Seconds()
		t.AddRow(name, strconv.Itoa(ops), fmt.Sprintf("%.3fs", el), fmtRate(ops, el),
			fmt.Sprintf("%.1f", el*1e6/float64(ops)))
		return nil
	}

	ctx := context.Background()
	if err := measure("enqueue (durable, logged)", n, func(i int) error {
		_, err := repo.Enqueue(nil, "durable", queue.Element{Body: body}, "", nil)
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("dequeue (durable, logged)", n, func(i int) error {
		_, err := repo.Dequeue(ctx, nil, "durable", "", queue.DequeueOpts{})
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("enqueue (volatile)", n, func(i int) error {
		_, err := repo.Enqueue(nil, "volatile", queue.Element{Body: body}, "", nil)
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("dequeue (volatile)", n, func(i int) error {
		_, err := repo.Dequeue(ctx, nil, "volatile", "", queue.DequeueOpts{})
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("enqueue+tag (stable registration)", n, func(i int) error {
		_, err := h.Enqueue(nil, queue.Element{Body: body}, []byte(ridOf(i)))
		return err
	}); err != nil {
		return nil, err
	}
	if err := measure("txn{dequeue+enqueue} (request hop)", n, func(i int) error {
		tx := repo.Begin()
		el, err := repo.Dequeue(ctx, tx, "tagged", "", queue.DequeueOpts{})
		if err != nil {
			tx.Abort()
			return err
		}
		if _, err := repo.Enqueue(tx, "durable", el, "", nil); err != nil {
			tx.Abort()
			return err
		}
		return tx.Commit()
	}); err != nil {
		return nil, err
	}

	// Checkpoint cost with the queue holding n elements.
	start := time.Now()
	if err := repo.Checkpoint(); err != nil {
		return nil, err
	}
	ckpt := time.Since(start)
	t.AddRow(fmt.Sprintf("checkpoint (%d live elements)", n), "1",
		fmt.Sprintf("%.3fs", ckpt.Seconds()), "-", fmt.Sprintf("%.0f", float64(ckpt.Microseconds())))

	// Recovery cost: with the fresh snapshot vs replaying the whole log.
	repo.Crash()
	start = time.Now()
	repo2, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	recSnap := time.Since(start)
	repo2.Close()
	t.AddRow("recovery (snapshot + log tail)", "1",
		fmt.Sprintf("%.3fs", recSnap.Seconds()), "-", fmt.Sprintf("%.0f", float64(recSnap.Microseconds())))

	// Log-only recovery: a fresh repository, n logged enqueues, no
	// checkpoint, then recover.
	dir2, err := cfg.tempDir("e8b-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir2)
	repo3, _, err := queue.Open(dir2, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	if err := repo3.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := repo3.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
			return nil, err
		}
	}
	repo3.Crash()
	start = time.Now()
	repo4, _, err := queue.Open(dir2, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	recLog := time.Since(start)
	repo4.Close()
	t.AddRow(fmt.Sprintf("recovery (replay %d-op log, no snapshot)", n), "1",
		fmt.Sprintf("%.3fs", recLog.Seconds()), "-", fmt.Sprintf("%.0f", float64(recLog.Microseconds())))

	// Group-commit ablation: concurrent committers with REAL fsync, one
	// fsync per commit vs batched. (These two rows always use fsync so the
	// batching has something to amortize.)
	for _, group := range []bool{false, true} {
		name := "enqueue ×8 writers, fsync-per-commit"
		if group {
			name = "enqueue ×8 writers, group commit"
		}
		gOps := n / 4
		elapsed, syncs, batchMean, err := e8GroupCommitArm(cfg, group, 8, gOps)
		if err != nil {
			return nil, err
		}
		t.AddRow(name, strconv.Itoa(gOps), fmt.Sprintf("%.3fs", elapsed),
			fmtRate(gOps, elapsed), fmt.Sprintf("%.1f", elapsed*1e6/float64(gOps)))
		t.Notef("%s used %d physical fsyncs for %d commits (%.2f fsyncs/commit, mean batch %.1f records)",
			name, syncs, gOps, float64(syncs)/float64(gOps), batchMean)
	}

	if !cfg.Fsync {
		t.Notef("fsync disabled for the single-threaded rows (shape, not absolute durability latency); enable with -fsync")
	}
	t.Notef("volatile queues skip the log entirely — the §10 'volatile queue' trade")
	return t, nil
}

// e8GroupCommitArm measures concurrent durable enqueues with and without
// group commit, fsync enabled. Alongside the timing it reports metric
// deltas from the repository's registry: physical fsyncs and the mean
// group-commit batch size (records made durable per fsync).
func e8GroupCommitArm(cfg Config, group bool, writers, total int) (elapsedSec float64, syncs uint64, batchMean float64, err error) {
	dir, err := cfg.tempDir("e8gc-*")
	if err != nil {
		return 0, 0, 0, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{GroupCommit: group})
	if err != nil {
		return 0, 0, 0, err
	}
	defer repo.Close()
	if err := repo.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		return 0, 0, 0, err
	}
	body := make([]byte, 128)
	before := repo.Metrics().Snapshot()
	start := time.Now()
	errCh := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < total/writers; i++ {
				if _, err := repo.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
					errCh <- err
					return
				}
			}
			errCh <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errCh; err != nil {
			return 0, 0, 0, err
		}
	}
	elapsed := time.Since(start).Seconds()
	after := repo.Metrics().Snapshot()
	syncs = obs.CounterDelta(before, after, "wal.fsyncs")
	hb, ha := before.Histograms["wal.group_commit_batch"], after.Histograms["wal.group_commit_batch"]
	if dc := ha.Count - hb.Count; dc > 0 {
		batchMean = float64(ha.Sum-hb.Sum) / float64(dc)
	}
	return elapsed, syncs, batchMean, nil
}

// runE12: the cost of spanning two repositories with one server
// transaction (two-phase commit, Sections 5–6).
func runE12(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E12",
		Title: "Local transactions vs two-phase commit across repositories",
		Claim: "§5–6: a server transaction may dequeue from one node's queue and enqueue into another's; " +
			"2PC makes the move atomic at the price of extra log forces and coordinator records.",
		Columns: []string{"arm", "moves", "elapsed", "moves/s", "log-records/move"},
	}
	n := cfg.scale(1500, 10000)
	for _, arm := range []string{"local-1pc", "distributed-2pc"} {
		row, err := e12Arm(cfg, arm, n)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Notef("a move = dequeue from 'in', enqueue into 'out', atomically; 2PC adds prepare + decision records")
	t.Notef("the crash-window correctness (presumed abort, in-doubt resolution) is covered by internal/tpc tests")
	return t, nil
}

func e12Arm(cfg Config, arm string, n int) ([]string, error) {
	dir, err := cfg.tempDir("e12-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	ctx := context.Background()

	repoA, _, err := queue.Open(filepath.Join(dir, "a"), queue.Options{NoFsync: !cfg.Fsync, Name: "a"})
	if err != nil {
		return nil, err
	}
	defer repoA.Close()
	if err := repoA.CreateQueue(queue.QueueConfig{Name: "in"}); err != nil {
		return nil, err
	}

	var moveFn func() error
	var logStats func() uint64
	switch arm {
	case "local-1pc":
		if err := repoA.CreateQueue(queue.QueueConfig{Name: "out"}); err != nil {
			return nil, err
		}
		moveFn = func() error {
			tx := repoA.Begin()
			el, err := repoA.Dequeue(ctx, tx, "in", "", queue.DequeueOpts{})
			if err != nil {
				tx.Abort()
				return err
			}
			if _, err := repoA.Enqueue(tx, "out", el, "", nil); err != nil {
				tx.Abort()
				return err
			}
			return tx.Commit()
		}
		logStats = func() uint64 { return repoA.Log().Stats().Appends }
	case "distributed-2pc":
		repoB, _, err := queue.Open(filepath.Join(dir, "b"), queue.Options{NoFsync: !cfg.Fsync, Name: "b"})
		if err != nil {
			return nil, err
		}
		defer repoB.Close()
		if err := repoB.CreateQueue(queue.QueueConfig{Name: "out"}); err != nil {
			return nil, err
		}
		coord, err := tpc.OpenCoordinator("e12", filepath.Join(dir, "coord"), !cfg.Fsync)
		if err != nil {
			return nil, err
		}
		defer coord.Close()
		moveFn = func() error {
			tA := repoA.Begin()
			tB := repoB.Begin()
			el, err := repoA.Dequeue(ctx, tA, "in", "", queue.DequeueOpts{})
			if err != nil {
				tA.Abort()
				tB.Abort()
				return err
			}
			el.EID = 0
			if _, err := repoB.Enqueue(tB, "out", el, "", nil); err != nil {
				tA.Abort()
				tB.Abort()
				return err
			}
			g := coord.Begin()
			g.Enlist(&tpc.LocalBranch{Label: "a", Txn: tA})
			g.Enlist(&tpc.LocalBranch{Label: "b", Txn: tB})
			return g.Commit()
		}
		logStats = func() uint64 {
			return repoA.Log().Stats().Appends + repoB.Log().Stats().Appends + coord.Log().Stats().Appends
		}
	default:
		return nil, fmt.Errorf("unknown arm %q", arm)
	}

	for i := 0; i < n; i++ {
		if _, err := repoA.Enqueue(nil, "in", queue.Element{Body: []byte("m")}, "", nil); err != nil {
			return nil, err
		}
	}
	base := logStats()
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := moveFn(); err != nil {
			return nil, err
		}
	}
	elapsed := time.Since(start).Seconds()
	perMove := float64(logStats()-base) / float64(n)
	return []string{arm, strconv.Itoa(n), fmt.Sprintf("%.3fs", elapsed), fmtRate(n, elapsed),
		fmt.Sprintf("%.2f", perMove)}, nil
}
