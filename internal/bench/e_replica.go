package bench

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"repro/internal/queue"
	"repro/internal/replica"
)

func init() { register("e13", runE13) }

// runE13: standby replication by log shipping — the paper's §10–11
// suggestion that queues be replicated for availability.
func runE13(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E13",
		Title: "Standby replication by log shipping: failover loss vs shipping cadence",
		Claim: "§10–11: \"given the importance of reliably managing requests in a distributed system, queues " +
			"are a good candidate for being stored as a replicated database\"; asynchronous shipping bounds " +
			"failover loss by the shipping lag.",
		Columns: []string{"mode", "ship-interval", "enqueued", "survived-failover", "lost-acked", "shipping"},
	}
	for _, interval := range []time.Duration{time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		row, err := e13Arm(cfg, interval)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	// The synchronous arms: the standby is fed through the WAL commit
	// gate, so loss is bounded by the commit rule instead of the cadence.
	for _, arm := range []struct {
		mode   replica.Mode
		maxLag uint64
	}{{replica.ModeSemiSync, 64}, {replica.ModeSync, 0}} {
		row, err := e13GatedArm(cfg, arm.mode, arm.maxLag)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Notef("async arms: enqueues arrive at a steady ~5k/s for ~25 shipping intervals; the primary then crashes with no final ship")
	t.Notef("async loss ≈ one shipping window of arrivals — the asynchronous-replication trade, linear in the cadence")
	t.Notef("semisync bounds loss by the lag budget; sync (no ack before the standby has the bytes) must lose zero")
	t.Notef("promotion is ordinary crash recovery on the shipped files; registrations and retry counts survive too")
	return t, nil
}

func e13Arm(cfg Config, interval time.Duration) ([]string, error) {
	base, err := cfg.tempDir("e13-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(base)
	primaryDir := filepath.Join(base, "primary")
	standbyDir := filepath.Join(base, "standby")
	primary, _, err := queue.Open(primaryDir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	defer primary.Close()
	if err := primary.CreateQueue(queue.QueueConfig{Name: "q"}); err != nil {
		return nil, err
	}
	sh, err := replica.NewShipper(primaryDir, standbyDir)
	if err != nil {
		return nil, err
	}
	// Seed the standby with the schema before the workload starts.
	if _, err := sh.SyncOnce(); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	shipDone := make(chan struct{})
	go func() {
		defer close(shipDone)
		sh.Run(ctx, interval)
	}()

	// A steady arrival stream for ~25 shipping intervals.
	body := make([]byte, 64)
	duration := 25 * interval
	if duration < 50*time.Millisecond {
		duration = 50 * time.Millisecond
	}
	deadline := time.Now().Add(duration)
	n := 0
	for time.Now().Before(deadline) {
		if _, err := primary.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
			return nil, err
		}
		n++
		time.Sleep(200 * time.Microsecond)
	}
	// The failure: the replication link dies (last successful ship is now
	// in the past), arrivals continue for up to one shipping window, then
	// the primary crashes. The standby is whatever was shipped.
	cancel()
	<-shipDone
	lagDeadline := time.Now().Add(interval)
	for time.Now().Before(lagDeadline) {
		if _, err := primary.Enqueue(nil, "q", queue.Element{Body: body}, "", nil); err != nil {
			return nil, err
		}
		n++
		time.Sleep(200 * time.Microsecond)
	}
	primary.Crash()

	standby, _, err := queue.Open(standbyDir, queue.Options{NoFsync: true})
	if err != nil {
		return nil, fmt.Errorf("promotion failed: %w", err)
	}
	defer standby.Close()
	survived, err := standby.Depth("q")
	if err != nil {
		return nil, err
	}
	ships, bytes := sh.Stats()
	return []string{
		"async", interval.String(), strconv.Itoa(n), strconv.Itoa(survived), strconv.Itoa(n - survived),
		fmt.Sprintf("%d ships / %d B", ships, bytes),
	}, nil
}
