package bench

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/queue"
)

func init() {
	register("e5", runE5)
	register("e10", runE10)
	register("e11", runE11)
}

// runE5: error queues bound the retries of poison requests (Sections 4.2
// and 5).
func runE5(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "Error queues: bounded retries for poison requests",
		Claim: "§4.2/§5: \"to avoid cyclic restart of the request (i.e., to guarantee termination), the server " +
			"should use the error queue facility\"; the n-th abort diverts the element.",
		Columns: []string{"retry-limit", "good-reqs", "poison-reqs", "good-done", "poison-diverted", "wasted-attempts", "elapsed"},
	}
	good := cfg.scale(40, 200)
	poison := cfg.scale(8, 40)
	for _, limit := range []int32{1, 3, 8} {
		row, err := e5Arm(cfg, limit, good, poison)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Notef("wasted-attempts = aborted server executions; it grows linearly with the retry limit — the knob's cost")
	t.Notef("without an error queue a poison request restarts forever and the server loop never drains")
	return t, nil
}

func e5Arm(cfg Config, limit int32, good, poison int) ([]string, error) {
	dir, err := cfg.tempDir("e5-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req", ErrorQueue: "req.err", RetryLimit: limit}); err != nil {
		return nil, err
	}
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req.err"}); err != nil {
		return nil, err
	}
	srv, err := core.NewServer(core.ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *core.ReqCtx) ([]byte, error) {
		if string(rc.Request.Body) == "poison" {
			return nil, fmt.Errorf("handler crash on poison input")
		}
		return []byte("ok"), nil
	}})
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go srv.Serve(ctx)
	go srv.Serve(ctx) // two instances sharing the queue

	// Batch-feed the mixed workload (no replies needed).
	total := good + poison
	p := 0
	for i := 0; i < total; i++ {
		body := "work"
		if p < poison && i%(total/poison) == 0 {
			body = "poison"
			p++
		}
		e := core.NewRequestElement(ridOf(i), "feed", "", []byte(body), nil)
		if _, err := repo.Enqueue(nil, "req", e, "", nil); err != nil {
			return nil, err
		}
	}
	start := time.Now()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		d, _ := repo.Depth("req")
		st, _ := repo.Stats("req")
		if d == 0 && st.InFlight == 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("queue never drained (depth %d)", d)
		}
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()
	errDepth, _ := repo.Depth("req.err")
	stats := srv.Stats()
	return []string{
		strconv.Itoa(int(limit)), strconv.Itoa(good), strconv.Itoa(p),
		strconv.FormatUint(stats.Processed, 10), strconv.Itoa(errDepth),
		strconv.FormatUint(stats.Aborts, 10), fmt.Sprintf("%.2fs", elapsed),
	}, nil
}

// runE10: load sharing and burst buffering (Section 1).
func runE10(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Load sharing across server instances; queues as burst buffers",
		Claim: "§1: \"since many processes can dequeue requests from a single queue, this automatically shares " +
			"the workload\"; \"queues provide a buffer that mitigates the effects of bursts of requests\".",
		Columns: []string{"instances", "burst", "drain-time", "req/s", "max-instance-share", "peak-depth"},
	}
	burst := cfg.scale(200, 1500)
	for _, instances := range []int{1, 2, 4, 8} {
		row, err := e10Arm(cfg, instances, burst)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Notef("work per request ~1ms; near-linear scaling up to the worker count shows automatic load sharing")
	t.Notef("the burst lands while servers run: peak-depth shows the queue absorbing it instead of refusing work")
	return t, nil
}

func e10Arm(cfg Config, instances, burst int) ([]string, error) {
	dir, err := cfg.tempDir("e10-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	servers := make([]*core.Server, instances)
	for i := range servers {
		srv, err := core.NewServer(core.ServerConfig{
			Repo: repo, Queue: "req", Name: fmt.Sprintf("s%d", i),
			Handler: func(rc *core.ReqCtx) ([]byte, error) {
				time.Sleep(time.Millisecond)
				return []byte("ok"), nil
			},
		})
		if err != nil {
			return nil, err
		}
		servers[i] = srv
		go srv.Serve(ctx)
	}

	// Track peak depth while the burst lands.
	var peakMu sync.Mutex
	peak := 0
	sampler := make(chan struct{})
	go func() {
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-sampler:
				return
			case <-tick.C:
				d, _ := repo.Depth("req")
				peakMu.Lock()
				if d > peak {
					peak = d
				}
				peakMu.Unlock()
			}
		}
	}()

	start := time.Now()
	for i := 0; i < burst; i++ {
		e := core.NewRequestElement(ridOf(i), "burst", "", nil, nil)
		if _, err := repo.Enqueue(nil, "req", e, "", nil); err != nil {
			return nil, err
		}
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		total := uint64(0)
		for _, s := range servers {
			total += s.Stats().Processed
		}
		if total >= uint64(burst) {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("burst never drained (%d/%d)", total, burst)
		}
		time.Sleep(2 * time.Millisecond)
	}
	elapsed := time.Since(start).Seconds()
	close(sampler)
	maxShare := uint64(0)
	for _, s := range servers {
		if p := s.Stats().Processed; p > maxShare {
			maxShare = p
		}
	}
	peakMu.Lock()
	pk := peak
	peakMu.Unlock()
	return []string{
		strconv.Itoa(instances), strconv.Itoa(burst),
		fmt.Sprintf("%.2fs", elapsed), fmtRate(burst, elapsed),
		fmt.Sprintf("%.0f%%", 100*float64(maxShare)/float64(burst)), strconv.Itoa(pk),
	}, nil
}

// runE11: the cancellation windows of Section 7.
func runE11(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Cancellation outcomes vs request age (KillElement and sagas)",
		Claim: "§7: KillElement cancels a request until its first transaction commits; with compensating " +
			"transactions (sagas), \"later cancellation can still be arranged\".",
		Columns: []string{"cancel-delay", "attempts", "immediate", "compensated", "too-late", "balance-intact"},
	}
	attempts := cfg.scale(20, 100)
	for _, delay := range []time.Duration{0, 3 * time.Millisecond, 12 * time.Millisecond, 50 * time.Millisecond} {
		row, err := e11Arm(cfg, delay, attempts)
		if err != nil {
			return nil, err
		}
		t.AddRow(row...)
	}
	t.Notef("3-step transfer saga, ~2ms per stage; later cancels shift from immediate → compensated → too-late")
	t.Notef("balance-intact: canceled transfers left no money moved; completed ones moved it exactly once")
	return t, nil
}

func e11Arm(cfg Config, delay time.Duration, attempts int) ([]string, error) {
	dir, err := cfg.tempDir("e11-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	adjust := func(rc *core.ReqCtx, acct string, delta int) error {
		v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "acct", acct, true)
		if err != nil {
			return err
		}
		n := 0
		if v != nil {
			n, _ = strconv.Atoi(string(v))
		}
		return rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", acct, []byte(strconv.Itoa(n+delta)))
	}
	step := func(acct string, delta int) core.SagaStep {
		return core.SagaStep{
			Name: acct,
			Action: func(rc *core.ReqCtx) ([]byte, []byte, error) {
				time.Sleep(2 * time.Millisecond)
				if err := adjust(rc, acct, delta); err != nil {
					return nil, nil, err
				}
				return rc.Request.Body, nil, nil
			},
			Compensate: func(rc *core.ReqCtx) ([]byte, []byte, error) {
				return nil, nil, adjust(rc, acct, -delta)
			},
		}
	}
	saga, err := core.NewSaga(core.SagaConfig{Repo: repo, Name: "xfer", Steps: []core.SagaStep{
		step("src", -1), step("dst", +1), step("fee", +0),
	}})
	if err != nil {
		return nil, err
	}
	go saga.Serve(ctx)

	clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "c", RequestQueue: saga.EntryQueue()})
	if _, err := clerk.Connect(ctx); err != nil {
		return nil, err
	}
	immediate, compensated, tooLate, completed := 0, 0, 0, 0
	for i := 0; i < attempts; i++ {
		rid := ridOf(i)
		if err := clerk.Send(ctx, rid, []byte("move 1"), nil); err != nil {
			return nil, err
		}
		time.Sleep(delay)
		outcome, err := saga.Cancel(ctx, rid)
		if err != nil {
			return nil, err
		}
		switch outcome {
		case core.CanceledImmediately:
			immediate++
		case core.CanceledWithCompensation:
			compensated++
		case core.NotCancelable:
			tooLate++
		}
		rep, err := clerk.Receive(ctx, nil)
		if err != nil {
			return nil, err
		}
		if rep.Status == core.StatusOK {
			completed++
		}
	}
	// Conservation: completed transfers moved exactly 1 each; canceled
	// ones moved nothing (after compensation settles).
	deadline := time.Now().Add(30 * time.Second)
	intact := false
	for time.Now().Before(deadline) {
		v, _, _ := repo.KVGet(ctx, nil, "acct", "src", false)
		src, _ := strconv.Atoi(string(v))
		v, _, _ = repo.KVGet(ctx, nil, "acct", "dst", false)
		dst, _ := strconv.Atoi(string(v))
		if src == -completed && dst == completed {
			intact = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	return []string{
		delay.String(), strconv.Itoa(attempts),
		strconv.Itoa(immediate), strconv.Itoa(compensated), strconv.Itoa(tooLate),
		fmt.Sprintf("%v", intact),
	}, nil
}
