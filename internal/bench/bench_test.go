package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func quickCfg(t *testing.T) Config {
	t.Helper()
	return Config{Quick: true, Seed: 7, Dir: t.TempDir()}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"e1", "e10", "e11", "e12", "e13", "e14", "e15", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	if _, err := Run("nope", quickCfg(t)); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{ID: "EX", Title: "title", Claim: "claim", Columns: []string{"a", "bb"}}
	tab.AddRow("1", "2")
	tab.Notef("note %d", 7)
	var buf bytes.Buffer
	tab.Fprint(&buf)
	out := buf.String()
	for _, want := range []string{"EX", "title", "claim", "a", "bb", "1", "2", "note 7"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func cell(t *testing.T, tab *Table, row int, col string) string {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			return tab.Rows[row][i]
		}
	}
	t.Fatalf("no column %q in %v", col, tab.Columns)
	return ""
}

func TestE5InvariantPoisonAlwaysDiverted(t *testing.T) {
	tab, err := Run("e5", quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if cell(t, tab, i, "poison-reqs") != cell(t, tab, i, "poison-diverted") {
			t.Fatalf("row %d: poison not fully diverted: %v", i, tab.Rows[i])
		}
	}
}

func TestE7InvariantExactlyOnce(t *testing.T) {
	tab, err := Run("e7", quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if got := cell(t, tab, i, "exec≠1"); got != "0" {
			t.Fatalf("row %d: exec≠1 = %s: %v", i, got, tab.Rows[i])
		}
		if cell(t, tab, i, "requests") != cell(t, tab, i, "replies≥1") {
			t.Fatalf("row %d: lost replies: %v", i, tab.Rows[i])
		}
	}
}

func TestE4InvariantRemediesEliminateLostUpdates(t *testing.T) {
	tab, err := Run("e4", quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		arm := tab.Rows[i][0]
		lost, _ := strconv.Atoi(cell(t, tab, i, "lost-updates"))
		switch arm {
		case "one-long-txn", "pipeline/inherit", "pipeline/applock":
			if lost != 0 {
				t.Fatalf("%s lost %d updates", arm, lost)
			}
		case "pipeline/none":
			if lost == 0 {
				t.Logf("pipeline/none showed no anomaly this run (timing-dependent)")
			}
		}
	}
}

func TestE11InvariantBalanceIntact(t *testing.T) {
	tab, err := Run("e11", quickCfg(t))
	if err != nil {
		t.Fatal(err)
	}
	for i := range tab.Rows {
		if got := cell(t, tab, i, "balance-intact"); got != "true" {
			t.Fatalf("row %d: balance not intact: %v", i, tab.Rows[i])
		}
	}
}
