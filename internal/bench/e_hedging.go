package bench

import (
	"context"
	"fmt"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/queue"
)

func init() { register("e14", runE14) }

// runE14: request cloning (hedging) collapses the latency tail at low
// utilization and stops paying as utilization rises — the tradeoff curve
// of the cloning model (Pellegrini, arXiv:2002.04416; PAPERS.md), layered
// over the paper's exactly-once Transceive.
//
// Two queues over one repository, two servers each. The primary queue's
// servers straggle on marked requests (a slow QM for a subset of its
// traffic); the alternate never does. Utilization is raised by closed-loop
// background clients saturating both servers. The foreground client runs
// unhedged, then hedged with one clone arm to the alternate queue.
func runE14(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E14",
		Title: "Hedged requests: cloning vs. utilization",
		Claim: "cloning model (arXiv:2002.04416): cloning the slowest requests wins large tail-latency " +
			"factors at low utilization; at high utilization the clones queue behind real work and the " +
			"win evaporates while duplicate executions burn capacity. Exactly-once must hold throughout.",
		Columns: []string{"util", "arm", "requests", "p50", "p99", "hedges", "clone-wins", "cancels", "wasted", "dup-execs"},
	}
	var p99 = map[string]time.Duration{}
	for _, u := range []struct {
		label string
		bg    int
	}{{"low", 0}, {"high", 32}} {
		for _, hedged := range []bool{false, true} {
			row, p, err := e14Arm(cfg, u.bg, hedged)
			if err != nil {
				return nil, fmt.Errorf("util=%s hedged=%v: %w", u.label, hedged, err)
			}
			arm := "unhedged"
			if hedged {
				arm = "hedged"
			}
			p99[u.label+"/"+arm] = p
			t.AddRow(append([]string{u.label, arm}, row...)...)
		}
	}
	if lo, hi := p99["low/unhedged"], p99["low/hedged"]; hi > 0 {
		t.Notef("low utilization: hedging improves p99 by %.1fx", float64(lo)/float64(hi))
	}
	if lo, hi := p99["high/unhedged"], p99["high/hedged"]; hi > 0 {
		t.Notef("high utilization: p99 factor only %.1fx — the clones queue behind the backlog and the win collapses toward parity", float64(lo)/float64(hi))
	}
	t.Notef("straggle = +60ms on 1/32 of requests at the primary servers only; service time 3ms; trigger adapts to the p95 of observed latencies (floor 8ms)")
	t.Notef("dup-execs counts extra committed executions of foreground rids (from the durable execs table): every one was drained, never surfaced")
	return t, nil
}

func e14Arm(cfg Config, bg int, hedged bool) (row []string, p99 time.Duration, err error) {
	dir, err := cfg.tempDir("e14-*")
	if err != nil {
		return nil, 0, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, 0, err
	}
	defer repo.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const service = 3 * time.Millisecond
	const straggle = 60 * time.Millisecond
	for _, qname := range []string{"req", "req.b"} {
		if err := repo.CreateQueue(queue.QueueConfig{Name: qname}); err != nil {
			return nil, 0, err
		}
		primary := qname == "req"
		for pool := 0; pool < 2; pool++ {
			srv, serr := core.NewServer(core.ServerConfig{
				Repo: repo, Queue: qname, Name: fmt.Sprintf("e14-%s-%d", qname, pool),
				Handler: func(rc *core.ReqCtx) ([]byte, error) {
					time.Sleep(service)
					if primary && rc.Request.Headers["slow"] != "" {
						time.Sleep(straggle)
					}
					v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, true)
					if err != nil {
						return nil, err
					}
					n := 0
					if v != nil {
						n, _ = strconv.Atoi(string(v))
					}
					if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "execs", rc.Request.RID, []byte(strconv.Itoa(n+1))); err != nil {
						return nil, err
					}
					return []byte("ok"), nil
				},
			})
			if serr != nil {
				return nil, 0, serr
			}
			go srv.Serve(ctx)
		}
	}

	// Background load: closed-loop clients split across both queues keep
	// the servers at high utilization.
	var wg sync.WaitGroup
	for b := 0; b < bg; b++ {
		wg.Add(1)
		go func(b int) {
			defer wg.Done()
			qname := "req"
			if b%2 == 1 {
				qname = "req.b"
			}
			rc := core.NewResilientClerk(&core.LocalConn{Repo: repo}, core.ResilientConfig{
				Clerk: core.ClerkConfig{ClientID: fmt.Sprintf("e14-bg-%d", b), RequestQueue: qname, ReceiveWait: time.Second},
				Seed:  cfg.Seed + int64(b),
			})
			for i := 0; ctx.Err() == nil; i++ {
				rid := fmt.Sprintf("bg-%d-%d", b, i)
				if _, err := rc.Transceive(ctx, rid, nil, nil, nil); err != nil {
					return
				}
			}
		}(b)
	}
	defer wg.Wait()
	defer cancel()

	reg := obs.NewRegistry()
	rcfg := core.ResilientConfig{
		Clerk:   core.ClerkConfig{ClientID: "e14-fg", RequestQueue: "req", ReceiveWait: time.Second},
		Metrics: reg,
		Seed:    cfg.Seed,
	}
	if hedged {
		rcfg.Hedge = &core.HedgePolicy{
			Queues:     []string{"req.b"},
			MinTrigger: 8 * time.Millisecond,
			DrainWait:  200 * time.Millisecond,
		}
	}
	fg := core.NewResilientClerk(&core.LocalConn{Repo: repo}, rcfg)

	n := cfg.scale(64, 240)
	durs := make([]time.Duration, 0, n)
	for i := 0; i < n; i++ {
		rid := fmt.Sprintf("fg-%05d", i)
		var hdrs map[string]string
		if i%32 == 0 {
			hdrs = map[string]string{"slow": "1"} // the primary QM straggles on these
		}
		begin := time.Now()
		if _, err := fg.Transceive(ctx, rid, nil, hdrs, nil); err != nil {
			return nil, 0, fmt.Errorf("fg %s: %w", rid, err)
		}
		durs = append(durs, time.Since(begin))
	}
	fg.WaitHedgeDrains()

	dups := 0
	for i := 0; i < n; i++ {
		if c := execCount(repo, fmt.Sprintf("fg-%05d", i)); c > 1 {
			dups += c - 1
		}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	quant := func(q float64) time.Duration {
		idx := int(q * float64(len(durs)))
		if idx >= len(durs) {
			idx = len(durs) - 1
		}
		return durs[idx]
	}
	s := reg.Snapshot()
	c := func(name string) uint64 { return s.Counters[name] }
	row = []string{
		strconv.Itoa(n),
		fmtMs(quant(0.50).Seconds()),
		fmtMs(quant(0.99).Seconds()),
		strconv.FormatUint(c("clerk.hedges"), 10),
		strconv.FormatUint(c("clerk.hedge_wins"), 10),
		strconv.FormatUint(c("clerk.hedge_cancels"), 10),
		strconv.FormatUint(c("clerk.hedge_wasted"), 10),
		strconv.Itoa(dups),
	}
	return row, quant(0.99), nil
}
