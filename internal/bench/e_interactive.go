package bench

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/queue"
)

func init() { register("e9", runE9) }

// runE9: pseudo-conversational vs single-transaction conversational
// interactive requests (Section 8).
func runE9(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Interactive requests: pseudo-conversational vs one-transaction conversation",
		Claim: "§8: pseudo-conversational transactions capture each intermediate input reliably at commit but " +
			"lose late cancellation and request serializability; a one-transaction conversation can lose " +
			"intermediate I/O on abort unless the client logs and replays it.",
		Columns: []string{"arm", "conversations", "rounds", "server-aborts", "inputs-solicited", "inputs-replayed", "elapsed"},
	}
	convs := cfg.scale(8, 40)
	const rounds = 3
	const abortsPerConv = 2
	for _, arm := range []string{"pseudo-conv", "conv-txn/iolog", "conv-txn/no-log"} {
		row, err := e9Arm(cfg, arm, convs, rounds, abortsPerConv)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arm, err)
		}
		t.AddRow(row...)
	}
	t.Notef("ideal inputs-solicited = conversations × rounds; anything above it is input the user had to re-enter")
	t.Notef("pseudo-conv: aborts replay only the aborted round's input from the queue — the user re-enters nothing")
	return t, nil
}

func e9Arm(cfg Config, arm string, convs, rounds, abortsPerConv int) ([]string, error) {
	dir, err := cfg.tempDir("e9-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return nil, err
	}
	defer repo.Close()
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	solicited, replayed := 0, 0
	var aborts atomic.Int64
	start := time.Now()

	switch arm {
	case "pseudo-conv":
		// The conversational server aborts abortsPerConv rounds per
		// conversation; the queued intermediate input survives each abort.
		abortBudget := map[string]int{}
		handler := func(rc *core.ReqCtx, state, input []byte, round int) ([]byte, []byte, bool, error) {
			base := rc.Request.RID
			if i := indexHash(base); i >= 0 {
				base = base[:i]
			}
			if abortBudget[base] < abortsPerConv && round > 0 {
				abortBudget[base]++
				aborts.Add(1)
				return nil, nil, false, fmt.Errorf("injected server abort")
			}
			sum := 0
			if len(state) > 0 {
				sum, _ = strconv.Atoi(string(state))
			}
			if round > 0 {
				n, _ := strconv.Atoi(string(input))
				sum += n
			}
			if round == rounds {
				return nil, []byte(strconv.Itoa(sum)), true, nil
			}
			return []byte(strconv.Itoa(sum)), []byte("next?"), false, nil
		}
		go core.ServeConversational(ctx, core.ConvServerConfig{Repo: repo, Queue: "req", Handler: handler})

		clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "e9c", RequestQueue: "req"})
		if _, err := clerk.Connect(ctx); err != nil {
			return nil, err
		}
		for c := 0; c < convs; c++ {
			sess := clerk.Interactive(ridOf(c))
			if err := sess.Start(ctx, nil); err != nil {
				return nil, err
			}
			for {
				rep, done, err := sess.Receive(ctx, nil)
				if err != nil {
					return nil, err
				}
				if done {
					want := 0
					for r := 1; r <= rounds; r++ {
						want += r + 10
					}
					if string(rep.Body) != strconv.Itoa(want) {
						return nil, fmt.Errorf("conversation %d sum %q, want %d", c, rep.Body, want)
					}
					break
				}
				solicited++ // the user types an answer
				if err := sess.SendInput(ctx, []byte(strconv.Itoa(rep.Step+1+10))); err != nil {
					return nil, err
				}
			}
		}

	case "conv-txn/iolog", "conv-txn/no-log":
		ch, err := core.NewConvChannel(repo, "e9c")
		if err != nil {
			return nil, err
		}
		// Single-transaction conversational server: aborts abortsPerConv
		// attempts per request after soliciting all inputs.
		go serveConvTxnBench(ctx, repo, ch, rounds, abortsPerConv, &aborts)

		clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "e9c", RequestQueue: "req"})
		if _, err := clerk.Connect(ctx); err != nil {
			return nil, err
		}
		lc := &core.LocalConn{Repo: repo}
		for c := 0; c < convs; c++ {
			if err := clerk.Send(ctx, ridOf(c), nil, nil); err != nil {
				return nil, err
			}
			info, err := lc.Register(ctx, "req", "e9c", true)
			if err != nil {
				return nil, err
			}
			eid := info.LastEID
			var ilog *core.IOLog
			if arm == "conv-txn/iolog" {
				ilog = core.NewIOLog()
			}
			convCtx, convCancel := context.WithCancel(ctx)
			localSolicited, localReplayed := 0, 0
			loopDone := make(chan struct{})
			go func() {
				defer close(loopDone)
				ch.ConvClientLoop(convCtx, eid, ilog, func(round int, output []byte) []byte {
					localSolicited++
					return []byte(strconv.Itoa(round + 1 + 10))
				}, &localReplayed)
			}()
			rep, err := clerk.Receive(ctx, nil)
			convCancel()
			<-loopDone
			solicited += localSolicited
			replayed += localReplayed
			if err != nil {
				return nil, err
			}
			want := 0
			for r := 1; r <= rounds; r++ {
				want += r + 10
			}
			if string(rep.Body) != strconv.Itoa(want) {
				return nil, fmt.Errorf("conversation %d sum %q, want %d", c, rep.Body, want)
			}
		}

	default:
		return nil, fmt.Errorf("unknown arm %q", arm)
	}

	elapsed := time.Since(start).Seconds()
	return []string{arm, strconv.Itoa(convs), strconv.Itoa(rounds), strconv.FormatInt(aborts.Load(), 10),
		strconv.Itoa(solicited), strconv.Itoa(replayed), fmt.Sprintf("%.2fs", elapsed)}, nil
}

func indexHash(s string) int {
	for i := 0; i < len(s); i++ {
		if s[i] == '#' {
			return i
		}
	}
	return -1
}

// serveConvTxnBench runs Section 8.3's single-transaction conversation:
// solicit all inputs inside one transaction; abort the first abortsPerConv
// attempts of each request (after the inputs were gathered), losing the
// unprotected intermediate I/O.
func serveConvTxnBench(ctx context.Context, repo *queue.Repository, ch *core.ConvChannel, rounds, abortsPerConv int, totalAborts *atomic.Int64) {
	attempts := map[queue.EID]int{}
	for ctx.Err() == nil {
		tx := repo.Begin()
		el, err := repo.Dequeue(ctx, tx, "req", "convtxn", queue.DequeueOpts{Wait: true})
		if err != nil {
			tx.Abort()
			return
		}
		sum := 0
		failed := false
		for round := 0; round < rounds; round++ {
			in, err := ch.Ask(ctx, el.EID, round, []byte("next?"))
			if err != nil {
				failed = true
				break
			}
			n, _ := strconv.Atoi(string(in))
			sum += n
		}
		if !failed && attempts[el.EID] < abortsPerConv {
			attempts[el.EID]++
			totalAborts.Add(1)
			failed = true
		}
		if failed {
			tx.Abort()
			continue
		}
		req, err := core.ParseRequest(&el)
		if err != nil {
			tx.Abort()
			continue
		}
		if _, err := repo.Enqueue(tx, req.ReplyTo, core.NewReplyElement(req.RID, core.StatusOK, []byte(strconv.Itoa(sum))), "", nil); err != nil {
			tx.Abort()
			continue
		}
		_ = tx.Commit()
	}
}
