package bench

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/core/baseline"
	"repro/internal/queue"
	"repro/internal/txn"
)

func init() {
	register("e2", runE2)
	register("e3", runE3)
	register("e4", runE4)
}

// hotUpdate increments a single hot account under an exclusive lock — the
// contended resource of E2 and E4.
func hotUpdate(repo *queue.Repository) baseline.Handler {
	return func(ctx context.Context, t *txn.Txn, rid string, body []byte) ([]byte, error) {
		v, _, err := repo.KVGet(ctx, t, "acct", "hot", true)
		if err != nil {
			return nil, err
		}
		n := 0
		if v != nil {
			n, _ = strconv.Atoi(string(v))
		}
		if err := repo.KVSet(ctx, t, "acct", "hot", []byte(strconv.Itoa(n+1))); err != nil {
			return nil, err
		}
		return []byte("ok"), nil
	}
}

func hotValue(repo *queue.Repository) int {
	v, _, _ := repo.KVGet(context.Background(), nil, "acct", "hot", false)
	n, _ := strconv.Atoi(string(v))
	return n
}

// runE2: the one-transaction client holds server locks across reply
// processing; the queued design does not (Section 2).
func runE2(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "One-transaction client vs queued design under slow reply processing",
		Claim: "§2: \"processing the reply may be slow, which creates contention for resources (e.g., locks) " +
			"that the server must hold until the transaction commits\" — the queued design avoids it.",
		Columns: []string{"arm", "reply-delay", "clients", "requests", "elapsed", "req/s", "lock-wait-total"},
	}
	perClient := cfg.scale(12, 60)
	const clients = 6
	for _, delay := range []time.Duration{0, 2 * time.Millisecond, 8 * time.Millisecond} {
		for _, arm := range []string{"one-txn", "queued"} {
			elapsed, waitNanos, err := e2Arm(cfg, arm, delay, clients, perClient)
			if err != nil {
				return nil, err
			}
			n := clients * perClient
			t.AddRow(arm, delay.String(), strconv.Itoa(clients), strconv.Itoa(n),
				fmt.Sprintf("%.2fs", elapsed), fmtRate(n, elapsed),
				fmt.Sprintf("%.1fms", float64(waitNanos)/1e6))
		}
	}
	t.Notef("every request updates one hot account; lock-wait-total accumulates blocking across all transactions")
	t.Notef("one-txn holds the hot lock for the whole reply delay; queued holds it only for the server transaction")
	return t, nil
}

func e2Arm(cfg Config, arm string, delay time.Duration, clients, perClient int) (elapsedSec float64, lockWaitNanos uint64, err error) {
	dir, err := cfg.tempDir("e2-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return 0, 0, err
	}
	defer repo.Close()
	handler := hotUpdate(repo)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	baseWait := repo.Locks().Stats().WaitNanos
	start := time.Now()
	switch arm {
	case "one-txn":
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < perClient; i++ {
					rid := fmt.Sprintf("c%d-%d", c, i)
					err := baseline.OneTxnRequest(ctx, repo, handler, rid, nil, func([]byte) {
						time.Sleep(delay) // reply processing inside the txn
					})
					if err != nil {
						errCh <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return 0, 0, err
		default:
		}
	case "queued":
		if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
			return 0, 0, err
		}
		// Match the one-txn arm's parallelism: as many server instances as
		// clients.
		for s := 0; s < clients; s++ {
			srv, err := core.NewServer(core.ServerConfig{
				Repo: repo, Queue: "req", Name: fmt.Sprintf("srv-%d", s),
				Handler: func(rc *core.ReqCtx) ([]byte, error) {
					return handler(rc.Ctx, rc.Txn, rc.Request.RID, rc.Request.Body)
				},
			})
			if err != nil {
				return 0, 0, err
			}
			go srv.Serve(ctx)
		}
		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{
					ClientID: fmt.Sprintf("client-%d", c), RequestQueue: "req",
				})
				if _, err := clerk.Connect(ctx); err != nil {
					errCh <- err
					return
				}
				for i := 0; i < perClient; i++ {
					rid := fmt.Sprintf("c%d-%d", c, i)
					if _, err := clerk.Transceive(ctx, rid, nil, nil, nil); err != nil {
						errCh <- err
						return
					}
					time.Sleep(delay) // reply processing outside any txn
				}
			}(c)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return 0, 0, err
		default:
		}
	default:
		return 0, 0, fmt.Errorf("unknown arm %q", arm)
	}
	elapsed := time.Since(start).Seconds()
	wait := repo.Locks().Stats().WaitNanos - baseWait
	if got, want := hotValue(repo), clients*perClient; got != want {
		return 0, 0, fmt.Errorf("hot counter %d, want %d", got, want)
	}
	return elapsed, wait, nil
}

// runE3: strict-FIFO dequeue vs the paper's recommended skip-locked scan
// (Section 10).
func runE3(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Strict-FIFO vs skip-locked dequeue concurrency",
		Claim: "§10: strict ordering would imply performance degradation; letting dequeuers \"scan the queue " +
			"and ignore write-locked elements\" restores concurrency at the cost of tolerable ordering anomalies.",
		Columns: []string{"mode", "workers", "elements", "elapsed", "deq/s", "fifo-inversions"},
	}
	n := cfg.scale(150, 1000)
	for _, workers := range []int{1, 2, 4, 8} {
		for _, strict := range []bool{true, false} {
			elapsed, inversions, err := e3Arm(cfg, strict, workers, n)
			if err != nil {
				return nil, err
			}
			mode := "skip-locked"
			if strict {
				mode = "strict-fifo"
			}
			t.AddRow(mode, strconv.Itoa(workers), strconv.Itoa(n),
				fmt.Sprintf("%.2fs", elapsed), fmtRate(n, elapsed), strconv.Itoa(inversions))
		}
	}
	t.Notef("each dequeue holds its element ~500µs in a transaction; 10%% of attempts abort and retry")
	t.Notef("an inversion = an element consumed after a later-enqueued element (the §10 anomaly)")
	return t, nil
}

func e3Arm(cfg Config, strict bool, workers, n int) (elapsedSec float64, inversions int, err error) {
	dir, err := cfg.tempDir("e3-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return 0, 0, err
	}
	defer repo.Close()
	if err := repo.CreateQueue(queue.QueueConfig{Name: "q", StrictFIFO: strict}); err != nil {
		return 0, 0, err
	}
	for i := 0; i < n; i++ {
		if _, err := repo.Enqueue(nil, "q", queue.Element{Body: []byte(strconv.Itoa(i))}, "", nil); err != nil {
			return 0, 0, err
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			abortTick := 0
			for {
				t := repo.Begin()
				el, err := repo.Dequeue(ctx, t, "q", "", queue.DequeueOpts{})
				if err != nil {
					t.Abort()
					return // empty: done
				}
				time.Sleep(500 * time.Microsecond) // the element's transaction work
				abortTick++
				if abortTick%10 == 0 {
					t.Abort() // 10% of attempts abort and the element retries
					continue
				}
				idx, _ := strconv.Atoi(string(el.Body))
				mu.Lock()
				order = append(order, idx)
				mu.Unlock()
				if err := t.Commit(); err != nil {
					mu.Lock()
					order = order[:len(order)-1]
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	if len(order) != n {
		return 0, 0, fmt.Errorf("consumed %d of %d", len(order), n)
	}
	maxSeen := -1
	for _, idx := range order {
		if idx < maxSeen {
			inversions++
		} else {
			maxSeen = idx
		}
	}
	return elapsed, inversions, nil
}

// runE4: one long transaction vs a multi-transaction request, without and
// with request-level serializability (lock inheritance / application
// locks) — Section 6.
func runE4(cfg Config) (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "Multi-transaction requests: serializability vs throughput",
		Claim: "§6: splitting a request into several transactions avoids long-transaction lock contention but " +
			"\"the execution of requests is not serializable\"; lock inheritance or persistent application locks " +
			"restore it — application locks with \"limited\" performance from the overhead of setting locks.",
		Columns: []string{"arm", "requests", "elapsed", "req/s", "lost-updates"},
	}
	n := cfg.scale(40, 200)
	for _, arm := range []string{"one-long-txn", "pipeline/none", "pipeline/inherit", "pipeline/applock"} {
		elapsed, lost, err := e4Arm(cfg, arm, n)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", arm, err)
		}
		t.AddRow(arm, strconv.Itoa(n), fmt.Sprintf("%.2fs", elapsed), fmtRate(n, elapsed), strconv.Itoa(lost))
	}
	t.Notef("workload: read hot account in stage 1, write it in stage 3 (a 3-transaction request); 4 clients, 2 instances/stage")
	t.Notef("lost-updates must be 0 for one-long-txn, inherit, and applock; pipeline/none exposes the §6 anomaly")
	return t, nil
}

func e4Arm(cfg Config, arm string, n int) (elapsedSec float64, lostUpdates int, err error) {
	dir, err := cfg.tempDir("e4-*")
	if err != nil {
		return 0, 0, err
	}
	defer os.RemoveAll(dir)
	repo, _, err := queue.Open(dir, queue.Options{NoFsync: !cfg.Fsync})
	if err != nil {
		return 0, 0, err
	}
	defer repo.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	const clients = 4
	stageDelay := 300 * time.Microsecond

	start := time.Now()
	if arm == "one-long-txn" {
		handler := hotUpdate(repo)
		var wg sync.WaitGroup
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				for i := 0; i < n/clients; i++ {
					_ = baseline.OneTxnRequest(ctx, repo, func(ctx context.Context, t *txn.Txn, rid string, body []byte) ([]byte, error) {
						// One transaction spanning all three "stages".
						out, err := handler(ctx, t, rid, body)
						time.Sleep(3 * stageDelay)
						return out, err
					}, fmt.Sprintf("c%d-%d", c, i), nil, func([]byte) {})
				}
			}(c)
		}
		wg.Wait()
	} else {
		appLocks := &core.AppLocks{Repo: repo}
		useAppLocks := arm == "pipeline/applock"
		stages := []core.Stage{
			{Name: "read", Handler: func(rc *core.ReqCtx) ([]byte, []byte, error) {
				if useAppLocks {
					if err := appLocks.Acquire(rc.Ctx, rc.Txn, "hot", rc.Request.RID); err != nil {
						return nil, nil, err // abort; the queue retries
					}
				}
				v, _, err := rc.Repo.KVGet(rc.Ctx, rc.Txn, "acct", "hot", true)
				if err != nil {
					return nil, nil, err
				}
				time.Sleep(stageDelay)
				if v == nil {
					v = []byte("0")
				}
				return rc.Request.Body, v, nil
			}},
			{Name: "middle", Handler: func(rc *core.ReqCtx) ([]byte, []byte, error) {
				time.Sleep(stageDelay)
				return rc.Request.Body, rc.Request.ScratchPad, nil
			}},
			{Name: "write", Handler: func(rc *core.ReqCtx) ([]byte, []byte, error) {
				prev, _ := strconv.Atoi(string(rc.Request.ScratchPad))
				if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "acct", "hot", []byte(strconv.Itoa(prev+1))); err != nil {
					return nil, nil, err
				}
				time.Sleep(stageDelay)
				if useAppLocks {
					if err := appLocks.Release(rc.Ctx, rc.Txn, "hot", rc.Request.RID); err != nil {
						return nil, nil, err
					}
				}
				return []byte("done"), nil, nil
			}},
		}
		pipe, err := core.NewPipeline(core.PipelineConfig{
			Repo: repo, Name: "e4", Stages: stages,
			LockInheritance: arm == "pipeline/inherit",
			Instances:       2,
		})
		if err != nil {
			return 0, 0, err
		}
		go pipe.Serve(ctx)

		var wg sync.WaitGroup
		errCh := make(chan error, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{
					ClientID: fmt.Sprintf("client-%d", c), RequestQueue: pipe.EntryQueue(),
				})
				if _, err := clerk.Connect(ctx); err != nil {
					errCh <- err
					return
				}
				for i := 0; i < n/clients; i++ {
					rid := fmt.Sprintf("rid-c%d-%d", c, i)
					if _, err := clerk.Transceive(ctx, rid, nil, nil, nil); err != nil {
						errCh <- err
						return
					}
				}
			}(c)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return 0, 0, err
		default:
		}
	}
	elapsed := time.Since(start).Seconds()
	want := (n / clients) * clients
	return elapsed, want - hotValue(repo), nil
}
