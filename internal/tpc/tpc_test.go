package tpc

import (
	"context"
	"errors"
	"path/filepath"
	"testing"

	"repro/internal/queue"
	"repro/internal/txn"
)

// env is a two-repository world with one coordinator — the smallest
// distributed system the paper's Section 5–6 model needs.
type env struct {
	dirA, dirB, dirC string
	repoA, repoB     *queue.Repository
	coord            *Coordinator
}

func newEnv(t *testing.T) *env {
	t.Helper()
	base := t.TempDir()
	e := &env{
		dirA: filepath.Join(base, "a"),
		dirB: filepath.Join(base, "b"),
		dirC: filepath.Join(base, "coord"),
	}
	e.openAll(t)
	if err := e.repoA.CreateQueue(queue.QueueConfig{Name: "in"}); err != nil {
		t.Fatal(err)
	}
	if err := e.repoB.CreateQueue(queue.QueueConfig{Name: "out"}); err != nil {
		t.Fatal(err)
	}
	return e
}

func (e *env) openAll(t *testing.T) {
	t.Helper()
	var err error
	e.repoA, _, err = queue.Open(e.dirA, queue.Options{NoFsync: true, Name: "repoA"})
	if err != nil {
		t.Fatal(err)
	}
	e.repoB, _, err = queue.Open(e.dirB, queue.Options{NoFsync: true, Name: "repoB"})
	if err != nil {
		t.Fatal(err)
	}
	e.coord, err = OpenCoordinator("coord1", e.dirC, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		e.repoA.Close()
		e.repoB.Close()
		e.coord.Close()
	})
}

// moveElement is the canonical distributed transaction: dequeue from
// repoA/in, enqueue into repoB/out, atomically.
func (e *env) moveElement(t *testing.T) error {
	t.Helper()
	tA := e.repoA.Begin()
	tB := e.repoB.Begin()
	el, err := e.repoA.Dequeue(context.Background(), tA, "in", "", queue.DequeueOpts{})
	if err != nil {
		tA.Abort()
		tB.Abort()
		return err
	}
	if _, err := e.repoB.Enqueue(tB, "out", queue.Element{Body: el.Body}, "", nil); err != nil {
		tA.Abort()
		tB.Abort()
		return err
	}
	g := e.coord.Begin()
	g.Enlist(&LocalBranch{Label: "repoA", Txn: tA})
	g.Enlist(&LocalBranch{Label: "repoB", Txn: tB})
	return g.Commit()
}

func TestCommitAcrossRepositories(t *testing.T) {
	e := newEnv(t)
	if _, err := e.repoA.Enqueue(nil, "in", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if err := e.moveElement(t); err != nil {
		t.Fatal(err)
	}
	if d, _ := e.repoA.Depth("in"); d != 0 {
		t.Fatalf("in depth = %d", d)
	}
	if d, _ := e.repoB.Depth("out"); d != 1 {
		t.Fatalf("out depth = %d", d)
	}
	commits, aborts := e.coord.Stats()
	if commits != 1 || aborts != 0 {
		t.Fatalf("coordinator stats = %d/%d", commits, aborts)
	}
}

func TestAbortRollsBackAllBranches(t *testing.T) {
	e := newEnv(t)
	if _, err := e.repoA.Enqueue(nil, "in", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	tA := e.repoA.Begin()
	tB := e.repoB.Begin()
	if _, err := e.repoA.Dequeue(context.Background(), tA, "in", "", queue.DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.repoB.Enqueue(tB, "out", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	g := e.coord.Begin()
	g.Enlist(&LocalBranch{Label: "a", Txn: tA})
	g.Enlist(&LocalBranch{Label: "b", Txn: tB})
	if err := g.Abort(); err != nil {
		t.Fatal(err)
	}
	if d, _ := e.repoA.Depth("in"); d != 1 {
		t.Fatalf("in depth = %d after abort", d)
	}
	if d, _ := e.repoB.Depth("out"); d != 0 {
		t.Fatalf("out depth = %d after abort", d)
	}
}

func TestPrepareFailureAbortsAll(t *testing.T) {
	e := newEnv(t)
	if _, err := e.repoA.Enqueue(nil, "in", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	tA := e.repoA.Begin()
	if _, err := e.repoA.Dequeue(context.Background(), tA, "in", "", queue.DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	tB := e.repoB.Begin()
	tB.Doom() // will fail at Prepare
	g := e.coord.Begin()
	g.Enlist(&LocalBranch{Label: "a", Txn: tA})
	g.Enlist(&LocalBranch{Label: "b", Txn: tB})
	err := g.Commit()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("commit = %v, want ErrAborted", err)
	}
	// repoA's element is back.
	if d, _ := e.repoA.Depth("in"); d != 1 {
		t.Fatalf("in depth = %d", d)
	}
}

func TestDoubleFinishRejected(t *testing.T) {
	e := newEnv(t)
	g := e.coord.Begin()
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := g.Commit(); !errors.Is(err, ErrDone) {
		t.Fatalf("second commit: %v", err)
	}
	if err := g.Abort(); !errors.Is(err, ErrDone) {
		t.Fatalf("abort after commit: %v", err)
	}
}

func TestGTIDs(t *testing.T) {
	name, seq, ok := SplitGTID("coord1/42")
	if !ok || name != "coord1" || seq != 42 {
		t.Fatalf("SplitGTID = %q %d %v", name, seq, ok)
	}
	if _, _, ok := SplitGTID("malformed"); ok {
		t.Fatal("malformed gtid parsed")
	}
	if _, _, ok := SplitGTID("x/notanumber"); ok {
		t.Fatal("bad seq parsed")
	}
	// Nested name with slashes.
	name, seq, ok = SplitGTID("node/coord/7")
	if !ok || name != "node/coord" || seq != 7 {
		t.Fatalf("nested = %q %d %v", name, seq, ok)
	}
}

// crashAll simulates a whole-system crash: both repositories and the
// coordinator go down; reopen recovers everything.
func (e *env) crashAll(t *testing.T) []txn.InDoubt {
	t.Helper()
	e.repoA.Crash()
	e.repoB.Crash()
	e.coord.Close()
	var err error
	var inA, inB []txn.InDoubt
	e.repoA, inA, err = queue.Open(e.dirA, queue.Options{NoFsync: true, Name: "repoA"})
	if err != nil {
		t.Fatal(err)
	}
	e.repoB, inB, err = queue.Open(e.dirB, queue.Options{NoFsync: true, Name: "repoB"})
	if err != nil {
		t.Fatal(err)
	}
	e.coord, err = OpenCoordinator("coord1", e.dirC, true)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		e.repoA.Close()
		e.repoB.Close()
		e.coord.Close()
	})
	return append(inA, inB...)
}

func TestCrashAfterPrepareBeforeDecisionAborts(t *testing.T) {
	e := newEnv(t)
	if _, err := e.repoA.Enqueue(nil, "in", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	tA := e.repoA.Begin()
	tB := e.repoB.Begin()
	if _, err := e.repoA.Dequeue(context.Background(), tA, "in", "", queue.DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.repoB.Enqueue(tB, "out", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	g := e.coord.Begin()
	gtid := g.GTID()
	// Manually drive phase 1 only, then crash (the coordinator never logs).
	if err := tA.Prepare(gtid); err != nil {
		t.Fatal(err)
	}
	if err := tB.Prepare(gtid); err != nil {
		t.Fatal(err)
	}

	inDoubt := e.crashAll(t)
	if len(inDoubt) != 2 {
		t.Fatalf("in-doubt = %d, want 2", len(inDoubt))
	}
	committed, aborted := ResolveInDoubt(inDoubt, e.coord)
	if committed != 0 || aborted != 2 {
		t.Fatalf("resolution = %d committed / %d aborted, want presumed abort", committed, aborted)
	}
	if d, _ := e.repoA.Depth("in"); d != 1 {
		t.Fatalf("in depth = %d (element lost)", d)
	}
	if d, _ := e.repoB.Depth("out"); d != 0 {
		t.Fatalf("out depth = %d (phantom element)", d)
	}
}

func TestCrashBetweenDecisionAndPhase2(t *testing.T) {
	e := newEnv(t)
	if _, err := e.repoA.Enqueue(nil, "in", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	tA := e.repoA.Begin()
	tB := e.repoB.Begin()
	if _, err := e.repoA.Dequeue(context.Background(), tA, "in", "", queue.DequeueOpts{}); err != nil {
		t.Fatal(err)
	}
	if _, err := e.repoB.Enqueue(tB, "out", queue.Element{Body: []byte("x")}, "", nil); err != nil {
		t.Fatal(err)
	}
	g := e.coord.Begin()
	gtid := g.GTID()
	if err := tA.Prepare(gtid); err != nil {
		t.Fatal(err)
	}
	if err := tB.Prepare(gtid); err != nil {
		t.Fatal(err)
	}
	// Decision: enlist nothing and commit — logs the decision durably for
	// this seq without driving phase 2 (our simulated crash window).
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}

	inDoubt := e.crashAll(t)
	if len(inDoubt) != 2 {
		t.Fatalf("in-doubt = %d, want 2", len(inDoubt))
	}
	committed, aborted := ResolveInDoubt(inDoubt, e.coord)
	if committed != 2 || aborted != 0 {
		t.Fatalf("resolution = %d/%d, want 2 committed", committed, aborted)
	}
	if d, _ := e.repoA.Depth("in"); d != 0 {
		t.Fatalf("in depth = %d", d)
	}
	if d, _ := e.repoB.Depth("out"); d != 1 {
		t.Fatalf("out depth = %d", d)
	}
}

func TestCoordinatorDecisionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCoordinator("c", dir, true)
	if err != nil {
		t.Fatal(err)
	}
	g := c.Begin()
	gtid := g.GTID()
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	g2 := c.Begin()
	gtid2 := g2.GTID()
	_ = g2.Abort()
	c.Close()

	c2, err := OpenCoordinator("c", dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if !c2.Committed(gtid) {
		t.Fatal("committed decision lost")
	}
	if c2.Committed(gtid2) {
		t.Fatal("aborted txn reported committed")
	}
	// Seqs must not be reused.
	g3 := c2.Begin()
	if g3.GTID() == gtid || g3.GTID() == gtid2 {
		t.Fatalf("gtid reused: %s", g3.GTID())
	}
}

func TestRegistry(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCoordinator("coordX", dir, true)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	g := c.Begin()
	gtid := g.GTID()
	if err := g.Commit(); err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	reg.Add("coordX", c)
	if !reg.Committed(gtid) {
		t.Fatal("registry missed decision")
	}
	if reg.Committed("unknown/1") {
		t.Fatal("unknown coordinator presumed commit")
	}
	if reg.Committed("garbage") {
		t.Fatal("malformed gtid presumed commit")
	}
}

func TestReservationFailurePoisonsTransaction(t *testing.T) {
	dir := t.TempDir()
	c, err := OpenCoordinator("c", dir, true)
	if err != nil {
		t.Fatal(err)
	}
	// Exhaust the pre-reserved block's bookkeeping by closing the log:
	// further reservations fail, and transactions started after that must
	// refuse to commit rather than risk reissuing a sequence number.
	c.log.Close()
	// Drain the in-memory ceiling so Begin needs a fresh (failing) block.
	c.mu.Lock()
	c.nextSeq = c.seqCeil
	c.mu.Unlock()
	g := c.Begin()
	err = g.Commit()
	if !errors.Is(err, ErrAborted) {
		t.Fatalf("commit with unreserved seq: %v", err)
	}
}
