// Package tpc implements two-phase commit over the transaction manager's
// prepare/decide interface.
//
// The paper needs distributed transactions when a server's single
// transaction spans queue repositories — dequeue a request from one node's
// queue and enqueue the reply into another's (Sections 5–6). A Coordinator
// drives the protocol with presumed abort: only commit decisions are
// logged durably; a recovering participant whose coordinator has no record
// of its transaction aborts it.
package tpc

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/enc"
	rlog "repro/internal/obs/log"
	"repro/internal/obs/trace"
	"repro/internal/txn"
	"repro/internal/wal"
)

// Errors returned by the coordinator.
var (
	// ErrAborted reports that the global transaction aborted (a participant
	// failed to prepare, or Abort was called).
	ErrAborted = errors.New("tpc: aborted")
	// ErrDone reports reuse of a finished global transaction.
	ErrDone = errors.New("tpc: already finished")
)

// Branch is one participant branch of a global transaction. A local branch
// wraps a *txn.Txn; remote branches would proxy these calls over RPC.
type Branch interface {
	// BranchName identifies the participant (diagnostics).
	BranchName() string
	// Prepare makes the branch's effects stable-but-undecided; after a
	// successful Prepare the branch must be able to commit or abort even
	// across a crash.
	Prepare(coordinator string) error
	// CommitPrepared finalises a prepared branch with a commit.
	CommitPrepared() error
	// AbortPrepared finalises a prepared branch with an abort.
	AbortPrepared() error
	// Abort rolls back an unprepared branch.
	Abort() error
}

// LocalBranch adapts a local transaction to the Branch interface.
type LocalBranch struct {
	Label string
	Txn   *txn.Txn
}

// BranchName implements Branch.
func (b *LocalBranch) BranchName() string { return b.Label }

// Prepare implements Branch.
func (b *LocalBranch) Prepare(coordinator string) error { return b.Txn.Prepare(coordinator) }

// CommitPrepared implements Branch.
func (b *LocalBranch) CommitPrepared() error { return b.Txn.CommitPrepared() }

// AbortPrepared implements Branch.
func (b *LocalBranch) AbortPrepared() error { return b.Txn.AbortPrepared() }

// Abort implements Branch.
func (b *LocalBranch) Abort() error { return b.Txn.Abort() }

// Coordinator log record types.
const (
	recCommitDecision uint8 = 1
	// recSeqFloor reserves a block of sequence numbers: after recovery the
	// next gtid starts at the floor, so the seq of an aborted (never
	// logged, presumed abort) transaction is never reissued — a reissued
	// seq could wrongly commit an old in-doubt prepare.
	recSeqFloor uint8 = 2
)

// seqBlock is how many sequence numbers each floor record reserves.
const seqBlock = 4096

// Coordinator assigns global transaction ids and durably records commit
// decisions. Its name must be system-wide unique; participants store
// "<name>/<gtid-seq>" in their prepare records and route recovery queries
// back by name.
type Coordinator struct {
	name string
	log  *wal.Log

	mu        sync.Mutex
	nextSeq   uint64
	seqCeil   uint64          // reserved up to (exclusive)
	decisions map[uint64]bool // seq -> committed (presumed abort: only true stored)
	tracer    *trace.Tracer   // nil-safe; records tpc.commit spans
	logger    *rlog.Logger    // nil-safe; decision/abort events

	commits uint64
	aborts  uint64
}

// SetLogger installs the logger recording commit decisions and phase-2
// failures (nil disables).
func (c *Coordinator) SetLogger(l *rlog.Logger) {
	c.mu.Lock()
	c.logger = l.Named("tpc")
	c.mu.Unlock()
}

func (c *Coordinator) getLogger() *rlog.Logger {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.logger
}

// SetTracer installs the tracer recording two-phase-commit spans for
// traced global transactions (nil disables).
func (c *Coordinator) SetTracer(tr *trace.Tracer) {
	c.mu.Lock()
	c.tracer = tr
	c.mu.Unlock()
}

func (c *Coordinator) getTracer() *trace.Tracer {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tracer
}

// OpenCoordinator opens (or creates) a coordinator named name with its
// decision log in dir.
func OpenCoordinator(name, dir string, noFsync bool) (*Coordinator, error) {
	log, err := wal.Open(dir, wal.Options{NoFsync: noFsync})
	if err != nil {
		return nil, err
	}
	c := &Coordinator{name: name, log: log, nextSeq: 1, decisions: make(map[uint64]bool)}
	recs, err := log.ReadFrom(1)
	if err != nil {
		log.Close()
		return nil, err
	}
	for _, rec := range recs {
		r := enc.NewReader(rec.Payload)
		seq := r.Uvarint()
		if r.Err() != nil {
			continue
		}
		switch rec.Type {
		case recCommitDecision:
			c.decisions[seq] = true
			if seq >= c.nextSeq {
				c.nextSeq = seq + 1
			}
		case recSeqFloor:
			if seq > c.nextSeq {
				c.nextSeq = seq
			}
		}
	}
	return c, nil
}

// reserveLocked ensures nextSeq is inside a durably reserved block.
func (c *Coordinator) reserveLocked() error {
	if c.nextSeq < c.seqCeil {
		return nil
	}
	ceil := c.nextSeq + seqBlock
	b := enc.NewBuffer(12)
	b.Uvarint(ceil)
	if _, err := c.log.Append(recSeqFloor, b.Bytes()); err != nil {
		return err
	}
	c.seqCeil = ceil
	return nil
}

// Name returns the coordinator's unique name.
func (c *Coordinator) Name() string { return c.name }

// Log exposes the decision log (stats).
func (c *Coordinator) Log() *wal.Log { return c.log }

// Close closes the decision log.
func (c *Coordinator) Close() error { return c.log.Close() }

// Stats returns commit/abort counters since open.
func (c *Coordinator) Stats() (commits, aborts uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.commits, c.aborts
}

// GlobalTxn is one global transaction.
type GlobalTxn struct {
	c        *Coordinator
	seq      uint64
	branches []Branch
	done     bool
	// reserveErr poisons the transaction when its sequence number could
	// not be durably reserved: committing with an unreserved seq could
	// reissue it after a crash and wrongly resolve an old in-doubt
	// prepare. Commit refuses and aborts instead.
	reserveErr error
	ref        trace.Ref // request trace driving this global transaction
}

// SetTrace attaches the driving request's trace context; Commit then
// records a "tpc.commit" span (gtid, branch count, outcome) under it.
func (g *GlobalTxn) SetTrace(ref trace.Ref) { g.ref = ref }

// Begin starts a global transaction. Its sequence number comes from a
// durably reserved block, so it can never be reissued after a crash.
func (c *Coordinator) Begin() *GlobalTxn {
	c.mu.Lock()
	err := c.reserveLocked()
	seq := c.nextSeq
	c.nextSeq++
	c.mu.Unlock()
	return &GlobalTxn{c: c, seq: seq, reserveErr: err}
}

// GTID returns the transaction's global id ("<coordinator>/<seq>").
func (g *GlobalTxn) GTID() string { return fmt.Sprintf("%s/%d", g.c.name, g.seq) }

// Enlist adds a branch. All branches must be enlisted before Commit.
func (g *GlobalTxn) Enlist(b Branch) { g.branches = append(g.branches, b) }

// Commit runs two-phase commit: prepare every branch; durably log the
// commit decision; then commit every branch. If any prepare fails, every
// branch aborts and ErrAborted is returned (wrapping the cause).
func (g *GlobalTxn) Commit() error {
	if g.done {
		return ErrDone
	}
	g.done = true
	tr := g.c.getTracer()
	outcome := "abort"
	sp, traced := tr.Begin(g.ref, "tpc.commit")
	if traced {
		sp.Annotate(trace.Str("gtid", g.GTID()), trace.Int64("branches", int64(len(g.branches))))
		defer func() {
			sp.Annotate(trace.Str("outcome", outcome))
			tr.Finish(&sp)
		}()
	}
	if g.reserveErr != nil {
		for _, b := range g.branches {
			_ = b.Abort()
		}
		g.c.mu.Lock()
		g.c.aborts++
		g.c.mu.Unlock()
		return fmt.Errorf("%w: seq reservation: %v", ErrAborted, g.reserveErr)
	}
	// Phase 1: prepare.
	for i, b := range g.branches {
		if err := b.Prepare(g.GTID()); err != nil {
			// Branch i failed (and rolled itself back). Abort the prepared
			// prefix and the unprepared suffix.
			for j, other := range g.branches {
				if j < i {
					_ = other.AbortPrepared()
				} else if j > i {
					_ = other.Abort()
				}
			}
			g.c.mu.Lock()
			g.c.aborts++
			g.c.mu.Unlock()
			return fmt.Errorf("%w: prepare %s: %v", ErrAborted, b.BranchName(), err)
		}
	}
	// Decision point: durable commit record.
	buf := enc.NewBuffer(12)
	buf.Uvarint(g.seq)
	if _, err := g.c.log.Append(recCommitDecision, buf.Bytes()); err != nil {
		// Decision not durable: presumed abort.
		for _, b := range g.branches {
			_ = b.AbortPrepared()
		}
		g.c.mu.Lock()
		g.c.aborts++
		g.c.mu.Unlock()
		g.c.getLogger().Error("commit decision not durable; presumed abort",
			rlog.Uint64("seq", g.seq), rlog.Err(err))
		return fmt.Errorf("%w: decision log: %v", ErrAborted, err)
	}
	g.c.mu.Lock()
	g.c.decisions[g.seq] = true
	g.c.commits++
	g.c.mu.Unlock()
	outcome = "commit"
	// Phase 2: commit. Failures here are participant-local; the decision
	// stands and recovery will finish the job.
	for _, b := range g.branches {
		_ = b.CommitPrepared()
	}
	return nil
}

// Abort rolls back every branch without logging (presumed abort).
func (g *GlobalTxn) Abort() error {
	if g.done {
		return ErrDone
	}
	g.done = true
	for _, b := range g.branches {
		_ = b.Abort()
	}
	g.c.mu.Lock()
	g.c.aborts++
	g.c.mu.Unlock()
	return nil
}

// Committed answers a recovery query: did the global transaction with this
// gtid commit? Unknown gtids are presumed aborted.
func (c *Coordinator) Committed(gtid string) bool {
	name, seq, ok := SplitGTID(gtid)
	if !ok || name != c.name {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.decisions[seq]
}

// SplitGTID parses "<coordinator>/<seq>".
func SplitGTID(gtid string) (name string, seq uint64, ok bool) {
	i := strings.LastIndexByte(gtid, '/')
	if i < 0 {
		return "", 0, false
	}
	n, err := strconv.ParseUint(gtid[i+1:], 10, 64)
	if err != nil {
		return "", 0, false
	}
	return gtid[:i], n, true
}

// Resolver answers whether a gtid committed; a Coordinator is one, and a
// registry of coordinators is another.
type Resolver interface {
	Committed(gtid string) bool
}

// ResolveInDoubt finishes recovered in-doubt transactions: each one is
// committed if its coordinator's decision log says so, otherwise aborted
// (presumed abort). It returns the counts.
func ResolveInDoubt(inDoubt []txn.InDoubt, r Resolver) (committed, aborted int) {
	for _, d := range inDoubt {
		if r.Committed(d.Coordinator) {
			if err := d.Txn.CommitPrepared(); err == nil {
				committed++
			}
		} else {
			if err := d.Txn.AbortPrepared(); err == nil {
				aborted++
			}
		}
	}
	return committed, aborted
}

// Registry maps coordinator names to resolvers, so a node hosting several
// coordinators (or proxies to remote ones) can resolve any gtid.
type Registry struct {
	mu sync.RWMutex
	m  map[string]Resolver
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{m: make(map[string]Resolver)} }

// Add registers a resolver under its coordinator name.
func (r *Registry) Add(name string, res Resolver) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.m[name] = res
}

// Committed implements Resolver: unknown coordinators presume abort.
func (r *Registry) Committed(gtid string) bool {
	name, _, ok := SplitGTID(gtid)
	if !ok {
		return false
	}
	r.mu.RLock()
	res := r.m[name]
	r.mu.RUnlock()
	if res == nil {
		return false
	}
	return res.Committed(gtid)
}
