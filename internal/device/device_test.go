package device

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/queue"
)

func TestTicketPrinter(t *testing.T) {
	p := NewTicketPrinter()
	if p.State() != "1" {
		t.Fatalf("initial state %q", p.State())
	}
	if s := p.Print("first"); s != 1 {
		t.Fatalf("serial %d", s)
	}
	if s := p.Print("second"); s != 2 {
		t.Fatalf("serial %d", s)
	}
	if p.State() != "3" || p.Count() != 2 {
		t.Fatalf("state %q count %d", p.State(), p.Count())
	}
	printed := p.Printed()
	if printed[0] != "#1 first" || printed[1] != "#2 second" {
		t.Fatalf("printed %v", printed)
	}
}

func TestCashDispenser(t *testing.T) {
	d := NewCashDispenser()
	d.Dispense(100)
	d.Dispense(50)
	if d.Total() != 150 || d.Events() != 2 || d.State() != "150" {
		t.Fatalf("total=%d events=%d state=%q", d.Total(), d.Events(), d.State())
	}
}

func TestGuardDetectsProcessedReply(t *testing.T) {
	p := NewTicketPrinter()
	g := &ExactlyOnceGuard{Device: p}
	ck := g.Ckpt()
	if g.AlreadyProcessed(ck) {
		t.Fatal("fresh ckpt reported processed")
	}
	p.Print("the ticket")
	if !g.AlreadyProcessed(ck) {
		t.Fatal("printed ticket not detected")
	}
	if g.AlreadyProcessed(nil) {
		t.Fatal("empty ckpt reported processed")
	}
}

// TestExactlyOnceTicketPrintingUnderCrashes is the full Section 3
// scenario: a client prints one ticket per reply on a non-idempotent
// printer, crashing randomly after receive and after processing. The
// ckpt/testable-device protocol must yield exactly one physical ticket per
// request despite at-least-once reply processing.
func TestExactlyOnceTicketPrintingUnderCrashes(t *testing.T) {
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	srv, err := core.NewServer(core.ServerConfig{Repo: repo, Queue: "req", Handler: func(rc *core.ReqCtx) ([]byte, error) {
		return []byte("ticket for " + rc.Request.RID), nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go srv.Serve(ctx)

	printer := NewTicketPrinter()
	guard := &ExactlyOnceGuard{Device: printer}
	const total = 20

	// The ticket client: like core.SequentialClient but with the testable-
	// device ckpt discipline, hand-rolled because the ckpt must be read
	// from the device immediately before each Receive.
	crash := chaos.NewPoints(2024)
	crash.FailWithProb("afterReceive", 0.25, 0)
	crash.FailWithProb("afterPrint", 0.25, 0)

	crashes := 0
	for {
		err := func() error {
			clerk := core.NewClerk(&core.LocalConn{Repo: repo}, core.ClerkConfig{ClientID: "ticketc", RequestQueue: "req"})
			info, err := clerk.Connect(ctx)
			if err != nil {
				return err
			}
			next := 0
			if info.SRID != "" {
				fmt.Sscanf(info.SRID, "rid-%d", &next)
				if info.Outstanding {
					// Reply never received: receive it with a fresh device
					// checkpoint and print.
					rep, err := clerk.Receive(ctx, guard.Ckpt())
					if err != nil {
						return err
					}
					if crash.Hit("afterReceive") {
						return core.ErrCrashed
					}
					printer.Print(string(rep.Body))
					if crash.Hit("afterPrint") {
						return core.ErrCrashed
					}
				} else if !guard.AlreadyProcessed(info.Ckpt) {
					// Reply received before the crash but the ticket was
					// never printed: print from the retained reply.
					rep, err := clerk.Rereceive(ctx)
					if err != nil {
						return err
					}
					printer.Print(string(rep.Body))
					if crash.Hit("afterPrint") {
						return core.ErrCrashed
					}
				}
				// else: the device state moved past the ckpt — the ticket
				// was printed; do NOT print again.
				next++
			}
			for i := next; i < total; i++ {
				rid := fmt.Sprintf("rid-%06d", i)
				if err := clerk.Send(ctx, rid, []byte("seat"), nil); err != nil {
					return err
				}
				rep, err := clerk.Receive(ctx, guard.Ckpt())
				if err != nil {
					return err
				}
				if crash.Hit("afterReceive") {
					return core.ErrCrashed
				}
				printer.Print(string(rep.Body))
				if crash.Hit("afterPrint") {
					return core.ErrCrashed
				}
			}
			return nil
		}()
		if err == nil {
			break
		}
		if err == core.ErrCrashed {
			crashes++
			continue
		}
		t.Fatal(err)
	}
	if crashes == 0 {
		t.Fatal("no crashes fired; test is vacuous")
	}
	t.Logf("survived %d crashes", crashes)
	if printer.Count() != total {
		t.Fatalf("printed %d tickets for %d requests — duplicates or losses", printer.Count(), total)
	}
}
