// Package device simulates the non-idempotent output devices of the
// paper's exactly-once reply-processing discussion (Section 3, citing
// Pausch 88): a ticket printer and a cash dispenser. Both are *testable*
// devices — the client can read the device's state (the next ticket
// serial, the dispensed total) before receiving a reply, record that state
// in the Receive's ckpt parameter, and compare at recovery: "if they don't
// match, then it knows the reply was already processed".
package device

import (
	"fmt"
	"strconv"
	"sync"
)

// TicketPrinter prints serially numbered tickets. Printing is
// non-idempotent: the same logical ticket printed twice produces two
// physical tickets — the failure the ckpt protocol exists to prevent.
type TicketPrinter struct {
	mu      sync.Mutex
	next    int
	printed []string
}

// NewTicketPrinter starts at serial 1.
func NewTicketPrinter() *TicketPrinter { return &TicketPrinter{next: 1} }

// State returns the device-readable state: the serial the next Print will
// use. This is the "testable device" read.
func (p *TicketPrinter) State() string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return strconv.Itoa(p.next)
}

// Print emits a ticket and advances the serial.
func (p *TicketPrinter) Print(text string) (serial int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	serial = p.next
	p.next++
	p.printed = append(p.printed, fmt.Sprintf("#%d %s", serial, text))
	return serial
}

// Printed returns every ticket ever printed (test inspection).
func (p *TicketPrinter) Printed() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.printed...)
}

// Count returns how many tickets have been printed.
func (p *TicketPrinter) Count() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.printed)
}

// CashDispenser dispenses money; its testable state is the running total
// dispensed.
type CashDispenser struct {
	mu        sync.Mutex
	dispensed int
	events    int
}

// NewCashDispenser returns an empty dispenser.
func NewCashDispenser() *CashDispenser { return &CashDispenser{} }

// State returns the total dispensed so far, as the device-readable state.
func (d *CashDispenser) State() string {
	d.mu.Lock()
	defer d.mu.Unlock()
	return strconv.Itoa(d.dispensed)
}

// Dispense pays out amount.
func (d *CashDispenser) Dispense(amount int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dispensed += amount
	d.events++
}

// Total returns the amount dispensed.
func (d *CashDispenser) Total() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.dispensed
}

// Events returns how many dispense operations occurred.
func (d *CashDispenser) Events() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.events
}

// Testable is the common surface of a testable device: its state register.
type Testable interface {
	State() string
}

var (
	_ Testable = (*TicketPrinter)(nil)
	_ Testable = (*CashDispenser)(nil)
)

// ExactlyOnceGuard implements the Section 3 protocol around a testable
// device: read the device state before Receive, store it in the ckpt, and
// at recovery compare the recovered ckpt with the device's current state —
// unequal means the reply was already processed and must not be processed
// again.
type ExactlyOnceGuard struct {
	Device Testable
}

// Ckpt returns the checkpoint to attach to a Receive: the device state
// read just before receiving.
func (g *ExactlyOnceGuard) Ckpt() []byte { return []byte(g.Device.State()) }

// AlreadyProcessed reports whether the reply guarded by the recovered
// ckpt was already processed: the device state moved past the checkpoint.
func (g *ExactlyOnceGuard) AlreadyProcessed(recoveredCkpt []byte) bool {
	if len(recoveredCkpt) == 0 {
		return false
	}
	return g.Device.State() != string(recoveredCkpt)
}
