package chaos

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/rpc"
)

func TestFailOnNth(t *testing.T) {
	p := NewPoints(1)
	p.FailOnNth("x", 3)
	results := []bool{p.Hit("x"), p.Hit("x"), p.Hit("x"), p.Hit("x")}
	want := []bool{false, false, true, false}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("hit %d = %v, want %v", i+1, results[i], want[i])
		}
	}
	if p.Hits("x") != 4 || p.Fired("x") != 1 {
		t.Fatalf("hits=%d fired=%d", p.Hits("x"), p.Fired("x"))
	}
}

func TestFailWithProbLimit(t *testing.T) {
	p := NewPoints(7)
	p.FailWithProb("y", 1.0, 2)
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Hit("y") {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (limit)", fired)
	}
}

func TestProbZeroNeverFires(t *testing.T) {
	p := NewPoints(7)
	p.FailWithProb("z", 0, 0)
	for i := 0; i < 100; i++ {
		if p.Hit("z") {
			t.Fatal("p=0 fired")
		}
	}
}

func TestProbIsDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewPoints(42)
		p.FailWithProb("d", 0.5, 0)
		out := make([]bool, 20)
		for i := range out {
			out[i] = p.Hit("d")
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestClearAndUnruledPoints(t *testing.T) {
	p := NewPoints(1)
	if p.Hit("unknown") {
		t.Fatal("unruled point fired")
	}
	p.FailOnNth("a", 1)
	p.Clear("a")
	if p.Hit("a") {
		t.Fatal("cleared point fired")
	}
	if p.TotalFired() != 0 {
		t.Fatal("TotalFired nonzero")
	}
}

func TestDialRefusal(t *testing.T) {
	n := NewNetwork(1)
	n.SetDialFailProb(1.0)
	d := n.Dialer(nil)
	if _, err := d("127.0.0.1:1"); err == nil {
		t.Fatal("dial succeeded under 100% refusal")
	}
}

func TestPartitionSeversAndHeals(t *testing.T) {
	srv := rpc.NewServer()
	srv.Handle("ping", func(p []byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := NewNetwork(5)
	c := rpc.NewClient(addr, rpc.Dialer(n.Dialer(nil)))
	defer c.Close()
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	n.Partition(true)
	if _, err := c.Call(context.Background(), "ping", nil); err == nil {
		t.Fatal("call succeeded across partition")
	}
	n.Partition(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call(context.Background(), "ping", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after heal")
		}
	}
}

func TestCutProbSeversMidStream(t *testing.T) {
	srv := rpc.NewServer()
	srv.Handle("ping", func(p []byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := NewNetwork(99)
	n.SetCutProb(1.0)
	c := rpc.NewClient(addr, rpc.Dialer(n.Dialer(nil)))
	defer c.Close()
	if _, err := c.Call(context.Background(), "ping", nil); err == nil {
		t.Fatal("call survived 100% cut probability")
	}
	// Heal and verify recovery (redial creates a fresh conn).
	n.SetCutProb(0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call(context.Background(), "ping", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after cuts stopped")
		}
	}
}

func TestFaultConnImplementsNetConn(t *testing.T) {
	var _ net.Conn = (*faultConn)(nil)
}
