package chaos

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/rpc"
)

func TestFailOnNth(t *testing.T) {
	p := NewPoints(1)
	p.FailOnNth("x", 3)
	results := []bool{p.Hit("x"), p.Hit("x"), p.Hit("x"), p.Hit("x")}
	want := []bool{false, false, true, false}
	for i := range want {
		if results[i] != want[i] {
			t.Fatalf("hit %d = %v, want %v", i+1, results[i], want[i])
		}
	}
	if p.Hits("x") != 4 || p.Fired("x") != 1 {
		t.Fatalf("hits=%d fired=%d", p.Hits("x"), p.Fired("x"))
	}
}

func TestFailWithProbLimit(t *testing.T) {
	p := NewPoints(7)
	p.FailWithProb("y", 1.0, 2)
	fired := 0
	for i := 0; i < 10; i++ {
		if p.Hit("y") {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 (limit)", fired)
	}
}

func TestProbZeroNeverFires(t *testing.T) {
	p := NewPoints(7)
	p.FailWithProb("z", 0, 0)
	for i := 0; i < 100; i++ {
		if p.Hit("z") {
			t.Fatal("p=0 fired")
		}
	}
}

func TestProbIsDeterministic(t *testing.T) {
	run := func() []bool {
		p := NewPoints(42)
		p.FailWithProb("d", 0.5, 0)
		out := make([]bool, 20)
		for i := range out {
			out[i] = p.Hit("d")
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
}

func TestClearAndUnruledPoints(t *testing.T) {
	p := NewPoints(1)
	if p.Hit("unknown") {
		t.Fatal("unruled point fired")
	}
	p.FailOnNth("a", 1)
	p.Clear("a")
	if p.Hit("a") {
		t.Fatal("cleared point fired")
	}
	if p.TotalFired() != 0 {
		t.Fatal("TotalFired nonzero")
	}
}

func TestDialRefusal(t *testing.T) {
	n := NewNetwork(1)
	n.SetDialFailProb(1.0)
	d := n.Dialer(nil)
	if _, err := d("127.0.0.1:1"); err == nil {
		t.Fatal("dial succeeded under 100% refusal")
	}
}

func TestPartitionSeversAndHeals(t *testing.T) {
	srv := rpc.NewServer()
	srv.Handle("ping", func(p []byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := NewNetwork(5)
	c := rpc.NewClient(addr, rpc.Dialer(n.Dialer(nil)))
	defer c.Close()
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	n.Partition(true)
	if _, err := c.Call(context.Background(), "ping", nil); err == nil {
		t.Fatal("call succeeded across partition")
	}
	n.Partition(false)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call(context.Background(), "ping", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after heal")
		}
	}
}

func TestCutProbSeversMidStream(t *testing.T) {
	srv := rpc.NewServer()
	srv.Handle("ping", func(p []byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := NewNetwork(99)
	n.SetCutProb(1.0)
	c := rpc.NewClient(addr, rpc.Dialer(n.Dialer(nil)))
	defer c.Close()
	if _, err := c.Call(context.Background(), "ping", nil); err == nil {
		t.Fatal("call survived 100% cut probability")
	}
	// Heal and verify recovery (redial creates a fresh conn).
	n.SetCutProb(0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call(context.Background(), "ping", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after cuts stopped")
		}
	}
}

func TestFaultConnImplementsNetConn(t *testing.T) {
	var _ net.Conn = (*faultConn)(nil)
}

func TestReadCutSeversWithoutDelivering(t *testing.T) {
	srv := rpc.NewServer()
	srv.Handle("ping", func(p []byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := NewNetwork(17)
	n.SetReadCutProb(1.0)
	c := rpc.NewClient(addr, rpc.Dialer(n.Dialer(nil)))
	defer c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	// The request is written cleanly; the reply is lost on the read path,
	// so the call must fail (dropped conn), not hang.
	if _, err := c.Call(ctx, "ping", nil); err == nil {
		t.Fatal("call survived 100% read-cut probability")
	}
	n.SetReadCutProb(0)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if _, err := c.Call(context.Background(), "ping", nil); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("client never recovered after read cuts stopped")
		}
	}
}

// TestSetDelayAddsLatency: a fixed read delay slows every round trip by
// at least the configured amount without losing data.
func TestSetDelayAddsLatency(t *testing.T) {
	srv := rpc.NewServer()
	srv.Handle("ping", func(p []byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := NewNetwork(11)
	c := rpc.NewClient(addr, rpc.Dialer(n.Dialer(nil)))
	defer c.Close()
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	if got := n.Delays(); got != 0 {
		t.Fatalf("Delays() = %d before any delay configured, want 0", got)
	}

	const d = 30 * time.Millisecond
	n.SetDelay(d)
	start := time.Now()
	reply, err := c.Call(context.Background(), "ping", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(reply) != "pong" {
		t.Fatalf("reply = %q, want pong (delay must not corrupt data)", reply)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("round trip %v under a %v read delay", elapsed, d)
	}
	if got := n.Delays(); got == 0 {
		t.Fatal("Delays() = 0 after delayed round trip")
	}

	// Clearing the delay restores fast round trips.
	n.SetDelay(0)
	start = time.Now()
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed >= d {
		t.Fatalf("round trip %v after clearing delay, want < %v", elapsed, d)
	}
}

// TestStragglerProbInjectsTail: p=1 delays every read; p=0 never does.
// The probabilistic middle ground is exercised (and made deterministic)
// by the seeded rng, same as the cut-probability knobs.
func TestStragglerProbInjectsTail(t *testing.T) {
	srv := rpc.NewServer()
	srv.Handle("ping", func(p []byte) ([]byte, error) { return []byte("pong"), nil })
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	n := NewNetwork(23)
	c := rpc.NewClient(addr, rpc.Dialer(n.Dialer(nil)))
	defer c.Close()

	const d = 30 * time.Millisecond
	n.SetStragglerProb(1.0, d)
	start := time.Now()
	if _, err := c.Call(context.Background(), "ping", nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < d {
		t.Fatalf("round trip %v under p=1 straggler of %v", elapsed, d)
	}

	n.SetStragglerProb(0, d)
	before := n.Delays()
	for i := 0; i < 5; i++ {
		if _, err := c.Call(context.Background(), "ping", nil); err != nil {
			t.Fatal(err)
		}
	}
	if got := n.Delays(); got != before {
		t.Fatalf("Delays() grew %d→%d with p=0", before, got)
	}
}

// TestConnsPrunedOnCloseAndCut: the tracking map must not leak dead
// connections — closed, cut, or partitioned conns all drop out of the
// Conns() gauge.
func TestConnsPrunedOnCloseAndCut(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		for {
			c, err := lis.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) { // discard everything
				buf := make([]byte, 4096)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(c)
		}
	}()

	n := NewNetwork(3)
	d := n.Dialer(nil)
	addr := lis.Addr().String()

	// Graceful close prunes.
	for i := 0; i < 10; i++ {
		c, err := d(addr)
		if err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	if got := n.Conns(); got != 0 {
		t.Fatalf("Conns() = %d after closing all, want 0", got)
	}

	// A write cut prunes.
	n.SetCutProb(1.0)
	c, err := d(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write survived 100% cut")
	}
	if got := n.Conns(); got != 0 {
		t.Fatalf("Conns() = %d after cut, want 0", got)
	}
	n.SetCutProb(0)

	// A partition prunes everything at once.
	var conns []net.Conn
	for i := 0; i < 5; i++ {
		c, err := d(addr)
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	if got := n.Conns(); got != 5 {
		t.Fatalf("Conns() = %d with 5 live conns, want 5", got)
	}
	n.Partition(true)
	if got := n.Conns(); got != 0 {
		t.Fatalf("Conns() = %d after partition, want 0", got)
	}
	n.Partition(false)
	for _, c := range conns {
		c.Close() // idempotent; already severed
	}
}
