// Package walfault is a crash-fault file layer for the write-ahead log.
//
// It implements wal.VFS, interposing on the log's segment writes to model
// what a real power failure does to an append-only file:
//
//   - Data reaches "stable storage" only at Sync. Everything written
//     after the last Sync is the *unsynced suffix*; a crash may keep any
//     prefix of it, including a torn final write and corrupted bytes in
//     partially-written sectors.
//   - Sync here only advances the durability watermark — no physical
//     fsync is issued — so torture tests get crash-accurate semantics at
//     memory speed.
//
// A test arms a failure with FailAfterWrites, runs load until the
// injected failure fires (the log's writer goroutine sees a write error
// and poisons itself), then calls Crash to materialize a randomly torn
// post-crash state onto the real files and reopens the log over them.
// The layer is reusable for anything that writes through wal.VFS —
// future replica logs and snapshot writers included.
package walfault

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"

	"repro/internal/wal"
)

// ErrInjected is the error returned by writes and syncs after the armed
// failure point has been reached.
var ErrInjected = errors.New("walfault: injected write failure")

// FS is a crash-fault wal.VFS. All methods are safe for concurrent use;
// randomness is driven by the seed passed to New, so a failing torture
// iteration reproduces from its logged seed.
type FS struct {
	mu        sync.Mutex
	rng       *rand.Rand
	files     map[string]*fileState
	remaining int  // successful writes left before failure; <0 = disarmed
	failed    bool // the injected failure has fired
	writes    int
	syncs     int
	crashed   bool
	dropped   int64 // bytes discarded by Crash
}

type fileState struct {
	path   string
	size   int64 // bytes written through this layer
	synced int64 // durability watermark: survives Crash intact
}

// New returns a crash-fault VFS driven by the given seed.
func New(seed int64) *FS {
	return &FS{
		rng:       rand.New(rand.NewSource(seed)),
		files:     make(map[string]*fileState),
		remaining: -1,
	}
}

// OpenAppend implements wal.VFS. Content already on disk at open time is
// treated as synced: it survived whatever came before.
func (fs *FS) OpenAppend(path string) (wal.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	fs.mu.Lock()
	st, ok := fs.files[path]
	if !ok {
		st = &fileState{path: path, size: fi.Size(), synced: fi.Size()}
		fs.files[path] = st
	}
	fs.mu.Unlock()
	return &file{fs: fs, f: f, st: st}, nil
}

// FailAfterWrites arms the injector: the next n Write calls succeed,
// after which every Write and Sync fails with ErrInjected (the final
// failing write still lands a random torn prefix, as a dying kernel
// would).
func (fs *FS) FailAfterWrites(n int) {
	fs.mu.Lock()
	fs.remaining = n
	fs.mu.Unlock()
}

// Failed reports whether the armed failure has fired.
func (fs *FS) Failed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.failed
}

// Writes returns the number of Write calls observed (successful or not).
func (fs *FS) Writes() int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.writes
}

// DroppedBytes returns how many bytes Crash discarded or corrupted.
func (fs *FS) DroppedBytes() int64 {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.dropped
}

// Crash materializes a post-crash state onto the real files: for every
// file opened through this layer, a random amount of the unsynced suffix
// is discarded, and with probability 1/2 one byte of a surviving
// unsynced region is flipped (a torn sector). Synced data is never
// touched. Call it after the log over this layer has been closed.
func (fs *FS) Crash() error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashed = true
	for _, st := range fs.files {
		fi, err := os.Stat(st.path)
		if err != nil {
			if os.IsNotExist(err) {
				continue // retired by TruncateBefore
			}
			return fmt.Errorf("walfault: crash stat: %w", err)
		}
		size := fi.Size()
		if size < st.synced {
			return fmt.Errorf("walfault: %s shrank below its synced watermark (%d < %d)",
				st.path, size, st.synced)
		}
		unsynced := size - st.synced
		if unsynced == 0 {
			continue
		}
		keep := st.synced + fs.rng.Int63n(unsynced+1)
		if err := os.Truncate(st.path, keep); err != nil {
			return fmt.Errorf("walfault: crash truncate: %w", err)
		}
		fs.dropped += size - keep
		if surviving := keep - st.synced; surviving > 0 && fs.rng.Intn(2) == 0 {
			off := st.synced + fs.rng.Int63n(surviving)
			if err := flipByte(st.path, off); err != nil {
				return err
			}
			fs.dropped++
		}
	}
	return nil
}

func flipByte(path string, off int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("walfault: corrupt open: %w", err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		return fmt.Errorf("walfault: corrupt read: %w", err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		return fmt.Errorf("walfault: corrupt write: %w", err)
	}
	return nil
}

// file is one append handle over the real file.
type file struct {
	fs *FS
	f  *os.File
	st *fileState
}

func (w *file) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	w.fs.writes++
	if w.fs.failed {
		w.fs.mu.Unlock()
		return 0, ErrInjected
	}
	if w.fs.remaining == 0 {
		// The failure point: the write that was in flight when the
		// machine died may have landed any prefix.
		w.fs.failed = true
		torn := w.fs.rng.Intn(len(p) + 1)
		w.fs.mu.Unlock()
		n, _ := w.f.Write(p[:torn])
		w.fs.mu.Lock()
		w.st.size += int64(n)
		w.fs.mu.Unlock()
		return n, ErrInjected
	}
	if w.fs.remaining > 0 {
		w.fs.remaining--
	}
	w.fs.mu.Unlock()
	n, err := w.f.Write(p)
	w.fs.mu.Lock()
	w.st.size += int64(n)
	w.fs.mu.Unlock()
	return n, err
}

// Sync advances the durability watermark without a physical fsync: from
// here on, Crash preserves everything written so far.
func (w *file) Sync() error {
	w.fs.mu.Lock()
	defer w.fs.mu.Unlock()
	w.fs.syncs++
	if w.fs.failed {
		return ErrInjected
	}
	w.st.synced = w.st.size
	return nil
}

func (w *file) Close() error { return w.f.Close() }

var _ wal.VFS = (*FS)(nil)
