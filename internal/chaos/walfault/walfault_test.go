package walfault

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/wal"
)

// TestAckedPrefixSurvivesCrash drives the group-commit log directly over
// the fault layer across many seeds: every LSN whose SyncTo returned must
// be readable after a materialized crash, and the recovered log must be a
// clean record sequence (torn suffixes truncated, never surfaced).
func TestAckedPrefixSurvivesCrash(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		dir := t.TempDir()
		fs := New(seed)
		l, err := wal.Open(dir, wal.Options{Sync: wal.SyncGroup, FS: fs, SegmentSize: 512})
		if err != nil {
			t.Fatalf("seed %d: open: %v", seed, err)
		}
		fs.FailAfterWrites(int(seed % 7))
		var acked wal.LSN
		for i := 0; ; i++ {
			lsn, err := l.Append(1, []byte(fmt.Sprintf("record-%d", i)))
			if err == nil {
				err = l.SyncTo(lsn)
			}
			if err != nil {
				if !errors.Is(err, ErrInjected) {
					t.Fatalf("seed %d: unexpected error class: %v", seed, err)
				}
				break
			}
			acked = lsn
		}
		l.Close()
		if err := fs.Crash(); err != nil {
			t.Fatalf("seed %d: crash: %v", seed, err)
		}

		l2, err := wal.Open(dir, wal.Options{NoFsync: true})
		if err != nil {
			t.Fatalf("seed %d: recovery open: %v", seed, err)
		}
		recs, err := l2.ReadFrom(1)
		if err != nil {
			t.Fatalf("seed %d: recovery read: %v", seed, err)
		}
		l2.Close()
		var last wal.LSN
		for i, r := range recs {
			if r.LSN != wal.LSN(i+1) {
				t.Fatalf("seed %d: recovered sequence has a hole at %d (lsn %d)", seed, i, r.LSN)
			}
			last = r.LSN
		}
		if last < acked {
			t.Fatalf("seed %d: acked lsn %d lost; recovered through %d", seed, acked, last)
		}
	}
}

// TestSyncIsTheWatermark pins the layer's core semantic: unsynced bytes
// are fair game for Crash, synced bytes are untouchable.
func TestSyncIsTheWatermark(t *testing.T) {
	dir := t.TempDir()
	fs := New(7)
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncGroup, FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	lsn, err := l.Append(1, []byte("synced"))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.SyncTo(lsn); err != nil {
		t.Fatal(err)
	}
	l.Close()
	if err := fs.Crash(); err != nil {
		t.Fatal(err)
	}
	l2, err := wal.Open(dir, wal.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	recs, err := l2.ReadFrom(1)
	if err != nil || len(recs) != 1 || string(recs[0].Payload) != "synced" {
		t.Fatalf("synced record damaged by crash: %d recs, %v", len(recs), err)
	}
}

// TestFailAfterWritesFails pins the injection mechanics: after the armed
// count, writes and syncs report ErrInjected and Failed flips.
func TestFailAfterWritesFails(t *testing.T) {
	dir := t.TempDir()
	fs := New(3)
	f, err := fs.OpenAppend(dir + "/seg")
	if err != nil {
		t.Fatal(err)
	}
	fs.FailAfterWrites(2)
	for i := 0; i < 2; i++ {
		if _, err := f.Write([]byte("ok")); err != nil {
			t.Fatalf("write %d failed early: %v", i, err)
		}
	}
	if fs.Failed() {
		t.Fatal("failed before the armed count")
	}
	if _, err := f.Write([]byte("boom")); !errors.Is(err, ErrInjected) {
		t.Fatalf("armed write: %v", err)
	}
	if !fs.Failed() {
		t.Fatal("Failed() still false after injection")
	}
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync after failure: %v", err)
	}
	if fs.Writes() != 3 {
		t.Fatalf("writes = %d, want 3", fs.Writes())
	}
}
