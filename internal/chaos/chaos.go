// Package chaos provides deterministic failure injection for the
// fault-tolerance experiments: named crash points that actors consult at
// critical moments, and fault-injecting network dialers that sever or
// refuse connections.
//
// Everything is instance-scoped and seeded, so a failing schedule can be
// replayed exactly.
package chaos

import (
	"errors"
	"math/rand"
	"net"
	"sync"
	"time"
)

// ErrInjected marks failures produced by this package.
var ErrInjected = errors.New("chaos: injected failure")

// Points is a registry of named crash points. An actor calls Hit(name) at
// each of its crash points; a true return means "die here now".
type Points struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]*rule
	hits  map[string]int
	fired map[string]int
}

type rule struct {
	prob  float64 // probability per hit
	onNth int     // fire on exactly the nth hit (1-based); 0 = disabled
	limit int     // max firings; 0 = unlimited
	count int     // firings so far
}

// NewPoints returns a crash-point registry with a seeded random source.
func NewPoints(seed int64) *Points {
	return &Points{
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]*rule),
		hits:  make(map[string]int),
		fired: make(map[string]int),
	}
}

// FailWithProb makes the named point fire with probability p per hit, at
// most limit times (0 = unlimited).
func (c *Points) FailWithProb(name string, p float64, limit int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules[name] = &rule{prob: p, limit: limit}
}

// FailOnNth makes the named point fire on exactly its nth hit (1-based).
func (c *Points) FailOnNth(name string, n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rules[name] = &rule{onNth: n, limit: 1}
}

// Clear removes the rule for a point.
func (c *Points) Clear(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.rules, name)
}

// Hit records that execution reached the named point and reports whether
// the actor should crash there.
func (c *Points) Hit(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits[name]++
	r, ok := c.rules[name]
	if !ok {
		return false
	}
	if r.limit > 0 && r.count >= r.limit {
		return false
	}
	fire := false
	if r.onNth > 0 {
		fire = c.hits[name] == r.onNth
	} else if r.prob > 0 {
		fire = c.rng.Float64() < r.prob
	}
	if fire {
		r.count++
		c.fired[name]++
	}
	return fire
}

// Hits returns how many times the named point was reached.
func (c *Points) Hits(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits[name]
}

// Fired returns how many times the named point fired.
func (c *Points) Fired(name string) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.fired[name]
}

// TotalFired sums firings across all points.
func (c *Points) TotalFired() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, v := range c.fired {
		n += v
	}
	return n
}

// Network injects connection-level faults: dial refusals and mid-stream
// connection cuts, simulating the communication failures the paper's
// protocols must mask (Sections 1–2).
type Network struct {
	mu       sync.Mutex
	rng      *rand.Rand
	dialFail float64 // probability a dial is refused
	cutProb  float64 // probability each write severs the connection
	readCut  float64 // probability each read severs the connection

	delay      time.Duration // added to every delivered read
	stragProb  float64       // probability a read is a straggler
	stragDelay time.Duration // extra latency for straggler reads
	delays     int           // reads that were delayed (either knob)

	downMu sync.Mutex
	down   bool // hard partition: all dials refused, all conns cut

	// conns tracks only live connections: a conn is removed the moment it
	// dies (cut, partition, or Close), so long soaks that churn thousands
	// of connections don't accumulate dead entries.
	conns map[net.Conn]struct{}
}

// NewNetwork returns a fault-injecting network with a seeded source.
func NewNetwork(seed int64) *Network {
	return &Network{rng: rand.New(rand.NewSource(seed)), conns: make(map[net.Conn]struct{})}
}

// SetDialFailProb sets the probability that a dial is refused.
func (n *Network) SetDialFailProb(p float64) {
	n.mu.Lock()
	n.dialFail = p
	n.mu.Unlock()
}

// SetCutProb sets the per-write probability that the connection is severed
// mid-stream. The doomed write is delivered first, then the connection
// dies — modeling the paper's worst case: the request reaches the server,
// executes, and the reply is lost in transit (Section 2).
func (n *Network) SetCutProb(p float64) {
	n.mu.Lock()
	n.cutProb = p
	n.mu.Unlock()
}

// SetReadCutProb sets the per-read probability that the connection is
// severed before any bytes are returned: the peer's message is lost in
// transit. Independent of the write path, this models a reply lost on the
// way back even when the request was delivered cleanly.
func (n *Network) SetReadCutProb(p float64) {
	n.mu.Lock()
	n.readCut = p
	n.mu.Unlock()
}

// SetDelay adds a fixed latency to every delivered read: bytes arrive,
// then sit in transit for d before the caller sees them. This models a
// uniformly slow link (or a uniformly slow peer) without losing data —
// the degraded-but-alive regime the paper's timeout-based recovery cannot
// distinguish from a crash.
func (n *Network) SetDelay(d time.Duration) {
	n.mu.Lock()
	n.delay = d
	n.mu.Unlock()
}

// SetStragglerProb makes each delivered read a straggler with probability
// p: the bytes are delayed by an extra d on top of any SetDelay baseline.
// Independent reads straggle independently, producing the heavy-tailed
// latency profile hedged requests are designed to mask — most replies are
// fast, an unlucky few set the p99.
func (n *Network) SetStragglerProb(p float64, d time.Duration) {
	n.mu.Lock()
	n.stragProb = p
	n.stragDelay = d
	n.mu.Unlock()
}

// Delays reports how many reads were artificially delayed — lets a soak
// assert the injection actually exercised the slow path.
func (n *Network) Delays() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.delays
}

// Conns reports the number of currently live tracked connections — a
// leak gauge for long soaks.
func (n *Network) Conns() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.conns)
}

func (n *Network) track(c net.Conn) {
	n.mu.Lock()
	n.conns[c] = struct{}{}
	n.mu.Unlock()
}

func (n *Network) untrack(c net.Conn) {
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

// Partition opens (true) or heals (false) a hard partition. Opening severs
// every tracked connection immediately.
func (n *Network) Partition(active bool) {
	n.downMu.Lock()
	n.down = active
	n.downMu.Unlock()
	if active {
		n.mu.Lock()
		conns := make([]net.Conn, 0, len(n.conns))
		for c := range n.conns {
			conns = append(conns, c)
		}
		n.conns = make(map[net.Conn]struct{})
		n.mu.Unlock()
		for _, c := range conns {
			c.Close()
		}
	}
}

func (n *Network) partitioned() bool {
	n.downMu.Lock()
	defer n.downMu.Unlock()
	return n.down
}

// Dialer wraps base with this network's faults. base nil means plain TCP.
func (n *Network) Dialer(base func(addr string) (net.Conn, error)) func(addr string) (net.Conn, error) {
	if base == nil {
		base = func(a string) (net.Conn, error) { return net.Dial("tcp", a) }
	}
	return func(addr string) (net.Conn, error) {
		if n.partitioned() {
			return nil, errors.New("chaos: network partitioned")
		}
		n.mu.Lock()
		refuse := n.dialFail > 0 && n.rng.Float64() < n.dialFail
		n.mu.Unlock()
		if refuse {
			return nil, errors.New("chaos: dial refused")
		}
		conn, err := base(addr)
		if err != nil {
			return nil, err
		}
		fc := &faultConn{Conn: conn, net: n}
		n.track(fc)
		return fc, nil
	}
}

// faultConn severs itself probabilistically on writes and reads.
type faultConn struct {
	net.Conn
	net  *Network
	dead bool
	mu   sync.Mutex
}

// die marks the conn dead, prunes it from the network's tracking map, and
// closes the underlying conn.
func (c *faultConn) die() {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	c.net.untrack(c)
	c.Conn.Close()
}

// Close prunes the conn from tracking before closing it, so gracefully
// closed conns don't linger in the gauge either.
func (c *faultConn) Close() error {
	c.mu.Lock()
	c.dead = true
	c.mu.Unlock()
	c.net.untrack(c)
	return c.Conn.Close()
}

func (c *faultConn) Write(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead || c.net.partitioned() {
		c.die()
		return 0, errors.New("chaos: connection cut")
	}
	c.net.mu.Lock()
	cut := c.net.cutProb > 0 && c.net.rng.Float64() < c.net.cutProb
	c.net.mu.Unlock()
	if cut {
		// Deliver the doomed write, then sever: the peer processes the
		// message but its response has nowhere to go — the paper's
		// lost-reply case (Section 2).
		written, _ := c.Conn.Write(p)
		c.die()
		return written, errors.New("chaos: connection cut")
	}
	return c.Conn.Write(p)
}

func (c *faultConn) Read(p []byte) (int, error) {
	c.mu.Lock()
	dead := c.dead
	c.mu.Unlock()
	if dead || c.net.partitioned() {
		c.die()
		return 0, errors.New("chaos: connection cut")
	}
	c.net.mu.Lock()
	cut := c.net.readCut > 0 && c.net.rng.Float64() < c.net.readCut
	c.net.mu.Unlock()
	if cut {
		// Sever without delivering: whatever the peer sent is lost in
		// transit — the reply-lost case, independent of the write path.
		c.die()
		return 0, errors.New("chaos: connection cut")
	}
	nr, err := c.Conn.Read(p)
	if nr > 0 {
		// Latency injection applies only to delivered bytes: the data is
		// in hand, then held in "transit" before the caller sees it. Reads
		// that block waiting for the peer are not additionally penalized,
		// and errored reads fail fast.
		c.net.mu.Lock()
		d := c.net.delay
		if c.net.stragProb > 0 && c.net.rng.Float64() < c.net.stragProb {
			d += c.net.stragDelay
		}
		if d > 0 {
			c.net.delays++
		}
		c.net.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
	}
	return nr, err
}
