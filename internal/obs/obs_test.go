package obs

import (
	"encoding/json"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("c") != c {
		t.Fatal("second lookup returned a different counter")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	for _, v := range []int64{0, 1, 2, 3, 4, 100, 1 << 40, -5} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["h"]
	if s.Count != 8 {
		t.Fatalf("count = %d, want 8", s.Count)
	}
	wantSum := uint64(0 + 1 + 2 + 3 + 4 + 100 + 1<<40 + 0)
	if s.Sum != wantSum {
		t.Fatalf("sum = %d, want %d", s.Sum, wantSum)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != s.Count {
		t.Fatalf("bucket counts sum to %d, want %d", n, s.Count)
	}
	// 0 and -5 land in the zero bucket.
	if s.Buckets[0].Le != 0 || s.Buckets[0].Count != 2 {
		t.Fatalf("zero bucket = %+v", s.Buckets[0])
	}
	// The quantile upper bound must cover the largest observation.
	if q := s.Quantile(1.0); q < 1<<40 {
		t.Fatalf("p100 = %d, want >= 2^40", q)
	}
	if m := s.Mean(); m <= 0 {
		t.Fatalf("mean = %f, want > 0", m)
	}
}

func TestLabeledNames(t *testing.T) {
	if got := Name("queue.depth", "queue", "work"); got != "queue.depth{queue=work}" {
		t.Fatalf("Name = %q", got)
	}
	// Label order must not matter.
	a := Name("m", "b", "2", "a", "1")
	b := Name("m", "a", "1", "b", "2")
	if a != b {
		t.Fatalf("label order changed name: %q vs %q", a, b)
	}
	r := NewRegistry()
	if r.Counter("queue.enqueues", "queue", "x") == r.Counter("queue.enqueues", "queue", "y") {
		t.Fatal("distinct labels shared an instrument")
	}
}

func TestKindCollisionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind collision")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Gauge("x")
}

func TestSnapshotJSONDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Counter("a").Add(2)
	r.Gauge("g").Set(-1)
	r.Histogram("h").Observe(3)
	j1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("registry and snapshot JSON differ:\n%s\n%s", j1, j2)
	}
	var back Snapshot
	if err := json.Unmarshal(j1, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["a"] != 2 || back.Counters["b"] != 1 || back.Gauges["g"] != -1 {
		t.Fatalf("roundtrip lost values: %+v", back)
	}
	if back.Histograms["h"].Count != 1 || back.Histograms["h"].Sum != 3 {
		t.Fatalf("roundtrip lost histogram: %+v", back.Histograms["h"])
	}
}

func TestCounterDelta(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	before := r.Snapshot()
	c.Add(7)
	after := r.Snapshot()
	if d := CounterDelta(before, after, "x"); d != 7 {
		t.Fatalf("delta = %d, want 7", d)
	}
	if d := CounterDelta(before, after, "absent"); d != 0 {
		t.Fatalf("absent delta = %d, want 0", d)
	}
}

// TestSnapshotDeterministicUnderConcurrentRegistration registers
// instruments — including adversarially pre-composed names whose label
// order varies by goroutine — from 8 goroutines and requires two
// subsequent snapshots to marshal byte-for-byte identically. This is
// the regression test for snapshot-time label canonicalization.
func TestSnapshotDeterministicUnderConcurrentRegistration(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Counter("ops", "worker", "w", "idx", "0").Inc()
				// Pre-composed names with label order depending on
				// which goroutine registered first.
				if w%2 == 0 {
					r.Counter("raw{a=1,b=2}").Inc()
					r.Gauge("rawg{z=9,y=8}").Add(1)
					r.Histogram("rawh{n=2,m=1}").Observe(int64(i))
				} else {
					r.Counter("raw{b=2,a=1}").Inc()
					r.Gauge("rawg{y=8,z=9}").Add(1)
					r.Histogram("rawh{m=1,n=2}").Observe(int64(i))
				}
			}
		}(w)
	}
	wg.Wait()
	j1, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if string(j1) != string(j2) {
		t.Fatalf("snapshots differ:\n%s\n%s", j1, j2)
	}
	s := r.Snapshot()
	// Both orderings canonicalize and merge into one entry.
	if got := s.Counters["raw{a=1,b=2}"]; got != workers*200 {
		t.Fatalf("canonical counter = %d, want %d", got, workers*200)
	}
	if _, ok := s.Counters["raw{b=2,a=1}"]; ok {
		t.Fatal("non-canonical counter name survived in snapshot")
	}
	if got := s.Gauges["rawg{y=8,z=9}"]; got != workers*200 {
		t.Fatalf("canonical gauge = %d, want %d", got, workers*200)
	}
	if got := s.Histograms["rawh{m=1,n=2}"].Count; got != workers*200 {
		t.Fatalf("canonical histogram count = %d, want %d", got, workers*200)
	}
}

// TestConcurrent hammers one registry from many goroutines; run under
// -race this is the package's thread-safety proof.
func TestConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("depth")
			h := r.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(int64(i))
				if i%100 == 0 {
					_ = r.Snapshot()
				}
			}
		}(w)
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counters["shared"] != workers*perWorker {
		t.Fatalf("counter = %d, want %d", s.Counters["shared"], workers*perWorker)
	}
	if s.Gauges["depth"] != 0 {
		t.Fatalf("gauge = %d, want 0", s.Gauges["depth"])
	}
	if s.Histograms["lat"].Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", s.Histograms["lat"].Count, workers*perWorker)
	}
}
