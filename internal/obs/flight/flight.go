// Package flight is the black-box flight recorder: a bounded record of
// what the process was doing just before it stopped doing it.
//
// A WAL makes committed *data* recoverable after a crash, but says
// nothing about the process's behavior — which queues were hot, whether
// the breaker was open, what the last hundred events said. The recorder
// closes that gap the way an aircraft flight recorder does: continuously
// overwrite a small window of state (recent events from a log.Ring, the
// last N metric snapshots from an obs.History, the slowest recent traces
// from a trace.Tracer), and on panic or SIGQUIT serialize that window to
// a dump file before the process dies. The same document is queryable
// live via the admin endpoint GET /debug/flight, so "what would the
// post-mortem say right now" is an ordinary HTTP request.
package flight

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/log"
	"repro/internal/obs/trace"
)

// Config wires the recorder's sources. Any source may be nil; the dump
// simply omits that section.
type Config struct {
	// Node names the process in the dump header.
	Node string
	// Events is the ring the node's logger already tees into.
	Events *log.Ring
	// MaxEvents bounds how many ring events a dump carries (0 = all).
	MaxEvents int
	// History supplies the trailing metric snapshots.
	History *obs.History
	// Tracer supplies slow-trace summaries; SlowTraces bounds how many
	// (default 10).
	Tracer     *trace.Tracer
	SlowTraces int
	// Registry supplies the live point-in-time snapshot stamped into the
	// dump (distinct from History, which holds the trailing window).
	Registry *obs.Registry
	// Path is where signal/panic dumps land (default "flight-<pid>.json"
	// in the working directory).
	Path string
	// Logger, when set, gets one info event when a dump is written.
	Logger *log.Logger
}

// Recorder assembles and writes flight dumps. All methods are safe for
// concurrent use; the recorder itself holds no event state — its sources
// (ring, history, tracer) are the storage.
type Recorder struct {
	cfg Config

	mu       sync.Mutex
	sigCh    chan os.Signal
	sigDone  chan struct{}
	lastDump time.Time
}

// Dump is the serialized flight-recorder document.
type Dump struct {
	Node    string    `json:"node,omitempty"`
	At      time.Time `json:"at"`
	Reason  string    `json:"reason"`
	Pid     int       `json:"pid"`
	Dropped uint64    `json:"events_dropped,omitempty"`

	Events     []log.Event         `json:"events,omitempty"`
	Metrics    *obs.Snapshot       `json:"metrics,omitempty"`
	History    []obs.TimedSnapshot `json:"history,omitempty"`
	SlowTraces []trace.Summary     `json:"slow_traces,omitempty"`

	// Goroutines is the full stack dump — the one thing SIGQUIT's default
	// handler prints that a post-mortem cannot do without.
	Goroutines string `json:"goroutines,omitempty"`
}

// New returns a recorder over the given sources.
func New(cfg Config) *Recorder {
	if cfg.Path == "" {
		cfg.Path = fmt.Sprintf("flight-%d.json", os.Getpid())
	}
	if cfg.SlowTraces == 0 {
		cfg.SlowTraces = 10
	}
	return &Recorder{cfg: cfg}
}

// Path returns where signal/panic dumps are written.
func (r *Recorder) Path() string { return r.cfg.Path }

// Snapshot assembles the current dump document. reason labels why the
// dump was taken ("signal", "panic", "request", …). stacks selects
// whether the (large) goroutine dump is included.
func (r *Recorder) Snapshot(reason string, stacks bool) *Dump {
	d := &Dump{
		Node:   r.cfg.Node,
		At:     time.Now(),
		Reason: reason,
		Pid:    os.Getpid(),
	}
	if r.cfg.Events != nil {
		d.Events = r.cfg.Events.Recent(r.cfg.MaxEvents)
		d.Dropped = r.cfg.Events.Dropped()
	}
	if r.cfg.Registry != nil {
		snap := r.cfg.Registry.Snapshot()
		d.Metrics = &snap
	}
	if r.cfg.History != nil {
		d.History = r.cfg.History.Samples()
	}
	if r.cfg.Tracer != nil {
		d.SlowTraces = r.cfg.Tracer.Slowest(r.cfg.SlowTraces)
	}
	if stacks {
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		d.Goroutines = string(buf[:n])
	}
	return d
}

// WriteTo serializes a dump document as indented JSON.
func (r *Recorder) WriteTo(w io.Writer, reason string, stacks bool) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot(reason, stacks))
}

// DumpFile writes the dump to the configured path (atomically: temp file
// then rename, so a crash mid-dump never leaves a torn document at the
// advertised path).
func (r *Recorder) DumpFile(reason string) (string, error) {
	r.mu.Lock()
	r.lastDump = time.Now()
	r.mu.Unlock()
	tmp := r.cfg.Path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return "", err
	}
	werr := r.WriteTo(f, reason, true)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp)
		return "", werr
	}
	if err := os.Rename(tmp, r.cfg.Path); err != nil {
		return "", err
	}
	r.cfg.Logger.Info("flight dump written",
		log.Str("path", r.cfg.Path), log.Str("reason", reason))
	return r.cfg.Path, nil
}

// ArmSignal installs a SIGQUIT handler that writes a flight dump instead
// of the runtime's die-with-stacks default. The process keeps running
// after the dump (the goroutine stacks the default would have printed are
// inside the dump). Call Disarm to restore default handling.
func (r *Recorder) ArmSignal() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.sigCh != nil {
		return
	}
	r.sigCh = make(chan os.Signal, 1)
	r.sigDone = make(chan struct{})
	ch, done := r.sigCh, r.sigDone
	signal.Notify(ch, syscall.SIGQUIT)
	go func() {
		defer close(done)
		for range ch {
			if _, err := r.DumpFile("signal"); err != nil {
				fmt.Fprintf(os.Stderr, "flight: dump failed: %v\n", err)
			}
		}
	}()
}

// Disarm removes the SIGQUIT handler and waits for the handler goroutine
// to exit. Idempotent.
func (r *Recorder) Disarm() {
	r.mu.Lock()
	ch, done := r.sigCh, r.sigDone
	r.sigCh, r.sigDone = nil, nil
	r.mu.Unlock()
	if ch == nil {
		return
	}
	signal.Stop(ch)
	close(ch)
	<-done
}

// DumpOnPanic is a defer hook for main-ish goroutines: on panic it writes
// a flight dump, then re-panics so the process still dies loudly.
//
//	defer rec.DumpOnPanic()
func (r *Recorder) DumpOnPanic() {
	if p := recover(); p != nil {
		_, _ = r.DumpFile(fmt.Sprintf("panic: %v", p))
		panic(p)
	}
}

// LastDump reports when a dump was last written (zero if never).
func (r *Recorder) LastDump() time.Time {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lastDump
}
