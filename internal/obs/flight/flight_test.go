package flight

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/log"
	"repro/internal/obs/trace"
)

// buildRecorder assembles a recorder over live sources with activity in
// each: events in the ring, two history samples, one finished trace.
func buildRecorder(t *testing.T, dir string) (*Recorder, *obs.Registry) {
	t.Helper()
	reg := obs.NewRegistry()
	ring := log.NewRing(64)
	logger := log.New(log.LevelDebug, reg, ring)
	logger.Named("queue").Info("enqueue", log.Str("queue", "work"), log.Int("n", 1))
	logger.Named("wal").Warn("segment rotated", log.Uint64("seg", 3))

	reg.Counter("queue.enqueues", "queue", "work").Add(10)
	hist := obs.NewHistory(reg, 8, time.Second)
	hist.Sample()
	reg.Counter("queue.enqueues", "queue", "work").Add(5)
	hist.Sample()

	tr := trace.New(16, reg)
	ref := trace.Ref{Trace: trace.NewID()}
	sp, _ := tr.Begin(ref, "enqueue")
	time.Sleep(time.Millisecond)
	sp.Final = true
	tr.Finish(&sp)

	return New(Config{
		Node:      "n1",
		Events:    ring,
		History:   hist,
		Tracer:    tr,
		Registry:  reg,
		Path:      filepath.Join(dir, "flight.json"),
		Logger:    logger,
		MaxEvents: 32,
	}), reg
}

func decodeDump(t *testing.T, b []byte) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("dump is not valid JSON: %v\n%s", err, b)
	}
	return doc
}

// TestDumpContents pins the acceptance shape: recent events, metric
// snapshots (live + history), and slow-trace summaries in one document.
func TestDumpContents(t *testing.T) {
	rec, _ := buildRecorder(t, t.TempDir())
	var buf bytes.Buffer
	if err := rec.WriteTo(&buf, "request", true); err != nil {
		t.Fatal(err)
	}
	doc := decodeDump(t, buf.Bytes())
	if doc["node"] != "n1" || doc["reason"] != "request" {
		t.Fatalf("header wrong: %v", doc)
	}
	events, _ := doc["events"].([]any)
	if len(events) < 2 {
		t.Fatalf("want recent events, got %v", doc["events"])
	}
	ev0 := events[0].(map[string]any)
	if ev0["sub"] != "queue" || ev0["msg"] != "enqueue" {
		t.Fatalf("event content lost: %v", ev0)
	}
	metrics, _ := doc["metrics"].(map[string]any)
	counters, _ := metrics["counters"].(map[string]any)
	if counters["queue.enqueues{queue=work}"] != float64(15) {
		t.Fatalf("live metrics missing: %v", counters)
	}
	hist, _ := doc["history"].([]any)
	if len(hist) != 2 {
		t.Fatalf("want 2 history samples, got %d", len(hist))
	}
	slow, _ := doc["slow_traces"].([]any)
	if len(slow) != 1 {
		t.Fatalf("want 1 slow trace, got %v", doc["slow_traces"])
	}
	if g, _ := doc["goroutines"].(string); !strings.Contains(g, "goroutine") {
		t.Fatal("goroutine stacks missing from dump")
	}
}

// TestSIGQUITDump proves the acceptance criterion end to end inside one
// process: arm the recorder, send ourselves SIGQUIT, and find a dump file
// with events, metric snapshots, and slow traces — while the process (this
// test) keeps running.
func TestSIGQUITDump(t *testing.T) {
	rec, _ := buildRecorder(t, t.TempDir())
	rec.ArmSignal()
	defer rec.Disarm()

	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	var raw []byte
	for {
		var err error
		raw, err = os.ReadFile(rec.Path())
		if err == nil && len(raw) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no flight dump appeared after SIGQUIT")
		}
		time.Sleep(5 * time.Millisecond)
	}
	doc := decodeDump(t, raw)
	if doc["reason"] != "signal" {
		t.Fatalf("reason = %v, want signal", doc["reason"])
	}
	if len(doc["events"].([]any)) == 0 || len(doc["history"].([]any)) == 0 ||
		len(doc["slow_traces"].([]any)) == 0 {
		t.Fatalf("signal dump incomplete: events=%v history=%v slow=%v",
			doc["events"], doc["history"], doc["slow_traces"])
	}
	if rec.LastDump().IsZero() {
		t.Fatal("LastDump not stamped")
	}
}

// TestDumpOnPanic proves the defer hook writes a dump and re-panics.
func TestDumpOnPanic(t *testing.T) {
	rec, _ := buildRecorder(t, t.TempDir())
	func() {
		defer func() {
			if recover() == nil {
				t.Error("panic swallowed")
			}
		}()
		defer rec.DumpOnPanic()
		panic("kaboom")
	}()
	raw, err := os.ReadFile(rec.Path())
	if err != nil {
		t.Fatalf("no panic dump: %v", err)
	}
	doc := decodeDump(t, raw)
	reason, _ := doc["reason"].(string)
	if !strings.Contains(reason, "kaboom") {
		t.Fatalf("panic value not in reason: %q", reason)
	}
}

// TestAtomicDump ensures a dump never leaves a torn file at the final
// path: the temp file is cleaned up and re-dumping replaces cleanly.
func TestAtomicDump(t *testing.T) {
	rec, _ := buildRecorder(t, t.TempDir())
	for i := 0; i < 3; i++ {
		if _, err := rec.DumpFile("request"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(rec.Path() + ".tmp"); !os.IsNotExist(err) {
		t.Fatal("temp file left behind")
	}
	decodeDump(t, mustRead(t, rec.Path()))
}

// TestNilSources: a recorder over nothing still produces a valid document.
func TestNilSources(t *testing.T) {
	rec := New(Config{Path: filepath.Join(t.TempDir(), "f.json")})
	var buf bytes.Buffer
	if err := rec.WriteTo(&buf, "request", false); err != nil {
		t.Fatal(err)
	}
	doc := decodeDump(t, buf.Bytes())
	if doc["reason"] != "request" {
		t.Fatalf("bad doc: %v", doc)
	}
	rec.Disarm() // disarm without arm is a no-op
}

func mustRead(t *testing.T, path string) []byte {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
