// Package obs is the observability substrate: zero-dependency, race-safe
// counters, gauges, and histograms behind a named Registry.
//
// The paper's operational claims (queue-manager overhead, group-commit
// amortization, lock contention, 2PC cost — §§2, 6, 8, 10) are about hot
// paths, so the instruments are built to live on hot paths: a Counter or
// Gauge is one atomic add, a Histogram observation is two atomic adds plus
// one atomic add into a fixed power-of-two bucket — no locks, no
// allocation, no map lookups. Registry lookups (which do take a mutex and
// allocate) happen once at wiring time; callers hold the returned
// instrument pointers.
//
// Snapshot() renders the whole registry deterministically (names sorted),
// which is what the metrics-invariant tests, the qmd admin endpoint, and
// qmctl stats consume.
package obs

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous signed value (e.g. a queue depth).
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative to decrement).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// histBuckets is the fixed bucket count: bucket i holds observations v
// with bits.Len64(v) == i, i.e. exponential base-2 buckets [2^(i-1), 2^i).
// Bucket 0 holds v == 0. 65 buckets cover the entire uint64 range.
const histBuckets = 65

// Histogram is a fixed-bucket exponential (base-2) histogram. Observe is
// lock-free: bucket selection is a bit-length computation, recording is
// three atomic adds. Negative observations clamp to zero.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one observation.
func (h *Histogram) Observe(v int64) {
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	h.count.Add(1)
	h.sum.Add(u)
	h.buckets[bits.Len64(u)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Bucket is one non-empty histogram bucket in a snapshot. Le is the
// bucket's inclusive upper bound (2^i - 1); Count is the observations in
// (previous Le, Le].
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a histogram's state at one instant.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Mean returns the average observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from the
// bucket boundaries; exact values are not retained, so the answer is the
// upper edge of the bucket containing the quantile.
func (s HistogramSnapshot) Quantile(q float64) uint64 {
	if s.Count == 0 {
		return 0
	}
	rank := uint64(q * float64(s.Count))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Le
		}
	}
	return s.Buckets[len(s.Buckets)-1].Le
}

// snapshot captures the histogram. Concurrent observations may tear
// between count/sum/buckets; each individual value is still a valid
// point-in-time atomic read, which is all the consumers need.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.count.Load(), Sum: h.sum.Load()}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		var le uint64
		if i == 0 {
			le = 0
		} else if i >= 64 {
			le = ^uint64(0)
		} else {
			le = 1<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
	}
	return s
}

// Registry is a named collection of instruments. Lookups are get-or-create
// and safe for concurrent use; a name identifies exactly one instrument,
// and re-looking-up a name returns the same instrument. Kinds share one
// namespace: registering "x" as a counter and again as a gauge panics,
// which catches wiring mistakes at startup rather than corrupting data.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	kinds      map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
		kinds:      make(map[string]string),
	}
}

// Name composes a metric name from a base and label pairs:
// Name("queue.enqueues", "queue", "work") == `queue.enqueues{queue=work}`.
// Labels are sorted by key so the same label set always yields the same
// name. Panics on an odd number of label arguments (a wiring bug).
func Name(base string, labels ...string) string {
	if len(labels) == 0 {
		return base
	}
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("obs: odd label list for %s: %v", base, labels))
	}
	pairs := make([]string, 0, len(labels)/2)
	for i := 0; i < len(labels); i += 2 {
		pairs = append(pairs, labels[i]+"="+labels[i+1])
	}
	sort.Strings(pairs)
	return base + "{" + strings.Join(pairs, ",") + "}"
}

// canonicalName re-renders a metric name with its label pairs sorted.
// Registry lookups compose names through Name, which sorts, but callers
// may register pre-composed names ("x{b=2,a=1}") whose label order
// reflects call-site accident; canonicalizing at snapshot time makes
// the rendered snapshot byte-for-byte deterministic regardless of how
// or in what order instruments were registered.
func canonicalName(name string) string {
	open := strings.IndexByte(name, '{')
	if open < 0 || !strings.HasSuffix(name, "}") {
		return name
	}
	inner := name[open+1 : len(name)-1]
	if inner == "" {
		return name
	}
	pairs := strings.Split(inner, ",")
	if sort.StringsAreSorted(pairs) {
		return name
	}
	sort.Strings(pairs)
	return name[:open] + "{" + strings.Join(pairs, ",") + "}"
}

func (r *Registry) checkKind(name, kind string) {
	if prev, ok := r.kinds[name]; ok && prev != kind {
		panic(fmt.Sprintf("obs: %s already registered as %s, requested as %s", name, prev, kind))
	}
	r.kinds[name] = kind
}

// Counter returns the counter registered under Name(base, labels...),
// creating it on first use.
func (r *Registry) Counter(base string, labels ...string) *Counter {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "counter")
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under Name(base, labels...), creating
// it on first use.
func (r *Registry) Gauge(base string, labels ...string) *Gauge {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "gauge")
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under Name(base, labels...),
// creating it on first use.
func (r *Registry) Histogram(base string, labels ...string) *Histogram {
	name := Name(base, labels...)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKind(name, "histogram")
	h, ok := r.histograms[name]
	if !ok {
		h = &Histogram{}
		r.histograms[name] = h
	}
	return h
}

// Snapshot is a point-in-time copy of a registry. Map keys are full metric
// names (base plus rendered labels); encoding/json emits map keys sorted,
// so the JSON form is deterministic for a given state.
type Snapshot struct {
	Counters   map[string]uint64            `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures every registered instrument.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]uint64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[canonicalName(name)] += c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[canonicalName(name)] += g.Value()
	}
	for name, h := range r.histograms {
		cn := canonicalName(name)
		hs := h.snapshot()
		if prev, ok := s.Histograms[cn]; ok {
			hs = mergeHistograms(prev, hs)
		}
		s.Histograms[cn] = hs
	}
	return s
}

// mergeHistograms combines two snapshots of the same canonical metric
// (registered under differently-ordered label renderings) so snapshot
// content is independent of map iteration order.
func mergeHistograms(a, b HistogramSnapshot) HistogramSnapshot {
	out := HistogramSnapshot{Count: a.Count + b.Count, Sum: a.Sum + b.Sum}
	i, j := 0, 0
	for i < len(a.Buckets) || j < len(b.Buckets) {
		switch {
		case j >= len(b.Buckets) || (i < len(a.Buckets) && a.Buckets[i].Le < b.Buckets[j].Le):
			out.Buckets = append(out.Buckets, a.Buckets[i])
			i++
		case i >= len(a.Buckets) || b.Buckets[j].Le < a.Buckets[i].Le:
			out.Buckets = append(out.Buckets, b.Buckets[j])
			j++
		default:
			out.Buckets = append(out.Buckets, Bucket{Le: a.Buckets[i].Le, Count: a.Buckets[i].Count + b.Buckets[j].Count})
			i++
			j++
		}
	}
	return out
}

// MarshalJSON renders the snapshot (deterministically; see Snapshot).
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.Snapshot())
}

// CounterDelta returns after minus before for a counter name, tolerating
// absence in either snapshot (an absent counter reads 0). Experiment
// tables use it to report why a configuration wins, not just that it does.
func CounterDelta(before, after Snapshot, name string) uint64 {
	return after.Counters[name] - before.Counters[name]
}

// SortedNames returns every metric name in the snapshot, sorted — the
// deterministic iteration order for rendering.
func (s Snapshot) SortedNames() []string {
	names := make([]string, 0, len(s.Counters)+len(s.Gauges)+len(s.Histograms))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
