package obs

// QuantileDigest is a small streaming quantile estimator over a sliding
// window of the most recent observations. The hedging clerk feeds it
// submit→reply latencies and reads the trigger quantile (e.g. p95) to
// decide when an in-flight request has gone on long enough that cloning
// it is likely cheaper than waiting (DESIGN.md §11).
//
// Design constraints, in order:
//
//   - Recency over history. A hedge trigger must track the *current*
//     latency regime — a straggler that appeared two minutes ago should
//     raise the trigger now and stop raising it once it heals. A bounded
//     window of the last W samples gives that for free; decayed sketches
//     (t-digest and friends) would too, but need tuning and far more code
//     for no better answer at the sizes involved.
//   - Exactness beats compression at small W. W=512 samples is 4 KB; an
//     exact windowed quantile at that size is cheaper to compute, test,
//     and trust than an approximate sketch, and the estimator's error is
//     then entirely sampling error, never sketch error.
//   - Reads are frequent (every hedged Transceive consults the trigger),
//     so the sorted view is cached and rebuilt at most once every
//     digestRefresh observations rather than per read.
//
// All methods are safe for concurrent use. Observe is a mutex acquire,
// one store, and an increment; Quantile is a binary-search-free index
// into the cached sorted view except on refresh, which is an O(W log W)
// sort of a 4 KB buffer.
import (
	"sort"
	"sync"
)

const (
	// digestDefaultWindow is the sliding-window size when the caller
	// passes one <= 0: large enough that a p99 read has ~5 samples above
	// it, small enough that one straggler epoch ages out quickly.
	digestDefaultWindow = 512

	// digestRefresh is how many observations may accumulate before a
	// quantile read re-sorts the window. Staleness is bounded by
	// digestRefresh/W of the window (≈3% at the defaults), well under
	// the sampling noise of the quantile itself.
	digestRefresh = 16
)

// QuantileDigest estimates quantiles over the last Window observations.
type QuantileDigest struct {
	mu     sync.Mutex
	ring   []int64 // circular buffer of the last len(ring) observations
	next   int     // ring index the next observation lands in
	filled int     // number of valid samples in ring (≤ len(ring))
	total  uint64  // observations ever, for conservation checks
	stale  int     // observations since sorted was last rebuilt
	sorted []int64 // cached ascending view of the window
}

// NewQuantileDigest returns a digest over a sliding window of the given
// size (digestDefaultWindow if window <= 0).
func NewQuantileDigest(window int) *QuantileDigest {
	if window <= 0 {
		window = digestDefaultWindow
	}
	return &QuantileDigest{
		ring:   make([]int64, window),
		sorted: make([]int64, 0, window),
		stale:  digestRefresh, // first read after first observation sorts
	}
}

// Observe records one sample, evicting the oldest when the window is full.
func (d *QuantileDigest) Observe(v int64) {
	d.mu.Lock()
	d.ring[d.next] = v
	d.next = (d.next + 1) % len(d.ring)
	if d.filled < len(d.ring) {
		d.filled++
	}
	d.total++
	d.stale++
	d.mu.Unlock()
}

// refreshLocked rebuilds the cached sorted view if it has gone stale.
func (d *QuantileDigest) refreshLocked() {
	if d.stale < digestRefresh && len(d.sorted) == d.filled {
		return
	}
	d.sorted = d.sorted[:0]
	if d.filled == len(d.ring) {
		d.sorted = append(d.sorted, d.ring...)
	} else {
		d.sorted = append(d.sorted, d.ring[:d.filled]...)
	}
	sort.Slice(d.sorted, func(i, j int) bool { return d.sorted[i] < d.sorted[j] })
	d.stale = 0
}

// Quantile returns the q-quantile (0 < q <= 1) of the current window, or
// 0 when no observations have been recorded. The answer is an actual
// sample from the window (the nearest-rank quantile), never interpolated,
// so a trigger derived from it is always a latency some request really
// exhibited.
func (d *QuantileDigest) Quantile(q float64) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.filled == 0 {
		return 0
	}
	d.refreshLocked()
	rank := int(q * float64(len(d.sorted)))
	if rank >= len(d.sorted) {
		rank = len(d.sorted) - 1
	}
	if rank < 0 {
		rank = 0
	}
	return d.sorted[rank]
}

// Count returns the total number of observations ever recorded (not the
// window occupancy) — the conservation-check side of the ledger.
func (d *QuantileDigest) Count() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.total
}

// Window returns the configured sliding-window size.
func (d *QuantileDigest) Window() int { return len(d.ring) }

// QuantileSnapshot is a rendered digest state for stats surfaces. Values
// are in the digest's native unit (nanoseconds for the clerk's latency
// digest).
type QuantileSnapshot struct {
	Count  uint64 `json:"count"`  // observations ever
	Window int    `json:"window"` // configured window size
	Filled int    `json:"filled"` // samples currently in the window
	P50    int64  `json:"p50"`
	P90    int64  `json:"p90"`
	P95    int64  `json:"p95"`
	P99    int64  `json:"p99"`
}

// Snapshot renders the digest's standard percentiles in one pass.
func (d *QuantileDigest) Snapshot() QuantileSnapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	s := QuantileSnapshot{Count: d.total, Window: len(d.ring), Filled: d.filled}
	if d.filled == 0 {
		return s
	}
	d.refreshLocked()
	at := func(q float64) int64 {
		rank := int(q * float64(len(d.sorted)))
		if rank >= len(d.sorted) {
			rank = len(d.sorted) - 1
		}
		return d.sorted[rank]
	}
	s.P50, s.P90, s.P95, s.P99 = at(0.50), at(0.90), at(0.95), at(0.99)
	return s
}
