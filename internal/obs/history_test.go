package obs

import (
	"sync"
	"testing"
	"time"
)

func TestHistoryRingRetention(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("x")
	h := NewHistory(reg, 4, time.Second)
	for i := 0; i < 10; i++ {
		c.Inc()
		h.Sample()
	}
	s := h.Samples()
	if len(s) != 4 {
		t.Fatalf("want 4 retained samples, got %d", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i].Snap.Counters["x"] <= s[i-1].Snap.Counters["x"] {
			t.Fatalf("samples out of order: %v", s)
		}
	}
	if s[3].Snap.Counters["x"] != 10 {
		t.Fatalf("newest sample stale: %v", s[3].Snap.Counters)
	}
}

// TestHistoryConservation pins the invariant the /metrics/history
// endpoint relies on: summing the deltas between every adjacent pair of
// samples in a window reproduces exactly the live counter's movement —
// no sample boundary loses or double-counts an increment, even while the
// counter is being hammered concurrently with sampling.
func TestHistoryConservation(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ops", "queue", "work")
	h := NewHistory(reg, 64, time.Second)

	h.Sample() // baseline before any increments
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
				}
			}
		}()
	}
	for i := 0; i < 32; i++ {
		h.Sample()
		time.Sleep(time.Millisecond)
	}
	close(stop)
	wg.Wait()
	h.Sample() // final sample after writers quiesce

	samples := h.Samples()
	name := Name("ops", "queue", "work")
	var summed uint64
	for i := 1; i < len(samples); i++ {
		summed += samples[i].Snap.Counters[name] - samples[i-1].Snap.Counters[name]
	}
	first := samples[0].Snap.Counters[name]
	live := c.Value()
	if first+summed != live {
		t.Fatalf("conservation violated: first %d + summed deltas %d != live %d",
			first, summed, live)
	}
	// And the Report window delta must equal the endpoint difference.
	rep, ok := h.Report(time.Hour)
	if !ok {
		t.Fatal("Report returned no data")
	}
	if rep.Counters[name] != live-first {
		t.Fatalf("report delta %d != endpoint delta %d", rep.Counters[name], live-first)
	}
	if rep.Rates[name] <= 0 {
		t.Fatalf("rate not positive: %v", rep.Rates[name])
	}
}

func TestHistoryReportWindowing(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("n")
	g := reg.Gauge("depth")
	hist := reg.Histogram("lat")
	h := NewHistory(reg, 16, time.Second)

	// Build samples with forced timestamps by sampling around mutations;
	// windows narrower than the spacing must still find an adjacent pair.
	h.Sample()
	time.Sleep(2 * time.Millisecond)
	c.Add(5)
	g.Set(3)
	hist.Observe(100)
	hist.Observe(300)
	h.Sample()

	rep, ok := h.Report(time.Hour)
	if !ok {
		t.Fatal("no report")
	}
	if rep.Counters["n"] != 5 || rep.Gauges["depth"] != 3 {
		t.Fatalf("wrong deltas: %+v", rep)
	}
	if rep.HistCounts["lat"] != 2 || rep.HistSums["lat"] != 400 {
		t.Fatalf("histogram deltas wrong: %+v", rep)
	}
	if rep.Samples < 2 || rep.Window <= 0 {
		t.Fatalf("window metadata wrong: %+v", rep)
	}

	// A single sample cannot produce a report.
	h2 := NewHistory(reg, 8, time.Second)
	h2.Sample()
	if _, ok := h2.Report(time.Second); ok {
		t.Fatal("report from one sample")
	}
}

func TestHistoryStartStop(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("ticks")
	h := NewHistory(reg, 32, 2*time.Millisecond)
	h.Start()
	h.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for {
		c.Inc()
		if len(h.Samples()) >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sampler did not tick")
		}
		time.Sleep(time.Millisecond)
	}
	h.Stop()
	h.Stop() // idempotent
	n := len(h.Samples())
	time.Sleep(10 * time.Millisecond)
	if len(h.Samples()) != n {
		t.Fatal("sampler still running after Stop")
	}
}
