package obs

import "testing"

// These benchmarks document the hot-path cost of the instruments: a few
// nanoseconds per operation uncontended, and still cheap under parallel
// contention (one atomic add per instrument touch). The WAL append
// benchmarks in internal/wal show the end-to-end effect: instrumented
// append throughput is unchanged within noise.

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkCounterIncParallel(b *testing.B) {
	c := NewRegistry().Counter("c")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			c.Inc()
		}
	})
}

func BenchmarkGaugeAdd(b *testing.B) {
	g := NewRegistry().Gauge("g")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.Add(1)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i))
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewRegistry().Histogram("h")
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		i := int64(0)
		for pb.Next() {
			i++
			h.Observe(i)
		}
	})
}

// BenchmarkRegistryLookup measures the wiring-time path (mutex + map);
// hot paths must hold instrument pointers instead of calling this per op.
func BenchmarkRegistryLookup(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Counter("queue.enqueues", "queue", "work")
	}
}

func BenchmarkSnapshot100Metrics(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 50; i++ {
		r.Counter("c", "i", string(rune('a'+i%26))+string(rune('a'+i/26))).Inc()
		r.Histogram("h", "i", string(rune('a'+i%26))+string(rune('a'+i/26))).Observe(int64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.Snapshot()
	}
}
