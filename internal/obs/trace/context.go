package trace

import "context"

type ctxKey struct{}

// With returns ctx carrying ref; the RPC client lifts it onto the wire.
func With(ctx context.Context, ref Ref) context.Context {
	if !ref.Valid() {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, ref)
}

// From returns the ref carried by ctx, or the zero Ref.
func From(ctx context.Context) Ref {
	if ctx == nil {
		return Ref{}
	}
	ref, _ := ctx.Value(ctxKey{}).(Ref)
	return ref
}
