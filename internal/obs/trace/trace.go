// Package trace is the request-tracing half of the observability
// substrate: 128-bit trace IDs, spans with parent links, and a bounded
// lock-striped ring that holds recently finished spans for assembly into
// per-request trees.
//
// The paper's unit of reasoning is the lifecycle of one recoverable
// request — submitted, enqueued, dequeued, executed under a transaction,
// replied, and possibly re-executed after a crash (§§3–5). Counters
// (package obs) aggregate over many requests; a trace follows one. The
// trace ID travels with the request: stamped by the clerk at submit,
// carried as RPC frame metadata, persisted in the element's durable
// encoding so recovery replay resumes the *same* trace after a crash,
// and tagged onto commit/prepare records' spans by the transaction
// layer.
//
// Recording is designed for hot paths: when tracing is disabled every
// entry point is one atomic load; when enabled, finishing a span takes
// one stripe mutex (chosen by trace ID, so one request's spans colocate
// and assembly scans one stripe first) and writes into a fixed circular
// buffer. The ring is bounded: old spans are overwritten, and every
// overwrite increments a drop counter — backpressure-free by
// construction, honest about loss.
package trace

import (
	"crypto/rand"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ID is a 128-bit trace identifier. The zero ID means "untraced".
type ID [16]byte

// IsZero reports whether the ID is the zero (untraced) ID.
func (id ID) IsZero() bool { return id == ID{} }

// String renders the ID as 32 lowercase hex digits.
func (id ID) String() string { return hex.EncodeToString(id[:]) }

// MarshalJSON renders the ID as a quoted hex string.
func (id ID) MarshalJSON() ([]byte, error) {
	return []byte(`"` + id.String() + `"`), nil
}

// UnmarshalJSON accepts the quoted hex form produced by MarshalJSON, so
// documents embedding trace IDs (log events, flight dumps) round-trip.
func (id *ID) UnmarshalJSON(b []byte) error {
	s := string(b)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
	}
	v, err := ParseID(s)
	if err != nil {
		return err
	}
	*id = v
	return nil
}

// ParseID parses the 32-hex-digit form produced by String.
func ParseID(s string) (ID, error) {
	var id ID
	if len(s) != 32 {
		return ID{}, fmt.Errorf("trace: bad id length %d", len(s))
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return ID{}, fmt.Errorf("trace: bad id %q: %v", s, err)
	}
	return id, nil
}

// SpanID identifies one span within a trace. Zero means "no span" (a
// root span has Parent == 0).
type SpanID uint64

// idState seeds a cheap splitmix64 generator from crypto/rand once;
// NewID and NewSpanID then cost one atomic add each. splitmix64 is a
// bijection of the counter, so IDs never collide within a process.
var idState atomic.Uint64

func init() {
	var seed [8]byte
	if _, err := rand.Read(seed[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(seed[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

func next64() uint64 {
	z := idState.Add(0x9e3779b97f4a7c15)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewID returns a fresh random trace ID (never zero).
func NewID() ID {
	var id ID
	for {
		binary.LittleEndian.PutUint64(id[:8], next64())
		binary.LittleEndian.PutUint64(id[8:], next64())
		if !id.IsZero() {
			return id
		}
	}
}

// NewSpanID returns a fresh span ID (never zero).
func NewSpanID() SpanID {
	for {
		if v := next64(); v != 0 {
			return SpanID(v)
		}
	}
}

// Ref is a point in a trace: the trace ID plus the current span, i.e.
// the causal parent for whatever happens next. The zero Ref means
// "untraced".
type Ref struct {
	Trace ID
	Span  SpanID
}

// Valid reports whether the ref carries a live trace.
func (r Ref) Valid() bool { return !r.Trace.IsZero() }

// Attr is one typed span annotation: Str == "" means the value is Int
// (LSNs, txn IDs, retry counts, nanosecond waits); otherwise Str holds
// a string value (queue name, status).
type Attr struct {
	Key string
	Str string
	Int int64
}

// Int64 builds a numeric attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, Int: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Str: v} }

// Span is one timed operation within a trace. Start and End are
// nanosecond wall-clock timestamps (UnixNano); durations inside one
// process are measured monotonically and applied to Start, so End-Start
// is immune to wall-clock steps even though Start is wall time.
type Span struct {
	Trace  ID
	ID     SpanID
	Parent SpanID
	Name   string
	Start  int64 // UnixNano
	End    int64 // UnixNano
	Attrs  []Attr

	// Final marks the span whose finish completes the request's local
	// span tree (the server's process span); finishing it triggers the
	// slow-trace check.
	Final bool

	startMono time.Time // monotonic anchor for duration; zero for RecordAt spans
	tr        *Tracer
}

// Annotate appends attributes to an unfinished span.
func (s *Span) Annotate(attrs ...Attr) {
	if s == nil || s.tr == nil {
		return
	}
	s.Attrs = append(s.Attrs, attrs...)
}

// Duration returns End-Start.
func (s *Span) Duration() time.Duration { return time.Duration(s.End - s.Start) }

// Ref returns the ref for parenting children under this span. On a
// disabled tracer (zero Span) it degrades to the original ref.
func (s *Span) Ref() Ref {
	if s == nil {
		return Ref{}
	}
	return Ref{Trace: s.Trace, Span: s.ID}
}

// stripes is the number of ring stripes. Spans land in the stripe
// selected by their trace ID, so one request's spans share a stripe.
const stripes = 8

// stripe is one bounded circular span buffer.
type stripe struct {
	mu    sync.Mutex
	spans []Span // fixed capacity ring
	next  int    // next write index
	used  int    // number of occupied slots (<= len(spans))
}

// Tracer records spans into a bounded lock-striped ring. The zero value
// is unusable; use New. A nil *Tracer is a valid disabled tracer: every
// method nil-checks, so call sites need no guards.
type Tracer struct {
	enabled atomic.Bool

	st [stripes]stripe

	recorded *obs.Counter
	dropped  *obs.Counter

	// slowNanos is the slow-request threshold; finishing a Final span
	// whose trace's assembled extent is >= slowNanos emits the span
	// tree as one JSON line to sink.
	slowNanos atomic.Int64
	sinkMu    sync.Mutex
	sink      io.Writer
}

// New returns an enabled tracer whose ring holds capacity spans total
// (rounded up to a multiple of the stripe count, minimum 64). reg may
// be nil; when set, trace.spans_recorded and trace.spans_dropped
// counters register there.
func New(capacity int, reg *obs.Registry) *Tracer {
	per := (capacity + stripes - 1) / stripes
	if per < 8 {
		per = 8
	}
	t := &Tracer{}
	for i := range t.st {
		t.st[i].spans = make([]Span, per)
	}
	if reg != nil {
		t.recorded = reg.Counter("trace.spans_recorded")
		t.dropped = reg.Counter("trace.spans_dropped")
	} else {
		t.recorded = &obs.Counter{}
		t.dropped = &obs.Counter{}
	}
	t.enabled.Store(true)
	return t
}

// SetEnabled flips recording. Disabled tracers reject Begin/RecordAt at
// the cost of one atomic load.
func (t *Tracer) SetEnabled(on bool) {
	if t != nil {
		t.enabled.Store(on)
	}
}

// Enabled reports whether the tracer records spans. Safe on nil.
func (t *Tracer) Enabled() bool { return t != nil && t.enabled.Load() }

// SetSlowThreshold arms slow-trace emission: when a Final span finishes
// and its trace's assembled extent is at least d, the whole span tree
// is written to w as one JSON line. d <= 0 disarms.
func (t *Tracer) SetSlowThreshold(d time.Duration, w io.Writer) {
	if t == nil {
		return
	}
	t.sinkMu.Lock()
	t.sink = w
	t.sinkMu.Unlock()
	t.slowNanos.Store(int64(d))
}

// Dropped returns the number of spans overwritten before retrieval.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped.Value()
}

// Begin starts a span under ref. ok is false — and the returned span
// inert — when the tracer is disabled or ref is untraced, so callers
// can guard expensive annotation with the ok bit and otherwise pass
// the span around unconditionally.
func (t *Tracer) Begin(ref Ref, name string) (Span, bool) {
	if !t.Enabled() || !ref.Valid() {
		return Span{}, false
	}
	now := time.Now()
	return Span{
		Trace:     ref.Trace,
		ID:        NewSpanID(),
		Parent:    ref.Span,
		Name:      name,
		Start:     now.UnixNano(),
		startMono: now,
		tr:        t,
	}, true
}

// Finish stamps the span's end time and records it. Inert spans (from
// a disabled Begin) are ignored.
func (t *Tracer) Finish(s *Span) {
	if t == nil || s == nil || s.tr == nil {
		return
	}
	s.End = s.Start + int64(time.Since(s.startMono))
	t.record(*s)
	if s.Final {
		t.maybeEmitSlow(s.Trace)
	}
	s.tr = nil
}

// RecordAt records a fully formed span with explicit wall-clock
// endpoints — for intervals whose start predates the recording site
// (queue wait measured at dequeue) or instantaneous events (recovery
// replay). Zero start/end collapse to now.
func (t *Tracer) RecordAt(ref Ref, name string, start, end time.Time, attrs ...Attr) SpanID {
	if !t.Enabled() || !ref.Valid() {
		return 0
	}
	if start.IsZero() {
		start = time.Now()
	}
	if end.Before(start) {
		end = start
	}
	s := Span{
		Trace:  ref.Trace,
		ID:     NewSpanID(),
		Parent: ref.Span,
		Name:   name,
		Start:  start.UnixNano(),
		End:    end.UnixNano(),
		Attrs:  attrs,
	}
	t.record(s)
	return s.ID
}

func (t *Tracer) stripeFor(id ID) *stripe {
	return &t.st[id[0]%stripes]
}

func (t *Tracer) record(s Span) {
	s.tr = nil
	s.startMono = time.Time{}
	st := t.stripeFor(s.Trace)
	st.mu.Lock()
	if st.used == len(st.spans) {
		t.dropped.Inc()
	} else {
		st.used++
	}
	st.spans[st.next] = s
	st.next = (st.next + 1) % len(st.spans)
	st.mu.Unlock()
	t.recorded.Inc()
}

// collect returns copies of every retained span of the trace.
func (t *Tracer) collect(id ID) []Span {
	if t == nil {
		return nil
	}
	st := t.stripeFor(id)
	var out []Span
	st.mu.Lock()
	for i := 0; i < st.used; i++ {
		idx := (st.next - st.used + i + len(st.spans)) % len(st.spans)
		if st.spans[idx].Trace == id {
			sp := st.spans[idx]
			sp.Attrs = append([]Attr(nil), sp.Attrs...)
			out = append(out, sp)
		}
	}
	st.mu.Unlock()
	return out
}

// Node is one span plus its children — the tree form served by the
// admin endpoint and pretty-printed by qmctl.
type Node struct {
	Span     Span
	Children []*Node
}

// Trace assembles the retained spans of id into a forest. Spans whose
// parent was dropped from the ring (or lives on another node) surface
// as roots, so partial traces still render. Returns nil when nothing is
// retained. Siblings and roots sort by start time.
func (t *Tracer) Trace(id ID) []*Node {
	spans := t.collect(id)
	if len(spans) == 0 {
		return nil
	}
	byID := make(map[SpanID]*Node, len(spans))
	for i := range spans {
		byID[spans[i].ID] = &Node{Span: spans[i]}
	}
	var roots []*Node
	for _, n := range byID {
		if p, ok := byID[n.Span.Parent]; ok && p != n {
			p.Children = append(p.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	sortNodes(roots)
	for _, n := range byID {
		sortNodes(n.Children)
	}
	return roots
}

func sortNodes(ns []*Node) {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].Span.Start != ns[j].Span.Start {
			return ns[i].Span.Start < ns[j].Span.Start
		}
		return ns[i].Span.ID < ns[j].Span.ID
	})
}

// Summary is one trace's extent, for the "slowest N" listing.
type Summary struct {
	Trace    ID
	Spans    int
	Start    int64 // earliest span start, UnixNano
	Duration time.Duration
	Root     string // name of the earliest span
}

// MarshalJSON renders the summary with the trace id in hex (a raw [16]byte
// would marshal as a JSON number array).
func (s Summary) MarshalJSON() ([]byte, error) {
	type wire struct {
		Trace    string `json:"trace"`
		Spans    int    `json:"spans"`
		Start    int64  `json:"start_ns"`
		Duration int64  `json:"dur_ns"`
		Root     string `json:"root"`
	}
	return json.Marshal(wire{
		Trace:    s.Trace.String(),
		Spans:    s.Spans,
		Start:    s.Start,
		Duration: int64(s.Duration),
		Root:     s.Root,
	})
}

// Slowest returns up to n retained traces ordered by descending extent
// (latest end minus earliest start across the trace's retained spans).
func (t *Tracer) Slowest(n int) []Summary {
	if t == nil || n <= 0 {
		return nil
	}
	type agg struct {
		min, max int64
		spans    int
		root     string
	}
	traces := make(map[ID]*agg)
	for i := range t.st {
		st := &t.st[i]
		st.mu.Lock()
		for j := 0; j < st.used; j++ {
			idx := (st.next - st.used + j + len(st.spans)) % len(st.spans)
			sp := &st.spans[idx]
			a, ok := traces[sp.Trace]
			if !ok {
				a = &agg{min: sp.Start, max: sp.End, root: sp.Name}
				traces[sp.Trace] = a
			}
			if sp.Start < a.min {
				a.min = sp.Start
				a.root = sp.Name
			}
			if sp.End > a.max {
				a.max = sp.End
			}
			a.spans++
		}
		st.mu.Unlock()
	}
	out := make([]Summary, 0, len(traces))
	for id, a := range traces {
		out = append(out, Summary{
			Trace:    id,
			Spans:    a.spans,
			Start:    a.min,
			Duration: time.Duration(a.max - a.min),
			Root:     a.root,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Duration != out[j].Duration {
			return out[i].Duration > out[j].Duration
		}
		return out[i].Trace.String() < out[j].Trace.String()
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// maybeEmitSlow writes the assembled tree of id to the sink if the
// trace's extent meets the slow threshold.
func (t *Tracer) maybeEmitSlow(id ID) {
	thresh := t.slowNanos.Load()
	if thresh <= 0 {
		return
	}
	roots := t.Trace(id)
	if len(roots) == 0 {
		return
	}
	var min, max int64
	first := true
	var walk func(*Node)
	walk = func(n *Node) {
		if first || n.Span.Start < min {
			min = n.Span.Start
		}
		if first || n.Span.End > max {
			max = n.Span.End
		}
		first = false
		for _, c := range n.Children {
			walk(c)
		}
	}
	for _, r := range roots {
		walk(r)
	}
	if max-min < thresh {
		return
	}
	line, err := json.Marshal(map[string]any{
		"slow_trace": id.String(),
		"dur_ns":     max - min,
		"spans":      roots,
	})
	if err != nil {
		return
	}
	line = append(line, '\n')
	t.sinkMu.Lock()
	if t.sink != nil {
		t.sink.Write(line)
	}
	t.sinkMu.Unlock()
}

// MarshalJSON renders a node as the wire/JSON tree form: hex trace and
// span IDs, nanosecond start, duration, attrs as a flat map.
func (n *Node) MarshalJSON() ([]byte, error) {
	attrs := make(map[string]any, len(n.Span.Attrs))
	for _, a := range n.Span.Attrs {
		if a.Str != "" {
			attrs[a.Key] = a.Str
		} else {
			attrs[a.Key] = a.Int
		}
	}
	type wire struct {
		Trace    string         `json:"trace"`
		Span     string         `json:"span"`
		Parent   string         `json:"parent,omitempty"`
		Name     string         `json:"name"`
		Start    int64          `json:"start_ns"`
		DurNS    int64          `json:"dur_ns"`
		Attrs    map[string]any `json:"attrs,omitempty"`
		Children []*Node        `json:"children,omitempty"`
	}
	w := wire{
		Trace:    n.Span.Trace.String(),
		Span:     fmt.Sprintf("%016x", uint64(n.Span.ID)),
		Name:     n.Span.Name,
		Start:    n.Span.Start,
		DurNS:    n.Span.End - n.Span.Start,
		Attrs:    attrs,
		Children: n.Children,
	}
	if n.Span.Parent != 0 {
		w.Parent = fmt.Sprintf("%016x", uint64(n.Span.Parent))
	}
	if len(attrs) == 0 {
		w.Attrs = nil
	}
	return json.Marshal(w)
}
