package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestIDRoundTrip(t *testing.T) {
	id := NewID()
	if id.IsZero() {
		t.Fatal("NewID returned zero")
	}
	got, err := ParseID(id.String())
	if err != nil {
		t.Fatal(err)
	}
	if got != id {
		t.Fatalf("round trip: %v != %v", got, id)
	}
	if _, err := ParseID("xyz"); err == nil {
		t.Fatal("ParseID accepted garbage")
	}
	if _, err := ParseID(strings.Repeat("g", 32)); err == nil {
		t.Fatal("ParseID accepted non-hex")
	}
}

func TestIDsDistinct(t *testing.T) {
	seen := make(map[ID]bool)
	for i := 0; i < 10000; i++ {
		id := NewID()
		if seen[id] {
			t.Fatalf("duplicate ID after %d draws", i)
		}
		seen[id] = true
	}
}

func TestBeginFinishTree(t *testing.T) {
	tr := New(256, nil)
	id := NewID()
	root, ok := tr.Begin(Ref{Trace: id}, "root")
	if !ok {
		t.Fatal("Begin rejected valid ref")
	}
	root.Annotate(Str("queue", "work"), Int64("lsn", 42))
	child, ok := tr.Begin(root.Ref(), "child")
	if !ok {
		t.Fatal("Begin child failed")
	}
	tr.Finish(&child)
	tr.Finish(&root)

	roots := tr.Trace(id)
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	if roots[0].Span.Name != "root" || len(roots[0].Children) != 1 {
		t.Fatalf("bad tree shape: %+v", roots[0])
	}
	if roots[0].Children[0].Span.Name != "child" {
		t.Fatalf("bad child: %+v", roots[0].Children[0])
	}
	if roots[0].Children[0].Span.Parent != roots[0].Span.ID {
		t.Fatal("child parent link wrong")
	}
	if roots[0].Span.End < roots[0].Span.Start {
		t.Fatal("span ends before it starts")
	}
}

func TestDisabledAndNil(t *testing.T) {
	var nilT *Tracer
	if nilT.Enabled() {
		t.Fatal("nil tracer enabled")
	}
	if _, ok := nilT.Begin(Ref{Trace: NewID()}, "x"); ok {
		t.Fatal("nil tracer began a span")
	}
	nilT.Finish(&Span{})
	nilT.RecordAt(Ref{Trace: NewID()}, "x", time.Now(), time.Now())
	if nilT.Trace(NewID()) != nil || nilT.Slowest(5) != nil {
		t.Fatal("nil tracer returned data")
	}

	tr := New(64, nil)
	tr.SetEnabled(false)
	if _, ok := tr.Begin(Ref{Trace: NewID()}, "x"); ok {
		t.Fatal("disabled tracer began a span")
	}
	// Untraced ref is also rejected.
	tr.SetEnabled(true)
	if _, ok := tr.Begin(Ref{}, "x"); ok {
		t.Fatal("zero ref began a span")
	}
}

func TestRingDropCounting(t *testing.T) {
	reg := obs.NewRegistry()
	tr := New(1, reg) // rounds up to 8 per stripe
	// All spans of one trace land in one stripe; overfill it.
	id := NewID()
	const n = 100
	for i := 0; i < n; i++ {
		tr.RecordAt(Ref{Trace: id}, "s", time.Now(), time.Now())
	}
	if got := tr.Dropped(); got != n-8 {
		t.Fatalf("dropped = %d, want %d", got, n-8)
	}
	if got := len(tr.collect(id)); got != 8 {
		t.Fatalf("retained %d spans, want 8", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["trace.spans_recorded"] != n {
		t.Fatalf("spans_recorded = %d", snap.Counters["trace.spans_recorded"])
	}
	if snap.Counters["trace.spans_dropped"] != n-8 {
		t.Fatalf("spans_dropped = %d", snap.Counters["trace.spans_dropped"])
	}
}

func TestOrphanBecomesRoot(t *testing.T) {
	tr := New(256, nil)
	id := NewID()
	// Parent span 12345 was never recorded (dropped, or on another node).
	tr.RecordAt(Ref{Trace: id, Span: 12345}, "orphan", time.Now(), time.Now())
	roots := tr.Trace(id)
	if len(roots) != 1 || roots[0].Span.Name != "orphan" {
		t.Fatalf("orphan not surfaced as root: %+v", roots)
	}
}

func TestSlowest(t *testing.T) {
	tr := New(1024, nil)
	base := time.Now()
	var slow ID
	for i := 0; i < 5; i++ {
		id := NewID()
		d := time.Duration(i+1) * time.Millisecond
		tr.RecordAt(Ref{Trace: id}, "req", base, base.Add(d))
		if i == 4 {
			slow = id
		}
	}
	top := tr.Slowest(3)
	if len(top) != 3 {
		t.Fatalf("got %d summaries, want 3", len(top))
	}
	if top[0].Trace != slow || top[0].Duration != 5*time.Millisecond {
		t.Fatalf("slowest wrong: %+v", top[0])
	}
	if top[0].Root != "req" || top[0].Spans != 1 {
		t.Fatalf("summary fields wrong: %+v", top[0])
	}
}

func TestSlowSinkEmission(t *testing.T) {
	tr := New(256, nil)
	var buf bytes.Buffer
	tr.SetSlowThreshold(time.Microsecond, &buf)
	id := NewID()
	sp, _ := tr.Begin(Ref{Trace: id}, "process")
	sp.Final = true
	time.Sleep(2 * time.Millisecond)
	tr.Finish(&sp)
	line := buf.String()
	if line == "" {
		t.Fatal("slow sink got nothing")
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(line), &parsed); err != nil {
		t.Fatalf("sink line not JSON: %v\n%s", err, line)
	}
	if parsed["slow_trace"] != id.String() {
		t.Fatalf("wrong trace in sink: %v", parsed["slow_trace"])
	}

	// Fast traces don't emit.
	buf.Reset()
	tr.SetSlowThreshold(time.Hour, &buf)
	sp2, _ := tr.Begin(Ref{Trace: NewID()}, "process")
	sp2.Final = true
	tr.Finish(&sp2)
	if buf.Len() != 0 {
		t.Fatalf("fast trace emitted: %s", buf.String())
	}
}

func TestNodeJSON(t *testing.T) {
	tr := New(64, nil)
	id := NewID()
	root, _ := tr.Begin(Ref{Trace: id}, "root")
	root.Annotate(Int64("lsn", 7), Str("queue", "work"))
	tr.Finish(&root)
	roots := tr.Trace(id)
	b, err := json.Marshal(roots[0])
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	if m["trace"] != id.String() || m["name"] != "root" {
		t.Fatalf("bad JSON: %s", b)
	}
	attrs := m["attrs"].(map[string]any)
	if attrs["lsn"].(float64) != 7 || attrs["queue"] != "work" {
		t.Fatalf("bad attrs: %s", b)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ref := Ref{Trace: NewID(), Span: 9}
	ctx := With(context.Background(), ref)
	if got := From(ctx); got != ref {
		t.Fatalf("ctx round trip: %+v", got)
	}
	if got := From(context.Background()); got.Valid() {
		t.Fatalf("empty ctx carried a ref: %+v", got)
	}
	// Zero ref is not stored.
	if ctx2 := With(context.Background(), Ref{}); From(ctx2).Valid() {
		t.Fatal("zero ref stored")
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New(4096, obs.NewRegistry())
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				id := NewID()
				sp, _ := tr.Begin(Ref{Trace: id}, "op")
				child, _ := tr.Begin(sp.Ref(), "inner")
				child.Annotate(Int64("i", int64(i)))
				tr.Finish(&child)
				tr.Finish(&sp)
				tr.Trace(id)
				tr.Slowest(3)
			}
		}()
	}
	wg.Wait()
}
