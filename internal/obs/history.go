package obs

import (
	"sort"
	"sync"
	"time"
)

// TimedSnapshot is one registry snapshot stamped with when it was taken.
type TimedSnapshot struct {
	At   time.Time `json:"at"`
	Snap Snapshot  `json:"snap"`
}

// History is a fixed-window time series of registry snapshots — the third
// answer the obs plane owes an operator: not "what is the counter now"
// (Snapshot) or "where did this request go" (trace), but "how fast is it
// moving". A background sampler appends one snapshot per interval into a
// bounded ring; Report subtracts the snapshot nearest the window's start
// from the newest one to produce deltas and rates.
//
// Counters are monotonic, so a delta over the window is exact regardless
// of how many samples the window spans — which is also the conservation
// invariant the tests pin: adjacent deltas summed over a window equal the
// endpoint difference.
type History struct {
	reg      *Registry
	interval time.Duration

	mu   sync.Mutex
	buf  []TimedSnapshot
	next int
	full bool

	stop chan struct{}
	done chan struct{}
}

// NewHistory returns a history sampling reg, retaining the last keep
// snapshots taken every interval. Call Start to begin sampling.
func NewHistory(reg *Registry, keep int, interval time.Duration) *History {
	if keep < 2 {
		keep = 2
	}
	if interval <= 0 {
		interval = time.Second
	}
	return &History{
		reg:      reg,
		interval: interval,
		buf:      make([]TimedSnapshot, keep),
	}
}

// Interval returns the configured sampling period.
func (h *History) Interval() time.Duration { return h.interval }

// Sample takes one snapshot immediately and appends it to the ring. The
// background sampler calls this on its tick; tests and the flight
// recorder call it directly for deterministic timing.
func (h *History) Sample() {
	ts := TimedSnapshot{At: time.Now(), Snap: h.reg.Snapshot()}
	h.mu.Lock()
	h.buf[h.next] = ts
	h.next++
	if h.next == len(h.buf) {
		h.next = 0
		h.full = true
	}
	h.mu.Unlock()
}

// Start launches the background sampler. It takes an initial sample
// immediately so Report has a baseline before the first tick.
func (h *History) Start() {
	h.mu.Lock()
	if h.stop != nil {
		h.mu.Unlock()
		return
	}
	h.stop = make(chan struct{})
	h.done = make(chan struct{})
	stop, done := h.stop, h.done
	h.mu.Unlock()

	h.Sample()
	go func() {
		defer close(done)
		t := time.NewTicker(h.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				h.Sample()
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit. Idempotent.
func (h *History) Stop() {
	h.mu.Lock()
	stop, done := h.stop, h.done
	h.stop, h.done = nil, nil
	h.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

// Samples returns the retained snapshots, oldest first.
func (h *History) Samples() []TimedSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	var out []TimedSnapshot
	if h.full {
		out = append(out, h.buf[h.next:]...)
	}
	out = append(out, h.buf[:h.next]...)
	return out
}

// HistoryReport is the delta/rate view over a window, as served by
// GET /metrics/history.
type HistoryReport struct {
	From    time.Time `json:"from"`
	To      time.Time `json:"to"`
	Window  float64   `json:"window_s"` // actual span covered, seconds
	Samples int       `json:"samples"`  // snapshots inside the window

	// Counters maps name -> delta over the window; Rates maps name ->
	// delta / Window per second. Names with zero delta are omitted.
	Counters map[string]uint64  `json:"counters,omitempty"`
	Rates    map[string]float64 `json:"rates,omitempty"`

	// Gauges maps name -> value at the window's end (a gauge has no
	// meaningful delta; its current level is the story).
	Gauges map[string]int64 `json:"gauges,omitempty"`

	// HistCounts/HistSums map histogram name -> observation-count and
	// sum deltas, from which a mean-over-window falls out.
	HistCounts map[string]uint64 `json:"hist_counts,omitempty"`
	HistSums   map[string]uint64 `json:"hist_sums,omitempty"`
}

// Report computes deltas and per-second rates over the trailing window.
// It returns ok=false when fewer than two samples fall in range (no
// baseline to subtract).
func (h *History) Report(window time.Duration) (HistoryReport, bool) {
	samples := h.Samples()
	if len(samples) < 2 {
		return HistoryReport{}, false
	}
	newest := samples[len(samples)-1]
	cutoff := newest.At.Add(-window)
	// Oldest sample still inside the window is the baseline; sort.Search
	// over the time-ordered samples finds it.
	i := sort.Search(len(samples), func(i int) bool { return !samples[i].At.Before(cutoff) })
	if i >= len(samples)-1 {
		i = len(samples) - 2 // window narrower than sampling interval: use adjacent pair
	}
	base := samples[i]

	span := newest.At.Sub(base.At).Seconds()
	if span <= 0 {
		return HistoryReport{}, false
	}
	rep := HistoryReport{
		From:    base.At,
		To:      newest.At,
		Window:  span,
		Samples: len(samples) - i,
	}
	for name, after := range newest.Snap.Counters {
		d := after - base.Snap.Counters[name]
		if d == 0 {
			continue
		}
		if rep.Counters == nil {
			rep.Counters = make(map[string]uint64)
			rep.Rates = make(map[string]float64)
		}
		rep.Counters[name] = d
		rep.Rates[name] = float64(d) / span
	}
	if len(newest.Snap.Gauges) > 0 {
		rep.Gauges = make(map[string]int64, len(newest.Snap.Gauges))
		for name, v := range newest.Snap.Gauges {
			rep.Gauges[name] = v
		}
	}
	for name, after := range newest.Snap.Histograms {
		before := base.Snap.Histograms[name]
		dc := after.Count - before.Count
		if dc == 0 {
			continue
		}
		if rep.HistCounts == nil {
			rep.HistCounts = make(map[string]uint64)
			rep.HistSums = make(map[string]uint64)
		}
		rep.HistCounts[name] = dc
		rep.HistSums[name] = after.Sum - before.Sum
	}
	return rep, true
}
