package obs

import (
	"sync"
	"testing"
)

// TestQuantileDigestObserveSnapshotRace hammers one digest with writers
// and *dedicated* reader goroutines (the existing concurrent test only
// interleaves reads inside writer goroutines): Observe racing against
// continuous Quantile/Snapshot/Count on one ring, with percentile
// monotonicity checked on every read.
func TestQuantileDigestObserveSnapshotRace(t *testing.T) {
	d := NewQuantileDigest(512)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				d.Observe(int64(g*2000 + i))
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				p50 := d.Quantile(0.50)
				p99 := d.Quantile(0.99)
				if p50 > 0 && p99 > 0 && p99 < p50 {
					t.Error("p99 below p50")
					return
				}
				snap := d.Snapshot()
				if snap.P95 > 0 && snap.P99 > 0 && snap.P99 < snap.P95 {
					t.Error("snapshot p99 below p95")
					return
				}
				_ = d.Count()
			}
		}()
	}
	wg.Wait()
	if got := d.Count(); got != 8000 {
		t.Fatalf("lost observations: count %d, want 8000", got)
	}
	if d.Quantile(1.0) == 0 {
		t.Fatal("max quantile empty after 8000 observations")
	}
}
