package obs

import (
	"math/rand"
	"sync"
	"testing"
)

func TestQuantileDigestEmpty(t *testing.T) {
	d := NewQuantileDigest(0)
	if d.Window() != digestDefaultWindow {
		t.Fatalf("default window = %d, want %d", d.Window(), digestDefaultWindow)
	}
	if got := d.Quantile(0.99); got != 0 {
		t.Fatalf("empty digest p99 = %d, want 0", got)
	}
	s := d.Snapshot()
	if s.Count != 0 || s.Filled != 0 || s.P99 != 0 {
		t.Fatalf("empty snapshot = %+v", s)
	}
}

// TestQuantileDigestExactOnKnownData: with a full window of 0..W-1 the
// nearest-rank quantile is exactly computable.
func TestQuantileDigestExactOnKnownData(t *testing.T) {
	const w = 100
	d := NewQuantileDigest(w)
	perm := rand.New(rand.NewSource(1)).Perm(w)
	for _, v := range perm {
		d.Observe(int64(v))
	}
	cases := []struct {
		q    float64
		want int64
	}{
		{0.50, 50}, {0.90, 90}, {0.99, 99}, {1.0, 99}, {0.01, 1},
	}
	for _, c := range cases {
		if got := d.Quantile(c.q); got != c.want {
			t.Errorf("Quantile(%v) = %d, want %d", c.q, got, c.want)
		}
	}
	if d.Count() != w {
		t.Fatalf("Count = %d, want %d", d.Count(), w)
	}
}

// TestQuantileDigestWindowEvicts: the digest must forget old regimes —
// after a full window of fast samples, the earlier slow epoch is gone.
func TestQuantileDigestWindowEvicts(t *testing.T) {
	const w = 64
	d := NewQuantileDigest(w)
	for i := 0; i < w; i++ {
		d.Observe(1_000_000) // slow epoch
	}
	if got := d.Quantile(0.5); got != 1_000_000 {
		t.Fatalf("p50 during slow epoch = %d", got)
	}
	for i := 0; i < w; i++ {
		d.Observe(10) // straggler healed
	}
	if got := d.Quantile(0.99); got != 10 {
		t.Fatalf("p99 after full window of fast samples = %d, want 10 (old epoch must age out)", got)
	}
	if d.Count() != 2*w {
		t.Fatalf("Count = %d, want %d", d.Count(), 2*w)
	}
}

// TestQuantileDigestPartialWindow: quantiles over a partially filled
// window use only the samples observed so far.
func TestQuantileDigestPartialWindow(t *testing.T) {
	d := NewQuantileDigest(512)
	d.Observe(5)
	d.Observe(7)
	d.Observe(9)
	if got := d.Quantile(0.5); got != 7 {
		t.Fatalf("p50 of {5,7,9} = %d, want 7", got)
	}
	s := d.Snapshot()
	if s.Filled != 3 || s.Count != 3 {
		t.Fatalf("snapshot = %+v, want filled=3 count=3", s)
	}
	if s.P50 != 7 || s.P99 != 9 {
		t.Fatalf("snapshot percentiles = %+v", s)
	}
}

// TestQuantileDigestCacheRefreshes: reads interleaved with writes must
// converge on the new data within the refresh budget, not pin the first
// sorted view forever.
func TestQuantileDigestCacheRefreshes(t *testing.T) {
	d := NewQuantileDigest(32)
	for i := 0; i < 32; i++ {
		d.Observe(1)
	}
	if got := d.Quantile(0.5); got != 1 {
		t.Fatalf("p50 = %d, want 1", got)
	}
	// Overwrite the whole window; more than digestRefresh observations
	// guarantees the cache goes stale regardless of read timing.
	for i := 0; i < 32; i++ {
		d.Observe(100)
		d.Quantile(0.5) // interleaved reads must not wedge the cache
	}
	if got := d.Quantile(0.5); got != 100 {
		t.Fatalf("p50 after overwrite = %d, want 100", got)
	}
}

// TestQuantileDigestConcurrent: -race smoke over concurrent observers and
// readers; also checks total-count conservation.
func TestQuantileDigestConcurrent(t *testing.T) {
	d := NewQuantileDigest(256)
	const (
		workers = 8
		perW    = 500
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perW; i++ {
				d.Observe(int64(rng.Intn(1000)))
				if i%7 == 0 {
					_ = d.Quantile(0.95)
				}
				if i%13 == 0 {
					_ = d.Snapshot()
				}
			}
		}(int64(w))
	}
	wg.Wait()
	if d.Count() != workers*perW {
		t.Fatalf("Count = %d, want %d", d.Count(), workers*perW)
	}
	p99 := d.Quantile(0.99)
	if p99 < 0 || p99 >= 1000 {
		t.Fatalf("p99 = %d out of observed range [0,1000)", p99)
	}
}
