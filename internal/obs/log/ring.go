package log

import (
	"sort"
	"sync"
	"sync/atomic"
)

// ringStripes is the number of independent sub-rings. Emitters hash onto
// a stripe by sequence number, so concurrent emitters contend on
// different mutexes; a global atomic sequence preserves total order for
// reassembly in Recent.
const ringStripes = 8

// Ring is a bounded in-memory buffer of the most recent events — the
// storage behind the flight recorder and the admin /logs endpoint. Old
// events are overwritten, never flushed: the ring answers "what were the
// last N things this process said", not "everything it ever said".
type Ring struct {
	seq     atomic.Uint64
	dropped atomic.Uint64
	stripes [ringStripes]ringStripe
}

type ringStripe struct {
	mu   sync.Mutex
	buf  []Event
	next int // index of the slot overwritten next
	full bool
	_    [24]byte // keep neighboring stripes off one cache line
}

// NewRing returns a ring retaining approximately capacity events
// (rounded up to a multiple of the stripe count, minimum one per stripe).
func NewRing(capacity int) *Ring {
	per := (capacity + ringStripes - 1) / ringStripes
	if per < 1 {
		per = 1
	}
	r := &Ring{}
	for i := range r.stripes {
		r.stripes[i].buf = make([]Event, per)
	}
	return r
}

// Emit stores a copy of the event, stamping it with the ring's global
// sequence number. Implements Sink.
func (r *Ring) Emit(e *Event) {
	seq := r.seq.Add(1)
	st := &r.stripes[seq%ringStripes]
	st.mu.Lock()
	if st.full {
		r.dropped.Add(1)
	}
	st.buf[st.next] = *e
	st.buf[st.next].Seq = seq
	st.next++
	if st.next == len(st.buf) {
		st.next = 0
		st.full = true
	}
	st.mu.Unlock()
}

// Dropped returns how many events have been overwritten before being read.
func (r *Ring) Dropped() uint64 { return r.dropped.Load() }

// Recent returns up to max retained events, oldest first in global
// emission order. max <= 0 means all retained events.
func (r *Ring) Recent(max int) []Event {
	var out []Event
	for i := range r.stripes {
		st := &r.stripes[i]
		st.mu.Lock()
		n := st.next
		if st.full {
			n = len(st.buf)
		}
		for j := 0; j < n; j++ {
			out = append(out, st.buf[j])
		}
		st.mu.Unlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}
