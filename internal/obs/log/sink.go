package log

import (
	"io"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// WriterSink renders events as lines to an io.Writer — one Write call per
// event, serialized by a mutex so concurrent emitters never interleave
// bytes. The render buffer is reused across events, so a quiet logger
// holds one small buffer, not a buffer per event.
type WriterSink struct {
	mu   sync.Mutex
	w    io.Writer
	buf  []byte
	json bool
}

// NewJSONSink returns a sink writing one JSON object per line — the
// machine-readable format behind qmd's -log-format=json.
func NewJSONSink(w io.Writer) *WriterSink { return &WriterSink{w: w, json: true} }

// NewTextSink returns a sink writing human-readable "time level [sub] msg
// k=v…" lines.
func NewTextSink(w io.Writer) *WriterSink { return &WriterSink{w: w} }

// Emit renders and writes the event. Write errors are swallowed: logging
// must never fail the operation being logged.
func (s *WriterSink) Emit(e *Event) {
	s.mu.Lock()
	s.buf = s.buf[:0]
	if s.json {
		s.buf = e.AppendJSON(s.buf)
	} else {
		s.buf = e.AppendText(s.buf)
	}
	s.buf = append(s.buf, '\n')
	_, _ = s.w.Write(s.buf)
	s.mu.Unlock()
}

// AppendJSON renders the event as a single JSON object.
func (e *Event) AppendJSON(b []byte) []byte {
	b = append(b, `{"ts":`...)
	b = strconv.AppendInt(b, e.Time, 10)
	b = append(b, `,"level":"`...)
	b = append(b, e.Level.String()...)
	b = append(b, '"')
	if e.Seq != 0 {
		b = append(b, `,"seq":`...)
		b = strconv.AppendUint(b, e.Seq, 10)
	}
	if e.Sub != "" {
		b = append(b, `,"sub":`...)
		b = appendJSONString(b, e.Sub)
	}
	b = append(b, `,"msg":`...)
	b = appendJSONString(b, e.Msg)
	if !e.Trace.IsZero() {
		b = append(b, `,"trace":"`...)
		b = append(b, e.Trace.String()...)
		b = append(b, `","span":`...)
		b = strconv.AppendUint(b, uint64(e.Span), 10)
	}
	for i := 0; i < e.NField; i++ {
		f := &e.Fields[i]
		b = append(b, ',')
		b = appendJSONString(b, f.Key)
		b = append(b, ':')
		switch f.kind {
		case kindInt64, kindDuration:
			b = strconv.AppendInt(b, f.num, 10)
		case kindUint64:
			b = strconv.AppendUint(b, uint64(f.num), 10)
		case kindBool:
			b = strconv.AppendBool(b, f.num != 0)
		default:
			b = appendJSONString(b, f.str)
		}
	}
	return append(b, '}')
}

// MarshalJSON lets encoding/json embed events (flight dumps, /logs).
func (e *Event) MarshalJSON() ([]byte, error) {
	return e.AppendJSON(make([]byte, 0, 128)), nil
}

// AppendText renders the event as a human-readable line.
func (e *Event) AppendText(b []byte) []byte {
	b = time.Unix(0, e.Time).UTC().AppendFormat(b, "2006-01-02T15:04:05.000Z")
	b = append(b, ' ')
	b = append(b, e.Level.String()...)
	if e.Sub != "" {
		b = append(b, " ["...)
		b = append(b, e.Sub...)
		b = append(b, ']')
	}
	b = append(b, ' ')
	b = append(b, e.Msg...)
	if !e.Trace.IsZero() {
		b = append(b, " trace="...)
		b = append(b, e.Trace.String()...)
	}
	for i := 0; i < e.NField; i++ {
		f := &e.Fields[i]
		b = append(b, ' ')
		b = append(b, f.Key...)
		b = append(b, '=')
		switch f.kind {
		case kindInt64:
			b = strconv.AppendInt(b, f.num, 10)
		case kindDuration:
			b = append(b, time.Duration(f.num).String()...)
		case kindUint64:
			b = strconv.AppendUint(b, uint64(f.num), 10)
		case kindBool:
			b = strconv.AppendBool(b, f.num != 0)
		default:
			b = strconv.AppendQuote(b, f.str)
		}
	}
	return b
}

const hexDigits = "0123456789abcdef"

// appendJSONString appends s as a JSON string literal. Hand-rolled
// because strconv.AppendQuote emits Go escapes (\x00) that are not valid
// JSON; this matches encoding/json's escaping for the control range.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		c := s[i]
		if c >= 0x20 && c != '"' && c != '\\' && c < utf8.RuneSelf {
			i++
			continue
		}
		if c >= utf8.RuneSelf {
			// Valid multi-byte UTF-8 passes through untouched.
			r, size := utf8.DecodeRuneInString(s[i:])
			if r != utf8.RuneError || size > 1 {
				i += size
				continue
			}
			b = append(b, s[start:i]...)
			b = append(b, `�`...)
			i++
			start = i
			continue
		}
		b = append(b, s[start:i]...)
		switch c {
		case '"':
			b = append(b, '\\', '"')
		case '\\':
			b = append(b, '\\', '\\')
		case '\n':
			b = append(b, '\\', 'n')
		case '\r':
			b = append(b, '\\', 'r')
		case '\t':
			b = append(b, '\\', 't')
		default:
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		}
		i++
		start = i
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}
