// Package log is the event-logging pillar of the observability substrate:
// a leveled, structured (key/value) logger built for a system whose hot
// paths are measured in nanoseconds.
//
// Counters (package obs) aggregate, traces (package obs/trace) follow one
// request; events record *what happened* — recovery found a torn segment,
// a queue diverted an element to its error queue, the group-commit writer
// poisoned itself — with enough structure that an operator (or the flight
// recorder, package obs/flight) can filter and correlate them afterwards.
//
// The design contract, in order:
//
//   - Zero cost when silent. A call below the logger's level is one nil
//     check plus one atomic load and must not allocate: fields are plain
//     structs passed variadically, and the logger only ever copies their
//     values, so the compiler keeps the argument slice on the caller's
//     stack. TestDisabledLogZeroAllocs pins this.
//   - Events are values. An emitted Event is self-contained (fixed field
//     array, no pointers into caller state), so sinks may retain copies
//     forever — the flight recorder's ring does exactly that.
//   - Sinks are pluggable and independent: a WriterSink renders JSON or
//     text lines (one write per event, under its own mutex), a Ring keeps
//     the last N events in memory for post-mortems. A logger fans out to
//     any number of them via one atomic pointer load.
//   - Trace correlation is a field: log.Trace(ref) stamps the event with
//     the request's trace/span IDs so an event line can be joined against
//     the span tree that produced it.
//
// A nil *Logger is a valid disabled logger: every method no-ops, so
// libraries thread loggers without guards.
package log

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// Level classifies an event's severity. Levels order Debug < Info < Warn
// < Error; a logger emits events at or above its configured level.
type Level int32

const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
	// LevelOff silences the logger entirely.
	LevelOff
)

// String renders the level as its lowercase name.
func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	case LevelOff:
		return "off"
	default:
		return fmt.Sprintf("level(%d)", int32(l))
	}
}

// MarshalJSON renders the level as its lowercase name, matching the JSON
// sink's "level" key.
func (l Level) MarshalJSON() ([]byte, error) {
	return []byte(`"` + l.String() + `"`), nil
}

// UnmarshalJSON accepts a level name as rendered by String, so emitted
// event documents (GET /logs, flight dumps) decode back into Events.
func (l *Level) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	v, err := ParseLevel(s)
	if err != nil {
		return err
	}
	*l = v
	return nil
}

// ParseLevel parses a level name as rendered by String.
func ParseLevel(s string) (Level, error) {
	switch strings.ToLower(s) {
	case "debug":
		return LevelDebug, nil
	case "info":
		return LevelInfo, nil
	case "warn", "warning":
		return LevelWarn, nil
	case "error":
		return LevelError, nil
	case "off", "none":
		return LevelOff, nil
	default:
		return LevelInfo, fmt.Errorf("log: unknown level %q", s)
	}
}

// fieldKind discriminates a Field's value.
type fieldKind uint8

const (
	kindInt64 fieldKind = iota
	kindUint64
	kindString
	kindBool
	kindDuration
	kindTrace // consumed by the logger: stamps Event.Trace/Span
)

// Field is one structured key/value annotation. Fields are plain values:
// constructing one never allocates (except Err, which renders the error),
// so guarded-out log calls are free.
type Field struct {
	Key  string
	kind fieldKind
	num  int64
	str  string
}

// Str builds a string field.
func Str(key, v string) Field { return Field{Key: key, kind: kindString, str: v} }

// Int builds an integer field.
func Int(key string, v int) Field { return Field{Key: key, kind: kindInt64, num: int64(v)} }

// Int64 builds an int64 field.
func Int64(key string, v int64) Field { return Field{Key: key, kind: kindInt64, num: v} }

// Uint64 builds a uint64 field.
func Uint64(key string, v uint64) Field {
	return Field{Key: key, kind: kindUint64, num: int64(v)}
}

// Bool builds a boolean field.
func Bool(key string, v bool) Field {
	var n int64
	if v {
		n = 1
	}
	return Field{Key: key, kind: kindBool, num: n}
}

// Dur builds a duration field (rendered as nanoseconds in JSON, as a
// time.Duration string in text).
func Dur(key string, d time.Duration) Field {
	return Field{Key: key, kind: kindDuration, num: int64(d)}
}

// Err builds an "err" field from an error. Unlike the other constructors
// it allocates (the error renders to a string), so use it on failure
// paths, not guarded hot paths.
func Err(err error) Field {
	if err == nil {
		return Field{Key: "err", kind: kindString, str: "<nil>"}
	}
	return Field{Key: "err", kind: kindString, str: err.Error()}
}

// Trace builds a correlation field from a trace ref: the logger lifts it
// out of the field list and stamps the event's Trace/Span instead. An
// invalid ref yields an inert field.
func Trace(ref trace.Ref) Field {
	if !ref.Valid() {
		return Field{kind: kindTrace}
	}
	return Field{kind: kindTrace, str: string(ref.Trace[:]), num: int64(ref.Span)}
}

// MaxFields is the number of fields one event retains; extra fields are
// dropped (a wiring bug, not a runtime condition — call sites are static).
const MaxFields = 10

// Event is one emitted log event. It is a self-contained value — sinks
// may copy and retain it indefinitely.
type Event struct {
	// Seq is a ring-assigned total-order stamp (0 until a Ring sees the
	// event); Time is wall-clock UnixNano at emission. The json tags
	// mirror AppendJSON's keys so emitted documents decode back.
	Seq  uint64 `json:"seq"`
	Time int64  `json:"ts"`
	// Level, Sub, and Msg are the event's severity, emitting subsystem
	// ("wal", "queue.recovery", …), and human message.
	Level Level  `json:"level"`
	Sub   string `json:"sub"`
	Msg   string `json:"msg"`
	// Trace/Span correlate the event with a request's span tree; zero
	// when the event is not request-scoped.
	Trace trace.ID     `json:"trace"`
	Span  trace.SpanID `json:"span"`
	// Fields[:NField] are the structured annotations.
	NField int              `json:"-"`
	Fields [MaxFields]Field `json:"-"`
}

// Sink consumes emitted events. Emit may be called concurrently; the
// *Event is only valid for the duration of the call — retain a copy of
// the value, never the pointer.
type Sink interface {
	Emit(e *Event)
}

// lcore is the state shared by a logger and its Named children.
type lcore struct {
	level atomic.Int32
	sinks atomic.Pointer[[]Sink]
	mu    sync.Mutex // guards sink-list replacement

	// counters[level] counts emitted events per level; private counters
	// when no registry was supplied.
	counters [4]*obs.Counter
}

// Logger emits structured events to its sinks. Loggers are cheap handles
// over shared state: Named derives subsystem-scoped children that share
// the level and sink list. A nil *Logger is a valid disabled logger.
type Logger struct {
	c   *lcore
	sub string
}

// New returns a logger at the given level fanning out to sinks. reg, when
// non-nil, receives log.events{level=…} counters.
func New(level Level, reg *obs.Registry, sinks ...Sink) *Logger {
	c := &lcore{}
	c.level.Store(int32(level))
	s := append([]Sink(nil), sinks...)
	c.sinks.Store(&s)
	for lv := LevelDebug; lv <= LevelError; lv++ {
		if reg != nil {
			c.counters[lv] = reg.Counter("log.events", "level", lv.String())
		} else {
			c.counters[lv] = &obs.Counter{}
		}
	}
	return &Logger{c: c}
}

// Named derives a child logger whose events carry the given subsystem
// name (joined with "." onto the parent's). Safe on nil.
func (l *Logger) Named(sub string) *Logger {
	if l == nil {
		return nil
	}
	if l.sub != "" {
		sub = l.sub + "." + sub
	}
	return &Logger{c: l.c, sub: sub}
}

// SetLevel changes the emission threshold for this logger and everything
// sharing its core (parent and Named children). Safe on nil.
func (l *Logger) SetLevel(level Level) {
	if l != nil {
		l.c.level.Store(int32(level))
	}
}

// Level returns the current emission threshold (LevelOff on nil).
func (l *Logger) Level() Level {
	if l == nil {
		return LevelOff
	}
	return Level(l.c.level.Load())
}

// Enabled reports whether an event at level would be emitted — the guard
// for call sites whose field construction is itself expensive.
func (l *Logger) Enabled(level Level) bool {
	return l != nil && level >= Level(l.c.level.Load())
}

// AddSink attaches another sink (copy-on-write; emitters never block on
// the swap). Safe on nil.
func (l *Logger) AddSink(s Sink) {
	if l == nil || s == nil {
		return
	}
	l.c.mu.Lock()
	old := *l.c.sinks.Load()
	next := make([]Sink, 0, len(old)+1)
	next = append(next, old...)
	next = append(next, s)
	l.c.sinks.Store(&next)
	l.c.mu.Unlock()
}

// Debug emits a debug-level event.
func (l *Logger) Debug(msg string, fields ...Field) { l.log(LevelDebug, msg, fields) }

// Info emits an info-level event.
func (l *Logger) Info(msg string, fields ...Field) { l.log(LevelInfo, msg, fields) }

// Warn emits a warn-level event.
func (l *Logger) Warn(msg string, fields ...Field) { l.log(LevelWarn, msg, fields) }

// Error emits an error-level event.
func (l *Logger) Error(msg string, fields ...Field) { l.log(LevelError, msg, fields) }

// log is the single emission path. The fields slice is only read and its
// values copied — it never escapes, so disabled calls cost the level
// check alone and allocate nothing.
func (l *Logger) log(level Level, msg string, fields []Field) {
	if l == nil || level < Level(l.c.level.Load()) || level >= LevelOff {
		return
	}
	var e Event
	e.Time = time.Now().UnixNano()
	e.Level = level
	e.Sub = l.sub
	e.Msg = msg
	n := 0
	for i := range fields {
		f := &fields[i]
		if f.kind == kindTrace {
			if len(f.str) == len(e.Trace) {
				copy(e.Trace[:], f.str)
				e.Span = trace.SpanID(f.num)
			}
			continue
		}
		if n < MaxFields {
			e.Fields[n] = *f
			n++
		}
	}
	e.NField = n
	for _, s := range *l.c.sinks.Load() {
		s.Emit(&e)
	}
	l.c.counters[level].Inc()
}
