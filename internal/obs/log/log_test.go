package log

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/obs/trace"
)

// TestDisabledLogZeroAllocs pins the tentpole guarantee: a log call below
// the logger's level must not allocate, even with a full complement of
// fields. If this fails, some Field or the variadic slice started
// escaping — fix the escape, don't relax the test.
func TestDisabledLogZeroAllocs(t *testing.T) {
	l := New(LevelError, nil, NewJSONSink(&bytes.Buffer{})).Named("queue")
	err := errors.New("boom")
	allocs := testing.AllocsPerRun(1000, func() {
		l.Debug("enqueue",
			Str("queue", "work"),
			Int("n", 3),
			Uint64("lsn", 42),
			Bool("fsync", true),
			Dur("wait", 5*time.Microsecond),
			Err(err),
		)
	})
	if allocs != 0 {
		t.Fatalf("disabled log call allocated %v allocs/op, want 0", allocs)
	}

	// A nil logger is the fully-disabled form libraries hold.
	var nilL *Logger
	allocs = testing.AllocsPerRun(1000, func() {
		nilL.Error("x", Str("a", "b"))
	})
	if allocs != 0 {
		t.Fatalf("nil logger call allocated %v allocs/op, want 0", allocs)
	}
}

func TestLevelGatingAndCounters(t *testing.T) {
	reg := obs.NewRegistry()
	ring := NewRing(64)
	l := New(LevelWarn, reg, ring)
	l.Debug("d")
	l.Info("i")
	l.Warn("w")
	l.Error("e")
	got := ring.Recent(0)
	if len(got) != 2 || got[0].Msg != "w" || got[1].Msg != "e" {
		t.Fatalf("want [w e], got %+v", got)
	}
	snap := reg.Snapshot()
	if snap.Counters["log.events{level=warn}"] != 1 || snap.Counters["log.events{level=error}"] != 1 {
		t.Fatalf("emission counters wrong: %v", snap.Counters)
	}
	if _, ok := snap.Counters["log.events{level=info}"]; ok && snap.Counters["log.events{level=info}"] != 0 {
		t.Fatalf("suppressed level counted: %v", snap.Counters)
	}

	l.SetLevel(LevelDebug)
	if !l.Enabled(LevelDebug) {
		t.Fatal("SetLevel(debug) did not take effect")
	}
	l.Debug("d2")
	if n := len(ring.Recent(0)); n != 3 {
		t.Fatalf("after lowering level want 3 events, got %d", n)
	}

	l.SetLevel(LevelOff)
	l.Error("silenced")
	if n := len(ring.Recent(0)); n != 3 {
		t.Fatalf("LevelOff still emitted: %d events", n)
	}
}

func TestNamedSubsystems(t *testing.T) {
	ring := NewRing(8)
	l := New(LevelInfo, nil, ring)
	l.Named("queue").Named("recovery").Info("scan")
	ev := ring.Recent(0)
	if len(ev) != 1 || ev[0].Sub != "queue.recovery" {
		t.Fatalf("want sub queue.recovery, got %+v", ev)
	}
	// Named on nil stays nil and inert.
	var nilL *Logger
	nilL.Named("x").Info("nope")
}

func TestJSONOutputValidAndComplete(t *testing.T) {
	var buf bytes.Buffer
	l := New(LevelDebug, nil, NewJSONSink(&buf)).Named("wal")
	ref := trace.Ref{Span: 7}
	ref.Trace[0] = 0xab
	l.Warn("control \x01 and \"quote\" and \\slash\n",
		Str("path", "/tmp/seg\t01.wal"),
		Int64("neg", -5),
		Uint64("big", 1<<63),
		Bool("ok", false),
		Dur("d", time.Millisecond),
		Trace(ref),
	)
	line := buf.String()
	var doc map[string]any
	if err := json.Unmarshal([]byte(line), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, line)
	}
	if doc["level"] != "warn" || doc["sub"] != "wal" {
		t.Fatalf("level/sub wrong: %v", doc)
	}
	if doc["msg"] != "control \x01 and \"quote\" and \\slash\n" {
		t.Fatalf("msg did not round-trip: %q", doc["msg"])
	}
	if doc["path"] != "/tmp/seg\t01.wal" || doc["neg"] != float64(-5) || doc["ok"] != false {
		t.Fatalf("fields wrong: %v", doc)
	}
	if doc["trace"] != ref.Trace.String() || doc["span"] != float64(7) {
		t.Fatalf("trace correlation missing: %v", doc)
	}
	if !strings.Contains(line, `"big":9223372036854775808`) {
		t.Fatalf("uint64 lost precision: %s", line)
	}
}

func TestTextOutput(t *testing.T) {
	var buf bytes.Buffer
	l := New(LevelDebug, nil, NewTextSink(&buf)).Named("rpc")
	l.Info("accepted", Str("peer", "1.2.3.4:9"), Dur("d", 2*time.Second))
	line := buf.String()
	for _, want := range []string{" info ", "[rpc]", "accepted", `peer="1.2.3.4:9"`, "d=2s"} {
		if !strings.Contains(line, want) {
			t.Fatalf("text line missing %q: %s", want, line)
		}
	}
}

func TestRingOverwriteAndOrder(t *testing.T) {
	ring := NewRing(16)
	l := New(LevelDebug, nil, ring)
	for i := 0; i < 100; i++ {
		l.Info(fmt.Sprintf("m%d", i), Int("i", i))
	}
	ev := ring.Recent(0)
	if len(ev) != 16 {
		t.Fatalf("want 16 retained, got %d", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, ev[i-1].Seq, ev[i].Seq)
		}
	}
	if ev[len(ev)-1].Msg != "m99" {
		t.Fatalf("newest event missing: %+v", ev[len(ev)-1])
	}
	if ring.Dropped() == 0 {
		t.Fatal("overwrites not counted as drops")
	}
	if got := ring.Recent(4); len(got) != 4 || got[3].Msg != "m99" {
		t.Fatalf("Recent(4) want newest tail, got %+v", got)
	}
}

// TestConcurrentEmit hammers every concurrent surface at once — emitters,
// level changes, sink attachment, ring reads — and relies on -race for
// verdict beyond basic sanity.
func TestConcurrentEmit(t *testing.T) {
	ring := NewRing(128)
	var buf bytes.Buffer
	l := New(LevelDebug, obs.NewRegistry(), ring)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			sub := l.Named(fmt.Sprintf("g%d", g))
			for i := 0; i < 500; i++ {
				sub.Info("tick", Int("i", i), Int("g", g))
			}
		}(g)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			l.SetLevel(LevelDebug)
			ring.Recent(16)
		}
	}()
	l.AddSink(NewJSONSink(&buf))
	wg.Wait()
	ev := ring.Recent(0)
	if len(ev) != 128 {
		t.Fatalf("ring retained %d, want 128", len(ev))
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].Seq <= ev[i-1].Seq {
			t.Fatalf("duplicate or disordered seq under concurrency")
		}
	}
}

func TestParseLevel(t *testing.T) {
	for s, want := range map[string]Level{
		"debug": LevelDebug, "info": LevelInfo, "WARN": LevelWarn,
		"warning": LevelWarn, "error": LevelError, "off": LevelOff,
	} {
		got, err := ParseLevel(s)
		if err != nil || got != want {
			t.Fatalf("ParseLevel(%q) = %v, %v", s, got, err)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

// BenchmarkDisabledLog is the CI smoke target: the disabled hot path must
// report 0 allocs/op.
func BenchmarkDisabledLog(b *testing.B) {
	l := New(LevelError, nil, NewJSONSink(&bytes.Buffer{})).Named("queue")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Debug("enqueue", Str("queue", "work"), Int("n", i), Bool("fsync", true))
	}
}

// BenchmarkEnabledJSON prices the enabled path (event build + render + write).
func BenchmarkEnabledJSON(b *testing.B) {
	l := New(LevelDebug, nil, NewJSONSink(discard{})).Named("queue")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Info("enqueue", Str("queue", "work"), Int("n", i), Bool("fsync", true))
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
