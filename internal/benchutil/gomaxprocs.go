package benchutil

import (
	"fmt"
	"runtime"
	"testing"
)

// Procs is the standard GOMAXPROCS matrix for contention-sensitive
// testing.B benchmarks: 1 reproduces the single-CPU scheduler regime
// recorded in BENCH_queue_sharding.json (goroutines timeshare one P, so
// cross-core cache-line and futex effects are masked), 4 exposes real
// multi-P contention on shared cursors and locks.
var Procs = []int{1, 4}

// WithGOMAXPROCS runs fn as one sub-benchmark per entry of procs, setting
// GOMAXPROCS for the duration of each and restoring the previous value
// afterwards. Sub-benchmarks are named "procs=N" so the matrix arm stays
// in the recorded benchmark name.
func WithGOMAXPROCS(b *testing.B, procs []int, fn func(b *testing.B)) {
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, p := range procs {
		b.Run(fmt.Sprintf("procs=%d", p), func(b *testing.B) {
			runtime.GOMAXPROCS(p)
			defer runtime.GOMAXPROCS(prev)
			fn(b)
		})
	}
}
