package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/queue"
)

// seatHandler is a two-round seat-selection conversation: the server
// offers seats, the client picks one, the server confirms a hold count,
// the client confirms, the server books. State crosses rounds via the
// scratch pad only (the server is stateless across transactions).
func seatHandler(rc *ReqCtx, state, input []byte, round int) (newState, output []byte, done bool, err error) {
	switch round {
	case 0:
		// input is the original request: the desired section.
		return []byte("offered:" + string(input)), []byte("seats available: 12A 12B 12C"), false, nil
	case 1:
		// input is the chosen seat.
		if !strings.HasPrefix(string(state), "offered:") {
			return nil, nil, false, fmt.Errorf("lost conversation state %q", state)
		}
		return append(state, ';'+byte(0)), []byte("hold placed on " + string(input) + "; confirm?"), false, nil
	case 2:
		if string(input) != "yes" {
			return nil, []byte("booking abandoned"), true, nil
		}
		base, _, _ := strings.Cut(rc.Request.RID, "#")
		if err := rc.Repo.KVSet(rc.Ctx, rc.Txn, "bookings", base, state); err != nil {
			return nil, nil, false, err
		}
		return nil, []byte("booked"), true, nil
	default:
		return nil, nil, false, fmt.Errorf("unexpected round %d", round)
	}
}

func newConvEnv(t *testing.T) *queue.Repository {
	t.Helper()
	repo, _, err := queue.Open(t.TempDir(), queue.Options{NoFsync: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { repo.Close() })
	if err := repo.CreateQueue(queue.QueueConfig{Name: "req"}); err != nil {
		t.Fatal(err)
	}
	return repo
}

func TestPseudoConversationalFlow(t *testing.T) {
	repo := newConvEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go ServeConversational(ctx, ConvServerConfig{Repo: repo, Queue: "req", Handler: seatHandler})

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	sess := clerk.Interactive("rid-000001")
	if err := sess.Start(ctx, []byte("economy")); err != nil {
		t.Fatal(err)
	}
	out, done, err := sess.Receive(ctx, nil)
	if err != nil || done {
		t.Fatalf("round 0: %+v done=%v err=%v", out, done, err)
	}
	if string(out.Body) != "seats available: 12A 12B 12C" {
		t.Fatalf("offer = %q", out.Body)
	}
	if clerk.State() != StateIntermediateIO {
		t.Fatalf("state = %s", clerk.State())
	}
	if err := sess.SendInput(ctx, []byte("12B")); err != nil {
		t.Fatal(err)
	}
	out, done, err = sess.Receive(ctx, nil)
	if err != nil || done {
		t.Fatalf("round 1: done=%v err=%v", done, err)
	}
	if !strings.Contains(string(out.Body), "hold placed on 12B") {
		t.Fatalf("hold = %q", out.Body)
	}
	if err := sess.SendInput(ctx, []byte("yes")); err != nil {
		t.Fatal(err)
	}
	out, done, err = sess.Receive(ctx, nil)
	if err != nil || !done {
		t.Fatalf("final: done=%v err=%v", done, err)
	}
	if string(out.Body) != "booked" {
		t.Fatalf("final = %q", out.Body)
	}
	if clerk.State() != StateReplyRecvd {
		t.Fatalf("state = %s", clerk.State())
	}
	if v, ok, _ := repo.KVGet(ctx, nil, "bookings", "rid-000001", false); !ok || len(v) == 0 {
		t.Fatal("booking record missing")
	}
}

func TestPseudoConversationalClientCrashMidConversation(t *testing.T) {
	repo := newConvEnv(t)
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	go ServeConversational(ctx, ConvServerConfig{Repo: repo, Queue: "req", Handler: seatHandler})

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	sess := clerk.Interactive("rid-000002")
	if err := sess.Start(ctx, []byte("economy")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Receive(ctx, nil); err != nil {
		t.Fatal(err)
	}
	if err := sess.SendInput(ctx, []byte("12C")); err != nil {
		t.Fatal(err)
	}
	// Crash: the client loses everything. Reconnect; the registration
	// says the outstanding request is "rid-000002#1".
	clerk2 := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	info, err := clerk2.Connect(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !info.Outstanding || info.SRID != "rid-000002#1" {
		t.Fatalf("resync info %+v", info)
	}
	sess2 := clerk2.ResumeInteractive(info.SRID)
	out, done, err := sess2.Receive(ctx, nil)
	if err != nil || done {
		t.Fatalf("resume receive: done=%v err=%v", done, err)
	}
	if !strings.Contains(string(out.Body), "hold placed on 12C") {
		t.Fatalf("resumed output %q", out.Body)
	}
	if err := sess2.SendInput(ctx, []byte("yes")); err != nil {
		t.Fatal(err)
	}
	out, done, err = sess2.Receive(ctx, nil)
	if err != nil || !done || string(out.Body) != "booked" {
		t.Fatalf("final after crash: %q done=%v err=%v", out.Body, done, err)
	}
}

func TestPseudoConversationalInputCapturedAtCommit(t *testing.T) {
	// The paper's Section 8.2 point: once the client receives intermediate
	// output, its previous input is reliably captured and never re-sent.
	// Kill the conversation server mid-conversation; a fresh server
	// continues from the queued intermediate input.
	repo := newConvEnv(t)
	ctx1, cancel1 := context.WithCancel(context.Background())
	go ServeConversational(ctx1, ConvServerConfig{Repo: repo, Queue: "req", Handler: seatHandler})

	ctx := context.Background()
	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	sess := clerk.Interactive("rid-000003")
	if err := sess.Start(ctx, []byte("economy")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sess.Receive(ctx, nil); err != nil {
		t.Fatal(err)
	}
	// Server dies.
	cancel1()
	time.Sleep(20 * time.Millisecond)
	// Client supplies input while no server is up: captured in the queue.
	if err := sess.SendInput(ctx, []byte("12A")); err != nil {
		t.Fatal(err)
	}
	// New server instance picks the conversation up.
	ctx2, cancel2 := context.WithCancel(context.Background())
	t.Cleanup(cancel2)
	go ServeConversational(ctx2, ConvServerConfig{Repo: repo, Queue: "req", Name: "conv2", Handler: seatHandler})
	out, done, err := sess.Receive(ctx, nil)
	if err != nil || done {
		t.Fatalf("receive after server swap: done=%v err=%v", done, err)
	}
	if !strings.Contains(string(out.Body), "hold placed on 12A") {
		t.Fatalf("output %q", out.Body)
	}
}

// convTxnHandler is a Section 8.3 single-transaction conversational server:
// the whole conversation runs in one transaction, soliciting input via a
// ConvChannel; crashCountdown aborts the transaction after the given number
// of rounds (simulating failures) to force replays.
func serveConvTxn(ctx context.Context, t *testing.T, repo *queue.Repository, ch *ConvChannel, rounds int, abortFirstN int) {
	t.Helper()
	aborts := 0
	for ctx.Err() == nil {
		tx := repo.Begin()
		el, err := repo.Dequeue(ctx, tx, "req", "convtxn", queue.DequeueOpts{Wait: true})
		if err != nil {
			tx.Abort()
			return
		}
		req, err := parseRequest(&el)
		if err != nil {
			tx.Abort()
			return
		}
		total := 0
		failed := false
		for round := 0; round < rounds; round++ {
			in, err := ch.Ask(ctx, req.EID, round, []byte(fmt.Sprintf("give me number %d", round)))
			if err != nil {
				failed = true
				break
			}
			n, _ := strconv.Atoi(string(in))
			total += n
			if aborts < abortFirstN && round == rounds-1 {
				aborts++
				failed = true
				break
			}
		}
		if failed {
			tx.Abort() // intermediate I/O evaporates with the transaction
			continue
		}
		rep := replyElement(req.RID, StatusOK, []byte(strconv.Itoa(total)), false, nil, 0)
		if _, err := repo.Enqueue(tx, req.ReplyTo, rep, "", nil); err != nil {
			tx.Abort()
			continue
		}
		if err := tx.Commit(); err != nil {
			continue
		}
	}
}

func TestConversationalSingleTxnWithIOLogReplay(t *testing.T) {
	repo := newConvEnv(t)
	ch, err := NewConvChannel(repo, "c")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	const rounds = 3
	const abortedAttempts = 2
	go serveConvTxn(ctx, t, repo, ch, rounds, abortedAttempts)

	clerk := NewClerk(&LocalConn{Repo: repo}, ClerkConfig{ClientID: "c", RequestQueue: "req"})
	if _, err := clerk.Connect(ctx); err != nil {
		t.Fatal(err)
	}
	if err := clerk.Send(ctx, "rid-1", []byte("sum"), nil); err != nil {
		t.Fatal(err)
	}
	// The request element's eid labels the I/O log entries.
	info, err := (&LocalConn{Repo: repo}).Register(ctx, "req", "c", true)
	if err != nil {
		t.Fatal(err)
	}
	eid := info.LastEID

	ilog := NewIOLog()
	freshInputs := 0
	replays := 0
	convCtx, convCancel := context.WithCancel(ctx)
	defer convCancel()
	go ch.ConvClientLoop(convCtx, eid, ilog, func(round int, output []byte) []byte {
		freshInputs++
		return []byte(strconv.Itoa(round + 10)) // inputs 10, 11, 12
	}, &replays)

	rep, err := clerk.Receive(ctx, nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(rep.Body) != strconv.Itoa(10+11+12) {
		t.Fatalf("sum = %q", rep.Body)
	}
	// Across 1 + abortedAttempts executions of a 3-round conversation, the
	// user was asked only 3 times; every other input came from the log.
	if freshInputs != rounds {
		t.Fatalf("fresh inputs = %d, want %d (log replay failed)", freshInputs, rounds)
	}
	if replays != abortedAttempts*rounds {
		t.Fatalf("replays = %d, want %d", replays, abortedAttempts*rounds)
	}
}

func TestIOLogDivergenceDiscardsSuffix(t *testing.T) {
	l := NewIOLog()
	asked := 0
	ask := func(v string) func() []byte {
		return func() []byte { asked++; return []byte(v) }
	}
	// First incarnation: rounds 0..2.
	l.Answer(7, 0, []byte("q0"), ask("a0"))
	l.Answer(7, 1, []byte("q1"), ask("a1"))
	l.Answer(7, 2, []byte("q2"), ask("a2"))
	if asked != 3 || l.Len(7) != 3 {
		t.Fatalf("asked=%d len=%d", asked, l.Len(7))
	}
	// Replay: round 0 matches (no ask), round 1 diverges → suffix dropped,
	// fresh input; round 2 must also be fresh.
	in, replayed := l.Answer(7, 0, []byte("q0"), ask("never"))
	if !replayed || string(in) != "a0" {
		t.Fatalf("round0 replay: %q %v", in, replayed)
	}
	in, replayed = l.Answer(7, 1, []byte("q1-changed"), ask("b1"))
	if replayed || string(in) != "b1" {
		t.Fatalf("diverged round: %q %v", in, replayed)
	}
	_, replayed = l.Answer(7, 2, []byte("q2"), ask("b2"))
	if replayed {
		t.Fatal("suffix not discarded after divergence")
	}
	l.Forget(7)
	if l.Len(7) != 0 {
		t.Fatal("Forget failed")
	}
}
