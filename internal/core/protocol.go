// Package core implements the paper's request-processing protocols: the
// Client Model (Section 3, figs. 1–2), the clerk and server of the System
// Model (Section 5, figs. 4–5), multi-transaction request pipelines
// (Section 6, fig. 6), request cancellation (Section 7), and interactive
// requests (Section 8, fig. 7).
package core

import (
	"fmt"
	"strconv"

	"repro/internal/queue"
)

// Header keys used on queue elements to carry protocol metadata.
const (
	hdrRID    = "rid"    // request id, chosen by the client
	hdrClient = "client" // client id (diagnostics)
	hdrKind   = "kind"   // message kind
	hdrStatus = "status" // reply status
	hdrStep   = "step"   // pipeline / conversation step index
	hdrConv   = "conv"   // base rid of an interactive conversation
)

// Message kinds.
const (
	kindRequest = "req"
	kindReply   = "reply"
	kindInterm  = "iout" // intermediate output of an interactive request
)

// Reply statuses. A failed attempt still produces a committed reply — "the
// reply is a promise that it will not attempt to execute the request any
// more" (Section 3).
const (
	StatusOK    = "ok"
	StatusError = "error"
)

// Request is a client request as seen by a server handler.
type Request struct {
	// RID is the client-assigned request id.
	RID string
	// ClientID identifies the submitting client.
	ClientID string
	// Body is the application payload.
	Body []byte
	// Headers are the application's extra headers (protocol keys removed).
	Headers map[string]string
	// ReplyTo is the client's private reply queue (Section 5's
	// multiple-client extension).
	ReplyTo string
	// ScratchPad carries state between the transactions of a
	// multi-transaction request (Section 6; IMS scratch pad, Section 9).
	ScratchPad []byte
	// Step is the pipeline stage or conversation round index.
	Step int
	// EID is the underlying queue element id (for cancellation).
	EID queue.EID
}

// Reply is what a client receives for a request.
type Reply struct {
	// RID echoes the request id (Request-Reply Matching, Section 3).
	RID string
	// Status is StatusOK or StatusError.
	Status string
	// Body is the application reply payload (or the error description).
	Body []byte
	// Intermediate reports that this is intermediate output of an
	// interactive request, not the final reply (Section 8).
	Intermediate bool
	// ScratchPad carries conversation state in pseudo-conversational mode.
	ScratchPad []byte
	// Step is the conversation round that produced an intermediate output.
	Step int
	// EID is the underlying queue element id.
	EID queue.EID
	// HedgeArm reports which request element produced this reply: 0 for
	// the original submission, n>0 for hedge clone n (servers echo the
	// clone marker header back; see hedge.go). Execution provenance, not
	// delivery path.
	HedgeArm int
}

// IsError reports whether the reply records a failed execution attempt.
func (r *Reply) IsError() bool { return r.Status == StatusError }

// NewRequestElement builds a request element for direct enqueueing —
// batch input captures requests this way without a clerk (Section 1:
// "requests can be captured reliably in a queue, and processed later in a
// batch"). replyTo may be empty for requests that need no reply.
func NewRequestElement(rid, clientID, replyTo string, body []byte, headers map[string]string) queue.Element {
	return requestElement(rid, clientID, replyTo, body, headers, nil, 0)
}

// ParseRequest interprets a dequeued element as a request — for servers
// written outside the Server framework.
func ParseRequest(e *queue.Element) (Request, error) { return parseRequest(e) }

// NewReplyElement builds a reply element for a request — for servers
// written outside the Server framework.
func NewReplyElement(rid, status string, body []byte) queue.Element {
	return replyElement(rid, status, body, false, nil, 0)
}

// requestElement builds the queue element for a request.
func requestElement(rid, clientID, replyTo string, body []byte, headers map[string]string, scratch []byte, step int) queue.Element {
	h := make(map[string]string, len(headers)+4)
	for k, v := range headers {
		h[k] = v
	}
	h[hdrRID] = rid
	h[hdrClient] = clientID
	h[hdrKind] = kindRequest
	if step != 0 {
		h[hdrStep] = strconv.Itoa(step)
	}
	return queue.Element{
		Body:       body,
		Headers:    h,
		ReplyTo:    replyTo,
		ScratchPad: scratch,
	}
}

// parseRequest interprets a dequeued element as a request.
func parseRequest(e *queue.Element) (Request, error) {
	if e.Headers[hdrKind] != kindRequest {
		return Request{}, fmt.Errorf("core: element %d is %q, not a request", e.EID, e.Headers[hdrKind])
	}
	req := Request{
		RID:        e.Headers[hdrRID],
		ClientID:   e.Headers[hdrClient],
		Body:       e.Body,
		ReplyTo:    e.ReplyTo,
		ScratchPad: e.ScratchPad,
		EID:        e.EID,
	}
	if s := e.Headers[hdrStep]; s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return Request{}, fmt.Errorf("core: bad step %q on element %d", s, e.EID)
		}
		req.Step = n
	}
	req.Headers = make(map[string]string)
	for k, v := range e.Headers {
		switch k {
		case hdrRID, hdrClient, hdrKind, hdrStatus, hdrStep, hdrConv:
		default:
			req.Headers[k] = v
		}
	}
	return req, nil
}

// replyElement builds the queue element for a reply (final or
// intermediate).
func replyElement(rid, status string, body []byte, intermediate bool, scratch []byte, step int) queue.Element {
	h := map[string]string{
		hdrRID:    rid,
		hdrStatus: status,
	}
	if intermediate {
		h[hdrKind] = kindInterm
		h[hdrStep] = strconv.Itoa(step)
	} else {
		h[hdrKind] = kindReply
	}
	return queue.Element{Body: body, Headers: h, ScratchPad: scratch}
}

// parseReply interprets a dequeued element as a reply.
func parseReply(e *queue.Element) (Reply, error) {
	kind := e.Headers[hdrKind]
	if kind != kindReply && kind != kindInterm {
		return Reply{}, fmt.Errorf("core: element %d is %q, not a reply", e.EID, kind)
	}
	rep := Reply{
		RID:          e.Headers[hdrRID],
		Status:       e.Headers[hdrStatus],
		Body:         e.Body,
		Intermediate: kind == kindInterm,
		ScratchPad:   e.ScratchPad,
		EID:          e.EID,
	}
	if s := e.Headers[hdrStep]; s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			return Reply{}, fmt.Errorf("core: bad step %q on element %d", s, e.EID)
		}
		rep.Step = n
	}
	if rep.Status == "" {
		rep.Status = StatusOK
	}
	if v := e.Headers[hdrHedge]; v != "" {
		rep.HedgeArm, _ = strconv.Atoi(v)
	}
	return rep, nil
}
